package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue(8)
	times := []Cycle{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, at := range times {
		q.Push(at, i)
	}
	var got []Cycle
	for q.Len() > 0 {
		at, _ := q.Pop()
		got = append(got, at)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("lost events: %d != %d", len(got), len(times))
	}
}

func TestEventQueuePayloads(t *testing.T) {
	q := NewEventQueue(4)
	q.Push(10, 100)
	q.Push(5, 200)
	at, v := q.Pop()
	if at != 5 || v != 200 {
		t.Fatalf("got (%d,%d)", at, v)
	}
	at, v = q.Pop()
	if at != 10 || v != 100 {
		t.Fatalf("got (%d,%d)", at, v)
	}
}

func TestEventQueuePeek(t *testing.T) {
	q := NewEventQueue(4)
	q.Push(7, 1)
	q.Push(3, 2)
	at, v := q.Peek()
	if at != 3 || v != 2 {
		t.Fatalf("Peek = (%d,%d)", at, v)
	}
	if q.Len() != 2 {
		t.Fatal("Peek consumed an event")
	}
}

func TestEventQueueTieStability(t *testing.T) {
	// Ties pop in FIFO push order: the calendar queue's in-window scan
	// takes the strictly-earliest event, so the first pushed among equal
	// times always wins.
	q := NewEventQueue(4)
	for i := 0; i < 10; i++ {
		q.Push(42, i)
	}
	for want := 0; q.Len() > 0; want++ {
		at, v := q.Pop()
		if at != 42 {
			t.Fatalf("time corrupted: %d", at)
		}
		if v != want {
			t.Fatalf("tie popped out of push order: got %d, want %d", v, want)
		}
	}
}

func TestEventQueueTieFIFOInterleavedWithOtherTimes(t *testing.T) {
	// FIFO among ties must hold even when the tied pushes are interleaved
	// with pushes at other times (the simulator regime: several cores
	// rescheduled for the same cycle between unrelated events).
	q := NewEventQueue(8)
	q.Push(100, -1)
	q.Push(50, 0)
	q.Push(200, -2)
	q.Push(50, 1)
	q.Push(50, 2)
	for want := 0; want < 3; want++ {
		at, v := q.Pop()
		if at != 50 || v != want {
			t.Fatalf("pop = (%d,%d), want (50,%d)", at, v, want)
		}
	}
}

func TestEventQueueSparseGap(t *testing.T) {
	// An event far beyond one bucket lap must still pop correctly (the
	// queue jumps to the global minimum instead of walking empty buckets
	// forever).
	q := NewEventQueue(4)
	q.Push(1, 0)
	q.Pop()
	q.Push(1_000_000, 1)
	q.Push(1_000_000+7, 2)
	if at, v := q.Pop(); at != 1_000_000 || v != 1 {
		t.Fatalf("pop = (%d,%d)", at, v)
	}
	if at, v := q.Pop(); at != 1_000_007 || v != 2 {
		t.Fatalf("pop = (%d,%d)", at, v)
	}
}

func TestEventQueueInterleaved(t *testing.T) {
	q := NewEventQueue(4)
	q.Push(10, 0)
	q.Push(20, 1)
	at, _ := q.Pop()
	if at != 10 {
		t.Fatal("wrong first pop")
	}
	q.Push(5, 2) // earlier than remaining
	at, v := q.Pop()
	if at != 5 || v != 2 {
		t.Fatalf("got (%d,%d)", at, v)
	}
}

func TestEventQueueMatchesSortProperty(t *testing.T) {
	// Property: popping everything yields the sorted multiset of pushed
	// times.
	f := func(raw []uint32) bool {
		q := NewEventQueue(len(raw))
		var want []Cycle
		for i, r := range raw {
			at := Cycle(r % 1000)
			q.Push(at, i)
			want = append(want, at)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; q.Len() > 0; i++ {
			at, _ := q.Pop()
			if at != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
