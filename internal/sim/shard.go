package sim

import "fmt"

// ShardPlan describes how a single run's functional work is partitioned
// across worker lanes. Shards counts execution lanes including the
// timing spine (lane 0): -shards=1 is the sequential engine, -shards=N
// adds N-1 worker goroutines that pre-compute reference batches and
// think-time draws for the cores and workload threads assigned to them.
//
// The partition is static and index-based so the assignment — and hence
// every trace lane and gauge — is a pure function of the configuration,
// independent of scheduling.
type ShardPlan struct {
	Shards int // execution lanes, including the spine
	Cores  int // cores in the machine
}

// ValidShardCounts is the accepted -shards universe. Powers of two up to
// 16 keep the core partition group-aligned for every paper configuration
// (1/2/4/8/16-core groups on a 16-core machine).
var ValidShardCounts = [...]int{1, 2, 4, 8, 16}

// ValidateShards checks a -shards flag value against the core count:
// shards must be one of ValidShardCounts and must divide cores evenly so
// every lane owns the same number of cores.
func ValidateShards(shards, cores int) error {
	ok := false
	for _, v := range ValidShardCounts {
		if shards == v {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("sim: invalid shard count %d (must be one of %v)", shards, ValidShardCounts)
	}
	if cores%shards != 0 {
		return fmt.Errorf("sim: shard count %d does not divide core count %d", shards, cores)
	}
	return nil
}

// NewShardPlan validates and builds a plan. It panics on an invalid
// combination; CLI layers call ValidateShards first for a friendly error.
func NewShardPlan(shards, cores int) ShardPlan {
	if err := ValidateShards(shards, cores); err != nil {
		panic(err)
	}
	return ShardPlan{Shards: shards, Cores: cores}
}

// Workers is the number of worker goroutines the plan spawns (lanes
// beyond the spine).
func (p ShardPlan) Workers() int { return p.Shards - 1 }

// WorkerOf maps a core to its owning worker lane in [0, Workers()).
// Cores are dealt in contiguous equal runs so a lane's cores share
// consolidation groups whenever the group size divides the run length.
// Only meaningful when Workers() > 0.
func (p ShardPlan) WorkerOf(core int) int {
	return core * p.Workers() / p.Cores
}
