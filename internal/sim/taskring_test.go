package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestTaskRingOrder pushes and pops across wrap-around and asserts FIFO
// delivery with interleaved producer/consumer progress.
func TestTaskRingOrder(t *testing.T) {
	r := NewTaskRing(8)
	next, want := uint32(0), uint32(0)
	rng := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		if rng.Bool(0.5) && next-want < 8 {
			r.Push(next)
			next++
		} else if next > want {
			v, ok := r.Pop()
			if !ok || v != want {
				t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
			}
			want++
		}
	}
}

// TestTaskRingParkWake runs producer and consumer on separate goroutines
// with deliberate stalls so the consumer actually parks, checking every
// value arrives in order and Close terminates the consumer.
func TestTaskRingParkWake(t *testing.T) {
	const n = 50_000
	r := NewTaskRing(64)
	done := make(chan error, 1)
	go func() {
		for want := uint32(0); want < n; want++ {
			v, ok := r.Pop()
			if !ok {
				done <- errf("ring closed at %d", want)
				return
			}
			if v != want {
				done <- errf("got %d want %d", v, want)
				return
			}
		}
		if v, ok := r.Pop(); ok {
			done <- errf("extra value %d after close", v)
			return
		}
		done <- nil
	}()
	for i := uint32(0); i < n; i++ {
		for r.tail.Load()-r.head.Load() == uint64(len(r.buf)) {
			time.Sleep(time.Microsecond)
		}
		r.Push(i)
		if i%4096 == 0 {
			time.Sleep(200 * time.Microsecond) // let the consumer drain and park
		}
	}
	r.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
