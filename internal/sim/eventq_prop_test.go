package sim

import (
	"container/heap"
	"testing"
)

// oracleEvent orders by (time, push sequence): the FIFO-on-ties contract
// the calendar queue documents and the cross-shard merge now leans on.
type oracleEvent struct {
	at  Cycle
	seq uint64
	val int
}

type oracleHeap []oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)        { *h = append(*h, x.(oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// driveQueues replays one op stream against the calendar queue and the
// binary-heap oracle, failing on the first divergence. Ops are pairs
// drawn from r: a push probability draw and, for pushes, a time delta.
// Push times track the last popped time (the simulator's monotone
// regime) with an occasional straggler far ahead and, when allowed, a
// rare push behind the current window to exercise the rewind path.
func driveQueues(t *testing.T, r *RNG, ops int, pushBehind bool) {
	t.Helper()
	q := NewEventQueue(16)
	var o oracleHeap
	var (
		seq     uint64
		lastPop Cycle
		val     int
	)
	for i := 0; i < ops; i++ {
		doPush := q.Len() == 0 || r.Float64() < 0.55
		if doPush {
			at := lastPop
			switch u := r.Float64(); {
			case u < 0.05:
				at += Cycle(200 + r.Uint64n(100)) // memory straggler
			case u < 0.10 && pushBehind && at > 4:
				at -= Cycle(1 + r.Uint64n(4)) // behind the window: rewind
			default:
				at += Cycle(r.Uint64n(8)) // dense near-term reschedule
			}
			val++
			q.Push(at, val)
			heap.Push(&o, oracleEvent{at: at, seq: seq, val: val})
			seq++

			oat, ov := o[0].at, o[0].val
			if pat, pv := q.Peek(); pat != oat || pv != ov {
				t.Fatalf("op %d: Peek = (%d, %d), oracle min (%d, %d)", i, pat, pv, oat, ov)
			}
		} else {
			at, v := q.Pop()
			e := heap.Pop(&o).(oracleEvent)
			if at != e.at || v != e.val {
				t.Fatalf("op %d: Pop = (%d, %d), oracle (%d, %d) seq %d", i, at, v, e.at, e.val, e.seq)
			}
			lastPop = at
		}
		if q.Len() != len(o) {
			t.Fatalf("op %d: Len = %d, oracle %d", i, q.Len(), len(o))
		}
	}
	for len(o) > 0 {
		at, v := q.Pop()
		e := heap.Pop(&o).(oracleEvent)
		if at != e.at || v != e.val {
			t.Fatalf("drain: Pop = (%d, %d), oracle (%d, %d)", at, v, e.at, e.val)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drain: Len = %d after oracle empty", q.Len())
	}
}

// TestEventQueueVsHeapOracle checks the calendar queue against a binary
// heap with an explicit (time, push-sequence) order over many random
// push/pop interleavings: same pop order — including FIFO on same-cycle
// ties — same peeks, same lengths.
func TestEventQueueVsHeapOracle(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		driveQueues(t, NewRNG(seed), 4_000, seed%2 == 1)
	}
}

// TestEventQueueSameCycleFIFO floods single cycles with bursts and
// verifies pop order equals push order within each cycle, across lap
// boundaries of the 256-bucket calendar.
func TestEventQueueSameCycleFIFO(t *testing.T) {
	q := NewEventQueue(8)
	r := NewRNG(7)
	next := 0
	for burst := 0; burst < 400; burst++ {
		at := Cycle(burst) * 37 // strides across lap boundaries
		n := 1 + int(r.Uint64n(12))
		for k := 0; k < n; k++ {
			q.Push(at, next)
			next++
		}
		want := next - n
		for k := 0; k < n; k++ {
			gat, gv := q.Pop()
			if gat != at || gv != want {
				t.Fatalf("burst %d: Pop = (%d, %d), want (%d, %d)", burst, gat, gv, at, want)
			}
			want++
		}
	}
}

// FuzzEventQueue lets the fuzzer pick the op stream bytes: each byte
// chooses push-vs-pop and the time delta, replayed against the oracle.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x13, 0x80, 0x7f, 0xff, 0x01, 0x01, 0x90})
	f.Add([]byte("calendar queues have laps"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<12 {
			ops = ops[:1<<12]
		}
		q := NewEventQueue(4)
		var o oracleHeap
		var (
			seq     uint64
			lastPop Cycle
			val     int
		)
		for i, b := range ops {
			if b < 0xa0 || q.Len() == 0 {
				// Push: low 5 bits pick the delta ahead of the frontier;
				// 0x1f maps to a far straggler beyond one lap.
				d := Cycle(b & 0x1f)
				if d == 0x1f {
					d = 300
				}
				at := lastPop + d
				val++
				q.Push(at, val)
				heap.Push(&o, oracleEvent{at: at, seq: seq, val: val})
				seq++
			} else {
				at, v := q.Pop()
				e := heap.Pop(&o).(oracleEvent)
				if at != e.at || v != e.val {
					t.Fatalf("op %d: Pop = (%d, %d), oracle (%d, %d)", i, at, v, e.at, e.val)
				}
				lastPop = at
			}
			if q.Len() != len(o) {
				t.Fatalf("op %d: Len = %d, oracle %d", i, q.Len(), len(o))
			}
		}
		for len(o) > 0 {
			at, v := q.Pop()
			e := heap.Pop(&o).(oracleEvent)
			if at != e.at || v != e.val {
				t.Fatalf("drain: Pop = (%d, %d), oracle (%d, %d)", at, v, e.at, e.val)
			}
		}
	})
}
