package sim

import "testing"

// BenchmarkEventQueueSteadyState measures one push/pop round trip at the
// simulator's operating point: one in-flight event per core (16 pending)
// with mostly short reschedules and occasional memory-latency stragglers.
func BenchmarkEventQueueSteadyState(b *testing.B) {
	// Reschedule deltas in roughly the simulator's observed mix: think
	// times and cache hits a few cycles out, bank conflicts in the tens,
	// and memory round trips at ~150-250 cycles.
	deltas := [...]Cycle{1, 2, 3, 4, 14, 3, 2, 40, 1, 3, 150, 2, 4, 3, 250, 2}
	const pending = 16
	q := NewEventQueue(pending)
	for i := 0; i < pending; i++ {
		q.Push(Cycle(1+i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, v := q.Pop()
		q.Push(at+deltas[i&(len(deltas)-1)], v)
	}
}

// BenchmarkEventQueueDense measures the all-ties worst case: every
// pending event on the same cycle, so pops drain one bucket in FIFO
// order and pushes refill it.
func BenchmarkEventQueueDense(b *testing.B) {
	const pending = 16
	q := NewEventQueue(pending)
	for i := 0; i < pending; i++ {
		q.Push(1, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, v := q.Pop()
		q.Push(at+1, v)
	}
}
