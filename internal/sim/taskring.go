package sim

import "sync/atomic"

// TaskRing is a bounded single-producer single-consumer queue of small
// task handles, the spine→worker channel of the sharded engine. The hot
// path is two atomic loads and one atomic store per side; when the ring
// runs dry the consumer parks on a channel instead of spinning, so on a
// machine with fewer CPUs than lanes an idle worker costs nothing — the
// scheduler runs whoever has work.
//
// Capacity is fixed at construction and must exceed the maximum number
// of in-flight tasks the producer posts (the engine bounds this by
// construction: at most one prefill per workload thread plus one think
// batch per core). Push never blocks and panics on overflow, which would
// be an engine bug rather than backpressure.
type TaskRing struct {
	buf  []uint32
	mask uint64

	_    [64]byte // keep producer and consumer cursors off one line
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
	_    [64]byte

	// parked is set by the consumer just before it re-checks emptiness
	// and blocks on wake; the producer only pays the channel send when it
	// observes the flag.
	parked atomic.Bool
	wake   chan struct{}
	closed atomic.Bool
}

// NewTaskRing returns a ring holding up to cap tasks (rounded up to a
// power of two, minimum 2).
func NewTaskRing(cap int) *TaskRing {
	n := 2
	for n < cap {
		n <<= 1
	}
	return &TaskRing{
		buf:  make([]uint32, n),
		mask: uint64(n - 1),
		wake: make(chan struct{}, 1),
	}
}

// Push enqueues v. Producer-side only; panics if the ring is full.
func (r *TaskRing) Push(v uint32) {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		panic("sim: TaskRing overflow")
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // release: publishes buf[t] to the consumer
	if r.parked.Load() {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// Close wakes the consumer permanently; Pop returns false once the ring
// is drained. Producer-side only.
func (r *TaskRing) Close() {
	r.closed.Store(true)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Pop dequeues the next task, blocking (parked, not spinning) until one
// is available or Close has been called and the ring is empty, in which
// case it returns false. Consumer-side only.
func (r *TaskRing) Pop() (uint32, bool) {
	h := r.head.Load()
	for {
		if r.tail.Load() != h {
			v := r.buf[h&r.mask]
			r.head.Store(h + 1)
			return v, true
		}
		if r.closed.Load() {
			// Re-check after observing closed: Close happens after the
			// final Push, so an empty ring now is empty forever.
			if r.tail.Load() == h {
				return 0, false
			}
			continue
		}
		// Park: announce, re-check (the producer may have pushed between
		// our check and the announcement), then block.
		r.parked.Store(true)
		if r.tail.Load() != h || r.closed.Load() {
			r.parked.Store(false)
			continue
		}
		<-r.wake
		r.parked.Store(false)
	}
}
