package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is not safe for concurrent use; each simulated thread
// owns its own RNG so streams are independent and runs are repeatable
// regardless of scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	// Avoid the all-zeros fixed point and decorrelate small seeds.
	r.state = seed + 0x9e3779b97f4a7c15
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split derives an independent generator from this one; used to fan a
// single experiment seed out to per-thread streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. It uses the inverse-CDF power-law approximation, which
// is O(1) per sample and close enough to true Zipf for cache-reuse
// modeling (the approximation error is far below workload-model error).
type Zipf struct {
	n       uint64
	theta   float64
	oneMinT float64
	inv     float64
	// hiM1 is (n+1)^(1-theta) - 1, a per-sampler constant of the inverse
	// CDF hoisted out of Sample; math.Pow is a large share of generator
	// cost and this half is invariant across samples.
	hiM1 float64
}

// NewZipf returns a sampler over [0, n) with skew theta in (0, 1) U (1, inf).
// theta near 0 approaches uniform; larger theta concentrates mass on low
// ranks. theta == 1 is remapped to 0.999 to keep the closed form valid.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("sim: Zipf over empty range")
	}
	if theta == 1 {
		theta = 0.999
	}
	om := 1 - theta
	return &Zipf{
		n: n, theta: theta, oneMinT: om, inv: 1 / om,
		hiM1: math.Pow(float64(n+1), om) - 1,
	}
}

// Sample draws a rank using randomness from r.
func (z *Zipf) Sample(r *RNG) uint64 {
	// Inverse CDF of the continuous power-law on [1, n+1):
	// x = ((n+1)^(1-t) - 1) * u + 1, rank = floor(x^(1/(1-t))) - 1.
	u := r.Float64()
	x := z.hiM1*u + 1
	rank := uint64(math.Pow(x, z.inv)) - 1
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// N returns the size of the sampled range.
func (z *Zipf) N() uint64 { return z.n }
