package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is not safe for concurrent use; each simulated thread
// owns its own RNG so streams are independent and runs are repeatable
// regardless of scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	// Avoid the all-zeros fixed point and decorrelate small seeds.
	r.state = seed + 0x9e3779b97f4a7c15
}

// State returns the generator's internal position in the stream, for
// transfer to another RNG via Restore. Unlike Seed, the value round-trips
// exactly: Restore(State()) continues the stream where it left off, which
// the sharded engine uses to pre-draw a batch on a worker and commit the
// advanced position back to the owning core.
func (r *RNG) State() uint64 { return r.state }

// Restore sets the generator to a position previously read with State.
func (r *RNG) Restore(state uint64) { r.state = state }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
// Range reduction is Lemire's multiply-shift (the high 64 bits of
// u * n) rather than a modulo: no integer division, and the residual
// bias (< n/2^64) is far below the modulo method's own bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split derives an independent generator from this one; used to fan a
// single experiment seed out to per-thread streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. The per-rank masses come from the inverse-CDF
// power-law approximation (O(1), close enough to true Zipf for cache-reuse
// modeling), but sampling uses a precomputed Vose alias table: one RNG
// draw, one table probe, no math.Pow in the hot loop. Construction costs
// O(n) pow calls; samplers are built once per generator over hot sets of
// at most a few tens of thousands of ranks.
type Zipf struct {
	n     uint64
	slots []zipfSlot
}

// zipfSlot is one alias-table bucket: the acceptance threshold for the
// low 64 product bits and the rank to fall back to on rejection. Packing
// both into one slot makes a sample a single table load.
type zipfSlot struct {
	thresh uint64
	alias  uint32
}

// NewZipf returns a sampler over [0, n) with skew theta in (0, 1) U (1, inf).
// theta near 0 approaches uniform; larger theta concentrates mass on low
// ranks. theta == 1 is remapped to 0.999 to keep the closed form valid.
// n must fit in 32 bits (alias entries are packed); the simulator's hot
// sets are orders of magnitude smaller.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("sim: Zipf over empty range")
	}
	if n > math.MaxUint32 {
		panic("sim: Zipf range exceeds 32-bit alias capacity")
	}
	if theta == 1 {
		theta = 0.999
	}
	om := 1 - theta
	// Per-rank masses of the inverse power-law CDF on [1, n+1): rank k
	// captures u in [u_k, u_{k+1}) with u_k = ((k+1)^(1-t) - 1) / hiM1.
	// The sequence ends at exactly 1, so pinning the last boundary folds
	// any floating-point tail into rank n-1 (matching the old clamp).
	hiM1 := math.Pow(float64(n+1), om) - 1
	scaled := make([]float64, n)
	prev := 0.0
	for k := uint64(0); k < n; k++ {
		uk := (math.Pow(float64(k+2), om) - 1) / hiM1
		if k == n-1 {
			uk = 1
		}
		scaled[k] = (uk - prev) * float64(n)
		prev = uk
	}
	// Vose alias construction: pair each under-full rank with an over-full
	// donor so every table slot splits between at most two ranks. The two
	// worklists share one array: under-full ranks stack up from the front,
	// over-full donors from the back.
	z := &Zipf{n: n, slots: make([]zipfSlot, n)}
	work := make([]uint32, n)
	ns, nl := 0, 0
	for i := uint64(0); i < n; i++ {
		z.slots[i].alias = uint32(i)
		if scaled[i] < 1 {
			work[ns] = uint32(i)
			ns++
		} else {
			nl++
			work[n-uint64(nl)] = uint32(i)
		}
	}
	for ns > 0 && nl > 0 {
		s := work[ns-1]
		ns--
		l := work[n-uint64(nl)]
		z.slots[s].thresh = fracToThresh(scaled[s])
		z.slots[s].alias = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			nl--
			work[ns] = l
			ns++
		}
	}
	// Leftovers on either list hold mass 1 up to rounding: always accept.
	for i := 0; i < ns; i++ {
		z.slots[work[i]].thresh = ^uint64(0)
	}
	for i := 0; i < nl; i++ {
		z.slots[work[n-uint64(i)-1]].thresh = ^uint64(0)
	}
	return z
}

// fracToThresh maps an acceptance probability in [0, 1] to a threshold on
// a uniform 64-bit value.
func fracToThresh(p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	if p <= 0 {
		return 0
	}
	return uint64(math.Ldexp(p, 64))
}

// Sample draws a rank using randomness from r: the high product bits pick
// a uniform table slot, the low bits split the slot between its two ranks.
func (z *Zipf) Sample(r *RNG) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), z.n)
	s := z.slots[hi]
	if lo < s.thresh {
		return hi
	}
	return uint64(s.alias)
}

// N returns the size of the sampled range.
func (z *Zipf) N() uint64 { return z.n }
