package sim

// EventQueue is a binary min-heap of (time, payload) pairs used by the
// event-driven engine. Payloads are small integers (core IDs, component
// IDs) so the queue is allocation-free in steady state.
type EventQueue struct {
	at  []Cycle
	val []int
}

// NewEventQueue returns a queue with capacity hint n.
func NewEventQueue(n int) *EventQueue {
	return &EventQueue{
		at:  make([]Cycle, 0, n),
		val: make([]int, 0, n),
	}
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.at) }

// Push schedules value v at time t.
func (q *EventQueue) Push(t Cycle, v int) {
	q.at = append(q.at, t)
	q.val = append(q.val, v)
	i := len(q.at) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.at[parent] <= q.at[i] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// callers always check Len first.
func (q *EventQueue) Pop() (Cycle, int) {
	t, v := q.at[0], q.val[0]
	last := len(q.at) - 1
	q.at[0], q.val[0] = q.at[last], q.val[last]
	q.at, q.val = q.at[:last], q.val[:last]
	q.siftDown(0)
	return t, v
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Cycle, int) {
	return q.at[0], q.val[0]
}

func (q *EventQueue) siftDown(i int) {
	n := len(q.at)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.at[l] < q.at[smallest] {
			smallest = l
		}
		if r < n && q.at[r] < q.at[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *EventQueue) swap(i, j int) {
	q.at[i], q.at[j] = q.at[j], q.at[i]
	q.val[i], q.val[j] = q.val[j], q.val[i]
}
