package sim

import "math/bits"

// EventQueue is a bucketed calendar queue of (time, payload) pairs used by
// the event-driven engine. Payloads are small integers (core IDs, component
// IDs) so the queue is allocation-free in steady state.
//
// The simulator keeps at most one in-flight event per core (~16 pending
// events) and almost every reschedule lands within a few cycles of the
// current time, with occasional memory-latency stragglers ~150-250 cycles
// ahead. The queue is sized for exactly that regime: 256 one-cycle buckets
// (one 256-cycle lap) put every event of a given cycle in its own bucket,
// so a pop is a handful of contiguous loads instead of a pointer-chasing
// heap sift, and the stragglers stay well inside a single lap.
//
// Ties are popped in FIFO push order: equal times always hash to the same
// bucket, buckets preserve insertion order, and with one-cycle buckets
// every in-window event of a bucket shares the same time, so the first
// in-window element is the earliest-pushed among equals. This makes
// same-cycle event ordering deterministic by construction (the binary heap
// it replaces delivered ties in heap-shape order, which depended on the
// interleaving history).
type EventQueue struct {
	buckets [][]event
	// occ is an occupancy bitmap over buckets: Pop jumps straight to the
	// next non-empty bucket with a TrailingZeros instead of stepping
	// through the empty cycles between events (think times put the next
	// event tens of cycles ahead on average).
	occ    [eqNumBuckets / 64]uint64
	mask   uint64
	n      int
	cur    uint64 // index of the bucket holding the current cycle
	curTop Cycle  // exclusive end of the current one-cycle window
}

type event struct {
	at  Cycle
	val int
}

const eqNumBuckets = 256 // one-cycle buckets; must be a power of two

// NewEventQueue returns a queue with capacity hint n. Every bucket is
// pre-sized to hold n events (all pending events can tie on one cycle),
// so pushes never grow a bucket in the hinted regime and the queue stays
// allocation-free in steady state.
func NewEventQueue(n int) *EventQueue {
	per := n
	if per < 4 {
		per = 4
	}
	q := &EventQueue{
		buckets: make([][]event, eqNumBuckets),
		mask:    eqNumBuckets - 1,
		curTop:  1,
	}
	backing := make([]event, eqNumBuckets*per)
	for i := range q.buckets {
		q.buckets[i] = backing[i*per : i*per : (i+1)*per]
	}
	return q
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return q.n }

// Push schedules value v at time t.
func (q *EventQueue) Push(t Cycle, v int) {
	if t < q.curTop-1 {
		// A push behind the current window (never taken by the simulator,
		// whose reschedules are monotone): rewind the window so the scan
		// starts early enough. Everything already pending is at or after
		// the old window, so re-scanning forward from here stays ordered.
		q.cur = uint64(t) & q.mask
		q.curTop = t + 1
	}
	i := uint64(t) & q.mask
	q.buckets[i] = append(q.buckets[i], event{at: t, val: v})
	q.occ[i>>6] |= 1 << (i & 63)
	q.n++
}

// locate advances the scan window to the bucket holding the earliest
// pending event and returns that bucket's index and the event's position
// in it. The advance is monotone and idempotent (locating twice without
// an intervening pop lands on the same event), so both Pop and Peek run
// on it. Callers guarantee q.n > 0.
func (q *EventQueue) locate() (uint64, int) {
	for advanced := uint64(0); ; {
		d := q.nextOccDelta()
		if advanced += d; advanced > eqNumBuckets {
			// Every occupied bucket in a full lap held only events beyond
			// the window (a sparse stretch of more than one lap): jump
			// straight to the global minimum's bucket.
			at, _, _ := q.min()
			q.cur = uint64(at) & q.mask
			q.curTop = at + 1
			advanced = 0
		} else {
			q.cur = (q.cur + d) & q.mask
			q.curTop += Cycle(d)
		}
		b := q.buckets[q.cur]
		for i := range b {
			// One-cycle buckets: every in-window event here shares the
			// same time, so the first one is the earliest pushed.
			if b[i].at < q.curTop {
				return q.cur, i
			}
		}
		// The occupied bucket held only future laps; step past it.
		q.cur = (q.cur + 1) & q.mask
		q.curTop++
		advanced++
	}
}

// Pop removes and returns the earliest event; equal times pop in push
// order. It panics on an empty queue; callers always check Len first.
func (q *EventQueue) Pop() (Cycle, int) {
	if q.n == 0 {
		panic("sim: Pop on empty EventQueue")
	}
	bi, i := q.locate()
	b := q.buckets[bi]
	e := b[i]
	nb := append(b[:i], b[i+1:]...)
	q.buckets[bi] = nb
	if len(nb) == 0 {
		q.occ[bi>>6] &^= 1 << (bi & 63)
	}
	q.n--
	return e.at, e.val
}

// nextOccDelta returns the cyclic distance from the current bucket to the
// nearest occupied one (zero when the current bucket is occupied). With
// pending events it is always < eqNumBuckets.
func (q *EventQueue) nextOccDelta() uint64 {
	w := q.cur >> 6
	off := q.cur & 63
	if v := q.occ[w] >> off; v != 0 {
		return uint64(bits.TrailingZeros64(v))
	}
	d := 64 - off
	const words = uint64(len(q.occ))
	for k := uint64(1); k <= words; k++ {
		if v := q.occ[(w+k)&(words-1)]; v != 0 {
			return d + uint64(bits.TrailingZeros64(v))
		}
		d += 64
	}
	return d
}

// Peek returns the earliest event without removing it (zero values on an
// empty queue). It shares Pop's bitmap-guided scan rather than the full-
// calendar fallback, so a Peek-then-Pop loop locates each event once
// cheaply; the scan-window advance it causes is invisible to callers.
func (q *EventQueue) Peek() (Cycle, int) {
	if q.n == 0 {
		return 0, 0
	}
	bi, i := q.locate()
	e := q.buckets[bi][i]
	return e.at, e.val
}

// min scans every bucket for the globally earliest event. Ties share a
// bucket, so taking the first slice occurrence preserves push order.
func (q *EventQueue) min() (Cycle, int, bool) {
	var (
		bestAt  Cycle
		bestVal int
		found   bool
	)
	for _, b := range q.buckets {
		for i := range b {
			if !found || b[i].at < bestAt {
				bestAt, bestVal, found = b[i].at, b[i].val, true
			}
		}
	}
	return bestAt, bestVal, found
}
