package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate %v", p)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(13)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func TestRNGUniformityProperty(t *testing.T) {
	// Property: over any modulus, bucket counts stay near uniform.
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		const buckets, n = 16, 16000
		counts := make([]int, buckets)
		for i := 0; i < n; i++ {
			counts[r.Intn(buckets)]++
		}
		for _, c := range counts {
			if math.Abs(float64(c)-n/buckets) > 200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(17)
	z := NewZipf(1000, 0.8)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(100000, 0.9)
	low := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Sample(r) < 1000 {
			low++
		}
	}
	// With theta 0.9 the top 1% of ranks should carry far more than 1%
	// of the mass.
	if frac := float64(low) / n; frac < 0.2 {
		t.Errorf("top 1%% of ranks got only %.3f of mass", frac)
	}
}

func TestZipfHigherThetaMoreSkew(t *testing.T) {
	sample := func(theta float64) float64 {
		r := NewRNG(23)
		z := NewZipf(10000, theta)
		low := 0
		for i := 0; i < 50000; i++ {
			if z.Sample(r) < 100 {
				low++
			}
		}
		return float64(low) / 50000
	}
	if sample(0.9) <= sample(0.3) {
		t.Error("higher theta did not concentrate more mass on low ranks")
	}
}

func TestZipfThetaOneRemapped(t *testing.T) {
	// theta == 1 must not blow up the closed form.
	r := NewRNG(29)
	z := NewZipf(100, 1)
	for i := 0; i < 1000; i++ {
		if v := z.Sample(r); v >= 100 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfSingleElement(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(1, 0.8)
	for i := 0; i < 100; i++ {
		if z.Sample(r) != 0 {
			t.Fatal("Zipf over one element must return 0")
		}
	}
}

func TestZipfAliasMatchesAnalyticMasses(t *testing.T) {
	// The alias table must reproduce the inverse-CDF approximation's
	// per-rank masses p_k = ((k+2)^(1-t) - (k+1)^(1-t)) / ((n+1)^(1-t) - 1).
	const n, theta, draws = 64, 0.8, 400_000
	om := 1 - theta
	hiM1 := math.Pow(n+1, om) - 1
	r := NewRNG(37)
	z := NewZipf(n, theta)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < n; k++ {
		want := (math.Pow(float64(k+2), om) - math.Pow(float64(k+1), om)) / hiM1
		got := float64(counts[k]) / draws
		// 5-sigma binomial tolerance plus an absolute floor for tiny masses.
		tol := 5*math.Sqrt(want*(1-want)/draws) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("rank %d: freq %.5f, want %.5f (tol %.5f)", k, got, want, tol)
		}
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(0, 0.5)
}

func TestLineMath(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if BlockID(0x1234) != 0x48 {
		t.Errorf("BlockID(0x1234) = %#x", BlockID(0x1234))
	}
	if BlockAddr(0x48) != 0x1200 {
		t.Errorf("BlockAddr(0x48) = %#x", BlockAddr(0x48))
	}
	// Roundtrip property.
	f := func(b uint64) bool {
		b &= 1<<58 - 1 // keep the shift in range
		return BlockID(BlockAddr(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
}
