// Package sim provides the base types shared by every substrate in the
// consolidation simulator: cycle time, physical addresses, cache-line
// geometry, and a deterministic random number generator.
//
// Everything in the simulator is deterministic given a seed; there are no
// wall-clock or global-rand dependencies, so every experiment is exactly
// repeatable.
package sim

// Cycle is a point in (or duration of) simulated time, measured in core
// clock cycles.
type Cycle uint64

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Cache-line geometry used throughout the machine (Table III of the paper
// uses 64-byte blocks).
const (
	LineBytes = 64
	LineShift = 6
)

// LineAddr returns the address of the cache line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineBytes - 1) }

// BlockID returns the line index of a (address divided by the line size).
func BlockID(a Addr) uint64 { return uint64(a) >> LineShift }

// BlockAddr returns the byte address of line index b.
func BlockAddr(b uint64) Addr { return Addr(b << LineShift) }

// Max returns the larger of two cycles.
func Max(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of two cycles.
func Min(a, b Cycle) Cycle {
	if a < b {
		return a
	}
	return b
}
