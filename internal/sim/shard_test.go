package sim

import "testing"

func TestValidateShards(t *testing.T) {
	for _, c := range []struct {
		shards, cores int
		ok            bool
	}{
		{1, 16, true}, {2, 16, true}, {4, 16, true}, {8, 16, true}, {16, 16, true},
		{3, 16, false}, {0, 16, false}, {-1, 16, false}, {32, 16, false},
		{8, 4, false}, // does not divide
		{4, 4, true}, {2, 2, true}, {16, 32, true},
	} {
		err := ValidateShards(c.shards, c.cores)
		if (err == nil) != c.ok {
			t.Errorf("ValidateShards(%d, %d) = %v, want ok=%v", c.shards, c.cores, err, c.ok)
		}
	}
}

func TestShardPlanWorkerOf(t *testing.T) {
	for _, shards := range []int{2, 4, 8, 16} {
		p := NewShardPlan(shards, 16)
		counts := make([]int, p.Workers())
		last := 0
		for c := 0; c < 16; c++ {
			w := p.WorkerOf(c)
			if w < 0 || w >= p.Workers() {
				t.Fatalf("shards=%d core %d: worker %d out of range", shards, c, w)
			}
			if w < last {
				t.Fatalf("shards=%d: WorkerOf not monotone at core %d", shards, c)
			}
			last = w
			counts[w]++
		}
		for w, n := range counts {
			if n == 0 {
				t.Errorf("shards=%d: worker %d owns no cores", shards, w)
			}
			if max, min := 16/p.Workers()+1, 16/p.Workers(); n > max || n < min {
				t.Errorf("shards=%d: worker %d owns %d cores, want %d..%d", shards, w, n, min, max)
			}
		}
	}
}
