package trace

import (
	"bytes"
	"strings"
	"testing"

	"consim/internal/workload"
)

func smallGen(seed uint64) *workload.Generator {
	return workload.NewGenerator(workload.Specs()[workload.TPCH].Scaled(64), 4, seed)
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h, err := Capture(&buf, smallGen(7), 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if h.Records != 4*500 {
		t.Fatalf("captured %d records", h.Records)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header().Threads != 4 || rd.Header().Records != 2000 {
		t.Fatalf("header = %+v", rd.Header())
	}
	if rd.Spec().Class != workload.TPCH {
		t.Error("spec not preserved")
	}

	// Replay must reproduce the generator's per-thread streams exactly.
	ref := smallGen(7)
	for i := uint64(0); i < 500; i++ {
		for th := 0; th < 4; th++ {
			want := ref.Next(th)
			got := rd.Next(th)
			if got != want {
				t.Fatalf("thread %d ref %d: got %+v want %+v", th, i, got, want)
			}
		}
	}
}

func TestReplayLoops(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, smallGen(1), 2, 10); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := rd.Next(0)
	for i := 0; i < 9; i++ {
		rd.Next(0)
	}
	// Stream wrapped: the next access repeats the first.
	if rd.Next(0) != first {
		t.Error("replay did not loop")
	}
	if rd.Loops(0) != 1 {
		t.Errorf("Loops = %d", rd.Loops(0))
	}
	if rd.TotalRefs() != 11 {
		t.Errorf("TotalRefs = %d", rd.TotalRefs())
	}
}

func TestFootprintPreserved(t *testing.T) {
	g := smallGen(3)
	var buf bytes.Buffer
	if _, err := Capture(&buf, g, 4, 100); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.FootprintBlocks() != g.FootprintBlocks() {
		t.Errorf("footprint %d != %d", rd.FootprintBlocks(), g.FootprintBlocks())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE????")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, smallGen(1), 2, 5); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3] // chop mid-record
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestEmptyThreadRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, smallGen(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Only thread 0 gets records.
	g := smallGen(1)
	for i := 0; i < 5; i++ {
		if err := w.Record(0, g.Next(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf); err == nil {
		t.Error("trace with empty thread stream accepted")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, smallGen(1), 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewWriter(&buf, smallGen(1), 300); err == nil {
		t.Error("too many threads accepted")
	}
}

func TestWriteAfterFlushRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, smallGen(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := smallGen(1)
	if err := w.Record(0, g.Next(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(0, g.Next(0)); err == nil {
		t.Error("write after Flush accepted")
	}
}
