// Package trace records and replays workload reference streams — the
// equivalent of the paper's workload checkpoints: a captured trace runs
// "the same set of transactions ... in each simulation", decoupling
// experiment repeatability from the generator that produced the stream.
//
// The on-disk format is a gob header (the workload Spec, thread count,
// and footprint) followed by fixed-width binary records. Replay loops
// when a thread's records are exhausted, matching the paper's "if a
// workload happened to end prematurely, it was restarted to keep the
// system at capacity".
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"consim/internal/workload"
)

// magic identifies consim trace files.
const magic = "CONSIMTR1"

// Header describes a recorded trace.
type Header struct {
	Spec      workload.Spec
	Threads   int
	Footprint uint64
	Records   uint64
}

// record is the 10-byte wire format: thread (1), flags (1), block (8).
const recordBytes = 10

const flagWrite = 1

// Writer streams (thread, access) records to w.
type Writer struct {
	bw      *bufio.Writer
	header  Header
	records uint64
	closed  bool
}

// NewWriter writes a trace header for the given source and returns a
// Writer for its records.
func NewWriter(w io.Writer, src workload.Source, threads int) (*Writer, error) {
	if threads <= 0 || threads > 255 {
		return nil, fmt.Errorf("trace: thread count %d out of 1..255", threads)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	h := Header{Spec: src.Spec(), Threads: threads, Footprint: src.FootprintBlocks()}
	if err := gob.NewEncoder(bw).Encode(h); err != nil {
		return nil, fmt.Errorf("trace: encoding header: %w", err)
	}
	return &Writer{bw: bw, header: h}, nil
}

// Record appends one access for thread t.
func (w *Writer) Record(t int, a workload.Access) error {
	if w.closed {
		return fmt.Errorf("trace: write after Flush")
	}
	var buf [recordBytes]byte
	buf[0] = byte(t)
	if a.Write {
		buf[1] = flagWrite
	}
	binary.LittleEndian.PutUint64(buf[2:], a.Block)
	if _, err := w.bw.Write(buf[:]); err != nil {
		return err
	}
	w.records++
	return nil
}

// Records returns the number of accesses written.
func (w *Writer) Records() uint64 { return w.records }

// Flush finalizes the stream. The record count lives implicitly in the
// stream length; Flush only drains buffers.
func (w *Writer) Flush() error {
	w.closed = true
	return w.bw.Flush()
}

// Capture runs src for refsPerThread references on each of threads
// round-robin and writes the trace to w.
func Capture(w io.Writer, src workload.Source, threads int, refsPerThread uint64) (*Header, error) {
	tw, err := NewWriter(w, src, threads)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < refsPerThread; i++ {
		for t := 0; t < threads; t++ {
			if err := tw.Record(t, src.Next(t)); err != nil {
				return nil, err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	h := tw.header
	h.Records = tw.Records()
	return &h, nil
}

// Reader replays a recorded trace as a workload.Source. Each thread's
// accesses replay in recorded order and loop at the end (checkpoint
// restart).
type Reader struct {
	header  Header
	streams [][]workload.Access
	pos     []int
	refs    []uint64
}

// NewReader loads a whole trace from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	var h Header
	if err := gob.NewDecoder(br).Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if h.Threads <= 0 || h.Threads > 255 {
		return nil, fmt.Errorf("trace: corrupt thread count %d", h.Threads)
	}
	rd := &Reader{
		header:  h,
		streams: make([][]workload.Access, h.Threads),
		pos:     make([]int, h.Threads),
		refs:    make([]uint64, h.Threads),
	}
	var buf [recordBytes]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: truncated record: %w", err)
		}
		t := int(buf[0])
		if t >= h.Threads {
			return nil, fmt.Errorf("trace: record for thread %d of %d", t, h.Threads)
		}
		rd.streams[t] = append(rd.streams[t], workload.Access{
			Block: binary.LittleEndian.Uint64(buf[2:]),
			Write: buf[1]&flagWrite != 0,
		})
		rd.header.Records++
	}
	for t, s := range rd.streams {
		if len(s) == 0 {
			return nil, fmt.Errorf("trace: thread %d has no records", t)
		}
	}
	return rd, nil
}

// Header returns the trace metadata.
func (r *Reader) Header() Header { return r.header }

// Next replays thread t's next access, looping at end of stream.
func (r *Reader) Next(t int) workload.Access {
	s := r.streams[t]
	a := s[r.pos[t]]
	r.pos[t]++
	if r.pos[t] == len(s) {
		r.pos[t] = 0
	}
	r.refs[t]++
	return a
}

// Spec returns the recorded workload parameters.
func (r *Reader) Spec() workload.Spec { return r.header.Spec }

// FootprintBlocks returns the recorded footprint.
func (r *Reader) FootprintBlocks() uint64 { return r.header.Footprint }

// TotalRefs returns replayed references so far.
func (r *Reader) TotalRefs() uint64 {
	var n uint64
	for _, v := range r.refs {
		n += v
	}
	return n
}

// Loops reports how many times thread t's stream has wrapped.
func (r *Reader) Loops(t int) uint64 {
	return r.refs[t] / uint64(len(r.streams[t]))
}

var _ workload.Source = (*Reader)(nil)
