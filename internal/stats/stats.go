// Package stats provides the small-sample statistics used by the
// experiment harness for multi-seed replication, following the
// statistical simulation methodology of Alameldeen & Wood (HPCA 2003)
// that the paper's §V adopts: multi-threaded runs are non-deterministic
// across perturbations, so metrics are reported as means over replicated
// runs with a confidence half-width.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations of one metric. Derived statistics are
// cached between Adds: the harness formats every sample several times
// (mean, CI, CV all in one report row), and the seed implementation
// re-summed — and for Median re-sorted — the observations on every
// call. The caches preserve the original arithmetic exactly: the mean
// accumulates in Add order (the same float additions the per-call loop
// performed) and Var/Median compute the same two-pass/sort results,
// just at most once per mutation.
type Sample struct {
	xs  []float64
	sum float64 // running total, accumulated in Add order

	variance float64   // cached unbiased sample variance
	varOK    bool      // variance is current
	sorted   []float64 // cached ascending copy of xs (reused backing array)
	sortOK   bool      // sorted is current
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.varOK = false
	s.sortOK = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	if !s.varOK {
		m := s.Mean()
		sum := 0.0
		for _, x := range s.xs {
			d := x - m
			sum += d * d
		}
		s.variance = sum / float64(n-1)
		s.varOK = true
	}
	return s.variance
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Stddev() / math.Abs(m)
}

// tTable95 holds two-sided 95% Student-t critical values for small
// degrees of freedom; beyond the table the normal 1.96 applies.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean (0 for n < 2).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(tTable95) {
		t = tTable95[df]
	}
	return t * s.Stddev() / math.Sqrt(float64(n))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the middle observation (mean of the middle two for even
// counts; 0 for an empty sample).
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sortOK {
		s.sorted = append(s.sorted[:0], s.xs...)
		sort.Float64s(s.sorted)
		s.sortOK = true
	}
	if n%2 == 1 {
		return s.sorted[n/2]
	}
	return (s.sorted[n/2-1] + s.sorted[n/2]) / 2
}

// String summarizes the sample for reports.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d, cv=%.3f)", s.Mean(), s.CI95(), s.N(), s.CV())
}
