package stats

import (
	"math"
	"math/rand"
	"testing"
)

// closeEnough compares with a relative tolerance scaled to the values'
// magnitude (Welford and the two-pass oracle take different floating-
// point paths, so exact equality is not the contract).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestWelfordMatchesOracle streams random values of wildly different
// scales through both implementations and requires mean, variance,
// stddev and CI to agree at every prefix length.
func TestWelfordMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scales := []float64{1e-6, 1, 1e6, 1e9}
	for _, scale := range scales {
		var w Welford
		var s Sample
		for i := 0; i < 500; i++ {
			x := (rng.Float64() - 0.5) * scale
			w.Add(x)
			s.Add(x)
			if w.N() != s.N() {
				t.Fatalf("scale %g n=%d: count mismatch %d vs %d", scale, i+1, w.N(), s.N())
			}
			if !closeEnough(w.Mean(), s.Mean()) {
				t.Fatalf("scale %g n=%d: mean %g vs oracle %g", scale, i+1, w.Mean(), s.Mean())
			}
			if !closeEnough(w.Var(), s.Var()) {
				t.Fatalf("scale %g n=%d: var %g vs oracle %g", scale, i+1, w.Var(), s.Var())
			}
			if !closeEnough(w.CI95(), s.CI95()) {
				t.Fatalf("scale %g n=%d: ci95 %g vs oracle %g", scale, i+1, w.CI95(), s.CI95())
			}
		}
	}
}

// TestWelfordMergeOrderInvariant splits a stream into random chunks,
// merges them in shuffled orders, and requires the merged accumulator to
// match the sequential one and the oracle regardless of merge order.
func TestWelfordMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(400)
		xs := make([]float64, n)
		var seq Welford
		var oracle Sample
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			seq.Add(xs[i])
			oracle.Add(xs[i])
		}
		// Random chunking.
		var chunks []Welford
		for i := 0; i < n; {
			size := 1 + rng.Intn(n-i)
			var c Welford
			for j := i; j < i+size; j++ {
				c.Add(xs[j])
			}
			chunks = append(chunks, c)
			i += size
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		var merged Welford
		for _, c := range chunks {
			merged.Merge(c)
		}
		if merged.N() != seq.N() {
			t.Fatalf("trial %d: merged n=%d want %d", trial, merged.N(), seq.N())
		}
		if !closeEnough(merged.Mean(), oracle.Mean()) {
			t.Fatalf("trial %d: merged mean %g vs oracle %g", trial, merged.Mean(), oracle.Mean())
		}
		if !closeEnough(merged.Var(), oracle.Var()) {
			t.Fatalf("trial %d: merged var %g vs oracle %g", trial, merged.Var(), oracle.Var())
		}
	}
}

// TestWelfordEdgeCases pins the degenerate behaviours the sampled
// engine's convergence check relies on.
func TestWelfordEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var w Welford
		if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 || w.RelCI95() != 0 {
			t.Fatalf("empty accumulator not all-zero: %+v", w)
		}
	})
	t.Run("single sample", func(t *testing.T) {
		var w Welford
		w.Add(17.5)
		if w.Mean() != 17.5 {
			t.Fatalf("mean %g want 17.5", w.Mean())
		}
		if w.Var() != 0 || w.CI95() != 0 || w.RelCI95() != 0 {
			t.Fatalf("single sample must have zero spread: var=%g ci=%g", w.Var(), w.CI95())
		}
	})
	t.Run("zero variance", func(t *testing.T) {
		var w Welford
		for i := 0; i < 100; i++ {
			w.Add(3.25)
		}
		if w.Mean() != 3.25 {
			t.Fatalf("constant stream mean %g want 3.25", w.Mean())
		}
		if w.Var() != 0 {
			t.Fatalf("constant stream variance %g want exactly 0", w.Var())
		}
		if w.RelCI95() != 0 {
			t.Fatalf("constant stream rel CI %g want 0", w.RelCI95())
		}
	})
	t.Run("all-zero metric converges", func(t *testing.T) {
		var w Welford
		for i := 0; i < 10; i++ {
			w.Add(0)
		}
		if w.RelCI95() != 0 {
			t.Fatalf("identically-zero metric must report rel CI 0, got %g", w.RelCI95())
		}
	})
	t.Run("zero mean with spread never converges", func(t *testing.T) {
		var w Welford
		w.Add(-1)
		w.Add(1)
		if !math.IsInf(w.RelCI95(), 1) {
			t.Fatalf("zero-mean spread must report +Inf rel CI, got %g", w.RelCI95())
		}
	})
	t.Run("merge empty", func(t *testing.T) {
		var a, b Welford
		a.Add(2)
		a.Add(4)
		before := a
		a.Merge(b) // no-op
		if a != before {
			t.Fatalf("merging an empty accumulator changed state: %+v vs %+v", a, before)
		}
		b.Merge(a) // adopt
		if b != before {
			t.Fatalf("empty.Merge(x) must equal x: %+v vs %+v", b, before)
		}
	})
	t.Run("negative variance clamp", func(t *testing.T) {
		var w Welford
		// Near-identical huge values provoke cancellation in m2.
		for i := 0; i < 1000; i++ {
			w.Add(1e15 + float64(i%2)*1e-3)
		}
		if w.Var() < 0 || math.IsNaN(w.Stddev()) {
			t.Fatalf("variance must clamp non-negative: var=%g stddev=%g", w.Var(), w.Stddev())
		}
	})
}
