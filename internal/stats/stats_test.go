package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleOf(xs ...float64) *Sample {
	s := &Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestEmptySampleSafe(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 || s.CV() != 0 ||
		s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.N() != 0 {
		t.Error("empty sample not zero-safe")
	}
}

func TestMeanVar(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v", got)
	}
}

func TestSingleObservation(t *testing.T) {
	s := sampleOf(42)
	if s.Mean() != 42 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("single-observation stats wrong")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// n=2, stddev = sqrt(2)/... : xs = {0, 2}: mean 1, var 2, sd 1.4142.
	s := sampleOf(0, 2)
	want := 12.706 * math.Sqrt2 / math.Sqrt2 // t(df=1) * sd / sqrt(2)
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95LargeSampleUsesNormal(t *testing.T) {
	s := &Sample{}
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 2))
	}
	sd := s.Stddev()
	want := 1.96 * sd / 10
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestMinMaxMedian(t *testing.T) {
	s := sampleOf(5, 1, 9, 3)
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 4 { // (3+5)/2
		t.Errorf("Median = %v", s.Median())
	}
	if sampleOf(3, 1, 2).Median() != 2 {
		t.Error("odd median wrong")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	s := sampleOf(3, 1, 2)
	s.Median()
	if s.xs[0] != 3 {
		t.Error("Median sorted the underlying sample")
	}
}

func TestCV(t *testing.T) {
	s := sampleOf(10, 10, 10)
	if s.CV() != 0 {
		t.Error("constant sample has nonzero CV")
	}
	if sampleOf(-1, 1).CV() != 0 { // mean 0 guard
		t.Error("zero-mean CV not guarded")
	}
}

func TestStringFormat(t *testing.T) {
	got := sampleOf(1, 2, 3).String()
	if !strings.Contains(got, "n=3") {
		t.Errorf("String = %q", got)
	}
}

func TestCachesInvalidateOnAdd(t *testing.T) {
	// Interleave reads and Adds: every derived statistic must match a
	// freshly-built sample at each step, so the caches can never serve a
	// stale value after a mutation.
	xs := []float64{5, 1, 9, 3, 7, 2, 8}
	s := &Sample{}
	for i, x := range xs {
		s.Add(x)
		fresh := sampleOf(xs[:i+1]...)
		if s.Mean() != fresh.Mean() {
			t.Fatalf("after %d adds: Mean = %v, want %v", i+1, s.Mean(), fresh.Mean())
		}
		if s.Var() != fresh.Var() {
			t.Fatalf("after %d adds: Var = %v, want %v", i+1, s.Var(), fresh.Var())
		}
		if s.Median() != fresh.Median() {
			t.Fatalf("after %d adds: Median = %v, want %v", i+1, s.Median(), fresh.Median())
		}
		if s.CI95() != fresh.CI95() {
			t.Fatalf("after %d adds: CI95 = %v, want %v", i+1, s.CI95(), fresh.CI95())
		}
	}
}

func TestRepeatedReadsDoNotAllocate(t *testing.T) {
	// The harness formats each sample several times per report; cached
	// statistics make every read after the first allocation-free (the
	// seed implementation copied and sorted on every Median call).
	s := sampleOf(5, 1, 9, 3, 7, 2, 8, 4)
	s.Median() // populate the sorted cache once
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Mean()
		_ = s.Var()
		_ = s.Median()
		_ = s.CV()
		_ = s.CI95()
	})
	if allocs != 0 {
		t.Errorf("cached statistic reads allocate: %v allocs/run", allocs)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := &Sample{}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in Var.
			s.Add(math.Mod(x, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
