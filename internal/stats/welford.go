package stats

import "math"

// Welford accumulates a stream's mean and variance incrementally in O(1)
// space (Welford's online algorithm, with Chan et al.'s pairwise update
// for Merge). The sampled-simulation engine keeps one per (VM, metric)
// and feeds it one observation per detailed window, so the convergence
// check never re-reads the window history; Sample is the brute-force
// oracle its property tests compare against.
type Welford struct {
	n    uint64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al.'s parallel
// combination); the result summarizes the concatenated streams.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / n
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/n
	w.n += o.n
}

// N returns the observation count.
func (w *Welford) N() int { return int(w.n) }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for n < 2). Floating-point
// cancellation can leave m2 infinitesimally negative for near-constant
// streams; it is clamped so Stddev never takes a negative square root.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// CI95 returns the half-width of the 95% confidence interval for the
// mean (0 for n < 2), using the same Student-t table as Sample.CI95.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	df := int(w.n) - 1
	t := 1.96
	if df < len(tTable95) {
		t = tTable95[df]
	}
	return t * w.Stddev() / math.Sqrt(float64(w.n))
}

// RelCI95 returns CI95 relative to the mean's magnitude — the sampled
// engine's convergence criterion. A zero mean with zero spread reports 0
// (converged: the metric is identically absent); a zero mean with spread
// reports +Inf (never converged on a relative criterion).
func (w *Welford) RelCI95() float64 {
	ci := w.CI95()
	if ci == 0 {
		return 0
	}
	if w.mean == 0 {
		return math.Inf(1)
	}
	return ci / math.Abs(w.mean)
}
