package memctrl

import (
	"testing"

	"consim/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
	bad := []Config{
		{Controllers: 0, Latency: 150, Occupancy: 20},
		{Controllers: 2, Latency: 150, Occupancy: 20, Nodes: []int{0}},
		{Controllers: 1, Latency: 0, Occupancy: 20, Nodes: []int{0}},
		{Controllers: 1, Latency: 150, Occupancy: 0, Nodes: []int{0}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestControllerStriping(t *testing.T) {
	m := New(DefaultConfig())
	// Consecutive lines alternate controllers.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[m.Controller(sim.Addr(i*64))] = true
	}
	if len(seen) != 4 {
		t.Errorf("striping used %d controllers, want 4", len(seen))
	}
	// Same line, same controller.
	if m.Controller(0x40) != m.Controller(0x7f) {
		t.Error("one line split across controllers")
	}
	// Node mapping is within the mesh corners.
	for i := 0; i < 16; i++ {
		n := m.Node(sim.Addr(i * 64))
		if n != 0 && n != 3 && n != 12 && n != 15 {
			t.Errorf("controller node %d not at a corner", n)
		}
	}
}

func TestReadLatency(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Read(100, 0)
	if done != 100+150 {
		t.Errorf("unloaded read done at %d", done)
	}
}

func TestReadQueueing(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Read(0, 0)     // controller 0, occupies [0,20)
	b := m.Read(5, 0x100) // same controller (block 4 % 4 == 0), arrives mid-occupancy
	if a != 150 {
		t.Errorf("first read done at %d", a)
	}
	if b != 20+150 {
		t.Errorf("queued read done at %d, want 170", b)
	}
	if m.AvgWait() != 7.5 { // (0 + 15)/2
		t.Errorf("AvgWait = %v", m.AvgWait())
	}
}

func TestDifferentControllersNoQueueing(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	done := m.Read(0, 0x40) // next block, controller 1
	if done != 150 {
		t.Errorf("independent controller queued: %d", done)
	}
}

func TestWritebackOccupiesController(t *testing.T) {
	m := New(DefaultConfig())
	m.Writeback(0, 0)
	done := m.Read(0, 0)
	if done != 20+150 {
		t.Errorf("read after writeback done at %d", done)
	}
	if m.Writebacks != 1 || m.Reads != 1 {
		t.Errorf("counters = %d/%d", m.Reads, m.Writebacks)
	}
}

func TestResetStats(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	m.Writeback(0, 0)
	m.ResetStats()
	if m.Reads != 0 || m.Writebacks != 0 || m.AvgWait() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	New(Config{})
}
