package memctrl

import (
	"testing"

	"consim/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
	bad := []Config{
		{Controllers: 0, Latency: 150, Occupancy: 20},
		{Controllers: 2, Latency: 150, Occupancy: 20, Nodes: []int{0}},
		{Controllers: 1, Latency: 0, Occupancy: 20, Nodes: []int{0}},
		{Controllers: 1, Latency: 150, Occupancy: 0, Nodes: []int{0}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestControllerStriping(t *testing.T) {
	m := New(DefaultConfig())
	// Consecutive lines alternate controllers.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[m.Controller(sim.Addr(i*64))] = true
	}
	if len(seen) != 4 {
		t.Errorf("striping used %d controllers, want 4", len(seen))
	}
	// Same line, same controller.
	if m.Controller(0x40) != m.Controller(0x7f) {
		t.Error("one line split across controllers")
	}
	// Node mapping is within the mesh corners.
	for i := 0; i < 16; i++ {
		n := m.Node(sim.Addr(i * 64))
		if n != 0 && n != 3 && n != 12 && n != 15 {
			t.Errorf("controller node %d not at a corner", n)
		}
	}
}

func TestReadLatency(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Read(100, 0)
	if done != 100+150 {
		t.Errorf("unloaded read done at %d", done)
	}
}

func TestReadQueueing(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Read(0, 0)     // controller 0, occupies [0,20)
	b := m.Read(5, 0x100) // same controller (block 4 % 4 == 0), arrives mid-occupancy
	if a != 150 {
		t.Errorf("first read done at %d", a)
	}
	if b != 20+150 {
		t.Errorf("queued read done at %d, want 170", b)
	}
	if m.AvgWait() != 7.5 { // (0 + 15)/2
		t.Errorf("AvgWait = %v", m.AvgWait())
	}
}

func TestDifferentControllersNoQueueing(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	done := m.Read(0, 0x40) // next block, controller 1
	if done != 150 {
		t.Errorf("independent controller queued: %d", done)
	}
}

func TestWritebackOccupiesController(t *testing.T) {
	m := New(DefaultConfig())
	m.Writeback(0, 0)
	done := m.Read(0, 0)
	if done != 20+150 {
		t.Errorf("read after writeback done at %d", done)
	}
	if m.Writebacks != 1 || m.Reads != 1 {
		t.Errorf("counters = %d/%d", m.Reads, m.Writebacks)
	}
}

func TestResetStats(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	m.Writeback(0, 0)
	m.ResetStats()
	if m.Reads != 0 || m.Writebacks != 0 || m.AvgWait() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	New(Config{})
}

// TestShardedReplayMemctrlMerge checks the cross-group writeback merge:
// per-stream deferred logs, however the writebacks were partitioned,
// must retire in global rank order and leave the controllers in exactly
// the state a serial Writeback sequence would. Busy state chains
// request-to-request, so any order deviation shows up in busy cycles or
// queue depth.
func TestShardedReplayMemctrlMerge(t *testing.T) {
	mkWb := func(rank uint32) DeferredWriteback {
		// Spread addresses over all controllers and jitter arrival times
		// so merge mistakes perturb busy-chaining.
		return DeferredWriteback{
			Rank: rank,
			At:   sim.Cycle(10 * uint64(rank) % 97),
			Addr: sim.Addr(uint64(rank) * 64),
		}
	}
	const n = 200
	// Three adversarial partitions of ranks 0..n-1 into streams; each
	// stream is rank-sorted (the invariant the replay guarantees).
	partitions := []func(r uint32) int{
		func(r uint32) int { return int(r % 3) },     // round-robin
		func(r uint32) int { return int(r * 4 / n) }, // contiguous quarters
		func(r uint32) int {
			if r < 5 {
				return 0
			}
			return 1
		}, // lopsided
	}
	for pi, part := range partitions {
		// Fresh serial baseline per partition: the busy-state probes
		// below consume controller state.
		serial := New(DefaultConfig())
		for r := uint32(0); r < n; r++ {
			w := mkWb(r)
			serial.Writeback(w.At, w.Addr)
		}
		logs := make([][]DeferredWriteback, 5)
		for r := uint32(0); r < n; r++ {
			s := part(r)
			logs[s] = append(logs[s], mkWb(r))
		}
		m := New(DefaultConfig())
		m.ApplyMerged(logs)
		if m.Writebacks != serial.Writebacks {
			t.Errorf("partition %d: %d writebacks, want %d", pi, m.Writebacks, serial.Writebacks)
		}
		for now := sim.Cycle(0); now < 4000; now += 500 {
			if got, want := m.QueueDepth(now), serial.QueueDepth(now); got != want {
				t.Errorf("partition %d: queue depth at %d = %d, want %d", pi, now, got, want)
			}
		}
		// Busy state must be identical: issue one probing read per
		// controller and compare completion times.
		for c := 0; c < serial.Config().Controllers; c++ {
			addr := sim.Addr(uint64(c) * 64)
			if got, want := m.Read(0, addr), serial.Read(0, addr); got != want {
				t.Errorf("partition %d: controller %d read completes at %d, want %d", pi, c, got, want)
			}
		}
	}
}
