// Package memctrl models the off-chip memory controllers: the final,
// highest-latency stop for a request that misses everywhere on chip. The
// paper's machine has a flat 150-cycle memory latency; we add FCFS
// controller queueing so that destructive cache interference "spills
// over... and puts additional pressure on the memory controllers" as §I
// describes.
package memctrl

import (
	"fmt"

	"consim/internal/sim"
)

// Config sizes the memory system.
type Config struct {
	// Controllers is the number of memory controllers; addresses stripe
	// across them by block.
	Controllers int
	// Latency is the unloaded access latency (Table III: 150 cycles).
	Latency sim.Cycle
	// Occupancy is how long one request holds a controller before the
	// next can start (DRAM burst occupancy).
	Occupancy sim.Cycle
	// Nodes maps each controller to the mesh node where it attaches; len
	// must equal Controllers.
	Nodes []int
}

// DefaultConfig places four controllers at the corners of a 4x4 mesh with
// the paper's 150-cycle latency.
func DefaultConfig() Config {
	return Config{
		Controllers: 4,
		Latency:     150,
		Occupancy:   20,
		Nodes:       []int{0, 3, 12, 15},
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Controllers <= 0 {
		return fmt.Errorf("memctrl: non-positive controller count %d", c.Controllers)
	}
	if len(c.Nodes) != c.Controllers {
		return fmt.Errorf("memctrl: %d controllers but %d attach nodes", c.Controllers, len(c.Nodes))
	}
	if c.Latency == 0 {
		return fmt.Errorf("memctrl: zero memory latency")
	}
	if c.Occupancy == 0 {
		return fmt.Errorf("memctrl: zero controller occupancy")
	}
	return nil
}

// Mem is the set of memory controllers.
type Mem struct {
	cfg  Config
	busy []sim.Cycle

	Reads      uint64
	Writebacks uint64
	WaitSum    sim.Cycle
}

// New builds the memory system from cfg.
func New(cfg Config) *Mem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Mem{cfg: cfg, busy: make([]sim.Cycle, cfg.Controllers)}
}

// Config returns the configuration.
func (m *Mem) Config() Config { return m.cfg }

// Controller returns the controller index serving addr.
func (m *Mem) Controller(addr sim.Addr) int {
	return int(sim.BlockID(addr) % uint64(m.cfg.Controllers))
}

// Node returns the mesh node the controller for addr attaches to.
func (m *Mem) Node(addr sim.Addr) int {
	return m.cfg.Nodes[m.Controller(addr)]
}

// Read issues a demand fetch arriving at the controller at now and
// returns the cycle at which data is available at the controller's mesh
// node.
func (m *Mem) Read(now sim.Cycle, addr sim.Addr) sim.Cycle {
	c := m.Controller(addr)
	start := sim.Max(now, m.busy[c])
	m.WaitSum += start - now
	m.busy[c] = start + m.cfg.Occupancy
	m.Reads++
	return start + m.cfg.Latency
}

// Writeback retires a dirty eviction arriving at now. Writebacks consume
// controller occupancy (delaying later reads) but no requester waits on
// them.
func (m *Mem) Writeback(now sim.Cycle, addr sim.Addr) {
	c := m.Controller(addr)
	start := sim.Max(now, m.busy[c])
	m.busy[c] = start + m.cfg.Occupancy
	m.Writebacks++
}

// DeferredWriteback is one dirty eviction logged during a sharded
// barrier replay instead of being applied inline. Controller busy state
// chains request-to-request, so writebacks from different replay
// streams must retire in the serial replay's global order; Rank is the
// op's index in the merged log and defines that order.
type DeferredWriteback struct {
	Rank uint32
	At   sim.Cycle
	Addr sim.Addr
}

// ApplyMerged retires per-stream deferred writeback logs in ascending
// Rank. Each log is already rank-sorted (streams append in application
// order), so a k-way merge reproduces exactly the Writeback sequence
// the serial replay would have issued; equal ranks cannot cross streams
// because an op lives in exactly one stream. The cursor array lives on
// the stack for any realistic stream count, keeping the replay path
// allocation-free.
func (m *Mem) ApplyMerged(logs [][]DeferredWriteback) {
	var curArr [66]int
	cur := curArr[:]
	if len(logs) > len(curArr) {
		cur = make([]int, len(logs))
	}
	for i := range logs {
		cur[i] = 0
	}
	for {
		best := -1
		var br uint32
		for i, log := range logs {
			if cur[i] >= len(log) {
				continue
			}
			if r := log[cur[i]].Rank; best < 0 || r < br {
				best, br = i, r
			}
		}
		if best < 0 {
			return
		}
		w := logs[best][cur[best]]
		cur[best]++
		m.Writeback(w.At, w.Addr)
	}
}

// QueueDepth estimates how many requests are queued or in service
// across all controllers at now: each controller's remaining busy time
// divided by its per-request occupancy, rounded up. It is a live-load
// gauge for observability, not part of the timing model.
func (m *Mem) QueueDepth(now sim.Cycle) int {
	depth := sim.Cycle(0)
	for _, b := range m.busy {
		if b > now {
			depth += (b - now + m.cfg.Occupancy - 1) / m.cfg.Occupancy
		}
	}
	return int(depth)
}

// AvgWait returns mean queueing cycles per demand read.
func (m *Mem) AvgWait() float64 {
	if m.Reads == 0 {
		return 0
	}
	return float64(m.WaitSum) / float64(m.Reads)
}

// ResetStats zeroes the counters.
func (m *Mem) ResetStats() {
	m.Reads, m.Writebacks, m.WaitSum = 0, 0, 0
}

// SyncBusy copies per-controller busy state from src, leaving counters
// untouched. The parallel engine re-bases each domain's controller
// replica from the live model at every window barrier.
func (m *Mem) SyncBusy(src *Mem) { copy(m.busy, src.busy) }

// FoldBusyMax folds a replica's busy state into m by per-controller max
// (replicas only ever push busy-until forward from the shared base).
func (m *Mem) FoldBusyMax(repl *Mem) {
	for i, b := range repl.busy {
		if b > m.busy[i] {
			m.busy[i] = b
		}
	}
}
