// Package vm models the virtualization layer of the consolidated server:
// each virtual machine wraps one 4-thread workload instance, owns a
// private slice of the physical address space (the paper's "completely
// private address space; no data is shared across workloads"), and
// accumulates the per-VM statistics that §V reports.
package vm

import (
	"fmt"
	"math/bits"

	"consim/internal/sim"
	"consim/internal/workload"
)

// Stats accumulates one VM's measurement-window counters.
type Stats struct {
	// Refs is total memory references issued.
	Refs uint64
	// PrivMisses counts misses in the last level of *private* cache —
	// the events whose latency the paper's "miss latency" metric
	// averages.
	PrivMisses uint64
	// LLCMisses counts misses in the LLC bank the reference was sent to
	// (the paper's per-VM miss rate numerator).
	LLCMisses uint64
	// C2CClean / C2CDirty count private misses satisfied by an on-chip
	// cache-to-cache transfer of a clean / dirty line (Table II).
	C2CClean uint64
	C2CDirty uint64
	// MemReads counts demand fetches that left the chip.
	MemReads uint64
	// Invalidations counts remote copies killed by this VM's stores.
	Invalidations uint64
	// Upgrades counts stores that hit a Shared line and had to obtain
	// exclusivity through the directory.
	Upgrades uint64
	// MissLatSum accumulates the latency of every private miss.
	MissLatSum sim.Cycle
	// RegionMisses breaks LLC misses down by footprint region
	// (private, shared, migratory, scan) — a diagnostic for the
	// workload models' calibration.
	RegionMisses [4]uint64
	// NetCycles accumulates interconnect cycles attributed to this VM's
	// requests (used for the §V-A interconnect-latency observations).
	NetCycles sim.Cycle
}

// C2C returns total cache-to-cache transfers.
func (s *Stats) C2C() uint64 { return s.C2CClean + s.C2CDirty }

// MissRate returns LLC misses per reference (the paper's per-VM LLC miss
// rate).
func (s *Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Refs)
}

// AvgMissLatency returns mean cycles to satisfy a private-level miss.
func (s *Stats) AvgMissLatency() float64 {
	if s.PrivMisses == 0 {
		return 0
	}
	return float64(s.MissLatSum) / float64(s.PrivMisses)
}

// C2CFraction returns the fraction of private misses satisfied on chip.
func (s *Stats) C2CFraction() float64 {
	if s.PrivMisses == 0 {
		return 0
	}
	return float64(s.C2C()) / float64(s.PrivMisses)
}

// C2COfLLCMisses returns the fraction of misses past the core's own LLC
// bank that were satisfied by another on-chip cache. In the private-LLC
// configuration this is Table II's "percent of accesses resulting in a
// cache-to-cache transfer" (the last level of private cache is the
// private L2, so its misses are the denominator).
func (s *Stats) C2COfLLCMisses() float64 {
	onPath := s.LLCMisses
	if onPath == 0 {
		return 0
	}
	return float64(s.C2C()) / float64(onPath)
}

// C2CDirtyShare returns the dirty fraction of cache-to-cache transfers
// (Table II's clean/dirty split).
func (s *Stats) C2CDirtyShare() float64 {
	if s.C2C() == 0 {
		return 0
	}
	return float64(s.C2CDirty) / float64(s.C2C())
}

// VM is one consolidated guest.
type VM struct {
	ID    int
	Gen   workload.Source
	Base  sim.Addr // start of this VM's private physical region
	Stats Stats

	touched []uint64 // bitset over footprint blocks
	nTouch  uint64
}

// New builds VM id for the given workload generator, placing its address
// space at base.
func New(id int, gen workload.Source, base sim.Addr) *VM {
	if base%sim.LineBytes != 0 {
		panic(fmt.Sprintf("vm: unaligned base %#x", base))
	}
	fp := gen.FootprintBlocks()
	return &VM{
		ID:      id,
		Gen:     gen,
		Base:    base,
		touched: make([]uint64, (fp+63)/64),
	}
}

// Name returns the workload name.
func (v *VM) Name() string { return v.Gen.Spec().Name }

// Class returns the workload class.
func (v *VM) Class() workload.Class { return v.Gen.Spec().Class }

// AddrOf maps a workload-relative block index into this VM's physical
// region.
func (v *VM) AddrOf(block uint64) sim.Addr {
	return v.Base + sim.Addr(block*sim.LineBytes)
}

// BlockOf inverts AddrOf.
func (v *VM) BlockOf(addr sim.Addr) uint64 {
	return uint64(addr-v.Base) / sim.LineBytes
}

// Owns reports whether addr falls inside this VM's region.
func (v *VM) Owns(addr sim.Addr) bool {
	return addr >= v.Base && v.BlockOf(addr) < v.Gen.FootprintBlocks()
}

// Touch records that block was referenced; the distinct-block count is
// Table II's footprint column.
func (v *VM) Touch(block uint64) {
	w, b := block/64, block%64
	if v.touched[w]&(1<<b) == 0 {
		v.touched[w] |= 1 << b
		v.nTouch++
	}
}

// PrefetchTouch reads block's footprint-bitmap word without changing any
// state, pulling its host cache line in ahead of a coming Touch (the
// warming walk's lookahead prefetch). Returns the bits read so callers
// can fold them into a sink and keep the load live.
func (v *VM) PrefetchTouch(block uint64) uint64 { return v.touched[block/64] }

// TouchedBlocks returns the number of distinct 64-byte blocks referenced.
func (v *VM) TouchedBlocks() uint64 { return v.nTouch }

// TouchWords returns the length of a footprint bitmap shadow (one uint64
// per 64 blocks), for engines that track touches privately per domain
// and fold them in with MergeTouched.
func (v *VM) TouchWords() int { return len(v.touched) }

// MergeTouched ORs a shadow footprint bitmap (as built by a parallel
// engine's per-domain workers) into the VM's own and recomputes the
// distinct-block count. Idempotent, so repeated folds of a cumulative
// shadow are safe.
func (v *VM) MergeTouched(shadow []uint64) {
	for i, w := range shadow {
		v.touched[i] |= w
	}
	var n uint64
	for _, w := range v.touched {
		n += uint64(bits.OnesCount64(w))
	}
	v.nTouch = n
}

// ResetStats clears the measurement counters (footprint tracking is
// cumulative, matching the paper's whole-run block counts).
func (v *VM) ResetStats() { v.Stats = Stats{} }

// RegionEnd returns the first address past the VM's region, aligned up to
// align bytes, for laying out the next VM.
func (v *VM) RegionEnd(align sim.Addr) sim.Addr {
	end := v.Base + sim.Addr(v.Gen.FootprintBlocks()*sim.LineBytes)
	if r := end % align; r != 0 {
		end += align - r
	}
	return end
}
