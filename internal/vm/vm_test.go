package vm

import (
	"testing"

	"consim/internal/sim"
	"consim/internal/workload"
)

func newVM(t *testing.T, base sim.Addr) *VM {
	t.Helper()
	gen := workload.NewGenerator(workload.Specs()[workload.TPCH].Scaled(64), 4, 1)
	return New(0, gen, base)
}

func TestAddrMappingRoundtrip(t *testing.T) {
	v := newVM(t, 1<<20)
	for _, b := range []uint64{0, 1, 100, 4095} {
		a := v.AddrOf(b)
		if a%sim.LineBytes != 0 {
			t.Errorf("AddrOf(%d) unaligned: %#x", b, a)
		}
		if v.BlockOf(a) != b {
			t.Errorf("roundtrip failed for block %d", b)
		}
	}
}

func TestOwns(t *testing.T) {
	v := newVM(t, 1<<20)
	if !v.Owns(v.AddrOf(0)) {
		t.Error("does not own its base")
	}
	last := v.Gen.FootprintBlocks() - 1
	if !v.Owns(v.AddrOf(last)) {
		t.Error("does not own its last block")
	}
	if v.Owns(v.AddrOf(last) + sim.LineBytes) {
		t.Error("owns past its region")
	}
	if v.Owns(0) {
		t.Error("owns below its base")
	}
}

func TestNewPanicsOnUnalignedBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned base accepted")
		}
	}()
	newVM(t, 7)
}

func TestTouchCountsDistinct(t *testing.T) {
	v := newVM(t, 0)
	v.Touch(5)
	v.Touch(5)
	v.Touch(6)
	v.Touch(1000)
	if v.TouchedBlocks() != 3 {
		t.Errorf("TouchedBlocks = %d", v.TouchedBlocks())
	}
}

func TestResetStatsKeepsFootprint(t *testing.T) {
	v := newVM(t, 0)
	v.Touch(1)
	v.Stats.Refs = 99
	v.ResetStats()
	if v.Stats.Refs != 0 {
		t.Error("stats not cleared")
	}
	if v.TouchedBlocks() != 1 {
		t.Error("footprint cleared; must be cumulative")
	}
}

func TestRegionEndAligned(t *testing.T) {
	v := newVM(t, 0)
	end := v.RegionEnd(1 << 20)
	if end%(1<<20) != 0 {
		t.Errorf("RegionEnd unaligned: %#x", end)
	}
	if end < v.AddrOf(v.Gen.FootprintBlocks()-1) {
		t.Error("RegionEnd inside the region")
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{
		Refs: 1000, PrivMisses: 100, LLCMisses: 50,
		C2CClean: 20, C2CDirty: 10, MemReads: 25,
		MissLatSum: 5000,
	}
	if s.C2C() != 30 {
		t.Errorf("C2C = %d", s.C2C())
	}
	if s.MissRate() != 0.05 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.AvgMissLatency() != 50 {
		t.Errorf("AvgMissLatency = %v", s.AvgMissLatency())
	}
	if s.C2CFraction() != 0.3 {
		t.Errorf("C2CFraction = %v", s.C2CFraction())
	}
	if s.C2COfLLCMisses() != 0.6 {
		t.Errorf("C2COfLLCMisses = %v", s.C2COfLLCMisses())
	}
	if s.C2CDirtyShare() != 10.0/30 {
		t.Errorf("C2CDirtyShare = %v", s.C2CDirtyShare())
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.AvgMissLatency() != 0 || s.C2CFraction() != 0 ||
		s.C2COfLLCMisses() != 0 || s.C2CDirtyShare() != 0 {
		t.Error("zero stats not zero-safe")
	}
}

func TestVMIdentity(t *testing.T) {
	v := newVM(t, 0)
	if v.Name() != "TPC-H" || v.Class() != workload.TPCH {
		t.Errorf("identity = %s/%v", v.Name(), v.Class())
	}
}
