package mesh

import (
	"fmt"

	"consim/internal/sim"
)

// Routing selects the network's routing algorithm.
type Routing int

// Routing algorithms.
const (
	// DOR is deterministic dimension-order (X then Y) routing — the
	// paper's configuration.
	DOR Routing = iota
	// O1TURN picks X-then-Y or Y-then-X per packet at injection,
	// balancing load across the two minimal orders; each order runs in
	// its own virtual-channel class to stay deadlock-free.
	O1TURN
)

// String names the algorithm.
func (r Routing) String() string {
	if r == O1TURN {
		return "o1turn"
	}
	return "dor"
}

// Packet is one message traversing the network.
type Packet struct {
	ID       uint64
	Src, Dst int
	Flits    int
	// YFirst routes Y-then-X (O1TURN's second class).
	YFirst   bool
	Injected sim.Cycle
	// Delivered is set by the network when the tail flit ejects.
	Delivered sim.Cycle
	// Payload is opaque to the network; system models attach request
	// context.
	Payload any
}

// NetConfig sizes the flit-level network.
type NetConfig struct {
	Geometry   Geometry
	VCs        int // virtual channels per input port
	BufDepth   int // flit buffer depth per VC
	PipeStages int // router pipeline depth (paper: 3, speculative VA/SA)
	Routing    Routing
}

// DefaultNetConfig returns the paper's configuration for n-node chips
// arranged as close to square as possible (16 nodes -> 4x4).
func DefaultNetConfig(nodes int) NetConfig {
	w := 1
	for w*w < nodes {
		w++
	}
	h := (nodes + w - 1) / w
	return NetConfig{
		Geometry:   Geometry{Width: w, Height: h},
		VCs:        4,
		BufDepth:   4,
		PipeStages: 3,
	}
}

// Validate reports whether the configuration is usable.
func (c NetConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.VCs <= 0 || c.BufDepth <= 0 || c.PipeStages <= 0 {
		return fmt.Errorf("mesh: non-positive VCs/buffers/pipeline (%d/%d/%d)", c.VCs, c.BufDepth, c.PipeStages)
	}
	if c.Routing == O1TURN && c.VCs < 2 {
		return fmt.Errorf("mesh: O1TURN needs at least 2 VCs for its two deadlock-free classes")
	}
	return nil
}

// Network is the flit-level mesh. Drive it with Inject and Tick; finished
// packets arrive on the Delivered slice (drained by the caller).
type Network struct {
	cfg     NetConfig
	routers []*router
	now     sim.Cycle
	nextID  uint64
	rng     *sim.RNG // O1TURN order selection

	// Delivered accumulates ejected packets; callers drain it.
	Delivered []*Packet

	// Stats.
	InjectedPkts  uint64
	DeliveredPkts uint64
	LatencySum    sim.Cycle
	FlitHops      uint64
}

// NewNetwork builds a flit-level mesh from cfg.
func NewNetwork(cfg NetConfig) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{cfg: cfg, rng: sim.NewRNG(0x0172)}
	n.routers = make([]*router, cfg.Geometry.Nodes())
	for i := range n.routers {
		n.routers[i] = newRouter(i, cfg)
	}
	return n
}

// Now returns the current cycle.
func (n *Network) Now() sim.Cycle { return n.now }

// Config returns the network configuration.
func (n *Network) Config() NetConfig { return n.cfg }

// Inject queues a packet of the given flit count at src for dst. It
// returns the packet so callers can watch for delivery. Injection is
// accepted unconditionally into the source queue; backpressure applies
// from the local port inward.
func (n *Network) Inject(src, dst, flits int) *Packet {
	if flits <= 0 {
		flits = 1
	}
	n.nextID++
	p := &Packet{ID: n.nextID, Src: src, Dst: dst, Flits: flits, Injected: n.now}
	if n.cfg.Routing == O1TURN {
		p.YFirst = n.rng.Bool(0.5)
	}
	n.routers[src].injectQ = append(n.routers[src].injectQ, p)
	n.InjectedPkts++
	return p
}

// Tick advances the network one cycle.
func (n *Network) Tick() {
	// Phase 1: all routers compute this cycle's switch traversals based
	// on state from the previous cycle.
	for _, r := range n.routers {
		r.allocate(n)
	}
	// Phase 2: move winning flits across the switch and the links, and
	// return credits.
	for _, r := range n.routers {
		r.traverse(n)
	}
	// Phase 3: accept new injections into free local-port VCs.
	for _, r := range n.routers {
		r.inject(n)
	}
	n.now++
}

// Run ticks the network for d cycles.
func (n *Network) Run(d sim.Cycle) {
	for i := sim.Cycle(0); i < d; i++ {
		n.Tick()
	}
}

// Drain ticks until all in-flight packets are delivered or the budget is
// exhausted; it returns true if the network fully drained. Tests use this
// to detect deadlock (a correct DOR VC network always drains).
func (n *Network) Drain(budget sim.Cycle) bool {
	for i := sim.Cycle(0); i < budget; i++ {
		if n.DeliveredPkts == n.InjectedPkts {
			return true
		}
		n.Tick()
	}
	return n.DeliveredPkts == n.InjectedPkts
}

// AvgLatency returns the mean injection-to-ejection packet latency.
func (n *Network) AvgLatency() float64 {
	if n.DeliveredPkts == 0 {
		return 0
	}
	return float64(n.LatencySum) / float64(n.DeliveredPkts)
}

func (n *Network) deliver(p *Packet) {
	p.Delivered = n.now
	n.Delivered = append(n.Delivered, p)
	n.DeliveredPkts++
	n.LatencySum += p.Delivered - p.Injected
}
