package mesh

import (
	"testing"
	"testing/quick"
)

func TestGeometryCoords(t *testing.T) {
	g := Geometry{Width: 4, Height: 4}
	if g.Nodes() != 16 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	x, y := g.Coord(5)
	if x != 1 || y != 1 {
		t.Errorf("Coord(5) = (%d,%d)", x, y)
	}
	if g.Node(3, 2) != 11 {
		t.Errorf("Node(3,2) = %d", g.Node(3, 2))
	}
	// Roundtrip property.
	f := func(n uint8) bool {
		id := int(n) % 16
		x, y := g.Coord(id)
		return g.Node(x, y) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryHops(t *testing.T) {
	g := Geometry{Width: 4, Height: 4}
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 15, 6}, {5, 10, 2}, {3, 12, 6},
	}
	for _, c := range cases {
		if h := g.Hops(c.a, c.b); h != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, h, c.want)
		}
		if g.Hops(c.b, c.a) != c.want {
			t.Errorf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestDORRouteReachesDestination(t *testing.T) {
	g := Geometry{Width: 4, Height: 4}
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			cur, steps := src, 0
			for cur != dst {
				p := g.route(cur, dst)
				if p == Local {
					t.Fatalf("route(%d->%d) ejected early at %d", src, dst, cur)
				}
				next := g.neighbor(cur, p)
				if next < 0 {
					t.Fatalf("route(%d->%d) left the mesh at %d via %v", src, dst, cur, p)
				}
				cur = next
				steps++
				if steps > 8 {
					t.Fatalf("route(%d->%d) did not converge", src, dst)
				}
			}
			if steps != g.Hops(src, dst) {
				t.Errorf("route(%d->%d) took %d steps, want %d", src, dst, steps, g.Hops(src, dst))
			}
			if g.route(dst, dst) != Local {
				t.Errorf("route at destination %d not Local", dst)
			}
		}
	}
}

func TestDORXBeforeY(t *testing.T) {
	g := Geometry{Width: 4, Height: 4}
	// From 0 (0,0) to 15 (3,3): must go East first.
	if p := g.route(0, 15); p != East {
		t.Errorf("first hop = %v, want East", p)
	}
	// From 3 (3,0) to 12 (0,3): West first.
	if p := g.route(3, 12); p != West {
		t.Errorf("first hop = %v, want West", p)
	}
	// Same column: Y only.
	if p := g.route(1, 13); p != South {
		t.Errorf("same-column hop = %v, want South", p)
	}
}

func TestNeighborEdges(t *testing.T) {
	g := Geometry{Width: 4, Height: 4}
	if g.neighbor(0, North) != -1 || g.neighbor(0, West) != -1 {
		t.Error("corner 0 has phantom neighbors")
	}
	if g.neighbor(15, South) != -1 || g.neighbor(15, East) != -1 {
		t.Error("corner 15 has phantom neighbors")
	}
	if g.neighbor(5, East) != 6 || g.neighbor(5, South) != 9 {
		t.Error("interior neighbors wrong")
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]Port{{North, South}, {East, West}}
	for _, p := range pairs {
		if opposite(p[0]) != p[1] || opposite(p[1]) != p[0] {
			t.Errorf("opposite broken for %v/%v", p[0], p[1])
		}
	}
}

func TestGeometryValidate(t *testing.T) {
	if (Geometry{Width: 0, Height: 4}).Validate() == nil {
		t.Error("zero width accepted")
	}
	if (Geometry{Width: 4, Height: 4}).Validate() != nil {
		t.Error("valid geometry rejected")
	}
}

func TestDefaultNetConfig(t *testing.T) {
	cfg := DefaultNetConfig(16)
	if cfg.Geometry.Width != 4 || cfg.Geometry.Height != 4 {
		t.Errorf("16 nodes -> %dx%d", cfg.Geometry.Width, cfg.Geometry.Height)
	}
	if cfg.PipeStages != 3 {
		t.Errorf("pipeline = %d, want 3 (paper)", cfg.PipeStages)
	}
	cfg = DefaultNetConfig(8)
	if cfg.Geometry.Nodes() < 8 {
		t.Error("geometry too small for 8 nodes")
	}
}

func TestDegenerateGeometries(t *testing.T) {
	// 1x1 mesh: everything is local.
	n := NewNetwork(NetConfig{Geometry: Geometry{Width: 1, Height: 1}, VCs: 2, BufDepth: 2, PipeStages: 3})
	n.Inject(0, 0, 3)
	if !n.Drain(100) {
		t.Fatal("1x1 mesh failed to deliver a local packet")
	}
	// 1x8 line: pure X routing.
	line := NewNetwork(NetConfig{Geometry: Geometry{Width: 8, Height: 1}, VCs: 2, BufDepth: 2, PipeStages: 3})
	p := line.Inject(0, 7, 1)
	if !line.Drain(1000) {
		t.Fatal("line mesh failed to deliver")
	}
	m := NewModel(Geometry{Width: 8, Height: 1}, 3)
	if got, want := p.Delivered-p.Injected, m.Unloaded(0, 7, 1); got != want {
		t.Errorf("line latency %d != %d", got, want)
	}
	// 1xN vertical line.
	col := NewNetwork(NetConfig{Geometry: Geometry{Width: 1, Height: 5}, VCs: 2, BufDepth: 2, PipeStages: 3})
	col.Inject(0, 4, 2)
	if !col.Drain(1000) {
		t.Fatal("column mesh failed to deliver")
	}
}

func TestNonSquareDefaultConfig(t *testing.T) {
	cfg := DefaultNetConfig(32) // 6x6 = 36 >= 32
	if cfg.Geometry.Nodes() < 32 {
		t.Errorf("geometry %dx%d too small for 32 nodes", cfg.Geometry.Width, cfg.Geometry.Height)
	}
	if cfg.Validate() != nil {
		t.Error("default config for 32 nodes invalid")
	}
}
