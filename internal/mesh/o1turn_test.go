package mesh

import (
	"testing"

	"consim/internal/sim"
)

func o1turnNet() *Network {
	cfg := DefaultNetConfig(16)
	cfg.Routing = O1TURN
	return NewNetwork(cfg)
}

func TestO1TURNValidation(t *testing.T) {
	cfg := DefaultNetConfig(16)
	cfg.Routing = O1TURN
	cfg.VCs = 1
	if cfg.Validate() == nil {
		t.Error("O1TURN with one VC accepted")
	}
	if DOR.String() != "dor" || O1TURN.String() != "o1turn" {
		t.Error("routing names wrong")
	}
}

func TestO1TURNDelivery(t *testing.T) {
	n := o1turnNet()
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			n.Inject(s, d, 3)
		}
	}
	if !n.Drain(30000) {
		t.Fatalf("all-pairs under O1TURN did not drain: %d/%d", n.DeliveredPkts, n.InjectedPkts)
	}
}

func TestO1TURNUsesBothOrders(t *testing.T) {
	n := o1turnNet()
	xy, yx := 0, 0
	for i := 0; i < 200; i++ {
		p := n.Inject(0, 15, 1)
		if p.YFirst {
			yx++
		} else {
			xy++
		}
	}
	if xy == 0 || yx == 0 {
		t.Errorf("order split degenerate: xy=%d yx=%d", xy, yx)
	}
}

func TestO1TURNHeavyRandomDrains(t *testing.T) {
	// Deadlock check for the two-class VC scheme.
	n := o1turnNet()
	r := sim.NewRNG(5)
	for i := 0; i < 2000; i++ {
		n.Inject(r.Intn(16), r.Intn(16), 1+r.Intn(5))
		if i%10 == 0 {
			n.Tick()
		}
	}
	if !n.Drain(200000) {
		t.Fatalf("O1TURN random traffic deadlocked: %d/%d", n.DeliveredPkts, n.InjectedPkts)
	}
}

func TestO1TURNMinimalPathLength(t *testing.T) {
	// Both orders are minimal: unloaded latency must equal DOR's.
	g := Geometry{Width: 4, Height: 4}
	m := NewModel(g, 3)
	for dst := 1; dst < 16; dst++ {
		n := o1turnNet()
		p := n.Inject(0, dst, 1)
		if !n.Drain(1000) {
			t.Fatalf("dst %d not delivered", dst)
		}
		if got, want := p.Delivered-p.Injected, m.Unloaded(0, dst, 1); got != want {
			t.Errorf("dst %d: O1TURN latency %d != minimal %d", dst, got, want)
		}
	}
}

func TestO1TURNBeatsDORUnderTranspose(t *testing.T) {
	// Transpose-like traffic (corner to corner both ways plus crossing
	// flows) concentrates DOR on a few links; O1TURN splits it across
	// the two orders. Compare saturation throughput over a fixed window.
	run := func(routing Routing) uint64 {
		cfg := DefaultNetConfig(16)
		cfg.Routing = routing
		n := NewNetwork(cfg)
		g := cfg.Geometry
		r := sim.NewRNG(9)
		for c := 0; c < 8000; c++ {
			// Saturating transpose permutation: (x,y) -> (y,x).
			for node := 0; node < 16; node++ {
				x, y := g.Coord(node)
				if x == y || !r.Bool(0.35) {
					continue
				}
				n.Inject(node, g.Node(y, x), 5)
			}
			n.Tick()
		}
		return n.DeliveredPkts
	}
	dor := run(DOR)
	o1 := run(O1TURN)
	if o1 <= dor {
		t.Errorf("O1TURN delivered %d <= DOR %d under transpose load", o1, dor)
	}
}

func TestO1TURNVCClassSeparation(t *testing.T) {
	// Flits of the two orders must never share a virtual channel.
	n := o1turnNet()
	r := sim.NewRNG(3)
	for i := 0; i < 400; i++ {
		n.Inject(r.Intn(16), r.Intn(16), 3)
	}
	half := n.Config().VCs / 2
	for tick := 0; tick < 4000; tick++ {
		n.Tick()
		for _, rt := range n.routers {
			for p := Port(0); p < numPorts; p++ {
				for v := 0; v < n.Config().VCs; v++ {
					for _, f := range rt.in[p][v].buf {
						if p == Local {
							continue // injection uses the class mapping below anyway
						}
						if f.pkt.YFirst && v < half {
							t.Fatalf("YX packet on XY-class VC %d", v)
						}
						if !f.pkt.YFirst && v >= half {
							t.Fatalf("XY packet on YX-class VC %d", v)
						}
					}
				}
			}
		}
		if n.DeliveredPkts == n.InjectedPkts {
			return
		}
	}
	t.Fatal("traffic did not drain during class check")
}
