package mesh

import "consim/internal/sim"

// Model is the fast analytic mesh model used inside the consolidation
// sweeps. It charges the same unloaded latency as the flit-level Network
// ((hops+1)*PipeStages + flits-1; asserted equal by tests) and models
// contention with a per-link utilization estimator: each link tracks an
// exponentially-weighted moving average of its offered flit rate, and
// messages crossing a loaded link pay a queueing delay that grows toward
// saturation.
//
// A reservation-calendar model was deliberately rejected: request paths
// reserve link time at *future* instants (a memory response leaves the
// controller ~150 cycles after the request routes), and a scalar
// busy-until pointer cannot represent the idle gaps before those
// reservations, which serializes logically-concurrent transfers and
// inflates waits by orders of magnitude. The utilization model keeps
// contention sensitivity (hot links slow down, per the paper's §V-A
// interconnect observations) while staying gap-accurate and O(1).
type Model struct {
	g    Geometry
	pipe sim.Cycle

	// next packs the DOR next hop for every (cur, dst) pair: output port
	// in the high 3 bits, neighbor node in the low 13. Routing a hop is a
	// single table load instead of two Coord divisions and a branch tree.
	next   []uint16
	stride int

	last []([numPorts]sim.Cycle)
	util []([numPorts]float64)

	// Transfers counts routed messages; WaitCycles accumulates link
	// queueing, so WaitCycles/Transfers exposes interconnect contention
	// in reports.
	Transfers  uint64
	WaitCycles sim.Cycle
	HopsSum    uint64

	// LinkWait, when non-nil, accumulates wait per (node, port) for
	// diagnostics.
	LinkWait [][numPorts]sim.Cycle
}

// utilTau is the EWMA time constant in cycles: long enough to smooth
// per-message burstiness, short enough to track phase changes.
const utilTau = 1024.0

// utilCap bounds the estimated utilization below saturation so the
// queueing term stays finite.
const utilCap = 0.95

// NewModel returns an analytic model over g with the given router
// pipeline depth.
func NewModel(g Geometry, pipeStages int) *Model {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if pipeStages <= 0 {
		panic("mesh: non-positive pipeline depth")
	}
	n := g.Nodes()
	if n > 1<<13 {
		panic("mesh: geometry exceeds packed route-table capacity")
	}
	m := &Model{
		g:      g,
		pipe:   sim.Cycle(pipeStages),
		next:   make([]uint16, n*n),
		stride: n,
		last:   make([][numPorts]sim.Cycle, n),
		util:   make([][numPorts]float64, n),
	}
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			p := g.route(cur, dst)
			nb := cur
			if p != Local {
				nb = g.neighbor(cur, p)
			}
			m.next[cur*n+dst] = uint16(p)<<13 | uint16(nb)
		}
	}
	return m
}

// Geometry returns the modeled mesh shape.
func (m *Model) Geometry() Geometry { return m.g }

// Latency routes one message of the given flit count from src to dst
// starting at now, updating per-link load along the DOR path, and returns
// the cycle at which the tail arrives at dst.
func (m *Model) Latency(now sim.Cycle, src, dst, flits int) sim.Cycle {
	if flits <= 0 {
		flits = 1
	}
	m.Transfers++
	t := now
	cur := src
	fl := float64(flits)
	half := fl * 0.5
	for cur != dst {
		nx := m.next[cur*m.stride+dst]
		p := Port(nx >> 13)

		// Update the link's offered-rate EWMA with this message.
		dt := float64(1)
		if t > m.last[cur][p] {
			dt = float64(t - m.last[cur][p])
			m.last[cur][p] = t
		}
		num := m.util[cur][p]*utilTau + fl
		den := utilTau + dt
		m.util[cur][p] = num / den

		// M/D/1-flavoured queueing delay: service time is the message's
		// serialization latency; delay grows as rho/(1-rho). With
		// u = num/den, the ratio u/(1-u) is num/(den-num): one division
		// per hop instead of two (divides dominate this loop). The
		// utilization cap keeps the term finite near saturation.
		var wait sim.Cycle
		if d := den - num; d > den*(1-utilCap) {
			wait = sim.Cycle(num / d * half)
		} else {
			wait = sim.Cycle(utilCap / (1 - utilCap) * half)
		}
		m.WaitCycles += wait
		if m.LinkWait != nil {
			m.LinkWait[cur][p] += wait
		}

		t += wait + m.pipe
		cur = int(nx & 0x1fff)
		m.HopsSum++
	}
	// Ejection through the destination router pipeline plus tail
	// serialization.
	return t + m.pipe + sim.Cycle(flits-1)
}

// Unloaded returns the zero-contention latency between src and dst for a
// packet of the given flit count, without touching the load estimators.
func (m *Model) Unloaded(src, dst, flits int) sim.Cycle {
	if flits <= 0 {
		flits = 1
	}
	h := sim.Cycle(m.g.Hops(src, dst))
	return (h+1)*m.pipe + sim.Cycle(flits-1)
}

// AvgWait returns mean link-queueing cycles per transfer.
func (m *Model) AvgWait() float64 {
	if m.Transfers == 0 {
		return 0
	}
	return float64(m.WaitCycles) / float64(m.Transfers)
}

// AvgHops returns the mean hop count per transfer.
func (m *Model) AvgHops() float64 {
	if m.Transfers == 0 {
		return 0
	}
	return float64(m.HopsSum) / float64(m.Transfers)
}

// ResetStats zeroes the contention counters (load estimators persist;
// they decay naturally as time advances).
func (m *Model) ResetStats() {
	m.Transfers, m.WaitCycles, m.HopsSum = 0, 0, 0
}

// SyncLoad copies the per-link load estimators (EWMA utilization and
// last-update times) from src, leaving counters untouched. The parallel
// engine re-bases each domain's mesh replica from the folded live model
// at every window barrier. Geometries must match.
func (m *Model) SyncLoad(src *Model) {
	copy(m.last, src.last)
	copy(m.util, src.util)
}

// FoldLoadDelta folds a domain replica's load evolution into m: every
// link takes repl's utilization movement since base (the snapshot the
// replica was last synced from) additively, clamped at zero, and its
// last-update time by max. Links a replica never touched contribute a
// zero delta, so folding N replicas accumulates exactly the traffic each
// domain routed during the window.
func (m *Model) FoldLoadDelta(repl, base *Model) {
	for n := range m.util {
		for p := 0; p < int(numPorts); p++ {
			u := m.util[n][p] + repl.util[n][p] - base.util[n][p]
			if u < 0 {
				u = 0
			}
			m.util[n][p] = u
			if repl.last[n][p] > m.last[n][p] {
				m.last[n][p] = repl.last[n][p]
			}
		}
	}
}
