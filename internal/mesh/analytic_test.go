package mesh

import (
	"testing"

	"consim/internal/sim"
)

func model4() *Model {
	return NewModel(Geometry{Width: 4, Height: 4}, 3)
}

func TestModelUnloadedFormula(t *testing.T) {
	m := model4()
	// (hops+1)*pipe + flits-1.
	if got := m.Unloaded(0, 0, 1); got != 3 {
		t.Errorf("local 1-flit = %d", got)
	}
	if got := m.Unloaded(0, 15, 1); got != 21 {
		t.Errorf("6-hop 1-flit = %d", got)
	}
	if got := m.Unloaded(0, 15, 5); got != 25 {
		t.Errorf("6-hop 5-flit = %d", got)
	}
}

func TestModelLatencyUnloadedMatches(t *testing.T) {
	m := model4()
	for dst := 0; dst < 16; dst++ {
		fresh := model4()
		got := fresh.Latency(100, 0, dst, 5) - 100
		if want := m.Unloaded(0, dst, 5); got != want {
			t.Errorf("dst %d: Latency %d != Unloaded %d", dst, got, want)
		}
	}
}

func TestModelContentionGrowsWithBursts(t *testing.T) {
	m := model4()
	// A sustained burst over the same path must drive waits above zero
	// and push later transfers past the unloaded latency.
	var last sim.Cycle
	for i := 0; i < 300; i++ {
		last = m.Latency(sim.Cycle(i), 0, 3, 5) - sim.Cycle(i)
	}
	if last <= m.Unloaded(0, 3, 5) {
		t.Errorf("burst latency %d not above unloaded %d", last, m.Unloaded(0, 3, 5))
	}
	if m.WaitCycles == 0 {
		t.Error("wait cycles not recorded")
	}
}

func TestModelDisjointPathsDoNotInterfere(t *testing.T) {
	m := model4()
	for i := 0; i < 100; i++ {
		m.Latency(sim.Cycle(i), 0, 3, 5) // hammer row 0
	}
	b := m.Latency(100, 12, 15, 5) - 100 // row 3 untouched
	if b != m.Unloaded(12, 15, 5) {
		t.Errorf("disjoint rows interfered: %d vs %d", b, m.Unloaded(12, 15, 5))
	}
}

func TestModelLoadDecays(t *testing.T) {
	m := model4()
	for i := 0; i < 300; i++ {
		m.Latency(sim.Cycle(i), 0, 3, 5)
	}
	// Far in the future the estimator has decayed; latency returns to
	// unloaded.
	t2 := m.Latency(1_000_000, 0, 3, 5) - 1_000_000
	if t2 != m.Unloaded(0, 3, 5) {
		t.Errorf("stale load did not decay: %d vs %d", t2, m.Unloaded(0, 3, 5))
	}
}

func TestModelStats(t *testing.T) {
	m := model4()
	m.Latency(0, 0, 15, 1) // 6 hops
	m.Latency(0, 5, 6, 1)  // 1 hop
	if m.Transfers != 2 {
		t.Errorf("Transfers = %d", m.Transfers)
	}
	if m.AvgHops() != 3.5 {
		t.Errorf("AvgHops = %v", m.AvgHops())
	}
	m.ResetStats()
	if m.Transfers != 0 || m.AvgHops() != 0 || m.AvgWait() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestModelZeroFlitsClamped(t *testing.T) {
	m := model4()
	if got := m.Latency(0, 0, 1, 0); got != m.Unloaded(0, 1, 1) {
		t.Errorf("zero-flit latency = %d", got)
	}
}

func TestModelPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad pipeline depth accepted")
		}
	}()
	NewModel(Geometry{Width: 4, Height: 4}, 0)
}

func TestModelLoadLatencyCurveMonotone(t *testing.T) {
	// Increasing offered load on a fixed bisection must not decrease
	// mean latency.
	mean := func(packets int) float64 {
		m := model4()
		var sum sim.Cycle
		for i := 0; i < packets; i++ {
			sum += m.Latency(0, 0, 3, 5)
		}
		return float64(sum) / float64(packets)
	}
	if mean(50) < mean(5) {
		t.Error("latency decreased with load")
	}
}
