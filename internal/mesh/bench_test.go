package mesh

import (
	"testing"

	"consim/internal/sim"
)

// BenchmarkFlitLevelTick measures the detailed network under moderate
// uniform-random load (cost per simulated cycle).
func BenchmarkFlitLevelTick(b *testing.B) {
	n := NewNetwork(DefaultNetConfig(16))
	r := sim.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			n.Inject(r.Intn(16), r.Intn(16), 5)
		}
		n.Tick()
	}
}

// BenchmarkAnalyticLatency measures the fast model's per-message cost
// (the hot path of every consolidation sweep).
func BenchmarkAnalyticLatency(b *testing.B) {
	m := NewModel(Geometry{Width: 4, Height: 4}, 3)
	r := sim.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Latency(sim.Cycle(i), r.Intn(16), r.Intn(16), 5)
	}
}
