// Package mesh implements the on-chip interconnect from the paper's
// Table III: a 2-D packet-switched mesh with virtual-channel flow
// control, dimension-order (X-then-Y) routing and a 3-stage router
// pipeline with speculative virtual-channel and switch allocation.
//
// Two fidelities are provided:
//
//   - Network: a flit-level, cycle-driven model with per-VC buffers,
//     credit-based flow control and round-robin switch allocation. Used
//     directly by the NoC example and benchmarks, and to validate the
//     fast model.
//   - Model: an analytic latency model with per-link reservations, used
//     inside the big consolidation sweeps where the 16 blocking cores
//     inject far below saturation. Its unloaded latency matches Network
//     exactly (asserted by tests).
package mesh

import "fmt"

// Geometry describes a W x H mesh.
type Geometry struct {
	Width  int
	Height int
}

// Nodes returns the number of routers.
func (g Geometry) Nodes() int { return g.Width * g.Height }

// Coord returns the (x, y) position of node n.
func (g Geometry) Coord(n int) (x, y int) { return n % g.Width, n / g.Width }

// Node returns the node ID at (x, y).
func (g Geometry) Node(x, y int) int { return y*g.Width + x }

// Hops returns the dimension-order hop count between two nodes.
func (g Geometry) Hops(src, dst int) int {
	sx, sy := g.Coord(src)
	dx, dy := g.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Width <= 0 || g.Height <= 0 {
		return fmt.Errorf("mesh: non-positive geometry %dx%d", g.Width, g.Height)
	}
	return nil
}

// Port identifies a router port.
type Port int

// Router ports: four cardinal links plus the local inject/eject port.
const (
	Local Port = iota
	North
	South
	East
	West
	numPorts
)

// String returns the port name.
func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case South:
		return "south"
	case East:
		return "east"
	case West:
		return "west"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// route computes the DOR output port at node cur for destination dst:
// correct X first, then Y, then eject.
func (g Geometry) route(cur, dst int) Port {
	return g.routeOrdered(cur, dst, false)
}

// routeOrdered routes X-then-Y (yFirst=false) or Y-then-X (yFirst=true).
// Both orders are individually deadlock-free on a mesh; O1TURN mixes
// them across disjoint virtual-channel classes.
func (g Geometry) routeOrdered(cur, dst int, yFirst bool) Port {
	cx, cy := g.Coord(cur)
	dx, dy := g.Coord(dst)
	if yFirst {
		switch {
		case dy > cy:
			return South
		case dy < cy:
			return North
		case dx > cx:
			return East
		case dx < cx:
			return West
		default:
			return Local
		}
	}
	switch {
	case dx > cx:
		return East
	case dx < cx:
		return West
	case dy > cy:
		return South
	case dy < cy:
		return North
	default:
		return Local
	}
}

// neighbor returns the node reached by leaving cur through p, or -1 if
// the port exits the mesh.
func (g Geometry) neighbor(cur int, p Port) int {
	x, y := g.Coord(cur)
	switch p {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	default:
		return -1
	}
	if x < 0 || x >= g.Width || y < 0 || y >= g.Height {
		return -1
	}
	return g.Node(x, y)
}

// opposite returns the input port on the downstream router for traffic
// leaving through p.
func opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
