package mesh

import "consim/internal/sim"

// bufFlit is one buffered flit: packet identity, flit index within the
// packet (0 = head, Flits-1 = tail), and the earliest cycle it may
// traverse the switch (models the RC + speculative VA/SA pipeline
// stages).
type bufFlit struct {
	pkt     *Packet
	idx     int
	readyAt sim.Cycle
}

// vc is one input virtual channel: a FIFO of flits plus the route and
// output-VC allocation of the packet currently at its head.
type vc struct {
	buf    []bufFlit
	route  Port
	outVC  int
	routed bool
}

func (v *vc) head() *bufFlit {
	if len(v.buf) == 0 {
		return nil
	}
	return &v.buf[0]
}

// pop removes the head flit, preserving the slice's backing capacity.
func (v *vc) pop() bufFlit {
	f := v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	return f
}

// full reports whether the buffer holds depth flits.
func (v *vc) full(depth int) bool { return len(v.buf) >= depth }

// grant records one switch-allocation winner for the traverse phase.
type grant struct {
	inPort  Port
	inVC    int
	outPort Port
	outVC   int
}

// injState tracks the packet currently being serialized into a local VC.
type injState struct {
	pkt *Packet
	idx int
	vc  int
}

type router struct {
	id  int
	cfg NetConfig

	in [numPorts][]vc
	// outAlloc[p][v] is true while output VC v on port p is held by an
	// in-flight packet.
	outAlloc [numPorts][]bool
	// credits[p][v] counts free downstream buffer slots for output VC v
	// on port p.
	credits [numPorts][]int
	// rr is the round-robin arbitration pointer per output port.
	rr [numPorts]int

	injectQ []*Packet
	inj     injState
	injRR   int

	grants []grant
}

func newRouter(id int, cfg NetConfig) *router {
	r := &router{id: id, cfg: cfg, inj: injState{vc: -1}}
	for p := Port(0); p < numPorts; p++ {
		r.in[p] = make([]vc, cfg.VCs)
		r.outAlloc[p] = make([]bool, cfg.VCs)
		r.credits[p] = make([]int, cfg.VCs)
		for v := range r.in[p] {
			r.in[p][v].buf = make([]bufFlit, 0, cfg.BufDepth)
			r.in[p][v].outVC = -1
			r.credits[p][v] = cfg.BufDepth
		}
	}
	return r
}

// vcClass returns the [lo, hi) virtual-channel range packet p may use:
// the full range under DOR, half under O1TURN (split by routing order).
func (r *router) vcClass(p *Packet) (int, int) {
	if r.cfg.Routing != O1TURN {
		return 0, r.cfg.VCs
	}
	half := r.cfg.VCs / 2
	if p.YFirst {
		return half, r.cfg.VCs
	}
	return 0, half
}

// allocate performs route computation plus speculative VA/SA for this
// cycle: it picks at most one winning flit per output port (and per input
// port) based on state visible at the start of the cycle.
func (r *router) allocate(n *Network) {
	r.grants = r.grants[:0]
	g := r.cfg.Geometry
	var inUsed [numPorts]bool

	for out := Port(0); out < numPorts; out++ {
		nFlows := int(numPorts) * r.cfg.VCs
		for k := 0; k < nFlows; k++ {
			flow := (r.rr[out] + k) % nFlows
			ip := Port(flow / r.cfg.VCs)
			iv := flow % r.cfg.VCs
			if inUsed[ip] {
				continue
			}
			ch := &r.in[ip][iv]
			f := ch.head()
			if f == nil || f.readyAt > n.now {
				continue
			}
			// Route computation happens when a packet's head reaches the
			// front of the VC.
			if !ch.routed {
				if f.idx != 0 {
					// Body flit at head without route: packet state was
					// released early; cannot happen with correct tail
					// handling.
					panic("mesh: body flit without route state")
				}
				ch.route = g.routeOrdered(r.id, f.pkt.Dst, f.pkt.YFirst)
				ch.routed = true
			}
			if ch.route != out {
				continue
			}
			if out == Local {
				// Ejection needs no VC or credit.
				r.grants = append(r.grants, grant{ip, iv, out, 0})
				inUsed[ip] = true
				r.rr[out] = (flow + 1) % nFlows
				break
			}
			// Speculative VA: head flits grab a free output VC in the
			// same cycle they bid for the switch. Under O1TURN each
			// routing order owns half the VCs (deadlock freedom).
			if f.idx == 0 && ch.outVC < 0 {
				lo, hi := r.vcClass(f.pkt)
				for v := lo; v < hi; v++ {
					if !r.outAlloc[out][v] {
						ch.outVC = v
						r.outAlloc[out][v] = true
						break
					}
				}
				if ch.outVC < 0 {
					continue // VA failed; retry next cycle
				}
			}
			if ch.outVC < 0 || r.credits[out][ch.outVC] == 0 {
				continue
			}
			r.grants = append(r.grants, grant{ip, iv, out, ch.outVC})
			inUsed[ip] = true
			r.rr[out] = (flow + 1) % nFlows
			break
		}
	}
}

// traverse moves this cycle's winning flits across the switch onto the
// links (arriving downstream next cycle), returns credits upstream, and
// releases VC allocations at tail flits.
func (r *router) traverse(n *Network) {
	g := r.cfg.Geometry
	for _, gr := range r.grants {
		ch := &r.in[gr.inPort][gr.inVC]
		f := ch.pop()
		tail := f.idx == f.pkt.Flits-1

		// Return a credit to the upstream router now that a buffer slot
		// freed. Locally injected flits have no upstream.
		if gr.inPort != Local {
			up := g.neighbor(r.id, gr.inPort)
			n.routers[up].credits[opposite(gr.inPort)][gr.inVC]++
		}

		if gr.outPort == Local {
			if tail {
				n.deliver(f.pkt)
			}
		} else {
			down := g.neighbor(r.id, gr.outPort)
			r.credits[gr.outPort][gr.outVC]--
			dch := &n.routers[down].in[opposite(gr.outPort)][gr.outVC]
			dch.buf = append(dch.buf, bufFlit{
				pkt: f.pkt, idx: f.idx,
				// Link traversal lands the flit next cycle; it then
				// spends the first PipeStages-1 cycles in RC and VA/SA
				// before it may win the switch.
				readyAt: n.now + 1 + sim.Cycle(r.cfg.PipeStages-1),
			})
			if tail {
				r.outAlloc[gr.outPort][gr.outVC] = false
			}
		}
		if tail {
			ch.outVC = -1
			ch.routed = false
		}
	}
}

// inject serializes queued packets into local-port VCs, one flit per
// cycle per router, modeling source serialization.
func (r *router) inject(n *Network) {
	if r.inj.pkt == nil {
		if len(r.injectQ) == 0 {
			return
		}
		// Claim a local VC in the packet's class that is not mid-packet:
		// empty, or whose last buffered flit is a tail.
		lo, hi := r.vcClass(r.injectQ[0])
		span := hi - lo
		for k := 0; k < span; k++ {
			v := lo + (r.injRR+k)%span
			ch := &r.in[Local][v]
			if ch.full(r.cfg.BufDepth) {
				continue
			}
			if len(ch.buf) > 0 {
				last := ch.buf[len(ch.buf)-1]
				if last.idx != last.pkt.Flits-1 {
					continue
				}
			}
			r.inj = injState{pkt: r.injectQ[0], idx: 0, vc: v}
			r.injectQ = r.injectQ[1:]
			r.injRR = (r.injRR + 1) % r.cfg.VCs
			break
		}
		if r.inj.pkt == nil {
			return
		}
	}
	ch := &r.in[Local][r.inj.vc]
	if ch.full(r.cfg.BufDepth) {
		return // backpressure at the source
	}
	ch.buf = append(ch.buf, bufFlit{
		pkt: r.inj.pkt, idx: r.inj.idx,
		readyAt: n.now + 1 + sim.Cycle(r.cfg.PipeStages-1),
	})
	r.inj.idx++
	if r.inj.idx == r.inj.pkt.Flits {
		r.inj = injState{vc: -1}
	}
}
