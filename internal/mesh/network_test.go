package mesh

import (
	"testing"

	"consim/internal/sim"
)

func net4() *Network {
	return NewNetwork(DefaultNetConfig(16))
}

func TestSinglePacketDelivery(t *testing.T) {
	n := net4()
	p := n.Inject(0, 15, 1)
	if !n.Drain(1000) {
		t.Fatal("packet not delivered")
	}
	if p.Delivered == 0 {
		t.Fatal("delivery time not stamped")
	}
	if n.DeliveredPkts != 1 {
		t.Fatalf("DeliveredPkts = %d", n.DeliveredPkts)
	}
}

// TestUnloadedLatencyMatchesAnalyticModel is the validation the DESIGN.md
// substitution note promises: the analytic model's unloaded latency must
// equal the flit-level network's, for every hop count and several packet
// sizes.
func TestUnloadedLatencyMatchesAnalyticModel(t *testing.T) {
	for _, flits := range []int{1, 2, 5} {
		for dst := 0; dst < 16; dst++ {
			if dst == 0 {
				continue
			}
			n := net4()
			m := NewModel(n.Config().Geometry, n.Config().PipeStages)
			p := n.Inject(0, dst, flits)
			if !n.Drain(1000) {
				t.Fatalf("dst %d: not delivered", dst)
			}
			got := p.Delivered - p.Injected
			want := m.Unloaded(0, dst, flits)
			if got != want {
				t.Errorf("dst %d flits %d: flit-level %d cycles, analytic %d", dst, flits, got, want)
			}
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	n := net4()
	p := n.Inject(5, 5, 3)
	if !n.Drain(100) {
		t.Fatal("local packet stuck")
	}
	if p.Delivered-p.Injected == 0 {
		t.Error("local delivery took zero cycles")
	}
}

func TestAllPairsDeliver(t *testing.T) {
	n := net4()
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			n.Inject(s, d, 2)
		}
	}
	if !n.Drain(20000) {
		t.Fatalf("all-pairs traffic did not drain: %d/%d", n.DeliveredPkts, n.InjectedPkts)
	}
}

func TestHeavyRandomTrafficDrains(t *testing.T) {
	// Deadlock check: a correct VC/DOR mesh always drains.
	n := net4()
	r := sim.NewRNG(99)
	for i := 0; i < 2000; i++ {
		n.Inject(r.Intn(16), r.Intn(16), 1+r.Intn(5))
		if i%10 == 0 {
			n.Tick()
		}
	}
	if !n.Drain(200000) {
		t.Fatalf("random traffic deadlocked: %d/%d delivered", n.DeliveredPkts, n.InjectedPkts)
	}
}

func TestCreditsNeverExceedDepth(t *testing.T) {
	n := net4()
	r := sim.NewRNG(7)
	depth := n.Config().BufDepth
	for i := 0; i < 500; i++ {
		n.Inject(r.Intn(16), r.Intn(16), 3)
	}
	for tick := 0; tick < 5000; tick++ {
		n.Tick()
		for _, rt := range n.routers {
			for p := Port(0); p < numPorts; p++ {
				for v := 0; v < n.Config().VCs; v++ {
					if c := rt.credits[p][v]; c < 0 || c > depth {
						t.Fatalf("credit %d out of [0,%d] at router %d", c, depth, rt.id)
					}
					if len(rt.in[p][v].buf) > depth {
						t.Fatalf("buffer overflow at router %d: %d flits", rt.id, len(rt.in[p][v].buf))
					}
				}
			}
		}
		if n.DeliveredPkts == n.InjectedPkts {
			return
		}
	}
	t.Fatal("traffic did not drain during credit check")
}

func TestPerFlowOrdering(t *testing.T) {
	// Packets between the same (src,dst) with equal size must eject in
	// injection order (same path, FIFO VCs, no overtaking across a flow
	// on one VC — weaker: delivery times strictly ordered per flow when
	// injected sequentially).
	n := net4()
	var pkts []*Packet
	for i := 0; i < 10; i++ {
		pkts = append(pkts, n.Inject(2, 13, 1))
		n.Tick() // serialize injections
	}
	if !n.Drain(10000) {
		t.Fatal("flow did not drain")
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Delivered < pkts[i-1].Delivered {
			t.Errorf("packet %d overtook %d (%d < %d)", i, i-1, pkts[i].Delivered, pkts[i-1].Delivered)
		}
	}
}

func TestAvgLatencyAccounting(t *testing.T) {
	n := net4()
	n.Inject(0, 1, 1)
	n.Inject(0, 2, 1)
	n.Drain(1000)
	if n.AvgLatency() <= 0 {
		t.Error("AvgLatency not positive after deliveries")
	}
}

func TestLatencyGrowsUnderLoad(t *testing.T) {
	unloaded := func() float64 {
		n := net4()
		n.Inject(0, 15, 5)
		n.Drain(1000)
		return n.AvgLatency()
	}()
	loaded := func() float64 {
		n := net4()
		r := sim.NewRNG(3)
		// Saturating column 0 -> column 3 bisection traffic.
		for i := 0; i < 400; i++ {
			n.Inject(r.Intn(4)*4, r.Intn(4)*4+3, 5)
		}
		n.Drain(100000)
		return n.AvgLatency()
	}()
	if loaded <= unloaded {
		t.Errorf("no queueing visible: loaded %.1f <= unloaded %.1f", loaded, unloaded)
	}
}

func TestNetworkValidation(t *testing.T) {
	bad := NetConfig{Geometry: Geometry{Width: 4, Height: 4}}
	if bad.Validate() == nil {
		t.Error("zero VCs accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewNetwork with bad config did not panic")
		}
	}()
	NewNetwork(bad)
}
