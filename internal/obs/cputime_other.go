//go:build !unix

package obs

// ProcessCPUSeconds is unavailable off unix; manifests record 0.
func ProcessCPUSeconds() float64 { return 0 }
