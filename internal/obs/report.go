// Cross-run analysis: phase reports, run diffs and live metric polling.
//
// This file is the testable core of cmd/obs. It consumes the two
// sidecar formats the toolchain already writes — run-manifest JSONL
// (ManifestWriter) and the bench history array (cmd/bench's
// BENCH_consim.json) — plus the -timeseries sidecar, and renders them
// for humans: a per-run phase/Amdahl report, a two-run regression diff,
// and a sorted table of a live -debug-addr endpoint's metrics.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// ApplyFractionGate is the absolute apply-fraction growth (in fraction
// points) past which a pdes run counts as regressed: the serial replay
// share is deterministic per configuration, so five points of growth is
// structural, not noise. Shared by `obs diff` and cmd/bench's gate.
const ApplyFractionGate = 0.05

// ---------------------------------------------------------------------
// Phase report

// WritePhaseReport renders one manifest record: the run header, the
// wall-time phase decomposition with its untracked residual and
// coverage, the per-domain imbalance breakdown, and — when rows from
// the run's time-series sidecar are supplied — a per-VM trajectory
// summary. rows may span many runs; only those matching the manifest's
// TimeseriesRun are used.
func WritePhaseReport(w io.Writer, m Manifest, rows []TSRow) {
	engine := "sequential"
	var p PhaseProfile
	if m.Phase != nil {
		p = *m.Phase
		if e := p.Engine(); e != "" {
			engine = e
		}
	}
	fmt.Fprintf(w, "run %s  engine=%s  seed=%d  scale=%d\n", m.Label, engine, m.Seed, m.Scale)
	fmt.Fprintf(w, "  host: gomaxprocs=%d numcpu=%d  %s  %s\n", m.GOMAXPROCS, m.NumCPU, m.GoVersion, m.Time)
	rps := 0.0
	if m.WallSeconds > 0 {
		rps = float64(m.Refs) / m.WallSeconds
	}
	fmt.Fprintf(w, "  cost: refs=%d cycles=%d wall=%.3fs (%.0f refs/sec)\n", m.Refs, m.Cycles, m.WallSeconds, rps)

	if m.Phase == nil {
		fmt.Fprintf(w, "  no phase profile recorded (pre-v%d manifest or telemetry off)\n", ManifestVersion)
		return
	}

	pct := func(sec float64) float64 {
		if m.WallSeconds <= 0 {
			return 0
		}
		return 100 * sec / m.WallSeconds
	}
	fmt.Fprintf(w, "phase decomposition (wall seconds):\n")
	fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%\n", "warmup", p.WarmupSeconds, pct(p.WarmupSeconds))
	fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%\n", "measure", p.MeasureSeconds, pct(p.MeasureSeconds))
	switch p.Engine() {
	case "pdes":
		fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   (stall %.3fs, %.1f%%)\n",
			"in-window", p.PdesWindowSeconds, pct(p.PdesWindowSeconds), p.PdesStallSeconds, pct(p.PdesStallSeconds))
		replayNote := "serial op replay (Amdahl term)"
		if p.PdesReplayParallelSeconds > 0 {
			replayNote = "barrier op replay (sharded; serial residue below)"
		}
		fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   %s\n",
			"replay", p.PdesReplaySeconds, pct(p.PdesReplaySeconds), replayNote)
		if p.PdesReplayParallelSeconds > 0 {
			fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   per-group parallel pass (%d replay workers)\n",
				"  parallel", p.PdesReplayParallelSeconds, pct(p.PdesReplayParallelSeconds), m.PdesReplayWorkers)
			fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   cross-group deferred merge\n",
				"  merge", p.PdesReplayMergeSeconds, pct(p.PdesReplayMergeSeconds))
			if p.PdesPipelineOverlapSec > 0 {
				fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   merge overlapped with next window\n",
					"  overlap", p.PdesPipelineOverlapSec, pct(p.PdesPipelineOverlapSec))
			}
		}
		fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   folds, resyncs, publishes\n",
			"barrier", p.PdesBarrierSeconds, pct(p.PdesBarrierSeconds))
	case "sample":
		fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   (%d refs/core measured)\n",
			"detailed", p.SampleDetailedSeconds, pct(p.SampleDetailedSeconds), m.SampleDetailedRefs)
		fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   (%d refs/core skipped)\n",
			"fast-forward", p.SampleFFSeconds, pct(p.SampleFFSeconds), m.SampleSkippedRefs)
		if m.SampleDetailedRefs > 0 && m.SampleSkippedRefs > 0 &&
			p.SampleDetailedSeconds > 0 && p.SampleFFSeconds > 0 {
			det := p.SampleDetailedSeconds / float64(m.SampleDetailedRefs)
			ff := p.SampleFFSeconds / float64(m.SampleSkippedRefs)
			fmt.Fprintf(w, "  ff cost ratio %.2fx  (%.0fns/ref ff vs %.0fns/ref detailed; lower is better)\n",
				ff/det, ff*1e9, det*1e9)
		}
	}
	tracked := p.TrackedSeconds()
	untracked := m.WallSeconds - tracked
	if untracked < 0 {
		untracked = 0
	}
	cov := 0.0
	if m.WallSeconds > 0 {
		cov = 100 * tracked / m.WallSeconds
		if cov > 100 {
			cov = 100
		}
	}
	fmt.Fprintf(w, "  %-14s %8.3fs %5.1f%%   (coverage %.1f%% of wall)\n", "untracked", untracked, pct(untracked), cov)
	if af := p.ApplyFraction(m.WallSeconds); af > 0 {
		fmt.Fprintf(w, "  apply fraction %.3f -> Amdahl speedup bound %.1fx\n", af, 1/af)
	}
	if len(p.Domains) > 0 {
		fmt.Fprintf(w, "domains (in-window busy; concurrent, so busy may exceed window time):\n")
		for _, d := range p.Domains {
			share := 0.0
			if p.PdesWindowSeconds > 0 {
				share = 100 * d.BusySeconds / p.PdesWindowSeconds
			}
			fmt.Fprintf(w, "  dom %-2d cores=%-2d cycles=%-12d ops=%-10d busy=%.3fs (%.0f%% of window)\n",
				d.Domain, d.Cores, d.Cycles, d.Ops, d.BusySeconds, share)
		}
	}
	if len(p.PdesApplyOpsByGroup) > 0 {
		total, max := uint64(0), uint64(0)
		for _, n := range p.PdesApplyOpsByGroup {
			total += n
			if n > max {
				max = n
			}
		}
		fmt.Fprintf(w, "replay ops by LLC group (barrier replay breakdown):\n")
		for g, n := range p.PdesApplyOpsByGroup {
			share := 0.0
			if total > 0 {
				share = 100 * float64(n) / float64(total)
			}
			fmt.Fprintf(w, "  group %-2d ops=%-10d (%.1f%%)\n", g, n, share)
		}
		// Shard balance: with one replay stream per group, the parallel
		// pass finishes when the largest stream does, so max/mean op
		// imbalance bounds the sharded-replay speedup regardless of
		// worker count. Computable from any manifest, sharded or not —
		// it predicts the win before the knob is turned.
		if total > 0 && max > 0 {
			mean := float64(total) / float64(len(p.PdesApplyOpsByGroup))
			imb := float64(max) / mean
			fmt.Fprintf(w, "  shard balance: max/mean %.2fx -> parallel-replay speedup bound %.2fx over %d groups\n",
				imb, float64(total)/float64(max), len(p.PdesApplyOpsByGroup))
		}
		if prf := p.ParallelReplayFraction(); prf > 0 {
			fmt.Fprintf(w, "  parallel replay fraction %.3f (share of replay moved off the serial term)\n", prf)
		}
	}
	if len(p.LaneBusySeconds) > 0 {
		fmt.Fprintf(w, "shard lanes (busy seconds; spine stall %.3fs):\n", m.ShardStallSeconds)
		for i, sec := range p.LaneBusySeconds {
			fmt.Fprintf(w, "  lane %-2d busy=%.3fs (%.1f%% of wall)\n", i, sec, pct(sec))
		}
	}
	writeSeriesSummary(w, m, rows)
}

// writeSeriesSummary renders the per-VM trajectory summary for the
// manifest's rows in the time-series sidecar.
func writeSeriesSummary(w io.Writer, m Manifest, rows []TSRow) {
	if m.TimeseriesRun == 0 {
		return
	}
	var mine []TSRow
	for _, r := range rows {
		if r.Run == m.TimeseriesRun {
			mine = append(mine, r)
		}
	}
	if len(mine) == 0 {
		fmt.Fprintf(w, "time series: run %d recorded %d rows, none loaded (sidecar %q)\n",
			m.TimeseriesRun, m.TimeseriesRows, m.Timeseries)
		return
	}
	phases := map[string]int{}
	for _, r := range mine {
		phases[r.Phase]++
	}
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "time series (run %d, %d rows):\n  windows:", m.TimeseriesRun, len(mine))
	for _, n := range names {
		fmt.Fprintf(w, " %s=%d", n, phases[n])
	}
	fmt.Fprintln(w)

	nVM := 0
	for _, r := range mine {
		if len(r.Refs) > nVM {
			nVM = len(r.Refs)
		}
	}
	for v := 0; v < nVM; v++ {
		var refs uint64
		missMin, missMax := math.Inf(1), math.Inf(-1)
		var missSum, cptSum float64
		n := 0
		for _, r := range mine {
			if v >= len(r.Refs) {
				continue
			}
			refs += r.Refs[v]
			if ms := r.Miss[v]; ms >= 0 {
				missSum += ms
				if ms < missMin {
					missMin = ms
				}
				if ms > missMax {
					missMax = ms
				}
			}
			if c := r.CPT[v]; c >= 0 {
				cptSum += c
			}
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "  vm %-2d refs=%-10d miss %.4f..%.4f (mean %.4f)  cpt mean %.0f\n",
			v, refs, missMin, missMax, missSum/float64(n), cptSum/float64(n))
	}
	var maxQ uint32
	var qSum float64
	for _, r := range mine {
		qSum += float64(r.MemQ)
		if r.MemQ > maxQ {
			maxQ = r.MemQ
		}
	}
	fmt.Fprintf(w, "  mem queue depth mean %.1f max %d\n", qSum/float64(len(mine)), maxQ)
}

// ---------------------------------------------------------------------
// Diff

// RunSummary is the engine-agnostic comparison surface `obs diff`
// extracts from either sidecar format. Absent metrics are NaN so a diff
// only compares what both sides measured.
type RunSummary struct {
	Name string
	Time string

	WallSeconds   float64
	RefsPerSec    float64
	AllocsPerRef  float64 // bench history only
	ApplyFraction float64 // pdes serial-replay share of wall
	StallSeconds  float64 // pdes/shard spine stall
	SampleRelCI   float64 // sampled runs only
	FFCostRatio   float64 // sampled runs only: ff cost per skipped ref vs detailed

	// PdesApply maps worker count -> apply fraction for bench-history
	// pdes sweeps; nil otherwise.
	PdesApply map[int]float64
}

func absent() float64 { return math.NaN() }

// SummarizeManifest reduces one manifest record to its comparison
// surface.
func SummarizeManifest(m Manifest) RunSummary {
	s := RunSummary{
		Name:          m.Label,
		Time:          m.Time,
		WallSeconds:   m.WallSeconds,
		RefsPerSec:    absent(),
		AllocsPerRef:  absent(),
		ApplyFraction: absent(),
		StallSeconds:  absent(),
		SampleRelCI:   absent(),
		FFCostRatio:   absent(),
	}
	if m.WallSeconds > 0 && m.Refs > 0 {
		s.RefsPerSec = float64(m.Refs) / m.WallSeconds
	}
	switch {
	case m.Phase != nil && m.Phase.Engine() == "pdes":
		s.ApplyFraction = m.Phase.ApplyFraction(m.WallSeconds)
		s.StallSeconds = m.Phase.PdesStallSeconds
	case m.PdesWorkers > 0 && m.WallSeconds > 0:
		s.ApplyFraction = m.PdesApplySeconds / m.WallSeconds
		s.StallSeconds = m.PdesStallSeconds
	case m.Shards > 0:
		s.StallSeconds = m.ShardStallSeconds
	}
	if m.SampleWindows > 0 {
		s.SampleRelCI = m.SampleRelCI
		if m.Phase != nil && m.SampleDetailedRefs > 0 && m.SampleSkippedRefs > 0 &&
			m.Phase.SampleDetailedSeconds > 0 && m.Phase.SampleFFSeconds > 0 {
			det := m.Phase.SampleDetailedSeconds / float64(m.SampleDetailedRefs)
			ff := m.Phase.SampleFFSeconds / float64(m.SampleSkippedRefs)
			s.FFCostRatio = ff / det
		}
	}
	return s
}

// benchRecord decodes the fields of one cmd/bench history record that
// diffing needs. It deliberately re-declares a subset of cmd/bench's
// Report schema: the history file is the contract, not the struct.
type benchRecord struct {
	Time         string  `json:"time"`
	GoVersion    string  `json:"go_version"`
	RefsPerSec   float64 `json:"refs_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	PdesSweep    *struct {
		Points []struct {
			Workers       int     `json:"workers"`
			ApplyFraction float64 `json:"apply_fraction"`
		} `json:"points"`
	} `json:"pdes_sweep"`
	SampleSweep *struct {
		FFCostRatio float64 `json:"ff_cost_ratio"`
	} `json:"sample_sweep"`
}

func summarizeBench(b benchRecord) RunSummary {
	s := RunSummary{
		Name:          "bench " + b.Time,
		Time:          b.Time,
		WallSeconds:   b.WallSeconds,
		RefsPerSec:    b.RefsPerSec,
		AllocsPerRef:  b.AllocsPerRef,
		ApplyFraction: absent(),
		StallSeconds:  absent(),
		SampleRelCI:   absent(),
		FFCostRatio:   absent(),
	}
	if b.SampleSweep != nil && b.SampleSweep.FFCostRatio > 0 {
		s.FFCostRatio = b.SampleSweep.FFCostRatio
	}
	if b.PdesSweep != nil && len(b.PdesSweep.Points) > 0 {
		s.PdesApply = make(map[int]float64, len(b.PdesSweep.Points))
		for _, p := range b.PdesSweep.Points {
			if p.ApplyFraction > 0 {
				s.PdesApply[p.Workers] = p.ApplyFraction
			}
		}
		// Headline apply fraction: the widest point, where the serial
		// share matters most.
		best := -1
		for w := range s.PdesApply {
			if w > best {
				best = w
			}
		}
		if best >= 0 {
			s.ApplyFraction = s.PdesApply[best]
		}
	}
	return s
}

// ReadRunSummaries loads every run in the file at path, auto-detecting
// the format: a JSON array (or legacy single object) with refs_per_sec
// is a cmd/bench history, anything else is manifest JSONL. The returned
// kind is "bench" or "manifest".
func ReadRunSummaries(path string) ([]RunSummary, string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	trimmed := strings.TrimSpace(string(buf))
	if trimmed == "" {
		return nil, "", fmt.Errorf("%s: empty file", path)
	}
	if trimmed[0] == '[' {
		var hist []benchRecord
		if err := json.Unmarshal(buf, &hist); err != nil {
			return nil, "", fmt.Errorf("%s: bench history: %w", path, err)
		}
		out := make([]RunSummary, len(hist))
		for i, b := range hist {
			out[i] = summarizeBench(b)
		}
		return out, "bench", nil
	}
	// Object stream: a bench record carries refs_per_sec and go_version
	// but no label; a manifest always has a label.
	var probe struct {
		Label      string  `json:"label"`
		RefsPerSec float64 `json:"refs_per_sec"`
	}
	if err := json.Unmarshal([]byte(firstJSONValue(trimmed)), &probe); err == nil &&
		probe.Label == "" && probe.RefsPerSec > 0 {
		var one benchRecord
		if err := json.Unmarshal(buf, &one); err != nil {
			return nil, "", fmt.Errorf("%s: bench report: %w", path, err)
		}
		return []RunSummary{summarizeBench(one)}, "bench", nil
	}
	ms, err := ReadManifests(path)
	if err != nil {
		return nil, "", err
	}
	out := make([]RunSummary, len(ms))
	for i, m := range ms {
		out[i] = SummarizeManifest(m)
	}
	return out, "manifest", nil
}

// firstJSONValue returns the prefix of s holding its first top-level
// JSON value (JSONL files hold several; Unmarshal wants exactly one).
func firstJSONValue(s string) string {
	dec := json.NewDecoder(strings.NewReader(s))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return s
	}
	return string(raw)
}

// DiffSummaries renders a comparison of base (old) vs cur (new) and
// returns the number of regressions beyond the thresholds: throughput
// down by more than thresh (fractional, e.g. 0.05), allocations per
// reference up at all, apply fraction up by more than
// ApplyFractionGate points (headline and per bench-sweep worker
// count).
func DiffSummaries(w io.Writer, base, cur RunSummary, thresh float64) int {
	fmt.Fprintf(w, "base: %s (%s)\n cur: %s (%s)\n", base.Name, base.Time, cur.Name, cur.Time)
	regressions := 0
	flag := func(bad bool, why string) string {
		if !bad {
			return ""
		}
		regressions++
		return "  REGRESSION: " + why
	}
	both := func(a, b float64) bool { return !math.IsNaN(a) && !math.IsNaN(b) }

	if both(base.WallSeconds, cur.WallSeconds) && base.WallSeconds > 0 {
		d := (cur.WallSeconds - base.WallSeconds) / base.WallSeconds
		fmt.Fprintf(w, "  %-16s %10.3f -> %10.3f  (%+.1f%%)\n", "wall_seconds", base.WallSeconds, cur.WallSeconds, 100*d)
	}
	if both(base.RefsPerSec, cur.RefsPerSec) && base.RefsPerSec > 0 {
		d := (cur.RefsPerSec - base.RefsPerSec) / base.RefsPerSec
		fmt.Fprintf(w, "  %-16s %10.0f -> %10.0f  (%+.1f%%)%s\n", "refs_per_sec", base.RefsPerSec, cur.RefsPerSec, 100*d,
			flag(d < -thresh, fmt.Sprintf("throughput down %.1f%% (threshold %.0f%%)", -100*d, 100*thresh)))
	}
	if both(base.AllocsPerRef, cur.AllocsPerRef) {
		fmt.Fprintf(w, "  %-16s %10.4g -> %10.4g%s\n", "allocs_per_ref", base.AllocsPerRef, cur.AllocsPerRef,
			flag(cur.AllocsPerRef > base.AllocsPerRef, "allocs per ref grew (must only ever fall)"))
	}
	if both(base.ApplyFraction, cur.ApplyFraction) {
		d := cur.ApplyFraction - base.ApplyFraction
		fmt.Fprintf(w, "  %-16s %10.3f -> %10.3f  (%+.1f pts)%s\n", "apply_fraction", base.ApplyFraction, cur.ApplyFraction, 100*d,
			flag(d > ApplyFractionGate, fmt.Sprintf("serial replay share up %.1f points (gate %.0f)", 100*d, 100*ApplyFractionGate)))
	}
	if both(base.StallSeconds, cur.StallSeconds) {
		fmt.Fprintf(w, "  %-16s %10.3f -> %10.3f\n", "stall_seconds", base.StallSeconds, cur.StallSeconds)
	}
	if both(base.SampleRelCI, cur.SampleRelCI) {
		fmt.Fprintf(w, "  %-16s %10.4f -> %10.4f\n", "sample_rel_ci", base.SampleRelCI, cur.SampleRelCI)
	}
	if both(base.FFCostRatio, cur.FFCostRatio) && base.FFCostRatio > 0 {
		d := (cur.FFCostRatio - base.FFCostRatio) / base.FFCostRatio
		fmt.Fprintf(w, "  %-16s %10.3f -> %10.3f  (%+.1f%%)%s\n", "ff_cost_ratio", base.FFCostRatio, cur.FFCostRatio, 100*d,
			flag(d > FFCostGateFrac, fmt.Sprintf("ff cost ratio up %.1f%% (gate %.0f%%)", 100*d, 100*FFCostGateFrac)))
	}
	if len(base.PdesApply) > 0 && len(cur.PdesApply) > 0 {
		workers := make([]int, 0, len(base.PdesApply))
		for n := range base.PdesApply {
			if _, ok := cur.PdesApply[n]; ok {
				workers = append(workers, n)
			}
		}
		sort.Ints(workers)
		for _, n := range workers {
			b, c := base.PdesApply[n], cur.PdesApply[n]
			d := c - b
			fmt.Fprintf(w, "  pdes[w=%d] apply %8.3f -> %10.3f  (%+.1f pts)%s\n", n, b, c, 100*d,
				flag(d > ApplyFractionGate, fmt.Sprintf("apply fraction up %.1f points at %d workers", 100*d, n)))
		}
	}
	if regressions == 0 {
		fmt.Fprintf(w, "  no regressions beyond thresholds\n")
	}
	return regressions
}

// FFCostGateFrac is the relative growth in the sample sweep's
// fast-forward cost ratio that trips the regression gates: the ratio is
// a quotient of two wall-clock measurements, so it inherits both
// phases' run-to-run noise; 20% relative keeps the gate quiet on a
// loaded host while still catching a warming-walk deoptimization (the
// walk's whole specialization margin over the generic path is of that
// order).
const FFCostGateFrac = 0.20

// GateFFCost compares sample-sweep fast-forward cost ratios (cmd/bench's
// regression gate): an error reports cur growing more than
// FFCostGateFrac relative over base. A missing side (<= 0) gates
// nothing — older histories predate the field.
func GateFFCost(base, cur float64) error {
	if base <= 0 || cur <= 0 {
		return nil
	}
	if cur > base*(1+FFCostGateFrac) {
		return fmt.Errorf("sample ff_cost_ratio regressed more than %.0f%%: %.3f vs baseline %.3f",
			100*FFCostGateFrac, cur, base)
	}
	return nil
}

// GatePdesApply compares per-worker apply fractions (cmd/bench's
// regression gate): an error names the first worker count whose serial
// replay share grew more than ApplyFractionGate points over base. The
// fraction fed in is PhaseProfile.ApplyFraction, which since the
// bank-sharded replay counts only the serial residue (total replay
// minus the parallel per-group pass) — a sweep run with replay workers
// therefore gates the post-sharding serial term, and losing the
// parallel pass shows up as the regression it is.
func GatePdesApply(base, cur map[int]float64) error {
	workers := make([]int, 0, len(cur))
	for n := range cur {
		workers = append(workers, n)
	}
	sort.Ints(workers)
	for _, n := range workers {
		b, ok := base[n]
		if !ok || b <= 0 {
			continue
		}
		if cur[n] > b+ApplyFractionGate {
			return fmt.Errorf("pdes apply_fraction at %d workers regressed more than %.0f points: %.3f vs baseline %.3f",
				n, 100*ApplyFractionGate, cur[n], b)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Live polling (obs top)

// FetchDebugVars polls a -debug-addr endpoint's /debug/vars and returns
// the consim metric snapshot: counters and gauges as float64, histogram
// sub-fields flattened to "name.count" / "name.p50" / "name.p99".
func FetchDebugVars(addr string) (map[string]float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %s", addr, resp.Status)
	}
	var payload struct {
		Consim map[string]any `json:"consim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("%s: decode /debug/vars: %w", addr, err)
	}
	if payload.Consim == nil {
		return nil, fmt.Errorf("%s: no consim registry exported (is the run using -debug-addr?)", addr)
	}
	out := make(map[string]float64, len(payload.Consim))
	for name, v := range payload.Consim {
		switch val := v.(type) {
		case float64:
			out[name] = val
		case map[string]any:
			for sub, sv := range val {
				if f, ok := sv.(float64); ok {
					out[name+"."+sub] = f
				}
			}
		}
	}
	return out, nil
}

// WriteVarsTable renders a snapshot sorted by name, with per-metric
// deltas against prev (nil on the first poll).
func WriteVarsTable(w io.Writer, cur, prev map[string]float64) {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if prev == nil {
			fmt.Fprintf(w, "  %-34s %14.0f\n", n, cur[n])
			continue
		}
		fmt.Fprintf(w, "  %-34s %14.0f  %+12.0f\n", n, cur[n], cur[n]-prev[n])
	}
}
