package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Tracer records phase-scoped spans in the Chrome trace-event format
// (the JSON that chrome://tracing and ui.perfetto.dev load). Spans are
// emitted as balanced B/E duration events on numbered lanes; the
// harness runner maps lanes to worker-pool slots, so a sweep's trace
// shows one swimlane per concurrent worker with the job, run and phase
// spans nested inside each other.
//
// Frequency is phase-level (a handful of events per simulation), so a
// single mutex serializes recording; the simulator's per-reference path
// never touches the tracer.
type Tracer struct {
	mu       sync.Mutex
	start    time.Time
	events   []chromeEvent
	free     []int      // released lanes, reused LIFO
	next     int        // next never-used lane number
	stacks   [][]string // per-lane open-span names, for matching E events
	laneUsed []bool     // lanes that ever carried an event (metadata emission)
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds since trace start
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // sparse; phase spans carry none
}

// tracePID is the single logical process all lanes belong to.
const tracePID = 1

// NewTracer starts an empty trace; timestamps are relative to this
// call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

func (t *Tracer) now() int64 { return time.Since(t.start).Microseconds() }

// AcquireLane reserves a lane (trace tid). Lanes are recycled LIFO on
// release, so a pool of N concurrent workers occupies exactly lanes
// 0..N-1 — one Perfetto track per worker slot.
func (t *Tracer) AcquireLane() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		lane := t.free[n-1]
		t.free = t.free[:n-1]
		return lane
	}
	lane := t.next
	t.next++
	return lane
}

// ReleaseLane returns a lane to the pool.
func (t *Tracer) ReleaseLane(lane int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.free = append(t.free, lane)
}

func (t *Tracer) touch(lane int) {
	for lane >= len(t.stacks) {
		t.stacks = append(t.stacks, nil)
		t.laneUsed = append(t.laneUsed, false)
	}
	t.laneUsed[lane] = true
}

// Begin opens a span named name on lane.
func (t *Tracer) Begin(lane int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(lane)
	t.stacks[lane] = append(t.stacks[lane], name)
	t.events = append(t.events, chromeEvent{Name: name, Ph: "B", TS: t.now(), PID: tracePID, TID: lane})
}

// End closes the innermost open span on lane. Ending with no open span
// is ignored (robustness over strictness: a partial trace still loads).
func (t *Tracer) End(lane int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(lane)
	st := t.stacks[lane]
	if len(st) == 0 {
		return
	}
	name := st[len(st)-1]
	t.stacks[lane] = st[:len(st)-1]
	t.events = append(t.events, chromeEvent{Name: name, Ph: "E", TS: t.now(), PID: tracePID, TID: lane})
}

// Span opens a span and returns its closer, for defer-style use.
func (t *Tracer) Span(lane int, name string) func() {
	t.Begin(lane, name)
	return func() { t.End(lane) }
}

// Instant records a zero-duration marker on lane.
func (t *Tracer) Instant(lane int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touch(lane)
	t.events = append(t.events, chromeEvent{Name: name, Ph: "i", TS: t.now(), PID: tracePID, TID: lane, S: "t"})
}

// Events returns how many events have been recorded.
func (t *Tracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the on-disk JSON object shape.
type traceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Write emits the trace as a Chrome trace-format JSON object:
// process/thread naming metadata first, then every recorded event. Open
// spans are closed at the current timestamp so the file always balances
// and loads cleanly even if a sweep was interrupted.
func (t *Tracer) Write(w io.Writer) error {
	t.mu.Lock()
	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "consim " + ToolVersion},
	})
	for lane, used := range t.laneUsed {
		if !used {
			continue
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: lane,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", lane)},
		})
	}
	events = append(events, t.events...)
	now := t.now()
	for lane, st := range t.stacks {
		for i := len(st) - 1; i >= 0; i-- {
			events = append(events, chromeEvent{Name: st[i], Ph: "E", TS: now, PID: tracePID, TID: lane})
		}
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path, creating parent directories.
func (t *Tracer) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
