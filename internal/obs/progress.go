package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress renders a live single-line status for a long sweep on
// stderr: runs started/done/in-flight, simulated-reference throughput,
// miss-latency percentiles, elapsed time and an ETA over the runs
// requested so far. Because the runner memoizes and figures enqueue
// work dynamically, the total is the number of runs *started*, so the
// ETA firms up as the sweep's shape becomes known.
type Progress struct {
	w io.Writer

	reg *Registry
	sim *SimMetrics

	started atomic.Int64
	done    atomic.Int64

	mu       sync.Mutex
	start    time.Time
	stop     chan struct{}
	stopped  chan struct{}
	lastLen  int
	lastRefs uint64
	lastAt   time.Time
}

// NewProgress builds a progress display writing to w (conventionally
// os.Stderr). Call Start to begin rendering and Stop to finish.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()}
}

// bind attaches the metric source (done by NewObserver, which owns the
// registry).
func (p *Progress) bind(reg *Registry, sim *SimMetrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.sim = sim
}

// JobStart notes a run entering execution.
func (p *Progress) JobStart() { p.started.Add(1) }

// JobDone notes a run finishing.
func (p *Progress) JobDone() { p.done.Add(1) }

// Start launches the render loop at the given interval (0 = 500ms).
func (p *Progress) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	p.stop = make(chan struct{})
	p.stopped = make(chan struct{})
	p.start = time.Now()
	p.lastAt = p.start
	stop, stopped := p.stop, p.stopped
	p.mu.Unlock()

	go func() {
		defer close(stopped)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				p.render()
			}
		}
	}()
}

// Stop halts the render loop, draws a final line and terminates it with
// a newline so subsequent output starts clean.
func (p *Progress) Stop() {
	p.mu.Lock()
	stop, stopped := p.stop, p.stopped
	p.stop = nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-stopped
	p.render()
	fmt.Fprintln(p.w)
}

// render draws one status line, carriage-returning over the previous.
func (p *Progress) render() {
	p.mu.Lock()
	defer p.mu.Unlock()

	now := time.Now()
	elapsed := now.Sub(p.start)
	started, done := p.started.Load(), p.done.Load()
	inflight := started - done

	line := fmt.Sprintf("[consim] runs %d/%d done, %d running", done, started, inflight)

	if p.reg != nil {
		refs := p.reg.Value(p.sim.Refs)
		rate := 0.0
		if dt := now.Sub(p.lastAt).Seconds(); dt > 0 {
			rate = float64(refs-p.lastRefs) / dt
		}
		p.lastRefs, p.lastAt = refs, now
		line += fmt.Sprintf(" | %s refs (%s/s)", humanCount(refs), humanCount(uint64(rate)))
		if p50 := p.reg.HistQuantile(p.sim.MissLatency, 0.50); p50 > 0 {
			line += fmt.Sprintf(" | missLat p50<=%d p99<=%d", p50, p.reg.HistQuantile(p.sim.MissLatency, 0.99))
		}
	}

	line += fmt.Sprintf(" | %s", elapsed.Round(time.Second))
	if done > 0 && inflight+done > 0 {
		perRun := elapsed / time.Duration(done)
		eta := perRun * time.Duration(started-done)
		line += fmt.Sprintf(", ~%s left", eta.Round(time.Second))
	}

	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.lastLen = len(line)
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
}

// humanCount renders a count with k/M/G suffixes for the status line.
func humanCount(n uint64) string {
	switch {
	case n >= 10_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
