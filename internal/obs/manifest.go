package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// Manifest is one run's provenance record: everything needed to say
// *which* simulation produced a result and what it cost. The harness
// appends one JSON line per executed simulation job to a sidecar under
// results/, so every number in a report can be traced back to its
// configuration, seed, scale and tool version.
// ManifestVersion is the manifest schema version stamped into new
// records. Version 2 added host parallelism (gomaxprocs, num_cpu — a
// pdes/shard scaling entry is meaningless without them), the phase
// profile, and the time-series sidecar reference. Old sidecars decode
// with Version 0 and those fields zero; readers must tolerate both.
const ManifestVersion = 2

type Manifest struct {
	Version   int    `json:"version,omitempty"`
	Time      string `json:"time"`
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GitRev    string `json:"git_rev,omitempty"`
	// Host parallelism at run time: scaling entries (pdes_*, shard_*)
	// can only be compared across hosts with these recorded.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`

	Label     string   `json:"label"`
	Workloads []string `json:"workloads"`
	GroupSize int      `json:"group_size"`
	Policy    string   `json:"policy"`
	Scale     int      `json:"scale"`
	Seed      uint64   `json:"seed"`

	WarmupRefs   uint64 `json:"warmup_refs"`
	MeasureRefs  uint64 `json:"measure_refs"`
	SnapshotRefs uint64 `json:"snapshot_refs,omitempty"`
	Replicates   int    `json:"replicates"`

	// Measured outcome and cost.
	Refs        uint64  `json:"refs"`   // references simulated in the window
	Cycles      uint64  `json:"cycles"` // measurement-window length
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the process-wide CPU time at completion (user +
	// system); under a parallel sweep it reflects the whole process, not
	// one job, and is recorded for throughput accounting.
	CPUSeconds float64 `json:"cpu_seconds"`
	Parallel   int     `json:"parallel,omitempty"`

	// Intra-run parallelism provenance: the configured shard count, plus
	// how the run's functional plane split between worker-prepared and
	// inline batches and what the spine spent waiting (the barrier-stall
	// analogue). Absent for sequential runs.
	Shards            int     `json:"shards,omitempty"`
	ShardPrefills     uint64  `json:"shard_prefills,omitempty"`
	ShardSyncFills    uint64  `json:"shard_sync_fills,omitempty"`
	ShardThinkBatches uint64  `json:"shard_think_batches,omitempty"`
	ShardStalls       uint64  `json:"shard_stalls,omitempty"`
	ShardStallSeconds float64 `json:"shard_stall_seconds,omitempty"`

	// Interval-sampling provenance: window geometry, how much of the
	// stream was measured in detail vs fast-forwarded, the worst per-VM
	// relative 95% CI half-width at stop, and why the run stopped
	// ("converged" or "budget"). Absent for detailed runs — a sampled
	// number can always be told from an exact one by these fields.
	SampleWindows      int     `json:"sample_windows,omitempty"`
	SampleWindowRefs   uint64  `json:"sample_window_refs,omitempty"`
	SampleDetailedRefs uint64  `json:"sample_detailed_refs,omitempty"`
	SampleSkippedRefs  uint64  `json:"sample_skipped_refs,omitempty"`
	SampleRelCI        float64 `json:"sample_rel_ci,omitempty"`
	SampleStopReason   string  `json:"sample_stop_reason,omitempty"`

	// Split-transaction parallel-engine provenance: configured workers,
	// domains formed, window geometry, barrier counts and where the
	// spine's time went (worker waits, serial op replay). Absent for
	// sequential runs — a -pdes number can always be told from a
	// sequential one by these fields.
	PdesWorkers      int     `json:"pdes_workers,omitempty"`
	PdesDomains      int     `json:"pdes_domains,omitempty"`
	PdesWindowCycles uint64  `json:"pdes_window_cycles,omitempty"`
	PdesWindows      uint64  `json:"pdes_windows,omitempty"`
	PdesOps          uint64  `json:"pdes_ops,omitempty"`
	PdesStalls       uint64  `json:"pdes_stalls,omitempty"`
	PdesStallSeconds float64 `json:"pdes_stall_seconds,omitempty"`
	PdesApplySeconds float64 `json:"pdes_apply_seconds,omitempty"`
	// Sharded-replay provenance: configured replay worker count (0 =
	// serial replay) and whether window/replay pipelining was on. The
	// matching phase decomposition lives in Phase.
	PdesReplayWorkers int  `json:"pdes_replay_workers,omitempty"`
	PdesPipelined     bool `json:"pdes_pipelined,omitempty"`

	// Phase is the run's wall-time decomposition by engine phase (nil
	// when telemetry was off or the record predates phase accounting).
	Phase *PhaseProfile `json:"phase,omitempty"`

	// Time-series sidecar reference: the JSONL file holding this run's
	// per-window rows, the run id its rows carry, and how many rows it
	// recorded. Absent when -timeseries was off.
	Timeseries     string `json:"timeseries,omitempty"`
	TimeseriesRun  int    `json:"timeseries_run,omitempty"`
	TimeseriesRows int    `json:"timeseries_rows,omitempty"`
}

// ManifestWriter appends manifest lines to a JSONL file. Safe for
// concurrent use (the parallel runner stamps jobs as they finish).
type ManifestWriter struct {
	mu     sync.Mutex
	f      *os.File
	tsPath string // stamped into records that carry a time-series run id
}

// OpenManifest opens (appending) or creates the JSONL sidecar at path,
// creating parent directories as needed.
func OpenManifest(path string) (*ManifestWriter, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &ManifestWriter{f: f}, nil
}

// Write stamps the environment fields (time, tool, Go version, git
// revision, CPU time) and appends m as one JSON line.
func (w *ManifestWriter) Write(m Manifest) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	if m.Time == "" {
		m.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if m.GOMAXPROCS == 0 {
		m.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	if m.NumCPU == 0 {
		m.NumCPU = runtime.NumCPU()
	}
	if m.Timeseries == "" && m.TimeseriesRun != 0 {
		w.mu.Lock()
		m.Timeseries = w.tsPath
		w.mu.Unlock()
	}
	if m.Tool == "" {
		m.Tool = "consim " + ToolVersion
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	if m.GitRev == "" {
		m.GitRev = buildRev()
	}
	if m.CPUSeconds == 0 {
		m.CPUSeconds = ProcessCPUSeconds()
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(buf)
	return err
}

// Path returns the underlying file's name.
func (w *ManifestWriter) Path() string { return w.f.Name() }

// SetTimeseriesPath records the sidecar path stamped into manifests
// whose runs carried a time-series recorder.
func (w *ManifestWriter) SetTimeseriesPath(path string) {
	w.mu.Lock()
	w.tsPath = path
	w.mu.Unlock()
}

// Close flushes and closes the sidecar.
func (w *ManifestWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// ReadManifests parses a JSONL sidecar back into records (reporting and
// round-trip tests).
func ReadManifests(path string) ([]Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Manifest
	dec := json.NewDecoder(bytes.NewReader(buf))
	for dec.More() {
		var m Manifest
		if err := dec.Decode(&m); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
