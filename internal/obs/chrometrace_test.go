package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// decodeTrace parses a written trace back for assertions.
func decodeTrace(t *testing.T, tr *Tracer) traceFile {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tf
}

func TestTraceSpansBalanceAndNest(t *testing.T) {
	tr := NewTracer()
	lane := tr.AcquireLane()
	tr.Begin(lane, "job")
	tr.Begin(lane, "warmup")
	tr.End(lane)
	tr.Begin(lane, "measure")
	tr.End(lane)
	tr.End(lane)
	tr.ReleaseLane(lane)

	tf := decodeTrace(t, tr)
	depth := 0
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "B":
			depth++
		case "E":
			depth--
			if depth < 0 {
				t.Fatalf("E with no open B at event %q", ev.Name)
			}
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced trace: %d spans left open", depth)
	}
}

func TestTraceWorkerLaneMetadata(t *testing.T) {
	tr := NewTracer()
	l0, l1 := tr.AcquireLane(), tr.AcquireLane()
	tr.Span(l0, "job a")()
	tr.Span(l1, "job b")()
	tr.ReleaseLane(l1)
	tr.ReleaseLane(l0)
	// LIFO recycling: a third job reuses lane 0, not lane 2.
	l2 := tr.AcquireLane()
	if l2 != l0 {
		t.Errorf("lane not recycled LIFO: got %d, want %d", l2, l0)
	}
	tr.Span(l2, "job c")()

	tf := decodeTrace(t, tr)
	workers := map[int]string{}
	sawProcess := false
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Name {
		case "process_name":
			sawProcess = true
		case "thread_name":
			workers[ev.TID] = ev.Args["name"].(string)
		}
	}
	if !sawProcess {
		t.Error("no process_name metadata")
	}
	if len(workers) != 2 || workers[0] != "worker 0" || workers[1] != "worker 1" {
		t.Errorf("worker lane metadata = %v, want worker 0 and worker 1", workers)
	}
}

func TestTraceClosesOpenSpansOnWrite(t *testing.T) {
	tr := NewTracer()
	lane := tr.AcquireLane()
	tr.Begin(lane, "interrupted sweep")
	tf := decodeTrace(t, tr)
	var b, e int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != 1 || e != 1 {
		t.Errorf("B/E = %d/%d, want 1/1 (open span auto-closed)", b, e)
	}
}

func TestTraceEndWithoutBeginIgnored(t *testing.T) {
	tr := NewTracer()
	tr.End(0) // must not panic or emit
	if tr.Events() != 0 {
		t.Errorf("stray End recorded %d events", tr.Events())
	}
}

func TestTraceWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.Span(tr.AcquireLane(), "run")()
	path := t.TempDir() + "/sub/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf, &tf); err != nil {
		t.Fatalf("written trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("written trace holds no events")
	}
}
