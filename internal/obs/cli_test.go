package obs

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIRegisterWiresFlags(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{
		"-progress",
		"-tracefile", "t.json",
		"-manifest", "m.jsonl",
		"-timeseries", "ts.jsonl",
		"-cpuprofile", "cpu.pb",
		"-memprofile", "mem.pb",
		"-debug-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Progress || c.TraceFile != "t.json" || c.Manifest != "m.jsonl" ||
		c.TimeSeries != "ts.jsonl" || c.CPUProfile != "cpu.pb" ||
		c.MemProfile != "mem.pb" || c.DebugAddr != "127.0.0.1:0" {
		t.Fatalf("parsed CLI = %+v", c)
	}
	if !c.enabled() {
		t.Fatal("full flag set not enabled")
	}
	if (&CLI{CPUProfile: "only.pb"}).enabled() {
		t.Fatal("profile-only CLI should not need an Observer")
	}
	if !(&CLI{TimeSeries: "ts.jsonl"}).enabled() {
		t.Fatal("-timeseries alone must enable the Observer")
	}
}

// TestCLIStartTimeSeries checks Start opens the sidecar, hands the
// writer to the Observer, threads its path into the manifest writer,
// and that stop flushes both files.
func TestCLIStartTimeSeries(t *testing.T) {
	dir := t.TempDir()
	c := CLI{
		Manifest:   filepath.Join(dir, "m.jsonl"),
		TimeSeries: filepath.Join(dir, "ts.jsonl"),
	}
	var notes strings.Builder
	o, stop, err := c.Start(&notes)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if o == nil || o.TS == nil || o.Man == nil {
		t.Fatalf("observer sinks missing: %+v", o)
	}

	r := o.TS.NewRecorder("wired", 1, 0, 0)
	r.Begin(TSPhaseMeasure, 10, 0.1, 0, -1, 0)
	r.VM(0, 100, 0.5, 1000)
	r.Commit()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := o.Man.Write(Manifest{Label: "wired", TimeseriesRun: r.Run(), TimeseriesRows: r.Rows()}); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if !strings.Contains(notes.String(), "time series written to") {
		t.Fatalf("missing status note in %q", notes.String())
	}

	rows, err := ReadTimeSeries(c.TimeSeries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Label != "wired" {
		t.Fatalf("sidecar rows = %+v", rows)
	}
	ms, err := ReadManifests(c.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Timeseries != c.TimeSeries || ms[0].TimeseriesRun != rows[0].Run {
		t.Fatalf("manifest sidecar reference = %+v", ms)
	}
}

// TestCLIStartDebugAddr checks Start brings the debug endpoint up on an
// ephemeral port, reports the bound address, and tears it down in stop.
func TestCLIStartDebugAddr(t *testing.T) {
	c := CLI{DebugAddr: "127.0.0.1:0"}
	var notes strings.Builder
	o, stop, err := c.Start(&notes)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if o == nil {
		t.Fatal("nil observer with -debug-addr")
	}
	note := notes.String()
	i := strings.Index(note, "http://")
	if i < 0 {
		t.Fatalf("bound address not reported: %q", note)
	}
	addr := note[i+len("http://"):]
	addr = addr[:strings.Index(addr, "/debug/vars")]
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("reported address %q not resolved", addr)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET bound addr: %v", err)
	}
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("debug endpoint still serving after stop")
	}
}

// TestCLIStartFailureCleansUp checks a sink that cannot open unwinds
// the ones before it (no leaked manifest handle or half-started state).
func TestCLIStartFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c := CLI{
		Manifest:   filepath.Join(dir, "m.jsonl"),
		TimeSeries: filepath.Join(blocked, "ts.jsonl"), // parent is a file: MkdirAll fails
	}
	if _, _, err := c.Start(&strings.Builder{}); err == nil {
		t.Fatal("Start with unopenable sidecar did not error")
	}
}
