package obs

// PhaseProfile decomposes one run's simulation wall time by engine
// phase. It is the per-run, machine-readable form of the Amdahl
// analysis that previously lived only as a hand-computed note next to
// BENCH_consim.json: the core engines time their phases during the run
// and Result/manifests carry the decomposition, so "where did the wall
// time go" is answerable for any recorded run, not just a bench sweep.
//
// All fields are wall seconds measured inside the simulation loop (the
// same clock as Result.WallSeconds), so the engine-specific terms sum
// to the measured wall time up to loop bookkeeping (horizon scans,
// footprint merges). Report renders the residual as "untracked" and
// the covered fraction as "coverage".
type PhaseProfile struct {
	// WarmupSeconds and MeasureSeconds split the run's simulation wall
	// time at the measurement boundary (every engine).
	WarmupSeconds  float64 `json:"warmup_seconds,omitempty"`
	MeasureSeconds float64 `json:"measure_seconds,omitempty"`

	// Split-transaction parallel engine (-pdes). PdesWindowSeconds is
	// spine wall time inside windows (posting work, running its own
	// domain stripe, waiting for workers); PdesReplaySeconds is the
	// serial barrier op replay (the Amdahl term); PdesBarrierSeconds is
	// the rest of the barrier (replica folds and resyncs, live metric
	// publishes); PdesStallSeconds is the subset of window time the
	// spine spent spinning on worker domains (load imbalance).
	PdesWindowSeconds  float64 `json:"pdes_window_seconds,omitempty"`
	PdesReplaySeconds  float64 `json:"pdes_replay_seconds,omitempty"`
	PdesBarrierSeconds float64 `json:"pdes_barrier_seconds,omitempty"`
	PdesStallSeconds   float64 `json:"pdes_stall_seconds,omitempty"`
	// Sharded-replay decomposition of PdesReplaySeconds (zero when the
	// replay runs serially): ReplayParallel is the per-group parallel
	// pass, ReplayMerge the serial cross-group deferred merge, and
	// PipelineOverlap the subset of merge time that ran concurrently
	// with the next window's in-window phase (-pdes-pipeline). The
	// remaining replay residue (PdesReplaySeconds − parallel − merge)
	// is the serial k-way op merge and directory pre-pass.
	PdesReplayParallelSeconds float64 `json:"pdes_replay_parallel_seconds,omitempty"`
	PdesReplayMergeSeconds    float64 `json:"pdes_replay_merge_seconds,omitempty"`
	PdesPipelineOverlapSec    float64 `json:"pdes_pipeline_overlap_seconds,omitempty"`
	// Domains is the per-domain breakdown of in-window work. On a
	// multi-core host domains run concurrently, so busy seconds sum to
	// more than PdesWindowSeconds; the ratio is the achieved overlap.
	Domains []DomainPhase `json:"domains,omitempty"`
	// PdesApplyOpsByGroup counts replayed ops per LLC bank group — the
	// per-bank breakdown of the serial replay term. A skewed profile
	// means one bank dominates the Amdahl bottleneck (and per-bank
	// parallel application would help less than the op total suggests).
	PdesApplyOpsByGroup []uint64 `json:"pdes_apply_ops_by_group,omitempty"`

	// Interval-sampling engine (-sample): wall time in detailed windows
	// vs. functional fast-forward.
	SampleDetailedSeconds float64 `json:"sample_detailed_seconds,omitempty"`
	SampleFFSeconds       float64 `json:"sample_ff_seconds,omitempty"`

	// Sharded engine (-shards): per-worker-lane busy seconds (time
	// spent executing prefill/think tasks). The spine's wait side is
	// ShardStats.StallSeconds.
	LaneBusySeconds []float64 `json:"lane_busy_seconds,omitempty"`
}

// DomainPhase is one pdes domain's share of the in-window work.
type DomainPhase struct {
	Domain int `json:"domain"`
	Cores  int `json:"cores"`
	// Cycles is how far the domain's local clock advanced; Ops the
	// shared-tier operations it logged for barrier replay.
	Cycles uint64 `json:"cycles"`
	Ops    uint64 `json:"ops"`
	// BusySeconds is wall time spent draining this domain's calendar.
	BusySeconds float64 `json:"busy_seconds"`
}

// Engine names the engine the profile describes ("pdes", "sample",
// "shard", or "" for the sequential engine).
func (p *PhaseProfile) Engine() string {
	switch {
	case len(p.Domains) > 0 || p.PdesWindowSeconds > 0:
		return "pdes"
	case p.SampleDetailedSeconds > 0 || p.SampleFFSeconds > 0:
		return "sample"
	case len(p.LaneBusySeconds) > 0:
		return "shard"
	}
	return ""
}

// Zero reports whether the profile carries no measurements (telemetry
// was off or the run predates phase accounting).
func (p *PhaseProfile) Zero() bool {
	return p.WarmupSeconds == 0 && p.MeasureSeconds == 0 && p.Engine() == ""
}

// TrackedSeconds sums the engine-phase terms that should account for
// the run's simulation wall time. For pdes that is window + replay +
// barrier (stall is a subset of window time, not an addend); for the
// other engines the warmup/measure split already covers the wall.
func (p *PhaseProfile) TrackedSeconds() float64 {
	if p.Engine() == "pdes" {
		return p.PdesWindowSeconds + p.PdesReplaySeconds + p.PdesBarrierSeconds
	}
	return p.WarmupSeconds + p.MeasureSeconds
}

// ApplyFraction returns the *serial* barrier-replay share of wall
// seconds — the Amdahl term bounding -pdes scaling (0 when not pdes).
// With bank-sharded replay the parallel per-group pass no longer
// counts against the serial term, so the fraction reflects only the
// residue that still runs on one executor: the op merge, the deferred
// cross-group merge, and anything else inside PdesReplaySeconds.
func (p *PhaseProfile) ApplyFraction(wallSeconds float64) float64 {
	if wallSeconds <= 0 {
		return 0
	}
	serial := p.PdesReplaySeconds - p.PdesReplayParallelSeconds
	if serial < 0 {
		serial = 0
	}
	return serial / wallSeconds
}

// ParallelReplayFraction returns the share of total replay time the
// bank-sharded pass moved off the serial term (0 when the replay ran
// serially). This is the quantity the sharded-replay work optimizes:
// 1 − ParallelReplayFraction of the old apply fraction remains serial.
func (p *PhaseProfile) ParallelReplayFraction() float64 {
	if p.PdesReplaySeconds <= 0 {
		return 0
	}
	return p.PdesReplayParallelSeconds / p.PdesReplaySeconds
}
