package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultTSCapacity is the ring capacity, in rows, of a Recorder: rows
// buffered before an automatic spill to the sidecar. At the live
// publish cadence (one row per 8192 machine references, or one per
// pdes barrier) a figure-suite run fits in one ring, so steady state
// never touches the file.
const DefaultTSCapacity = 1024

// TSPhase tags a time-series row with the engine phase it was recorded
// in.
type TSPhase uint8

const (
	TSPhaseOther TSPhase = iota
	TSPhaseWarmup
	TSPhaseMeasure
	TSPhaseWindow      // sampled detailed window (inside measure)
	TSPhaseFastForward // sampled functional fast-forward
	TSPhaseSnapshot
)

var tsPhaseNames = [...]string{"other", "warmup", "measure", "window", "fastforward", "snapshot"}

// String returns the phase's sidecar name.
func (p TSPhase) String() string {
	if int(p) < len(tsPhaseNames) {
		return tsPhaseNames[p]
	}
	return "other"
}

// TSPhaseOf maps a trace-span phase name to its row tag.
func TSPhaseOf(name string) TSPhase {
	switch name {
	case "warmup":
		return TSPhaseWarmup
	case "measure":
		return TSPhaseMeasure
	case "window":
		return TSPhaseWindow
	case "fastforward":
		return TSPhaseFastForward
	case "snapshot":
		return TSPhaseSnapshot
	}
	return TSPhaseOther
}

// TSWriter appends time-series rows to a JSONL sidecar shared by every
// run in the process (the parallel runner's jobs interleave at row
// granularity; each row carries its run id). Safe for concurrent use.
type TSWriter struct {
	mu     sync.Mutex
	f      *os.File
	buf    []byte // reusable row-encoding buffer (flush-time only)
	nextID atomic.Int64
}

// OpenTimeSeries opens (appending) or creates the sidecar at path,
// creating parent directories as needed.
func OpenTimeSeries(path string) (*TSWriter, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &TSWriter{f: f}, nil
}

// Path returns the underlying file's name.
func (w *TSWriter) Path() string { return w.f.Name() }

// Close closes the sidecar. Recorders must be flushed first.
func (w *TSWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// NewRecorder returns a per-run recorder with a fresh run id. nVM and
// nDom size the per-VM and per-domain columns (nDom 0 for non-pdes
// engines); capacity 0 selects DefaultTSCapacity.
func (w *TSWriter) NewRecorder(label string, nVM, nDom, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTSCapacity
	}
	r := &Recorder{
		w:     w,
		run:   int(w.nextID.Add(1)),
		label: label,
		nVM:   nVM,
		nDom:  nDom,
		cap:   capacity,

		phase:  make([]TSPhase, capacity),
		cycle:  make([]uint64, capacity),
		wall:   make([]float64, capacity),
		memq:   make([]uint32, capacity),
		relCI:  make([]float64, capacity),
		replay: make([]float64, capacity),
		vmRefs: make([]uint64, capacity*nVM),
		vmMiss: make([]float64, capacity*nVM),
		vmCPT:  make([]float64, capacity*nVM),
	}
	if nDom > 0 {
		r.domCycles = make([]uint64, capacity*nDom)
		r.domBusy = make([]float64, capacity*nDom)
	}
	return r
}

// Recorder buffers one run's per-window telemetry rows in fixed-
// capacity typed columns. The recording path (Begin / VM / Domain /
// Commit) only writes preallocated slices — zero allocations, zero
// syscalls — so it can sit on the simulator's live publish cadence
// without breaking the steady-state allocation budget. Encoding and
// file I/O happen only when the ring fills (automatic spill) and at
// Flush.
type Recorder struct {
	w     *TSWriter
	run   int
	label string
	nVM   int
	nDom  int

	cap   int
	n     int    // buffered rows
	seq   uint32 // next row's window sequence number
	total int    // rows committed over the recorder's lifetime
	err   error  // first spill error, surfaced by Flush

	phase  []TSPhase
	cycle  []uint64
	wall   []float64
	memq   []uint32
	relCI  []float64 // <0 = not a sampled run
	replay []float64 // pdes replay-seconds delta this window

	vmRefs []uint64 // [row*nVM+v]
	vmMiss []float64
	vmCPT  []float64

	domCycles []uint64 // [row*nDom+d]; nil when nDom == 0
	domBusy   []float64
}

// Run returns the recorder's run id (rows carry it; the manifest
// records it so reports can correlate).
func (r *Recorder) Run() int { return r.run }

// Rows returns the number of rows committed so far.
func (r *Recorder) Rows() int { return r.total }

// Begin stages a new row's scalar columns. relCI < 0 marks a run
// without a sampling CI; replay is the pdes serial-replay seconds
// accumulated since the previous row (0 otherwise).
func (r *Recorder) Begin(phase TSPhase, cycle uint64, wall float64, memq int, relCI, replay float64) {
	i := r.n
	r.phase[i] = phase
	r.cycle[i] = cycle
	r.wall[i] = wall
	r.memq[i] = uint32(memq)
	r.relCI[i] = relCI
	r.replay[i] = replay
}

// VM fills one VM's columns for the staged row: references issued
// since the previous row, the window's LLC miss rate, and the window's
// cycles-per-transaction estimate.
func (r *Recorder) VM(v int, refs uint64, miss, cpt float64) {
	i := r.n*r.nVM + v
	r.vmRefs[i] = refs
	r.vmMiss[i] = miss
	r.vmCPT[i] = cpt
}

// Domain fills one pdes domain's columns for the staged row: local
// clock advance and in-window busy seconds since the previous row.
func (r *Recorder) Domain(d int, cycles uint64, busy float64) {
	i := r.n*r.nDom + d
	r.domCycles[i] = cycles
	r.domBusy[i] = busy
}

// Commit finalizes the staged row, spilling the ring to the sidecar
// when full. Spill errors are held until Flush so the hot path stays
// error-free.
func (r *Recorder) Commit() {
	r.n++
	r.seq++
	r.total++
	if r.n == r.cap {
		r.spill()
	}
}

// Flush spills buffered rows and returns the first error any spill
// hit. Call once at run end, before the manifest is written.
func (r *Recorder) Flush() error {
	r.spill()
	return r.err
}

// spill encodes and appends the buffered rows under the writer's lock,
// reusing the writer's encode buffer.
func (r *Recorder) spill() {
	if r.n == 0 {
		return
	}
	w := r.w
	w.mu.Lock()
	buf := w.buf[:0]
	base := uint32(r.total - r.n)
	for i := 0; i < r.n; i++ {
		buf = r.appendRow(buf, i, base+uint32(i))
	}
	if _, err := w.f.Write(buf); err != nil && r.err == nil {
		r.err = err
	}
	w.buf = buf[:0]
	w.mu.Unlock()
	r.n = 0
}

// appendRow encodes buffered row i (window sequence seq) as one JSON
// line.
func (r *Recorder) appendRow(buf []byte, i int, seq uint32) []byte {
	buf = append(buf, `{"run":`...)
	buf = strconv.AppendInt(buf, int64(r.run), 10)
	buf = append(buf, `,"label":`...)
	buf = appendJSONString(buf, r.label)
	buf = append(buf, `,"w":`...)
	buf = strconv.AppendUint(buf, uint64(seq), 10)
	buf = append(buf, `,"phase":`...)
	buf = appendJSONString(buf, r.phase[i].String())
	buf = append(buf, `,"cycle":`...)
	buf = strconv.AppendUint(buf, r.cycle[i], 10)
	buf = append(buf, `,"wall":`...)
	buf = appendJSONFloat(buf, r.wall[i])
	buf = append(buf, `,"memq":`...)
	buf = strconv.AppendUint(buf, uint64(r.memq[i]), 10)
	if r.relCI[i] >= 0 {
		buf = append(buf, `,"rel_ci":`...)
		buf = appendJSONFloat(buf, r.relCI[i])
	}
	if r.replay[i] != 0 {
		buf = append(buf, `,"replay":`...)
		buf = appendJSONFloat(buf, r.replay[i])
	}
	buf = append(buf, `,"refs":[`...)
	for v := 0; v < r.nVM; v++ {
		if v > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, r.vmRefs[i*r.nVM+v], 10)
	}
	buf = append(buf, `],"miss":[`...)
	for v := 0; v < r.nVM; v++ {
		if v > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONFloat(buf, r.vmMiss[i*r.nVM+v])
	}
	buf = append(buf, `],"cpt":[`...)
	for v := 0; v < r.nVM; v++ {
		if v > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONFloat(buf, r.vmCPT[i*r.nVM+v])
	}
	buf = append(buf, ']')
	if r.nDom > 0 {
		buf = append(buf, `,"dom_cycles":[`...)
		for d := 0; d < r.nDom; d++ {
			if d > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendUint(buf, r.domCycles[i*r.nDom+d], 10)
		}
		buf = append(buf, `],"dom_busy":[`...)
		for d := 0; d < r.nDom; d++ {
			if d > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONFloat(buf, r.domBusy[i*r.nDom+d])
		}
		buf = append(buf, ']')
	}
	return append(buf, '}', '\n')
}

// appendJSONFloat encodes f compactly; NaN and infinities (a window
// with zero transactions) become -1, keeping every line valid JSON.
func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(buf, '-', '1')
	}
	return strconv.AppendFloat(buf, f, 'g', 6, 64)
}

// appendJSONString encodes s with the minimal escaping row labels need
// (labels are workload/policy names; control characters never occur).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, ' ')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// TSRow is the decoded form of one sidecar line (reporting and tests).
type TSRow struct {
	Run   int     `json:"run"`
	Label string  `json:"label"`
	W     uint32  `json:"w"`
	Phase string  `json:"phase"`
	Cycle uint64  `json:"cycle"`
	Wall  float64 `json:"wall"`
	MemQ  uint32  `json:"memq"`
	RelCI float64 `json:"rel_ci"`
	// Replay is the pdes serial-replay seconds accumulated over this
	// row's window.
	Replay float64 `json:"replay"`

	Refs []uint64  `json:"refs"`
	Miss []float64 `json:"miss"`
	CPT  []float64 `json:"cpt"`

	DomCycles []uint64  `json:"dom_cycles"`
	DomBusy   []float64 `json:"dom_busy"`
}

// ReadTimeSeries parses a sidecar back into rows.
func ReadTimeSeries(path string) ([]TSRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []TSRow
	dec := json.NewDecoder(bufio.NewReader(f))
	for dec.More() {
		var row TSRow
		if err := dec.Decode(&row); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
