package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI is the uniform observability flag set shared by every consim
// command. Register it on the command's FlagSet, then call Start after
// flag parsing; the returned Observer (nil when no observability sink
// was requested) threads into runner options or per-run Config hooks,
// and the returned stop function flushes every sink.
//
//	var ocli obs.CLI
//	ocli.Register(flag.CommandLine)
//	flag.Parse()
//	o, stop, err := ocli.Start(os.Stderr)
//	...
//	defer stop()
type CLI struct {
	Progress   bool
	TraceFile  string
	Manifest   string
	TimeSeries string
	CPUProfile string
	MemProfile string
	DebugAddr  string
}

// Register installs the flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Progress, "progress", false, "render a live job/throughput status line on stderr")
	fs.StringVar(&c.TraceFile, "tracefile", "", "write a Chrome trace-format JSON timeline here (open in ui.perfetto.dev)")
	fs.StringVar(&c.Manifest, "manifest", "", "append per-run provenance manifests to this JSONL file (e.g. results/manifests.jsonl)")
	fs.StringVar(&c.TimeSeries, "timeseries", "", "append per-window telemetry rows to this JSONL sidecar (analyze with cmd/obs report)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile here")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile here at exit")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve expvar metrics and net/http/pprof on this address (e.g. localhost:6060)")
}

// enabled reports whether any sink needing an Observer was requested.
func (c *CLI) enabled() bool {
	return c.Progress || c.TraceFile != "" || c.Manifest != "" ||
		c.TimeSeries != "" || c.DebugAddr != ""
}

// Start brings up every requested sink. The Observer is nil when only
// profiles (or nothing) were requested; the stop function is always
// valid and idempotent-safe to defer. Status notes go to w.
func (c *CLI) Start(w io.Writer) (*Observer, func() error, error) {
	if w == nil {
		w = os.Stderr
	}
	var cleanups []func() error
	stop := func() error {
		var first error
		for i := len(cleanups) - 1; i >= 0; i-- {
			if err := cleanups[i](); err != nil && first == nil {
				first = err
			}
		}
		cleanups = nil
		return first
	}
	fail := func(err error) (*Observer, func() error, error) {
		stop() //nolint:errcheck // the primary error wins
		return nil, func() error { return nil }, err
	}

	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		path := c.CPUProfile
		cleanups = append(cleanups, func() error {
			pprof.StopCPUProfile()
			fmt.Fprintf(w, "[obs] cpu profile written to %s\n", path)
			return f.Close()
		})
	}
	if c.MemProfile != "" {
		path := c.MemProfile
		cleanups = append(cleanups, func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			fmt.Fprintf(w, "[obs] heap profile written to %s\n", path)
			return f.Close()
		})
	}

	if !c.enabled() {
		return nil, stop, nil
	}

	var tracer *Tracer
	if c.TraceFile != "" {
		tracer = NewTracer()
		path := c.TraceFile
		cleanups = append(cleanups, func() error {
			if err := tracer.WriteFile(path); err != nil {
				return err
			}
			fmt.Fprintf(w, "[obs] trace (%d events) written to %s\n", tracer.Events(), path)
			return nil
		})
	}
	var man *ManifestWriter
	if c.Manifest != "" {
		var err error
		man, err = OpenManifest(c.Manifest)
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, man.Close)
	}
	var prog *Progress
	if c.Progress {
		prog = NewProgress(w)
	}

	o := NewObserver(tracer, man, prog)

	if c.TimeSeries != "" {
		tsw, err := OpenTimeSeries(c.TimeSeries)
		if err != nil {
			return fail(err)
		}
		o.TS = tsw
		if man != nil {
			man.SetTimeseriesPath(tsw.Path())
		}
		path := c.TimeSeries
		cleanups = append(cleanups, func() error {
			if err := tsw.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "[obs] time series written to %s\n", path)
			return nil
		})
	}

	if c.DebugAddr != "" {
		addr, shutdown, err := StartDebugServer(c.DebugAddr, o.Reg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(w, "[obs] debug server on http://%s/debug/vars and /debug/pprof\n", addr)
		cleanups = append(cleanups, shutdown)
	}
	if prog != nil {
		prog.Start(0)
		// Stop the display before the sinks above flush their own notes.
		cleanups = append(cleanups, func() error { prog.Stop(); return nil })
	}
	return o, stop, nil
}
