package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func pdesManifest() Manifest {
	return Manifest{
		Version: ManifestVersion, Label: "shared/affinity",
		GOMAXPROCS: 4, NumCPU: 8,
		Seed: 42, Scale: 16,
		Refs: 1_000_000, Cycles: 500_000, WallSeconds: 2.0,
		PdesWorkers: 4, PdesDomains: 4,
		Phase: &PhaseProfile{
			WarmupSeconds: 0.4, MeasureSeconds: 1.6,
			PdesWindowSeconds: 1.2, PdesReplaySeconds: 0.6,
			PdesBarrierSeconds: 0.15, PdesStallSeconds: 0.2,
			Domains: []DomainPhase{
				{Domain: 0, Cores: 4, Cycles: 500_000, Ops: 9000, BusySeconds: 0.5},
				{Domain: 1, Cores: 4, Cycles: 500_000, Ops: 8000, BusySeconds: 0.45},
			},
			PdesApplyOpsByGroup: []uint64{12750, 4250},
		},
		TimeseriesRun: 7, TimeseriesRows: 2, Timeseries: "ts.jsonl",
	}
}

func TestWritePhaseReportPdes(t *testing.T) {
	m := pdesManifest()
	rows := []TSRow{
		{Run: 7, Phase: "warmup", MemQ: 2, Refs: []uint64{4096, 4096}, Miss: []float64{0.02, 0.05}, CPT: []float64{5000, 9000}},
		{Run: 7, Phase: "measure", MemQ: 6, Refs: []uint64{8192, 8192}, Miss: []float64{0.03, 0.06}, CPT: []float64{5200, 9100}},
		{Run: 99, Phase: "measure", Refs: []uint64{1, 1}, Miss: []float64{0.9, 0.9}, CPT: []float64{1, 1}}, // other run: excluded
	}
	var b strings.Builder
	WritePhaseReport(&b, m, rows)
	out := b.String()
	for _, want := range []string{
		"engine=pdes",
		"gomaxprocs=4",
		"in-window",
		"replay", "Amdahl",
		"barrier",
		"untracked",
		"coverage",
		"apply fraction 0.300",
		"dom 0", "dom 1", "ops=9000",
		"replay ops by LLC group",
		"group 0", "(75.0%)", "(25.0%)",
		"time series (run 7, 2 rows)",
		"warmup=1", "measure=1",
		"vm 0", "vm 1",
		"miss 0.0200..0.0300",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0.9000") {
		t.Errorf("report leaked rows from another run:\n%s", out)
	}
}

func TestWritePhaseReportNoProfile(t *testing.T) {
	var b strings.Builder
	WritePhaseReport(&b, Manifest{Label: "old", WallSeconds: 1}, nil)
	if !strings.Contains(b.String(), "no phase profile recorded") {
		t.Fatalf("missing fallback note:\n%s", b.String())
	}
}

func TestSummarizeManifest(t *testing.T) {
	s := SummarizeManifest(pdesManifest())
	if s.RefsPerSec != 500_000 {
		t.Errorf("RefsPerSec = %v, want 500000", s.RefsPerSec)
	}
	if s.ApplyFraction != 0.3 {
		t.Errorf("ApplyFraction = %v, want 0.3", s.ApplyFraction)
	}
	if s.StallSeconds != 0.2 {
		t.Errorf("StallSeconds = %v, want 0.2", s.StallSeconds)
	}
	if !math.IsNaN(s.AllocsPerRef) || !math.IsNaN(s.SampleRelCI) {
		t.Errorf("absent metrics not NaN: %+v", s)
	}

	// Pre-phase manifests fall back to the pdes provenance fields.
	old := Manifest{Label: "old", Refs: 100, WallSeconds: 2, PdesWorkers: 2, PdesApplySeconds: 0.5, PdesStallSeconds: 0.1}
	s = SummarizeManifest(old)
	if s.ApplyFraction != 0.25 || s.StallSeconds != 0.1 {
		t.Errorf("legacy summary = %+v", s)
	}
}

func TestDiffSummariesFlagsRegressions(t *testing.T) {
	base := SummarizeManifest(pdesManifest())
	cur := base
	var b strings.Builder
	if n := DiffSummaries(&b, base, cur, 0.05); n != 0 {
		t.Fatalf("self-diff found %d regressions:\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "no regressions") {
		t.Fatalf("missing all-clear note:\n%s", b.String())
	}

	cur.RefsPerSec = base.RefsPerSec * 0.8       // -20% throughput
	cur.ApplyFraction = base.ApplyFraction + 0.1 // +10 points serial share
	b.Reset()
	if n := DiffSummaries(&b, base, cur, 0.05); n != 2 {
		t.Fatalf("found %d regressions, want 2:\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Fatalf("missing regression marker:\n%s", b.String())
	}

	// A drop inside the threshold is not flagged.
	cur = base
	cur.RefsPerSec = base.RefsPerSec * 0.97
	b.Reset()
	if n := DiffSummaries(&b, base, cur, 0.05); n != 0 {
		t.Fatalf("3%% drop flagged under 5%% threshold:\n%s", b.String())
	}

	// ff cost ratio: reported when both sides carry it, flagged past the
	// relative gate.
	base.FFCostRatio, cur = 0.75, base
	cur.FFCostRatio = 0.80
	b.Reset()
	if n := DiffSummaries(&b, base, cur, 0.05); n != 0 {
		t.Fatalf("within-gate ff cost growth flagged:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "ff_cost_ratio") {
		t.Fatalf("ff cost line missing:\n%s", b.String())
	}
	cur.FFCostRatio = 0.95
	b.Reset()
	if n := DiffSummaries(&b, base, cur, 0.05); n != 1 {
		t.Fatalf("27%%-relative ff cost growth found %d regressions, want 1:\n%s", n, b.String())
	}
}

const benchHistoryJSON = `[
  {"time":"2026-01-01T00:00:00Z","go_version":"go1.22","refs_per_sec":100000,
   "wall_seconds":1.5,"allocs_per_ref":0.0001,
   "pdes_sweep":{"points":[{"workers":1,"apply_fraction":0.30},{"workers":4,"apply_fraction":0.35}]}},
  {"time":"2026-01-02T00:00:00Z","go_version":"go1.22","refs_per_sec":90000,
   "wall_seconds":1.7,"allocs_per_ref":0.0001,
   "pdes_sweep":{"points":[{"workers":1,"apply_fraction":0.31},{"workers":4,"apply_fraction":0.45}]}}
]`

func TestReadRunSummariesBenchHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(benchHistoryJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, kind, err := ReadRunSummaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "bench" || len(runs) != 2 {
		t.Fatalf("kind=%q len=%d, want bench/2", kind, len(runs))
	}
	if runs[0].RefsPerSec != 100000 || runs[0].PdesApply[4] != 0.35 {
		t.Fatalf("bench summary 0 = %+v", runs[0])
	}
	// Headline apply fraction comes from the widest sweep point.
	if runs[1].ApplyFraction != 0.45 {
		t.Fatalf("headline apply = %v, want 0.45", runs[1].ApplyFraction)
	}

	// Diffing the two history entries flags both the throughput drop
	// and the 4-worker apply growth.
	var b strings.Builder
	if n := DiffSummaries(&b, runs[0], runs[1], 0.05); n != 3 {
		t.Fatalf("found %d regressions, want 3:\n%s", n, b.String())
	}
}

func TestReadRunSummariesManifestJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	w, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(pdesManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(pdesManifest()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	runs, kind, err := ReadRunSummaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "manifest" || len(runs) != 2 {
		t.Fatalf("kind=%q len=%d, want manifest/2", kind, len(runs))
	}
	if runs[1].Name != "shared/affinity" {
		t.Fatalf("summary = %+v", runs[1])
	}
}

func TestReadRunSummariesLegacySingleBenchObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	one := `{"time":"2026-01-01T00:00:00Z","go_version":"go1.22","refs_per_sec":5000,"wall_seconds":2}`
	if err := os.WriteFile(path, []byte(one), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, kind, err := ReadRunSummaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "bench" || len(runs) != 1 || runs[0].RefsPerSec != 5000 {
		t.Fatalf("kind=%q runs=%+v", kind, runs)
	}
}

func TestReadRunSummariesErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("  \n"), 0o644)
	if _, _, err := ReadRunSummaries(empty); err == nil {
		t.Error("empty file did not error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`[{"refs_per_sec":}]`), 0o644)
	if _, _, err := ReadRunSummaries(bad); err == nil {
		t.Error("malformed bench history did not error")
	}
	if _, _, err := ReadRunSummaries(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestGatePdesApply(t *testing.T) {
	base := map[int]float64{1: 0.30, 4: 0.35}
	if err := GatePdesApply(base, map[int]float64{1: 0.31, 4: 0.38}); err != nil {
		t.Errorf("within-gate growth failed: %v", err)
	}
	if err := GatePdesApply(base, map[int]float64{4: 0.42}); err == nil {
		t.Error("7-point growth passed the 5-point gate")
	}
	// Worker counts absent from the baseline are not gated.
	if err := GatePdesApply(base, map[int]float64{8: 0.9}); err != nil {
		t.Errorf("ungated worker count failed: %v", err)
	}
}

func TestGateFFCost(t *testing.T) {
	if err := GateFFCost(0.75, 0.80); err != nil {
		t.Errorf("within-gate growth failed: %v", err)
	}
	if err := GateFFCost(0.75, 0.95); err == nil {
		t.Error("27%% relative growth passed the 20%% gate")
	}
	// A missing side gates nothing (histories predating the field).
	if err := GateFFCost(0, 0.95); err != nil {
		t.Errorf("missing baseline gated: %v", err)
	}
	if err := GateFFCost(0.75, 0); err != nil {
		t.Errorf("missing current gated: %v", err)
	}
	// Improvement always passes.
	if err := GateFFCost(0.75, 0.40); err != nil {
		t.Errorf("improvement failed the gate: %v", err)
	}
}
