package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric.
type Kind uint8

const (
	// Counter values only grow; the registry total is the sum over
	// shards.
	Counter Kind = iota
	// Gauge values are point-in-time publishes; each shard holds its
	// writer's last published value and the registry total sums them
	// (for per-run totals like cache hits since measurement start, the
	// sum across workers is the live machine-wide figure).
	Gauge
	// Histogram values are observation distributions over power-of-two
	// buckets; the value slot carries the observation count.
	Histogram
)

// HistBuckets is the bucket count of every histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// the last bucket absorbing overflow. 2^30 cycles dwarfs any latency the
// simulated machine can produce.
const HistBuckets = 31

// ID names a registered metric; it indexes every shard's slot array.
type ID int

// Desc describes one registered metric.
type Desc struct {
	Name string
	Kind Kind
	Help string
}

// Registry holds metric descriptors and the shards publishing to them.
// Registration happens once, up front; NewShard freezes the schema so
// shard slot arrays never reallocate (the hot path indexes them without
// synchronization beyond the atomic slot itself).
type Registry struct {
	mu     sync.Mutex
	descs  []Desc
	byName map[string]ID
	shards []*Shard
	frozen bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]ID)}
}

func (r *Registry) register(name string, kind Kind, help string) ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		if r.descs[id].Kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return id
	}
	if r.frozen {
		panic(fmt.Sprintf("obs: metric %q registered after the first shard", name))
	}
	id := ID(len(r.descs))
	r.descs = append(r.descs, Desc{Name: name, Kind: kind, Help: help})
	r.byName[name] = id
	return id
}

// CounterID registers (or looks up) a counter.
func (r *Registry) CounterID(name, help string) ID { return r.register(name, Counter, help) }

// GaugeID registers (or looks up) a gauge.
func (r *Registry) GaugeID(name, help string) ID { return r.register(name, Gauge, help) }

// HistogramID registers (or looks up) a histogram.
func (r *Registry) HistogramID(name, help string) ID { return r.register(name, Histogram, help) }

// Descs returns the registered metric descriptors in ID order.
func (r *Registry) Descs() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Desc(nil), r.descs...)
}

// NewShard allocates a shard over the registered schema and freezes
// further registration. Each simulation (or worker) owns one shard:
// writes are uncontended, and readers aggregate across shards with
// atomic loads, so a live observer never races the hot path.
func (r *Registry) NewShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frozen = true
	sh := &Shard{reg: r, slots: make([]atomic.Uint64, len(r.descs))}
	for id, d := range r.descs {
		if d.Kind == Histogram {
			if sh.hists == nil {
				sh.hists = make([][]atomic.Uint64, len(r.descs))
			}
			sh.hists[id] = make([]atomic.Uint64, HistBuckets)
		}
	}
	r.shards = append(r.shards, sh)
	return sh
}

// Value returns the metric's aggregate value: the sum over all shards.
func (r *Registry) Value(id ID) uint64 {
	r.mu.Lock()
	shards := r.shards
	r.mu.Unlock()
	var sum uint64
	for _, sh := range shards {
		sum += sh.slots[id].Load()
	}
	return sum
}

// HistCounts returns a histogram's aggregated bucket counts.
func (r *Registry) HistCounts(id ID) [HistBuckets]uint64 {
	r.mu.Lock()
	shards := r.shards
	r.mu.Unlock()
	var counts [HistBuckets]uint64
	for _, sh := range shards {
		if sh.hists == nil || sh.hists[id] == nil {
			continue
		}
		for b := range counts {
			counts[b] += sh.hists[id][b].Load()
		}
	}
	return counts
}

// HistQuantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1) of a histogram: the top of the first bucket at which the
// cumulative count reaches q. Zero when the histogram is empty.
func (r *Registry) HistQuantile(id ID, q float64) uint64 {
	counts := r.HistCounts(id)
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range counts {
		cum += c
		if cum >= target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return 1<<uint(HistBuckets) - 1
}

// Snapshot renders every metric for export (expvar / debug dumps):
// counters and gauges as totals, histograms as count plus p50/p99
// upper-bound estimates. Keys are sorted for stable output.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any, len(r.descs))
	for id, d := range r.Descs() {
		switch d.Kind {
		case Histogram:
			out[d.Name] = map[string]uint64{
				"count": r.Value(ID(id)),
				"p50":   r.HistQuantile(ID(id), 0.50),
				"p99":   r.HistQuantile(ID(id), 0.99),
			}
		default:
			out[d.Name] = r.Value(ID(id))
		}
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	descs := r.Descs()
	names := make([]string, len(descs))
	for i, d := range descs {
		names[i] = d.Name
	}
	sort.Strings(names)
	return names
}

// Shard is one writer's slice of the registry. A shard's writer may be
// any single goroutine at a time (slots are atomic, so even concurrent
// writers merely contend); readers aggregate through the Registry.
type Shard struct {
	reg   *Registry
	slots []atomic.Uint64
	hists [][]atomic.Uint64 // non-nil only when histograms registered
}

// Add increments a counter slot. Allocation-free.
func (s *Shard) Add(id ID, n uint64) { s.slots[id].Add(n) }

// Set publishes a gauge slot. Allocation-free.
func (s *Shard) Set(id ID, v uint64) { s.slots[id].Store(v) }

// Observe records one histogram observation. Allocation-free.
func (s *Shard) Observe(id ID, v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	s.hists[id][b].Add(1)
	s.slots[id].Add(1)
}

// Value reads one slot of this shard.
func (s *Shard) Value(id ID) uint64 { return s.slots[id].Load() }

// MaxVMGauges bounds the per-VM LLC occupancy gauge set (the paper's
// machine holds at most 16 VMs).
const MaxVMGauges = 16

// SimMetrics is the standard simulator metric schema: the IDs every
// System publishes through its RunHooks. Registering the schema on a
// fresh registry is what NewObserver does.
type SimMetrics struct {
	// Hot-path counters, published as deltas on a cadence.
	Refs, PrivMisses, LLCMisses ID
	C2CClean, C2CDirty          ID
	MemReads, Invalidations     ID
	Upgrades                    ID
	// Cache level gauges: 0=L0, 1=L1, 2=LLC banks.
	LevelAccesses, LevelMisses, LevelEvictions [3]ID
	// Coherence substrate.
	DirEntries, DirCacheHits, DirCacheMisses ID
	// Memory controllers (gauges; MemReads2 mirrors the controller-side
	// read count, distinct from the per-VM MemReads counter).
	MemReads2, MemWritebacks, MemWaitCycles, MemQueueDepth ID
	// Engine.
	EventQueueLen ID
	// LLC sharing snapshot.
	LLCResident, LLCReplicated ID
	OccVM                      [MaxVMGauges]ID
	// Latency distribution of private-cache misses.
	MissLatency ID
	// Sharded intra-run engine (zero / idle under the sequential engine).
	ShardWorkers, ShardPrefills, ShardSyncFills ID
	ShardThinkBatches, ShardStalls              ID
	// Interval-sampling engine (zero / idle under detailed runs). The
	// relative CI is published in parts-per-million so the integer slot
	// carries the convergence signal losslessly enough for live display.
	SampleWindows, SampleDetailedRefs ID
	SampleSkippedRefs, SampleRelCIPPM ID
	// Split-transaction parallel engine (zero / idle under the
	// sequential engine).
	PdesWorkers, PdesDomains      ID
	PdesWindows, PdesOps, PdesStalls ID
	// Phase decomposition (microseconds), published once per run end.
	PhaseWarmupMicros, PhaseMeasureMicros              ID
	PdesWindowMicros, PdesReplayMicros, PdesBarrierMicros ID
	SampleDetailedMicros, SampleFFMicros               ID
	// Runner bookkeeping.
	Sims, Jobs ID
}

// RegisterSimMetrics installs the standard schema on reg.
func RegisterSimMetrics(reg *Registry) *SimMetrics {
	m := &SimMetrics{
		Refs:           reg.CounterID("sim_refs_total", "memory references simulated"),
		PrivMisses:     reg.CounterID("sim_priv_misses_total", "private-cache misses"),
		LLCMisses:      reg.CounterID("sim_llc_misses_total", "LLC misses"),
		C2CClean:       reg.CounterID("sim_c2c_clean_total", "clean cache-to-cache transfers"),
		C2CDirty:       reg.CounterID("sim_c2c_dirty_total", "dirty cache-to-cache transfers"),
		MemReads:       reg.CounterID("sim_mem_reads_total", "demand fetches that left the chip"),
		Invalidations:  reg.CounterID("sim_invalidations_total", "remote copies invalidated"),
		Upgrades:       reg.CounterID("sim_upgrades_total", "shared-to-modified upgrades"),
		DirEntries:     reg.GaugeID("dir_entries", "coherence directory entries tracked"),
		DirCacheHits:   reg.GaugeID("dircache_hits", "directory cache hits since measure start"),
		DirCacheMisses: reg.GaugeID("dircache_misses", "directory cache misses since measure start"),
		MemReads2:      reg.GaugeID("mem_reads", "controller demand reads since measure start"),
		MemWritebacks:  reg.GaugeID("mem_writebacks", "controller writebacks since measure start"),
		MemWaitCycles:  reg.GaugeID("mem_wait_cycles", "controller queueing cycles since measure start"),
		MemQueueDepth:  reg.GaugeID("mem_queue_depth", "requests currently queued at controllers"),
		EventQueueLen:  reg.GaugeID("eventq_len", "simulator event queue length"),
		LLCResident:    reg.GaugeID("llc_resident_lines", "distinct lines resident in >=1 LLC bank"),
		LLCReplicated:  reg.GaugeID("llc_replicated_lines", "distinct lines resident in >=2 LLC banks"),
		MissLatency:    reg.HistogramID("miss_latency_cycles", "private-miss service latency"),
		Sims:           reg.CounterID("runner_sims_total", "simulations actually executed"),
		Jobs:           reg.CounterID("runner_jobs_total", "runner jobs completed"),

		ShardWorkers:      reg.GaugeID("shard_workers", "intra-run worker lanes (0 = sequential engine)"),
		ShardPrefills:     reg.GaugeID("shard_prefills", "reference batches adopted from workers"),
		ShardSyncFills:    reg.GaugeID("shard_sync_fills", "reference batches filled inline on the spine"),
		ShardThinkBatches: reg.GaugeID("shard_think_batches", "think-time batches adopted from workers"),
		ShardStalls:       reg.GaugeID("shard_stalls", "batch adoptions that waited on an unready worker"),

		SampleWindows:      reg.GaugeID("sample_windows", "detailed windows simulated (0 = detailed run)"),
		SampleDetailedRefs: reg.GaugeID("sample_detailed_refs", "per-core references measured in detail"),
		SampleSkippedRefs:  reg.GaugeID("sample_skipped_refs", "references fast-forwarded functionally"),
		SampleRelCIPPM:     reg.GaugeID("sample_rel_ci_ppm", "worst per-VM relative 95% CI half-width, parts per million"),

		PdesWorkers: reg.GaugeID("pdes_workers", "configured pdes worker count (0 = sequential engine)"),
		PdesDomains: reg.GaugeID("pdes_domains", "worker domains formed over the active cores"),
		PdesWindows: reg.GaugeID("pdes_windows", "parallel windows completed"),
		PdesOps:     reg.GaugeID("pdes_ops", "shared-tier operations replayed at barriers"),
		PdesStalls:  reg.GaugeID("pdes_stalls", "barriers where the spine waited on a worker domain"),

		PhaseWarmupMicros:    reg.GaugeID("phase_warmup_micros", "wall time in the warm-up phase"),
		PhaseMeasureMicros:   reg.GaugeID("phase_measure_micros", "wall time in the measurement phase"),
		PdesWindowMicros:     reg.GaugeID("phase_pdes_window_micros", "spine wall time inside pdes windows"),
		PdesReplayMicros:     reg.GaugeID("phase_pdes_replay_micros", "wall time in the serial barrier op replay"),
		PdesBarrierMicros:    reg.GaugeID("phase_pdes_barrier_micros", "wall time folding/resyncing replicas at barriers"),
		SampleDetailedMicros: reg.GaugeID("phase_sample_detailed_micros", "wall time in detailed sampling windows"),
		SampleFFMicros:       reg.GaugeID("phase_sample_ff_micros", "wall time in functional fast-forward"),
	}
	levels := [3]string{"l0", "l1", "llc"}
	for i, lv := range levels {
		m.LevelAccesses[i] = reg.GaugeID("cache_"+lv+"_accesses", "accesses since measure start")
		m.LevelMisses[i] = reg.GaugeID("cache_"+lv+"_misses", "misses since measure start")
		m.LevelEvictions[i] = reg.GaugeID("cache_"+lv+"_evictions", "evictions since measure start")
	}
	for v := 0; v < MaxVMGauges; v++ {
		m.OccVM[v] = reg.GaugeID(fmt.Sprintf("llc_lines_vm%d", v), "LLC lines inserted by this VM (last snapshot)")
	}
	return m
}
