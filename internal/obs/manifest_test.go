package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "manifests.jsonl")
	w, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []Manifest{
		{
			Label: "TPC-H shared-4-way/affinity", Workloads: []string{"TPC-H"},
			GroupSize: 4, Policy: "affinity", Scale: 16, Seed: 1,
			WarmupRefs: 2000, MeasureRefs: 4000, Replicates: 1,
			Refs: 64000, Cycles: 123456, WallSeconds: 0.25,
		},
		{
			Label: "TPC-W+SPECjbb shared/rr", Workloads: []string{"TPC-W", "SPECjbb"},
			GroupSize: 16, Policy: "rr", Scale: 4, Seed: 7,
			WarmupRefs: 1000, MeasureRefs: 2000, SnapshotRefs: 500,
			Replicates: 3, Refs: 96000, Cycles: 654321, WallSeconds: 1.5,
			Parallel: 4,
			Shards:   4, ShardPrefills: 1200, ShardSyncFills: 31,
			ShardThinkBatches: 900, ShardStalls: 17, ShardStallSeconds: 0.004,
		},
	}
	for _, m := range in {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadManifests(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d manifests, wrote %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.Label != want.Label || got.GroupSize != want.GroupSize ||
			got.Policy != want.Policy || got.Scale != want.Scale ||
			got.Seed != want.Seed || got.Replicates != want.Replicates ||
			got.Refs != want.Refs || got.Cycles != want.Cycles ||
			got.WallSeconds != want.WallSeconds || got.Parallel != want.Parallel {
			t.Errorf("manifest %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// Environment fields are stamped by Write, not the caller.
		if got.Time == "" || got.Tool == "" || got.GoVersion == "" {
			t.Errorf("manifest %d missing stamped fields: %+v", i, got)
		}
		if !strings.HasPrefix(got.Tool, "consim ") {
			t.Errorf("manifest %d tool = %q", i, got.Tool)
		}
	}
}

// TestManifestStampsEnvironment checks Write fills the v2 schema
// fields the caller left zero, and records the time-series sidecar path
// only for runs that carried a recorder.
func TestManifestStampsEnvironment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	w, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTimeseriesPath("results/ts.jsonl")
	if err := w.Write(Manifest{Label: "plain"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Manifest{Label: "recorded", TimeseriesRun: 3, TimeseriesRows: 40}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	out, err := ReadManifests(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range out {
		if m.Version != ManifestVersion {
			t.Errorf("manifest %d version = %d, want %d", i, m.Version, ManifestVersion)
		}
		if m.GOMAXPROCS == 0 || m.NumCPU == 0 {
			t.Errorf("manifest %d missing host parallelism: %+v", i, m)
		}
	}
	if out[0].Timeseries != "" {
		t.Errorf("run without a recorder got a sidecar path %q", out[0].Timeseries)
	}
	if out[1].Timeseries != "results/ts.jsonl" || out[1].TimeseriesRun != 3 || out[1].TimeseriesRows != 40 {
		t.Errorf("recorded run sidecar reference = %+v", out[1])
	}
}

// TestReadManifestsBackwardCompat decodes a pre-v2 line (no version, no
// gomaxprocs, no phase): old sidecars must keep reading, with the new
// fields zero.
func TestReadManifestsBackwardCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.jsonl")
	old := `{"time":"2026-01-01T00:00:00Z","tool":"consim v0.6","go_version":"go1.22",` +
		`"label":"TPC-H shared/affinity","workloads":["TPC-H"],"group_size":4,"policy":"affinity",` +
		`"scale":16,"seed":1,"warmup_refs":2000,"measure_refs":4000,"replicates":1,` +
		`"refs":64000,"cycles":123456,"wall_seconds":0.25,"cpu_seconds":0.3}` + "\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ReadManifests(path)
	if err != nil {
		t.Fatalf("old-schema sidecar failed to read: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("read %d records, want 1", len(out))
	}
	m := out[0]
	if m.Label != "TPC-H shared/affinity" || m.Refs != 64000 {
		t.Fatalf("old record mangled: %+v", m)
	}
	if m.Version != 0 || m.GOMAXPROCS != 0 || m.NumCPU != 0 || m.Phase != nil || m.Timeseries != "" {
		t.Fatalf("old record grew phantom v2 fields: %+v", m)
	}
}

func TestReadManifestsErrorPaths(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// An empty sidecar is no records, not an error (a fresh -manifest
	// file that no run wrote to yet).
	out, err := ReadManifests(write("empty.jsonl", ""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty file: out=%v err=%v, want nil/nil", out, err)
	}

	// A truncated final line (crash mid-append) is an error, not silent
	// data loss.
	if _, err := ReadManifests(write("trunc.jsonl",
		`{"label":"ok","wall_seconds":1}`+"\n"+`{"label":"cut","wall_se`)); err == nil {
		t.Error("truncated line did not error")
	}

	// Non-JSON garbage is an error.
	if _, err := ReadManifests(write("bad.jsonl", "not json at all\n")); err == nil {
		t.Error("bad JSON did not error")
	}

	// A missing file surfaces the filesystem error.
	if _, err := ReadManifests(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestManifestAppendsAcrossWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	for i := 0; i < 2; i++ {
		w, err := OpenManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Manifest{Label: "run", Workloads: []string{"TPC-H"}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ReadManifests(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("re-opened sidecar holds %d records, want 2 (append, not truncate)", len(out))
	}
}
