package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "manifests.jsonl")
	w, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []Manifest{
		{
			Label: "TPC-H shared-4-way/affinity", Workloads: []string{"TPC-H"},
			GroupSize: 4, Policy: "affinity", Scale: 16, Seed: 1,
			WarmupRefs: 2000, MeasureRefs: 4000, Replicates: 1,
			Refs: 64000, Cycles: 123456, WallSeconds: 0.25,
		},
		{
			Label: "TPC-W+SPECjbb shared/rr", Workloads: []string{"TPC-W", "SPECjbb"},
			GroupSize: 16, Policy: "rr", Scale: 4, Seed: 7,
			WarmupRefs: 1000, MeasureRefs: 2000, SnapshotRefs: 500,
			Replicates: 3, Refs: 96000, Cycles: 654321, WallSeconds: 1.5,
			Parallel: 4,
			Shards:   4, ShardPrefills: 1200, ShardSyncFills: 31,
			ShardThinkBatches: 900, ShardStalls: 17, ShardStallSeconds: 0.004,
		},
	}
	for _, m := range in {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadManifests(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d manifests, wrote %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.Label != want.Label || got.GroupSize != want.GroupSize ||
			got.Policy != want.Policy || got.Scale != want.Scale ||
			got.Seed != want.Seed || got.Replicates != want.Replicates ||
			got.Refs != want.Refs || got.Cycles != want.Cycles ||
			got.WallSeconds != want.WallSeconds || got.Parallel != want.Parallel {
			t.Errorf("manifest %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// Environment fields are stamped by Write, not the caller.
		if got.Time == "" || got.Tool == "" || got.GoVersion == "" {
			t.Errorf("manifest %d missing stamped fields: %+v", i, got)
		}
		if !strings.HasPrefix(got.Tool, "consim ") {
			t.Errorf("manifest %d tool = %q", i, got.Tool)
		}
	}
}

func TestManifestAppendsAcrossWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	for i := 0; i < 2; i++ {
		w, err := OpenManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Manifest{Label: "run", Workloads: []string{"TPC-H"}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ReadManifests(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("re-opened sidecar holds %d records, want 2 (append, not truncate)", len(out))
	}
}
