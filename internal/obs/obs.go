// Package obs is the simulator's observability layer: a sharded metrics
// registry whose hot-path updates are allocation-free, a Chrome
// trace-format event tracer for phase and runner-pool timing, JSONL run
// manifests that stamp every result with its provenance, a live progress
// display for long sweeps, and an optional expvar + pprof debug server.
//
// The design splits responsibilities so the simulator's per-reference
// path stays zero-alloc:
//
//   - Each simulation goroutine owns a Shard and publishes into atomic
//     slots (uncontended writes, race-free concurrent reads).
//   - Dense counters (cache hits, references) are *published* on a
//     cadence by the owning goroutine rather than incremented per event,
//     so instrumentation costs one branch per reference when enabled and
//     nothing when disabled.
//   - Trace events fire only at phase granularity (warmup, measurement,
//     snapshot, runner jobs), never per reference.
package obs

import (
	"runtime/debug"
	"sync/atomic"
)

// ToolVersion identifies the simulator build in manifests and traces.
const ToolVersion = "0.3.0"

// buildRev returns the VCS revision baked into the binary, if any
// (binaries built inside the git checkout carry it; `go test` ones may
// not).
func buildRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev := ""
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}

// Observer bundles every enabled observability sink for one process:
// the registry (always present), and optionally a tracer, a manifest
// writer and a progress display. A nil *Observer disables everything.
type Observer struct {
	Reg  *Registry
	Sim  *SimMetrics
	Tr   *Tracer         // nil = tracing off
	Man  *ManifestWriter // nil = manifests off
	Prog *Progress       // nil = no live progress
	TS   *TSWriter       // nil = per-window time series off

	// Parallel is recorded into manifests (the sweep's worker count).
	Parallel int

	sh *Shard // the observer's own shard for runner-level counters
}

// NewObserver builds an observer around the standard simulator metric
// schema. tracer, man and prog may each be nil.
func NewObserver(tracer *Tracer, man *ManifestWriter, prog *Progress) *Observer {
	reg := NewRegistry()
	sim := RegisterSimMetrics(reg)
	o := &Observer{Reg: reg, Sim: sim, Tr: tracer, Man: man, Prog: prog}
	o.sh = reg.NewShard()
	if prog != nil {
		prog.bind(reg, sim)
	}
	return o
}

// Hooks returns per-run hooks with a fresh metric shard and automatic
// trace-lane assignment. Safe on a nil observer (returns nil).
func (o *Observer) Hooks() *RunHooks { return o.HooksLane(-1) }

// HooksLane is Hooks with a pre-assigned trace lane (the harness runner
// pins a run to the worker lane that already carries its job span).
func (o *Observer) HooksLane(lane int) *RunHooks {
	if o == nil {
		return nil
	}
	return &RunHooks{
		Sh:   o.Reg.NewShard(),
		M:    o.Sim,
		Tr:   o.Tr,
		Lane: lane,
		Prog: o.Prog,
		TS:   o.TS,
	}
}

// CountSim increments the executed-simulation counter.
func (o *Observer) CountSim() {
	if o != nil {
		o.sh.Add(o.Sim.Sims, 1)
	}
}

// CountJob increments the completed-runner-job counter.
func (o *Observer) CountJob() {
	if o != nil {
		o.sh.Add(o.Sim.Jobs, 1)
	}
}

// RunHooks is the per-run instrumentation handle threaded through
// core.Config into one System: a metric shard, the shared tracer (with
// the lane to emit spans on) and the progress display. All methods are
// allocation-free except RunStart (one label concatenation per run).
type RunHooks struct {
	Sh   *Shard
	M    *SimMetrics
	Tr   *Tracer
	Lane int // trace lane; -1 = acquire one for the run's duration
	Prog *Progress
	TS   *TSWriter // nil = no per-window time-series recording

	ownLane atomic.Bool // lane was acquired by RunStart, release on RunEnd
}

// RunStart opens the run's trace span and registers it with the
// progress display; it returns the lane for subsequent Phase spans.
func (h *RunHooks) RunStart(label string) int {
	if h.Prog != nil {
		h.Prog.JobStart()
	}
	lane := h.Lane
	if h.Tr != nil {
		if lane < 0 {
			lane = h.Tr.AcquireLane()
			h.ownLane.Store(true)
		}
		h.Tr.Begin(lane, "run "+label)
	}
	return lane
}

// RunEnd closes the run span (releasing an auto-acquired lane) and
// marks the run done on the progress display.
func (h *RunHooks) RunEnd(lane int) {
	if h.Tr != nil {
		h.Tr.End(lane)
		if h.ownLane.Load() {
			h.Tr.ReleaseLane(lane)
			h.ownLane.Store(false)
		}
	}
	if h.Prog != nil {
		h.Prog.JobDone()
	}
}

// Phase opens a named span on the run's lane and returns its closer.
func (h *RunHooks) Phase(lane int, name string) func() {
	if h.Tr == nil {
		return func() {}
	}
	h.Tr.Begin(lane, name)
	return func() { h.Tr.End(lane) }
}

// ObserveMissLat records one private-miss latency into the histogram.
func (h *RunHooks) ObserveMissLat(cycles uint64) { h.Sh.Observe(h.M.MissLatency, cycles) }

// AddCore folds per-VM counter deltas into the shard's counters.
func (h *RunHooks) AddCore(refs, privMisses, llcMisses, c2cClean, c2cDirty, memReads, invalidations, upgrades uint64) {
	sh, m := h.Sh, h.M
	sh.Add(m.Refs, refs)
	sh.Add(m.PrivMisses, privMisses)
	sh.Add(m.LLCMisses, llcMisses)
	sh.Add(m.C2CClean, c2cClean)
	sh.Add(m.C2CDirty, c2cDirty)
	sh.Add(m.MemReads, memReads)
	sh.Add(m.Invalidations, invalidations)
	sh.Add(m.Upgrades, upgrades)
}

// SetLevel publishes one cache level's counters (0=L0, 1=L1, 2=LLC),
// summed over the level's arrays, as gauges.
func (h *RunHooks) SetLevel(level int, accesses, misses, evictions uint64) {
	h.Sh.Set(h.M.LevelAccesses[level], accesses)
	h.Sh.Set(h.M.LevelMisses[level], misses)
	h.Sh.Set(h.M.LevelEvictions[level], evictions)
}

// SetDirectory publishes coherence-directory occupancy and directory
// cache hit/miss totals.
func (h *RunHooks) SetDirectory(entries, dcHits, dcMisses uint64) {
	h.Sh.Set(h.M.DirEntries, entries)
	h.Sh.Set(h.M.DirCacheHits, dcHits)
	h.Sh.Set(h.M.DirCacheMisses, dcMisses)
}

// SetMemory publishes memory-controller counters and live queue depth.
func (h *RunHooks) SetMemory(reads, writebacks, waitCycles uint64, queueDepth int) {
	h.Sh.Set(h.M.MemReads2, reads)
	h.Sh.Set(h.M.MemWritebacks, writebacks)
	h.Sh.Set(h.M.MemWaitCycles, waitCycles)
	h.Sh.Set(h.M.MemQueueDepth, uint64(queueDepth))
}

// SetEventQueue publishes the simulator event queue length.
func (h *RunHooks) SetEventQueue(n int) { h.Sh.Set(h.M.EventQueueLen, uint64(n)) }

// SetShards publishes the sharded engine's worker lane count (zero for
// the sequential engine).
func (h *RunHooks) SetShards(shards, workers int) {
	h.Sh.Set(h.M.ShardWorkers, uint64(workers))
}

// SetShardProgress publishes the sharded engine's running batch and
// stall totals, on the same live cadence as the core counters.
func (h *RunHooks) SetShardProgress(prefills, syncFills, thinkBatches, stalls uint64) {
	sh, m := h.Sh, h.M
	sh.Set(m.ShardPrefills, prefills)
	sh.Set(m.ShardSyncFills, syncFills)
	sh.Set(m.ShardThinkBatches, thinkBatches)
	sh.Set(m.ShardStalls, stalls)
}

// SetSampleProgress publishes the interval-sampling engine's window and
// coverage totals plus the live convergence signal (worst per-VM
// relative CI, scaled to parts per million), once per detailed window.
func (h *RunHooks) SetSampleProgress(windows, detailedRefs, skippedRefs uint64, relCI float64) {
	sh, m := h.Sh, h.M
	sh.Set(m.SampleWindows, windows)
	sh.Set(m.SampleDetailedRefs, detailedRefs)
	sh.Set(m.SampleSkippedRefs, skippedRefs)
	ppm := relCI * 1e6
	if ppm < 0 || ppm > 1e12 { // clamp +Inf (unconverged zero-mean metric)
		ppm = 1e12
	}
	sh.Set(m.SampleRelCIPPM, uint64(ppm))
}

// SetPdes publishes the split-transaction parallel engine's worker and
// domain counts (zero for the sequential engine).
func (h *RunHooks) SetPdes(workers, domains int) {
	h.Sh.Set(h.M.PdesWorkers, uint64(workers))
	h.Sh.Set(h.M.PdesDomains, uint64(domains))
}

// SetPdesProgress publishes the parallel engine's window, replay-op and
// sync-stall totals, once per window barrier.
func (h *RunHooks) SetPdesProgress(windows, ops, stalls uint64) {
	sh, m := h.Sh, h.M
	sh.Set(m.PdesWindows, windows)
	sh.Set(m.PdesOps, ops)
	sh.Set(m.PdesStalls, stalls)
}

// SetPhaseProfile publishes the run's phase decomposition as gauges
// (microsecond resolution — wall phases are milliseconds and up).
func (h *RunHooks) SetPhaseProfile(p *PhaseProfile) {
	sh, m := h.Sh, h.M
	micros := func(sec float64) uint64 { return uint64(sec * 1e6) }
	sh.Set(m.PhaseWarmupMicros, micros(p.WarmupSeconds))
	sh.Set(m.PhaseMeasureMicros, micros(p.MeasureSeconds))
	sh.Set(m.PdesWindowMicros, micros(p.PdesWindowSeconds))
	sh.Set(m.PdesReplayMicros, micros(p.PdesReplaySeconds))
	sh.Set(m.PdesBarrierMicros, micros(p.PdesBarrierSeconds))
	sh.Set(m.SampleDetailedMicros, micros(p.SampleDetailedSeconds))
	sh.Set(m.SampleFFMicros, micros(p.SampleFFSeconds))
}

// SetSharing publishes the LLC replication snapshot counts.
func (h *RunHooks) SetSharing(resident, replicated int) {
	h.Sh.Set(h.M.LLCResident, uint64(resident))
	h.Sh.Set(h.M.LLCReplicated, uint64(replicated))
}

// SetOccupancy publishes one VM's total LLC line occupancy. VMs beyond
// the fixed gauge set are ignored.
func (h *RunHooks) SetOccupancy(vm, lines int) {
	if vm >= 0 && vm < MaxVMGauges {
		h.Sh.Set(h.M.OccVM[vm], uint64(lines))
	}
}
