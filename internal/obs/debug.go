package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The expvar namespace is process-global and Publish panics on
// duplicates, so the registry export indirects through one package
// variable that StartDebugServer swaps.
var (
	debugMu      sync.Mutex
	debugReg     *Registry
	debugVarOnce sync.Once
)

// StartDebugServer serves live metrics and profiling endpoints on addr:
//
//	/debug/vars          expvar (process stats + the consim metric registry)
//	/debug/pprof/...     net/http/pprof (profile, heap, goroutine, trace)
//
// It returns a shutdown function. The server runs until shut down; a
// long sweep can be profiled mid-flight with
// `go tool pprof http://addr/debug/pprof/profile`.
func StartDebugServer(addr string, reg *Registry) (func() error, error) {
	debugMu.Lock()
	debugReg = reg
	debugMu.Unlock()
	debugVarOnce.Do(func() {
		expvar.Publish("consim", expvar.Func(func() any {
			debugMu.Lock()
			r := debugReg
			debugMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return func() error { return srv.Close() }, nil
}
