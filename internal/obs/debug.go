package obs

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The expvar namespace is process-global and Publish panics on
// duplicates, so the registry export indirects through one package
// variable that StartDebugServer swaps.
var (
	debugMu      sync.Mutex
	debugReg     *Registry
	debugVarOnce sync.Once
)

// StartDebugServer serves live metrics and profiling endpoints on addr:
//
//	/debug/vars          expvar (process stats + the consim metric registry)
//	/debug/pprof/...     net/http/pprof (profile, heap, goroutine, trace)
//
// It returns the bound address (resolving a ":0" request) and a
// shutdown function that gracefully drains in-flight requests, closes
// the listener, and waits for the serve loop to exit — the run ending
// never leaks the listener or its goroutine. A long sweep can be
// profiled mid-flight with
// `go tool pprof http://addr/debug/pprof/profile`.
func StartDebugServer(addr string, reg *Registry) (string, func() error, error) {
	debugMu.Lock()
	debugReg = reg
	debugMu.Unlock()
	debugVarOnce.Do(func() {
		expvar.Publish("consim", expvar.Func(func() any {
			debugMu.Lock()
			r := debugReg
			debugMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			// A hung profile stream outlived the grace period; force it.
			err = srv.Close()
		}
		if serr := <-served; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}
