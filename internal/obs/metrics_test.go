package obs

import (
	"sync"
	"testing"
)

func TestRegistryAggregatesAcrossShards(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterID("c", "")
	g := reg.GaugeID("g", "")
	a, b := reg.NewShard(), reg.NewShard()
	a.Add(c, 3)
	b.Add(c, 4)
	a.Set(g, 10)
	b.Set(g, 5)
	if got := reg.Value(c); got != 7 {
		t.Errorf("counter sum = %d, want 7", got)
	}
	if got := reg.Value(g); got != 15 {
		t.Errorf("gauge sum = %d, want 15", got)
	}
}

func TestRegistryReRegisterReturnsSameID(t *testing.T) {
	reg := NewRegistry()
	if reg.CounterID("x", "") != reg.CounterID("x", "") {
		t.Error("re-registration returned a new ID")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	reg.GaugeID("x", "")
}

func TestRegistrationAfterFreezePanics(t *testing.T) {
	reg := NewRegistry()
	reg.CounterID("x", "")
	reg.NewShard()
	defer func() {
		if recover() == nil {
			t.Error("post-freeze registration did not panic")
		}
	}()
	reg.CounterID("y", "")
}

// TestConcurrentShardsSumExactly is the -race exercise: many goroutines
// write their own shards while a reader polls aggregates, then the final
// sums must be exact.
func TestConcurrentShardsSumExactly(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterID("refs", "")
	h := reg.HistogramID("lat", "")

	const workers = 8
	const perWorker = 10_000
	shards := make([]*Shard, workers)
	for i := range shards {
		shards[i] = reg.NewShard()
	}

	done := make(chan struct{})
	go func() { // concurrent reader: values must only be racefree, not exact
		for {
			select {
			case <-done:
				return
			default:
				reg.Value(c)
				reg.HistQuantile(h, 0.5)
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(sh *Shard, seed uint64) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				sh.Add(c, 1)
				sh.Observe(h, seed+uint64(j)%300)
			}
		}(shards[i], uint64(i))
	}
	wg.Wait()
	close(done)

	if got := reg.Value(c); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Value(h); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	counts := reg.HistCounts(h)
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", total, workers*perWorker)
	}
}

func TestHistQuantileBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramID("lat", "")
	sh := reg.NewShard()
	if reg.HistQuantile(h, 0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	// 100 observations of 150 land in bucket bits.Len64(150)=8, i.e.
	// [128,256); every quantile reports the bucket's upper bound 255.
	for i := 0; i < 100; i++ {
		sh.Observe(h, 150)
	}
	if got := reg.HistQuantile(h, 0.50); got != 255 {
		t.Errorf("p50 = %d, want 255", got)
	}
	if got := reg.HistQuantile(h, 0.99); got != 255 {
		t.Errorf("p99 = %d, want 255", got)
	}
}

func TestShardHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterID("c", "")
	g := reg.GaugeID("g", "")
	h := reg.HistogramID("h", "")
	sh := reg.NewShard()
	allocs := testing.AllocsPerRun(1000, func() {
		sh.Add(c, 1)
		sh.Set(g, 42)
		sh.Observe(h, 150)
	})
	if allocs != 0 {
		t.Errorf("shard writes allocate: %v allocs/run", allocs)
	}
}

func TestSnapshotShapes(t *testing.T) {
	reg := NewRegistry()
	m := RegisterSimMetrics(reg)
	sh := reg.NewShard()
	sh.Add(m.Refs, 100)
	sh.Observe(m.MissLatency, 150)
	snap := reg.Snapshot()
	if snap["sim_refs_total"] != uint64(100) {
		t.Errorf("snapshot counter = %v", snap["sim_refs_total"])
	}
	hist, ok := snap["miss_latency_cycles"].(map[string]uint64)
	if !ok || hist["count"] != 1 {
		t.Errorf("snapshot histogram = %v", snap["miss_latency_cycles"])
	}
}
