package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerLifecycle starts the server on an ephemeral port,
// checks /debug/vars serves the registry, and verifies shutdown frees
// the port and its goroutine (satellite: -debug-addr must not leak the
// listener when the run ends).
func TestDebugServerLifecycle(t *testing.T) {
	reg := NewRegistry()
	m := RegisterSimMetrics(reg)
	sh := reg.NewShard()
	sh.Set(m.PhaseWarmupMicros, 1234)

	addr, shutdown, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q not resolved", addr)
	}

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var payload struct {
		Consim map[string]any `json:"consim"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if got := payload.Consim["phase_warmup_micros"]; got != float64(1234) {
		t.Fatalf("phase_warmup_micros = %v, want 1234", got)
	}

	// FetchDebugVars (obs top's poll path) sees the same snapshot.
	vars, err := FetchDebugVars(addr)
	if err != nil {
		t.Fatalf("FetchDebugVars: %v", err)
	}
	if vars["phase_warmup_micros"] != 1234 {
		t.Fatalf("FetchDebugVars phase_warmup_micros = %v", vars["phase_warmup_micros"])
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}

	// The expvar hook outlives the server; a second start must reuse it
	// rather than panic on a duplicate Publish.
	addr2, shutdown2, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("second StartDebugServer: %v", err)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	_ = addr2
}
