package obs

import (
	"math"
	"path/filepath"
	"testing"
)

func openTestTS(t *testing.T) (*TSWriter, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ts", "series.jsonl")
	w, err := OpenTimeSeries(path)
	if err != nil {
		t.Fatalf("OpenTimeSeries: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func TestTimeSeriesRoundTrip(t *testing.T) {
	w, path := openTestTS(t)
	r := w.NewRecorder("shared/affinity", 2, 2, 0)
	if r.Run() != 1 {
		t.Fatalf("first run id = %d, want 1", r.Run())
	}

	r.Begin(TSPhaseWarmup, 1000, 0.5, 3, -1, 0)
	r.VM(0, 8192, 0.02, 5400)
	r.VM(1, 4096, 0.10, 9100.5)
	r.Domain(0, 1000, 0.25)
	r.Domain(1, 990, 0.20)
	r.Commit()

	r.Begin(TSPhaseMeasure, 2000, 1.25, 0, 0.04, 0.125)
	r.VM(0, 8192, math.NaN(), math.Inf(1)) // zero-transaction window
	r.VM(1, 0, 0, 0)
	r.Domain(0, 2000, 0.5)
	r.Domain(1, 1980, 0.45)
	r.Commit()

	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if r.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", r.Rows())
	}

	rows, err := ReadTimeSeries(path)
	if err != nil {
		t.Fatalf("ReadTimeSeries: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("decoded %d rows, want 2", len(rows))
	}
	r0 := rows[0]
	if r0.Run != 1 || r0.Label != "shared/affinity" || r0.W != 0 || r0.Phase != "warmup" {
		t.Fatalf("row 0 header = %+v", r0)
	}
	if r0.Cycle != 1000 || r0.Wall != 0.5 || r0.MemQ != 3 {
		t.Fatalf("row 0 scalars = %+v", r0)
	}
	if r0.RelCI != 0 { // relCI<0 is omitted from the line entirely
		t.Fatalf("row 0 rel_ci = %v, want omitted (0)", r0.RelCI)
	}
	if r0.Refs[0] != 8192 || r0.Miss[1] != 0.10 || r0.CPT[1] != 9100.5 {
		t.Fatalf("row 0 VM columns = %+v", r0)
	}
	if r0.DomCycles[1] != 990 || r0.DomBusy[0] != 0.25 {
		t.Fatalf("row 0 domain columns = %+v", r0)
	}
	r1 := rows[1]
	if r1.W != 1 || r1.Phase != "measure" || r1.RelCI != 0.04 || r1.Replay != 0.125 {
		t.Fatalf("row 1 = %+v", r1)
	}
	// NaN/Inf sanitize to -1 so the sidecar stays valid JSON.
	if r1.Miss[0] != -1 || r1.CPT[0] != -1 {
		t.Fatalf("row 1 NaN columns = miss %v cpt %v, want -1", r1.Miss[0], r1.CPT[0])
	}
}

// TestTimeSeriesSpill fills past the ring capacity and checks every row
// survives with contiguous window sequence numbers.
func TestTimeSeriesSpill(t *testing.T) {
	w, path := openTestTS(t)
	const capacity, total = 4, 11
	r := w.NewRecorder("spill", 1, 0, capacity)
	for i := 0; i < total; i++ {
		r.Begin(TSPhaseMeasure, uint64(i)*100, float64(i), i, -1, 0)
		r.VM(0, uint64(i), 0.5, 100)
		r.Commit()
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rows, err := ReadTimeSeries(path)
	if err != nil {
		t.Fatalf("ReadTimeSeries: %v", err)
	}
	if len(rows) != total {
		t.Fatalf("decoded %d rows, want %d", len(rows), total)
	}
	for i, row := range rows {
		if int(row.W) != i || row.Cycle != uint64(i)*100 || row.Refs[0] != uint64(i) {
			t.Fatalf("row %d out of order: %+v", i, row)
		}
	}
}

// TestTimeSeriesRunsInterleave checks two recorders share one sidecar
// without clashing run ids.
func TestTimeSeriesRunsInterleave(t *testing.T) {
	w, path := openTestTS(t)
	a := w.NewRecorder("a", 1, 0, 2)
	b := w.NewRecorder("b", 1, 0, 2)
	if a.Run() == b.Run() {
		t.Fatalf("run ids clash: %d", a.Run())
	}
	for i := 0; i < 3; i++ {
		a.Begin(TSPhaseMeasure, uint64(i), 0, 0, -1, 0)
		a.VM(0, 1, 0, 0)
		a.Commit()
		b.Begin(TSPhaseMeasure, uint64(i), 0, 0, -1, 0)
		b.VM(0, 2, 0, 0)
		b.Commit()
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadTimeSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, row := range rows {
		counts[row.Run]++
	}
	if counts[a.Run()] != 3 || counts[b.Run()] != 3 {
		t.Fatalf("per-run row counts = %v", counts)
	}
}

// TestRecorderZeroAllocSteadyState pins the recording hot path at zero
// allocations: Begin/VM/Domain/Commit within capacity must be pure
// column writes, or -timeseries would break the simulator's
// steady-state allocation budget.
func TestRecorderZeroAllocSteadyState(t *testing.T) {
	w, _ := openTestTS(t)
	r := w.NewRecorder("alloc", 4, 2, 1<<16)
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		r.Begin(TSPhaseMeasure, i, float64(i), 5, -1, 0)
		for v := 0; v < 4; v++ {
			r.VM(v, i, 0.02, 5000)
		}
		r.Domain(0, i, 0.1)
		r.Domain(1, i, 0.1)
		r.Commit()
		i++
	})
	if allocs != 0 {
		t.Fatalf("recording path allocates %.1f/row, want 0", allocs)
	}
}

func TestTSPhaseNames(t *testing.T) {
	for _, name := range []string{"warmup", "measure", "window", "fastforward", "snapshot"} {
		if got := TSPhaseOf(name).String(); got != name {
			t.Errorf("TSPhaseOf(%q).String() = %q", name, got)
		}
	}
	if TSPhaseOf("no-such-phase") != TSPhaseOther {
		t.Errorf("unknown phase did not map to other")
	}
	if TSPhase(250).String() != "other" {
		t.Errorf("out-of-range phase did not render as other")
	}
}
