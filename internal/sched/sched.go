// Package sched implements the hypervisor thread-placement policies from
// §III-D of the paper: round-robin, affinity, a round-robin/affinity
// hybrid, and random. A policy maps every (vm, thread) pair to a physical
// core, given how cores are grouped around shared LLC banks; threads stay
// bound for the whole run (static binding, §IV-A).
package sched

import (
	"fmt"

	"consim/internal/sim"
)

// Policy selects a placement algorithm.
type Policy int

// The four §III-D policies.
const (
	// RoundRobin spreads each workload's threads across distinct LLC
	// groups, emphasizing load balance and maximum aggregate capacity.
	RoundRobin Policy = iota
	// Affinity packs each workload's threads into as few LLC groups as
	// possible, maximizing sharing.
	Affinity
	// RRAffinity spreads thread *pairs* round-robin, so at least two
	// threads of a workload share each LLC group.
	RRAffinity
	// Random places threads on arbitrary available cores, modeling an
	// over-committed hypervisor's long-run assignment.
	Random
	NumPolicies
)

// String returns the paper's abbreviation for the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case Affinity:
		return "affinity"
	case RRAffinity:
		return "aff-rr"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ByName parses a policy name as printed by String.
func ByName(name string) (Policy, error) {
	for p := Policy(0); p < NumPolicies; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}

// All returns every policy, for sweeps.
func All() []Policy {
	return []Policy{RoundRobin, Affinity, RRAffinity, Random}
}

// Assign places threads on cores. cores is the machine size, groupSize
// the number of cores sharing one LLC bank group (cores are grouped
// contiguously: group g covers [g*groupSize, (g+1)*groupSize)), and
// vmThreads gives each VM's thread count. The result is
// assignment[vm][thread] = core. It fails if the demand exceeds the
// machine (the paper never over-commits; see AssignWithCapacity for the
// over-committed extension).
func Assign(p Policy, cores, groupSize int, vmThreads []int, seed uint64) ([][]int, error) {
	return AssignWithCapacity(p, cores, groupSize, 1, vmThreads, seed)
}

// AssignWithCapacity is the over-committed variant of Assign: each core
// accepts up to capacity threads (the hypervisor will time-slice them).
// The placement policies keep their §III-D semantics over the multiplied
// core slots.
func AssignWithCapacity(p Policy, cores, groupSize, capacity int, vmThreads []int, seed uint64) ([][]int, error) {
	if cores <= 0 || groupSize <= 0 || cores%groupSize != 0 {
		return nil, fmt.Errorf("sched: invalid machine %d cores / group %d", cores, groupSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: non-positive core capacity %d", capacity)
	}
	total := 0
	for _, t := range vmThreads {
		if t <= 0 {
			return nil, fmt.Errorf("sched: VM with %d threads", t)
		}
		total += t
	}
	if total > cores*capacity {
		return nil, fmt.Errorf("sched: %d threads exceed %d cores x %d slots", total, cores, capacity)
	}

	groups := cores / groupSize
	free := make([][]int, groups) // free core slots per group
	for g := 0; g < groups; g++ {
		for r := 0; r < capacity; r++ {
			for c := g * groupSize; c < (g+1)*groupSize; c++ {
				free[g] = append(free[g], c)
			}
		}
	}
	take := func(g int) (int, bool) {
		if len(free[g]) == 0 {
			return 0, false
		}
		c := free[g][0]
		free[g] = free[g][1:]
		return c, true
	}
	// nextWithSpace scans groups starting at g for one with a free core.
	nextWithSpace := func(g int) int {
		for i := 0; i < groups; i++ {
			cand := (g + i) % groups
			if len(free[cand]) > 0 {
				return cand
			}
		}
		return -1
	}

	out := make([][]int, len(vmThreads))
	switch p {
	case Affinity:
		// Fill group by group so each VM occupies the fewest groups.
		g := 0
		for v, n := range vmThreads {
			out[v] = make([]int, n)
			for t := 0; t < n; t++ {
				g = nextWithSpace(g)
				c, _ := take(g)
				out[v][t] = c
			}
		}
	case RoundRobin:
		// Each VM's threads go to consecutive distinct groups; VMs start
		// at staggered offsets so groups fill evenly.
		for v, n := range vmThreads {
			out[v] = make([]int, n)
			for t := 0; t < n; t++ {
				g := nextWithSpace((v + t) % groups)
				c, _ := take(g)
				out[v][t] = c
			}
		}
	case RRAffinity:
		// Pairs of threads travel together round-robin.
		pairStart := 0
		for v, n := range vmThreads {
			out[v] = make([]int, n)
			for t := 0; t < n; t += 2 {
				g := nextWithSpace(pairStart % groups)
				c, _ := take(g)
				out[v][t] = c
				if t+1 < n {
					// Keep the pair together if the group still has
					// space, else spill to the next group.
					if c2, ok := take(g); ok {
						out[v][t+1] = c2
					} else {
						g2 := nextWithSpace(g)
						c2, _ = take(g2)
						out[v][t+1] = c2
					}
				}
				pairStart++
			}
		}
	case Random:
		// Shuffle all cores and hand them out in order.
		all := make([]int, 0, cores)
		for g := 0; g < groups; g++ {
			all = append(all, free[g]...)
		}
		r := sim.NewRNG(seed)
		for i := len(all) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			all[i], all[j] = all[j], all[i]
		}
		k := 0
		for v, n := range vmThreads {
			out[v] = make([]int, n)
			for t := 0; t < n; t++ {
				out[v][t] = all[k]
				k++
			}
		}
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", p)
	}
	return out, nil
}

// GroupOf returns the LLC group of core c under the given group size.
func GroupOf(core, groupSize int) int { return core / groupSize }
