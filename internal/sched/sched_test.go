package sched

import (
	"testing"
	"testing/quick"
)

// validAssignment checks the universal placement invariants: every thread
// got a core, no core is double-booked, all cores are in range.
func validAssignment(t *testing.T, asg [][]int, cores int, vmThreads []int) {
	t.Helper()
	used := map[int]bool{}
	for v, threads := range asg {
		if len(threads) != vmThreads[v] {
			t.Fatalf("vm %d got %d cores, want %d", v, len(threads), vmThreads[v])
		}
		for _, c := range threads {
			if c < 0 || c >= cores {
				t.Fatalf("core %d out of range", c)
			}
			if used[c] {
				t.Fatalf("core %d assigned twice", c)
			}
			used[c] = true
		}
	}
}

func groupsOf(threads []int, groupSize int) map[int]int {
	g := map[int]int{}
	for _, c := range threads {
		g[GroupOf(c, groupSize)]++
	}
	return g
}

var fourVMs = []int{4, 4, 4, 4}

func TestAllPoliciesValid(t *testing.T) {
	for _, p := range All() {
		for _, gs := range []int{1, 2, 4, 8, 16} {
			asg, err := Assign(p, 16, gs, fourVMs, 1)
			if err != nil {
				t.Fatalf("%v/gs%d: %v", p, gs, err)
			}
			validAssignment(t, asg, 16, fourVMs)
		}
	}
}

func TestAffinityPacksGroups(t *testing.T) {
	asg, err := Assign(Affinity, 16, 4, fourVMs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range asg {
		if g := groupsOf(asg[v], 4); len(g) != 1 {
			t.Errorf("vm %d spans %d groups under affinity, want 1", v, len(g))
		}
	}
}

func TestAffinityIsolationUsesOneGroup(t *testing.T) {
	asg, err := Assign(Affinity, 16, 4, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := groupsOf(asg[0], 4); len(g) != 1 {
		t.Errorf("isolated affinity spans %d groups", len(g))
	}
}

func TestRoundRobinSpreadsThreads(t *testing.T) {
	asg, err := Assign(RoundRobin, 16, 4, fourVMs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range asg {
		if g := groupsOf(asg[v], 4); len(g) != 4 {
			t.Errorf("vm %d spans %d groups under round robin, want 4", v, len(g))
		}
	}
}

func TestRoundRobinIsolationSpreads(t *testing.T) {
	asg, err := Assign(RoundRobin, 16, 4, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := groupsOf(asg[0], 4); len(g) != 4 {
		t.Errorf("isolated RR spans %d groups, want 4", len(g))
	}
}

func TestRRAffinityPairsShareGroups(t *testing.T) {
	asg, err := Assign(RRAffinity, 16, 4, fourVMs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range asg {
		g := groupsOf(asg[v], 4)
		// Four threads in pairs: at most 2 groups, every group holding
		// at least 2 of this VM's threads.
		if len(g) > 2 {
			t.Errorf("vm %d spans %d groups under aff-rr", v, len(g))
		}
		for grp, n := range g {
			if n < 2 {
				t.Errorf("vm %d has a lone thread in group %d", v, grp)
			}
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Assign(Random, 16, 4, fourVMs, 5)
	b, _ := Assign(Random, 16, 4, fourVMs, 5)
	c, _ := Assign(Random, 16, 4, fourVMs, 6)
	same := func(x, y [][]int) bool {
		for i := range x {
			for j := range x[i] {
				if x[i][j] != y[i][j] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed gave different random placements")
	}
	if same(a, c) {
		t.Error("different seeds gave identical placements")
	}
}

func TestAssignErrors(t *testing.T) {
	if _, err := Assign(RoundRobin, 16, 4, []int{4, 4, 4, 4, 4}, 1); err == nil {
		t.Error("over-commit accepted")
	}
	if _, err := Assign(RoundRobin, 16, 3, fourVMs, 1); err == nil {
		t.Error("non-dividing group size accepted")
	}
	if _, err := Assign(RoundRobin, 0, 1, fourVMs, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Assign(RoundRobin, 16, 4, []int{0}, 1); err == nil {
		t.Error("zero-thread VM accepted")
	}
	if _, err := Assign(Policy(99), 16, 4, fourVMs, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range All() {
		got, err := ByName(p.String())
		if err != nil || got != p {
			t.Errorf("ByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus policy name accepted")
	}
}

func TestGroupOf(t *testing.T) {
	if GroupOf(7, 4) != 1 || GroupOf(0, 1) != 0 || GroupOf(15, 16) != 0 {
		t.Error("GroupOf broken")
	}
}

func TestAssignPropertyAllPoliciesAllShapes(t *testing.T) {
	f := func(rawPolicy, rawGS, rawVMs uint8, seed uint64) bool {
		p := All()[int(rawPolicy)%len(All())]
		gsOpts := []int{1, 2, 4, 8, 16}
		gs := gsOpts[int(rawGS)%len(gsOpts)]
		nVMs := int(rawVMs)%4 + 1
		vmThreads := make([]int, nVMs)
		for i := range vmThreads {
			vmThreads[i] = 4
		}
		asg, err := Assign(p, 16, gs, vmThreads, seed)
		if err != nil {
			return false
		}
		used := map[int]bool{}
		for _, threads := range asg {
			for _, c := range threads {
				if c < 0 || c >= 16 || used[c] {
					return false
				}
				used[c] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
