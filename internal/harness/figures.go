package harness

import (
	"fmt"

	"consim/internal/core"
	"consim/internal/sched"
	"consim/internal/workload"
)

// This file holds one runner per artifact of the paper's evaluation
// section. Each returns a Table whose rows/columns mirror the published
// figure. Normalizations follow §V:
//
//   - performance   = cycles-per-transaction, normalized to the same
//     workload isolated on 4 cores with the whole LLC fully shared;
//   - miss rate     = per-VM LLC misses / references (relative variants
//     normalize to the isolation baseline);
//   - miss latency  = mean cycles to satisfy a private-cache miss
//     (relative variants normalize to isolation / affinity / shared-4).

// isoPolicies are the two policies the isolation figures sweep.
var isoPolicies = []sched.Policy{sched.RoundRobin, sched.Affinity}

// TableII reproduces Table II: per-workload cache-to-cache transfer
// statistics and footprint, measured in isolation on private LLCs.
func (r *Runner) TableII() (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Workload statistics (isolated, private LLCs)",
		RowHead: "workload",
		Columns: []string{"c2c all", "c2c clean", "c2c dirty", "blocks (K)"},
	}
	targets := workload.TableII()
	err := r.parallelDo(int(workload.NumClasses), func(i int) error {
		_, e := r.RunIsolation(workload.Class(i), 1, sched.Affinity)
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, class := range workload.All() {
		res, err := r.RunIsolation(class, 1, sched.Affinity)
		if err != nil {
			return nil, err
		}
		v := res.VMs[0]
		dirty := v.Stats.C2CDirtyShare()
		t.Add(class.String(),
			v.Stats.C2COfLLCMisses(), 1-dirty, dirty,
			float64(v.TouchedBlocks)/1000)
		tg := targets[class]
		t.Note("%s paper: all=%.2f clean=%.2f dirty=%.2f blocks=%dK",
			class, tg.C2CAll, tg.C2CClean, tg.C2CDirty, tg.BlocksK)
	}
	return t, nil
}

// isolationSweep runs every (workload, groupSize, policy) combination and
// fills a table via value().
func (r *Runner) isolationSweep(id, title string, groupSizes []int, policies []sched.Policy,
	value func(v core.VMResult, base core.VMResult) float64) (*Table, error) {

	t := &Table{ID: id, Title: title, RowHead: "workload"}
	for _, gs := range groupSizes {
		for _, p := range policies {
			t.Columns = append(t.Columns, fmt.Sprintf("%s/%s", groupSizeName(gs), p))
		}
	}
	type job struct {
		class workload.Class
		gs    int
		p     sched.Policy
	}
	var jobs []job
	for _, class := range workload.All() {
		for _, gs := range groupSizes {
			for _, p := range policies {
				jobs = append(jobs, job{class, gs, p})
			}
		}
	}
	err := r.parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		_, e := r.RunIsolation(j.class, j.gs, j.p)
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, class := range workload.All() {
		base, err := r.IsolationBaseline(class)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, gs := range groupSizes {
			for _, p := range policies {
				res, err := r.RunIsolation(class, gs, p)
				if err != nil {
					return nil, err
				}
				vals = append(vals, value(res.VMs[0], base))
			}
		}
		t.Add(class.String(), vals...)
	}
	return t, nil
}

// Fig2 reproduces Figure 2: isolated-workload performance across LLC
// organizations and scheduling policies, normalized to the fully-shared
// baseline.
func (r *Runner) Fig2() (*Table, error) {
	t, err := r.isolationSweep("F2", "Isolated workload performance (normalized runtime; 1.0 = fully shared)",
		[]int{core.DefaultCores, 8, 4, 1}, isoPolicies,
		func(v, base core.VMResult) float64 { return v.CyclesPerTx / base.CyclesPerTx })
	if err != nil {
		return nil, err
	}
	t.Note("higher = slower; paper: performance degrades as per-thread LLC share shrinks, worst for TPC-W")
	return t, nil
}

// Fig3 reproduces Figure 3: isolated-workload LLC miss rates for the same
// sweep as Figure 2.
func (r *Runner) Fig3() (*Table, error) {
	t, err := r.isolationSweep("F3", "Isolated workload LLC miss rates (misses per reference)",
		[]int{core.DefaultCores, 8, 4, 1}, isoPolicies,
		func(v, _ core.VMResult) float64 { return v.MissRate() })
	if err != nil {
		return nil, err
	}
	t.Note("paper: misses grow as capacity seen by each thread decreases; RR replicates read-shared data")
	return t, nil
}

// Fig4 reproduces Figure 4: isolated-workload average miss latencies for
// shared, shared-4-way and private LLCs under all four policies.
func (r *Runner) Fig4() (*Table, error) {
	return r.isolationSweep("F4", "Isolated workload miss latency (cycles per private-cache miss)",
		[]int{core.DefaultCores, 4, 1}, sched.All(),
		func(v, _ core.VMResult) float64 { return v.AvgMissLatency() })
}

// homogeneousSweep runs Mixes A-D under every policy on shared-4-way
// caches and fills a table via value().
func (r *Runner) homogeneousSweep(id, title string,
	value func(v core.VMResult, iso, iso4aff core.VMResult) float64) (*Table, error) {

	t := &Table{ID: id, Title: title, RowHead: "mix"}
	for _, p := range sched.All() {
		t.Columns = append(t.Columns, p.String())
	}
	mixes := HomogeneousMixes()
	type job struct {
		mi, pi int
	}
	var jobs []job
	for mi := range mixes {
		for pi := range sched.All() {
			jobs = append(jobs, job{mi, pi})
		}
	}
	err := r.parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		_, e := r.RunMix(mixes[j.mi], 4, sched.All()[j.pi])
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, mix := range mixes {
		class := mix.Classes[0]
		iso, err := r.IsolationBaseline(class)
		if err != nil {
			return nil, err
		}
		iso4, err := r.IsolationShared4Affinity(class)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, p := range sched.All() {
			res, err := r.RunMix(mix, 4, p)
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, v := range res.VMs {
				sum += value(v, iso, iso4)
			}
			vals = append(vals, sum/float64(len(res.VMs)))
		}
		t.Add(fmt.Sprintf("%s %s", mix.ID, class), vals...)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: homogeneous-mix performance per policy,
// relative to isolation.
func (r *Runner) Fig5() (*Table, error) {
	t, err := r.homogeneousSweep("F5", "Homogeneous mixes: normalized runtime vs isolation (shared-4-way)",
		func(v, iso, _ core.VMResult) float64 { return v.CyclesPerTx / iso.CyclesPerTx })
	if err != nil {
		return nil, err
	}
	t.Note("paper: affinity is the best policy; SPECjbb and SPECweb degrade most under round robin")
	return t, nil
}

// Fig6 reproduces Figure 6: homogeneous-mix miss latency per policy,
// normalized to the workload isolated with affinity scheduling.
func (r *Runner) Fig6() (*Table, error) {
	t, err := r.homogeneousSweep("F6", "Homogeneous mixes: miss latency vs isolation/affinity",
		func(v, _, iso4 core.VMResult) float64 { return v.AvgMissLatency() / iso4.AvgMissLatency() })
	if err != nil {
		return nil, err
	}
	t.Note("paper: TPC-W shows the greatest miss-latency increase going from isolated to mixed")
	return t, nil
}

// Fig7 reproduces Figure 7: homogeneous-mix miss rates relative to
// isolation.
func (r *Runner) Fig7() (*Table, error) {
	return r.homogeneousSweep("F7", "Homogeneous mixes: LLC miss rate vs isolation",
		func(v, iso, _ core.VMResult) float64 { return v.MissRate() / iso.MissRate() })
}

// heterogeneousSweep runs Mixes 1-9 on shared-4-way under the given
// policies, grouping results per (mix, workload).
func (r *Runner) heterogeneousSweep(id, title string, policies []sched.Policy, groupSizes []int,
	value func(v core.VMResult, iso, iso4aff core.VMResult) float64) (*Table, error) {

	t := &Table{ID: id, Title: title, RowHead: "mix/workload"}
	for _, gs := range groupSizes {
		for _, p := range policies {
			label := p.String()
			if len(groupSizes) > 1 {
				label = fmt.Sprintf("shared-%d/%s", gs, p)
			}
			t.Columns = append(t.Columns, label)
		}
	}
	mixes := HeterogeneousMixes()
	type job struct {
		mi, gi, pi int
	}
	var jobs []job
	for mi := range mixes {
		for gi := range groupSizes {
			for pi := range policies {
				jobs = append(jobs, job{mi, gi, pi})
			}
		}
	}
	err := r.parallelDo(len(jobs), func(i int) error {
		j := jobs[i]
		_, e := r.RunMix(mixes[j.mi], groupSizes[j.gi], policies[j.pi])
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, mix := range mixes {
		// One row per distinct workload in the mix, averaging instances.
		seen := map[workload.Class]bool{}
		for _, class := range mix.Classes {
			if seen[class] {
				continue
			}
			seen[class] = true
			iso, err := r.IsolationBaseline(class)
			if err != nil {
				return nil, err
			}
			iso4, err := r.IsolationShared4Affinity(class)
			if err != nil {
				return nil, err
			}
			var vals []float64
			for _, gs := range groupSizes {
				for _, p := range policies {
					res, err := r.RunMix(mix, gs, p)
					if err != nil {
						return nil, err
					}
					sum, n := 0.0, 0
					for _, v := range res.ByClass(class) {
						sum += value(v, iso, iso4)
						n++
					}
					vals = append(vals, sum/float64(n))
				}
			}
			t.Add(fmt.Sprintf("%s %s", mix.ID, class), vals...)
		}
	}
	return t, nil
}

// Fig8 reproduces Figure 8: heterogeneous-mix performance relative to
// isolation, for affinity and round-robin on shared-4-way caches.
func (r *Runner) Fig8() (*Table, error) {
	t, err := r.heterogeneousSweep("F8", "Heterogeneous mixes: normalized runtime vs isolation (shared-4-way)",
		isoPolicies, []int{4},
		func(v, iso, _ core.VMResult) float64 { return v.CyclesPerTx / iso.CyclesPerTx })
	if err != nil {
		return nil, err
	}
	// The paper also plots the isolation shared-4 references.
	for _, class := range workload.All() {
		if class == workload.SPECweb {
			continue // SPECweb joins no heterogeneous mixes
		}
		iso, err := r.IsolationBaseline(class)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, p := range isoPolicies {
			res, err := r.RunIsolation(class, 4, p)
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.VMs[0].CyclesPerTx/iso.CyclesPerTx)
		}
		t.Add(fmt.Sprintf("isolation %s", class), vals...)
	}
	t.Note("paper: TPC-H is largely unaffected by co-runners; SPECjbb degrades most")
	return t, nil
}

// Fig9 reproduces Figure 9: heterogeneous-mix miss rates relative to
// isolation.
func (r *Runner) Fig9() (*Table, error) {
	t, err := r.heterogeneousSweep("F9", "Heterogeneous mixes: LLC miss rate vs isolation (shared-4-way)",
		isoPolicies, []int{4},
		func(v, iso, _ core.VMResult) float64 { return v.MissRate() / iso.MissRate() })
	if err != nil {
		return nil, err
	}
	t.Note("paper: SPECjbb's miss rate grows sharply with TPC-W (mixes 7-9); TPC-H/affinity barely moves")
	return t, nil
}

// Fig10 reproduces Figure 10: heterogeneous-mix miss latencies normalized
// to isolation with affinity scheduling on shared-4-way caches.
func (r *Runner) Fig10() (*Table, error) {
	t, err := r.heterogeneousSweep("F10", "Heterogeneous mixes: miss latency vs isolation/affinity/shared-4",
		isoPolicies, []int{4},
		func(v, _, iso4 core.VMResult) float64 { return v.AvgMissLatency() / iso4.AvgMissLatency() })
	if err != nil {
		return nil, err
	}
	t.Note("paper: SPECjbb's latency is least sensitive to co-runners, TPC-W's the most")
	return t, nil
}

// Fig11 reproduces Figure 11: the degree-of-sharing sweep for the
// heterogeneous mixes under affinity scheduling — miss latency for
// shared-2/-4/-8 LLCs, normalized to shared-4 isolation.
func (r *Runner) Fig11() (*Table, error) {
	t, err := r.heterogeneousSweep("F11", "Heterogeneous mixes: miss latency vs sharing degree (affinity)",
		[]sched.Policy{sched.Affinity}, []int{2, 4, 8},
		func(v, _, iso4 core.VMResult) float64 { return v.AvgMissLatency() / iso4.AvgMissLatency() })
	if err != nil {
		return nil, err
	}
	t.Note("paper: TPC-H does best at shared-4 (a bank to itself); shared-8 flexibility helps SPECjbb")
	return t, nil
}

// Fig12 reproduces Figure 12: the fraction of resident LLC lines
// replicated in two or more banks for the homogeneous mixes, per policy,
// with the private configuration as the maximum-replication bound.
func (r *Runner) Fig12() (*Table, error) {
	policies := []sched.Policy{sched.RoundRobin, sched.RRAffinity, sched.Random}
	t := &Table{
		ID:      "F12",
		Title:   "Homogeneous mixes: replicated fraction of LLC lines (snapshot)",
		RowHead: "mix",
	}
	for _, p := range policies {
		t.Columns = append(t.Columns, p.String())
	}
	t.Columns = append(t.Columns, "private (max)")
	mixes := HomogeneousMixes()
	err := r.parallelDo(len(mixes)*(len(policies)+1), func(i int) error {
		mix := mixes[i/(len(policies)+1)]
		pi := i % (len(policies) + 1)
		if pi == len(policies) {
			_, e := r.RunMix(mix, 1, sched.Affinity)
			return e
		}
		_, e := r.RunMix(mix, 4, policies[pi])
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, mix := range mixes {
		var vals []float64
		for _, p := range policies {
			res, err := r.RunMix(mix, 4, p)
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.Snapshot.ReplicationFraction())
		}
		priv, err := r.RunMix(mix, 1, sched.Affinity)
		if err != nil {
			return nil, err
		}
		vals = append(vals, priv.Snapshot.ReplicationFraction())
		t.Add(fmt.Sprintf("%s %s", mix.ID, mix.Classes[0]), vals...)
	}
	t.Note("paper: round robin replicates most; SPECjbb and SPECweb replicate most among workloads")
	return t, nil
}

// Fig13 reproduces Figure 13: per-workload occupancy of each shared-4-way
// LLC bank for the heterogeneous mixes under round-robin scheduling.
func (r *Runner) Fig13() (*Table, error) {
	t := &Table{
		ID:      "F13",
		Title:   "Heterogeneous mixes: LLC occupancy share per VM (round robin, shared-4-way)",
		RowHead: "mix/bank",
		Columns: []string{"vm0", "vm1", "vm2", "vm3"},
	}
	mixes := HeterogeneousMixes()
	err := r.parallelDo(len(mixes), func(i int) error {
		_, e := r.RunMix(mixes[i], 4, sched.RoundRobin)
		return e
	})
	if err != nil {
		return nil, err
	}
	for _, mix := range mixes {
		res, err := r.RunMix(mix, 4, sched.RoundRobin)
		if err != nil {
			return nil, err
		}
		for g := range res.Snapshot.Occupancy {
			var vals []float64
			for v := range mix.Classes {
				vals = append(vals, res.Snapshot.OccupancyShare(g, v))
			}
			t.Add(fmt.Sprintf("%s $%d", mix.ID, g), vals...)
		}
		t.Note("%s VMs: 0..3 = %s", mix.ID, mix.Name())
	}
	t.Note("paper: TPC-H occupies less than its fair 25%% share; SPECjbb splits evenly against itself")
	return t, nil
}

// FigureIDs lists every artifact runner in publication order.
func FigureIDs() []string {
	return []string{"T2", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13"}
}

// RunFigure dispatches an artifact by ID.
func (r *Runner) RunFigure(id string) (*Table, error) {
	switch id {
	case "T2":
		return r.TableII()
	case "F2":
		return r.Fig2()
	case "F3":
		return r.Fig3()
	case "F4":
		return r.Fig4()
	case "F5":
		return r.Fig5()
	case "F6":
		return r.Fig6()
	case "F7":
		return r.Fig7()
	case "F8":
		return r.Fig8()
	case "F9":
		return r.Fig9()
	case "F10":
		return r.Fig10()
	case "F11":
		return r.Fig11()
	case "F12":
		return r.Fig12()
	case "F13":
		return r.Fig13()
	}
	return nil, fmt.Errorf("harness: unknown figure %q", id)
}

// RunFigures produces the requested artifacts, scheduling every figure's
// runs through the runner's one deduplicated work queue: figures are
// dispatched concurrently (up to Options.Parallel simulations in flight
// across the whole batch), and configurations shared between figures —
// the isolation baselines feed F2 through F7 — simulate exactly once,
// with single-flight latching instead of each figure re-deriving them.
// Tables come back in request order; IDs are validated up front.
func (r *Runner) RunFigures(ids ...string) ([]*Table, error) {
	known := make(map[string]bool, len(FigureIDs()))
	for _, id := range FigureIDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[id] {
			return nil, fmt.Errorf("harness: unknown figure %q", id)
		}
	}
	tables := make([]*Table, len(ids))
	err := r.parallelDo(len(ids), func(i int) error {
		t, err := r.RunFigure(ids[i])
		tables[i] = t
		return err
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// RunAll produces every figure artifact through one shared work queue.
func (r *Runner) RunAll() ([]*Table, error) {
	return r.RunFigures(FigureIDs()...)
}
