package harness

import (
	"testing"

	"consim/internal/core"
	"consim/internal/sched"
	"consim/internal/workload"
)

// equivCfg is the consolidated 4-VM machine at test scale used by the
// statistical-equivalence checks.
func equivCfg(seed uint64) core.Config {
	specs := workload.Specs()
	cfg := core.DefaultConfig(specs[workload.TPCW], specs[workload.SPECjbb],
		specs[workload.TPCH], specs[workload.SPECweb])
	cfg.Scale = 16
	cfg.GroupSize = 4
	cfg.Policy = sched.Affinity
	cfg.Seed = seed
	cfg.WarmupRefs = 20_000
	cfg.MeasureRefs = 200_000
	return cfg
}

// equivSampleConfig is the sampling geometry the equivalence suite runs:
// enough windows for a stable variance estimate, a quarter of the
// detailed budget measured.
func equivSampleConfig() core.SampleConfig {
	return core.SampleConfig{
		WindowRefs: 5_000,
		FFRatio:    3,
		CITarget:   0.10,
		MinWindows: 4,
		MaxRefs:    50_000,
	}
}

// TestSampledEquivalence is the statistical-accuracy gate: for several
// seeds, a sampled run's per-VM LLC miss rate and cycles-per-transaction
// must agree with the fully detailed run of the same configuration to
// within the CI-derived bound the sampling engine itself declares
// (RunComparison.Bound = 2 x the worse of the CI target and the achieved
// CI). A violation is deterministic for a fixed seed — it means the
// estimator or its confidence accounting broke, not that the test got
// unlucky.
func TestSampledEquivalence(t *testing.T) {
	seeds := []uint64{1, 7, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cmp, err := CompareSampledRun(equivCfg(seed), equivSampleConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sa := cmp.Sampled.Sample
		if sa.Windows < 4 || sa.SkippedRefs == 0 {
			t.Fatalf("seed %d: sampling did not engage: %+v", seed, sa)
		}
		t.Logf("seed %d: windows=%d detailed=%d skipped=%d achievedCI=%.3f (%s) maxRelErr=%.3f bound=%.3f",
			seed, sa.Windows, sa.DetailedRefs, sa.SkippedRefs, sa.AchievedRelCI,
			sa.StopReason, cmp.MaxRelErr, cmp.Bound)
		for _, d := range cmp.Deltas {
			t.Logf("  vm%-2d %-8s missErr=%.3f cptErr=%.3f", d.VM, d.Name, d.Miss, d.Cpt)
		}
		if !cmp.Within() {
			t.Errorf("seed %d: per-VM deviation %.3f exceeds declared bound %.3f",
				seed, cmp.MaxRelErr, cmp.Bound)
		}
	}
}

// TestRunnerSampleOption checks the runner-wide Sample option: it
// defaults into compatible configurations, leaves explicitly sampled
// configs alone, skips sampling-incompatible rows instead of failing,
// and records the worst achieved CI for bound reporting.
func TestRunnerSampleOption(t *testing.T) {
	r := NewRunner(Options{
		Scale:       16,
		WarmupRefs:  5_000,
		MeasureRefs: 50_000,
		Seed:        1,
		Sample: core.SampleConfig{
			WindowRefs: 2_000, FFRatio: 3, CITarget: 0.10, MinWindows: 3, MaxRefs: 10_000,
		},
	})

	cfg := equivCfg(1)
	cfg.WarmupRefs, cfg.MeasureRefs = 5_000, 50_000
	res, err := r.simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Windows == 0 {
		t.Error("runner Sample option did not reach a compatible config")
	}
	if ci := r.WorstSampleRelCI(); ci <= 0 {
		t.Errorf("WorstSampleRelCI = %g after a sampled run", ci)
	}
	ff := r.FFCostTotals()
	if ff.SkippedRefs == 0 || ff.DetailedRefs == 0 || ff.FFSeconds <= 0 || ff.DetailedSeconds <= 0 {
		t.Errorf("FFCostTotals incomplete after a sampled run: %+v", ff)
	}
	if ratio := ff.Ratio(); ratio <= 0 {
		t.Errorf("FFCost.Ratio() = %g after a sampled run", ratio)
	}
	if sub := ff.sub(ff); sub.Ratio() != 0 || sub.SkippedRefs != 0 {
		t.Errorf("FFCost.sub(self) not zero: %+v", sub)
	}

	// An over-committed configuration (more threads than cores) cannot be
	// sampled; the runner must fall back to a detailed run, not error.
	over := cfg
	specs := workload.Specs()
	for i := 0; i < 2; i++ {
		over.Workloads = append(over.Workloads, specs[workload.TPCH])
	}
	over.TimesliceCycles = 200_000
	res, err = r.simulate(over)
	if err != nil {
		t.Fatalf("over-committed config under runner-wide sampling: %v", err)
	}
	if res.Sample.Windows != 0 {
		t.Error("over-committed config was sampled; it must stay detailed")
	}
}

// TestCompareTables pins the per-cell comparison semantics: relative
// errors are taken against each cell, small cells are judged against
// the 5%-of-max floor, and shape mismatches are rejected.
func TestCompareTables(t *testing.T) {
	full := &Table{ID: "X", Columns: []string{"a", "b"}}
	full.Add("r1", 10.0, 0.001)
	full.Add("r2", 8.0, 4.0)
	samp := &Table{ID: "X", Columns: []string{"a", "b"}}
	samp.Add("r1", 10.5, 0.201)
	samp.Add("r2", 8.0, 4.0)

	worst, cell, err := CompareTables(full, samp)
	if err != nil {
		t.Fatal(err)
	}
	// Cell r1/b deviates by 0.2 against a floor of 0.05*10 = 0.5 -> 40%;
	// r1/a deviates 5%. The floored cell must win.
	if cell != "r1/b" || worst < 0.39 || worst > 0.41 {
		t.Errorf("worst = %.3f at %q, want ~0.40 at r1/b", worst, cell)
	}

	short := &Table{ID: "X", Columns: []string{"a", "b"}}
	short.Add("r1", 1.0, 2.0)
	if _, _, err := CompareTables(full, short); err == nil {
		t.Error("shape mismatch accepted")
	}
}
