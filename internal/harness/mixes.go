// Package harness defines the paper's experiments — Table IV's workload
// mixes, the isolation baselines of §V, and one runner per table/figure —
// and formats their outputs as text tables. Everything the evaluation
// section reports is regenerated through this package.
package harness

import (
	"fmt"

	"consim/internal/workload"
)

// Mix is one consolidated workload combination from Table IV.
type Mix struct {
	// ID is the paper's label ("Mix 1".."Mix 9", "Mix A".."Mix D").
	ID string
	// Classes lists the four consolidated VMs' workloads.
	Classes []workload.Class
}

// Name returns a compact description like "TPC-W(3)+TPC-H(1)".
func (m Mix) Name() string {
	counts := map[workload.Class]int{}
	var order []workload.Class
	for _, c := range m.Classes {
		if counts[c] == 0 {
			order = append(order, c)
		}
		counts[c]++
	}
	s := ""
	for i, c := range order {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%s(%d)", c, counts[c])
	}
	return s
}

// Homogeneous reports whether all VMs run the same workload.
func (m Mix) Homogeneous() bool {
	for _, c := range m.Classes[1:] {
		if c != m.Classes[0] {
			return false
		}
	}
	return true
}

func rep(c workload.Class, n int) []workload.Class {
	out := make([]workload.Class, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func mixOf(id string, parts ...[]workload.Class) Mix {
	var cs []workload.Class
	for _, p := range parts {
		cs = append(cs, p...)
	}
	return Mix{ID: id, Classes: cs}
}

// HeterogeneousMixes returns Table IV's Mixes 1-9.
func HeterogeneousMixes() []Mix {
	return []Mix{
		mixOf("Mix 1", rep(workload.TPCW, 3), rep(workload.TPCH, 1)),
		mixOf("Mix 2", rep(workload.TPCW, 2), rep(workload.TPCH, 2)),
		mixOf("Mix 3", rep(workload.TPCW, 1), rep(workload.TPCH, 3)),
		mixOf("Mix 4", rep(workload.SPECjbb, 3), rep(workload.TPCH, 1)),
		mixOf("Mix 5", rep(workload.SPECjbb, 2), rep(workload.TPCH, 2)),
		mixOf("Mix 6", rep(workload.SPECjbb, 1), rep(workload.TPCH, 3)),
		mixOf("Mix 7", rep(workload.SPECjbb, 3), rep(workload.TPCW, 1)),
		mixOf("Mix 8", rep(workload.SPECjbb, 2), rep(workload.TPCW, 2)),
		mixOf("Mix 9", rep(workload.SPECjbb, 1), rep(workload.TPCW, 3)),
	}
}

// HomogeneousMixes returns Table IV's Mixes A-D (four copies of one
// workload; SPECweb joins only homogeneous mixes, matching the paper's
// driver limitation).
func HomogeneousMixes() []Mix {
	return []Mix{
		mixOf("Mix A", rep(workload.TPCW, 4)),
		mixOf("Mix B", rep(workload.TPCH, 4)),
		mixOf("Mix C", rep(workload.SPECjbb, 4)),
		mixOf("Mix D", rep(workload.SPECweb, 4)),
	}
}

// AllMixes returns heterogeneous then homogeneous mixes.
func AllMixes() []Mix {
	return append(HeterogeneousMixes(), HomogeneousMixes()...)
}

// MixByID finds a mix by its Table IV label ("1".."9", "A".."D", or the
// full "Mix X" form).
func MixByID(id string) (Mix, error) {
	for _, m := range AllMixes() {
		if m.ID == id || m.ID == "Mix "+id {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("harness: unknown mix %q", id)
}
