package harness

// Shape tests: pin the qualitative results DESIGN.md §5 promises — who
// wins, orderings, directions — at reduced scale. They complement the
// full-scale EXPERIMENTS.md numbers.

import (
	"strings"
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

// shapeRunner is larger than testRunner: shape assertions need enough
// references for orderings to stabilize.
func shapeRunner() *Runner {
	return NewRunner(Options{
		Scale:       16,
		WarmupRefs:  40_000,
		MeasureRefs: 80_000,
		Seed:        1,
	})
}

func TestShapeAffinityBestForHomogeneousMixes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// §V-B: "Affinity scheduling is the best policy".
	affCol := -1
	for i, c := range f5.Columns {
		if c == "affinity" {
			affCol = i
		}
	}
	for _, row := range f5.Rows {
		for i, v := range row.Values {
			if i == affCol {
				continue
			}
			if row.Values[affCol] > v {
				t.Errorf("%s: affinity %.3f slower than %s %.3f", row.Label, row.Values[affCol], f5.Columns[i], v)
			}
		}
	}
}

func TestShapeIsolationMissRateGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f3, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's shape: for every workload, private misses exceed the
	// fully-shared misses by a wide margin.
	for _, row := range f3.Rows {
		shared, _ := f3.Get(row.Label, "shared/affinity")
		private, _ := f3.Get(row.Label, "private/affinity")
		if private <= shared {
			t.Errorf("%s: private miss rate %.4f not above shared %.4f", row.Label, private, shared)
		}
	}
}

func TestShapeTPCHLeastAffectedUnderAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// §V-C: TPC-H is the least-degraded workload in the heterogeneous
	// mixes under affinity (its small footprint fits its own bank).
	worstTPCH, worstOther := 0.0, 0.0
	for _, row := range f8.Rows {
		if len(row.Label) >= 9 && row.Label[:9] == "isolation" {
			continue
		}
		aff, _ := f8.Get(row.Label, "affinity")
		if len(row.Label) > 6 && row.Label[len(row.Label)-5:] == "TPC-H" {
			if aff > worstTPCH {
				worstTPCH = aff
			}
		} else if aff > worstOther {
			worstOther = aff
		}
	}
	if worstTPCH >= worstOther {
		t.Errorf("TPC-H worst-case %.3f not below other workloads' %.3f", worstTPCH, worstOther)
	}
}

func TestShapeReplicationPolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 12: round robin replicates most among the policies, and
	// the private configuration is the maximum bound.
	for _, row := range f12.Rows {
		rr, _ := f12.Get(row.Label, "rr")
		affrr, _ := f12.Get(row.Label, "aff-rr")
		private, _ := f12.Get(row.Label, "private (max)")
		if rr < affrr {
			t.Errorf("%s: rr replication %.3f below aff-rr %.3f", row.Label, rr, affrr)
		}
		// The private bound holds with tolerance at reduced scale: tiny
		// per-core banks evict replicas faster than the paper's 1MB
		// banks would.
		if private < 0.8*rr {
			t.Errorf("%s: private bound %.3f far below rr %.3f", row.Label, private, rr)
		}
	}
}

func TestShapeConsolidationRaisesMissRates(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7: competition raises every workload's miss rate above
	// isolation (all relative values > 1).
	for _, row := range f7.Rows {
		for i, v := range row.Values {
			if v <= 1 {
				t.Errorf("%s %s: relative miss rate %.3f not above isolation", row.Label, f7.Columns[i], v)
			}
		}
	}
}

func TestShapeOccupancySnapshotsConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	// Figure 13's substrate: every bank's occupancy splits across
	// exactly the mix's VMs and every VM holds *some* capacity in every
	// bank under round robin (each bank hosts one thread of each VM).
	//
	// Note a deliberate divergence from the paper here, recorded in
	// EXPERIMENTS.md: the paper's Figure 13 shows TPC-H *below* its fair
	// share, while this model's TPC-H holds slightly more — its faster
	// threads (kept running by the "restart to keep the system at
	// capacity" methodology) insert lines at a higher per-cycle rate.
	mix, _ := MixByID("1")
	res, err := r.RunMix(mix, 4, sched.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for g := range res.Snapshot.Occupancy {
		for v := range mix.Classes {
			if res.Snapshot.OccupancyShare(g, v) <= 0 {
				t.Errorf("bank %d: vm %d holds nothing", g, v)
			}
		}
	}
	_ = workload.TPCH
	_ = sched.RoundRobin
}

func TestShapeF11ColumnStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	r := shapeRunner()
	f11, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"shared-2/affinity", "shared-4/affinity", "shared-8/affinity"}
	if len(f11.Columns) != len(want) {
		t.Fatalf("F11 columns = %v", f11.Columns)
	}
	for i, c := range want {
		if f11.Columns[i] != c {
			t.Errorf("F11 column %d = %q, want %q", i, f11.Columns[i], c)
		}
	}
	// 18 rows: two distinct workloads per heterogeneous mix.
	if len(f11.Rows) != 18 {
		t.Errorf("F11 rows = %d", len(f11.Rows))
	}
	// The paper's crossover: TPC-H rows have their minimum at shared-4
	// (column 1), never at shared-2.
	for _, row := range f11.Rows {
		if !strings.HasSuffix(row.Label, "TPC-H") {
			continue
		}
		if row.Values[0] <= row.Values[1] {
			t.Errorf("%s: shared-2 (%.3f) not worse than shared-4 (%.3f)", row.Label, row.Values[0], row.Values[1])
		}
	}
}
