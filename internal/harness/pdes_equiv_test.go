package harness

import (
	"testing"

	"consim/internal/core"
	"consim/internal/workload"
)

// TestParallelEquivalence is the accuracy gate for the split-transaction
// parallel engine: for several seeds and worker counts, a parallel run's
// per-VM LLC miss rate and cycles-per-transaction must agree with the
// sequential run of the same configuration to within DefaultPdesBound.
// A violation is deterministic for a fixed (seed, workers, window)
// triple — it means the in-window estimator or the barrier replay
// drifted, not that the test got unlucky.
func TestParallelEquivalence(t *testing.T) {
	seeds := []uint64{1, 7, 13}
	workers := []int{2, 4}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, w := range workers {
			cmp, err := CompareParallelRun(equivCfg(seed), w, 0, 0)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			ps := cmp.Sampled.Pdes
			if ps.Workers != w || ps.Windows == 0 {
				t.Fatalf("seed %d workers %d: parallel engine did not engage: %+v", seed, w, ps)
			}
			t.Logf("seed %d workers %d: domains=%d windows=%d ops=%d maxRelErr=%.3f bound=%.3f",
				seed, w, ps.Domains, ps.Windows, ps.Ops, cmp.MaxRelErr, cmp.Bound)
			for _, d := range cmp.Deltas {
				t.Logf("  vm%-2d %-8s missErr=%.3f cptErr=%.3f", d.VM, d.Name, d.Miss, d.Cpt)
			}
			if !cmp.Within() {
				t.Errorf("seed %d workers %d: per-VM deviation %.3f exceeds bound %.3f",
					seed, w, cmp.MaxRelErr, cmp.Bound)
			}
		}
	}
}

// TestRunnerPdesOption checks the runner-wide Pdes option: it defaults
// into compatible configurations, leaves explicitly configured engines
// alone, and skips incompatible rows (other engines, trace sources)
// instead of failing.
func TestRunnerPdesOption(t *testing.T) {
	r := NewRunner(Options{
		Scale:       16,
		WarmupRefs:  5_000,
		MeasureRefs: 30_000,
		Seed:        1,
		Pdes:        4,
	})

	cfg := equivCfg(1)
	cfg.WarmupRefs, cfg.MeasureRefs = 5_000, 30_000
	res, err := r.simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pdes.Workers != 4 || res.Pdes.Windows == 0 {
		t.Errorf("runner Pdes option did not reach a compatible config: %+v", res.Pdes)
	}

	// A sharded configuration already owns its engine choice; the runner
	// must leave it sequential-semantics sharded, not error on the
	// pdes/shards exclusion.
	sharded := cfg
	sharded.Shards = 2
	res, err = r.simulate(sharded)
	if err != nil {
		t.Fatalf("sharded config under runner-wide pdes: %v", err)
	}
	if res.Pdes.Workers != 0 {
		t.Error("sharded config ran under pdes; it must keep the shard engine")
	}

	// Sampled configurations are likewise skipped rather than rejected.
	sampled := cfg
	sampled.Sample = core.SampleConfig{WindowRefs: 2_000, FFRatio: 3, MaxRefs: 10_000}
	res, err = r.simulate(sampled)
	if err != nil {
		t.Fatalf("sampled config under runner-wide pdes: %v", err)
	}
	if res.Pdes.Workers != 0 {
		t.Error("sampled config ran under pdes; it must keep the sampling engine")
	}
}

// TestRunnerPdesClampsWorkers checks that a runner-wide worker count
// larger than a config's core count is clamped rather than rejected.
func TestRunnerPdesClampsWorkers(t *testing.T) {
	r := NewRunner(Options{
		Scale:       16,
		WarmupRefs:  2_000,
		MeasureRefs: 10_000,
		Seed:        1,
		Pdes:        64,
	})
	specs := workload.Specs()
	cfg := core.DefaultConfig(specs[workload.TPCH])
	cfg.Scale = 16
	cfg.Seed = 1
	cfg.WarmupRefs, cfg.MeasureRefs = 2_000, 10_000
	res, err := r.simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pdes.Workers != cfg.Cores {
		t.Errorf("workers = %d, want clamped to %d cores", res.Pdes.Workers, cfg.Cores)
	}
}

// TestShardedReplayEquivalence gates the bank-sharded replay at harness
// level: without pipelining the sharded run must match the serial-
// replay run EXACTLY (zero deviation — sharding is execution strategy,
// not a model change); with pipelining the one-window staleness must
// stay inside DefaultPdesBound.
func TestShardedReplayEquivalence(t *testing.T) {
	seeds := []uint64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cmp, err := CompareShardedParallelRun(equivCfg(seed), 4, 4, false, 0, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ps := cmp.Sampled.Pdes; ps.ReplayWorkers != 4 || ps.Pipelined {
			t.Fatalf("seed %d: sharded replay did not engage: %+v", seed, ps)
		}
		if cmp.MaxRelErr != 0 {
			t.Errorf("seed %d: sharded replay deviates from serial replay: %.6f (must be exactly 0)",
				seed, cmp.MaxRelErr)
		}

		pcmp, err := CompareShardedParallelRun(equivCfg(seed), 4, 4, true, 0, 0)
		if err != nil {
			t.Fatalf("seed %d pipelined: %v", seed, err)
		}
		if ps := pcmp.Sampled.Pdes; !ps.Pipelined {
			t.Fatalf("seed %d: pipeline did not engage: %+v", seed, ps)
		}
		t.Logf("seed %d: pipelined maxRelErr=%.4f bound=%.3f", seed, pcmp.MaxRelErr, pcmp.Bound)
		if !pcmp.Within() {
			t.Errorf("seed %d: pipelined deviation %.3f exceeds bound %.3f",
				seed, pcmp.MaxRelErr, pcmp.Bound)
		}
	}
}

// TestRunnerPdesReplayOption checks the runner-wide replay knobs: they
// ride along only when the runner's Pdes option engages, and a config
// that owns its replay setting keeps it.
func TestRunnerPdesReplayOption(t *testing.T) {
	r := NewRunner(Options{
		Scale:             16,
		WarmupRefs:        5_000,
		MeasureRefs:       30_000,
		Seed:              1,
		Pdes:              4,
		PdesReplayWorkers: 4,
		PdesPipeline:      true,
	})

	cfg := equivCfg(1)
	cfg.WarmupRefs, cfg.MeasureRefs = 5_000, 30_000
	res, err := r.simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pdes.ReplayWorkers != 4 || !res.Pdes.Pipelined {
		t.Errorf("runner replay options did not reach the config: %+v", res.Pdes)
	}

	// A config that pins its own replay worker count keeps it, and the
	// pipeline flag does not ride along against its choice.
	own := cfg
	own.Pdes = 4
	own.PdesReplayWorkers = 2
	res, err = r.simulate(own)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pdes.ReplayWorkers != 2 || res.Pdes.Pipelined {
		t.Errorf("explicit replay config overridden: %+v", res.Pdes)
	}

	// Without a runner-wide Pdes the replay knobs never apply.
	r2 := NewRunner(Options{
		Scale:             16,
		WarmupRefs:        5_000,
		MeasureRefs:       30_000,
		Seed:              1,
		PdesReplayWorkers: 4,
	})
	res, err = r2.simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pdes.ReplayWorkers != 0 {
		t.Errorf("replay workers applied without pdes: %+v", res.Pdes)
	}
}
