package harness

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"consim/internal/core"
	"consim/internal/obs"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/stats"
	vmstats "consim/internal/vm"
	"consim/internal/workload"
)

// Options control the simulation scale for a whole experiment suite.
type Options struct {
	// Scale divides footprints and cache capacities (1 = paper scale).
	Scale int
	// WarmupRefs / MeasureRefs are per-core reference budgets.
	WarmupRefs  uint64
	MeasureRefs uint64
	// SnapshotRefs positions the Figure 12/13 snapshot inside the
	// measurement window (0 = at the end).
	SnapshotRefs uint64
	// Seed drives all randomness.
	Seed uint64
	// Parallel bounds the number of simulations in flight at once. Each
	// simulation is single-threaded and deterministic given its seed, so
	// parallelism changes wall time only, never results. 0 (the default)
	// means runtime.GOMAXPROCS(0); 1 forces fully serial execution.
	Parallel int
	// Shards enables the intra-run parallel engine inside every
	// simulation the runner executes (core.Config.Shards): 0/1 keep the
	// sequential engine, N>1 adds N-1 worker lanes per run. Results are
	// bit-identical at any shard count. Configs that already set their
	// own Shards keep it.
	Shards int
	// Sample enables interval-sampled simulation inside every compatible
	// simulation the runner executes (core.Config.Sample): detailed
	// measurement windows with functional fast-forward between them and
	// CI-convergence early stop. Sampled results are estimates — run
	// manifests record the achieved confidence interval. Configs that are
	// incompatible with sampling (dynamic rebalancing, over-committed
	// scheduling, mid-run snapshots) quietly run fully detailed, so a
	// sampled sweep can still include the ablation rows that need exact
	// semantics. Configs that already set their own Sample keep it.
	Sample core.SampleConfig
	// Pdes enables the split-transaction parallel discrete-event engine
	// inside every compatible simulation the runner executes
	// (core.Config.Pdes): 0/1 keep the sequential engine, N>1 partitions
	// each run's active cores into up to N domains advancing in bounded
	// windows. Unlike Shards this changes the simulated stream — results
	// are statistical estimates gated by CompareParallelRun /
	// CompareParallelFigures, deterministic per (seed, Pdes, PdesWindow).
	// Configs that are incompatible (sharding, sampling, rebalancing,
	// snapshots, trace sources) quietly run sequentially. Configs that
	// already set their own Pdes keep it.
	Pdes int
	// PdesWindow overrides the parallel engine's window width in cycles
	// (0 = core.DefaultPdesWindow).
	PdesWindow sim.Cycle
	// PdesReplayWorkers shards each pdes run's barrier replay by LLC
	// bank group (core.Config.PdesReplayWorkers): 0/1 keep the serial
	// replay, N>1 applies per-group op streams in parallel. Pure
	// execution strategy — results stay bit-identical to the serial
	// replay at any value. Only applied alongside a runner-wide Pdes.
	PdesReplayWorkers int
	// PdesPipeline overlaps each window's cross-group replay merge with
	// the next window (core.Config.PdesPipeline; requires
	// PdesReplayWorkers >= 2). Like Pdes itself this changes the
	// simulated stream — deterministic and equivalence-gated.
	PdesPipeline bool
	// Replicates runs each configuration this many times with perturbed
	// seeds and reports merged metrics, per the Alameldeen-Wood
	// statistical simulation methodology the paper's §V adopts (0/1 =
	// single run). Replicate-to-replicate variability is exposed through
	// Result.CptCV.
	Replicates int
	// Obs attaches the observability sinks (live metrics, Chrome trace,
	// manifests, progress). Each executed job acquires a tracer lane so
	// the timeline shows one row per in-flight worker slot; memoized
	// cache hits produce no spans or manifests — only real work is
	// recorded. Nil disables all instrumentation.
	Obs *obs.Observer
}

// DefaultOptions returns full-scale settings matching the calibration
// runs recorded in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		WarmupRefs:  600_000,
		MeasureRefs: 1_000_000,
		Seed:        1,
	}
}

// runKey identifies a memoizable simulation.
type runKey struct {
	mixID     string
	isolated  workload.Class
	isoOnly   bool
	groupSize int
	policy    sched.Policy
}

// call is one in-flight simulation; waiters block on done and then read
// res/err (the channel close publishes the writes).
type call struct {
	done chan struct{}
	res  core.Result
	err  error
}

// Runner executes and memoizes simulations: the figure runners share
// isolation baselines heavily, and sweeps revisit configurations.
//
// Memoization is single-flight: when several goroutines ask for the same
// runKey, exactly one simulates and the rest wait for its result. All
// execution — memoized or not — funnels through one worker pool of
// Options.Parallel slots, so an entire figure suite scheduled at once
// (RunFigures) keeps a bounded number of simulations in flight no matter
// how the figures fan out internally. A Runner is safe for concurrent
// use.
type Runner struct {
	opt Options
	sem chan struct{} // worker-pool slots; held only while simulating

	mu       sync.Mutex
	cache    map[runKey]core.Result
	inflight map[runKey]*call

	sims atomic.Uint64 // simulations actually executed (not deduplicated)

	// worstRelCIBits holds the largest achieved relative CI over every
	// sampled simulation this runner executed, as math.Float64bits (the
	// value is non-negative, so bit order matches numeric order and a
	// compare-and-swap max loop works on the raw bits). Zero when no
	// sampled run executed.
	worstRelCIBits atomic.Uint64

	// ffMu guards ffCost, the phase wall/reference totals accumulated
	// over every sampled simulation this runner executed (the
	// fast-forward cost telemetry the sample sweeps record and gate).
	ffMu   sync.Mutex
	ffCost FFCost
}

// FFCost aggregates the sampled-phase cost split over a set of runs:
// wall seconds and per-core reference counts for the detailed windows
// and the functional fast-forward between them. Sums of per-run
// core.PhaseProfile / SampleStats fields, so ratios computed from an
// aggregate weight each run by its reference volume.
type FFCost struct {
	DetailedSeconds float64 `json:"detailed_seconds"`
	FFSeconds       float64 `json:"ff_seconds"`
	DetailedRefs    uint64  `json:"detailed_refs"`
	SkippedRefs     uint64  `json:"skipped_refs"`
}

// Ratio returns fast-forward wall cost per skipped reference as a
// fraction of detailed wall cost per measured reference (both in
// per-core reference units, so the units cancel). 0 when either phase
// is missing.
func (c FFCost) Ratio() float64 {
	if c.DetailedRefs == 0 || c.SkippedRefs == 0 || c.DetailedSeconds <= 0 || c.FFSeconds <= 0 {
		return 0
	}
	return (c.FFSeconds / float64(c.SkippedRefs)) / (c.DetailedSeconds / float64(c.DetailedRefs))
}

// sub returns the aggregate accumulated strictly after base was
// captured — the per-figure slice of a runner-wide total.
func (c FFCost) sub(base FFCost) FFCost {
	return FFCost{
		DetailedSeconds: c.DetailedSeconds - base.DetailedSeconds,
		FFSeconds:       c.FFSeconds - base.FFSeconds,
		DetailedRefs:    c.DetailedRefs - base.DetailedRefs,
		SkippedRefs:     c.SkippedRefs - base.SkippedRefs,
	}
}

// NewRunner returns a Runner with the given options.
func NewRunner(opt Options) *Runner {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.WarmupRefs == 0 {
		opt.WarmupRefs = DefaultOptions().WarmupRefs
	}
	if opt.MeasureRefs == 0 {
		opt.MeasureRefs = DefaultOptions().MeasureRefs
	}
	if opt.Parallel <= 0 {
		opt.Parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opt:      opt,
		sem:      make(chan struct{}, opt.Parallel),
		cache:    make(map[runKey]core.Result),
		inflight: make(map[runKey]*call),
	}
}

// Options returns the runner's options (after defaulting).
func (r *Runner) Options() Options { return r.opt }

// Sims returns how many simulations the runner has actually executed
// (replicates counted individually). With memoization and single-flight
// deduplication this counts distinct units of real work, regardless of
// how many times figures re-requested them; tests use it to assert
// deduplication.
func (r *Runner) Sims() uint64 { return r.sims.Load() }

func (r *Runner) config(specs []workload.Spec, groupSize int, policy sched.Policy) core.Config {
	cfg := core.DefaultConfig(specs...)
	cfg.GroupSize = groupSize
	cfg.Policy = policy
	cfg.Scale = r.opt.Scale
	cfg.Seed = r.opt.Seed
	cfg.WarmupRefs = r.opt.WarmupRefs
	cfg.MeasureRefs = r.opt.MeasureRefs
	cfg.SnapshotRefs = r.opt.SnapshotRefs
	return cfg
}

// run returns the memoized result for key, computing it at most once:
// the first goroutine to miss installs an in-flight latch and simulates;
// concurrent requesters for the same key wait on the latch instead of
// duplicating the work (the seed implementation's check-then-act window
// simulated twice under a parallel sweep). Errors are returned to every
// waiter and not cached, so a later request retries.
func (r *Runner) run(key runKey, cfg core.Config) (core.Result, error) {
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	c.res, c.err = r.execute(cfg)

	r.mu.Lock()
	if c.err == nil {
		r.cache[key] = c.res
	}
	delete(r.inflight, key)
	r.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// execute simulates cfg (with replicates) inside a worker-pool slot. The
// slot is acquired here rather than at goroutine spawn so that nested
// fan-out (RunFigures over figures over runs) can enqueue freely: only
// goroutines actually simulating hold a slot, and single-flight waiters
// hold none, so the pool cannot deadlock on its own feedback.
func (r *Runner) execute(cfg core.Config) (core.Result, error) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	// A job claims a tracer lane for its whole replicate loop, so the
	// timeline renders one row per occupied worker slot and the
	// per-replicate run spans nest inside the job span.
	o := r.opt.Obs
	lane := -1
	if o != nil && o.Tr != nil {
		lane = o.Tr.AcquireLane()
		o.Tr.Begin(lane, "job "+cfg.Label())
		defer func() {
			o.Tr.End(lane)
			o.Tr.ReleaseLane(lane)
		}()
	}

	reps := r.opt.Replicates
	if reps < 1 {
		reps = 1
	}
	results := make([]core.Result, 0, reps)
	for i := 0; i < reps; i++ {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		repCfg.Obs = o.HooksLane(lane)
		res, err := r.simulate(repCfg)
		if err != nil {
			return core.Result{}, err
		}
		results = append(results, res)
	}
	merged := mergeResults(results)
	if o != nil {
		o.CountJob()
		if o.Man != nil {
			if err := o.Man.Write(core.ManifestFor(cfg, merged, r.opt.Parallel)); err != nil {
				return merged, err
			}
		}
	}
	return merged, nil
}

// simulate builds and runs one system, counting the execution. Every
// execution path (memoized runs, replicates, raw config batches) funnels
// through here, so this is where the runner-wide shard setting applies.
func (r *Runner) simulate(cfg core.Config) (core.Result, error) {
	if cfg.Shards == 0 {
		cfg.Shards = r.opt.Shards
	}
	if !cfg.Sample.Enabled() && r.opt.Sample.Enabled() && sampleCompatible(cfg) {
		cfg.Sample = r.opt.Sample
	}
	if cfg.Pdes <= 1 && r.opt.Pdes > 1 && pdesCompatible(cfg) {
		cfg.Pdes = r.opt.Pdes
		if cfg.Pdes > cfg.Cores {
			cfg.Pdes = cfg.Cores // the engine caps domains at active cores anyway
		}
		if cfg.PdesWindow == 0 {
			cfg.PdesWindow = r.opt.PdesWindow
		}
		if cfg.PdesReplayWorkers == 0 {
			cfg.PdesReplayWorkers = r.opt.PdesReplayWorkers
			cfg.PdesPipeline = r.opt.PdesPipeline && cfg.PdesReplayWorkers > 1
		}
	}
	r.sims.Add(1)
	r.opt.Obs.CountSim()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	res, err := sys.Run()
	if err == nil && res.Sample.Windows > 0 {
		r.noteRelCI(res.Sample.AchievedRelCI)
		r.noteFFCost(res)
	}
	return res, err
}

// noteFFCost folds one sampled run's phase split into the runner-wide
// fast-forward cost aggregate.
func (r *Runner) noteFFCost(res core.Result) {
	r.ffMu.Lock()
	r.ffCost.DetailedSeconds += res.Phase.SampleDetailedSeconds
	r.ffCost.FFSeconds += res.Phase.SampleFFSeconds
	r.ffCost.DetailedRefs += res.Sample.DetailedRefs
	r.ffCost.SkippedRefs += res.Sample.SkippedRefs
	r.ffMu.Unlock()
}

// FFCostTotals returns the phase wall/reference totals accumulated over
// every sampled simulation this runner executed (zero value when none
// ran sampled). FFCost.Ratio on the result is the runner-wide
// fast-forward cost per skipped reference relative to a detailed
// reference — the number ROADMAP item 2 tracks.
func (r *Runner) FFCostTotals() FFCost {
	r.ffMu.Lock()
	defer r.ffMu.Unlock()
	return r.ffCost
}

// noteRelCI folds one sampled run's achieved CI into the runner-wide
// maximum (lock-free CAS max on the float's bits).
func (r *Runner) noteRelCI(ci float64) {
	if ci <= 0 || math.IsInf(ci, 1) || math.IsNaN(ci) {
		return
	}
	bits := math.Float64bits(ci)
	for {
		old := r.worstRelCIBits.Load()
		if old >= bits || r.worstRelCIBits.CompareAndSwap(old, bits) {
			return
		}
	}
}

// WorstSampleRelCI returns the largest achieved relative 95% CI over
// every sampled simulation this runner executed (0 when none ran
// sampled). It is the honest error bound to quote for any figure built
// from the runner's results.
func (r *Runner) WorstSampleRelCI() float64 {
	return math.Float64frombits(r.worstRelCIBits.Load())
}

// sampleCompatible reports whether a configuration may be sampled: the
// same predicate core.Config.Validate enforces for explicitly sampled
// configs, applied here as a quiet filter so a runner-wide Sample option
// skips (rather than fails) the rows that need exact semantics.
func sampleCompatible(cfg core.Config) bool {
	return cfg.RebalanceCycles == 0 && cfg.SnapshotRefs == 0 && cfg.TotalThreads() <= cfg.Cores
}

// pdesCompatible reports whether a configuration may run under the
// split-transaction parallel engine: the same predicate
// core.Config.Validate enforces for explicitly parallel configs,
// applied here as a quiet filter so a runner-wide Pdes option skips
// (rather than fails) the rows that need a different engine or exact
// sequential semantics.
func pdesCompatible(cfg core.Config) bool {
	return cfg.Shards <= 1 && !cfg.Sample.Enabled() &&
		cfg.RebalanceCycles == 0 && cfg.SnapshotRefs == 0 &&
		len(cfg.Sources) == 0
}

// runConfigs executes a batch of non-memoized configurations (ablation
// and calibration sweeps, whose configs differ in ways runKey does not
// describe) through the worker pool, preserving order.
func (r *Runner) runConfigs(cfgs []core.Config) ([]core.Result, error) {
	out := make([]core.Result, len(cfgs))
	err := r.parallelDo(len(cfgs), func(i int) error {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		cfg := cfgs[i]
		o := r.opt.Obs
		if cfg.Obs == nil {
			// Hooks auto-acquire a tracer lane for the run's duration, so
			// sweep batches get per-worker rows too.
			cfg.Obs = o.Hooks()
		}
		res, err := r.simulate(cfg)
		out[i] = res
		if err != nil {
			return err
		}
		if o != nil {
			o.CountJob()
			if o.Man != nil {
				return o.Man.Write(core.ManifestFor(cfg, res, r.opt.Parallel))
			}
		}
		return nil
	})
	return out, err
}

// mergeResults folds replicated runs into one Result: counters are
// summed, window cycles averaged, cycles-per-transaction recomputed as
// the ratio of means, and the per-VM coefficient of variation of
// cycles-per-transaction recorded (the §V variability indicator).
func mergeResults(results []core.Result) core.Result {
	if len(results) == 1 {
		return results[0]
	}
	merged := results[0]
	merged.Replicates = len(results)
	merged.CptCV = make([]float64, len(merged.VMs))
	var cycles stats.Sample
	merged.WallSeconds = 0
	for _, res := range results {
		cycles.Add(float64(res.Cycles))
		merged.WallSeconds += res.WallSeconds
	}
	for v := range merged.VMs {
		var cpt, touched stats.Sample
		var sum vmstats.Stats
		for _, res := range results {
			cpt.Add(res.VMs[v].CyclesPerTx)
			touched.Add(float64(res.VMs[v].TouchedBlocks))
			addStats(&sum, res.VMs[v].Stats)
		}
		merged.VMs[v].Stats = sum
		merged.VMs[v].CyclesPerTx = cpt.Mean()
		merged.VMs[v].Transactions = float64(sum.Refs) / float64(results[0].Config.Workloads[v].Scaled(results[0].Config.Scale).RefsPerTx)
		merged.VMs[v].TouchedBlocks = uint64(touched.Mean())
		merged.CptCV[v] = cpt.CV()
	}
	merged.Cycles = sim.Cycle(cycles.Mean())
	return merged
}

// addStats accumulates b into a, field by field.
func addStats(a *vmstats.Stats, b vmstats.Stats) {
	a.Refs += b.Refs
	a.PrivMisses += b.PrivMisses
	a.LLCMisses += b.LLCMisses
	a.C2CClean += b.C2CClean
	a.C2CDirty += b.C2CDirty
	a.MemReads += b.MemReads
	a.Invalidations += b.Invalidations
	a.Upgrades += b.Upgrades
	a.MissLatSum += b.MissLatSum
	a.NetCycles += b.NetCycles
}

// RunIsolation simulates one 4-thread workload alone on the chip (12
// cores idle) under the given LLC grouping and policy.
func (r *Runner) RunIsolation(class workload.Class, groupSize int, policy sched.Policy) (core.Result, error) {
	spec := workload.Specs()[class]
	key := runKey{isolated: class, isoOnly: true, groupSize: groupSize, policy: policy}
	return r.run(key, r.config([]workload.Spec{spec}, groupSize, policy))
}

// RunMix simulates a Table IV mix (four 4-thread VMs, machine at
// capacity) under the given LLC grouping and policy.
func (r *Runner) RunMix(mix Mix, groupSize int, policy sched.Policy) (core.Result, error) {
	specs := make([]workload.Spec, len(mix.Classes))
	all := workload.Specs()
	for i, c := range mix.Classes {
		specs[i] = all[c]
	}
	key := runKey{mixID: mix.ID, groupSize: groupSize, policy: policy}
	return r.run(key, r.config(specs, groupSize, policy))
}

// IsolationBaseline returns the paper's §V reference point for a
// workload: isolated, four cores, the full LLC as one shared cache.
func (r *Runner) IsolationBaseline(class workload.Class) (core.VMResult, error) {
	res, err := r.RunIsolation(class, core.DefaultCores, sched.Affinity)
	if err != nil {
		return core.VMResult{}, err
	}
	return res.VMs[0], nil
}

// IsolationShared4Affinity returns the isolation reference used by the
// miss-latency figures: affinity scheduling on shared-4-way caches.
func (r *Runner) IsolationShared4Affinity(class workload.Class) (core.VMResult, error) {
	res, err := r.RunIsolation(class, 4, sched.Affinity)
	if err != nil {
		return core.VMResult{}, err
	}
	return res.VMs[0], nil
}

// parallelDo runs fn(i) for i in [0, n) concurrently and waits for all
// of them, returning the lowest-index error (deterministic regardless of
// completion order). It spawns freely: throughput is bounded by the
// runner's worker pool, which fn acquires only while actually
// simulating, so nesting parallelDo (a figure suite fanning out over
// figures that fan out over runs) cannot deadlock the pool. Parallel <= 1
// degrades to a plain serial loop.
func (r *Runner) parallelDo(n int, fn func(int) error) error {
	if r.opt.Parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// groupSizeName labels an LLC grouping the way the paper's figures do.
func groupSizeName(groupSize int) string {
	switch groupSize {
	case 1:
		return "private"
	case core.DefaultCores:
		return "shared"
	case 8:
		return "2-LL$ (shared-8)"
	case 2:
		return "8-LL$ (shared-2)"
	default:
		return fmt.Sprintf("%d-LL$ (shared-%d)", core.DefaultCores/groupSize, groupSize)
	}
}
