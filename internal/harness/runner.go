package harness

import (
	"fmt"
	"sync"

	"consim/internal/core"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/stats"
	vmstats "consim/internal/vm"
	"consim/internal/workload"
)

// Options control the simulation scale for a whole experiment suite.
type Options struct {
	// Scale divides footprints and cache capacities (1 = paper scale).
	Scale int
	// WarmupRefs / MeasureRefs are per-core reference budgets.
	WarmupRefs  uint64
	MeasureRefs uint64
	// SnapshotRefs positions the Figure 12/13 snapshot inside the
	// measurement window (0 = at the end).
	SnapshotRefs uint64
	// Seed drives all randomness.
	Seed uint64
	// Parallel runs independent simulations on this many goroutines
	// (0 = 1). Each simulation is single-threaded and deterministic.
	Parallel int
	// Replicates runs each configuration this many times with perturbed
	// seeds and reports merged metrics, per the Alameldeen-Wood
	// statistical simulation methodology the paper's §V adopts (0/1 =
	// single run). Replicate-to-replicate variability is exposed through
	// Result.CptCV.
	Replicates int
}

// DefaultOptions returns full-scale settings matching the calibration
// runs recorded in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		WarmupRefs:  600_000,
		MeasureRefs: 1_000_000,
		Seed:        1,
	}
}

// runKey identifies a memoizable simulation.
type runKey struct {
	mixID     string
	isolated  workload.Class
	isoOnly   bool
	groupSize int
	policy    sched.Policy
}

// Runner executes and memoizes simulations: the figure runners share
// isolation baselines heavily, and sweeps revisit configurations.
type Runner struct {
	opt Options

	mu    sync.Mutex
	cache map[runKey]core.Result
}

// NewRunner returns a Runner with the given options.
func NewRunner(opt Options) *Runner {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.WarmupRefs == 0 {
		opt.WarmupRefs = DefaultOptions().WarmupRefs
	}
	if opt.MeasureRefs == 0 {
		opt.MeasureRefs = DefaultOptions().MeasureRefs
	}
	return &Runner{opt: opt, cache: make(map[runKey]core.Result)}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opt }

func (r *Runner) config(specs []workload.Spec, groupSize int, policy sched.Policy) core.Config {
	cfg := core.DefaultConfig(specs...)
	cfg.GroupSize = groupSize
	cfg.Policy = policy
	cfg.Scale = r.opt.Scale
	cfg.Seed = r.opt.Seed
	cfg.WarmupRefs = r.opt.WarmupRefs
	cfg.MeasureRefs = r.opt.MeasureRefs
	cfg.SnapshotRefs = r.opt.SnapshotRefs
	return cfg
}

func (r *Runner) run(key runKey, cfg core.Config) (core.Result, error) {
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	reps := r.opt.Replicates
	if reps < 1 {
		reps = 1
	}
	results := make([]core.Result, 0, reps)
	for i := 0; i < reps; i++ {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		sys, err := core.NewSystem(repCfg)
		if err != nil {
			return core.Result{}, err
		}
		res, err := sys.Run()
		if err != nil {
			return core.Result{}, err
		}
		results = append(results, res)
	}
	res := mergeResults(results)
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// mergeResults folds replicated runs into one Result: counters are
// summed, window cycles averaged, cycles-per-transaction recomputed as
// the ratio of means, and the per-VM coefficient of variation of
// cycles-per-transaction recorded (the §V variability indicator).
func mergeResults(results []core.Result) core.Result {
	if len(results) == 1 {
		return results[0]
	}
	merged := results[0]
	merged.Replicates = len(results)
	merged.CptCV = make([]float64, len(merged.VMs))
	var cycles stats.Sample
	for _, res := range results {
		cycles.Add(float64(res.Cycles))
	}
	for v := range merged.VMs {
		var cpt, touched stats.Sample
		var sum vmstats.Stats
		for _, res := range results {
			cpt.Add(res.VMs[v].CyclesPerTx)
			touched.Add(float64(res.VMs[v].TouchedBlocks))
			addStats(&sum, res.VMs[v].Stats)
		}
		merged.VMs[v].Stats = sum
		merged.VMs[v].CyclesPerTx = cpt.Mean()
		merged.VMs[v].Transactions = float64(sum.Refs) / float64(results[0].Config.Workloads[v].Scaled(results[0].Config.Scale).RefsPerTx)
		merged.VMs[v].TouchedBlocks = uint64(touched.Mean())
		merged.CptCV[v] = cpt.CV()
	}
	merged.Cycles = sim.Cycle(cycles.Mean())
	return merged
}

// addStats accumulates b into a, field by field.
func addStats(a *vmstats.Stats, b vmstats.Stats) {
	a.Refs += b.Refs
	a.PrivMisses += b.PrivMisses
	a.LLCMisses += b.LLCMisses
	a.C2CClean += b.C2CClean
	a.C2CDirty += b.C2CDirty
	a.MemReads += b.MemReads
	a.Invalidations += b.Invalidations
	a.Upgrades += b.Upgrades
	a.MissLatSum += b.MissLatSum
	a.NetCycles += b.NetCycles
}

// RunIsolation simulates one 4-thread workload alone on the chip (12
// cores idle) under the given LLC grouping and policy.
func (r *Runner) RunIsolation(class workload.Class, groupSize int, policy sched.Policy) (core.Result, error) {
	spec := workload.Specs()[class]
	key := runKey{isolated: class, isoOnly: true, groupSize: groupSize, policy: policy}
	return r.run(key, r.config([]workload.Spec{spec}, groupSize, policy))
}

// RunMix simulates a Table IV mix (four 4-thread VMs, machine at
// capacity) under the given LLC grouping and policy.
func (r *Runner) RunMix(mix Mix, groupSize int, policy sched.Policy) (core.Result, error) {
	specs := make([]workload.Spec, len(mix.Classes))
	all := workload.Specs()
	for i, c := range mix.Classes {
		specs[i] = all[c]
	}
	key := runKey{mixID: mix.ID, groupSize: groupSize, policy: policy}
	return r.run(key, r.config(specs, groupSize, policy))
}

// IsolationBaseline returns the paper's §V reference point for a
// workload: isolated, four cores, the full LLC as one shared cache.
func (r *Runner) IsolationBaseline(class workload.Class) (core.VMResult, error) {
	res, err := r.RunIsolation(class, core.DefaultCores, sched.Affinity)
	if err != nil {
		return core.VMResult{}, err
	}
	return res.VMs[0], nil
}

// IsolationShared4Affinity returns the isolation reference used by the
// miss-latency figures: affinity scheduling on shared-4-way caches.
func (r *Runner) IsolationShared4Affinity(class workload.Class) (core.VMResult, error) {
	res, err := r.RunIsolation(class, 4, sched.Affinity)
	if err != nil {
		return core.VMResult{}, err
	}
	return res.VMs[0], nil
}

// parallelDo runs fn(i) for i in [0, n) on up to opt.Parallel goroutines.
// Errors abort with the first failure.
func (r *Runner) parallelDo(n int, fn func(int) error) error {
	workers := r.opt.Parallel
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	type res struct {
		i   int
		err error
	}
	sem := make(chan struct{}, workers)
	out := make(chan res, n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			out <- res{i, fn(i)}
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if rr := <-out; rr.err != nil && first == nil {
			first = rr.err
		}
	}
	return first
}

// groupSizeName labels an LLC grouping the way the paper's figures do.
func groupSizeName(groupSize int) string {
	switch groupSize {
	case 1:
		return "private"
	case core.DefaultCores:
		return "shared"
	case 8:
		return "2-LL$ (shared-8)"
	case 2:
		return "8-LL$ (shared-2)"
	default:
		return fmt.Sprintf("%d-LL$ (shared-%d)", core.DefaultCores/groupSize, groupSize)
	}
}
