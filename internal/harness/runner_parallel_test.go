package harness

import (
	"reflect"
	"sync"
	"testing"

	"consim/internal/core"
	"consim/internal/sched"
	"consim/internal/workload"
)

// TestRunnerSingleFlight hammers one runKey from many goroutines and
// asserts exactly one simulation executed — the seed implementation's
// check-then-act window let concurrent requesters simulate the same
// configuration twice. Run under -race this also validates the latch's
// publication ordering.
func TestRunnerSingleFlight(t *testing.T) {
	r := NewRunner(Options{
		Scale:       64,
		WarmupRefs:  5_000,
		MeasureRefs: 10_000,
		Seed:        1,
		Parallel:    8,
	})
	const callers = 16
	results := make([]core.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.RunIsolation(workload.TPCH, 4, sched.Affinity)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	if n := r.Sims(); n != 1 {
		t.Fatalf("Sims = %d after %d concurrent identical requests, want 1", n, callers)
	}
}

// TestRunnerParallelMatchesSerial verifies that parallel scheduling is
// purely a wall-time optimization: every simulation is single-threaded
// and deterministic, so a Parallel: 8 batch must produce tables
// bit-identical to a Parallel: 1 run of the same suite.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two full figure batches")
	}
	opts := Options{
		Scale:       64,
		WarmupRefs:  8_000,
		MeasureRefs: 15_000,
		Seed:        1,
	}
	ids := []string{"T2", "F2", "F12"}

	serialOpts := opts
	serialOpts.Parallel = 1
	serial, err := NewRunner(serialOpts).RunFigures(ids...)
	if err != nil {
		t.Fatal(err)
	}

	parOpts := opts
	parOpts.Parallel = 8
	parallel, err := NewRunner(parOpts).RunFigures(ids...)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel figure batch differs from serial batch")
	}
}

// TestRunFiguresDeduplicates runs a figure batch whose members share
// isolation baselines and asserts (a) a repeat of the batch re-simulates
// nothing and (b) the parallel batch does exactly as much real work as a
// serial runner producing the same figures — i.e. concurrency introduces
// no duplicate executions.
func TestRunFiguresDeduplicates(t *testing.T) {
	opts := Options{
		Scale:       64,
		WarmupRefs:  5_000,
		MeasureRefs: 10_000,
		Seed:        1,
	}
	ids := []string{"F2", "F3"} // both lean on the same isolation baselines

	parOpts := opts
	parOpts.Parallel = 8
	rp := NewRunner(parOpts)
	if _, err := rp.RunFigures(ids...); err != nil {
		t.Fatal(err)
	}
	first := rp.Sims()
	if _, err := rp.RunFigures(ids...); err != nil {
		t.Fatal(err)
	}
	if again := rp.Sims(); again != first {
		t.Fatalf("repeat batch re-simulated: %d -> %d", first, again)
	}

	serOpts := opts
	serOpts.Parallel = 1
	rs := NewRunner(serOpts)
	if _, err := rs.RunFigures(ids...); err != nil {
		t.Fatal(err)
	}
	if rs.Sims() != first {
		t.Fatalf("parallel batch executed %d sims, serial executed %d", first, rs.Sims())
	}
}

// TestRunFiguresValidatesIDs rejects unknown figure IDs up front.
func TestRunFiguresValidatesIDs(t *testing.T) {
	r := NewRunner(Options{Scale: 64, WarmupRefs: 1_000, MeasureRefs: 2_000})
	if _, err := r.RunFigures("T2", "F99"); err == nil {
		t.Fatal("unknown figure ID accepted")
	}
	if n := r.Sims(); n != 0 {
		t.Fatalf("validation failure still simulated %d configs", n)
	}
}

// TestParallelDefaultsToGOMAXPROCS checks the Options defaulting chain.
func TestParallelDefaultsToGOMAXPROCS(t *testing.T) {
	r := NewRunner(Options{Scale: 64})
	if r.Options().Parallel < 1 {
		t.Fatalf("Parallel defaulted to %d", r.Options().Parallel)
	}
	forced := NewRunner(Options{Scale: 64, Parallel: 1})
	if forced.Options().Parallel != 1 {
		t.Fatalf("explicit Parallel: 1 overridden to %d", forced.Options().Parallel)
	}
}
