package harness

import (
	"strings"
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

func TestTableIVMixes(t *testing.T) {
	het := HeterogeneousMixes()
	if len(het) != 9 {
		t.Fatalf("got %d heterogeneous mixes, want 9", len(het))
	}
	hom := HomogeneousMixes()
	if len(hom) != 4 {
		t.Fatalf("got %d homogeneous mixes, want 4", len(hom))
	}
	for _, m := range AllMixes() {
		if len(m.Classes) != 4 {
			t.Errorf("%s has %d VMs, want 4", m.ID, len(m.Classes))
		}
	}
	// Spot-check the paper's definitions.
	count := func(m Mix, c workload.Class) int {
		n := 0
		for _, x := range m.Classes {
			if x == c {
				n++
			}
		}
		return n
	}
	m1 := het[0]
	if count(m1, workload.TPCW) != 3 || count(m1, workload.TPCH) != 1 {
		t.Errorf("Mix 1 composition wrong: %v", m1.Classes)
	}
	m8 := het[7]
	if count(m8, workload.SPECjbb) != 2 || count(m8, workload.TPCW) != 2 {
		t.Errorf("Mix 8 composition wrong: %v", m8.Classes)
	}
	// SPECweb appears only in homogeneous mixes (paper's driver issue).
	for _, m := range het {
		if count(m, workload.SPECweb) != 0 {
			t.Errorf("%s contains SPECweb", m.ID)
		}
	}
	if hom[3].Classes[0] != workload.SPECweb {
		t.Error("Mix D is not SPECweb")
	}
}

func TestMixHelpers(t *testing.T) {
	m, err := MixByID("5")
	if err != nil || m.ID != "Mix 5" {
		t.Fatalf("MixByID(5) = %v, %v", m.ID, err)
	}
	if _, err := MixByID("Mix A"); err != nil {
		t.Error("full-form lookup failed")
	}
	if _, err := MixByID("Z"); err == nil {
		t.Error("unknown mix accepted")
	}
	if m.Homogeneous() {
		t.Error("Mix 5 reported homogeneous")
	}
	a, _ := MixByID("A")
	if !a.Homogeneous() {
		t.Error("Mix A not homogeneous")
	}
	if got := m.Name(); got != "SPECjbb(2)+TPC-H(2)" {
		t.Errorf("Mix 5 name = %q", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", RowHead: "row", Columns: []string{"a", "b"}}
	tb.Add("one", 1.5, 2.25)
	tb.Add("two", 3, 4)
	tb.Note("hello %d", 7)

	txt := tb.Text()
	for _, want := range []string{"X — demo", "one", "1.5000", "hello 7"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q:\n%s", want, txt)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| one |") || !strings.Contains(md, "|---|") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "one,1.5,2.25") {
		t.Errorf("CSV malformed:\n%s", csv)
	}

	if v, ok := tb.Get("two", "b"); !ok || v != 4 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := tb.Get("two", "zzz"); ok {
		t.Error("Get found a phantom column")
	}
	if _, ok := tb.Get("zzz", "a"); ok {
		t.Error("Get found a phantom row")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{RowHead: "r", Columns: []string{`a,b`}}
	tb.Add(`he said "hi"`, 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Errorf("escaping broken:\n%s", csv)
	}
}

func testRunner() *Runner {
	return NewRunner(Options{
		Scale:       64,
		WarmupRefs:  15_000,
		MeasureRefs: 30_000,
		Seed:        1,
	})
}

func TestRunnerMemoization(t *testing.T) {
	r := testRunner()
	a, err := r.RunIsolation(workload.TPCH, 4, sched.Affinity)
	if err != nil {
		t.Fatal(err)
	}
	before := len(r.cache)
	b, err := r.RunIsolation(workload.TPCH, 4, sched.Affinity)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Error("second identical run was not served from cache")
	}
	if a.Cycles != b.Cycles {
		t.Error("cached result differs")
	}
}

func TestRunnerMixAndIsolationKeysDistinct(t *testing.T) {
	r := testRunner()
	if _, err := r.RunIsolation(workload.TPCW, 4, sched.Affinity); err != nil {
		t.Fatal(err)
	}
	mix, _ := MixByID("A")
	if _, err := r.RunMix(mix, 4, sched.Affinity); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != 2 {
		t.Errorf("cache holds %d entries, want 2", len(r.cache))
	}
}

func TestDefaultOptionsApplied(t *testing.T) {
	r := NewRunner(Options{})
	if r.Options().Scale != 1 || r.Options().WarmupRefs == 0 || r.Options().MeasureRefs == 0 {
		t.Errorf("zero options not defaulted: %+v", r.Options())
	}
}

func TestGroupSizeNames(t *testing.T) {
	if groupSizeName(1) != "private" || groupSizeName(16) != "shared" {
		t.Error("endpoint names wrong")
	}
	if !strings.Contains(groupSizeName(4), "shared-4") {
		t.Errorf("groupSizeName(4) = %q", groupSizeName(4))
	}
}

func TestFigureDispatch(t *testing.T) {
	r := testRunner()
	if _, err := r.RunFigure("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
	ids := FigureIDs()
	if len(ids) != 13 {
		t.Errorf("%d artifacts, want 13 (Table II + Figures 2-13)", len(ids))
	}
}

// TestFigureShapes runs the cheap isolation-based artifacts at tiny scale
// and checks their row/column structure matches the paper's figures.
func TestFigureShapes(t *testing.T) {
	r := testRunner()

	t2, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 || len(t2.Columns) != 4 {
		t.Errorf("T2 shape %dx%d", len(t2.Rows), len(t2.Columns))
	}

	f2, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 4 || len(f2.Columns) != 8 { // 4 orgs x 2 policies
		t.Errorf("F2 shape %dx%d", len(f2.Rows), len(f2.Columns))
	}
	// Baseline column must be 1.0 by construction.
	for _, row := range f2.Rows {
		if row.Values[1] != 1.0 { // shared/affinity is the baseline
			t.Errorf("%s shared/affinity = %v, want 1.0", row.Label, row.Values[1])
		}
	}

	f4, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Columns) != 12 { // 3 orgs x 4 policies
		t.Errorf("F4 has %d columns", len(f4.Columns))
	}
}

// TestHomogeneousFigureShapes covers the Mix A-D artifacts at tiny scale.
func TestHomogeneousFigureShapes(t *testing.T) {
	r := testRunner()
	f5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != 4 || len(f5.Columns) != 4 {
		t.Errorf("F5 shape %dx%d", len(f5.Rows), len(f5.Columns))
	}
	for _, row := range f5.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Errorf("F5 %s col %d non-positive: %v", row.Label, i, v)
			}
		}
	}
	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Columns) != 4 { // rr, aff-rr, random, private bound
		t.Errorf("F12 has %d columns", len(f12.Columns))
	}
	for _, row := range f12.Rows {
		for i, v := range row.Values {
			if v < 0 || v > 1 {
				t.Errorf("F12 %s col %d out of [0,1]: %v", row.Label, i, v)
			}
		}
	}
}

func TestReplicatedRuns(t *testing.T) {
	r := NewRunner(Options{
		Scale:       64,
		WarmupRefs:  10_000,
		MeasureRefs: 20_000,
		Replicates:  3,
	})
	res, err := r.RunIsolation(workload.TPCH, 4, sched.Affinity)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != 3 {
		t.Fatalf("Replicates = %d", res.Replicates)
	}
	if len(res.CptCV) != 1 {
		t.Fatalf("CptCV = %v", res.CptCV)
	}
	// Perturbed seeds must produce nonzero (but small) variability.
	if res.CptCV[0] <= 0 || res.CptCV[0] > 0.5 {
		t.Errorf("CptCV = %v implausible", res.CptCV[0])
	}
	// Counters are sums over replicates: at least 3x the per-core
	// measured budget across the VM's 4 threads.
	if res.VMs[0].Stats.Refs < 3*4*20_000 {
		t.Errorf("merged refs = %d, want >= %d", res.VMs[0].Stats.Refs, 3*4*20_000)
	}
	// Derived metrics remain well-formed after merging.
	if res.VMs[0].MissRate() <= 0 || res.VMs[0].AvgMissLatency() <= 0 || res.VMs[0].CyclesPerTx <= 0 {
		t.Errorf("merged metrics degenerate: %+v", res.VMs[0])
	}
}

func TestSingleRunHasNoReplicationMetadata(t *testing.T) {
	r := testRunner()
	res, err := r.RunIsolation(workload.SPECweb, 4, sched.Affinity)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != 0 || res.CptCV != nil {
		t.Errorf("unexpected replication metadata: %d %v", res.Replicates, res.CptCV)
	}
}

func TestVariabilityStudy(t *testing.T) {
	r := NewRunner(Options{Scale: 64, WarmupRefs: 8_000, MeasureRefs: 15_000})
	tb, err := r.VariabilityStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 3 mixes x 4 VMs
		t.Fatalf("variability rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row.Values[0] <= 0 {
			t.Errorf("%s: non-positive mean", row.Label)
		}
		if row.Values[2] < 0 || row.Values[2] > 1 {
			t.Errorf("%s: implausible CV %v", row.Label, row.Values[2])
		}
	}
}

func TestAblationDispatch(t *testing.T) {
	if len(AblationIDs()) != 6 {
		t.Errorf("ablation count = %d", len(AblationIDs()))
	}
	r := testRunner()
	if _, err := r.RunAblation("A9"); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestTableBars(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", RowHead: "row", Columns: []string{"a"}}
	tb.Add("one", 2)
	tb.Add("two", 4)
	out := tb.Bars(10)
	if !strings.Contains(out, "two") || !strings.Contains(out, "##########") {
		t.Errorf("Bars output malformed:\n%s", out)
	}
	// The half-value row gets half the bar.
	if !strings.Contains(out, "2.0000 #####\n") {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
	if tb.Bars(0) == "" {
		t.Error("default width broken")
	}
}
