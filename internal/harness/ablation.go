package harness

// Ablation studies for the design choices DESIGN.md calls out: each
// sweeps one mechanism while holding the workload mix fixed, exposing how
// much that mechanism contributes to the consolidated system's behaviour.

import (
	"fmt"

	"consim/internal/core"
	"consim/internal/memctrl"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/stats"
	"consim/internal/workload"
)

// ablationMix is the default subject: Mix 8 (2x SPECjbb + 2x TPC-W), the
// paper's highest-interference heterogeneous pairing.
func ablationMix() []workload.Spec {
	all := workload.Specs()
	return []workload.Spec{all[workload.SPECjbb], all[workload.SPECjbb], all[workload.TPCW], all[workload.TPCW]}
}

func (r *Runner) ablationConfig() core.Config {
	cfg := core.DefaultConfig(ablationMix()...)
	cfg.GroupSize = 4
	cfg.Policy = sched.Affinity
	cfg.Scale = r.opt.Scale
	cfg.Seed = r.opt.Seed
	cfg.WarmupRefs = r.opt.WarmupRefs
	cfg.MeasureRefs = r.opt.MeasureRefs
	return cfg
}

// meanMissLat returns the VM-averaged private-miss latency.
func meanMissLat(res core.Result) float64 {
	sum := 0.0
	for _, v := range res.VMs {
		sum += v.AvgMissLatency()
	}
	return sum / float64(len(res.VMs))
}

// meanMissRate returns the VM-averaged LLC miss rate.
func meanMissRate(res core.Result) float64 {
	sum := 0.0
	for _, v := range res.VMs {
		sum += v.MissRate()
	}
	return sum / float64(len(res.VMs))
}

// throughput returns total measured references per kilocycle.
func throughput(res core.Result) float64 {
	var refs uint64
	for _, v := range res.VMs {
		refs += v.Stats.Refs
	}
	return 1000 * float64(refs) / float64(res.Cycles)
}

// AblateDirCache sweeps the per-node directory cache size, showing how
// much on-chip directory state shields cache-to-cache transfers from
// DRAM directory fetches.
func (r *Runner) AblateDirCache() (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: directory cache size (Mix 8, shared-4-way, affinity)",
		RowHead: "entries/node",
		Columns: []string{"dir hit rate", "miss latency", "throughput"},
	}
	sizes := []int{256, 1024, 4096, 16384, 65536}
	cfgs := make([]core.Config, len(sizes))
	for i, entries := range sizes {
		cfgs[i] = r.ablationConfig()
		cfgs[i].DirCacheEntries = entries
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.Add(fmt.Sprintf("%d", sizes[i]), res.DirCacheHitRate, meanMissLat(res), throughput(res))
	}
	t.Note("larger directory caches keep coherence lookups on chip; the paper adds them \"to reduce the number of off-chip references\"")
	return t, nil
}

// AblateMemControllers sweeps the number of memory controllers, showing
// controller queueing under consolidated pressure.
func (r *Runner) AblateMemControllers() (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: memory controllers (Mix 8, shared-4-way, affinity)",
		RowHead: "controllers",
		Columns: []string{"mem queue wait", "miss latency", "throughput"},
	}
	layouts := map[int][]int{
		1: {0},
		2: {0, 15},
		4: {0, 3, 12, 15},
		8: {0, 1, 2, 3, 12, 13, 14, 15},
	}
	counts := []int{1, 2, 4, 8}
	cfgs := make([]core.Config, len(counts))
	for i, n := range counts {
		cfgs[i] = r.ablationConfig()
		cfgs[i].Mem = memctrl.Config{
			Controllers: n,
			Latency:     core.DefaultMemLatency,
			Occupancy:   20,
			Nodes:       layouts[n],
		}
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.Add(fmt.Sprintf("%d", counts[i]), res.MemAvgWait, meanMissLat(res), throughput(res))
	}
	t.Note("fewer controllers concentrate demand; queueing grows as cache interference pushes more requests off chip")
	return t, nil
}

// AblateRouterPipeline sweeps the mesh router depth, separating wire/
// router latency from cache behaviour.
func (r *Runner) AblateRouterPipeline() (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: router pipeline depth (Mix 8, shared-4-way, affinity)",
		RowHead: "stages",
		Columns: []string{"miss latency", "miss rate", "throughput"},
	}
	depths := []int{1, 2, 3, 5}
	cfgs := make([]core.Config, len(depths))
	for i, stages := range depths {
		cfgs[i] = r.ablationConfig()
		cfgs[i].PipeStages = stages
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.Add(fmt.Sprintf("%d", depths[i]), meanMissLat(res), meanMissRate(res), throughput(res))
	}
	t.Note("deeper routers stretch every coherence and memory round trip; miss *rates* stay fixed (content is latency-independent)")
	return t, nil
}

// AblateTimeslice sweeps the hypervisor quantum for an over-committed
// machine (6 VMs on 16 cores), the §VII over-commitment study.
func (r *Runner) AblateTimeslice() (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Ablation: over-commit timeslice (6 VMs x 4 threads on 16 cores)",
		RowHead: "quantum (cycles)",
		Columns: []string{"switches/Mcycle", "miss rate", "throughput"},
	}
	all := workload.Specs()
	quanta := []sim.Cycle{2_000, 10_000, 50_000, 250_000}
	cfgs := make([]core.Config, len(quanta))
	for i, q := range quanta {
		cfg := core.DefaultConfig(
			all[workload.SPECjbb], all[workload.SPECjbb],
			all[workload.TPCW], all[workload.TPCW],
			all[workload.TPCH], all[workload.TPCH],
		)
		cfg.GroupSize = 4
		cfg.Scale = r.opt.Scale
		cfg.Seed = r.opt.Seed
		cfg.WarmupRefs = r.opt.WarmupRefs
		cfg.MeasureRefs = r.opt.MeasureRefs
		cfg.TimesliceCycles = q
		cfgs[i] = cfg
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		perM := float64(res.Switches) / (float64(res.Cycles) / 1e6)
		t.Add(fmt.Sprintf("%d", quanta[i]), perM, meanMissRate(res), throughput(res))
	}
	t.Note("short quanta churn the private caches and pay hypervisor switch costs; long quanta starve co-runners between rotations")
	return t, nil
}

// VariabilityStudy quantifies run-to-run variability per the
// Alameldeen-Wood methodology §V adopts: each mix runs with several
// perturbed seeds and reports the mean, 95% confidence half-width and
// coefficient of variation of the per-VM cycles-per-transaction.
func (r *Runner) VariabilityStudy(replicates int) (*Table, error) {
	if replicates < 2 {
		replicates = 5
	}
	t := &Table{
		ID:      "A5",
		Title:   fmt.Sprintf("Variability: cycles/tx across %d perturbed seeds (shared-4-way, affinity)", replicates),
		RowHead: "mix/vm",
		Columns: []string{"mean cyc/tx", "ci95", "cv"},
	}
	// Flatten mixes x replicates into one batch so every replicate of
	// every mix runs through the worker pool concurrently.
	mixIDs := []string{"B", "5", "8"}
	mixes := make([]Mix, len(mixIDs))
	var cfgs []core.Config
	all := workload.Specs()
	for m, mixID := range mixIDs {
		mix, err := MixByID(mixID)
		if err != nil {
			return nil, err
		}
		mixes[m] = mix
		specs := make([]workload.Spec, len(mix.Classes))
		for i, c := range mix.Classes {
			specs[i] = all[c]
		}
		for rep := 0; rep < replicates; rep++ {
			cfg := r.ablationConfig()
			cfg.Workloads = specs
			cfg.Seed = r.opt.Seed + uint64(rep)*7919
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for m, mix := range mixes {
		perVM := make([]stats.Sample, len(mix.Classes))
		for rep := 0; rep < replicates; rep++ {
			res := results[m*replicates+rep]
			for v := range res.VMs {
				perVM[v].Add(res.VMs[v].CyclesPerTx)
			}
		}
		for v := range perVM {
			t.Add(fmt.Sprintf("%s vm%d %s", mix.ID, v, mix.Classes[v]),
				perVM[v].Mean(), perVM[v].CI95(), perVM[v].CV())
		}
	}
	t.Note("per Alameldeen & Wood (HPCA'03): multi-threaded runs vary across perturbations; report means with confidence intervals")
	return t, nil
}

// AblateMemoryLatency sweeps the off-chip latency, quantifying §V's
// observation that "the commercial workloads studied are sensitive to
// miss latency".
func (r *Runner) AblateMemoryLatency() (*Table, error) {
	t := &Table{
		ID:      "A6",
		Title:   "Ablation: memory latency (Mix 8, shared-4-way, affinity)",
		RowHead: "DRAM cycles",
		Columns: []string{"miss latency", "miss rate", "throughput"},
	}
	lats := []sim.Cycle{75, 150, 300, 600}
	cfgs := make([]core.Config, len(lats))
	for i, lat := range lats {
		cfgs[i] = r.ablationConfig()
		cfgs[i].Mem = memctrl.DefaultConfig()
		cfgs[i].Mem.Latency = lat
	}
	results, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.Add(fmt.Sprintf("%d", lats[i]), meanMissLat(res), meanMissRate(res), throughput(res))
	}
	t.Note("throughput falls near-linearly with DRAM latency on blocking in-order cores; miss rates stay fixed")
	return t, nil
}

// AblationIDs lists the ablation studies.
func AblationIDs() []string { return []string{"A1", "A2", "A3", "A4", "A5", "A6"} }

// RunAblation dispatches an ablation by ID.
func (r *Runner) RunAblation(id string) (*Table, error) {
	switch id {
	case "A1":
		return r.AblateDirCache()
	case "A2":
		return r.AblateMemControllers()
	case "A3":
		return r.AblateRouterPipeline()
	case "A4":
		return r.AblateTimeslice()
	case "A5":
		return r.VariabilityStudy(5)
	case "A6":
		return r.AblateMemoryLatency()
	}
	return nil, fmt.Errorf("harness: unknown ablation %q", id)
}
