package harness

// Ablation studies for the design choices DESIGN.md calls out: each
// sweeps one mechanism while holding the workload mix fixed, exposing how
// much that mechanism contributes to the consolidated system's behaviour.

import (
	"fmt"

	"consim/internal/core"
	"consim/internal/memctrl"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/stats"
	"consim/internal/workload"
)

// ablationMix is the default subject: Mix 8 (2x SPECjbb + 2x TPC-W), the
// paper's highest-interference heterogeneous pairing.
func ablationMix() []workload.Spec {
	all := workload.Specs()
	return []workload.Spec{all[workload.SPECjbb], all[workload.SPECjbb], all[workload.TPCW], all[workload.TPCW]}
}

func (r *Runner) ablationConfig() core.Config {
	cfg := core.DefaultConfig(ablationMix()...)
	cfg.GroupSize = 4
	cfg.Policy = sched.Affinity
	cfg.Scale = r.opt.Scale
	cfg.Seed = r.opt.Seed
	cfg.WarmupRefs = r.opt.WarmupRefs
	cfg.MeasureRefs = r.opt.MeasureRefs
	return cfg
}

func runCfg(cfg core.Config) (core.Result, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return sys.Run()
}

// meanMissLat returns the VM-averaged private-miss latency.
func meanMissLat(res core.Result) float64 {
	sum := 0.0
	for _, v := range res.VMs {
		sum += v.AvgMissLatency()
	}
	return sum / float64(len(res.VMs))
}

// meanMissRate returns the VM-averaged LLC miss rate.
func meanMissRate(res core.Result) float64 {
	sum := 0.0
	for _, v := range res.VMs {
		sum += v.MissRate()
	}
	return sum / float64(len(res.VMs))
}

// throughput returns total measured references per kilocycle.
func throughput(res core.Result) float64 {
	var refs uint64
	for _, v := range res.VMs {
		refs += v.Stats.Refs
	}
	return 1000 * float64(refs) / float64(res.Cycles)
}

// AblateDirCache sweeps the per-node directory cache size, showing how
// much on-chip directory state shields cache-to-cache transfers from
// DRAM directory fetches.
func (r *Runner) AblateDirCache() (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: directory cache size (Mix 8, shared-4-way, affinity)",
		RowHead: "entries/node",
		Columns: []string{"dir hit rate", "miss latency", "throughput"},
	}
	for _, entries := range []int{256, 1024, 4096, 16384, 65536} {
		cfg := r.ablationConfig()
		cfg.DirCacheEntries = entries
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", entries), res.DirCacheHitRate, meanMissLat(res), throughput(res))
	}
	t.Note("larger directory caches keep coherence lookups on chip; the paper adds them \"to reduce the number of off-chip references\"")
	return t, nil
}

// AblateMemControllers sweeps the number of memory controllers, showing
// controller queueing under consolidated pressure.
func (r *Runner) AblateMemControllers() (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: memory controllers (Mix 8, shared-4-way, affinity)",
		RowHead: "controllers",
		Columns: []string{"mem queue wait", "miss latency", "throughput"},
	}
	layouts := map[int][]int{
		1: {0},
		2: {0, 15},
		4: {0, 3, 12, 15},
		8: {0, 1, 2, 3, 12, 13, 14, 15},
	}
	for _, n := range []int{1, 2, 4, 8} {
		cfg := r.ablationConfig()
		cfg.Mem = memctrl.Config{
			Controllers: n,
			Latency:     core.DefaultMemLatency,
			Occupancy:   20,
			Nodes:       layouts[n],
		}
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", n), res.MemAvgWait, meanMissLat(res), throughput(res))
	}
	t.Note("fewer controllers concentrate demand; queueing grows as cache interference pushes more requests off chip")
	return t, nil
}

// AblateRouterPipeline sweeps the mesh router depth, separating wire/
// router latency from cache behaviour.
func (r *Runner) AblateRouterPipeline() (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: router pipeline depth (Mix 8, shared-4-way, affinity)",
		RowHead: "stages",
		Columns: []string{"miss latency", "miss rate", "throughput"},
	}
	for _, stages := range []int{1, 2, 3, 5} {
		cfg := r.ablationConfig()
		cfg.PipeStages = stages
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", stages), meanMissLat(res), meanMissRate(res), throughput(res))
	}
	t.Note("deeper routers stretch every coherence and memory round trip; miss *rates* stay fixed (content is latency-independent)")
	return t, nil
}

// AblateTimeslice sweeps the hypervisor quantum for an over-committed
// machine (6 VMs on 16 cores), the §VII over-commitment study.
func (r *Runner) AblateTimeslice() (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Ablation: over-commit timeslice (6 VMs x 4 threads on 16 cores)",
		RowHead: "quantum (cycles)",
		Columns: []string{"switches/Mcycle", "miss rate", "throughput"},
	}
	all := workload.Specs()
	for _, q := range []sim.Cycle{2_000, 10_000, 50_000, 250_000} {
		cfg := core.DefaultConfig(
			all[workload.SPECjbb], all[workload.SPECjbb],
			all[workload.TPCW], all[workload.TPCW],
			all[workload.TPCH], all[workload.TPCH],
		)
		cfg.GroupSize = 4
		cfg.Scale = r.opt.Scale
		cfg.Seed = r.opt.Seed
		cfg.WarmupRefs = r.opt.WarmupRefs
		cfg.MeasureRefs = r.opt.MeasureRefs
		cfg.TimesliceCycles = q
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sys.Run()
		if err != nil {
			return nil, err
		}
		perM := float64(sys.Switches) / (float64(res.Cycles) / 1e6)
		t.Add(fmt.Sprintf("%d", q), perM, meanMissRate(res), throughput(res))
	}
	t.Note("short quanta churn the private caches and pay hypervisor switch costs; long quanta starve co-runners between rotations")
	return t, nil
}

// VariabilityStudy quantifies run-to-run variability per the
// Alameldeen-Wood methodology §V adopts: each mix runs with several
// perturbed seeds and reports the mean, 95% confidence half-width and
// coefficient of variation of the per-VM cycles-per-transaction.
func (r *Runner) VariabilityStudy(replicates int) (*Table, error) {
	if replicates < 2 {
		replicates = 5
	}
	t := &Table{
		ID:      "A5",
		Title:   fmt.Sprintf("Variability: cycles/tx across %d perturbed seeds (shared-4-way, affinity)", replicates),
		RowHead: "mix/vm",
		Columns: []string{"mean cyc/tx", "ci95", "cv"},
	}
	for _, mixID := range []string{"B", "5", "8"} {
		mix, err := MixByID(mixID)
		if err != nil {
			return nil, err
		}
		specs := make([]workload.Spec, len(mix.Classes))
		all := workload.Specs()
		for i, c := range mix.Classes {
			specs[i] = all[c]
		}
		perVM := make([]stats.Sample, len(mix.Classes))
		for rep := 0; rep < replicates; rep++ {
			cfg := r.ablationConfig()
			cfg.Workloads = specs
			cfg.Seed = r.opt.Seed + uint64(rep)*7919
			res, err := runCfg(cfg)
			if err != nil {
				return nil, err
			}
			for v := range res.VMs {
				perVM[v].Add(res.VMs[v].CyclesPerTx)
			}
		}
		for v := range perVM {
			t.Add(fmt.Sprintf("%s vm%d %s", mix.ID, v, mix.Classes[v]),
				perVM[v].Mean(), perVM[v].CI95(), perVM[v].CV())
		}
	}
	t.Note("per Alameldeen & Wood (HPCA'03): multi-threaded runs vary across perturbations; report means with confidence intervals")
	return t, nil
}

// AblateMemoryLatency sweeps the off-chip latency, quantifying §V's
// observation that "the commercial workloads studied are sensitive to
// miss latency".
func (r *Runner) AblateMemoryLatency() (*Table, error) {
	t := &Table{
		ID:      "A6",
		Title:   "Ablation: memory latency (Mix 8, shared-4-way, affinity)",
		RowHead: "DRAM cycles",
		Columns: []string{"miss latency", "miss rate", "throughput"},
	}
	for _, lat := range []sim.Cycle{75, 150, 300, 600} {
		cfg := r.ablationConfig()
		cfg.Mem = memctrl.DefaultConfig()
		cfg.Mem.Latency = lat
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", lat), meanMissLat(res), meanMissRate(res), throughput(res))
	}
	t.Note("throughput falls near-linearly with DRAM latency on blocking in-order cores; miss rates stay fixed")
	return t, nil
}

// AblationIDs lists the ablation studies.
func AblationIDs() []string { return []string{"A1", "A2", "A3", "A4", "A5", "A6"} }

// RunAblation dispatches an ablation by ID.
func (r *Runner) RunAblation(id string) (*Table, error) {
	switch id {
	case "A1":
		return r.AblateDirCache()
	case "A2":
		return r.AblateMemControllers()
	case "A3":
		return r.AblateRouterPipeline()
	case "A4":
		return r.AblateTimeslice()
	case "A5":
		return r.VariabilityStudy(5)
	case "A6":
		return r.AblateMemoryLatency()
	}
	return nil, fmt.Errorf("harness: unknown ablation %q", id)
}
