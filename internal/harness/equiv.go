package harness

import (
	"fmt"
	"math"
	"time"

	"consim/internal/core"
	"consim/internal/sim"
)

// Statistical equivalence of sampled and detailed simulation.
//
// A sampled run estimates the same per-VM metrics a detailed run
// measures exactly; the contract is that the estimate's error stays
// within the confidence interval the sampling engine itself reports.
// This file compares the two modes — per run (VM-level metrics) and per
// figure (table cells) — and turns the comparison into the pass/fail
// predicate the sample-accuracy CI job and cmd/bench -samplesweep gate
// on.

// VMDelta is one VM's sampled-vs-detailed deviation on the two metrics
// the sampling engine tracks for convergence.
type VMDelta struct {
	VM   int     `json:"vm"`
	Name string  `json:"name"`
	Miss float64 `json:"miss_rel_err"` // |sampled-full|/full LLC miss rate
	Cpt  float64 `json:"cpt_rel_err"`  // |sampled-full|/full cycles per transaction
}

// RunComparison is the result of running one configuration both ways.
type RunComparison struct {
	Full    core.Result
	Sampled core.Result
	Deltas  []VMDelta
	// MaxRelErr is the largest per-VM relative error over both metrics.
	MaxRelErr float64
	// Bound is the error budget the comparison is judged against:
	// 2 x max(CITarget, achieved CI) — twice the half-width, covering
	// the full-run estimator's own variance on top of the sampled one's.
	Bound float64
}

// Within reports whether every per-VM deviation is inside the bound.
func (c RunComparison) Within() bool { return c.MaxRelErr <= c.Bound }

// CompareSampledRun executes cfg fully detailed and again under sc, and
// reports the per-VM metric deviations. VMs with zero full-run
// references (never scheduled) are skipped.
func CompareSampledRun(cfg core.Config, sc core.SampleConfig) (RunComparison, error) {
	fullCfg := cfg
	fullCfg.Sample = core.SampleConfig{}
	sampCfg := cfg
	sampCfg.Sample = sc

	var out RunComparison
	for i, c := range []core.Config{fullCfg, sampCfg} {
		sys, err := core.NewSystem(c)
		if err != nil {
			return out, err
		}
		res, err := sys.Run()
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.Full = res
		} else {
			out.Sampled = res
		}
	}
	if len(out.Full.VMs) != len(out.Sampled.VMs) {
		return out, fmt.Errorf("harness: VM count mismatch %d vs %d", len(out.Full.VMs), len(out.Sampled.VMs))
	}
	for v := range out.Full.VMs {
		f, s := out.Full.VMs[v], out.Sampled.VMs[v]
		if f.Stats.Refs == 0 {
			continue
		}
		d := VMDelta{
			VM:   f.VM,
			Name: f.Name,
			Miss: relErr(s.MissRate(), f.MissRate()),
			Cpt:  relErr(s.CyclesPerTx, f.CyclesPerTx),
		}
		out.Deltas = append(out.Deltas, d)
		out.MaxRelErr = math.Max(out.MaxRelErr, math.Max(d.Miss, d.Cpt))
	}
	out.Bound = sampleBound(out.Sampled.Config.Sample.CITarget, out.Sampled.Sample.AchievedRelCI)
	return out, nil
}

// relErr returns |got-want|/|want|; an exact match of a zero reference
// is 0, any deviation from zero is reported as 1 (100%).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / math.Abs(want)
}

// sampleBound is the declared error budget for a sampled estimate:
// twice the larger of the configured target and the achieved CI. The
// factor of two covers the detailed reference's own run-to-run variance
// (both sides estimate a stochastic workload's mean) and turns the 95%
// half-width into a bound deviations should essentially never exceed.
func sampleBound(target, achieved float64) float64 {
	b := math.Max(target, achieved)
	if b <= 0 || math.IsInf(b, 1) || math.IsNaN(b) {
		b = 1
	}
	return 2 * b
}

// FigureComparison is one figure run both ways.
type FigureComparison struct {
	ID string `json:"figure"`
	// FullSeconds / SampledSeconds are wall-clock times for building the
	// figure in each mode (including runs shared with earlier figures
	// only on first execution — the runners memoize identically).
	FullSeconds    float64 `json:"full_seconds"`
	SampledSeconds float64 `json:"sampled_seconds"`
	// MaxRelErr is the worst per-cell relative deviation, with small
	// cells judged against a floor of 5% of the table's largest |cell|
	// (a near-zero cell's relative error is noise, not signal).
	MaxRelErr float64 `json:"max_rel_err"`
	WorstCell string  `json:"worst_cell,omitempty"`
	// FFCost / FFCostRatio describe the sampled build's phase split: wall
	// and reference totals for detailed windows vs functional fast-forward
	// over the figure's sampled runs, and the resulting per-reference cost
	// ratio (Result.FFCostRatio aggregated over the figure; 0 when no run
	// sampled). Only sampled comparisons populate them.
	FFCost      *FFCost `json:"ff_cost,omitempty"`
	FFCostRatio float64 `json:"ff_cost_ratio,omitempty"`
}

// Speedup returns the figure's wall-clock ratio.
func (f FigureComparison) Speedup() float64 {
	if f.SampledSeconds == 0 {
		return 0
	}
	return f.FullSeconds / f.SampledSeconds
}

// cellFloorFrac scales a table's largest |cell| into the denominator
// floor for per-cell relative errors.
const cellFloorFrac = 0.05

// CompareTables returns the worst per-cell relative deviation between a
// detailed and a sampled rendering of the same figure, and the
// row/column label of the worst cell. Shapes must match.
func CompareTables(full, sampled *Table) (float64, string, error) {
	if len(full.Rows) != len(sampled.Rows) || len(full.Columns) != len(sampled.Columns) {
		return 0, "", fmt.Errorf("harness: table %s shape mismatch", full.ID)
	}
	floor := 0.0
	for _, r := range full.Rows {
		for _, v := range r.Values {
			floor = math.Max(floor, math.Abs(v))
		}
	}
	floor *= cellFloorFrac
	worst, worstCell := 0.0, ""
	for ri, fr := range full.Rows {
		sr := sampled.Rows[ri]
		if len(fr.Values) != len(sr.Values) {
			return 0, "", fmt.Errorf("harness: table %s row %q width mismatch", full.ID, fr.Label)
		}
		for ci := range fr.Values {
			den := math.Max(math.Abs(fr.Values[ci]), floor)
			if den == 0 {
				continue
			}
			if e := math.Abs(sr.Values[ci]-fr.Values[ci]) / den; e > worst {
				worst = e
				worstCell = fr.Label + "/" + full.Columns[ci]
			}
		}
	}
	return worst, worstCell, nil
}

// DefaultPdesBound is the error budget parallel (pdes) runs are judged
// against when the caller does not supply one: the worst per-VM
// relative deviation on the tracked metrics must stay below it. The
// parallel engine's error source is bounded cross-domain staleness (one
// window), not sampling variance, so the bound is a fixed engineering
// tolerance rather than a CI-derived quantity; measured deviations at
// the default window sit under half of it across the workload classes.
const DefaultPdesBound = 0.12

// CompareParallelRun executes cfg sequentially and again under the
// split-transaction parallel engine with the given worker count and
// window (0 = default), and reports the per-VM metric deviations
// against bound (<= 0 selects DefaultPdesBound). The comparison reuses
// RunComparison: Full holds the sequential run, Sampled the parallel
// one.
func CompareParallelRun(cfg core.Config, workers int, window sim.Cycle, bound float64) (RunComparison, error) {
	seqCfg := cfg
	seqCfg.Pdes, seqCfg.PdesWindow = 0, 0
	seqCfg.PdesReplayWorkers, seqCfg.PdesPipeline = 0, false
	parCfg := cfg
	parCfg.Pdes, parCfg.PdesWindow = workers, window

	var out RunComparison
	for i, c := range []core.Config{seqCfg, parCfg} {
		sys, err := core.NewSystem(c)
		if err != nil {
			return out, err
		}
		res, err := sys.Run()
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.Full = res
		} else {
			out.Sampled = res
		}
	}
	if len(out.Full.VMs) != len(out.Sampled.VMs) {
		return out, fmt.Errorf("harness: VM count mismatch %d vs %d", len(out.Full.VMs), len(out.Sampled.VMs))
	}
	for v := range out.Full.VMs {
		f, s := out.Full.VMs[v], out.Sampled.VMs[v]
		if f.Stats.Refs == 0 {
			continue
		}
		d := VMDelta{
			VM:   f.VM,
			Name: f.Name,
			Miss: relErr(s.MissRate(), f.MissRate()),
			Cpt:  relErr(s.CyclesPerTx, f.CyclesPerTx),
		}
		out.Deltas = append(out.Deltas, d)
		out.MaxRelErr = math.Max(out.MaxRelErr, math.Max(d.Miss, d.Cpt))
	}
	if bound <= 0 {
		bound = DefaultPdesBound
	}
	out.Bound = bound
	return out, nil
}

// CompareShardedParallelRun executes cfg under the parallel engine
// twice — once with the serial barrier replay, once with the replay
// sharded across replayWorkers bank-group streams (and optionally the
// window/replay pipeline) — and reports per-VM deviations against
// bound (<= 0 selects DefaultPdesBound). Sharding alone is a pure
// execution strategy, so without pipelining MaxRelErr must come back
// exactly zero; with pipelining the one-window replica staleness is
// judged like the engine itself. Full holds the serial-replay run,
// Sampled the sharded one.
func CompareShardedParallelRun(cfg core.Config, workers, replayWorkers int, pipeline bool, window sim.Cycle, bound float64) (RunComparison, error) {
	serCfg := cfg
	serCfg.Pdes, serCfg.PdesWindow = workers, window
	serCfg.PdesReplayWorkers, serCfg.PdesPipeline = 0, false
	shCfg := serCfg
	shCfg.PdesReplayWorkers, shCfg.PdesPipeline = replayWorkers, pipeline

	var out RunComparison
	for i, c := range []core.Config{serCfg, shCfg} {
		sys, err := core.NewSystem(c)
		if err != nil {
			return out, err
		}
		res, err := sys.Run()
		if err != nil {
			return out, err
		}
		if i == 0 {
			out.Full = res
		} else {
			out.Sampled = res
		}
	}
	if len(out.Full.VMs) != len(out.Sampled.VMs) {
		return out, fmt.Errorf("harness: VM count mismatch %d vs %d", len(out.Full.VMs), len(out.Sampled.VMs))
	}
	for v := range out.Full.VMs {
		f, s := out.Full.VMs[v], out.Sampled.VMs[v]
		if f.Stats.Refs == 0 {
			continue
		}
		d := VMDelta{
			VM:   f.VM,
			Name: f.Name,
			Miss: relErr(s.MissRate(), f.MissRate()),
			Cpt:  relErr(s.CyclesPerTx, f.CyclesPerTx),
		}
		out.Deltas = append(out.Deltas, d)
		out.MaxRelErr = math.Max(out.MaxRelErr, math.Max(d.Miss, d.Cpt))
	}
	if bound <= 0 {
		bound = DefaultPdesBound
	}
	out.Bound = bound
	return out, nil
}

// CompareParallelFigures builds the given figures twice — one
// sequential runner, one with the parallel engine — and reports
// per-figure deviations, wall times and the bound cells are judged
// against (<= 0 selects DefaultPdesBound). Cell deviations use the same
// small-cell floor as the sampling comparison.
func CompareParallelFigures(opt Options, workers int, window sim.Cycle, bound float64, ids []string) ([]FigureComparison, float64, error) {
	seqOpt := opt
	seqOpt.Pdes, seqOpt.PdesWindow = 0, 0
	seqOpt.PdesReplayWorkers, seqOpt.PdesPipeline = 0, false
	seqRun := NewRunner(seqOpt)
	parOpt := opt
	parOpt.Pdes, parOpt.PdesWindow = workers, window
	parRun := NewRunner(parOpt)

	out := make([]FigureComparison, 0, len(ids))
	for _, id := range ids {
		fc := FigureComparison{ID: id}
		t0 := time.Now()
		ft, err := seqRun.RunFigure(id)
		if err != nil {
			return nil, 0, err
		}
		t1 := time.Now()
		pt, err := parRun.RunFigure(id)
		if err != nil {
			return nil, 0, err
		}
		fc.FullSeconds, fc.SampledSeconds = t1.Sub(t0).Seconds(), time.Since(t1).Seconds()
		fc.MaxRelErr, fc.WorstCell, err = CompareTables(ft, pt)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, fc)
	}
	if bound <= 0 {
		bound = DefaultPdesBound
	}
	return out, bound, nil
}

// CompareSampledFigures builds the given figures twice — one detailed
// runner, one sampled — and reports per-figure deviations, wall times
// and the declared bound. The two runners share nothing, so memoization
// inside each mode mirrors a real figure-suite invocation.
func CompareSampledFigures(opt Options, sc core.SampleConfig, ids []string) ([]FigureComparison, float64, error) {
	fullRun := NewRunner(opt)
	sampOpt := opt
	sampOpt.Sample = sc
	sampRun := NewRunner(sampOpt)

	out := make([]FigureComparison, 0, len(ids))
	for _, id := range ids {
		fc := FigureComparison{ID: id}
		t0 := time.Now()
		ft, err := fullRun.RunFigure(id)
		if err != nil {
			return nil, 0, err
		}
		t1 := time.Now()
		ffBase := sampRun.FFCostTotals()
		st, err := sampRun.RunFigure(id)
		if err != nil {
			return nil, 0, err
		}
		fc.FullSeconds, fc.SampledSeconds = t1.Sub(t0).Seconds(), time.Since(t1).Seconds()
		// The figure's own sampled runs are the aggregate's growth since
		// the snapshot (memoized re-reads add nothing, matching wall time).
		if ff := sampRun.FFCostTotals().sub(ffBase); ff.SkippedRefs > 0 {
			fc.FFCost = &ff
			fc.FFCostRatio = ff.Ratio()
		}
		fc.MaxRelErr, fc.WorstCell, err = CompareTables(ft, st)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, fc)
	}
	bound := sampleBound(sc.CITarget, sampRun.WorstSampleRelCI())
	return out, bound, nil
}
