package harness

import (
	"fmt"
	"strings"
)

// Table is a figure or table's data in row/column form, ready to print
// as text, markdown or CSV. Values are the plotted quantity (normalized
// runtime, miss rate, latency, ...).
type Table struct {
	ID      string // experiment ID, e.g. "F8"
	Title   string
	RowHead string // header over the row-label column
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one labeled series of values, one per column.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Get returns the value at (rowLabel, column), for tests.
func (t *Table) Get(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Values) {
			return r.Values[ci], true
		}
	}
	return 0, false
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	width := len(t.RowHead)
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, t.RowHead)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %12.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + t.RowHead + " |")
	for _, c := range t.Columns {
		b.WriteString(" " + c + " |")
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString("| " + r.Label + " |")
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %.4f |", v)
		}
		b.WriteByte('\n')
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "*%s*\n\n", n)
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.RowHead))
	for _, c := range t.Columns {
		b.WriteString("," + csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%.6g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Bars renders the table as horizontal ASCII bar charts, one block per
// column, scaled to the column's maximum. Handy for eyeballing a figure's
// shape in a terminal.
func (t *Table) Bars(width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	labelW := len(t.RowHead)
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for ci, col := range t.Columns {
		max := 0.0
		for _, r := range t.Rows {
			if ci < len(r.Values) && r.Values[ci] > max {
				max = r.Values[ci]
			}
		}
		fmt.Fprintf(&b, "\n[%s]\n", col)
		for _, r := range t.Rows {
			if ci >= len(r.Values) {
				continue
			}
			v := r.Values[ci]
			n := 0
			if max > 0 {
				n = int(v / max * float64(width))
			}
			fmt.Fprintf(&b, "%-*s %10.4f %s\n", labelW+1, r.Label, v, strings.Repeat("#", n))
		}
	}
	return b.String()
}
