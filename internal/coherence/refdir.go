package coherence

import (
	"fmt"

	"consim/internal/sim"
)

// RefDirectory is the retired map-backed directory implementation, kept
// verbatim as the oracle for the differential parity tests against the
// flat open-addressed Directory. It is not used by the simulator: every
// Get of an untracked line allocates a heap Entry, and the map's pointer
// values put millions of objects in the GC scan set during long runs.
type RefDirectory struct {
	nodes   int
	entries map[uint64]*Entry

	// Lookups counts directory accesses.
	Lookups uint64
}

// NewRefDirectory returns a reference directory striped across n nodes.
func NewRefDirectory(n int) *RefDirectory {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("coherence: invalid node count %d (1..%d)", n, MaxNodes))
	}
	return &RefDirectory{
		nodes:   n,
		entries: make(map[uint64]*Entry, 1<<16),
	}
}

// Nodes returns the number of home nodes.
func (d *RefDirectory) Nodes() int { return d.nodes }

// Home returns the node whose directory slice owns addr.
func (d *RefDirectory) Home(addr sim.Addr) int {
	return int(sim.BlockID(addr) % uint64(d.nodes))
}

// Get returns the entry for addr, creating an empty one if absent.
func (d *RefDirectory) Get(addr sim.Addr) *Entry {
	d.Lookups++
	b := sim.BlockID(addr)
	e, ok := d.entries[b]
	if !ok {
		ne := NewEntry()
		e = &ne
		d.entries[b] = e
	}
	return e
}

// Probe returns the entry for addr without creating one.
func (d *RefDirectory) Probe(addr sim.Addr) (*Entry, bool) {
	e, ok := d.entries[sim.BlockID(addr)]
	return e, ok
}

// Release removes the entry for addr if no cache holds the line.
func (d *RefDirectory) Release(addr sim.Addr) {
	b := sim.BlockID(addr)
	if e, ok := d.entries[b]; ok && !e.OnChip() {
		delete(d.entries, b)
	}
}

// Len returns the number of tracked lines.
func (d *RefDirectory) Len() int { return len(d.entries) }

// ReplicationSnapshot reports lines resident in >=1 and >=2 LLC banks.
func (d *RefDirectory) ReplicationSnapshot() (resident, replicated int) {
	for _, e := range d.entries {
		n := e.L2Count()
		if n >= 1 {
			resident++
		}
		if n >= 2 {
			replicated++
		}
	}
	return resident, replicated
}

// CheckInvariants validates protocol invariants over all entries.
func (d *RefDirectory) CheckInvariants() error {
	for b, e := range d.entries {
		if e.L1Owner >= 0 && !e.HasL1(int(e.L1Owner)) {
			return fmt.Errorf("block %#x: L1 owner %d not in sharer mask %016x", b, e.L1Owner, e.L1Sharers)
		}
		if e.L2Owner >= 0 && !e.HasL2(int(e.L2Owner)) {
			return fmt.Errorf("block %#x: L2 owner %d not in bank mask %016x", b, e.L2Owner, e.L2Sharers)
		}
	}
	return nil
}
