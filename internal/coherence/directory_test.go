package coherence

import (
	"testing"
	"testing/quick"

	"consim/internal/sim"
)

func TestEntryL1Ops(t *testing.T) {
	e := NewEntry()
	if e.OnChip() || e.Dirty() {
		t.Fatal("fresh entry not empty")
	}
	e.AddL1(3)
	e.AddL1(7)
	if !e.HasL1(3) || !e.HasL1(7) || e.HasL1(2) {
		t.Fatal("sharer bits wrong")
	}
	if e.L1Count() != 2 {
		t.Fatalf("L1Count = %d", e.L1Count())
	}
	e.L1Owner = 3
	if !e.Dirty() {
		t.Error("owner not dirty")
	}
	e.DropL1(3)
	if e.HasL1(3) || e.L1Owner != -1 {
		t.Error("DropL1 did not clear ownership")
	}
	if e.OtherL1(7) != -1 {
		t.Errorf("OtherL1 = %d", e.OtherL1(7))
	}
	e.AddL1(1)
	if e.OtherL1(7) != 1 {
		t.Errorf("OtherL1 = %d", e.OtherL1(7))
	}
}

func TestEntryL2Ops(t *testing.T) {
	e := NewEntry()
	e.AddL2(0)
	e.AddL2(2)
	if e.L2Count() != 2 || !e.HasL2(0) || !e.HasL2(2) {
		t.Fatal("bank bits wrong")
	}
	if o := e.OtherL2(0); o != 2 {
		t.Errorf("OtherL2(0) = %d", o)
	}
	e.L2Owner = 2
	e.DropL2(2)
	if e.L2Owner != -1 || e.HasL2(2) {
		t.Error("DropL2 did not clear ownership")
	}
}

func TestDirectoryHomeStriping(t *testing.T) {
	d := NewDirectory(16)
	// Consecutive lines stripe across consecutive homes.
	for i := 0; i < 64; i++ {
		addr := sim.Addr(i * 64)
		if d.Home(addr) != i%16 {
			t.Fatalf("Home(%#x) = %d", addr, d.Home(addr))
		}
	}
	// Addresses within a line share a home.
	if d.Home(0x40) != d.Home(0x7f) {
		t.Error("home differs within one line")
	}
}

func TestDirectoryGetProbeRelease(t *testing.T) {
	d := NewDirectory(4)
	if _, ok := d.Probe(0x100); ok {
		t.Fatal("probe hit in empty directory")
	}
	e := d.Get(0x100)
	e.AddL2(1)
	if e2, ok := d.Probe(0x100); !ok || e2 != e {
		t.Fatal("Probe did not return the same entry")
	}
	d.Release(0x100)
	if _, ok := d.Probe(0x100); !ok {
		t.Fatal("Release dropped a line still on chip")
	}
	e.DropL2(1)
	d.Release(0x100)
	if _, ok := d.Probe(0x100); ok {
		t.Fatal("Release kept an off-chip line")
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDirectoryReplicationSnapshot(t *testing.T) {
	d := NewDirectory(4)
	d.Get(0x000).AddL2(0)
	e := d.Get(0x040)
	e.AddL2(0)
	e.AddL2(1)
	e = d.Get(0x080)
	e.AddL2(1)
	e.AddL2(2)
	e.AddL2(3)
	d.Get(0x0c0).AddL1(5) // L1-only: not LLC-resident
	res, repl := d.ReplicationSnapshot()
	if res != 3 || repl != 2 {
		t.Errorf("snapshot = %d resident, %d replicated", res, repl)
	}
}

func TestDirectoryInvariants(t *testing.T) {
	d := NewDirectory(4)
	e := d.Get(0x40)
	e.AddL1(2)
	e.L1Owner = 2
	e.AddL2(0)
	e.L2Owner = 0
	if err := d.CheckInvariants(); err != nil {
		t.Errorf("valid state flagged: %v", err)
	}
	e.L1Owner = 5 // not a sharer
	if err := d.CheckInvariants(); err == nil {
		t.Error("owner-not-sharer accepted")
	}
	e.L1Owner = -1
	e.L2Owner = 3 // not a bank sharer
	if err := d.CheckInvariants(); err == nil {
		t.Error("bank-owner-not-sharer accepted")
	}
}

func TestDirectoryPanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDirectory(0) did not panic")
		}
	}()
	NewDirectory(0)
}

func TestDirCacheHitMiss(t *testing.T) {
	dc := NewDirCache(2, DirCacheConfig{Entries: 16, Assoc: 4})
	if dc.Access(0, 0x40) {
		t.Fatal("first access hit")
	}
	if !dc.Access(0, 0x40) {
		t.Fatal("second access missed")
	}
	// Node isolation: node 1 has its own cache.
	if dc.Access(1, 0x40) {
		t.Fatal("other node's cache shared state")
	}
	if hr := dc.HitRate(); hr != 1.0/3 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestDirCacheCapacityEviction(t *testing.T) {
	dc := NewDirCache(1, DirCacheConfig{Entries: 16, Assoc: 4})
	// Fill far past capacity, then re-access the first address: it must
	// have been evicted (a miss).
	for i := 0; i < 64; i++ {
		dc.Access(0, sim.Addr(i*64))
	}
	if dc.Access(0, 0) {
		t.Error("entry survived 4x capacity pressure")
	}
}

func TestDirCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	NewDirCache(1, DirCacheConfig{})
}

// TestDirectoryRandomOps drives entry mutations randomly and checks the
// mask/owner invariants hold throughout.
func TestDirectoryRandomOps(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory(16)
		for _, op := range ops {
			addr := sim.Addr(op%64) * 64
			e := d.Get(addr)
			switch op % 5 {
			case 0:
				e.AddL1(int(op>>4) % 16)
			case 1:
				e.AddL2(int(op>>4) % 16)
			case 2:
				c := int(op>>4) % 16
				e.AddL1(c)
				e.L1Owner = int8(c)
			case 3:
				e.DropL1(int(op>>4) % 16)
			case 4:
				e.DropL2(int(op>>4) % 16)
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
