// Package coherence implements the SGI-Origin-style directory protocol
// state used by the simulated CMP. Directory entries are striped across
// the chip's nodes by physical address (the paper's §IV-A); each node has
// a directory cache so that directory lookups normally stay on chip.
//
// The directory records, per cache line, which private caches (L1s) and
// which last-level cache banks hold the line and who owns a dirty copy.
// The system model in internal/core drives all transitions; this package
// owns the bookkeeping and the sharer/owner invariants.
package coherence

import (
	"fmt"
	"math/bits"

	"consim/internal/cache"
	"consim/internal/sim"
)

// Entry is the directory's view of one cache line. The 64-bit sharer
// masks support machines up to 64 cores / 64 bank groups (the paper's
// chip uses 16; larger machines serve the §VII scaling studies).
type Entry struct {
	// L1Sharers is a bitmask over cores whose private hierarchy (L0/L1)
	// holds the line.
	L1Sharers uint64
	// L2Sharers is a bitmask over LLC banks holding the line.
	L2Sharers uint64
	// L1Owner is the core holding the line dirty in its private levels,
	// or -1.
	L1Owner int8
	// L2Owner is the LLC bank holding the line dirty, or -1.
	L2Owner int8
}

// MaxNodes is the largest machine the sharer masks can describe.
const MaxNodes = 64

// NewEntry returns an entry with no sharers and no owner.
func NewEntry() Entry { return Entry{L1Owner: -1, L2Owner: -1} }

// OnChip reports whether any cache on the chip holds the line.
func (e *Entry) OnChip() bool { return e.L1Sharers != 0 || e.L2Sharers != 0 }

// Dirty reports whether some cache holds the line newer than memory.
func (e *Entry) Dirty() bool { return e.L1Owner >= 0 || e.L2Owner >= 0 }

// L1Count returns the number of private-cache sharers.
func (e *Entry) L1Count() int { return bits.OnesCount64(e.L1Sharers) }

// L2Count returns the number of LLC banks holding the line.
func (e *Entry) L2Count() int { return bits.OnesCount64(e.L2Sharers) }

// AddL1 records core c as a private-level sharer.
func (e *Entry) AddL1(c int) { e.L1Sharers |= 1 << uint(c) }

// DropL1 clears core c's private-level sharing (and ownership if held).
func (e *Entry) DropL1(c int) {
	e.L1Sharers &^= 1 << uint(c)
	if e.L1Owner == int8(c) {
		e.L1Owner = -1
	}
}

// HasL1 reports whether core c holds the line privately.
func (e *Entry) HasL1(c int) bool { return e.L1Sharers&(1<<uint(c)) != 0 }

// AddL2 records bank b as holding the line.
func (e *Entry) AddL2(b int) { e.L2Sharers |= 1 << uint(b) }

// DropL2 clears bank b (and its ownership if held).
func (e *Entry) DropL2(b int) {
	e.L2Sharers &^= 1 << uint(b)
	if e.L2Owner == int8(b) {
		e.L2Owner = -1
	}
}

// HasL2 reports whether bank b holds the line.
func (e *Entry) HasL2(b int) bool { return e.L2Sharers&(1<<uint(b)) != 0 }

// OtherL1 returns any private sharer other than core c, or -1.
func (e *Entry) OtherL1(c int) int {
	m := e.L1Sharers &^ (1 << uint(c))
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// OtherL2 returns any bank sharer other than bank b, or -1.
func (e *Entry) OtherL2(b int) int {
	m := e.L2Sharers &^ (1 << uint(b))
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// Directory is the chip-wide line directory. Entries live in a map keyed
// by block ID; the striping across home nodes affects only where lookups
// are routed (latency), not where state is stored, so a single map keeps
// the implementation simple and the behaviour identical.
type Directory struct {
	nodes   int
	entries map[uint64]*Entry

	// Lookups counts directory accesses; used by tests and reports.
	Lookups uint64
}

// NewDirectory returns a directory striped across n home nodes.
func NewDirectory(n int) *Directory {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("coherence: invalid node count %d (1..%d)", n, MaxNodes))
	}
	return &Directory{nodes: n, entries: make(map[uint64]*Entry, 1<<16)}
}

// Nodes returns the number of home nodes.
func (d *Directory) Nodes() int { return d.nodes }

// Home returns the node whose directory slice owns addr. Entries are
// striped by block address, matching the paper's configuration.
func (d *Directory) Home(addr sim.Addr) int {
	return int(sim.BlockID(addr) % uint64(d.nodes))
}

// Get returns the entry for addr, creating an empty one if absent.
func (d *Directory) Get(addr sim.Addr) *Entry {
	d.Lookups++
	b := sim.BlockID(addr)
	e, ok := d.entries[b]
	if !ok {
		ne := NewEntry()
		e = &ne
		d.entries[b] = e
	}
	return e
}

// Probe returns the entry for addr without creating one.
func (d *Directory) Probe(addr sim.Addr) (*Entry, bool) {
	e, ok := d.entries[sim.BlockID(addr)]
	return e, ok
}

// Release removes the entry for addr if no cache holds the line; keeping
// the map bounded by on-chip state keeps long runs from growing without
// bound.
func (d *Directory) Release(addr sim.Addr) {
	b := sim.BlockID(addr)
	if e, ok := d.entries[b]; ok && !e.OnChip() {
		delete(d.entries, b)
	}
}

// Len returns the number of tracked lines (lines with on-chip state plus
// any not yet released).
func (d *Directory) Len() int { return len(d.entries) }

// ReplicationSnapshot walks all tracked lines and reports how many are
// resident in at least one LLC bank and how many in two or more (the
// paper's Figure 12 metric).
func (d *Directory) ReplicationSnapshot() (resident, replicated int) {
	for _, e := range d.entries {
		n := e.L2Count()
		if n >= 1 {
			resident++
		}
		if n >= 2 {
			replicated++
		}
	}
	return resident, replicated
}

// CheckInvariants validates protocol invariants over all entries and
// returns the first violation found. Tests call this after randomized
// traffic.
func (d *Directory) CheckInvariants() error {
	for b, e := range d.entries {
		if e.L1Owner >= 0 && !e.HasL1(int(e.L1Owner)) {
			return fmt.Errorf("block %#x: L1 owner %d not in sharer mask %016x", b, e.L1Owner, e.L1Sharers)
		}
		if e.L2Owner >= 0 && !e.HasL2(int(e.L2Owner)) {
			return fmt.Errorf("block %#x: L2 owner %d not in bank mask %016x", b, e.L2Owner, e.L2Sharers)
		}
		if e.L1Owner >= 0 && e.L1Count() > 1 {
			// A dirty private line may have shared copies only if the
			// owner is in Owned state; the system model always downgrades
			// through the directory, so concurrent dirty + other sharers
			// is legal. Nothing to check beyond mask consistency.
			_ = e
		}
	}
	return nil
}

// DirCacheConfig sizes the per-home-node directory caches.
type DirCacheConfig struct {
	Entries int // entries per home node
	Assoc   int
}

// DirCache models the per-node on-chip directory entry caches the paper
// adds "to reduce the number of off-chip references": a hit means the
// directory state was on chip, a miss costs a memory-latency fetch. Only
// tags are modeled; authoritative state lives in Directory.
type DirCache struct {
	per []*cache.Cache

	Hits   uint64
	Misses uint64
}

// NewDirCache builds one tag cache per home node.
func NewDirCache(nodes int, cfg DirCacheConfig) *DirCache {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 {
		panic("coherence: invalid directory cache config")
	}
	dc := &DirCache{per: make([]*cache.Cache, nodes)}
	for i := range dc.per {
		dc.per[i] = cache.New(cache.Config{
			SizeBytes: cfg.Entries * sim.LineBytes,
			Assoc:     cfg.Assoc,
		})
	}
	return dc
}

// Access touches the directory cache at home node for addr. It returns
// true on a hit; on a miss the entry is installed (the fetch from memory
// is the caller's latency to account).
func (dc *DirCache) Access(home int, addr sim.Addr) bool {
	c := dc.per[home]
	if _, ok := c.Lookup(addr); ok {
		dc.Hits++
		return true
	}
	dc.Misses++
	c.Insert(addr, cache.Shared, 0)
	return false
}

// HitRate returns hits/(hits+misses), or 1 if untouched.
func (dc *DirCache) HitRate() float64 {
	t := dc.Hits + dc.Misses
	if t == 0 {
		return 1
	}
	return float64(dc.Hits) / float64(t)
}
