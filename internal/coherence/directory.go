// Package coherence implements the SGI-Origin-style directory protocol
// state used by the simulated CMP. Directory entries are striped across
// the chip's nodes by physical address (the paper's §IV-A); each node has
// a directory cache so that directory lookups normally stay on chip.
//
// The directory records, per cache line, which private caches (L1s) and
// which last-level cache banks hold the line and who owns a dirty copy.
// The system model in internal/core drives all transitions; this package
// owns the bookkeeping and the sharer/owner invariants.
package coherence

import (
	"fmt"
	"math/bits"

	"consim/internal/cache"
	"consim/internal/sim"
)

// Entry is the directory's view of one cache line. The 64-bit sharer
// masks support machines up to 64 cores / 64 bank groups (the paper's
// chip uses 16; larger machines serve the §VII scaling studies).
type Entry struct {
	// L1Sharers is a bitmask over cores whose private hierarchy (L0/L1)
	// holds the line.
	L1Sharers uint64
	// L2Sharers is a bitmask over LLC banks holding the line.
	L2Sharers uint64
	// L1Owner is the core holding the line dirty in its private levels,
	// or -1.
	L1Owner int8
	// L2Owner is the LLC bank holding the line dirty, or -1.
	L2Owner int8
}

// MaxNodes is the largest machine the sharer masks can describe.
const MaxNodes = 64

// NewEntry returns an entry with no sharers and no owner.
func NewEntry() Entry { return Entry{L1Owner: -1, L2Owner: -1} }

// OnChip reports whether any cache on the chip holds the line.
func (e *Entry) OnChip() bool { return e.L1Sharers != 0 || e.L2Sharers != 0 }

// Dirty reports whether some cache holds the line newer than memory.
func (e *Entry) Dirty() bool { return e.L1Owner >= 0 || e.L2Owner >= 0 }

// L1Count returns the number of private-cache sharers.
func (e *Entry) L1Count() int { return bits.OnesCount64(e.L1Sharers) }

// L2Count returns the number of LLC banks holding the line.
func (e *Entry) L2Count() int { return bits.OnesCount64(e.L2Sharers) }

// AddL1 records core c as a private-level sharer.
func (e *Entry) AddL1(c int) { e.L1Sharers |= 1 << uint(c) }

// DropL1 clears core c's private-level sharing (and ownership if held).
func (e *Entry) DropL1(c int) {
	e.L1Sharers &^= 1 << uint(c)
	if e.L1Owner == int8(c) {
		e.L1Owner = -1
	}
}

// HasL1 reports whether core c holds the line privately.
func (e *Entry) HasL1(c int) bool { return e.L1Sharers&(1<<uint(c)) != 0 }

// AddL2 records bank b as holding the line.
func (e *Entry) AddL2(b int) { e.L2Sharers |= 1 << uint(b) }

// DropL2 clears bank b (and its ownership if held).
func (e *Entry) DropL2(b int) {
	e.L2Sharers &^= 1 << uint(b)
	if e.L2Owner == int8(b) {
		e.L2Owner = -1
	}
}

// HasL2 reports whether bank b holds the line.
func (e *Entry) HasL2(b int) bool { return e.L2Sharers&(1<<uint(b)) != 0 }

// OtherL1 returns any private sharer other than core c, or -1.
func (e *Entry) OtherL1(c int) int {
	m := e.L1Sharers &^ (1 << uint(c))
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// OtherL2 returns any bank sharer other than bank b, or -1.
func (e *Entry) OtherL2(b int) int {
	m := e.L2Sharers &^ (1 << uint(b))
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m)
}

// dirSlot is one bucket of the directory's open-addressing table: the
// block ID and the entry stored by value. A sentinel key marks free
// buckets, so the slot packs to 32 bytes (two per cache line), stays
// pointer-free (out of the garbage collector's scan set) and makes the
// per-line state a single cache-line-friendly read.
type dirSlot struct {
	key uint64
	e   Entry
}

// dirEmptyKey marks a free slot. Block IDs are line addresses shifted
// right by the line bits, so the all-ones key is unreachable.
const dirEmptyKey = ^uint64(0)

// Directory is the chip-wide line directory. Entries live in a flat
// open-addressed hash table keyed by block ID (linear probing, fibonacci
// hashing, power-of-two capacity, backward-shift deletion — no
// tombstones). The striping across home nodes affects only where lookups
// are routed (latency), not where state is stored, so a single table
// keeps the implementation simple and the behaviour identical.
//
// This replaced a map[uint64]*Entry: the map allocated one heap Entry per
// tracked line (the dominant steady-state allocation of a whole
// simulation) and paid Go's generic map hashing on every lookup of the
// LLC transaction path. The flat table is allocation-free in steady
// state; see RefDirectory for the retired map implementation, kept as the
// oracle for the differential parity tests.
type Directory struct {
	nodes    int
	homeMask int // nodes-1 when nodes is a power of two, else -1

	slots []dirSlot
	shift uint // 64 - log2(len(slots)); fibonacci-hash shift
	used  int  // live slots
	grow  int  // growth threshold (3/4 load)

	// Lookups counts directory accesses; used by tests and reports.
	Lookups uint64
}

// dirInitialSlots is the starting capacity (matching the map hint the
// reference implementation used). Must be a power of two.
const dirInitialSlots = 1 << 16

// NewDirectory returns a directory striped across n home nodes.
func NewDirectory(n int) *Directory {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("coherence: invalid node count %d (1..%d)", n, MaxNodes))
	}
	hm := -1
	if n&(n-1) == 0 {
		hm = n - 1
	}
	d := &Directory{
		nodes:    n,
		homeMask: hm,
		slots:    newDirSlots(dirInitialSlots),
		shift:    64 - uint(bits.TrailingZeros(dirInitialSlots)),
		grow:     dirInitialSlots * 3 / 4,
	}
	return d
}

// newDirSlots allocates a table of n free slots.
func newDirSlots(n int) []dirSlot {
	s := make([]dirSlot, n)
	for i := range s {
		s[i].key = dirEmptyKey
	}
	return s
}

// Nodes returns the number of home nodes.
func (d *Directory) Nodes() int { return d.nodes }

// Home returns the node whose directory slice owns addr. Entries are
// striped by block address, matching the paper's configuration.
func (d *Directory) Home(addr sim.Addr) int {
	b := sim.BlockID(addr)
	if d.homeMask >= 0 {
		return int(b) & d.homeMask
	}
	return int(b % uint64(d.nodes))
}

// idx returns the home bucket of a block ID. Fibonacci (multiplicative)
// hashing: block IDs are dense and strided, so the golden-ratio multiply
// spreads them across the table before the power-of-two truncation.
func (d *Directory) idx(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> d.shift
}

// Get returns the entry for addr, creating an empty one if absent.
//
// Pointer validity: the returned *Entry points into the table and is
// invalidated by the next insertion (a Get of an untracked line may grow
// the table) or deletion (a Release may backward-shift neighbours). The
// protocol driver in internal/core re-fetches entries after any such
// operation instead of holding pointers across them.
func (d *Directory) Get(addr sim.Addr) *Entry {
	d.Lookups++
	key := sim.BlockID(addr)
	mask := uint64(len(d.slots) - 1)
	for i := d.idx(key); ; i = (i + 1) & mask {
		s := &d.slots[i]
		if s.key == key {
			return &s.e
		}
		if s.key == dirEmptyKey {
			if d.used >= d.grow {
				d.rehash()
				return d.insert(key)
			}
			d.used++
			s.key = key
			s.e = NewEntry()
			return &s.e
		}
	}
}

// insert places a key known to be absent and returns its entry.
func (d *Directory) insert(key uint64) *Entry {
	mask := uint64(len(d.slots) - 1)
	i := d.idx(key)
	for d.slots[i].key != dirEmptyKey {
		i = (i + 1) & mask
	}
	d.used++
	d.slots[i] = dirSlot{key: key, e: NewEntry()}
	return &d.slots[i].e
}

// rehash doubles the table and reinserts every live slot. The copy is a
// single pointer-free pass, amortized over the quarter-capacity of
// insertions that preceded it; in steady state (the directory is bounded
// by on-chip lines, which Release reclaims) growth stops entirely.
func (d *Directory) rehash() {
	old := d.slots
	d.slots = newDirSlots(2 * len(old))
	d.shift--
	d.grow = len(d.slots) * 3 / 4
	mask := uint64(len(d.slots) - 1)
	for oi := range old {
		if old[oi].key == dirEmptyKey {
			continue
		}
		i := d.idx(old[oi].key)
		for d.slots[i].key != dirEmptyKey {
			i = (i + 1) & mask
		}
		d.slots[i] = old[oi]
	}
}

// Probe returns the entry for addr without creating one. The returned
// pointer has the same validity contract as Get's.
func (d *Directory) Probe(addr sim.Addr) (*Entry, bool) {
	key := sim.BlockID(addr)
	mask := uint64(len(d.slots) - 1)
	for i := d.idx(key); ; i = (i + 1) & mask {
		s := &d.slots[i]
		if s.key == key {
			return &s.e, true
		}
		if s.key == dirEmptyKey {
			return nil, false
		}
	}
}

// Release removes the entry for addr if no cache holds the line; keeping
// the table bounded by on-chip state keeps long runs from growing without
// bound. Deletion is by backward shift: subsequent entries of the probe
// cluster slide into the vacated bucket, so the table carries no
// tombstones and lookups never scan dead slots.
func (d *Directory) Release(addr sim.Addr) {
	if i, ok := d.ProbeSlot(addr); ok {
		d.ReleaseSlot(i)
	}
}

// PrefetchProbe touches addr's home bucket without changing any state:
// one read pulls the bucket's host cache line in ahead of the demand
// Get/ProbeSlot, letting the warm walk overlap the table's DRAM miss
// with other arrays' instead of paying them serially. Collision chains
// may extend past the line read, but the first probe is the dominant
// cost at the table's 3/4 load bound. Returns the key bits read so
// callers can fold them into a sink and keep the load live.
func (d *Directory) PrefetchProbe(addr sim.Addr) uint64 {
	return d.slots[d.idx(sim.BlockID(addr))].key
}

// ProbeSlot locates addr's table slot without creating one. Together with
// EntryAt and ReleaseSlot it lets eviction paths probe, mutate, and
// release an entry with a single hash walk instead of one per step. The
// index obeys the same validity contract as entry pointers: any insertion
// or release may move slots.
//
// Structurally-frozen concurrency: while no Get, Release or ReleaseSlot
// runs, the walk reads only slot keys — which nothing mutates — so
// concurrent ProbeSlot/EntryAt calls from multiple goroutines are safe
// provided writers touch disjoint entries. The parallel engine's
// bank-sharded barrier replay relies on exactly this: it Get()s every
// replay target up front, defers releases, and lets per-group streams
// probe and mutate their own (provably disjoint) entries concurrently.
func (d *Directory) ProbeSlot(addr sim.Addr) (int, bool) {
	key := sim.BlockID(addr)
	mask := uint64(len(d.slots) - 1)
	for i := d.idx(key); ; i = (i + 1) & mask {
		s := &d.slots[i]
		if s.key == key {
			return int(i), true
		}
		if s.key == dirEmptyKey {
			return 0, false
		}
	}
}

// EntryAt returns the entry in slot i, as located by ProbeSlot.
func (d *Directory) EntryAt(i int) *Entry { return &d.slots[i].e }

// ReleaseSlot is Release for a line already located at slot i: it removes
// the entry if the line has left the chip.
func (d *Directory) ReleaseSlot(i int) {
	if d.slots[i].e.OnChip() {
		return
	}
	d.used--
	// Backward-shift: walk the cluster after the hole; any entry whose
	// home bucket lies at or before the hole (cyclically) moves into it,
	// re-opening the hole at its old position.
	mask := uint64(len(d.slots) - 1)
	hole := uint64(i)
	j := hole
	for {
		j = (j + 1) & mask
		s := &d.slots[j]
		if s.key == dirEmptyKey {
			break
		}
		if (j-d.idx(s.key))&mask >= (j-hole)&mask {
			d.slots[hole] = *s
			hole = j
		}
	}
	d.slots[hole] = dirSlot{key: dirEmptyKey}
}

// Len returns the number of tracked lines (lines with on-chip state plus
// any not yet released).
func (d *Directory) Len() int { return d.used }

// ReplicationSnapshot walks all tracked lines and reports how many are
// resident in at least one LLC bank and how many in two or more (the
// paper's Figure 12 metric).
func (d *Directory) ReplicationSnapshot() (resident, replicated int) {
	for i := range d.slots {
		if d.slots[i].key == dirEmptyKey {
			continue
		}
		n := d.slots[i].e.L2Count()
		if n >= 1 {
			resident++
		}
		if n >= 2 {
			replicated++
		}
	}
	return resident, replicated
}

// CheckInvariants validates protocol invariants over all entries and
// returns the first violation found. Tests call this after randomized
// traffic.
func (d *Directory) CheckInvariants() error {
	for i := range d.slots {
		if d.slots[i].key == dirEmptyKey {
			continue
		}
		b, e := d.slots[i].key, &d.slots[i].e
		if e.L1Owner >= 0 && !e.HasL1(int(e.L1Owner)) {
			return fmt.Errorf("block %#x: L1 owner %d not in sharer mask %016x", b, e.L1Owner, e.L1Sharers)
		}
		if e.L2Owner >= 0 && !e.HasL2(int(e.L2Owner)) {
			return fmt.Errorf("block %#x: L2 owner %d not in bank mask %016x", b, e.L2Owner, e.L2Sharers)
		}
	}
	return nil
}

// StateDigest folds the directory's complete state into h: every live
// slot's table position, key and entry fields in table order (the table
// layout is a deterministic function of the operation sequence, so two
// directories that processed identical traffic digest identically), plus
// the live count and the lookup counter.
func (d *Directory) StateDigest(h uint64) uint64 {
	for i := range d.slots {
		s := &d.slots[i]
		if s.key == dirEmptyKey {
			continue
		}
		h = cache.MixDigest(h, uint64(i))
		h = cache.MixDigest(h, s.key)
		h = cache.MixDigest(h, s.e.L1Sharers)
		h = cache.MixDigest(h, s.e.L2Sharers)
		h = cache.MixDigest(h, uint64(uint8(s.e.L1Owner))|uint64(uint8(s.e.L2Owner))<<8)
	}
	h = cache.MixDigest(h, uint64(d.used))
	h = cache.MixDigest(h, d.Lookups)
	return h
}

// DirCacheConfig sizes the per-home-node directory caches.
type DirCacheConfig struct {
	Entries int // entries per home node
	Assoc   int
}

// DirCache models the per-node on-chip directory entry caches the paper
// adds "to reduce the number of off-chip references": a hit means the
// directory state was on chip, a miss costs a memory-latency fetch. Only
// tags are modeled; authoritative state lives in Directory.
type DirCache struct {
	per []*cache.Cache

	Hits   uint64
	Misses uint64
}

// NewDirCache builds one tag cache per home node.
func NewDirCache(nodes int, cfg DirCacheConfig) *DirCache {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 {
		panic("coherence: invalid directory cache config")
	}
	dc := &DirCache{per: make([]*cache.Cache, nodes)}
	for i := range dc.per {
		dc.per[i] = cache.New(cache.Config{
			SizeBytes: cfg.Entries * sim.LineBytes,
			Assoc:     cfg.Assoc,
		})
	}
	return dc
}

// Access touches the directory cache at home node for addr. It returns
// true on a hit; on a miss the entry is installed (the fetch from memory
// is the caller's latency to account).
func (dc *DirCache) Access(home int, addr sim.Addr) bool {
	c := dc.per[home]
	if _, ok := c.Lookup(addr); ok {
		dc.Hits++
		return true
	}
	dc.Misses++
	c.Insert(addr, cache.Shared, 0)
	return false
}

// WarmAccess is Access for the sampling engine's functional-warming
// walk: identical hit/miss accounting and replacement behaviour, but
// the tag cache's lookup and miss-fill are fused into one set scan
// (cache.LookupOrInsert) since warming discards the Way handle anyway.
func (dc *DirCache) WarmAccess(home int, addr sim.Addr) bool {
	if dc.per[home].LookupOrInsert(addr, cache.Shared, 0) {
		dc.Hits++
		return true
	}
	dc.Misses++
	return false
}

// PrefetchSet touches home's tag-cache set for addr without changing any
// state, pulling the set's host cache lines in ahead of the warm walk's
// demand WarmAccess. Returns the bits read (keep-live sink protocol, as
// Directory.PrefetchProbe).
func (dc *DirCache) PrefetchSet(home int, addr sim.Addr) uint64 {
	return dc.per[home].PrefetchSet(addr)
}

// Peek reports whether home's directory cache currently holds addr
// without touching replacement state, counters or contents — the
// read-only probe the parallel engine's in-window latency estimator uses
// against the frozen shared tier.
func (dc *DirCache) Peek(home int, addr sim.Addr) bool {
	_, ok := dc.per[home].Probe(addr)
	return ok
}

// StateDigest folds every home node's tag-cache state plus the hit/miss
// accounting into h.
func (dc *DirCache) StateDigest(h uint64) uint64 {
	for _, c := range dc.per {
		h = c.StateDigest(h)
	}
	h = cache.MixDigest(h, dc.Hits)
	h = cache.MixDigest(h, dc.Misses)
	return h
}

// Accesses returns total lookups (hits + misses), for live gauges.
func (dc *DirCache) Accesses() uint64 { return dc.Hits + dc.Misses }

// HitRate returns hits/(hits+misses), or 1 if untouched.
func (dc *DirCache) HitRate() float64 {
	t := dc.Hits + dc.Misses
	if t == 0 {
		return 1
	}
	return float64(dc.Hits) / float64(t)
}
