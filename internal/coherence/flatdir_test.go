package coherence

import (
	"math/bits"
	"testing"

	"consim/internal/sim"
)

// diffOps drives the flat Directory and the map-backed RefDirectory with
// an identical randomized stream of add/drop/evict/snapshot operations
// and asserts they agree at every step. Operations are constructed so the
// protocol invariants stay valid (owners are always sharers), matching
// how internal/core drives the directory.
func diffOps(t *testing.T, nodes int, ops int, seed uint64) {
	t.Helper()
	flat := NewDirectory(nodes)
	ref := NewRefDirectory(nodes)
	rng := sim.NewRNG(seed)

	// Block pool large enough to force several table growths past the
	// 64Ki initial capacity and dense enough to build probe clusters.
	const poolBits = 18
	addrOf := func() sim.Addr {
		return sim.Addr(rng.Uint64n(1<<poolBits)) << sim.LineShift
	}

	for op := 0; op < ops; op++ {
		addr := addrOf()
		switch rng.Intn(10) {
		case 0, 1, 2: // private fill, sometimes taking ownership
			c := rng.Intn(nodes)
			fe, re := flat.Get(addr), ref.Get(addr)
			fe.AddL1(c)
			re.AddL1(c)
			if rng.Bool(0.3) {
				fe.L1Owner = int8(c)
				re.L1Owner = int8(c)
			}
		case 3, 4, 5: // LLC fill, sometimes dirty
			b := rng.Intn(nodes)
			fe, re := flat.Get(addr), ref.Get(addr)
			fe.AddL2(b)
			re.AddL2(b)
			if rng.Bool(0.3) {
				fe.L2Owner = int8(b)
				re.L2Owner = int8(b)
			}
		case 6: // private drop + release
			c := rng.Intn(nodes)
			if fe, ok := flat.Probe(addr); ok {
				fe.DropL1(c)
			}
			if re, ok := ref.Probe(addr); ok {
				re.DropL1(c)
			}
			flat.Release(addr)
			ref.Release(addr)
		case 7: // bank drop + release
			b := rng.Intn(nodes)
			if fe, ok := flat.Probe(addr); ok {
				fe.DropL2(b)
			}
			if re, ok := ref.Probe(addr); ok {
				re.DropL2(b)
			}
			flat.Release(addr)
			ref.Release(addr)
		case 8: // full evict: clear every sharer, then release
			if fe, ok := flat.Probe(addr); ok {
				for m := fe.L1Sharers; m != 0; m &= m - 1 {
					fe.DropL1(bits.TrailingZeros64(m))
				}
				for m := fe.L2Sharers; m != 0; m &= m - 1 {
					fe.DropL2(bits.TrailingZeros64(m))
				}
			}
			if re, ok := ref.Probe(addr); ok {
				for m := re.L1Sharers; m != 0; m &= m - 1 {
					re.DropL1(bits.TrailingZeros64(m))
				}
				for m := re.L2Sharers; m != 0; m &= m - 1 {
					re.DropL2(bits.TrailingZeros64(m))
				}
			}
			flat.Release(addr)
			ref.Release(addr)
		case 9: // probe parity on a random address
			fe, fok := flat.Probe(addr)
			re, rok := ref.Probe(addr)
			if fok != rok {
				t.Fatalf("op %d: Probe(%#x) presence: flat=%v ref=%v", op, addr, fok, rok)
			}
			if fok && *fe != *re {
				t.Fatalf("op %d: Probe(%#x) entry: flat=%+v ref=%+v", op, addr, *fe, *re)
			}
		}

		if flat.Len() != ref.Len() {
			t.Fatalf("op %d: Len: flat=%d ref=%d", op, flat.Len(), ref.Len())
		}
		if op%4096 == 0 {
			fr, fp := flat.ReplicationSnapshot()
			rr, rp := ref.ReplicationSnapshot()
			if fr != rr || fp != rp {
				t.Fatalf("op %d: snapshot: flat=(%d,%d) ref=(%d,%d)", op, fr, fp, rr, rp)
			}
			if ferr, rerr := flat.CheckInvariants(), ref.CheckInvariants(); (ferr == nil) != (rerr == nil) {
				t.Fatalf("op %d: invariants: flat=%v ref=%v", op, ferr, rerr)
			}
		}
	}

	// Final sweep: every reference entry must exist in the flat table
	// with identical state, and the counts must match (no extras).
	if flat.Len() != ref.Len() {
		t.Fatalf("final Len: flat=%d ref=%d", flat.Len(), ref.Len())
	}
	for b, re := range ref.entries {
		fe, ok := flat.Probe(sim.Addr(b) << sim.LineShift)
		if !ok {
			t.Fatalf("block %#x in ref but not in flat", b)
		}
		if *fe != *re {
			t.Fatalf("block %#x: flat=%+v ref=%+v", b, *fe, *re)
		}
	}
	fr, fp := flat.ReplicationSnapshot()
	rr, rp := ref.ReplicationSnapshot()
	if fr != rr || fp != rp {
		t.Fatalf("final snapshot: flat=(%d,%d) ref=(%d,%d)", fr, fp, rr, rp)
	}
	if err := flat.CheckInvariants(); err != nil {
		t.Fatalf("flat invariants: %v", err)
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Fatalf("ref invariants: %v", err)
	}
	if flat.Lookups != ref.Lookups {
		t.Fatalf("Lookups: flat=%d ref=%d", flat.Lookups, ref.Lookups)
	}
}

func TestDirectoryDifferential16Nodes(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	diffOps(t, 16, n, 0xD1FF16)
}

func TestDirectoryDifferential64Nodes(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	diffOps(t, 64, n, 0xD1FF64)
}

// TestDirectoryGrowth fills far past the initial capacity and verifies
// every entry survives the rehashes intact.
func TestDirectoryGrowth(t *testing.T) {
	d := NewDirectory(16)
	const n = 200_000 // > 2 doublings past the 64Ki initial table
	for i := 0; i < n; i++ {
		e := d.Get(sim.Addr(i) << sim.LineShift)
		e.AddL2(i % 16)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n; i++ {
		e, ok := d.Probe(sim.Addr(i) << sim.LineShift)
		if !ok || !e.HasL2(i%16) {
			t.Fatalf("entry %d lost after growth (ok=%v)", i, ok)
		}
	}
	res, repl := d.ReplicationSnapshot()
	if res != n || repl != 0 {
		t.Fatalf("snapshot = (%d,%d), want (%d,0)", res, repl, n)
	}
}

// TestDirectoryBackwardShift deletes from the middle of dense probe
// clusters and verifies every remaining key is still reachable — the
// property backward-shift deletion must preserve without tombstones.
func TestDirectoryBackwardShift(t *testing.T) {
	d := NewDirectory(16)
	rng := sim.NewRNG(42)
	live := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		b := rng.Uint64n(1 << 14) // dense: long shared clusters
		addr := sim.Addr(b) << sim.LineShift
		if live[b] && rng.Bool(0.5) {
			e, ok := d.Probe(addr)
			if !ok {
				t.Fatalf("live block %#x not found", b)
			}
			e.DropL2(0)
			d.Release(addr)
			delete(live, b)
		} else {
			d.Get(addr).AddL2(0)
			live[b] = true
		}
	}
	if d.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(live))
	}
	for b := range live {
		if _, ok := d.Probe(sim.Addr(b) << sim.LineShift); !ok {
			t.Fatalf("block %#x unreachable after deletions", b)
		}
	}
}

// TestDirectoryReleaseKeepsOnChip mirrors the reference semantics:
// Release of a line still held anywhere is a no-op.
func TestDirectoryReleaseKeepsOnChip(t *testing.T) {
	d := NewDirectory(4)
	e := d.Get(0x1000)
	e.AddL1(2)
	d.Release(0x1000)
	if _, ok := d.Probe(0x1000); !ok {
		t.Fatal("Release dropped an L1-resident line")
	}
	e, _ = d.Probe(0x1000)
	e.DropL1(2)
	d.Release(0x1000)
	if _, ok := d.Probe(0x1000); ok {
		t.Fatal("Release kept an off-chip line")
	}
	// Releasing an untracked line is a no-op, not a fault.
	d.Release(0xDEAD000)
}

// TestDirectorySteadyStateAllocs asserts the hot Get/mutate/Release cycle
// allocates nothing once the table exists — the property that removes the
// directory from the simulator's GC profile.
func TestDirectorySteadyStateAllocs(t *testing.T) {
	d := NewDirectory(16)
	i := uint64(0)
	allocs := testing.AllocsPerRun(10_000, func() {
		addr := sim.Addr(i%50_000) << sim.LineShift
		i++
		e := d.Get(addr)
		e.AddL2(int(i % 16))
		e.DropL2(int(i % 16))
		d.Release(addr)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f objects per op, want 0", allocs)
	}
}
