package cache

// Way partitioning implements the cache-QoS mechanism of the paper's
// related work (§VI: Kim/Suh fair sharing, Iyer CQoS) and its conclusion
// that consolidation "should feasibly extend from functional isolation
// into performance isolation": each VM is limited to a quota of ways per
// set, so one workload cannot evict a co-runner's entire allocation.
//
// Victim selection under a partition:
//
//  1. if the inserting VM holds at least its quota of ways in the set,
//     evict the VM's own LRU line (it lives within its allocation);
//  2. otherwise evict the LRU line of any VM holding more than its quota
//     (reclaiming over-occupancy);
//  3. otherwise fall back to global LRU (free or unclaimed capacity).

// SetPartition installs per-VM way quotas; quota[vm] is the maximum ways
// per set for that VM ID. A nil slice removes the partition; VMs beyond
// the slice are unconstrained. Quotas below 1 are treated as 1.
func (c *Cache) SetPartition(quota []int) {
	if quota == nil {
		c.quota = nil
		return
	}
	q := make([]int, len(quota))
	for i, v := range quota {
		if v < 1 {
			v = 1
		}
		q[i] = v
	}
	c.quota = q
}

// Partitioned reports whether a way partition is active.
func (c *Cache) Partitioned() bool { return c.quota != nil }

// quotaOf returns vm's way quota, or the full associativity when
// unconstrained.
func (c *Cache) quotaOf(vm uint8) int {
	if c.quota == nil || int(vm) >= len(c.quota) {
		return c.cfg.Assoc
	}
	return c.quota[vm]
}

// partitionVictim picks the way index (within the set starting at slot
// base) to evict for an insertion by vm, honoring quotas. It returns -1
// if an invalid way exists (no eviction needed).
func (c *Cache) partitionVictim(base int, vm uint8) int {
	var counts [256]int
	lruOwn, lruOver, lruAny := -1, -1, -1
	m := c.meta[base : base+c.assoc : base+c.assoc]
	vms := c.vms[base : base+c.assoc : base+c.assoc]
	for i := range m {
		if m[i].tag == invalidTag {
			return -1
		}
		counts[vms[i]]++
		if lruAny < 0 || m[i].used < m[lruAny].used {
			lruAny = i
		}
	}
	for i := range m {
		if vms[i] == vm && (lruOwn < 0 || m[i].used < m[lruOwn].used) {
			lruOwn = i
		}
		if counts[vms[i]] > c.quotaOf(vms[i]) && (lruOver < 0 || m[i].used < m[lruOver].used) {
			lruOver = i
		}
	}
	if lruOwn >= 0 && counts[vm] >= c.quotaOf(vm) {
		return lruOwn
	}
	if lruOver >= 0 {
		return lruOver
	}
	return lruAny
}
