package cache

// MixDigest folds v into the running FNV-1a-style digest h. Shared by
// the cache, coherence and core state digests the warm-walk differential
// test compares (warming must leave bit-identical state, so a cheap
// order-sensitive fold is enough — no cryptographic strength needed).
func MixDigest(h, v uint64) uint64 {
	h ^= v
	return h * 1099511628211
}

// DigestSeed is the conventional starting value for a state digest (the
// FNV-1a offset basis).
const DigestSeed = 14695981039346656037

// StateDigest folds the cache's complete observable state into h: every
// way's tag, LRU stamp, coherence state and VM tag in slot order, the
// LRU clock, and the access counters. Two caches that processed the
// same operation sequence digest identically; any divergence in
// replacement order, contents or accounting changes the digest.
func (c *Cache) StateDigest(h uint64) uint64 {
	for i := range c.meta {
		h = MixDigest(h, uint64(c.meta[i].tag)|uint64(c.meta[i].used)<<32)
		h = MixDigest(h, uint64(c.states[i])|uint64(c.vms[i])<<8)
	}
	h = MixDigest(h, uint64(c.tick))
	h = MixDigest(h, c.Accesses)
	h = MixDigest(h, c.Hits)
	h = MixDigest(h, c.Misses)
	h = MixDigest(h, c.Evictions)
	return h
}
