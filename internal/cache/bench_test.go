package cache

import (
	"testing"

	"consim/internal/sim"
)

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Assoc: 16})
	for i := 0; i < 1024; i++ {
		c.Insert(sim.Addr(i*64), Shared, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(sim.Addr((i % 1024) * 64))
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Assoc: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(sim.Addr(uint64(i)*64 + 1<<30))
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New(Config{SizeBytes: 64 << 10, Assoc: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Probe(sim.Addr(i * 64)); !ok {
			c.Insert(sim.Addr(i*64), Shared, 0)
		}
	}
}
