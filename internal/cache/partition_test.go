package cache

import (
	"testing"

	"consim/internal/sim"
)

// part builds a 1-set, 4-way cache partitioned 2/2 between VMs 0 and 1.
func part(t *testing.T) *Cache {
	t.Helper()
	c := New(Config{SizeBytes: 64 * 4, Assoc: 4})
	c.SetPartition([]int{2, 2})
	return c
}

func TestPartitionEvictsOwnLRUAtQuota(t *testing.T) {
	c := part(t)
	c.Insert(0*64, Shared, 0)
	c.Insert(1*64, Shared, 0) // vm0 at quota
	c.Insert(2*64, Shared, 1)
	c.Insert(3*64, Shared, 1) // vm1 at quota
	// vm0 inserting again must evict vm0's LRU (block 0), not vm1's.
	victim, evicted, _ := c.Insert(4*64, Shared, 0)
	if !evicted || victim.VM != 0 || victim.Tag != 0 {
		t.Fatalf("victim = %+v (evicted=%v), want vm0 block 0", victim, evicted)
	}
	occ := c.OccupancyByVM(1)
	if occ[0] != 2 || occ[1] != 2 {
		t.Errorf("occupancy after partitioned eviction = %v", occ)
	}
}

func TestPartitionReclaimsOverQuota(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 4, Assoc: 4})
	// Fill entirely with vm0 while unpartitioned.
	for i := 0; i < 4; i++ {
		c.Insert(sim.Addr(i*64), Shared, 0)
	}
	c.SetPartition([]int{2, 2})
	// vm1 under quota inserting must reclaim from the over-quota vm0.
	victim, evicted, _ := c.Insert(4*64, Shared, 1)
	if !evicted || victim.VM != 0 {
		t.Fatalf("victim = %+v, want a vm0 line", victim)
	}
}

func TestPartitionFillsInvalidWaysFirst(t *testing.T) {
	c := part(t)
	c.Insert(0*64, Shared, 0)
	_, evicted, _ := c.Insert(1*64, Shared, 1)
	if evicted {
		t.Fatal("evicted despite free ways")
	}
}

func TestPartitionUnlistedVMUnconstrained(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 4, Assoc: 4})
	c.SetPartition([]int{1}) // only vm0 constrained
	for i := 0; i < 4; i++ {
		c.Insert(sim.Addr(i*64), Shared, 3) // vm3 may take everything
	}
	if c.Resident() != 4 {
		t.Errorf("vm3 held to a phantom quota: %d resident", c.Resident())
	}
	// vm0 may only displace one way at a time from its own allocation
	// once it reaches quota 1.
	c.Insert(4*64, Shared, 0)            // reclaims an over-quota vm3 line
	v, _, _ := c.Insert(5*64, Shared, 0) // now at quota: evicts own
	if v.VM != 0 {
		t.Errorf("vm0 evicted vm%d's line beyond its quota", v.VM)
	}
}

func TestPartitionRemoval(t *testing.T) {
	c := part(t)
	if !c.Partitioned() {
		t.Fatal("partition not active")
	}
	c.SetPartition(nil)
	if c.Partitioned() {
		t.Fatal("partition still active after removal")
	}
	// Back to global LRU.
	for i := 0; i < 5; i++ {
		if _, ok := c.Probe(sim.Addr(i * 64)); !ok {
			c.Insert(sim.Addr(i*64), Shared, uint8(i%2))
		}
	}
}

func TestPartitionQuotaFloor(t *testing.T) {
	// Zero quotas clamp to one way. The partition is work-conserving:
	// free ways are usable by anyone, but once the set fills, an
	// at-quota VM recycles its own allocation.
	c := New(Config{SizeBytes: 64 * 4, Assoc: 4})
	c.SetPartition([]int{0, 0})
	for i := 0; i < 4; i++ {
		c.Insert(sim.Addr(i*64), Shared, 0) // over-occupies free ways
	}
	victim, evicted, _ := c.Insert(4*64, Shared, 0)
	if !evicted || victim.VM != 0 {
		t.Fatalf("quota floor broken: %+v %v", victim, evicted)
	}
	// vm1 reclaims from the over-quota vm0 down to its own guarantee.
	victim, evicted, _ = c.Insert(5*64, Shared, 1)
	if !evicted || victim.VM != 0 {
		t.Fatalf("reclaim failed: %+v %v", victim, evicted)
	}
}
