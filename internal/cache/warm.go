// Warm-path entry points for the sampling engine's functional-warming
// walk. Fast-forward references only need a cache's *contents* to
// evolve — tags, LRU order, states, counters — exactly as the detailed
// walk would evolve them; they never consume the Way handles or latency
// the regular API shapes itself around. These fused calls keep the
// bookkeeping bit-identical to the Lookup/Insert pairs they replace
// while halving the set scans on the paths warming actually takes.
package cache

import "consim/internal/sim"

// WarmLookup is Lookup with the miss-fill decision fused in: on a hit it
// behaves exactly like Lookup (counters, MRU rotation, LRU refresh); on
// a miss it additionally returns the way Insert would victimize for an
// insertion by vm, chosen in the same scan. The victim way is valid only
// while nothing touches this cache instance (other instances are fine) —
// complete the fill with WarmInsertAt before the next operation here.
func (c *Cache) WarmLookup(addr sim.Addr, vm uint8) (w Way, hit bool, victim Way) {
	t := blockOf(addr)
	c.Accesses++
	base := c.setBase(t)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	if m[0].tag == t {
		// MRU fast path: way 0 holds the set's last-hit line.
		m[0].used = c.tickNext()
		c.Hits++
		return Way(base), true, -1
	}
	// One pass does both jobs: the hit scan over ways 1..assoc-1 and,
	// for the miss outcome, Insert's exact victim choice — first invalid
	// way wins (way 0 included), else least-recently-used (first index
	// on ties). A hit abandons the victim candidates unused, so tracking
	// them costs the miss path nothing extra and saves it a second scan.
	inv := -1
	lru := 0
	minUsed := m[0].used
	if m[0].tag == invalidTag {
		inv = 0
	}
	for i := 1; i < len(m); i++ {
		if m[i].tag == t {
			// Rotate the hit line into way 0, exactly as Lookup does.
			j := base + i
			m[i].tag = m[0].tag
			m[0].tag = t
			c.states[j], c.states[base] = c.states[base], c.states[j]
			c.vms[j], c.vms[base] = c.vms[base], c.vms[j]
			m[i].used = m[0].used
			m[0].used = c.tickNext()
			c.Hits++
			return Way(base), true, -1
		}
		if inv < 0 {
			if m[i].tag == invalidTag {
				inv = i
			} else if m[i].used < minUsed {
				lru, minUsed = i, m[i].used
			}
		}
	}
	c.Misses++
	wi := lru
	if inv >= 0 {
		wi = inv
	}
	if c.quota != nil && m[wi].tag != invalidTag {
		if pv := c.partitionVictim(base, vm); pv >= 0 {
			wi = pv
		} else {
			// An invalid way exists; find it.
			for i := range m {
				if m[i].tag == invalidTag {
					wi = i
					break
				}
			}
		}
	}
	return -1, false, Way(base + wi)
}

// WarmInsertAt completes a WarmLookup miss: it installs addr at the
// victim way WarmLookup chose, with Insert's exact bookkeeping
// (eviction capture and counter, LRU stamp). The set and the LRU clock
// must be untouched since the WarmLookup that produced victim.
func (c *Cache) WarmInsertAt(victim Way, addr sim.Addr, st State, vm uint8) (out Line, evicted bool) {
	j := int(victim)
	if c.meta[j].tag != invalidTag {
		out = Line{Tag: sim.Addr(uint64(c.meta[j].tag) << sim.LineShift), State: c.states[j], VM: c.vms[j]}
		evicted = true
		c.Evictions++
	}
	c.meta[j] = slot{tag: blockOf(addr), used: c.tickNext()}
	c.states[j] = st
	c.vms[j] = vm
	return out, evicted
}

// LookupOrInsert fuses Lookup with a miss-fill in one set scan: a hit is
// exactly Lookup, a miss installs the line exactly as Insert would
// (evicting silently) and reports the miss. This is the whole access
// protocol of the directory tag caches, which discard Way handles and
// eviction victims alike.
func (c *Cache) LookupOrInsert(addr sim.Addr, st State, vm uint8) bool {
	_, hit, victim := c.WarmLookup(addr, vm)
	if hit {
		return true
	}
	c.WarmInsertAt(victim, addr, st, vm)
	return false
}

// PrefetchSet touches addr's set metadata without changing any state:
// reading the set's first and last way slots pulls the scan's host cache
// lines in ahead of the demand Lookup, so the warm walk can overlap the
// DRAM misses of independent arrays instead of paying them serially. It
// returns the tag bits read so callers can fold them into a sink and
// keep the loads live.
func (c *Cache) PrefetchSet(addr sim.Addr) uint64 {
	base := c.setBase(blockOf(addr))
	return uint64(c.meta[base].tag) + uint64(c.meta[base+c.assoc-1].tag)
}

// PeekVictimTag predicts, without changing any state, the line an
// insertion of addr by vm would evict from addr's set right now: the
// same scan as Insert's victim choice (first free way wins — reported
// as no eviction — else LRU, with the partition override), but
// read-only. The warm walk's lookahead prefetch uses it to start the
// victim's directory walk a whole rotation before the eviction happens;
// a stale prediction only wastes the prefetched line.
func (c *Cache) PeekVictimTag(addr sim.Addr, vm uint8) (sim.Addr, bool) {
	base := c.setBase(blockOf(addr))
	m := c.meta[base : base+c.assoc : base+c.assoc]
	wi := -1
	minUsed := ^uint32(0)
	for i := range m {
		if m[i].tag == invalidTag {
			return 0, false
		}
		if u := m[i].used; wi < 0 || u < minUsed {
			wi, minUsed = i, u
		}
	}
	if c.quota != nil {
		if pv := c.partitionVictim(base, vm); pv >= 0 {
			wi = pv
		}
	}
	return sim.Addr(uint64(m[wi].tag) << sim.LineShift), true
}
