package cache

import (
	"testing"
	"testing/quick"

	"consim/internal/sim"
)

func small() *Cache {
	// 4 sets x 2 ways of 64B lines = 512B.
	return New(Config{SizeBytes: 512, Assoc: 2, Latency: 3})
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{SizeBytes: 512, Assoc: 2}, true},
		{Config{SizeBytes: 0, Assoc: 2}, false},
		{Config{SizeBytes: 512, Assoc: 0}, false},
		{Config{SizeBytes: 100, Assoc: 2}, false},    // not line multiple
		{Config{SizeBytes: 64 * 6, Assoc: 2}, false}, // 3 sets, not pow2
		{Config{SizeBytes: 64 * 6, Assoc: 3}, true},  // 2 sets
		{Config{SizeBytes: 64, Assoc: 1}, true},
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, Assoc: 3})
}

func TestLookupMissThenHit(t *testing.T) {
	c := small()
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000, Shared, 1)
	w, ok := c.Lookup(0x1000)
	if !ok {
		t.Fatal("miss after insert")
	}
	if c.State(w) != Shared || c.WayVM(w) != 1 {
		t.Errorf("line = %v/%d", c.State(w), c.WayVM(w))
	}
	if c.WayTag(w) != 0x1000 {
		t.Errorf("WayTag = %#x", c.WayTag(w))
	}
	if c.Accesses != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats = %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
}

func TestLookupSameLineDifferentOffsets(t *testing.T) {
	c := small()
	c.Insert(0x1000, Exclusive, 0)
	if _, ok := c.Lookup(0x103f); !ok {
		t.Error("offset within line missed")
	}
	if _, ok := c.Lookup(0x1040); ok {
		t.Error("next line hit spuriously")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways per set
	// Three lines in the same set (set stride = 4 sets * 64B = 256B).
	a, b, d := sim.Addr(0x0000), sim.Addr(0x0100), sim.Addr(0x0200)
	c.Insert(a, Shared, 0)
	c.Insert(b, Shared, 0)
	c.Lookup(a) // refresh a: b is now LRU
	victim, evicted, _ := c.Insert(d, Shared, 0)
	if !evicted || victim.Tag != b {
		t.Fatalf("evicted %v (%#x), want %#x", evicted, victim.Tag, b)
	}
	if _, ok := c.Probe(a); !ok {
		t.Error("recently used line evicted")
	}
}

func TestInsertDoubleInsertPanics(t *testing.T) {
	c := small()
	c.Insert(0x40, Shared, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(0x40, Shared, 0)
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(0x80, Modified, 2)
	old, ok := c.Invalidate(0x80)
	if !ok || old.State != Modified || old.VM != 2 {
		t.Fatalf("Invalidate = %+v, %v", old, ok)
	}
	if _, ok := c.Probe(0x80); ok {
		t.Error("line still resident after invalidate")
	}
	if _, ok := c.Invalidate(0x80); ok {
		t.Error("second invalidate reported a line")
	}
}

func TestProbeDoesNotTouchStats(t *testing.T) {
	c := small()
	c.Insert(0xc0, Shared, 0)
	before := c.Accesses
	c.Probe(0xc0)
	c.Probe(0xdead)
	if c.Accesses != before {
		t.Error("Probe counted as access")
	}
}

func TestOccupancyByVM(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 16, Assoc: 4})
	for i := 0; i < 6; i++ {
		c.Insert(sim.Addr(i*64), Shared, uint8(i%2))
	}
	occ := c.OccupancyByVM(1)
	if occ[0] != 3 || occ[1] != 3 {
		t.Errorf("occupancy = %v", occ)
	}
	if c.Resident() != 6 {
		t.Errorf("Resident = %d", c.Resident())
	}
}

func TestForEachVisitsAll(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 16, Assoc: 4})
	want := map[sim.Addr]bool{}
	for i := 0; i < 5; i++ {
		a := sim.Addr(i * 64)
		c.Insert(a, Shared, 0)
		want[a] = true
	}
	got := map[sim.Addr]bool{}
	c.ForEach(func(l *Line) { got[l.Tag] = true })
	if len(got) != len(want) {
		t.Errorf("ForEach visited %d, want %d", len(got), len(want))
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := small()
	c.Lookup(0) // miss
	c.Insert(0, Shared, 0)
	c.Lookup(0) // hit
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("MissRate = %v", mr)
	}
	c.ResetStats()
	if c.Accesses != 0 || c.MissRate() != 0 {
		t.Error("ResetStats incomplete")
	}
	if _, ok := c.Probe(0); !ok {
		t.Error("ResetStats dropped contents")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Owned: "O"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if !Modified.Dirty() || !Owned.Dirty() || Shared.Dirty() || Exclusive.Dirty() {
		t.Error("Dirty() classification wrong")
	}
}

// TestAgainstReferenceModel drives the cache and a brute-force reference
// (map + LRU timestamps) with random operations and checks that residency
// always agrees.
func TestAgainstReferenceModel(t *testing.T) {
	type ref struct {
		used uint64
		vm   uint8
	}
	f := func(ops []uint16, seed uint64) bool {
		c := New(Config{SizeBytes: 64 * 32, Assoc: 4}) // 8 sets
		model := map[sim.Addr]ref{}
		tick := uint64(0)
		setOf := func(a sim.Addr) uint64 { return (uint64(a) >> 6) & 7 }
		for _, op := range ops {
			tick++
			addr := sim.Addr(op%256) * 64
			switch op % 3 {
			case 0: // lookup
				_, chit := c.Lookup(addr)
				_, mhit := model[addr]
				if chit != mhit {
					return false
				}
				if chit {
					m := model[addr]
					m.used = tick
					model[addr] = m
				}
			case 1: // insert if absent
				if _, ok := model[addr]; ok {
					continue
				}
				// Evict model's LRU of the set if full.
				n := 0
				var lruA sim.Addr
				var lruT uint64 = ^uint64(0)
				for a, m := range model {
					if setOf(a) != setOf(addr) {
						continue
					}
					n++
					if m.used < lruT {
						lruT, lruA = m.used, a
					}
				}
				if n == 4 {
					delete(model, lruA)
				}
				c.Insert(addr, Shared, 0)
				model[addr] = ref{used: tick}
			case 2: // invalidate
				_, chad := c.Invalidate(addr)
				_, mhad := model[addr]
				if chad != mhad {
					return false
				}
				delete(model, addr)
			}
		}
		// Final residency must agree exactly.
		if c.Resident() != len(model) {
			return false
		}
		for a := range model {
			if _, ok := c.Probe(a); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
