// Package cache implements the set-associative cache arrays used at every
// level of the simulated hierarchy (L0, L1 and the last-level cache
// banks). The arrays are timing-free: they record *content* (which lines
// are resident, their coherence state, and which virtual machine brought
// them in); all latency accounting lives in the system model that drives
// them.
package cache

import (
	"fmt"

	"consim/internal/sim"
)

// State is the coherence state of a resident line. The protocol package
// drives transitions; the cache only stores the value.
type State uint8

const (
	// Invalid lines are not resident (only appears transiently).
	Invalid State = iota
	// Shared lines are clean and may be resident in other caches.
	Shared
	// Exclusive lines are clean and resident only here.
	Exclusive
	// Modified lines are dirty and resident only here.
	Modified
	// Owned lines are dirty but may have Shared copies elsewhere; the
	// owner supplies data on remote misses (SGI-Origin-style dirty
	// sharing).
	Owned
)

// String returns the canonical one-letter protocol name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether a line in state s holds data newer than memory.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Line is one resident cache line.
type Line struct {
	Tag   sim.Addr // full line address (not a partial tag; simplicity over space)
	State State
	VM    uint8 // virtual machine that inserted the line (occupancy accounting)
	used  uint64
	valid bool
}

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Assoc     int
	Latency   sim.Cycle
}

// Validate reports whether the geometry is realizable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive size or associativity (%d bytes, %d-way)", c.SizeBytes, c.Assoc)
	}
	lines := c.SizeBytes / sim.LineBytes
	if lines*sim.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %dB not a multiple of the %dB line", c.SizeBytes, sim.LineBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// invalidTag marks an empty way in the tag mirror. Line tags are
// line-aligned addresses (low bits zero), so the all-ones value can never
// collide with a real tag.
const invalidTag = ^uint64(0)

// Cache is a set-associative, LRU-replacement cache array.
type Cache struct {
	cfg     Config
	sets    []set
	setMask uint64
	tick    uint64 // global LRU clock
	quota   []int  // per-VM way quotas (nil = unpartitioned)

	// tags mirrors the resident tags contiguously (tags[set*assoc+way],
	// invalidTag when empty) so the hot Lookup/Probe scans touch 8 bytes
	// per way instead of a 32-byte Line; the LLC's 16-way set scan is one
	// of the simulator's hottest loops. Insert and Invalidate keep the
	// mirror in sync with the ways.
	tags []uint64

	// Stats are plain counters; the driving model reads them directly.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type set struct {
	ways []Line
}

// New builds a cache from cfg. It panics on an invalid configuration:
// configurations are produced by this module's own experiment code, so a
// bad one is a programming error, not an input error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nLines := cfg.SizeBytes / sim.LineBytes
	nSets := nLines / cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, nSets),
		setMask: uint64(nSets - 1),
		tags:    make([]uint64, nLines),
	}
	ways := make([]Line, nLines)
	for i := range c.sets {
		c.sets[i].ways = ways[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the access latency of this array.
func (c *Cache) Latency() sim.Cycle { return c.cfg.Latency }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.sets) * c.cfg.Assoc }

func (c *Cache) setIndex(line sim.Addr) uint64 {
	return (uint64(line) >> sim.LineShift) & c.setMask
}

// Lookup probes for the line containing addr. On a hit it refreshes LRU
// state and returns the resident line. It does not allocate on miss.
func (c *Cache) Lookup(addr sim.Addr) (*Line, bool) {
	line := sim.LineAddr(addr)
	c.Accesses++
	si := c.setIndex(line)
	base := int(si) * c.cfg.Assoc
	for i, tg := range c.tags[base : base+c.cfg.Assoc] {
		if tg == uint64(line) {
			w := &c.sets[si].ways[i]
			c.tick++
			w.used = c.tick
			c.Hits++
			return w, true
		}
	}
	c.Misses++
	return nil, false
}

// Probe checks residency without touching LRU state or stats. Used by the
// coherence layer for remote snoops and by snapshot accounting.
func (c *Cache) Probe(addr sim.Addr) (*Line, bool) {
	line := sim.LineAddr(addr)
	si := c.setIndex(line)
	base := int(si) * c.cfg.Assoc
	for i, tg := range c.tags[base : base+c.cfg.Assoc] {
		if tg == uint64(line) {
			return &c.sets[si].ways[i], true
		}
	}
	return nil, false
}

// Insert allocates the line containing addr in state st on behalf of vm,
// evicting the LRU way of the set if needed. It returns the displaced
// line (evicted reports whether there was one) and a pointer to the newly
// inserted line. Inserting a line that is already resident is a
// programming error in the protocol driver and panics.
func (c *Cache) Insert(addr sim.Addr, st State, vm uint8) (victim Line, evicted bool, line *Line) {
	la := sim.LineAddr(addr)
	si := c.setIndex(la)
	s := &c.sets[si]
	wi := -1
	for i := range s.ways {
		w := &s.ways[i]
		if !w.valid {
			wi = i
			break
		}
		if w.Tag == la {
			panic(fmt.Sprintf("cache: double insert of line %#x", la))
		}
		if wi < 0 || w.used < s.ways[wi].used {
			wi = i
		}
	}
	if c.quota != nil && s.ways[wi].valid {
		if pv := c.partitionVictim(s, vm); pv >= 0 {
			wi = pv
		} else {
			// An invalid way exists; find it.
			for i := range s.ways {
				if !s.ways[i].valid {
					wi = i
					break
				}
			}
		}
	}
	lru := &s.ways[wi]
	if lru.valid {
		victim = *lru
		evicted = true
		c.Evictions++
	}
	c.tick++
	*lru = Line{Tag: la, State: st, VM: vm, used: c.tick, valid: true}
	c.tags[int(si)*c.cfg.Assoc+wi] = uint64(la)
	return victim, evicted, lru
}

// Invalidate removes the line containing addr if resident and returns the
// removed copy. Used for coherence invalidations and inclusive
// back-invalidation.
func (c *Cache) Invalidate(addr sim.Addr) (Line, bool) {
	la := sim.LineAddr(addr)
	si := c.setIndex(la)
	base := int(si) * c.cfg.Assoc
	tags := c.tags[base : base+c.cfg.Assoc]
	for i, tg := range tags {
		if tg == uint64(la) {
			w := &c.sets[si].ways[i]
			old := *w
			*w = Line{}
			tags[i] = invalidTag
			return old, true
		}
	}
	return Line{}, false
}

// Counters returns the access counters in one call — the shape the
// observability layer's per-level gauges publish on a cadence.
func (c *Cache) Counters() (accesses, hits, misses, evictions uint64) {
	return c.Accesses, c.Hits, c.Misses, c.Evictions
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats zeroes the counters without disturbing contents; used when a
// warm-up phase ends and measurement begins.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Evictions = 0, 0, 0, 0
}

// OccupancyByVM counts resident lines per VM ID (index = VM). The slice
// is sized to maxVM+1 entries.
func (c *Cache) OccupancyByVM(maxVM int) []int {
	occ := make([]int, maxVM+1)
	for si := range c.sets {
		for wi := range c.sets[si].ways {
			w := &c.sets[si].ways[wi]
			if w.valid && int(w.VM) <= maxVM {
				occ[w.VM]++
			}
		}
	}
	return occ
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si].ways {
			if c.sets[si].ways[wi].valid {
				n++
			}
		}
	}
	return n
}

// ForEach visits every resident line. The callback must not insert or
// invalidate lines.
func (c *Cache) ForEach(fn func(*Line)) {
	for si := range c.sets {
		for wi := range c.sets[si].ways {
			w := &c.sets[si].ways[wi]
			if w.valid {
				fn(w)
			}
		}
	}
}
