// Package cache implements the set-associative cache arrays used at every
// level of the simulated hierarchy (L0, L1 and the last-level cache
// banks). The arrays are timing-free: they record *content* (which lines
// are resident, their coherence state, and which virtual machine brought
// them in); all latency accounting lives in the system model that drives
// them.
//
// Storage is struct-of-arrays: the resident tags live in one contiguous
// []uint64 scanned by the hot Lookup/Probe path, with coherence state,
// VM tag and LRU age in parallel arrays touched only on a hit. Callers
// address a resident line through a Way handle; a handle is invalidated
// by any later Lookup or Insert on the same cache (Lookup rotates the
// hit line to way 0, Insert reuses slots), so hold it only across
// side-effect-free calls.
package cache

import (
	"fmt"
	"sort"
	"unsafe"

	"consim/internal/sim"
)

// State is the coherence state of a resident line. The protocol package
// drives transitions; the cache only stores the value.
type State uint8

const (
	// Invalid lines are not resident (only appears transiently).
	Invalid State = iota
	// Shared lines are clean and may be resident in other caches.
	Shared
	// Exclusive lines are clean and resident only here.
	Exclusive
	// Modified lines are dirty and resident only here.
	Modified
	// Owned lines are dirty but may have Shared copies elsewhere; the
	// owner supplies data on remote misses (SGI-Origin-style dirty
	// sharing).
	Owned
)

// String returns the canonical one-letter protocol name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether a line in state s holds data newer than memory.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Line is one resident cache line, materialized by value for eviction
// victims and ForEach callbacks.
type Line struct {
	Tag   sim.Addr // full line address (not a partial tag; simplicity over space)
	State State
	VM    uint8 // virtual machine that inserted the line (occupancy accounting)
}

// Way is a handle to a resident line: the line's global slot index. It
// stays valid only until the next Lookup or Insert on the same cache.
type Way int32

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Assoc     int
	Latency   sim.Cycle
}

// Validate reports whether the geometry is realizable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive size or associativity (%d bytes, %d-way)", c.SizeBytes, c.Assoc)
	}
	lines := c.SizeBytes / sim.LineBytes
	if lines*sim.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %dB not a multiple of the %dB line", c.SizeBytes, sim.LineBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// invalidTag marks an empty way in the packed tag field. Tags are line
// numbers (addresses shifted right by the line bits), and blockOf rejects
// addresses whose line number reaches the sentinel, so it can never
// collide with a real tag.
const invalidTag = ^uint32(0)

// slot packs one way's line tag and LRU tick into eight bytes. The tag is
// the 32-bit line number (supporting a quarter-terabyte modeled physical
// space); packing the tick beside it means the replacement scan reads one
// memory stream instead of two, and a set's whole scan state fits in half
// the cache lines of the previous split uint64 arrays.
type slot struct {
	tag  uint32
	used uint32
}

// Cache is a set-associative, LRU-replacement cache array.
type Cache struct {
	cfg     Config
	assoc   int
	setMask uint64
	tick    uint32 // global LRU clock; renormalized on wrap
	quota   []int  // per-VM way quotas (nil = unpartitioned)

	// Struct-of-arrays storage, indexed set*assoc+way. meta is the only
	// array the miss-dominated scan and replacement loops touch;
	// states/vms are read on hits and evictions only. A slot is resident
	// iff its tag differs from invalidTag.
	meta   []slot
	states []State
	vms    []uint8

	// Stats are plain counters; the driving model reads them directly.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// blockOf compresses addr to its packed 32-bit line number. The guard
// trips only for machines modeling ≥256GB of physical address space —
// far beyond the paper's configurations — rather than silently aliasing.
func blockOf(addr sim.Addr) uint32 {
	b := uint64(addr) >> sim.LineShift
	if b >= uint64(invalidTag) {
		panic("cache: address exceeds packed 32-bit tag capacity")
	}
	return uint32(b)
}

// New builds a cache from cfg. It panics on an invalid configuration:
// configurations are produced by this module's own experiment code, so a
// bad one is a programming error, not an input error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nLines := cfg.SizeBytes / sim.LineBytes
	nSets := nLines / cfg.Assoc
	// states and vms share one backing: a simulated machine builds dozens
	// of cache instances, and fewer allocations each is measurable in the
	// bench harness's construction-inclusive allocation budget.
	bytes := make([]uint8, 2*nLines)
	c := &Cache{
		cfg:     cfg,
		assoc:   cfg.Assoc,
		setMask: uint64(nSets - 1),
		meta:    make([]slot, nLines),
		states:  unsafeStates(bytes[:nLines:nLines]),
		vms:     bytes[nLines:],
	}
	for i := range c.meta {
		c.meta[i].tag = invalidTag
	}
	return c
}

// unsafeStates views a byte slice as coherence states (State is uint8,
// so the layouts are identical); copying into a fresh []State would
// defeat the shared-backing allocation.
func unsafeStates(b []uint8) []State {
	return unsafe.Slice((*State)(unsafe.Pointer(&b[0])), len(b))
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the access latency of this array.
func (c *Cache) Latency() sim.Cycle { return c.cfg.Latency }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.meta) }

// State returns the coherence state of the line at w.
func (c *Cache) State(w Way) State { return c.states[w] }

// SetState updates the coherence state of the line at w.
func (c *Cache) SetState(w Way, st State) { c.states[w] = st }

// WayTag returns the line address held at w.
func (c *Cache) WayTag(w Way) sim.Addr {
	return sim.Addr(uint64(c.meta[w].tag) << sim.LineShift)
}

// WayVM returns the inserting VM of the line at w.
func (c *Cache) WayVM(w Way) uint8 { return c.vms[w] }

func (c *Cache) setBase(block uint32) int {
	return int(uint64(block)&c.setMask) * c.assoc
}

// tickNext advances the LRU clock. On the (astronomically rare) 32-bit
// wrap it renormalizes every stored tick first, preserving recency order
// exactly.
func (c *Cache) tickNext() uint32 {
	c.tick++
	if c.tick == 0 {
		c.renormalizeTicks()
	}
	return c.tick
}

// renormalizeTicks compacts the LRU clock after 2^32 advances: ways are
// re-ticked densely in their existing recency order, so every later
// replacement decision matches what an unbounded clock would have made.
func (c *Cache) renormalizeTicks() {
	order := make([]int, len(c.meta))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return c.meta[order[a]].used < c.meta[order[b]].used
	})
	for r, i := range order {
		c.meta[i].used = uint32(r + 1)
	}
	c.tick = uint32(len(c.meta)) + 1
}

// Lookup probes for the line containing addr. On a hit it refreshes LRU
// state, rotates the line into way 0 of its set (so the next access to
// the set's MRU line matches on the first compare) and returns its
// handle. It does not allocate on miss.
func (c *Cache) Lookup(addr sim.Addr) (Way, bool) {
	t := blockOf(addr)
	c.Accesses++
	base := c.setBase(t)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	if m[0].tag == t {
		// MRU fast path: way 0 holds the set's last-hit line.
		m[0].used = c.tickNext()
		c.Hits++
		return Way(base), true
	}
	for i := 1; i < len(m); i++ {
		if m[i].tag != t {
			continue
		}
		// Rotate the hit line into way 0. Ways within a set are
		// symmetric (LRU order lives in used, not in slot order), so the
		// swap is invisible to replacement and snapshot accounting.
		j := base + i
		m[i].tag = m[0].tag
		m[0].tag = t
		c.states[j], c.states[base] = c.states[base], c.states[j]
		c.vms[j], c.vms[base] = c.vms[base], c.vms[j]
		m[i].used = m[0].used
		m[0].used = c.tickNext()
		c.Hits++
		return Way(base), true
	}
	c.Misses++
	return -1, false
}

// Probe checks residency without touching LRU state, slot order or
// stats. Used by the coherence layer for remote snoops and by snapshot
// accounting; the returned handle survives other Probes but not a
// Lookup or Insert.
func (c *Cache) Probe(addr sim.Addr) (Way, bool) {
	t := blockOf(addr)
	base := c.setBase(t)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	for i := range m {
		if m[i].tag == t {
			return Way(base + i), true
		}
	}
	return -1, false
}

// Insert allocates the line containing addr in state st on behalf of vm,
// evicting the LRU way of the set if needed. It returns the displaced
// line (evicted reports whether there was one) and the handle of the
// newly inserted line. Inserting a line that is already resident is a
// programming error in the protocol driver and panics.
func (c *Cache) Insert(addr sim.Addr, st State, vm uint8) (victim Line, evicted bool, w Way) {
	la := blockOf(addr)
	base := c.setBase(la)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	wi := -1
	minUsed := ^uint32(0)
	for i := range m {
		tg := m[i].tag
		if tg == invalidTag {
			wi = i
			break
		}
		if tg == la {
			panic(fmt.Sprintf("cache: double insert of line %#x", la))
		}
		if u := m[i].used; wi < 0 || u < minUsed {
			wi, minUsed = i, u
		}
	}
	if c.quota != nil && m[wi].tag != invalidTag {
		if pv := c.partitionVictim(base, vm); pv >= 0 {
			wi = pv
		} else {
			// An invalid way exists; find it.
			for i := range m {
				if m[i].tag == invalidTag {
					wi = i
					break
				}
			}
		}
	}
	j := base + wi
	if m[wi].tag != invalidTag {
		victim = Line{Tag: sim.Addr(uint64(m[wi].tag) << sim.LineShift), State: c.states[j], VM: c.vms[j]}
		evicted = true
		c.Evictions++
	}
	m[wi] = slot{tag: la, used: c.tickNext()}
	c.states[j] = st
	c.vms[j] = vm
	return victim, evicted, Way(j)
}

// InsertIfAbsent installs the line containing addr unless it is already
// resident, in one set scan (against Probe-then-Insert's two). It
// mirrors Insert's replacement choice exactly; on a pre-existing line it
// is a no-op, like the Probe it replaces (no stats, no LRU refresh).
func (c *Cache) InsertIfAbsent(addr sim.Addr, st State, vm uint8) (victim Line, evicted bool, w Way, inserted bool) {
	la := blockOf(addr)
	base := c.setBase(la)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	wi := -1
	for i := range m {
		tg := m[i].tag
		if tg == la {
			return Line{}, false, Way(base + i), false
		}
		if tg == invalidTag {
			if wi < 0 || m[wi].tag != invalidTag {
				wi = i
			}
			continue
		}
		if wi >= 0 && m[wi].tag == invalidTag {
			continue // an invalid way always wins over any LRU victim
		}
		if wi < 0 || m[i].used < m[wi].used {
			wi = i
		}
	}
	if c.quota != nil && m[wi].tag != invalidTag {
		if pv := c.partitionVictim(base, vm); pv >= 0 {
			wi = pv
		}
	}
	j := base + wi
	if m[wi].tag != invalidTag {
		victim = Line{Tag: sim.Addr(uint64(m[wi].tag) << sim.LineShift), State: c.states[j], VM: c.vms[j]}
		evicted = true
		c.Evictions++
	}
	m[wi] = slot{tag: la, used: c.tickNext()}
	c.states[j] = st
	c.vms[j] = vm
	return victim, evicted, Way(j), true
}

// Invalidate removes the line containing addr if resident and returns the
// removed copy. Used for coherence invalidations and inclusive
// back-invalidation.
func (c *Cache) Invalidate(addr sim.Addr) (Line, bool) {
	t := blockOf(addr)
	base := c.setBase(t)
	m := c.meta[base : base+c.assoc : base+c.assoc]
	for i := range m {
		if m[i].tag == t {
			j := base + i
			old := Line{Tag: sim.Addr(uint64(t) << sim.LineShift), State: c.states[j], VM: c.vms[j]}
			m[i] = slot{tag: invalidTag}
			c.states[j] = Invalid
			c.vms[j] = 0
			return old, true
		}
	}
	return Line{}, false
}

// Counters returns the access counters in one call — the shape the
// observability layer's per-level gauges publish on a cadence.
func (c *Cache) Counters() (accesses, hits, misses, evictions uint64) {
	return c.Accesses, c.Hits, c.Misses, c.Evictions
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats zeroes the counters without disturbing contents; used when a
// warm-up phase ends and measurement begins.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Evictions = 0, 0, 0, 0
}

// OccupancyByVM counts resident lines per VM ID (index = VM). The slice
// is sized to maxVM+1 entries.
func (c *Cache) OccupancyByVM(maxVM int) []int {
	occ := make([]int, maxVM+1)
	for i := range c.meta {
		if c.meta[i].tag != invalidTag && int(c.vms[i]) <= maxVM {
			occ[c.vms[i]]++
		}
	}
	return occ
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.meta {
		if c.meta[i].tag != invalidTag {
			n++
		}
	}
	return n
}

// ForEach visits every resident line as a value snapshot. The callback
// must not insert or invalidate lines; mutations of the snapshot are not
// written back.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.meta {
		tg := c.meta[i].tag
		if tg == invalidTag {
			continue
		}
		l := Line{Tag: sim.Addr(uint64(tg) << sim.LineShift), State: c.states[i], VM: c.vms[i]}
		fn(&l)
	}
}
