package workload

import "testing"

func phasedSpec(t *testing.T) Spec {
	t.Helper()
	return Specs()[TPCH].Scaled(64).WithPhases(TwoPhase(5000)...)
}

func TestPhaseValidate(t *testing.T) {
	if (Phase{Name: "x", Refs: 0, SharedMul: 1, MigMul: 1, ScanMul: 1, WriteMul: 1}).Validate() == nil {
		t.Error("zero-length phase accepted")
	}
	if (Phase{Name: "x", Refs: 10, SharedMul: -1, MigMul: 1, ScanMul: 1, WriteMul: 1}).Validate() == nil {
		t.Error("negative multiplier accepted")
	}
	spec := phasedSpec(t)
	if err := spec.Validate(); err != nil {
		t.Errorf("valid phased spec rejected: %v", err)
	}
	spec.Phases[0].Refs = 0
	if spec.Validate() == nil {
		t.Error("spec with bad phase accepted")
	}
}

func TestPhaseAtMapsCycle(t *testing.T) {
	spec := Specs()[TPCH].WithPhases(
		Phase{Name: "a", Refs: 100, SharedMul: 1, MigMul: 1, ScanMul: 1, WriteMul: 1},
		Phase{Name: "b", Refs: 50, SharedMul: 1, MigMul: 1, ScanMul: 1, WriteMul: 1},
	)
	cases := map[uint64]int{0: 0, 99: 0, 100: 1, 149: 1, 150: 0, 250: 1, 300: 0}
	for refs, want := range cases {
		if got := spec.phaseAt(refs); got != want {
			t.Errorf("phaseAt(%d) = %d, want %d", refs, got, want)
		}
	}
}

func TestMixForScalesAndNormalizes(t *testing.T) {
	spec := Specs()[TPCH]
	base := spec.mixFor(0)
	if base.pShared != spec.PShared || base.pMig != spec.PMig {
		t.Error("unphased mix differs from the base spec")
	}
	spec = spec.WithPhases(Phase{Name: "hot", Refs: 10, SharedMul: 50, MigMul: 50, ScanMul: 50, WriteMul: 1})
	m := spec.mixFor(0)
	if sum := m.pShared + m.pMig + m.pScan; sum > 1.0001 {
		t.Errorf("scaled mix not renormalized: %v", sum)
	}
	spec = Specs()[TPCH].WithPhases(Phase{Name: "w", Refs: 10, SharedMul: 1, MigMul: 1, ScanMul: 1, WriteMul: 100})
	if w := spec.mixFor(0).writeFrac; w > 1 {
		t.Errorf("write fraction not clamped: %v", w)
	}
}

func TestPhasedGeneratorShiftsMix(t *testing.T) {
	spec := Specs()[TPCH].Scaled(64).WithPhases(
		Phase{Name: "scan", Refs: 20_000, SharedMul: 0, MigMul: 0, ScanMul: 5, WriteMul: 1},
		Phase{Name: "mig", Refs: 20_000, SharedMul: 0, MigMul: 5, ScanMul: 0, WriteMul: 1},
	)
	g := NewGenerator(spec, 1, 5)
	count := func(n int) (scan, mig int) {
		for i := 0; i < n; i++ {
			a := g.Next(0)
			switch g.RegionOf(a.Block) {
			case RegionScan:
				scan++
			case RegionMigratory:
				mig++
			}
		}
		return
	}
	scan1, mig1 := count(20_000) // phase "scan"
	scan2, mig2 := count(20_000) // phase "mig"
	if scan1 <= scan2 {
		t.Errorf("scan phase produced fewer scans (%d) than mig phase (%d)", scan1, scan2)
	}
	if mig2 <= mig1 {
		t.Errorf("mig phase produced fewer migratory refs (%d) than scan phase (%d)", mig2, mig1)
	}
}

func TestPhaseOffsetAlignsDifferently(t *testing.T) {
	base := Specs()[TPCH].Scaled(64).WithPhases(
		Phase{Name: "scan", Refs: 10_000, SharedMul: 0, MigMul: 0, ScanMul: 5, WriteMul: 1},
		Phase{Name: "mig", Refs: 10_000, SharedMul: 0, MigMul: 5, ScanMul: 0, WriteMul: 1},
	)
	shifted := base
	shifted.PhaseOffset = 10_000 // start in the "mig" phase

	g0 := NewGenerator(base, 1, 5)
	g1 := NewGenerator(shifted, 1, 5)
	var scan0, scan1 int
	for i := 0; i < 5000; i++ {
		if g0.RegionOf(g0.Next(0).Block) == RegionScan {
			scan0++
		}
		if g1.RegionOf(g1.Next(0).Block) == RegionScan {
			scan1++
		}
	}
	if scan0 <= scan1 {
		t.Errorf("offset did not shift phases: base %d scans, shifted %d", scan0, scan1)
	}
}

func TestUnphasedSpecsUnaffected(t *testing.T) {
	// The calibrated base specs carry no phases; the phase machinery
	// must be a strict no-op for them.
	spec := Specs()[SPECjbb].Scaled(64)
	a := NewGenerator(spec, 4, 9)
	b := NewGenerator(spec, 4, 9)
	for i := 0; i < 20_000; i++ {
		if a.Next(i%4) != b.Next(i%4) {
			t.Fatal("unphased generation not reproducible")
		}
	}
}

func TestScaledPhases(t *testing.T) {
	spec := Specs()[TPCH].WithPhases(TwoPhase(1_000_000)...)
	spec.PhaseOffset = 2_000_000
	s := spec.Scaled(100)
	if s.Phases[0].Refs != 10_000 || s.PhaseOffset != 20_000 {
		t.Errorf("phase scaling wrong: %d / %d", s.Phases[0].Refs, s.PhaseOffset)
	}
	tiny := spec.Scaled(1 << 30)
	if tiny.Phases[0].Refs < 1000 {
		t.Error("phase length floor violated")
	}
}
