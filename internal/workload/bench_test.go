package workload

import "testing"

// BenchmarkGeneratorNext measures reference-stream generation (called
// once per simulated memory access). The cost is dominated by the
// amortized per-batch fill; the fast path is a ring load.
func BenchmarkGeneratorNext(b *testing.B) {
	for _, c := range All() {
		spec := Specs()[c]
		b.Run(spec.Name, func(b *testing.B) {
			g := NewGenerator(spec, 4, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next(i & 3)
			}
		})
	}
}

// BenchmarkGeneratorBatchFill isolates the batch-sampling cold path:
// each iteration re-samples one full per-thread ring (genBatch
// references), so ns/op divided by genBatch is the pure sampling cost
// per reference without ring-consumption overhead.
func BenchmarkGeneratorBatchFill(b *testing.B) {
	for _, c := range All() {
		spec := Specs()[c]
		b.Run(spec.Name, func(b *testing.B) {
			g := NewGenerator(spec, 4, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.fill(i & 3)
			}
		})
	}
}
