package workload

import "testing"

// BenchmarkGeneratorNext measures reference-stream generation (called
// once per simulated memory access).
func BenchmarkGeneratorNext(b *testing.B) {
	for _, c := range All() {
		spec := Specs()[c]
		b.Run(spec.Name, func(b *testing.B) {
			g := NewGenerator(spec, 4, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next(i & 3)
			}
		})
	}
}
