package workload

// Phase support implements the paper's §VII future-work item: "by doing
// some phase analysis and aligning different combinations of phases from
// different workloads ... one can study the interactions in more depth.
// Such an analysis would give an indication of the range of
// interference."
//
// A phased workload cycles through a list of Phase descriptors, each of
// which scales the base reference mix for a stretch of execution (e.g. a
// scan-heavy phase followed by an update-heavy phase). A per-generator
// phase offset lets the experimenter align or misalign the phases of
// co-scheduled workloads.

import "fmt"

// Phase modulates the base reference mix for Refs references per thread.
type Phase struct {
	Name string
	// Refs is the phase length in references per thread.
	Refs uint64
	// Multipliers scale the base mix probabilities during this phase
	// (1 = unchanged). The private fraction absorbs the remainder; if
	// the scaled probabilities exceed 1 they are renormalized.
	SharedMul, MigMul, ScanMul float64
	// WriteMul scales both write fractions.
	WriteMul float64
	// SweepMul scales the steady private-sweep rate — the workload's
	// streaming cache pressure — so phases can alternate between
	// cache-quiet and cache-hostile behaviour.
	SweepMul float64
}

// Validate reports whether the phase is usable.
func (p Phase) Validate() error {
	if p.Refs == 0 {
		return fmt.Errorf("workload: phase %q with zero length", p.Name)
	}
	for _, m := range []float64{p.SharedMul, p.MigMul, p.ScanMul, p.WriteMul, p.SweepMul} {
		if m < 0 {
			return fmt.Errorf("workload: phase %q with negative multiplier", p.Name)
		}
	}
	return nil
}

// WithPhases returns a copy of the spec cycling through the given phases.
func (s Spec) WithPhases(phases ...Phase) Spec {
	out := s
	out.Phases = append([]Phase(nil), phases...)
	return out
}

// phaseMix is the effective reference mix during one phase.
type phaseMix struct {
	pShared, pMig, pScan       float64
	writeFrac, writeFracShared float64
	sweepSteady                float64
}

// mixFor computes the effective mix for phase index i (or the base mix
// when the spec has no phases).
func (s Spec) mixFor(i int) phaseMix {
	m := phaseMix{
		pShared: s.PShared, pMig: s.PMig, pScan: s.PScan,
		writeFrac: s.WriteFrac, writeFracShared: s.WriteFracShared,
		sweepSteady: s.SweepSteady,
	}
	if len(s.Phases) == 0 {
		return m
	}
	p := s.Phases[i%len(s.Phases)]
	m.pShared *= p.SharedMul
	m.pMig *= p.MigMul
	m.pScan *= p.ScanMul
	m.writeFrac = clamp01(m.writeFrac * p.WriteMul)
	m.writeFracShared = clamp01(m.writeFracShared * p.WriteMul)
	m.sweepSteady = clamp01(m.sweepSteady * p.SweepMul)
	if sum := m.pShared + m.pMig + m.pScan; sum > 1 {
		m.pShared /= sum
		m.pMig /= sum
		m.pScan /= sum
	}
	return m
}

// phaseLength returns the per-thread length of phase index i.
func (s Spec) phaseLength(i int) uint64 {
	return s.Phases[i%len(s.Phases)].Refs
}

// totalPhaseRefs returns the per-thread length of one full phase cycle.
func (s Spec) totalPhaseRefs() uint64 {
	var n uint64
	for _, p := range s.Phases {
		n += p.Refs
	}
	return n
}

// phaseAt maps a per-thread reference count (plus alignment offset) to a
// phase index.
func (s Spec) phaseAt(refs uint64) int {
	total := s.totalPhaseRefs()
	if total == 0 {
		return 0
	}
	pos := refs % total
	for i, p := range s.Phases {
		if pos < p.Refs {
			return i
		}
		pos -= p.Refs
	}
	return 0
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// TwoPhase is a convenience constructor for the classic scan/update
// alternation used by the phase-alignment studies: a read-shared,
// scan-heavy phase followed by a migratory, write-heavy phase, each
// lasting refs references per thread.
func TwoPhase(refs uint64) []Phase {
	return []Phase{
		{Name: "scan", Refs: refs, SharedMul: 1.4, MigMul: 0.3, ScanMul: 2.0, WriteMul: 0.5, SweepMul: 4.0},
		{Name: "update", Refs: refs, SharedMul: 0.6, MigMul: 2.5, ScanMul: 0.4, WriteMul: 2.0, SweepMul: 0.25},
	}
}
