package workload

import (
	"fmt"

	"consim/internal/sim"
)

// Access is one memory reference emitted by a generator. Block is an
// index into the workload's footprint (the VM layer maps it into the
// machine's physical address space).
type Access struct {
	Block uint64
	Write bool
}

// Region identifies which part of the footprint an access touched; the
// system model uses it only for diagnostics.
type Region uint8

// The four footprint regions.
const (
	RegionPrivate Region = iota
	RegionShared
	RegionMigratory
	RegionScan
)

type layout struct {
	privPerThread uint64
	sharedBase    uint64
	sharedLen     uint64
	migBase       uint64
	migLen        uint64
	scanBase      uint64
	scanLen       uint64
	total         uint64
}

func layoutFor(s Spec, threads int) layout {
	var l layout
	priv := uint64(float64(s.Blocks) * s.PrivFrac)
	l.privPerThread = priv / uint64(threads)
	if l.privPerThread == 0 {
		l.privPerThread = 1
	}
	priv = l.privPerThread * uint64(threads)
	l.sharedBase = priv
	l.sharedLen = max64(uint64(float64(s.Blocks)*s.SharedFrac), 1)
	l.migBase = l.sharedBase + l.sharedLen
	l.migLen = max64(uint64(float64(s.Blocks)*s.MigFrac), 1)
	l.scanBase = l.migBase + l.migLen
	l.scanLen = max64(uint64(float64(s.Blocks)*s.ScanFrac), 1)
	l.total = l.scanBase + l.scanLen
	return l
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// migRun tracks one in-progress migratory read-modify-write episode.
type migRun struct {
	block     uint64
	remaining int
}

// genBatch is the per-thread ring size: Next refills a thread's ring in
// one tight loop every genBatch references, amortizing per-call overhead
// (RNG/layout/mix loads, migratory-episode state) across the batch.
const genBatch = 256

// Generator produces the reference streams for one workload instance's
// threads. It is deterministic given its seed; each thread has an
// independent random stream so per-thread interleaving does not perturb
// the workload. References are pre-sampled genBatch at a time into a
// per-thread ring; only the shared cursors (the collaborative scan and
// the shared-region cold sweep) observe cross-thread order, and they
// advance at batch-generation time rather than per consumed reference.
type Generator struct {
	spec    Spec
	threads int
	lay     layout

	rngs       []sim.RNG // by value: one allocation, no pointer hops in fill
	zipfPriv   *sim.Zipf
	zipfShared *sim.Zipf

	mig        []migRun
	privSweep  []uint64 // per-thread sweep position (monotonic)
	sharedCold uint64   // global cold-sweep position (monotonic)
	scanCount  uint64   // global scan reference counter

	genRefs []uint64 // per-thread generated counts (drive phase position)

	// Detached-cursor mode (DetachCursors): per-thread replicas of the
	// two shared cursors above, letting threads be sampled concurrently
	// from different scheduler domains without synchronization.
	detached bool
	detScan  []uint64
	detCold  []uint64

	ring    [][]Access // per-thread pre-sampled references
	ringPos []int      // next unconsumed ring index; len(ring[t]) when drained

	// Per-thread cached phase state (recomputed at phase boundaries).
	phaseIdx []int
	mix      []phaseMix
}

// NewGenerator builds the generator for spec with the given thread count
// and seed. It panics on an invalid spec (specs are produced by this
// module).
func NewGenerator(spec Spec, threads int, seed uint64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if threads <= 0 {
		panic(fmt.Sprintf("workload: non-positive thread count %d", threads))
	}
	g := &Generator{
		spec:      spec,
		threads:   threads,
		lay:       layoutFor(spec, threads),
		rngs:      make([]sim.RNG, threads),
		mig:       make([]migRun, threads),
		privSweep: make([]uint64, threads),
		genRefs:   make([]uint64, threads),
		ring:      make([][]Access, threads),
		ringPos:   make([]int, threads),
		phaseIdx:  make([]int, threads),
		mix:       make([]phaseMix, threads),
	}
	backing := make([]Access, threads*genBatch)
	for t := 0; t < threads; t++ {
		g.ring[t] = backing[t*genBatch : (t+1)*genBatch : (t+1)*genBatch]
		g.ringPos[t] = genBatch // empty: first Next triggers a fill
	}
	for t := 0; t < threads; t++ {
		g.phaseIdx[t] = spec.phaseAt(spec.PhaseOffset)
		g.mix[t] = spec.mixFor(g.phaseIdx[t])
	}
	root := sim.NewRNG(seed ^ uint64(spec.Class)<<32)
	for i := range g.rngs {
		// Same stream derivation as root.Split, without the allocation.
		g.rngs[i].Seed(root.Uint64())
	}
	hot := uint64(spec.HotBlocksPriv)
	if hot > g.lay.privPerThread {
		hot = g.lay.privPerThread
	}
	g.zipfPriv = sim.NewZipf(hot, spec.ThetaPriv)
	sharedHot := uint64(spec.SharedHotBlocks)
	if sharedHot > g.lay.sharedLen {
		sharedHot = g.lay.sharedLen
	}
	g.zipfShared = sim.NewZipf(sharedHot, spec.ThetaShared)
	return g
}

// Spec returns the generated workload's parameters.
func (g *Generator) Spec() Spec { return g.spec }

// Threads returns the number of reference streams.
func (g *Generator) Threads() int { return g.threads }

// FootprintBlocks returns the size of the workload's block address space.
func (g *Generator) FootprintBlocks() uint64 { return g.lay.total }

// Next produces thread t's next reference. The body stays small enough
// to inline into the simulator's event loop; the ring refill is the cold
// path, and consumed-reference counts fall out of the ring position (see
// Refs) so the fast path touches nothing but the ring.
func (g *Generator) Next(t int) Access {
	i := g.ringPos[t]
	if i == genBatch {
		return g.refill(t)
	}
	g.ringPos[t] = i + 1
	return g.ring[t][i]
}

// refill drains the cold path of Next: re-sample the thread's ring and
// hand out its first reference.
func (g *Generator) refill(t int) Access {
	g.fill(t)
	g.ringPos[t] = 1
	return g.ring[t][0]
}

// WarmRing exposes thread t's reference ring and current cursor to the
// sampling engine's warming loop, which drains the ring directly — one
// hoisted slice index per reference instead of Next's cursor load and
// store. The ring's backing array is allocated once per generator, so
// the slice stays valid across refills. A caller that consumes through
// the ring must mirror every consumption back with WarmSetPos before
// anything else uses the Next path, and must refill a drained ring
// (cursor == len(ring)) through WarmRefill so the draw sequence and the
// shared sampling cursors advance exactly as Next would advance them.
func (g *Generator) WarmRing(t int) ([]Access, int) {
	return g.ring[t], g.ringPos[t]
}

// WarmSetPos stores the ring cursor back after a warming drain.
func (g *Generator) WarmSetPos(t, pos int) { g.ringPos[t] = pos }

// WarmRefill re-samples thread t's drained ring and returns its first
// reference, leaving the cursor at 1 — exactly Next's refill path,
// exported for the warming loop's direct-drain consumption.
func (g *Generator) WarmRefill(t int) Access { return g.refill(t) }

// threadGenState bundles every per-thread mutable the sampler walks, so
// one batch can be computed either in place (the synchronous refill) or
// against a snapshot on another goroutine (the sharded engine's prefill)
// from the exact same code path.
type threadGenState struct {
	rng       sim.RNG
	mig       migRun
	privSweep uint64
	genRefs   uint64
	phaseIdx  int
	mix       phaseMix
}

// loadThread / storeThread move thread t's sampler state between the
// Generator arrays and a detached snapshot.
func (g *Generator) loadThread(t int, st *threadGenState) {
	st.rng = g.rngs[t]
	st.mig = g.mig[t]
	st.privSweep = g.privSweep[t]
	st.genRefs = g.genRefs[t]
	st.phaseIdx = g.phaseIdx[t]
	st.mix = g.mix[t]
}

func (g *Generator) storeThread(t int, st *threadGenState) {
	g.rngs[t] = st.rng
	g.mig[t] = st.mig
	g.privSweep[t] = st.privSweep
	g.genRefs[t] = st.genRefs
	g.phaseIdx[t] = st.phaseIdx
	g.mix[t] = st.mix
}

// cursors abstracts the two generator-shared sampling cursors (the
// collaborative scan and the shared-region cold sweep) out of the batch
// loop. liveCursors advances them in place; deferredCursors (prefetch.go)
// records placeholder positions to be patched when the batch is adopted
// in stream order. The type parameter keeps both instantiations fully
// inlined — the synchronous path compiles to the same loop it was before
// the split.
type cursors interface {
	// scan / cold return the Access for ring entry i; i lets a deferred
	// sink remember which entries to patch and is ignored live.
	scan(i int) Access
	cold(i int) Access
	steadyShared() bool
}

// liveCursors mutates the Generator's shared cursors directly.
type liveCursors struct{ g *Generator }

func (c liveCursors) scan(int) Access {
	g := c.g
	g.scanCount++
	pos := (g.scanCount / uint64(g.spec.ScanReadsPerBlock)) % g.lay.scanLen
	return Access{Block: g.lay.scanBase + pos}
}

func (c liveCursors) cold(int) Access {
	g := c.g
	pos := g.sharedCold % g.lay.sharedLen
	g.sharedCold++
	return Access{Block: g.lay.sharedBase + pos}
}

func (c liveCursors) steadyShared() bool { return c.g.sharedCold >= c.g.lay.sharedLen }

// DetachCursors switches the generator's shared sampling cursors to
// per-thread replicas, so threads can be sampled concurrently from
// different scheduler domains without synchronization (the parallel
// discrete-event engine's requirement). The replicas preserve the two
// properties the shared cursors encode: the collaborative scan advances
// at the collective pace — every thread's scan position moves
// threads-per-ScanReadsPerBlock per own reference, keeping the
// near-lockstep sweep whose trailing reads hit the leader's lines — and
// the cold sweep stripes the shared region across threads so one lap of
// the region takes the same aggregate reference count. Streams
// legitimately differ from the attached mode (the engine that uses this
// is equivalence-gated, not bit-identical), but each thread's stream is
// independent of cross-thread interleaving, hence deterministic under
// any domain partition. Must be called before any references are drawn.
func (g *Generator) DetachCursors() {
	if g.detached {
		return
	}
	g.detached = true
	g.detScan = make([]uint64, g.threads)
	g.detCold = make([]uint64, g.threads)
}

// detachedCursors is one thread's private replica of the shared cursors
// (see DetachCursors for the pacing argument).
type detachedCursors struct {
	g *Generator
	t int
}

func (c detachedCursors) scan(int) Access {
	g := c.g
	n := g.detScan[c.t]
	g.detScan[c.t]++
	// Preserve both attached-mode properties: ScanReadsPerBlock
	// consecutive reads of one block (the intra-thread reuse the private
	// levels absorb), and the collective sweep pace — threads stripe the
	// region, so together they advance one block per ScanReadsPerBlock
	// aggregate draws, near-lockstep.
	pos := (uint64(c.t) + n/uint64(g.spec.ScanReadsPerBlock)*uint64(g.threads)) % g.lay.scanLen
	return Access{Block: g.lay.scanBase + pos}
}

func (c detachedCursors) cold(int) Access {
	g := c.g
	pos := (g.detCold[c.t]*uint64(g.threads) + uint64(c.t)) % g.lay.sharedLen
	g.detCold[c.t]++
	return Access{Block: g.lay.sharedBase + pos}
}

func (c detachedCursors) steadyShared() bool {
	g := c.g
	return g.detCold[c.t]*uint64(g.threads) >= g.lay.sharedLen
}

// fill pre-samples the next genBatch references for thread t. Hot state
// (RNG, layout, mix, migratory episode, sweep cursor) lives in locals for
// the duration of the batch; only the shared cursors touch the Generator.
func (g *Generator) fill(t int) {
	var st threadGenState
	g.loadThread(t, &st)
	if g.detached {
		fillCore(g, t, &st, g.ring[t][:genBatch:genBatch], detachedCursors{g, t})
	} else {
		fillCore(g, t, &st, g.ring[t][:genBatch:genBatch], liveCursors{g})
	}
	g.storeThread(t, &st)
}

// fillCore samples one batch of thread t's stream into ring, advancing st
// and drawing shared-cursor positions through cur. It touches nothing on
// g beyond immutable sampling parameters (spec, layout, Zipf tables), so
// a deferred-cursor instantiation is safe to run off the owning
// goroutine against a state snapshot.
func fillCore[C cursors](g *Generator, t int, st *threadGenState, ring []Access, cur C) {
	r := &st.rng
	lay := &g.lay
	spec := &g.spec
	gen := st.genRefs
	phased := len(spec.Phases) > 0
	mig := st.mig
	privSweep := st.privSweep
	base := uint64(t) * lay.privPerThread
	mix := st.mix

	for i := range ring {
		gen++
		// Track phase transitions (no-op for unphased specs).
		if phased {
			if idx := spec.phaseAt(gen + spec.PhaseOffset); idx != st.phaseIdx {
				st.phaseIdx = idx
				st.mix = spec.mixFor(idx)
				mix = st.mix
			}
		}

		// An in-progress migratory episode takes priority: the burst must
		// finish with its write for ownership to move.
		if mig.remaining > 0 {
			mig.remaining--
			ring[i] = Access{
				Block: lay.migBase + mig.block,
				Write: mig.remaining == 0,
			}
			continue
		}

		u := r.Float64()
		switch {
		case u < mix.pMig:
			// Start a migratory episode on a uniformly chosen block of the
			// small migratory region; it was most likely last written by
			// another thread, so the first touch is a dirty transfer.
			b := r.Uint64n(lay.migLen)
			mig = migRun{block: b, remaining: spec.MigBurst - 1}
			ring[i] = Access{Block: lay.migBase + b}

		case u < mix.pMig+mix.pScan:
			// Collaborative scan: ScanReadsPerBlock consecutive scan
			// references (across all threads) land on the same block before
			// the shared cursor advances, so trailing reads — usually by a
			// different thread — hit the leader's cache.
			ring[i] = cur.scan(i)

		case u < mix.pMig+mix.pScan+mix.pShared:
			// Shared-read region: cold coverage sweep (fast on the first
			// lap, then a trickle) or the Zipf-hot set.
			coldP := spec.SharedColdSteady
			if !cur.steadyShared() {
				coldP = spec.SharedColdWarm
			}
			if r.Bool(coldP) {
				ring[i] = cur.cold(i)
			} else {
				b := g.zipfShared.Sample(r)
				ring[i] = Access{Block: lay.sharedBase + b, Write: r.Bool(mix.writeFracShared)}
			}

		default:
			// Private partition: coverage sweep or the per-thread hot set.
			sweepP := mix.sweepSteady
			if privSweep < lay.privPerThread {
				sweepP = spec.SweepWarm
			}
			if r.Bool(sweepP) {
				ring[i] = Access{Block: base + privSweep%lay.privPerThread}
				privSweep++
			} else {
				b := g.zipfPriv.Sample(r)
				ring[i] = Access{Block: base + b, Write: r.Bool(mix.writeFrac)}
			}
		}
	}

	st.genRefs = gen
	st.mig = mig
	st.privSweep = privSweep
}

// RegionOf classifies a block index produced by this generator.
func (g *Generator) RegionOf(block uint64) Region {
	return regionOf(g.lay, block)
}

func regionOf(l layout, block uint64) Region {
	switch {
	case block < l.sharedBase:
		return RegionPrivate
	case block < l.migBase:
		return RegionShared
	case block < l.scanBase:
		return RegionMigratory
	default:
		return RegionScan
	}
}

// Refs returns thread t's consumed-reference count so far: everything
// generated minus what still sits unconsumed in the thread's ring.
func (g *Generator) Refs(t int) uint64 {
	return g.genRefs[t] - uint64(genBatch-g.ringPos[t])
}

// TotalRefs returns the workload's total consumed-reference count.
func (g *Generator) TotalRefs() uint64 {
	var n uint64
	for t := range g.genRefs {
		n += g.Refs(t)
	}
	return n
}

// Transactions returns completed transactions (total references divided
// by the workload's transaction size, per §V's cycles-per-transaction
// framing).
func (g *Generator) Transactions() uint64 {
	return g.TotalRefs() / uint64(g.spec.RefsPerTx)
}
