package workload

import (
	"fmt"

	"consim/internal/sim"
)

// Access is one memory reference emitted by a generator. Block is an
// index into the workload's footprint (the VM layer maps it into the
// machine's physical address space).
type Access struct {
	Block uint64
	Write bool
}

// Region identifies which part of the footprint an access touched; the
// system model uses it only for diagnostics.
type Region uint8

// The four footprint regions.
const (
	RegionPrivate Region = iota
	RegionShared
	RegionMigratory
	RegionScan
)

type layout struct {
	privPerThread uint64
	sharedBase    uint64
	sharedLen     uint64
	migBase       uint64
	migLen        uint64
	scanBase      uint64
	scanLen       uint64
	total         uint64
}

func layoutFor(s Spec, threads int) layout {
	var l layout
	priv := uint64(float64(s.Blocks) * s.PrivFrac)
	l.privPerThread = priv / uint64(threads)
	if l.privPerThread == 0 {
		l.privPerThread = 1
	}
	priv = l.privPerThread * uint64(threads)
	l.sharedBase = priv
	l.sharedLen = max64(uint64(float64(s.Blocks)*s.SharedFrac), 1)
	l.migBase = l.sharedBase + l.sharedLen
	l.migLen = max64(uint64(float64(s.Blocks)*s.MigFrac), 1)
	l.scanBase = l.migBase + l.migLen
	l.scanLen = max64(uint64(float64(s.Blocks)*s.ScanFrac), 1)
	l.total = l.scanBase + l.scanLen
	return l
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// migRun tracks one in-progress migratory read-modify-write episode.
type migRun struct {
	block     uint64
	remaining int
}

// Generator produces the reference streams for one workload instance's
// threads. It is deterministic given its seed; each thread has an
// independent random stream so per-thread interleaving does not perturb
// the workload.
type Generator struct {
	spec    Spec
	threads int
	lay     layout

	rngs       []*sim.RNG
	zipfPriv   *sim.Zipf
	zipfShared *sim.Zipf

	mig        []migRun
	privSweep  []uint64 // per-thread sweep position (monotonic)
	sharedCold uint64   // global cold-sweep position (monotonic)
	scanCount  uint64   // global scan reference counter

	refs []uint64 // per-thread reference counts

	// Per-thread cached phase state (recomputed at phase boundaries).
	phaseIdx []int
	mix      []phaseMix
}

// NewGenerator builds the generator for spec with the given thread count
// and seed. It panics on an invalid spec (specs are produced by this
// module).
func NewGenerator(spec Spec, threads int, seed uint64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if threads <= 0 {
		panic(fmt.Sprintf("workload: non-positive thread count %d", threads))
	}
	g := &Generator{
		spec:      spec,
		threads:   threads,
		lay:       layoutFor(spec, threads),
		rngs:      make([]*sim.RNG, threads),
		mig:       make([]migRun, threads),
		privSweep: make([]uint64, threads),
		refs:      make([]uint64, threads),
		phaseIdx:  make([]int, threads),
		mix:       make([]phaseMix, threads),
	}
	for t := 0; t < threads; t++ {
		g.phaseIdx[t] = spec.phaseAt(spec.PhaseOffset)
		g.mix[t] = spec.mixFor(g.phaseIdx[t])
	}
	root := sim.NewRNG(seed ^ uint64(spec.Class)<<32)
	for i := range g.rngs {
		g.rngs[i] = root.Split()
	}
	hot := uint64(spec.HotBlocksPriv)
	if hot > g.lay.privPerThread {
		hot = g.lay.privPerThread
	}
	g.zipfPriv = sim.NewZipf(hot, spec.ThetaPriv)
	sharedHot := uint64(spec.SharedHotBlocks)
	if sharedHot > g.lay.sharedLen {
		sharedHot = g.lay.sharedLen
	}
	g.zipfShared = sim.NewZipf(sharedHot, spec.ThetaShared)
	return g
}

// Spec returns the generated workload's parameters.
func (g *Generator) Spec() Spec { return g.spec }

// Threads returns the number of reference streams.
func (g *Generator) Threads() int { return g.threads }

// FootprintBlocks returns the size of the workload's block address space.
func (g *Generator) FootprintBlocks() uint64 { return g.lay.total }

// Next produces thread t's next reference.
func (g *Generator) Next(t int) Access {
	r := g.rngs[t]
	g.refs[t]++

	// Track phase transitions (no-op for unphased specs).
	if len(g.spec.Phases) > 0 {
		if idx := g.spec.phaseAt(g.refs[t] + g.spec.PhaseOffset); idx != g.phaseIdx[t] {
			g.phaseIdx[t] = idx
			g.mix[t] = g.spec.mixFor(idx)
		}
	}
	mix := &g.mix[t]

	// An in-progress migratory episode takes priority: the burst must
	// finish with its write for ownership to move.
	if g.mig[t].remaining > 0 {
		g.mig[t].remaining--
		return Access{
			Block: g.lay.migBase + g.mig[t].block,
			Write: g.mig[t].remaining == 0,
		}
	}

	u := r.Float64()
	switch {
	case u < mix.pMig:
		// Start a migratory episode on a uniformly chosen block of the
		// small migratory region; it was most likely last written by
		// another thread, so the first touch is a dirty transfer.
		b := r.Uint64n(g.lay.migLen)
		g.mig[t] = migRun{block: b, remaining: g.spec.MigBurst - 1}
		return Access{Block: g.lay.migBase + b}

	case u < mix.pMig+mix.pScan:
		// Collaborative scan: ScanReadsPerBlock consecutive scan
		// references (across all threads) land on the same block before
		// the shared cursor advances, so trailing reads — usually by a
		// different thread — hit the leader's cache.
		g.scanCount++
		pos := (g.scanCount / uint64(g.spec.ScanReadsPerBlock)) % g.lay.scanLen
		return Access{Block: g.lay.scanBase + pos}

	case u < mix.pMig+mix.pScan+mix.pShared:
		// Shared-read region: cold coverage sweep (fast on the first
		// lap, then a trickle) or the Zipf-hot set.
		coldP := g.spec.SharedColdSteady
		if g.sharedCold < g.lay.sharedLen {
			coldP = g.spec.SharedColdWarm
		}
		if r.Bool(coldP) {
			pos := g.sharedCold % g.lay.sharedLen
			g.sharedCold++
			return Access{Block: g.lay.sharedBase + pos}
		}
		b := g.zipfShared.Sample(r)
		return Access{Block: g.lay.sharedBase + b, Write: r.Bool(mix.writeFracShared)}

	default:
		// Private partition: coverage sweep or the per-thread hot set.
		sweepP := mix.sweepSteady
		if g.privSweep[t] < g.lay.privPerThread {
			sweepP = g.spec.SweepWarm
		}
		base := uint64(t) * g.lay.privPerThread
		if r.Bool(sweepP) {
			pos := g.privSweep[t] % g.lay.privPerThread
			g.privSweep[t]++
			return Access{Block: base + pos}
		}
		b := g.zipfPriv.Sample(r)
		return Access{Block: base + b, Write: r.Bool(mix.writeFrac)}
	}
}

// RegionOf classifies a block index produced by this generator.
func (g *Generator) RegionOf(block uint64) Region {
	return regionOf(g.lay, block)
}

func regionOf(l layout, block uint64) Region {
	switch {
	case block < l.sharedBase:
		return RegionPrivate
	case block < l.migBase:
		return RegionShared
	case block < l.scanBase:
		return RegionMigratory
	default:
		return RegionScan
	}
}

// Refs returns thread t's reference count so far.
func (g *Generator) Refs(t int) uint64 { return g.refs[t] }

// TotalRefs returns the workload's total reference count.
func (g *Generator) TotalRefs() uint64 {
	var n uint64
	for _, v := range g.refs {
		n += v
	}
	return n
}

// Transactions returns completed transactions (total references divided
// by the workload's transaction size, per §V's cycles-per-transaction
// framing).
func (g *Generator) Transactions() uint64 {
	return g.TotalRefs() / uint64(g.spec.RefsPerTx)
}
