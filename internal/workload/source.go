package workload

// Source abstracts where a VM's reference stream comes from: the live
// statistical Generator, or a recorded trace replayed from disk (the
// analog of the paper's workload checkpoints — "snapshots of a workload
// ... ensuring the same set of transactions are run in each simulation").
type Source interface {
	// Next produces thread t's next reference.
	Next(t int) Access
	// Spec returns the workload parameters the stream was produced
	// under.
	Spec() Spec
	// FootprintBlocks returns the size of the workload's block address
	// space.
	FootprintBlocks() uint64
	// TotalRefs returns the number of references issued so far.
	TotalRefs() uint64
}

var _ Source = (*Generator)(nil)
