// Package workload provides statistical reference generators that stand
// in for the paper's four commercial server workloads (TPC-W, SPECjbb,
// TPC-H, SPECweb). The real workloads ran AIX + DB2/Zeus inside a
// full-system simulator; here each workload is a parameterized stochastic
// model whose memory behaviour is calibrated against the paper's Table II
// (cache-to-cache transfer rates, clean/dirty split, footprint in 64-byte
// blocks) and Table I (transaction granularity).
//
// Each 4-thread workload touches four kinds of memory:
//
//   - private: per-thread data (buffer-pool partitions, heaps). Most
//     references hit a small per-thread hot set; the rest sweep the full
//     partition (fast during the first lap, modeling install/warm-up,
//     then at a steady streaming rate). Sweep misses leave the chip.
//   - shared-read: data read by all threads (indexes, code, file cache):
//     a Zipf-hot set plus a slow cold sweep for coverage. Hot misses are
//     usually satisfied by a *clean* cache-to-cache transfer.
//   - migratory: read-modify-write episodes on a small region bouncing
//     between threads (locks, join/merge buffers); misses are satisfied
//     by *dirty* transfers.
//   - scan: a collaborative sequential sweep (table scans, request
//     streams) where each block is read ScanReadsPerBlock times in quick
//     succession by whichever threads are scanning; trailing reads hit
//     the leader's cache, producing clean transfers at a controlled rate.
//
// The per-workload parameters below reproduce the Table II ordering and
// (approximately) its magnitudes; calibration tests hold the model to
// tolerance bands.
package workload

import "fmt"

// Class identifies one of the paper's four commercial workloads.
type Class int

// The four consolidated server workloads of Table I.
const (
	TPCW Class = iota
	SPECjbb
	TPCH
	SPECweb
	NumClasses
)

// String returns the paper's workload name.
func (c Class) String() string {
	switch c {
	case TPCW:
		return "TPC-W"
	case SPECjbb:
		return "SPECjbb"
	case TPCH:
		return "TPC-H"
	case SPECweb:
		return "SPECweb"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Spec parameterizes one workload model. All block counts are in 64-byte
// cache lines at full (paper) scale; Scaled derives reduced-scale
// variants for fast tests.
type Spec struct {
	Class Class
	Name  string

	// Blocks is the total footprint (Table II: "# of 64 Byte blocks
	// accessed").
	Blocks int

	// Region sizing as fractions of Blocks. PrivFrac is divided evenly
	// among threads.
	PrivFrac, SharedFrac, MigFrac, ScanFrac float64

	// Reference mix: probability that a reference targets each region
	// (private gets the remainder).
	PShared, PMig, PScan float64

	// SweepWarm / SweepSteady are the fractions of private references
	// that advance the partition sweep, during the first lap (warming)
	// and afterwards (steady streaming). The rest hit the hot set.
	SweepWarm, SweepSteady float64

	// SharedColdWarm / SharedColdSteady are the analogous cold-sweep
	// fractions of shared references.
	SharedColdWarm, SharedColdSteady float64

	// HotBlocksPriv sizes the per-thread private hot set.
	HotBlocksPriv int

	// SharedHotBlocks bounds the shared-read hot set; it is sized so the
	// hot set exceeds one private LLC bank but fits the chip's aggregate
	// capacity, which is what turns shared-read misses into clean
	// cache-to-cache transfers rather than memory accesses.
	SharedHotBlocks int

	// Zipf skew for the private hot set and shared-read reuse.
	ThetaPriv, ThetaShared float64

	// ScanReadsPerBlock is how many consecutive scan references hit each
	// block before the scan cursor advances; reads after the first are
	// usually by other threads and become clean transfers.
	ScanReadsPerBlock int

	// WriteFrac is the store probability for private hot references;
	// WriteFracShared for shared hot references.
	WriteFrac, WriteFracShared float64

	// MigBurst is the number of references in one migratory
	// read-modify-write episode (the last reference is the write).
	MigBurst int

	// RefsPerTx is the number of memory references per transaction,
	// modeling Table I's differing transaction sizes.
	RefsPerTx int

	// ThinkCycles is the average number of non-memory execution cycles
	// between references on the in-order core.
	ThinkCycles float64

	// Phases, when non-empty, cycles the reference mix through the given
	// phase descriptors (§VII phase analysis). PhaseOffset shifts this
	// workload's position in the phase cycle (in per-thread references)
	// so experiments can align or misalign co-scheduled workloads.
	Phases      []Phase
	PhaseOffset uint64
}

// TableIITarget records the paper's measured statistics for validation
// and reporting.
type TableIITarget struct {
	C2CAll     float64 // fraction of private-LLC misses satisfied on-chip
	C2CClean   float64 // of those, fraction clean
	C2CDirty   float64 // of those, fraction dirty
	BlocksK    int     // footprint in thousands of 64B blocks
	TxDescribe string
}

// Specs returns the four workload models at full scale, indexed by Class.
func Specs() [NumClasses]Spec {
	return [NumClasses]Spec{
		TPCW: {
			Class:  TPCW,
			Name:   "TPC-W",
			Blocks: 1125 * 1000,
			// Online bookstore, browsing mix: a huge, thrashing
			// buffer-pool footprint; most misses leave the chip.
			PrivFrac: 0.74, SharedFrac: 0.20, MigFrac: 0.005, ScanFrac: 0.03,
			PShared: 0.20, PMig: 0.024, PScan: 0.020,
			SweepWarm: 0.55, SweepSteady: 0.055,
			SharedColdWarm: 0.30, SharedColdSteady: 0.05,
			HotBlocksPriv: 16384, SharedHotBlocks: 65536,
			ThetaPriv: 0.80, ThetaShared: 0.70,
			ScanReadsPerBlock: 4,
			WriteFrac:         0.10, WriteFracShared: 0.006,
			MigBurst:    4,
			RefsPerTx:   220_000, // 25 large web transactions per run
			ThinkCycles: 2.0,
		},
		SPECjbb: {
			Class:  SPECjbb,
			Name:   "SPECjbb",
			Blocks: 606 * 1000,
			// Java middleware: hot shared objects and JITed code drive
			// heavy clean sharing; little private streaming.
			PrivFrac: 0.38, SharedFrac: 0.52, MigFrac: 0.004, ScanFrac: 0.08,
			PShared: 0.42, PMig: 0.012, PScan: 0.120,
			SweepWarm: 0.50, SweepSteady: 0.020,
			SharedColdWarm: 0.30, SharedColdSteady: 0.012,
			HotBlocksPriv: 6144, SharedHotBlocks: 49152,
			ThetaPriv: 0.80, ThetaShared: 0.75,
			ScanReadsPerBlock: 8,
			WriteFrac:         0.14, WriteFracShared: 0.004,
			MigBurst:    4,
			RefsPerTx:   9_000, // 6400 small order-processing requests
			ThinkCycles: 2.2,
		},
		TPCH: {
			Class:  TPCH,
			Name:   "TPC-H",
			Blocks: 172 * 1000,
			// Decision support, query 12: collaborating scan/join
			// operators — small footprint, intense dirty sharing.
			PrivFrac: 0.30, SharedFrac: 0.38, MigFrac: 0.06, ScanFrac: 0.25,
			PShared: 0.30, PMig: 0.075, PScan: 0.028,
			SweepWarm: 0.50, SweepSteady: 0.032,
			SharedColdWarm: 0.25, SharedColdSteady: 0.006,
			HotBlocksPriv: 4096, SharedHotBlocks: 12288,
			ThetaPriv: 0.80, ThetaShared: 0.60,
			ScanReadsPerBlock: 4,
			WriteFrac:         0.06, WriteFracShared: 0.03,
			MigBurst:    3,
			RefsPerTx:   5_500_000, // one long query
			ThinkCycles: 1.8,
		},
		SPECweb: {
			Class:  SPECweb,
			Name:   "SPECweb",
			Blocks: 986 * 1000,
			// Web server: shared read-mostly file cache plus per-request
			// private state.
			PrivFrac: 0.55, SharedFrac: 0.34, MigFrac: 0.003, ScanFrac: 0.10,
			PShared: 0.35, PMig: 0.013, PScan: 0.044,
			SweepWarm: 0.55, SweepSteady: 0.050,
			SharedColdWarm: 0.30, SharedColdSteady: 0.02,
			HotBlocksPriv: 8192, SharedHotBlocks: 32768,
			ThetaPriv: 0.80, ThetaShared: 0.72,
			ScanReadsPerBlock: 6,
			WriteFrac:         0.05, WriteFracShared: 0.004,
			MigBurst:    4,
			RefsPerTx:   60_000, // 300 HTTP requests
			ThinkCycles: 2.0,
		},
	}
}

// TableII returns the paper's Table II values, indexed by Class.
func TableII() [NumClasses]TableIITarget {
	return [NumClasses]TableIITarget{
		TPCW:    {C2CAll: 0.15, C2CClean: 0.84, C2CDirty: 0.16, BlocksK: 1125, TxDescribe: "browsing mix, 25 web transactions"},
		SPECjbb: {C2CAll: 0.52, C2CClean: 0.94, C2CDirty: 0.06, BlocksK: 606, TxDescribe: "6400 requests, six warehouses"},
		TPCH:    {C2CAll: 0.69, C2CClean: 0.43, C2CDirty: 0.57, BlocksK: 172, TxDescribe: "query 12 on 512MB database"},
		SPECweb: {C2CAll: 0.37, C2CClean: 0.93, C2CDirty: 0.07, BlocksK: 986, TxDescribe: "300 HTTP requests"},
	}
}

// Validate reports whether the spec's fractions and sizes are coherent.
func (s Spec) Validate() error {
	if s.Blocks <= 0 {
		return fmt.Errorf("workload %s: non-positive footprint", s.Name)
	}
	if s.PrivFrac+s.SharedFrac+s.MigFrac+s.ScanFrac > 1.0001 {
		return fmt.Errorf("workload %s: region fractions exceed 1", s.Name)
	}
	if s.PShared+s.PMig+s.PScan > 1.0001 {
		return fmt.Errorf("workload %s: reference mix exceeds 1", s.Name)
	}
	if s.MigBurst <= 0 {
		return fmt.Errorf("workload %s: non-positive migratory burst", s.Name)
	}
	if s.RefsPerTx <= 0 {
		return fmt.Errorf("workload %s: non-positive transaction size", s.Name)
	}
	if s.HotBlocksPriv <= 0 {
		return fmt.Errorf("workload %s: non-positive private hot set", s.Name)
	}
	if s.SharedHotBlocks <= 0 {
		return fmt.Errorf("workload %s: non-positive shared hot set", s.Name)
	}
	if s.ScanReadsPerBlock <= 0 {
		return fmt.Errorf("workload %s: non-positive scan reads per block", s.Name)
	}
	for _, p := range s.Phases {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	for _, f := range []float64{
		s.PrivFrac, s.SharedFrac, s.MigFrac, s.ScanFrac,
		s.PShared, s.PMig, s.PScan,
		s.SweepWarm, s.SweepSteady, s.SharedColdWarm, s.SharedColdSteady,
		s.WriteFrac, s.WriteFracShared,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: fraction %v out of [0,1]", s.Name, f)
		}
	}
	return nil
}

// Scaled returns the spec with its footprint divided by factor, for fast
// tests that also divide cache capacities by the same factor (capacity
// *ratios*, which drive the behaviour, are preserved). The hot set and
// transaction size scale too.
func (s Spec) Scaled(factor int) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	out.Blocks = maxInt(s.Blocks/factor, 4096)
	out.HotBlocksPriv = maxInt(s.HotBlocksPriv/factor, 64)
	out.SharedHotBlocks = maxInt(s.SharedHotBlocks/factor, 256)
	out.RefsPerTx = maxInt(s.RefsPerTx/factor, 1000)
	if len(s.Phases) > 0 {
		out.Phases = make([]Phase, len(s.Phases))
		for i, ph := range s.Phases {
			out.Phases[i] = ph
			if scaled := ph.Refs / uint64(factor); scaled >= 1000 {
				out.Phases[i].Refs = scaled
			} else {
				out.Phases[i].Refs = 1000
			}
		}
		out.PhaseOffset = s.PhaseOffset / uint64(factor)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ByName returns the spec whose Name matches (case-sensitive), for CLI
// use.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// RegionOf classifies a footprint block index for this spec under the
// given thread count (the region layout depends on how the private
// partition splits). Trace replays use it to attribute misses to regions
// without a live generator.
func (s Spec) RegionOf(block uint64, threads int) Region {
	return regionOf(layoutFor(s, threads), block)
}

// Regions caches the spec's region boundaries for repeated O(1)
// classification. RegionOf recomputes the whole footprint layout per
// call, which is far too expensive for the simulator's per-miss
// accounting; build a Regions once and call Of in the loop.
type Regions struct {
	sharedBase, migBase, scanBase uint64
}

// Regions returns the cached classifier for this spec under the given
// thread count. Of(block) agrees with RegionOf(block, threads) for every
// block.
func (s Spec) Regions(threads int) Regions {
	l := layoutFor(s, threads)
	return Regions{sharedBase: l.sharedBase, migBase: l.migBase, scanBase: l.scanBase}
}

// Of classifies a footprint block index.
func (r Regions) Of(block uint64) Region {
	switch {
	case block < r.sharedBase:
		return RegionPrivate
	case block < r.migBase:
		return RegionShared
	case block < r.scanBase:
		return RegionMigratory
	default:
		return RegionScan
	}
}

// RegionName names a region for reports.
func RegionName(r Region) string {
	switch r {
	case RegionPrivate:
		return "private"
	case RegionShared:
		return "shared"
	case RegionMigratory:
		return "migratory"
	case RegionScan:
		return "scan"
	}
	return "unknown"
}

// All returns the four classes in Table order, for sweeps.
func All() []Class {
	return []Class{TPCW, SPECjbb, TPCH, SPECweb}
}
