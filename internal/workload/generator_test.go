package workload

import (
	"testing"
	"testing/quick"
)

func specFor(t *testing.T, c Class) Spec {
	t.Helper()
	return Specs()[c]
}

func TestSpecsValidate(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejectsBadFractions(t *testing.T) {
	s := specFor(t, TPCH)
	s.PrivFrac = 0.9
	s.SharedFrac = 0.9
	if s.Validate() == nil {
		t.Error("region fractions > 1 accepted")
	}
	s = specFor(t, TPCH)
	s.PShared, s.PMig, s.PScan = 0.5, 0.5, 0.5
	if s.Validate() == nil {
		t.Error("reference mix > 1 accepted")
	}
	s = specFor(t, TPCH)
	s.WriteFrac = 1.5
	if s.Validate() == nil {
		t.Error("fraction out of [0,1] accepted")
	}
	s = specFor(t, TPCH)
	s.Blocks = 0
	if s.Validate() == nil {
		t.Error("zero footprint accepted")
	}
	s = specFor(t, TPCH)
	s.MigBurst = 0
	if s.Validate() == nil {
		t.Error("zero burst accepted")
	}
}

func TestScaledFloors(t *testing.T) {
	s := specFor(t, TPCW).Scaled(1 << 20)
	if s.Blocks < 4096 || s.HotBlocksPriv < 64 || s.SharedHotBlocks < 256 || s.RefsPerTx < 1000 {
		t.Errorf("scaling floors violated: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("extreme scale invalid: %v", err)
	}
	// Scale 1 is identity.
	a, b := specFor(t, TPCW).Scaled(1), specFor(t, TPCW)
	if a.Blocks != b.Blocks || a.HotBlocksPriv != b.HotBlocksPriv ||
		a.SharedHotBlocks != b.SharedHotBlocks || a.RefsPerTx != b.RefsPerTx {
		t.Error("Scaled(1) changed the spec")
	}
}

func TestByName(t *testing.T) {
	for _, s := range Specs() {
		got, err := ByName(s.Name)
		if err != nil || got.Class != s.Class {
			t.Errorf("ByName(%q) = %v, %v", s.Name, got.Class, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{TPCW: "TPC-W", SPECjbb: "SPECjbb", TPCH: "TPC-H", SPECweb: "SPECweb"}
	for c, n := range want {
		if c.String() != n {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(specFor(t, SPECjbb).Scaled(64), 4, 42)
	b := NewGenerator(specFor(t, SPECjbb).Scaled(64), 4, 42)
	for i := 0; i < 10000; i++ {
		th := i % 4
		if a.Next(th) != b.Next(th) {
			t.Fatalf("streams diverged at ref %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(specFor(t, SPECjbb).Scaled(64), 4, 1)
	b := NewGenerator(specFor(t, SPECjbb).Scaled(64), 4, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next(0) == b.Next(0) {
			same++
		}
	}
	if same > 500 {
		t.Errorf("different seeds nearly identical: %d/1000 equal", same)
	}
}

func TestGeneratorBlocksInRange(t *testing.T) {
	for _, c := range All() {
		g := NewGenerator(specFor(t, c).Scaled(64), 4, 7)
		fp := g.FootprintBlocks()
		for i := 0; i < 50000; i++ {
			a := g.Next(i % 4)
			if a.Block >= fp {
				t.Fatalf("%v: block %d outside footprint %d", c, a.Block, fp)
			}
		}
	}
}

func TestGeneratorPrivateDisjointAcrossThreads(t *testing.T) {
	g := NewGenerator(specFor(t, TPCW).Scaled(64), 4, 9)
	seen := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		th := i % 4
		a := g.Next(th)
		if g.RegionOf(a.Block) != RegionPrivate {
			continue
		}
		if prev, ok := seen[a.Block]; ok && prev != th {
			t.Fatalf("private block %d touched by threads %d and %d", a.Block, prev, th)
		}
		seen[a.Block] = th
	}
}

func TestMigratoryBurstEndsWithWrite(t *testing.T) {
	spec := specFor(t, TPCH).Scaled(64)
	g := NewGenerator(spec, 1, 11)
	inBurst := false
	var burstBlock uint64
	writesSeen := 0
	for i := 0; i < 100000; i++ {
		a := g.Next(0)
		mig := g.RegionOf(a.Block) == RegionMigratory
		if mig {
			if inBurst && a.Block != burstBlock {
				t.Fatal("burst switched blocks mid-episode")
			}
			burstBlock = a.Block
			inBurst = !a.Write
			if a.Write {
				writesSeen++
			}
		} else if inBurst {
			t.Fatal("burst interrupted by non-migratory access")
		}
	}
	if writesSeen == 0 {
		t.Error("no migratory writes observed")
	}
}

func TestScanReadsPerBlock(t *testing.T) {
	spec := specFor(t, TPCH).Scaled(64)
	g := NewGenerator(spec, 4, 13)
	counts := map[uint64]int{}
	for i := 0; i < 400000; i++ {
		a := g.Next(i % 4)
		if g.RegionOf(a.Block) == RegionScan {
			counts[a.Block]++
			if a.Write {
				t.Fatal("scan access was a write")
			}
		}
	}
	if len(counts) == 0 {
		t.Fatal("no scan accesses")
	}
	// Most visited blocks should have been read about K times (the last
	// cursor position may be mid-flight).
	k := spec.ScanReadsPerBlock
	exact := 0
	for _, n := range counts {
		if n >= k {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(counts)); frac < 0.8 {
		t.Errorf("only %.2f of scan blocks read >= %d times", frac, k)
	}
}

func TestRegionClassification(t *testing.T) {
	g := NewGenerator(specFor(t, SPECweb).Scaled(64), 4, 17)
	regions := map[Region]bool{}
	for i := 0; i < 300000; i++ {
		a := g.Next(i % 4)
		regions[g.RegionOf(a.Block)] = true
	}
	for _, r := range []Region{RegionPrivate, RegionShared, RegionMigratory, RegionScan} {
		if !regions[r] {
			t.Errorf("region %d never touched", r)
		}
	}
}

func TestRefsAndTransactions(t *testing.T) {
	spec := specFor(t, SPECjbb).Scaled(64)
	g := NewGenerator(spec, 2, 19)
	for i := 0; i < 3000; i++ {
		g.Next(0)
	}
	for i := 0; i < 2000; i++ {
		g.Next(1)
	}
	if g.Refs(0) != 3000 || g.Refs(1) != 2000 || g.TotalRefs() != 5000 {
		t.Errorf("refs = %d/%d/%d", g.Refs(0), g.Refs(1), g.TotalRefs())
	}
	if want := 5000 / uint64(spec.RefsPerTx); g.Transactions() != want {
		t.Errorf("Transactions = %d, want %d", g.Transactions(), want)
	}
}

func TestGeneratorPanics(t *testing.T) {
	spec := specFor(t, TPCH)
	for _, fn := range []func(){
		func() { NewGenerator(spec, 0, 1) },
		func() { bad := spec; bad.Blocks = -1; NewGenerator(bad, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid generator construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestLayoutRegionsCoverAndDisjoint(t *testing.T) {
	f := func(seedRaw uint16) bool {
		for _, c := range All() {
			s := Specs()[c].Scaled(int(seedRaw%128) + 1)
			l := layoutFor(s, 4)
			// Regions tile [0, total) in order without overlap.
			if l.sharedBase != l.privPerThread*4 {
				return false
			}
			if l.migBase != l.sharedBase+l.sharedLen {
				return false
			}
			if l.scanBase != l.migBase+l.migLen {
				return false
			}
			if l.total != l.scanBase+l.scanLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteFractionApproximate(t *testing.T) {
	spec := specFor(t, SPECjbb).Scaled(64)
	g := NewGenerator(spec, 4, 21)
	writes, n := 0, 300000
	for i := 0; i < n; i++ {
		if g.Next(i % 4).Write {
			writes++
		}
	}
	frac := float64(writes) / float64(n)
	if frac <= 0 || frac > 0.35 {
		t.Errorf("overall write fraction %v implausible", frac)
	}
}

func TestSpecRegionOfMatchesGenerator(t *testing.T) {
	spec := specFor(t, TPCH).Scaled(64)
	g := NewGenerator(spec, 4, 3)
	for i := 0; i < 20000; i++ {
		a := g.Next(i % 4)
		if spec.RegionOf(a.Block, 4) != g.RegionOf(a.Block) {
			t.Fatalf("spec/generator region disagree for block %d", a.Block)
		}
	}
}

func TestRegionNames(t *testing.T) {
	want := map[Region]string{
		RegionPrivate: "private", RegionShared: "shared",
		RegionMigratory: "migratory", RegionScan: "scan",
	}
	for r, n := range want {
		if RegionName(r) != n {
			t.Errorf("RegionName(%d) = %q", r, RegionName(r))
		}
	}
	if RegionName(Region(99)) != "unknown" {
		t.Error("unknown region not handled")
	}
}

func TestTableIITargetsComplete(t *testing.T) {
	for _, c := range All() {
		tg := TableII()[c]
		if tg.C2CAll <= 0 || tg.BlocksK <= 0 || tg.TxDescribe == "" {
			t.Errorf("%v: incomplete Table II target %+v", c, tg)
		}
		if d := tg.C2CClean + tg.C2CDirty; d < 0.99 || d > 1.01 {
			t.Errorf("%v: clean+dirty = %v, want 1", c, d)
		}
	}
}
