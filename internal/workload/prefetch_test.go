package workload

import (
	"sync"
	"testing"

	"consim/internal/sim"
)

// prefetchSpec returns a spec exercising every sampling branch: phases,
// migratory episodes, scans, the shared cold sweep and Zipf hot set, and
// the private sweep/hot split.
func prefetchSpec(t *testing.T) Spec {
	t.Helper()
	return Specs()[TPCW].Scaled(64)
}

// drainOrder consumes n references per thread in a fixed round-robin
// interleaving from g via Next, returning the streams per thread.
func drainNext(g *Generator, threads, n int) [][]Access {
	out := make([][]Access, threads)
	for i := 0; i < n; i++ {
		for t := 0; t < threads; t++ {
			out[t] = append(out[t], g.Next(t))
		}
	}
	return out
}

// TestPrefillMatchesNext drives one generator through the prefill
// protocol (NextOr + Begin/Run/Adopt, falling back to FillSync when the
// steady gate is closed) and asserts the stream is bit-identical to a
// second generator consumed purely through Next in the same
// interleaving. The drain length is chosen to cross the warm-to-steady
// transition of the shared cold sweep, so the gate itself is exercised.
func TestPrefillMatchesNext(t *testing.T) {
	spec := prefetchSpec(t)
	const threads = 4
	const perThread = 30_000

	ref := NewGenerator(spec, threads, 12345)
	want := drainNext(ref, threads, perThread)

	g := NewGenerator(spec, threads, 12345)
	jobs := make([]*PrefillJob, threads)
	for i := range jobs {
		jobs[i] = NewPrefillJob(g, i)
	}
	rng := sim.NewRNG(99)
	var prefills, syncs int
	got := make([][]Access, threads)
	for i := 0; i < perThread; i++ {
		for th := 0; th < threads; th++ {
			a, ok := g.NextOr(th)
			if !ok {
				// Randomly choose the deferred path when legal, running
				// the worker step on another goroutine to mirror the
				// engine (and give the race detector something to check).
				if g.SteadyPrefill() && rng.Bool(0.7) {
					j := jobs[th]
					j.Begin()
					done := make(chan struct{})
					go func() { j.Run(); close(done) }()
					<-done
					if !j.Ready() {
						t.Fatal("job not ready after Run")
					}
					a = j.Adopt()
					prefills++
				} else {
					a = g.FillSync(th)
					syncs++
				}
			}
			got[th] = append(got[th], a)
		}
	}
	if prefills == 0 || syncs == 0 {
		t.Fatalf("want both paths exercised: prefills=%d syncs=%d", prefills, syncs)
	}
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				t.Fatalf("thread %d ref %d: got %+v want %+v (prefills=%d syncs=%d)",
					th, i, got[th][i], want[th][i], prefills, syncs)
			}
		}
	}
	if g.Refs(0) != ref.Refs(0) {
		t.Fatalf("Refs diverged: %d vs %d", g.Refs(0), ref.Refs(0))
	}
}

// TestPrefillConcurrentWorkers runs one in-flight prefill job per thread
// concurrently with the spine consuming and synchronously refilling the
// other threads, then adopts in thread order — the engine's actual
// overlap pattern — and checks the merged streams against pure Next.
func TestPrefillConcurrentWorkers(t *testing.T) {
	spec := prefetchSpec(t)
	const threads = 4
	const warm = 20_000 // enough to reach the steady shared sweep
	const rounds = 200

	ref := NewGenerator(spec, threads, 777)
	g := NewGenerator(spec, threads, 777)

	// Warm both generators identically through the live path.
	want := drainNext(ref, threads, warm)
	got := drainNext(g, threads, warm)
	if !g.SteadyPrefill() {
		t.Fatalf("generator not steady after %d refs/thread", warm)
	}

	// Adoption swaps the whole ring, so it is only legal at a drain
	// point: consume each thread's leftover prefetched entries first.
	for th := 0; th < threads; th++ {
		for {
			a, ok := g.NextOr(th)
			if !ok {
				break
			}
			got[th] = append(got[th], a)
			want[th] = append(want[th], ref.Next(th))
		}
	}

	jobs := make([]*PrefillJob, threads)
	for i := range jobs {
		jobs[i] = NewPrefillJob(g, i)
	}
	for r := 0; r < rounds; r++ {
		// Launch every thread's next batch concurrently...
		var wg sync.WaitGroup
		for _, j := range jobs {
			j.Begin()
			wg.Add(1)
			go func(j *PrefillJob) { defer wg.Done(); j.Run() }(j)
		}
		wg.Wait()
		// ...and adopt+drain in thread order, exactly one batch each.
		for th, j := range jobs {
			got[th] = append(got[th], j.Adopt())
			for k := 1; k < 256; k++ {
				a, ok := g.NextOr(th)
				if !ok {
					t.Fatalf("ring drained mid-batch at %d", k)
				}
				got[th] = append(got[th], a)
			}
			for k := 0; k < 256; k++ {
				want[th] = append(want[th], ref.Next(th))
			}
		}
	}
	for th := range want {
		for i := range want[th] {
			if got[th][i] != want[th][i] {
				t.Fatalf("thread %d ref %d: got %+v want %+v", th, i, got[th][i], want[th][i])
			}
		}
	}
}
