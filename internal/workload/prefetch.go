package workload

import "sync/atomic"

// Prefill lets the sharded engine compute a thread's next sampling batch
// on a worker goroutine while the timing spine keeps consuming the
// current ring, without perturbing the reference stream by a single bit.
//
// The batch loop (fillCore) draws from two kinds of state:
//
//   - per-thread state (RNG, migratory episode, sweep cursor, phase):
//     snapshotted into the job at Begin and committed back at Adopt, so
//     the worker never touches the Generator's arrays;
//
//   - generator-shared cursors (collaborative scan position, shared-region
//     cold sweep): these advance in cross-thread fill ORDER, which a
//     worker cannot know ahead of time. The deferred cursor sink records
//     which batch entries need a cursor value, and Adopt — which runs on
//     the spine at the exact point the synchronous fill would have — walks
//     the recorded entries in stream order and draws the live cursors.
//
// The deferral is only valid when cursor draws consume no RNG state that
// depends on cursor position. The scan and cold cursors themselves draw
// nothing, but the cold-vs-hot *decision* uses a probability that changes
// when the shared cold sweep finishes its first lap (SharedColdWarm vs
// SharedColdSteady). The sweep position is monotone, so once the lap is
// done it stays done: SteadyPrefill gates jobs to that regime, where the
// decision probability is a constant and the draw count is cursor-
// independent. Warm-phase batches must use the synchronous FillSync.
type PrefillJob struct {
	g      *Generator
	thread int
	st     threadGenState

	// buf is the staging ring the worker fills; Adopt swaps it with the
	// thread's live ring, so both arrays are reused forever (zero steady-
	// state allocations).
	buf []Access

	// scanIdx / coldIdx record, in stream order, the batch entries whose
	// Block must be drawn from the live scan / cold cursor at Adopt. The
	// two lists can be patched independently because the cursors are
	// independent: interleaving scan and cold draws differently does not
	// change what either cursor yields.
	scanIdx []int32
	coldIdx []int32

	// ready publishes the worker's completion to the spine. The
	// Store(true)/Load() pair carries the happens-before edge that makes
	// the spine's read of st, buf, and the index lists race-free.
	ready atomic.Bool
}

// NewPrefillJob allocates the reusable staging buffers for thread t.
// Call once at engine setup; the job is then recycled every batch.
func NewPrefillJob(g *Generator, t int) *PrefillJob {
	return &PrefillJob{
		g:       g,
		thread:  t,
		buf:     make([]Access, genBatch),
		scanIdx: make([]int32, 0, genBatch),
		coldIdx: make([]int32, 0, genBatch),
	}
}

// Thread returns the generator thread this job prefills for.
func (j *PrefillJob) Thread() int { return j.thread }

// SteadyPrefill reports whether thread batches may be prefilled off the
// spine: true once the shared-region cold sweep has completed its first
// lap, after which the cold-draw probability is constant. Spine-side only.
func (g *Generator) SteadyPrefill() bool { return g.sharedCold >= g.lay.sharedLen }

// NextOr pops the next prefetched reference for thread t, or reports
// false when the ring is drained (it never refills; the caller chooses
// FillSync or an adopted prefill batch). Spine-side only.
func (g *Generator) NextOr(t int) (Access, bool) {
	i := g.ringPos[t]
	if i == genBatch {
		return Access{}, false
	}
	g.ringPos[t] = i + 1
	return g.ring[t][i], true
}

// FillSync refills thread t's ring synchronously — the exact sequential
// path — and returns the first reference of the new batch.
func (g *Generator) FillSync(t int) Access { return g.refill(t) }

// Begin snapshots thread t's sampler state into the job and clears the
// ready flag. Spine-side; must not be called while a previous batch from
// this job is still unadopted.
func (j *PrefillJob) Begin() {
	j.g.loadThread(j.thread, &j.st)
	j.ready.Store(false)
}

// Run computes the batch against the snapshot. Worker-side: it reads only
// immutable Generator fields (spec, layout, Zipf tables), so it may run
// concurrently with the spine mutating every live cursor and other
// threads' state. Entries that need a shared cursor get a placeholder
// Block and an index-list entry for Adopt to patch.
func (j *PrefillJob) Run() {
	j.scanIdx = j.scanIdx[:0]
	j.coldIdx = j.coldIdx[:0]
	fillCore(j.g, j.thread, &j.st, j.buf[:genBatch:genBatch], deferredCursors{j})
	j.ready.Store(true)
}

// Ready reports whether Run has published its batch. Spine-side.
func (j *PrefillJob) Ready() bool { return j.ready.Load() }

// Adopt installs the prefilled batch as thread t's live ring at the point
// the synchronous fill would have run, patches the deferred shared-cursor
// entries in stream order against the live cursors, commits the worker's
// post-batch state, and returns the first reference (mirroring refill).
// Spine-side; the caller must have observed Ready.
func (j *PrefillJob) Adopt() Access {
	g, t := j.g, j.thread
	g.ring[t], j.buf = j.buf, g.ring[t]
	ring := g.ring[t]
	live := liveCursors{g}
	for _, i := range j.scanIdx {
		ring[i] = live.scan(int(i))
	}
	for _, i := range j.coldIdx {
		ring[i] = live.cold(int(i))
	}
	g.storeThread(t, &j.st)
	g.ringPos[t] = 1
	return ring[0]
}

// deferredCursors is the worker-side cursor sink: it records which batch
// entries need a live cursor draw instead of performing one. It reports
// the shared sweep as steady — jobs are gated to that regime — so the
// cold-draw probability matches what the live path would use.
type deferredCursors struct{ j *PrefillJob }

func (c deferredCursors) scan(i int) Access {
	c.j.scanIdx = append(c.j.scanIdx, int32(i))
	return Access{}
}

func (c deferredCursors) cold(i int) Access {
	c.j.coldIdx = append(c.j.coldIdx, int32(i))
	return Access{}
}

func (c deferredCursors) steadyShared() bool { return true }
