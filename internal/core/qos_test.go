package core

// Tests for the performance-isolation (QoS way-partitioning) extension:
// the paper's conclusion that consolidation should extend "from
// functional isolation into performance isolation".

import (
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

func TestQoSPartitionInstalledOnlyForSharedBanks(t *testing.T) {
	all := workload.Specs()
	cfg := fastCfg(4, sched.RoundRobin, all[workload.SPECjbb].Class, all[workload.TPCW].Class,
		all[workload.TPCW].Class, all[workload.TPCW].Class)
	cfg.QoSPartition = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Round robin puts one thread of each VM in every group: all banks
	// multi-tenant, all partitioned.
	for g, b := range sys.banks {
		if !b.Partitioned() {
			t.Errorf("bank %d not partitioned under RR", g)
		}
	}
	// Affinity gives each VM a private bank: no partitions.
	cfg.Policy = sched.Affinity
	sys, err = NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g, b := range sys.banks {
		if b.Partitioned() {
			t.Errorf("bank %d partitioned despite single tenant", g)
		}
	}
}

func TestQoSWeightedSharesProtectPrioritizedVM(t *testing.T) {
	// SPECjbb sharing banks with three TPC-W copies under round robin,
	// prioritized with a 3x QoS share: its miss rate must drop versus
	// the unpartitioned run, and the TPC-W co-runners pay for it.
	run := func(shares []int) Result {
		cfg := fastCfg(4, sched.RoundRobin,
			workload.SPECjbb, workload.TPCW, workload.TPCW, workload.TPCW)
		if shares != nil {
			cfg.QoSPartition = true
			cfg.QoSShares = shares
		}
		return mustRun(t, cfg)
	}
	free := run(nil)
	qos := run([]int{5, 1, 1, 1})
	freeRate := free.ByClass(workload.SPECjbb)[0].MissRate()
	qosRate := qos.ByClass(workload.SPECjbb)[0].MissRate()
	if qosRate >= freeRate {
		t.Errorf("priority share did not protect SPECjbb: %.4f -> %.4f", freeRate, qosRate)
	}
}

func TestQoSEqualSplitCanHurtReuseHeavyTenant(t *testing.T) {
	// The counterintuitive finding the equal-split experiment surfaces:
	// plain LRU already favors a reuse-heavy tenant (its hits refresh
	// recency while a sweeping co-runner's lines age out), so capping
	// everyone at an equal quota can *reduce* the reuse-heavy tenant's
	// natural occupancy. The assertion pins the mechanism: equal split
	// changes SPECjbb's miss rate measurably rather than being a no-op.
	run := func(qos bool) Result {
		cfg := fastCfg(4, sched.RoundRobin,
			workload.SPECjbb, workload.TPCW, workload.TPCW, workload.TPCW)
		cfg.QoSPartition = qos
		return mustRun(t, cfg)
	}
	free := run(false).ByClass(workload.SPECjbb)[0].MissRate()
	eq := run(true).ByClass(workload.SPECjbb)[0].MissRate()
	if eq == free {
		t.Error("equal partition had no effect at all")
	}
}

func TestQoSSharesValidation(t *testing.T) {
	all := workload.Specs()
	cfg := DefaultConfig(all[workload.TPCH], all[workload.TPCW])
	cfg.QoSShares = []int{1}
	if cfg.Validate() == nil {
		t.Error("mismatched shares length accepted")
	}
	cfg.QoSShares = []int{1, 0}
	if cfg.Validate() == nil {
		t.Error("zero share accepted")
	}
}

func TestQoSPartitionKeepsProtocolConsistent(t *testing.T) {
	cfg := fastCfg(4, sched.RoundRobin,
		workload.SPECjbb, workload.TPCW, workload.TPCH, workload.SPECweb)
	cfg.QoSPartition = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	checkGlobalConsistency(t, sys)
}
