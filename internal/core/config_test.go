package core

import (
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	good := DefaultConfig(spec)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mod := func(f func(*Config)) Config {
		c := DefaultConfig(spec)
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Cores = 0 }),
		mod(func(c *Config) { c.GroupSize = 3 }),
		mod(func(c *Config) { c.GroupSize = 0 }),
		mod(func(c *Config) { c.Workloads = nil }),
		mod(func(c *Config) { c.ThreadsPerVM = 0 }),
		mod(func(c *Config) { c.ThreadsPerVM = 5 }), // 5 VMs worth? no: 1 VM x 5 threads ok; use below
		mod(func(c *Config) { c.Scale = 0 }),
		mod(func(c *Config) { c.MeasureRefs = 0 }),
	}
	// ThreadsPerVM 5 with one VM is fine; force over-commit instead.
	bad[5] = DefaultConfig(spec, spec, spec, spec)
	bad[5].ThreadsPerVM = 5
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSharingName(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	cases := map[int]string{1: "private", 4: "shared-4-way", 16: "shared"}
	for gs, want := range cases {
		c := DefaultConfig(spec)
		c.GroupSize = gs
		if got := c.SharingName(); got != want {
			t.Errorf("GroupSize %d = %q, want %q", gs, got, want)
		}
	}
}

func TestScaledCapacities(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	c := DefaultConfig(spec)
	if c.l0Bytes() != DefaultL0Bytes || c.l1Bytes() != DefaultL1Bytes {
		t.Error("scale 1 changed private capacities")
	}
	if c.llcGroupBytes() != 4<<20 {
		t.Errorf("shared-4 group = %d bytes, want 4MB", c.llcGroupBytes())
	}
	c.GroupSize = 1
	if c.llcGroupBytes() != 1<<20 {
		t.Errorf("private bank = %d bytes, want 1MB", c.llcGroupBytes())
	}
	c.GroupSize = 16
	if c.llcGroupBytes() != 16<<20 {
		t.Errorf("fully shared = %d bytes, want 16MB", c.llcGroupBytes())
	}
	// Scaling divides but keeps valid power-of-two line geometry.
	c.Scale = 16
	if got := c.llcGroupBytes(); got != 1<<20 {
		t.Errorf("scaled shared bank = %d", got)
	}
	c.Scale = 1 << 30
	if got := c.llcGroupBytes(); got < 16*64 {
		t.Errorf("scaling floor violated: %d", got)
	}
}

func TestGroups(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	c := DefaultConfig(spec)
	for gs, want := range map[int]int{1: 16, 2: 8, 4: 4, 8: 2, 16: 1} {
		c.GroupSize = gs
		if c.Groups() != want {
			t.Errorf("GroupSize %d -> %d groups", gs, c.Groups())
		}
	}
}

func TestNewSystemErrors(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	c := DefaultConfig(spec)
	c.GroupSize = 5
	if _, err := NewSystem(c); err == nil {
		t.Error("invalid group size accepted")
	}
}

func TestNewSystemAssignmentMatchesPolicy(t *testing.T) {
	specs := workload.Specs()
	cfg := DefaultConfig(specs[workload.TPCW], specs[workload.TPCH], specs[workload.SPECjbb], specs[workload.TPCH])
	cfg.Scale = 64
	cfg.Policy = sched.Affinity
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	asg := sys.Assignment()
	if len(asg) != 4 {
		t.Fatalf("got %d VMs", len(asg))
	}
	used := map[int]bool{}
	for _, threads := range asg {
		for _, c := range threads {
			if used[c] {
				t.Fatal("core double-booked")
			}
			used[c] = true
		}
	}
	if len(used) != 16 {
		t.Errorf("machine not at capacity: %d cores used", len(used))
	}
}

func TestSharingNameAllSizes(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	c := DefaultConfig(spec)
	for gs, want := range map[int]string{2: "shared-2-way", 8: "shared-8-way"} {
		c.GroupSize = gs
		if got := c.SharingName(); got != want {
			t.Errorf("GroupSize %d = %q", gs, got)
		}
	}
}

func TestCoreCapacity(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	c := DefaultConfig(spec, spec, spec, spec)
	if c.CoreCapacity() != 1 {
		t.Errorf("at-capacity machine capacity = %d", c.CoreCapacity())
	}
	c = DefaultConfig(spec, spec, spec, spec, spec)
	c.TimesliceCycles = 1000
	if c.CoreCapacity() != 2 {
		t.Errorf("20 threads on 16 cores capacity = %d", c.CoreCapacity())
	}
}

func TestPipeStagesDefaulted(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	cfg := DefaultConfig(spec)
	cfg.Scale = 64
	cfg.PipeStages = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().PipeStages != DefaultPipeStages {
		t.Errorf("PipeStages defaulted to %d", sys.Config().PipeStages)
	}
}

func TestResultHelpers(t *testing.T) {
	res := Result{
		Config: func() Config {
			c := DefaultConfig(workload.Specs()[workload.TPCH])
			c.GroupSize = 4
			return c
		}(),
		Cycles: 100,
		VMs: []VMResult{
			{VM: 0, Class: workload.TPCH, Name: "TPC-H", CyclesPerTx: 10},
			{VM: 1, Class: workload.TPCW, Name: "TPC-W", CyclesPerTx: 20},
			{VM: 2, Class: workload.TPCH, Name: "TPC-H", CyclesPerTx: 30},
		},
	}
	h := res.ByClass(workload.TPCH)
	if len(h) != 2 || h[0].VM != 0 || h[1].VM != 2 {
		t.Errorf("ByClass = %+v", h)
	}
	if len(res.ByClass(workload.SPECweb)) != 0 {
		t.Error("phantom class results")
	}
	s := res.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := Snapshot{
		ResidentLines:   100,
		ReplicatedLines: 25,
		Occupancy:       [][]int{{30, 70}, {0, 0}},
		GroupLines:      128,
	}
	if s.ReplicationFraction() != 0.25 {
		t.Errorf("ReplicationFraction = %v", s.ReplicationFraction())
	}
	if got := s.OccupancyShare(0, 1); got != 0.7 {
		t.Errorf("OccupancyShare = %v", got)
	}
	if s.OccupancyShare(1, 0) != 0 {
		t.Error("empty bank share not zero")
	}
	empty := Snapshot{}
	if empty.ReplicationFraction() != 0 {
		t.Error("empty snapshot not zero-safe")
	}
}
