package core

import (
	"testing"

	"consim/internal/cache"
	"consim/internal/sched"
	"consim/internal/workload"
)

// fastCfg returns a heavily scaled configuration for quick tests.
func fastCfg(groupSize int, policy sched.Policy, classes ...workload.Class) Config {
	all := workload.Specs()
	var specs []workload.Spec
	for _, c := range classes {
		specs = append(specs, all[c])
	}
	cfg := DefaultConfig(specs...)
	cfg.Scale = 16
	cfg.GroupSize = groupSize
	cfg.Policy = policy
	cfg.WarmupRefs = 40_000
	cfg.MeasureRefs = 80_000
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterminism(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCH, workload.SPECjbb)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.VMs {
		if a.VMs[i].Stats != b.VMs[i].Stats {
			t.Fatalf("vm %d stats differ:\n%+v\n%+v", i, a.VMs[i].Stats, b.VMs[i].Stats)
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCH)
	a := mustRun(t, cfg)
	cfg.Seed = 999
	b := mustRun(t, cfg)
	if a.Cycles == b.Cycles && a.VMs[0].Stats == b.VMs[0].Stats {
		t.Error("different seeds produced identical runs")
	}
}

// TestStatConservation checks the accounting identities that must hold
// for any run: every LLC miss was satisfied either on-chip or by memory,
// misses nest properly, and latencies are sane.
func TestStatConservation(t *testing.T) {
	for _, gs := range []int{1, 4, 16} {
		for _, classes := range [][]workload.Class{
			{workload.TPCH},
			{workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb},
		} {
			res := mustRun(t, fastCfg(gs, sched.RoundRobin, classes...))
			for _, v := range res.VMs {
				s := v.Stats
				if s.Refs == 0 {
					t.Fatalf("gs=%d vm=%d: no references", gs, v.VM)
				}
				if s.LLCMisses > s.PrivMisses {
					t.Errorf("gs=%d %s: LLC misses %d exceed private misses %d", gs, v.Name, s.LLCMisses, s.PrivMisses)
				}
				if s.MemReads > s.LLCMisses {
					t.Errorf("gs=%d %s: memory reads %d exceed LLC misses %d", gs, v.Name, s.MemReads, s.LLCMisses)
				}
				// Every LLC miss is either a transfer or a memory read;
				// in-group dirty transfers can push C2C above the
				// LLC-miss count but never below the residue.
				if s.C2C()+s.MemReads < s.LLCMisses {
					t.Errorf("gs=%d %s: %d LLC misses but only %d c2c + %d mem", gs, v.Name, s.LLCMisses, s.C2C(), s.MemReads)
				}
				if s.PrivMisses > 0 && s.AvgMissLatency() < float64(DefaultLLCLatency) {
					t.Errorf("gs=%d %s: miss latency %.1f below LLC latency", gs, v.Name, s.AvgMissLatency())
				}
				if v.CyclesPerTx <= 0 || v.TouchedBlocks == 0 {
					t.Errorf("gs=%d %s: degenerate result %+v", gs, v.Name, v)
				}
			}
		}
	}
}

func TestFullySharedHasNoReplication(t *testing.T) {
	res := mustRun(t, fastCfg(16, sched.RoundRobin, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb))
	if f := res.Snapshot.ReplicationFraction(); f != 0 {
		t.Errorf("fully shared LLC replicated %.3f of lines", f)
	}
}

func TestPrivateRoundRobinReplicates(t *testing.T) {
	res := mustRun(t, fastCfg(1, sched.RoundRobin, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb))
	if f := res.Snapshot.ReplicationFraction(); f <= 0 {
		t.Error("private caches with a sharing workload showed zero replication")
	}
}

func TestReplicationOrderingRRvsAffinity(t *testing.T) {
	// Under shared-4, RR spreads each workload's threads across banks
	// (replicating shared data); affinity packs them (no replication of
	// a workload's data across banks beyond incidental).
	mk := func(p sched.Policy) float64 {
		res := mustRun(t, fastCfg(4, p, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb))
		return res.Snapshot.ReplicationFraction()
	}
	rr, aff := mk(sched.RoundRobin), mk(sched.Affinity)
	if rr <= aff {
		t.Errorf("replication rr=%.3f <= affinity=%.3f", rr, aff)
	}
}

func TestOccupancySumsToCapacityShare(t *testing.T) {
	res := mustRun(t, fastCfg(4, sched.RoundRobin, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb))
	for g, occ := range res.Snapshot.Occupancy {
		tot := 0
		for _, n := range occ {
			tot += n
		}
		if tot > res.Snapshot.GroupLines {
			t.Errorf("bank %d holds %d lines of %d capacity", g, tot, res.Snapshot.GroupLines)
		}
		if tot == 0 {
			t.Errorf("bank %d empty at snapshot", g)
		}
		var shares float64
		for v := range occ {
			shares += res.Snapshot.OccupancyShare(g, v)
		}
		if shares < 0.999 || shares > 1.001 {
			t.Errorf("bank %d occupancy shares sum to %v", g, shares)
		}
	}
}

func TestIsolationAffinityBeatsRRForDirtySharing(t *testing.T) {
	// §V-B: in isolation, affinity does better than round robin because
	// a round-robin placement makes dirty misses travel across groups
	// through the directory, while affinity satisfies them inside one
	// shared bank group. TPC-H (dirty-sharing-heavy) shows it clearest.
	aff := mustRun(t, fastCfg(4, sched.Affinity, workload.TPCH))
	rr := mustRun(t, fastCfg(4, sched.RoundRobin, workload.TPCH))
	if aff.VMs[0].AvgMissLatency() >= rr.VMs[0].AvgMissLatency() {
		t.Errorf("affinity miss latency %.1f >= rr %.1f",
			aff.VMs[0].AvgMissLatency(), rr.VMs[0].AvgMissLatency())
	}
}

func TestConsolidationRaisesMissRate(t *testing.T) {
	// SPECjbb packed with three TPC-W copies must miss more than alone
	// with the whole chip (the paper's central observation).
	iso := mustRun(t, fastCfg(16, sched.Affinity, workload.SPECjbb))
	mix := mustRun(t, fastCfg(4, sched.Affinity, workload.SPECjbb, workload.TPCW, workload.TPCW, workload.TPCW))
	isoRate := iso.VMs[0].MissRate()
	mixRate := mix.ByClass(workload.SPECjbb)[0].MissRate()
	if mixRate <= isoRate {
		t.Errorf("consolidated miss rate %.4f <= isolated %.4f", mixRate, isoRate)
	}
}

func TestCapacityGradient(t *testing.T) {
	// Isolated TPC-H: misses must grow monotonically as the LLC share
	// shrinks from fully shared to private (Figure 3's shape).
	var rates []float64
	for _, gs := range []int{16, 4, 1} {
		res := mustRun(t, fastCfg(gs, sched.Affinity, workload.TPCH))
		rates = append(rates, res.VMs[0].MissRate())
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("miss rates not monotone in sharing: %v", rates)
	}
}

func TestMissLatencyIncludesMemoryForThrashingWorkload(t *testing.T) {
	res := mustRun(t, fastCfg(1, sched.Affinity, workload.TPCW))
	if lat := res.VMs[0].AvgMissLatency(); lat < float64(DefaultMemLatency)/2 {
		t.Errorf("TPC-W private miss latency %.1f implausibly low", lat)
	}
}

func TestSnapshotMidRun(t *testing.T) {
	cfg := fastCfg(4, sched.RoundRobin, workload.TPCH, workload.TPCH, workload.TPCH, workload.TPCH)
	cfg.SnapshotRefs = cfg.MeasureRefs / 2
	res := mustRun(t, cfg)
	if res.Snapshot.At == 0 || res.Snapshot.ResidentLines == 0 {
		t.Error("mid-run snapshot empty")
	}
}

func TestIdleCoresStayIdle(t *testing.T) {
	// Isolation run: 4 active cores; the other 12 must see no traffic
	// through their private caches.
	cfg := fastCfg(4, sched.Affinity, workload.TPCH)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	active := map[int]bool{}
	for _, threads := range sys.Assignment() {
		for _, c := range threads {
			active[c] = true
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		if active[c] {
			continue
		}
		if sys.l1[c].Accesses != 0 {
			t.Errorf("idle core %d saw %d L1 accesses", c, sys.l1[c].Accesses)
		}
	}
}

func TestVMAddressIsolation(t *testing.T) {
	// No cache line may be tagged with more than one VM over a whole
	// run: VMs have disjoint physical regions.
	cfg := fastCfg(4, sched.RoundRobin, workload.TPCH, workload.SPECjbb, workload.TPCW, workload.SPECweb)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, bank := range sys.banks {
		bank.ForEach(func(l *cache.Line) {
			owner := -1
			for i, m := range sys.vms {
				if m.Owns(l.Tag) {
					if owner >= 0 {
						t.Fatalf("line %#x owned by VMs %d and %d", l.Tag, owner, i)
					}
					owner = i
				}
			}
			if owner < 0 {
				t.Fatalf("line %#x owned by no VM", l.Tag)
			}
			if int(l.VM) != owner {
				t.Fatalf("line %#x tagged vm%d but owned by vm%d", l.Tag, l.VM, owner)
			}
		})
	}
}
