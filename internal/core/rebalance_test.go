package core

// Tests for the §VII dynamic-scheduling extension: periodic hypervisor
// rebalancing with thread migration.

import (
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

func TestRebalanceMigratesThreads(t *testing.T) {
	cfg := fastCfg(4, sched.Random,
		workload.TPCH, workload.SPECjbb, workload.TPCW, workload.SPECweb)
	cfg.RebalanceCycles = 100_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Migrations == 0 {
		t.Error("no migrations under periodic random rebalancing")
	}
	for _, v := range res.VMs {
		if v.Stats.Refs == 0 {
			t.Errorf("vm %d starved after migrations", v.VM)
		}
	}
	checkGlobalConsistency(t, sys)
}

func TestRebalanceIsolationRunSurvives(t *testing.T) {
	// The starvation hazard: an isolation run (4 threads on 16 cores)
	// migrates threads onto previously idle cores, which must be woken.
	cfg := fastCfg(4, sched.Random, workload.TPCH)
	cfg.RebalanceCycles = 50_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VMs[0].Stats.Refs == 0 {
		t.Fatal("isolated workload starved under rebalancing")
	}
	if sys.Migrations == 0 {
		t.Error("random rebalancing never moved the isolated threads")
	}
	checkGlobalConsistency(t, sys)
}

func TestRebalanceCostsMisses(t *testing.T) {
	// Frequent migration must raise the miss rate versus static binding
	// (each move abandons warmed L0/L1 state).
	run := func(rebalance bool) float64 {
		cfg := fastCfg(4, sched.Random,
			workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb)
		if rebalance {
			cfg.RebalanceCycles = 30_000
		}
		res := mustRun(t, cfg)
		sum := 0.0
		for _, v := range res.VMs {
			sum += v.Stats.MissRate()
		}
		return sum / float64(len(res.VMs))
	}
	static := run(false)
	dynamic := run(true)
	if dynamic <= static {
		t.Errorf("migration did not cost misses: static %.4f, dynamic %.4f", static, dynamic)
	}
}

func TestRebalanceWithOvercommit(t *testing.T) {
	all := workload.Specs()
	cfg := DefaultConfig(
		all[workload.TPCH], all[workload.SPECjbb], all[workload.TPCW],
		all[workload.SPECweb], all[workload.TPCH], all[workload.SPECjbb],
	)
	cfg.Scale = 32
	cfg.Policy = sched.Random
	cfg.WarmupRefs = 10_000
	cfg.MeasureRefs = 20_000
	cfg.TimesliceCycles = 10_000
	cfg.RebalanceCycles = 80_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Switches == 0 || sys.Migrations == 0 {
		t.Errorf("switches=%d migrations=%d; both mechanisms must fire", sys.Switches, sys.Migrations)
	}
	for _, v := range res.VMs {
		if v.Stats.Refs == 0 {
			t.Errorf("vm %d starved", v.VM)
		}
	}
	checkGlobalConsistency(t, sys)
}

func TestRebalanceDeterminism(t *testing.T) {
	cfg := fastCfg(4, sched.Random, workload.TPCH, workload.TPCW)
	cfg.RebalanceCycles = 60_000
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Cycles != b.Cycles || a.VMs[0].Stats != b.VMs[0].Stats {
		t.Error("dynamic rebalancing broke determinism")
	}
}
