// Sharded intra-run execution.
//
// The simulator's event loop executes every memory access atomically at
// event-pop time: a fetch walks the directory, invalidates remote
// caches and updates mesh and controller contention state in one call.
// Cross-core effects are therefore visible instantaneously — the
// conservative lookahead between any two cores is zero — so a
// domain-decomposed parallel engine (per-shard calendars advancing in
// barrier-synchronous cycle windows) cannot overlap any two events
// without changing results. What CAN leave the critical path is the
// functional plane: sampling the workloads' reference streams and
// pre-drawing think times, which together are ~15% of the per-event
// cost and touch no timing state.
//
// -shards=N therefore keeps a single timing spine — the exact
// sequential event loop, popping events in the exact sequential order —
// and adds N-1 workers that keep each workload thread's next reference
// batch and each core's next think-time batch ready before the spine
// needs them. Bit-identity holds by construction: the spine consumes
// pre-computed values that are provably equal to what the inline
// computation would produce (see workload.PrefillJob for the deferred
// shared-cursor protocol), and every timing-visible mutation still
// happens on the spine in event order.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"consim/internal/obs"
	"consim/internal/sim"
	"consim/internal/workload"
)

// thinkBatchLen is the number of think-time draws pre-computed per core
// batch. It matches the workload generator's ring size so both pipelines
// refill on comparable cadences.
const thinkBatchLen = 256

// Worker task encoding: low bit selects the kind, the rest is an index
// (prefill slot or core).
const (
	taskPrefill = 0
	taskThink   = 1
)

func encodeTask(kind, idx int) uint32 { return uint32(idx)<<1 | uint32(kind) }

// prefillSlot tracks one workload thread's in-flight reference batch.
type prefillSlot struct {
	job      *workload.PrefillJob
	g        *workload.Generator
	idx      int // own index, for task encoding
	worker   int
	inflight bool // a Begin has been posted and not yet adopted
}

// thinkBatch double-buffers one core's pre-drawn think times. The spine
// consumes cur while a worker fills stage from the core RNG state where
// the previous batch ended; adoption swaps the buffers and pipelines the
// next fill. Pre-drawing is bit-identical to inline draws because the
// draw range is constant for the core (single resident runnable, no
// rebalancing — gated at engine construction) and the RNG stream is
// consumed in the same order.
type thinkBatch struct {
	cur, stage []uint64
	pos        int
	n          uint64 // constant Uint64n range: 2*mean think + 1
	startState uint64 // RNG position the next fill starts from
	endState   uint64 // position after the staged batch (worker-written)
	ready      atomic.Bool
	worker     int
	enabled    bool
}

// ShardStats reports what the sharded engine did during a run; all
// fields are zero for the sequential engine.
type ShardStats struct {
	// Shards is the configured lane count, Workers the goroutines spawned.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Prefills counts reference batches adopted from workers, SyncFills
	// batches the spine computed inline (warm-up, before the shared-sweep
	// gate opens), ThinkBatches think batches adopted.
	Prefills     uint64 `json:"prefills,omitempty"`
	SyncFills    uint64 `json:"sync_fills,omitempty"`
	ThinkBatches uint64 `json:"think_batches,omitempty"`
	// Stalls counts adoptions that found the batch not ready, and
	// StallSeconds the wall time the spine spent waiting on them — the
	// sharded engine's analogue of barrier-stall time.
	Stalls       uint64  `json:"stalls,omitempty"`
	StallSeconds float64 `json:"stall_seconds,omitempty"`
}

// shardEngine owns the worker lanes of one System.
type shardEngine struct {
	plan  sim.ShardPlan
	rings []*sim.TaskRing // one SPSC ring per worker
	wg    sync.WaitGroup

	slots  []prefillSlot
	slotOf [][]int32 // [vm][thread] -> slot index; -1 = no generator

	thinks []thinkBatch // indexed by core; enabled cores only

	stats ShardStats

	// laneNanos accumulates each worker lane's task-execution wall time
	// (atomic: the spine reads it for the run's PhaseProfile while
	// workers may still be draining in-flight tasks).
	laneNanos []atomic.Int64

	// tr / lanes give each worker its own trace lane, so Perfetto shows
	// the functional plane next to the spine and stalls read as gaps.
	tr    *obs.Tracer
	lanes []int
}

// attachTracer acquires one trace lane per worker. Idempotent; a nil
// tracer leaves tracing off.
func (e *shardEngine) attachTracer(tr *obs.Tracer) {
	if tr == nil || e.tr != nil {
		return
	}
	e.tr = tr
	e.lanes = make([]int, len(e.rings))
	for w := range e.lanes {
		e.lanes[w] = tr.AcquireLane()
	}
}

// newShardEngine builds the engine for s (cfg.Shards > 1 validated).
// Worker goroutines start in start(), not here.
func newShardEngine(s *System) *shardEngine {
	cfg := &s.cfg
	e := &shardEngine{
		plan: sim.NewShardPlan(cfg.Shards, cfg.Cores),
	}
	workers := e.plan.Workers()
	e.stats.Shards = cfg.Shards
	e.stats.Workers = workers

	// Prefill slots: one per (vm, thread) whose source is the statistical
	// generator. Trace-replay sources fall back to the live path.
	e.slotOf = make([][]int32, len(s.vms))
	for v, m := range s.vms {
		threads := cfg.ThreadsOf(v)
		e.slotOf[v] = make([]int32, threads)
		g, ok := m.Gen.(*workload.Generator)
		for t := 0; t < threads; t++ {
			if !ok {
				e.slotOf[v][t] = -1
				continue
			}
			idx := len(e.slots)
			e.slotOf[v][t] = int32(idx)
			e.slots = append(e.slots, prefillSlot{
				job:    workload.NewPrefillJob(g, t),
				g:      g,
				idx:    idx,
				worker: idx % workers,
			})
		}
	}

	// Think batches: legal only while a core's resident runnable — and
	// hence the draw range — cannot change: exactly one thread bound to
	// the core and no dynamic rebalancing.
	e.thinks = make([]thinkBatch, cfg.Cores)
	for c := range e.thinks {
		tb := &e.thinks[c]
		tb.worker = e.plan.WorkerOf(c)
		if cfg.RebalanceCycles > 0 || len(s.cores[c].queue) != 1 {
			continue
		}
		tb.enabled = true
		tb.cur = make([]uint64, thinkBatchLen)
		tb.stage = make([]uint64, thinkBatchLen)
		tb.pos = thinkBatchLen // force adoption on first use
		tb.n = s.thinkOf[s.cores[c].queue[0].vmID]
	}

	// Ring capacity: every slot and every core can have at most one task
	// in flight, so per-worker occupancy is bounded by the total.
	e.rings = make([]*sim.TaskRing, workers)
	for w := range e.rings {
		e.rings[w] = sim.NewTaskRing(len(e.slots) + cfg.Cores + 1)
	}
	e.laneNanos = make([]atomic.Int64, workers)
	return e
}

// start seeds the think pipelines and launches the worker goroutines.
func (e *shardEngine) start(s *System) {
	for c := range e.thinks {
		tb := &e.thinks[c]
		if !tb.enabled {
			continue
		}
		tb.startState = s.cores[c].rng.State()
		tb.ready.Store(false)
		e.rings[tb.worker].Push(encodeTask(taskThink, c))
		e.stats.ThinkBatches++
	}
	for w := range e.rings {
		e.wg.Add(1)
		go e.worker(w)
	}
}

// stop drains and joins the workers and releases their trace lanes.
func (e *shardEngine) stop() {
	for _, r := range e.rings {
		r.Close()
	}
	e.wg.Wait()
	if e.tr != nil {
		for _, lane := range e.lanes {
			e.tr.ReleaseLane(lane)
		}
		e.tr = nil
	}
}

// worker executes posted tasks until its ring closes.
func (e *shardEngine) worker(w int) {
	defer e.wg.Done()
	tr, lane := e.tr, 0
	if tr != nil {
		lane = e.lanes[w]
	}
	ring := e.rings[w]
	for {
		task, ok := ring.Pop()
		if !ok {
			return
		}
		t0 := time.Now()
		if task&1 == taskPrefill {
			if tr != nil {
				tr.Begin(lane, "prefill")
			}
			e.slots[task>>1].job.Run()
		} else {
			if tr != nil {
				tr.Begin(lane, "think")
			}
			e.runThink(&e.thinks[task>>1])
		}
		if tr != nil {
			tr.End(lane)
		}
		e.laneNanos[w].Add(time.Since(t0).Nanoseconds())
	}
}

// runThink fills tb.stage with the next thinkBatchLen draws of the
// core's RNG stream. Worker-side; the Pop/Push and ready flag carry the
// happens-before edges with the spine.
func (e *shardEngine) runThink(tb *thinkBatch) {
	var r sim.RNG
	r.Restore(tb.startState)
	n := tb.n
	for i := range tb.stage {
		tb.stage[i] = r.Uint64n(n)
	}
	tb.endState = r.State()
	tb.ready.Store(true)
}

// shardSource is the engine's refSource: references come from prefilled
// rings, think times from pre-drawn batches, with inline fallbacks
// whenever a fast path is not legal. All methods run on the spine.
type shardSource struct{ e *shardEngine }

func (ss shardSource) next(s *System, run runnable) workload.Access {
	e := ss.e
	si := e.slotOf[run.vmID][run.thread]
	if si < 0 {
		return s.vms[run.vmID].Gen.Next(run.thread)
	}
	sl := &e.slots[si]
	if a, ok := sl.g.NextOr(run.thread); ok {
		return a
	}
	return e.refill(sl)
}

// refill handles a drained reference ring: adopt the in-flight batch
// (pipelining the next one) or, before the prefill gate opens, fill
// inline and start the pipeline once the generator reaches steady state.
func (e *shardEngine) refill(sl *prefillSlot) workload.Access {
	if sl.inflight {
		if !sl.job.Ready() {
			e.stats.Stalls++
			start := time.Now()
			for !sl.job.Ready() {
				runtime.Gosched()
			}
			e.stats.StallSeconds += time.Since(start).Seconds()
		}
		a := sl.job.Adopt()
		sl.job.Begin()
		e.rings[sl.worker].Push(encodeTask(taskPrefill, sl.idx))
		e.stats.Prefills++
		return a
	}
	a := sl.g.FillSync(sl.job.Thread())
	e.stats.SyncFills++
	if sl.g.SteadyPrefill() {
		sl.job.Begin()
		e.rings[sl.worker].Push(encodeTask(taskPrefill, sl.idx))
		sl.inflight = true
	}
	return a
}

func (ss shardSource) think(s *System, c, vmID int) uint64 {
	e := ss.e
	tb := &e.thinks[c]
	if !tb.enabled {
		return s.cores[c].rng.Uint64n(s.thinkOf[vmID])
	}
	if tb.pos < thinkBatchLen {
		v := tb.cur[tb.pos]
		tb.pos++
		return v
	}
	e.await(&tb.ready)
	tb.cur, tb.stage = tb.stage, tb.cur
	tb.pos = 1
	tb.startState = tb.endState
	tb.ready.Store(false)
	e.rings[tb.worker].Push(encodeTask(taskThink, c))
	e.stats.ThinkBatches++
	return tb.cur[0]
}

// await spins the spine until flag is set, yielding the processor so the
// owing worker can run (on a single-CPU host the yield IS the schedule).
// Stall counts and wall time feed the run's ShardStats.
func (e *shardEngine) await(flag *atomic.Bool) {
	if flag.Load() {
		return
	}
	e.stats.Stalls++
	start := time.Now()
	for !flag.Load() {
		runtime.Gosched()
	}
	e.stats.StallSeconds += time.Since(start).Seconds()
}
