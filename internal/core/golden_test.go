package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"consim/internal/sched"
	"consim/internal/vm"
	"consim/internal/workload"
)

// The golden-result fixtures pin the simulator's exact output for six
// canonical configurations (private / shared-4 / fully-shared LLC under
// both placement policies, fixed seed). Any hot-path rewrite — cache
// storage layout, event-queue discipline, reference sampling — must
// reproduce these digests bit-for-bit or consciously regenerate them
// with -update-golden and justify the behaviour change in review.
//
//	go test ./internal/core -run TestGoldenResults -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite results/golden fixtures from the current simulator")

// goldenShards runs the fixtures through the sharded engine; the digests
// must match the committed (sequential) fixtures bit-for-bit at every
// shard count, which is the engine's central determinism claim:
//
//	go test ./internal/core -run TestGoldenResults -shards 4
var goldenShards = flag.Int("shards", 1, "shard count to run the golden fixtures at (results must not change)")

const goldenDir = "../../results/golden"

// goldenVM is the per-VM slice of a digest. Stats covers every counter
// the paper's metrics derive from, so a drift in any of them fails.
type goldenVM struct {
	Name          string
	Stats         vm.Stats
	TouchedBlocks uint64
}

// goldenDigest is the deterministic projection of a core.Result: every
// simulated quantity, no host-side measurements (wall time is excluded
// by construction).
type goldenDigest struct {
	Label           string
	Cycles          uint64
	Switches        uint64
	Migrations      uint64
	ResidentLines   int
	ReplicatedLines int
	Occupancy       [][]int
	NetAvgWait      float64
	NetAvgHops      float64
	MemAvgWait      float64
	DirCacheHitRate float64
	VMs             []goldenVM
}

func digestOf(res Result) goldenDigest {
	d := goldenDigest{
		Label:           res.Config.Label(),
		Cycles:          uint64(res.Cycles),
		Switches:        res.Switches,
		Migrations:      res.Migrations,
		ResidentLines:   res.Snapshot.ResidentLines,
		ReplicatedLines: res.Snapshot.ReplicatedLines,
		Occupancy:       res.Snapshot.Occupancy,
		NetAvgWait:      res.NetAvgWait,
		NetAvgHops:      res.NetAvgHops,
		MemAvgWait:      res.MemAvgWait,
		DirCacheHitRate: res.DirCacheHitRate,
	}
	for _, v := range res.VMs {
		d.VMs = append(d.VMs, goldenVM{Name: v.Name, Stats: v.Stats, TouchedBlocks: v.TouchedBlocks})
	}
	return d
}

// goldenConfigs returns the six canonical fixtures: each LLC organization
// of the paper (private, shared-4, fully shared) under both placement
// policies, running the full four-workload consolidation at 1/16 scale.
func goldenConfigs() map[string]Config {
	out := make(map[string]Config)
	for _, gs := range []int{1, 4, 16} {
		for _, pol := range []sched.Policy{sched.RoundRobin, sched.Affinity} {
			cfg := fastCfg(gs, pol, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
			cfg.WarmupRefs = 20_000
			cfg.MeasureRefs = 40_000
			name := map[int]string{1: "private", 4: "shared4", 16: "fullyshared"}[gs] + "_" + pol.String()
			out[name] = cfg
		}
	}
	return out
}

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fixtures are covered by the full suite")
	}
	for name, cfg := range goldenConfigs() {
		cfg.Shards = *goldenShards
		t.Run(name, func(t *testing.T) {
			got := digestOf(mustRun(t, cfg))
			path := filepath.Join(goldenDir, name+".json")
			if *updateGolden {
				buf, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
			}
			var want goldenDigest
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if !reflect.DeepEqual(got, want) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				t.Errorf("digest drifted from %s.\ngot:\n%s\n\nDiff the fixture to find the metric; "+
					"regenerate with -update-golden only for a deliberate, documented behaviour change.", name, gotJSON)
			}
		})
	}
}
