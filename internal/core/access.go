package core

import (
	"fmt"
	"math/bits"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/sim"
	"consim/internal/vm"
)

// This file implements the memory-access walk: L0 -> L1 -> LLC bank ->
// directory home -> {remote cache | memory}, with SGI-Origin-style
// three-hop forwarding for cache-to-cache transfers and invalidation on
// writes. Every latency is accumulated on the mesh model (reserving link
// time), the bank/directory occupancy trackers and the memory
// controllers, so contention emerges from the traffic itself.
//
// The walk is generic over a timingModel so the sampled-simulation mode
// can fast-forward functionally: liveTiming is the detailed machine
// (every call mutates contention state exactly as before the split), and
// ffTiming strips the walk down to its functional effects — cache and
// directory state still evolve reference by reference, but the mesh,
// bank/directory occupancy and memory controllers are never touched and
// per-VM counters land in scratch. The type parameter monomorphizes both
// instantiations, so the detailed path compiles to the same code it was
// as plain methods.

// timingModel abstracts every timing-visible side effect of the access
// walk. Implementations must not touch any state the functional plane
// (cache arrays, directory, workload cursors) depends on; conversely the
// walk routes every contention-state mutation through these methods.
type timingModel interface {
	// route advances a message across the mesh (reserving link time in
	// the detailed model) and returns its arrival time.
	route(s *System, at sim.Cycle, from, to, flits int) sim.Cycle
	// bankAccess reserves the LLC slice at node and returns data-ready
	// time.
	bankAccess(s *System, at sim.Cycle, node int) sim.Cycle
	// dirVisit reserves the directory slice at home and performs the
	// directory-cache lookup (functional warming in both models).
	dirVisit(s *System, at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool)
	// memRead issues a demand fetch at a controller.
	memRead(s *System, at sim.Cycle, addr sim.Addr) sim.Cycle
	// writeback retires dirty data at a controller.
	writeback(s *System, at sim.Cycle, addr sim.Addr)
	// memPenalty is the DRAM charge for an uncached directory entry.
	memPenalty(s *System) sim.Cycle
	// stats returns the counter sink for vmID's reference.
	stats(s *System, vmID int) *vm.Stats
}

// liveTiming is the detailed machine: every method is the pre-split
// behaviour, delegating to the System's contention trackers.
type liveTiming struct{}

func (liveTiming) route(s *System, at sim.Cycle, from, to, flits int) sim.Cycle {
	return s.route(at, from, to, flits)
}

func (liveTiming) bankAccess(s *System, at sim.Cycle, node int) sim.Cycle {
	return s.bankAccess(at, node)
}

func (liveTiming) dirVisit(s *System, at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	return s.dirVisit(at, home, addr)
}

func (liveTiming) memRead(s *System, at sim.Cycle, addr sim.Addr) sim.Cycle {
	return s.mem.Read(at, addr)
}

func (liveTiming) writeback(s *System, at sim.Cycle, addr sim.Addr) {
	s.mem.Writeback(at, addr)
}

func (liveTiming) memPenalty(s *System) sim.Cycle { return s.cfg.Mem.Latency }

func (liveTiming) stats(s *System, vmID int) *vm.Stats { return &s.vms[vmID].Stats }

// ffTiming is the fast-forward model: references update cache and
// directory state (including the directory caches — functional warming)
// but reserve nothing on the mesh, banks, directories or memory
// controllers, and every counter increment lands in per-VM scratch that
// the measurement metrics never read. Returned times collapse to the
// caller's `at`, which is fine: nothing in the walk branches on time,
// and the fast-forward loop discards the latency.
type ffTiming struct{}

func (ffTiming) route(s *System, at sim.Cycle, from, to, flits int) sim.Cycle { return at }

func (ffTiming) bankAccess(s *System, at sim.Cycle, node int) sim.Cycle { return at }

func (ffTiming) dirVisit(s *System, at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	return at, s.dirCache.Access(home, addr)
}

func (ffTiming) memRead(s *System, at sim.Cycle, addr sim.Addr) sim.Cycle { return at }

func (ffTiming) writeback(s *System, at sim.Cycle, addr sim.Addr) {}

func (ffTiming) memPenalty(s *System) sim.Cycle { return 0 }

func (ffTiming) stats(s *System, vmID int) *vm.Stats { return &s.ffStats[vmID] }

// route advances a message of the given flit count across the mesh and
// returns its arrival time.
func (s *System) route(at sim.Cycle, from, to, flits int) sim.Cycle {
	if from == to {
		return at
	}
	return s.net.Latency(at, from, to, flits)
}

// bankAccess reserves the LLC slice at node and returns data-ready time.
func (s *System) bankAccess(at sim.Cycle, node int) sim.Cycle {
	start := sim.Max(at, s.bankBusy[node])
	s.bankBusy[node] = start + bankOccupancy
	return start + DefaultLLCLatency
}

// dirVisit reserves the directory slice at home and returns the
// completion time of the on-chip lookup plus whether the entry was in the
// home's directory cache. On a miss the authoritative state must come
// from DRAM — but that fetch only delays the requester when the *data*
// is supplied on chip; a memory-sourced miss reads the directory state
// and the line in the same DRAM access (SGI-Origin keeps them together),
// so callers charge the penalty per supplier.
func (s *System) dirVisit(at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	start := sim.Max(at, s.dirBusy[home])
	s.dirBusy[home] = start + dirOccupancy
	return start + dirLatency, s.dirCache.Access(home, addr)
}

// access performs one reference by core c on behalf of vmID under the
// detailed timing model and returns its total latency.
func (s *System) access(c, vmID int, addr sim.Addr, write bool) sim.Cycle {
	return accessTM(s, liveTiming{}, c, vmID, addr, write)
}

// accessTM performs one reference by core c on behalf of vmID and
// returns its total latency under the given timing model.
//
// The L0 read-hit return is the simulator's fastest path: hits dominate
// every Table II workload, a read hit changes no coherence or directory
// state, and the L0/L1 state-sync invariant (co-resident lines always
// share a state; the write path still asserts inclusion) means nothing
// else needs to be consulted.
func accessTM[T timingModel](s *System, tm T, c, vmID int, addr sim.Addr, write bool) sim.Cycle {
	l0 := s.l0[c]
	if w0, ok := l0.Lookup(addr); ok {
		if !write {
			return DefaultL0Latency
		}
		return writeHitL0TM(s, tm, c, vmID, addr, w0)
	}

	l1 := s.l1[c]
	vtag := uint8(vmID)
	if w1, ok := l1.Lookup(addr); ok {
		switch {
		case !write:
			s.fillL0(c, addr, l1.State(w1), vtag)
			return DefaultL1Latency
		case l1.State(w1) == cache.Modified:
			s.fillL0(c, addr, cache.Modified, vtag)
			return DefaultL1Latency
		case l1.State(w1) == cache.Exclusive:
			// Silent E->M upgrade; record dirty ownership.
			l1.SetState(w1, cache.Modified)
			e := s.dir.Get(addr)
			e.L1Owner = int8(c)
			e.L2Owner = int8(s.groupOf(c))
			if bw, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
				s.banks[s.groupOf(c)].SetState(bw, cache.Modified)
			}
			s.fillL0(c, addr, cache.Modified, vtag)
			return DefaultL1Latency
		default:
			// Shared: coherence upgrade through the home node.
			st := tm.stats(s, vmID)
			st.Upgrades++
			now := s.now
			done, e := invalidateOthersTM(s, tm, now, c, addr, st)
			e.L1Owner = int8(c)
			e.L2Owner = int8(s.groupOf(c))
			l1.SetState(w1, cache.Modified)
			if bw, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
				s.banks[s.groupOf(c)].SetState(bw, cache.Modified)
			}
			s.fillL0(c, addr, cache.Modified, vtag)
			return done - now
		}
	}

	// Miss in the last level of private cache: the paper's miss-latency
	// metric starts here.
	st := tm.stats(s, vmID)
	st.PrivMisses++
	now := s.now
	done := fetchTM(s, tm, c, vmID, addr, write)
	st.MissLatSum += done - now
	return done - now
}

// writeHitL0TM services a store that hit in L0: the line is resident in
// L1 too (inclusion is asserted here, off the read path), and the L1
// state decides whether the store is silent, a silent E->M upgrade, or a
// coherence upgrade through the home node.
func writeHitL0TM[T timingModel](s *System, tm T, c, vmID int, addr sim.Addr, w0 cache.Way) sim.Cycle {
	l0, l1 := s.l0[c], s.l1[c]
	w1, ok := l1.Probe(addr)
	if !ok {
		panic(fmt.Sprintf("core: L0/L1 inclusion violated at %#x", addr))
	}
	switch {
	case l1.State(w1) == cache.Modified:
		l0.SetState(w0, cache.Modified)
		return DefaultL0Latency
	case l1.State(w1) == cache.Exclusive:
		// Silent E->M upgrade; record dirty ownership.
		l1.SetState(w1, cache.Modified)
		e := s.dir.Get(addr)
		e.L1Owner = int8(c)
		e.L2Owner = int8(s.groupOf(c))
		if bw, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
			s.banks[s.groupOf(c)].SetState(bw, cache.Modified)
		}
		l0.SetState(w0, cache.Modified)
		return DefaultL0Latency
	default:
		// Shared: coherence upgrade through the home node.
		st := tm.stats(s, vmID)
		st.Upgrades++
		now := s.now
		done, e := invalidateOthersTM(s, tm, now, c, addr, st)
		e.L1Owner = int8(c)
		e.L2Owner = int8(s.groupOf(c))
		l1.SetState(w1, cache.Modified)
		if bw, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
			s.banks[s.groupOf(c)].SetState(bw, cache.Modified)
		}
		l0.SetState(w0, cache.Modified)
		return done - now
	}
}

// fetchTM services a private-level miss: probe the core's LLC bank group,
// then the directory, then a remote cache or memory; fill the private
// hierarchy on the way back. Returns the completion time.
func fetchTM[T timingModel](s *System, tm T, c, vmID int, addr sim.Addr, write bool) sim.Cycle {
	st := tm.stats(s, vmID)
	vtag := uint8(vmID)
	g := s.groupOf(c)
	bank := s.banks[g]
	bnode := s.bankNode(g, addr)

	// A core's access to its own group's LLC costs the flat Table III
	// latency (plus slice occupancy) at every sharing degree — the
	// paper's machine does not charge NUCA distance within a group. The
	// mesh carries directory, cache-to-cache, invalidation and memory
	// traffic.
	t := tm.bankAccess(s, s.now, bnode)
	bw, bHit := bank.Lookup(addr)
	e := s.dir.Get(addr)

	if bHit {
		if !e.HasL2(g) {
			panic(fmt.Sprintf("core: bank %d holds %#x but directory disagrees", g, addr))
		}
		if o := int(e.L1Owner); o >= 0 && o != c {
			// A sibling's L1 holds the line dirty (the write path
			// invalidates all other groups, so the owner is in-group).
			// Bank forwards; the owner supplies and downgrades.
			at := tm.route(s, t, bnode, o, CtrlFlits)
			at += DefaultL1Latency
			s.downgradeOwner(o, addr, e)
			t = tm.route(s, at, o, c, DataFlits)
			st.C2CDirty++
		}
	} else {
		// LLC miss for this VM.
		st.LLCMisses++
		home := s.dir.Home(addr)
		dirT := tm.route(s, t, bnode, home, CtrlFlits)
		dirT, dirHit := tm.dirVisit(s, dirT, home, addr)
		// On-chip suppliers stall behind an uncached directory entry's
		// DRAM fetch; the memory path reads state and data together.
		onChipDirT := dirT
		if !dirHit {
			onChipDirT += tm.memPenalty(s)
		}

		switch {
		case e.L1Owner >= 0:
			// Dirty in a remote core's private cache; forward to owner.
			o := int(e.L1Owner)
			at := tm.route(s, onChipDirT, home, o, CtrlFlits)
			at += DefaultL1Latency
			s.downgradeOwner(o, addr, e)
			t = tm.route(s, at, o, c, DataFlits)
			st.C2CDirty++
		case e.L2Owner >= 0:
			// Dirty in a remote bank: supplier keeps the line Owned and
			// forwards data (Origin-style dirty sharing).
			b := int(e.L2Owner)
			sn := s.bankNode(b, addr)
			at := tm.route(s, onChipDirT, home, sn, CtrlFlits)
			at = tm.bankAccess(s, at, sn)
			sw, ok := s.banks[b].Probe(addr)
			if !ok {
				panic(fmt.Sprintf("core: directory owner bank %d lost %#x", b, addr))
			}
			if s.banks[b].State(sw) == cache.Modified {
				s.banks[b].SetState(sw, cache.Owned)
			}
			t = tm.route(s, at, sn, c, DataFlits)
			st.C2CDirty++
		case e.L2Count() > 0:
			// Clean copy in some remote bank.
			b := e.OtherL2(g)
			sn := s.bankNode(b, addr)
			at := tm.route(s, onChipDirT, home, sn, CtrlFlits)
			at = tm.bankAccess(s, at, sn)
			t = tm.route(s, at, sn, c, DataFlits)
			st.C2CClean++
		default:
			// Off-chip.
			st.MemReads++
			mn := s.mem.Node(addr)
			at := tm.route(s, dirT, home, mn, CtrlFlits)
			at = tm.memRead(s, at, addr)
			t = tm.route(s, at, mn, c, DataFlits)
		}

		// Install in the local bank.
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted, nw := bank.Insert(addr, bankState, vtag)
		bw = nw
		if evicted {
			// The victim's release may backward-shift addr's own slot;
			// only then is a re-fetch of e needed.
			evictBankLineTM(s, tm, g, victim)
			e = s.dir.Get(addr)
		}
		e.AddL2(g)
	}

	// Exclusivity for writes: invalidate every other copy (sequential
	// with the data fetch — a mild pessimism).
	if write && (e.L2Count() > 1 || e.L1Sharers != 0) {
		t, e = invalidateOthersTM(s, tm, t, c, addr, st)
	}

	// Fill the private hierarchy. A second sharer demotes any Exclusive
	// private copy so silent E->M upgrades stay coherent.
	s.demoteExclusives(c, addr, e)
	var pState cache.State
	switch {
	case write:
		pState = cache.Modified
		e.L1Owner = int8(c)
		e.L2Owner = int8(g)
		bank.SetState(bw, cache.Modified)
	case e.L1Sharers == 0 && e.L2Count() == 1 && !e.Dirty():
		pState = cache.Exclusive
	default:
		pState = cache.Shared
	}
	// Record the new private sharer before filling: fillL1 can evict a
	// victim whose directory Release reshapes the flat table, after which
	// e must not be dereferenced.
	e.AddL1(c)
	s.fillL1(c, addr, pState, vtag)
	s.fillL0(c, addr, pState, vtag)
	return t
}

// invalidateOthersTM visits the home node for addr and invalidates every
// private and bank copy other than requester c's own, waiting for the
// slowest ack. It clears line ownership; the caller establishes the new
// owner. It returns the directory entry alongside the ack time: nothing
// here reshapes the table, so callers use it directly instead of paying
// another hash walk.
func invalidateOthersTM[T timingModel](s *System, tm T, at sim.Cycle, c int, addr sim.Addr, st *vm.Stats) (sim.Cycle, *coherence.Entry) {
	home := s.dir.Home(addr)
	t := tm.route(s, at, c, home, CtrlFlits)
	t, dirHit := tm.dirVisit(s, t, home, addr)
	if !dirHit {
		t += tm.memPenalty(s)
	}

	g := s.groupOf(c)
	e := s.dir.Get(addr)
	ackT := t

	// Private copies at other cores (ascending over the sharer mask,
	// matching the core-index order of the scan this replaced).
	for m := e.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		a := tm.route(s, t, home, o, CtrlFlits)
		s.dropPrivate(o, addr, e)
		a = tm.route(s, a, o, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
		st.Invalidations++
	}
	// Bank copies in other groups.
	for m := e.L2Sharers &^ (1 << uint(g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		node := s.bankNode(b, addr)
		a := tm.route(s, t, home, node, CtrlFlits)
		if bl, ok := s.banks[b].Invalidate(addr); ok && bl.State.Dirty() {
			// The invalidated copy was the dirty owner; retire it.
			tm.writeback(s, a, addr)
		}
		e.DropL2(b)
		a = tm.route(s, a, node, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
		st.Invalidations++
	}
	if ackT == t {
		// No sharers: home simply acks.
		ackT = tm.route(s, t, home, c, CtrlFlits)
	}
	e.L1Owner = -1
	e.L2Owner = -1
	return ackT, e
}

// demoteExclusives flips other cores' Exclusive private copies of addr to
// Shared when a new sharer joins; without this a stale E copy could later
// take the silent E->M upgrade while other copies exist.
func (s *System) demoteExclusives(c int, addr sim.Addr, e *coherence.Entry) {
	// Exclusive requires having been the sole sharer at fill time, and
	// this demotion runs whenever a second sharer joins — so with two or
	// more other sharers every copy is already Shared (or the dirty owner,
	// handled on the supply path) and the probes can be skipped.
	m := e.L1Sharers &^ (1 << uint(c))
	if m == 0 || m&(m-1) != 0 {
		return
	}
	o := bits.TrailingZeros64(m)
	if w, ok := s.l1[o].Probe(addr); ok && s.l1[o].State(w) == cache.Exclusive {
		s.l1[o].SetState(w, cache.Shared)
	}
	if w, ok := s.l0[o].Probe(addr); ok && s.l0[o].State(w) == cache.Exclusive {
		s.l0[o].SetState(w, cache.Shared)
	}
}

// fillL0 installs a line into core c's L0 (evictions are silent: L0 is a
// strict subset of L1 and carries no unique state). InsertIfAbsent folds
// the old Probe-then-Insert pair into one set scan.
func (s *System) fillL0(c int, addr sim.Addr, st cache.State, vtag uint8) {
	s.l0[c].InsertIfAbsent(addr, st, vtag)
}

// fillL1 installs a line into core c's L1, folding a dirty victim into
// the group bank and keeping the directory in sync.
func (s *System) fillL1(c int, addr sim.Addr, st cache.State, vtag uint8) {
	victim, evicted, _ := s.l1[c].Insert(addr, st, vtag)
	if !evicted {
		return
	}
	s.evictPrivateVictim(c, victim)
	// Maintain the L0 subset property: the victim cannot stay in L0.
	s.l0[c].Invalidate(victim.Tag)
}

// evictPrivateVictim handles an L1 eviction: dirty lines fold into the
// group's bank; the directory drops the private sharer.
func (s *System) evictPrivateVictim(c int, victim cache.Line) {
	g := s.groupOf(c)
	// Probe, mutate, and release through one slot handle: this runs once
	// per L1 eviction (the steady-state common case), and the fused walk
	// halves its directory hashing. Nothing between the probe and the
	// release touches the table, so the slot index stays valid.
	si, ok := s.dir.ProbeSlot(victim.Tag)
	if !ok {
		return
	}
	e := s.dir.EntryAt(si)
	if victim.State == cache.Modified {
		if bw, okb := s.banks[g].Probe(victim.Tag); okb {
			s.banks[g].SetState(bw, cache.Modified)
			e.L2Owner = int8(g)
		}
		if e.L1Owner == int8(c) {
			e.L1Owner = -1
		}
	}
	e.DropL1(c)
	s.dir.ReleaseSlot(si)
}

// evictBankLineTM handles an LLC bank eviction: back-invalidate private
// copies in the group (inclusion), write back dirty data, update the
// directory.
func evictBankLineTM[T timingModel](s *System, tm T, g int, victim cache.Line) {
	addr := victim.Tag
	dirty := victim.State.Dirty()
	si, ok := s.dir.ProbeSlot(addr)
	if ok {
		e := s.dir.EntryAt(si)
		for o := g * s.cfg.GroupSize; o < (g+1)*s.cfg.GroupSize; o++ {
			if !e.HasL1(o) {
				continue
			}
			if e.L1Owner == int8(o) {
				dirty = true
			}
			s.dropPrivate(o, addr, e)
			s.backInvals++
		}
		e.DropL2(g)
	}
	if dirty {
		tm.writeback(s, s.now, addr)
	}
	if ok {
		s.dir.ReleaseSlot(si)
	}
}

// dropPrivate removes core o's L0/L1 copies of addr and clears its
// presence in e, the line's directory entry (every caller already holds
// it, so re-probing here would only repeat their hash walk).
func (s *System) dropPrivate(o int, addr sim.Addr, e *coherence.Entry) {
	s.l0[o].Invalidate(addr)
	s.l1[o].Invalidate(addr)
	e.DropL1(o)
}

// downgradeOwner services a read of a line core o holds dirty: o keeps a
// Shared copy, the dirty data folds into o's group bank, which becomes
// the line's owner.
func (s *System) downgradeOwner(o int, addr sim.Addr, e *coherence.Entry) {
	if w, ok := s.l1[o].Probe(addr); ok {
		s.l1[o].SetState(w, cache.Shared)
	}
	if w, ok := s.l0[o].Probe(addr); ok {
		s.l0[o].SetState(w, cache.Shared)
	}
	og := s.groupOf(o)
	if bw, ok := s.banks[og].Probe(addr); ok {
		s.banks[og].SetState(bw, cache.Modified)
		e.L2Owner = int8(og)
	}
	if e.L1Owner == int8(o) {
		e.L1Owner = -1
	}
}
