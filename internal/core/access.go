package core

import (
	"fmt"
	"math/bits"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/sim"
	"consim/internal/vm"
)

// This file implements the memory-access walk: L0 -> L1 -> LLC bank ->
// directory home -> {remote cache | memory}, with SGI-Origin-style
// three-hop forwarding for cache-to-cache transfers and invalidation on
// writes. Every latency is accumulated on the mesh model (reserving link
// time), the bank/directory occupancy trackers and the memory
// controllers, so contention emerges from the traffic itself.

// route advances a message of the given flit count across the mesh and
// returns its arrival time.
func (s *System) route(at sim.Cycle, from, to, flits int) sim.Cycle {
	if from == to {
		return at
	}
	return s.net.Latency(at, from, to, flits)
}

// bankAccess reserves the LLC slice at node and returns data-ready time.
func (s *System) bankAccess(at sim.Cycle, node int) sim.Cycle {
	start := sim.Max(at, s.bankBusy[node])
	s.bankBusy[node] = start + bankOccupancy
	return start + DefaultLLCLatency
}

// dirVisit reserves the directory slice at home and returns the
// completion time of the on-chip lookup plus whether the entry was in the
// home's directory cache. On a miss the authoritative state must come
// from DRAM — but that fetch only delays the requester when the *data*
// is supplied on chip; a memory-sourced miss reads the directory state
// and the line in the same DRAM access (SGI-Origin keeps them together),
// so callers charge the penalty per supplier.
func (s *System) dirVisit(at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	start := sim.Max(at, s.dirBusy[home])
	s.dirBusy[home] = start + dirOccupancy
	return start + dirLatency, s.dirCache.Access(home, addr)
}

// access performs one reference by core c on behalf of vmID and returns
// its total latency.
func (s *System) access(c, vmID int, addr sim.Addr, write bool) sim.Cycle {
	st := &s.vms[vmID].Stats
	vtag := uint8(vmID)
	now := s.now

	l0 := s.l0[c]
	l0Line, l0Hit := l0.Lookup(addr)
	var l1Line *cache.Line
	var l1Hit bool
	if l0Hit {
		// Inclusion: an L0-resident line is always in L1; Probe avoids
		// charging an L1 access the hardware would not make.
		l1Line, l1Hit = s.l1[c].Probe(addr)
		if !l1Hit {
			panic(fmt.Sprintf("core: L0/L1 inclusion violated at %#x", addr))
		}
	} else {
		l1Line, l1Hit = s.l1[c].Lookup(addr)
	}

	hitLat := DefaultL1Latency
	if l0Hit {
		hitLat = DefaultL0Latency
	}

	if l1Hit {
		switch {
		case !write:
			if !l0Hit {
				s.fillL0(c, addr, l1Line.State, vtag)
			}
			return hitLat
		case l1Line.State == cache.Modified:
			if l0Hit {
				l0Line.State = cache.Modified
			} else {
				s.fillL0(c, addr, cache.Modified, vtag)
			}
			return hitLat
		case l1Line.State == cache.Exclusive:
			// Silent E->M upgrade; record dirty ownership.
			l1Line.State = cache.Modified
			e := s.dir.Get(addr)
			e.L1Owner = int8(c)
			e.L2Owner = int8(s.groupOf(c))
			if bl, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
				bl.State = cache.Modified
			}
			if l0Hit {
				l0Line.State = cache.Modified
			} else {
				s.fillL0(c, addr, cache.Modified, vtag)
			}
			return hitLat
		default:
			// Shared: coherence upgrade through the home node.
			st.Upgrades++
			done := s.invalidateOthers(now, c, addr, st)
			e := s.dir.Get(addr)
			e.L1Owner = int8(c)
			e.L2Owner = int8(s.groupOf(c))
			l1Line.State = cache.Modified
			if bl, ok := s.banks[s.groupOf(c)].Probe(addr); ok {
				bl.State = cache.Modified
			}
			if l0Hit {
				l0Line.State = cache.Modified
			} else {
				s.fillL0(c, addr, cache.Modified, vtag)
			}
			return done - now
		}
	}

	// Miss in the last level of private cache: the paper's miss-latency
	// metric starts here.
	st.PrivMisses++
	done := s.fetch(c, vmID, addr, write)
	st.MissLatSum += done - now
	return done - now
}

// fetch services a private-level miss: probe the core's LLC bank group,
// then the directory, then a remote cache or memory; fill the private
// hierarchy on the way back. Returns the completion time.
func (s *System) fetch(c, vmID int, addr sim.Addr, write bool) sim.Cycle {
	st := &s.vms[vmID].Stats
	vtag := uint8(vmID)
	g := s.groupOf(c)
	bank := s.banks[g]
	bnode := s.bankNode(g, addr)

	// A core's access to its own group's LLC costs the flat Table III
	// latency (plus slice occupancy) at every sharing degree — the
	// paper's machine does not charge NUCA distance within a group. The
	// mesh carries directory, cache-to-cache, invalidation and memory
	// traffic.
	t := s.bankAccess(s.now, bnode)
	bLine, bHit := bank.Lookup(addr)
	e := s.dir.Get(addr)

	if bHit {
		if !e.HasL2(g) {
			panic(fmt.Sprintf("core: bank %d holds %#x but directory disagrees", g, addr))
		}
		if o := int(e.L1Owner); o >= 0 && o != c {
			// A sibling's L1 holds the line dirty (the write path
			// invalidates all other groups, so the owner is in-group).
			// Bank forwards; the owner supplies and downgrades.
			at := s.route(t, bnode, o, CtrlFlits)
			at += DefaultL1Latency
			s.downgradeOwner(o, addr)
			t = s.route(at, o, c, DataFlits)
			st.C2CDirty++
		}
	} else {
		// LLC miss for this VM.
		st.LLCMisses++
		home := s.dir.Home(addr)
		dirT := s.route(t, bnode, home, CtrlFlits)
		dirT, dirHit := s.dirVisit(dirT, home, addr)
		// On-chip suppliers stall behind an uncached directory entry's
		// DRAM fetch; the memory path reads state and data together.
		onChipDirT := dirT
		if !dirHit {
			onChipDirT += s.cfg.Mem.Latency
		}

		switch {
		case e.L1Owner >= 0:
			// Dirty in a remote core's private cache; forward to owner.
			o := int(e.L1Owner)
			at := s.route(onChipDirT, home, o, CtrlFlits)
			at += DefaultL1Latency
			s.downgradeOwner(o, addr)
			t = s.route(at, o, c, DataFlits)
			st.C2CDirty++
		case e.L2Owner >= 0:
			// Dirty in a remote bank: supplier keeps the line Owned and
			// forwards data (Origin-style dirty sharing).
			b := int(e.L2Owner)
			sn := s.bankNode(b, addr)
			at := s.route(onChipDirT, home, sn, CtrlFlits)
			at = s.bankAccess(at, sn)
			sl, ok := s.banks[b].Probe(addr)
			if !ok {
				panic(fmt.Sprintf("core: directory owner bank %d lost %#x", b, addr))
			}
			if sl.State == cache.Modified {
				sl.State = cache.Owned
			}
			t = s.route(at, sn, c, DataFlits)
			st.C2CDirty++
		case e.L2Count() > 0:
			// Clean copy in some remote bank.
			b := e.OtherL2(g)
			sn := s.bankNode(b, addr)
			at := s.route(onChipDirT, home, sn, CtrlFlits)
			at = s.bankAccess(at, sn)
			t = s.route(at, sn, c, DataFlits)
			st.C2CClean++
		default:
			// Off-chip.
			st.MemReads++
			mn := s.mem.Node(addr)
			at := s.route(dirT, home, mn, CtrlFlits)
			at = s.mem.Read(at, addr)
			t = s.route(at, mn, c, DataFlits)
		}

		// Install in the local bank.
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted, nl := bank.Insert(addr, bankState, vtag)
		bLine = nl
		if evicted {
			s.evictBankLine(g, victim)
		}
		e = s.dir.Get(addr)
		e.AddL2(g)
	}

	// Exclusivity for writes: invalidate every other copy (sequential
	// with the data fetch — a mild pessimism).
	if write && (e.L2Count() > 1 || e.L1Sharers != 0) {
		t = s.invalidateOthers(t, c, addr, st)
		e = s.dir.Get(addr)
	}

	// Fill the private hierarchy. A second sharer demotes any Exclusive
	// private copy so silent E->M upgrades stay coherent.
	s.demoteExclusives(c, addr, e)
	var pState cache.State
	switch {
	case write:
		pState = cache.Modified
		e.L1Owner = int8(c)
		e.L2Owner = int8(g)
		bLine.State = cache.Modified
	case e.L1Sharers == 0 && e.L2Count() == 1 && !e.Dirty():
		pState = cache.Exclusive
	default:
		pState = cache.Shared
	}
	// Record the new private sharer before filling: fillL1 can evict a
	// victim whose directory Release reshapes the flat table, after which
	// e must not be dereferenced.
	e.AddL1(c)
	s.fillL1(c, addr, pState, vtag)
	s.fillL0(c, addr, pState, vtag)
	return t
}

// invalidateOthers visits the home node for addr and invalidates every
// private and bank copy other than requester c's own, waiting for the
// slowest ack. It clears line ownership; the caller establishes the new
// owner.
func (s *System) invalidateOthers(at sim.Cycle, c int, addr sim.Addr, st *vm.Stats) sim.Cycle {
	home := s.dir.Home(addr)
	t := s.route(at, c, home, CtrlFlits)
	t, dirHit := s.dirVisit(t, home, addr)
	if !dirHit {
		t += s.cfg.Mem.Latency
	}

	g := s.groupOf(c)
	e := s.dir.Get(addr)
	ackT := t

	// Private copies at other cores (ascending over the sharer mask,
	// matching the core-index order of the scan this replaced).
	for m := e.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		a := s.route(t, home, o, CtrlFlits)
		s.dropPrivate(o, addr)
		a = s.route(a, o, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
		st.Invalidations++
	}
	// Bank copies in other groups.
	for m := e.L2Sharers &^ (1 << uint(g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		node := s.bankNode(b, addr)
		a := s.route(t, home, node, CtrlFlits)
		if bl, ok := s.banks[b].Invalidate(addr); ok && bl.State.Dirty() {
			// The invalidated copy was the dirty owner; retire it.
			s.mem.Writeback(a, addr)
		}
		e.DropL2(b)
		a = s.route(a, node, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
		st.Invalidations++
	}
	if ackT == t {
		// No sharers: home simply acks.
		ackT = s.route(t, home, c, CtrlFlits)
	}
	e.L1Owner = -1
	e.L2Owner = -1
	return ackT
}

// demoteExclusives flips other cores' Exclusive private copies of addr to
// Shared when a new sharer joins; without this a stale E copy could later
// take the silent E->M upgrade while other copies exist.
func (s *System) demoteExclusives(c int, addr sim.Addr, e *coherence.Entry) {
	for m := e.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		if ln, ok := s.l1[o].Probe(addr); ok && ln.State == cache.Exclusive {
			ln.State = cache.Shared
		}
		if ln, ok := s.l0[o].Probe(addr); ok && ln.State == cache.Exclusive {
			ln.State = cache.Shared
		}
	}
}

// fillL0 installs a line into core c's L0 (evictions are silent: L0 is a
// strict subset of L1 and carries no unique state).
func (s *System) fillL0(c int, addr sim.Addr, st cache.State, vtag uint8) {
	if _, ok := s.l0[c].Probe(addr); ok {
		return
	}
	s.l0[c].Insert(addr, st, vtag)
}

// fillL1 installs a line into core c's L1, folding a dirty victim into
// the group bank and keeping the directory in sync.
func (s *System) fillL1(c int, addr sim.Addr, st cache.State, vtag uint8) {
	victim, evicted, _ := s.l1[c].Insert(addr, st, vtag)
	if !evicted {
		return
	}
	s.evictPrivateVictim(c, victim)
	// Maintain the L0 subset property: the victim cannot stay in L0.
	s.l0[c].Invalidate(victim.Tag)
}

// evictPrivateVictim handles an L1 eviction: dirty lines fold into the
// group's bank; the directory drops the private sharer.
func (s *System) evictPrivateVictim(c int, victim cache.Line) {
	g := s.groupOf(c)
	e, ok := s.dir.Probe(victim.Tag)
	if !ok {
		return
	}
	if victim.State == cache.Modified {
		if bl, okb := s.banks[g].Probe(victim.Tag); okb {
			bl.State = cache.Modified
			e.L2Owner = int8(g)
		}
		if e.L1Owner == int8(c) {
			e.L1Owner = -1
		}
	}
	e.DropL1(c)
	s.dir.Release(victim.Tag)
}

// evictBankLine handles an LLC bank eviction: back-invalidate private
// copies in the group (inclusion), write back dirty data, update the
// directory.
func (s *System) evictBankLine(g int, victim cache.Line) {
	addr := victim.Tag
	dirty := victim.State.Dirty()
	e, ok := s.dir.Probe(addr)
	if ok {
		for o := g * s.cfg.GroupSize; o < (g+1)*s.cfg.GroupSize; o++ {
			if !e.HasL1(o) {
				continue
			}
			if e.L1Owner == int8(o) {
				dirty = true
			}
			s.dropPrivate(o, addr)
			s.backInvals++
		}
		e.DropL2(g)
	}
	if dirty {
		s.mem.Writeback(s.now, addr)
	}
	if ok {
		s.dir.Release(addr)
	}
}

// dropPrivate removes core o's L0/L1 copies of addr and clears its
// directory presence.
func (s *System) dropPrivate(o int, addr sim.Addr) {
	s.l0[o].Invalidate(addr)
	s.l1[o].Invalidate(addr)
	if e, ok := s.dir.Probe(addr); ok {
		e.DropL1(o)
	}
}

// downgradeOwner services a read of a line core o holds dirty: o keeps a
// Shared copy, the dirty data folds into o's group bank, which becomes
// the line's owner.
func (s *System) downgradeOwner(o int, addr sim.Addr) {
	if ln, ok := s.l1[o].Probe(addr); ok {
		ln.State = cache.Shared
	}
	if ln, ok := s.l0[o].Probe(addr); ok {
		ln.State = cache.Shared
	}
	og := s.groupOf(o)
	e := s.dir.Get(addr)
	if bl, ok := s.banks[og].Probe(addr); ok {
		bl.State = cache.Modified
		e.L2Owner = int8(og)
	}
	if e.L1Owner == int8(o) {
		e.L1Owner = -1
	}
}
