package core

import (
	"testing"

	"consim/internal/cache"
	"consim/internal/sim"
)

// warmStateDigest folds every piece of state fast-forward is allowed to
// move — private caches, LLC banks, the directory, the directory caches,
// the warming scratch counters, back-invalidation accounting and the
// workload cursors' observable effect (via vm.Stats after later detailed
// work) — into one value. The warm walk must leave it bit-identical to
// the retained generic ffTiming walk.
func warmStateDigest(s *System) uint64 {
	h := uint64(cache.DigestSeed)
	for _, c := range s.l0 {
		h = c.StateDigest(h)
	}
	for _, c := range s.l1 {
		h = c.StateDigest(h)
	}
	for _, b := range s.banks {
		h = b.StateDigest(h)
	}
	h = s.dir.StateDigest(h)
	h = s.dirCache.StateDigest(h)
	h = cache.MixDigest(h, s.backInvals)
	for v := range s.ffStats {
		st := &s.ffStats[v]
		for _, c := range []uint64{
			st.Refs, st.PrivMisses, st.LLCMisses, st.C2CClean, st.C2CDirty,
			st.MemReads, st.Invalidations, st.Upgrades, uint64(st.MissLatSum),
		} {
			h = cache.MixDigest(h, c)
		}
	}
	return h
}

// warmDiffConfigs enumerates the configurations the differential test
// covers: three seeds, sequential and sharded, plus a QoS-partitioned
// variant (exercising the partition-aware victim choice in the fused
// bank scan).
func warmDiffConfigs() map[string]Config {
	cfgs := make(map[string]Config)
	for _, seed := range []uint64{1, 2, 3} {
		for _, shards := range []int{1, 2} {
			cfg := sampledCfg(shards)
			cfg.Seed = seed
			name := "seed1"
			switch seed {
			case 2:
				name = "seed2"
			case 3:
				name = "seed3"
			}
			if shards > 1 {
				name += "-sharded"
			}
			cfgs[name] = cfg
		}
	}
	qos := sampledCfg(1)
	qos.QoSPartition = true
	cfgs["qos-partitioned"] = qos
	return cfgs
}

// TestWarmWalkDifferential pins the warm walk's bit-identity contract:
// after warm-up, interleaved fast-forwards and detailed windows, the
// full functional-plane digest — cache tags, LRU stamps and clocks,
// coherence states, VM tags, access counters, directory table layout and
// entries, dircache contents and hit/miss accounting, warming scratch
// counters, back-invalidations — matches the retained ffTiming walk
// exactly, across seeds, sharded/unsharded and QoS partitioning. The
// detailed window between the fast-forwards exercises the ring-cursor
// re-sync (the detailed loop consumes through the generator's Next path
// in between).
func TestWarmWalkDifferential(t *testing.T) {
	for name, cfg := range warmDiffConfigs() {
		t.Run(name, func(t *testing.T) {
			warm := newWarmSystem(t, cfg)
			oracle := newWarmSystem(t, cfg)
			oracle.ffOracle = true

			if h1, h2 := warmStateDigest(warm), warmStateDigest(oracle); h1 != h2 {
				t.Fatalf("post-warmup digests differ before any fast-forward: %#x vs %#x", h1, h2)
			}
			drive := func(s *System) {
				s.fastForward(7_000)
				s.runUntil(cfg.WarmupRefs + 2_000)
				s.fastForward(5_000)
			}
			drive(warm)
			drive(oracle)

			if h1, h2 := warmStateDigest(warm), warmStateDigest(oracle); h1 != h2 {
				t.Errorf("warm walk diverged from ffTiming oracle: %#x vs %#x", h1, h2)
			}
			// The detailed window between the fast-forwards must agree too:
			// any warming divergence surfaces as different measurement
			// counters in the following window.
			for v := range warm.vms {
				if warm.vms[v].Stats != oracle.vms[v].Stats {
					t.Errorf("vm %d measurement stats diverged:\nwarm   %+v\noracle %+v",
						v, warm.vms[v].Stats, oracle.vms[v].Stats)
				}
			}
		})
	}
}

// TestWarmWalkFullRunEquivalence runs the complete sampled engine end to
// end with the warm walk and with the ffTiming oracle and requires
// byte-identical results: same windows, same convergence trajectory,
// same per-VM metrics. A weaker contract than the state digest, but it
// covers the exact production call path through Run.
func TestWarmWalkFullRunEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2} {
		cfg := sampledCfg(shards)
		run := func(oracle bool) Result {
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys.ffOracle = oracle
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		warm, oracle := resultDigest(t, run(false)), resultDigest(t, run(true))
		if warm != oracle {
			t.Errorf("shards=%d: sampled Run with warm walk diverged from ffTiming oracle:\nwarm   %s\noracle %s",
				shards, warm, oracle)
		}
	}
}

// TestWarmEntryPointsMatchGeneric pins the fused cache entry points
// against the Lookup/Insert pairs they replace on a randomized operation
// stream over two identically-configured caches (with and without a
// partition quota).
func TestWarmEntryPointsMatchGeneric(t *testing.T) {
	for _, quota := range []bool{false, true} {
		ref := cache.New(cache.Config{SizeBytes: 1 << 14, Assoc: 4})
		fused := cache.New(cache.Config{SizeBytes: 1 << 14, Assoc: 4})
		if quota {
			ref.SetPartition([]int{1, 3})
			fused.SetPartition([]int{1, 3})
		}
		rng := uint64(12345)
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 33
		}
		for i := 0; i < 200_000; i++ {
			addr := simAddr(next() % 4096)
			vm := uint8(next() % 2)
			refHit := false
			if _, ok := ref.Lookup(addr); ok {
				refHit = true
			} else {
				ref.Insert(addr, cache.Shared, vm)
			}
			fusedHit := fused.LookupOrInsert(addr, cache.Shared, vm)
			if refHit != fusedHit {
				t.Fatalf("quota=%v op %d: hit disagreement at %#x: ref %v fused %v", quota, i, addr, refHit, fusedHit)
			}
		}
		if h1, h2 := ref.StateDigest(cache.DigestSeed), fused.StateDigest(cache.DigestSeed); h1 != h2 {
			t.Fatalf("quota=%v: fused entry points diverged from Lookup/Insert: %#x vs %#x", quota, h1, h2)
		}
	}
}

// BenchmarkWarmWalk measures fast-forward throughput (references per
// second) for the retained generic ffTiming walk ("generic") and the
// specialized warming walk ("warm") on the standard sampled test
// machine. The ratio is the tentpole's payoff; the absolute numbers
// anchor the ff_cost_ratio the sample sweep records.
func BenchmarkWarmWalk(b *testing.B) {
	for _, mode := range []struct {
		name   string
		oracle bool
	}{{"generic", true}, {"warm", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := sampledCfg(1)
			sys, err := NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for c := range sys.cores {
				if sys.cores[c].active {
					sys.q.Push(0, c)
					sys.pending[c] = true
				}
			}
			sys.runUntil(cfg.WarmupRefs)
			sys.ffOracle = mode.oracle
			const perCore = 10_000
			sys.fastForward(perCore) // pull one-time lazy setup out of the loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.fastForward(perCore)
			}
			b.StopTimer()
			refs := float64(b.N) * perCore * float64(sys.activeCores)
			b.ReportMetric(refs/b.Elapsed().Seconds(), "refs/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/refs, "ns/ref")
		})
	}
}

// simAddr converts a block index into a line-aligned address.
func simAddr(block uint64) sim.Addr {
	return sim.Addr(block << sim.LineShift)
}
