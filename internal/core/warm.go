// Fast functional-warming walk.
//
// Fast-forward only needs the functional plane to evolve: cache tags and
// LRU order, directory sharer/owner state, the directory tag caches and
// the per-VM scratch counters. The generic access walk under ffTiming
// (access.go) gets that right, but it still pays everything the timing
// models exist for — mesh route and bank/memctrl calls that collapse to
// no-ops yet cost call dispatch, latency arithmetic threaded through
// every branch, and per-reference interface and cursor traffic in the
// reference source. This file is the warming specialization ROADMAP
// item 2 calls for: a compact walk that performs exactly the ffTiming
// walk's state mutations, in exactly its order — bit-identical final
// cache/directory/dircache state, identical RNG draw sequence, identical
// scratch counters (warm_test.go pins this against the retained ffLoop
// oracle) — and nothing else.
//
// Four things make it fast:
//
//   - per-core invariants (VM, stats sink, cache pointers, LLC group,
//     thread id) are hoisted into warmCore contexts built once per run —
//     sampling validation pins each active core to a single fixed
//     runnable, so the hoist is sound across every fast-forward;
//   - references drain straight out of the workload generator's
//     per-thread ring through a cached slice (one bounds-checked index
//     per reference instead of an interface call plus cursor
//     load/store), refilling through the generator's own cold path so
//     shared-cursor draws happen at exactly the old refill points;
//   - the LLC bank and dircache walks use the fused warm entry points
//     (cache.WarmLookup/WarmInsertAt, DirCache.WarmAccess), which halve
//     the set scans on the miss paths warming actually takes;
//   - on footprints too big for the host cache hierarchy, a lookahead
//     prefetch walks the next ring reference's hit cascade read-only one
//     context rotation early, starting the DRAM loads (directory bucket,
//     predicted eviction victim's bucket, dircache set) that the demand
//     walk would otherwise serialize behind unpredictable tag compares.
//
// Measured honestly (paired A/B against the oracle on one system, since
// the walks are state-identical): ~1.1-1.2x over the generic walk at the
// F3/F4 isolation scale and ~1.05x at full 4-VM mix scale. The generic
// walk's ffTiming instantiation was already monomorphized and no-op'd
// most timing work, so the remaining cost is the functional warming
// itself — set scans, directory updates, RNG draws — which bit-identity
// pins. See EXPERIMENTS.md for the resulting ff cost ratios.
package core

import (
	"fmt"
	"math/bits"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/sim"
	"consim/internal/vm"
	"consim/internal/workload"
)

// warmCore is one active core's warming context: every per-reference
// invariant of the fast-forward loop, hoisted. Valid for the whole run —
// validateSample rejects rebalancing and over-commitment, so an active
// core's runnable (and hence its VM, thread and stats sink) is fixed.
type warmCore struct {
	m    *vm.VM
	st   *vm.Stats // &ffStats[vmID]: warming counters, never measurement
	l0   *cache.Cache
	l1   *cache.Cache
	bank *cache.Cache // the core's group bank

	// Ring-direct reference supply (sequential engine, statistical
	// generator): ring aliases the generator's per-thread ring, whose
	// backing array is stable across refills; pos mirrors the
	// generator's cursor and is written back at loop exit.
	gen  *workload.Generator // nil: fall back to the Source interface
	ring []workload.Access
	pos  int

	// slot is the sharded engine's prefill slot for this thread (nil
	// when the source has none); the warm loop keeps consuming through
	// the prefill protocol so worker-computed batches stay bit-identical.
	slot *prefillSlot

	c      int
	g      int // groupOf(c), hoisted (removes a division per miss)
	thread int
	vtag   uint8

	bud uint64 // reference budget for the current fast-forward
	acc uint64 // Bresenham accumulator (see warmLoop)
}

// warmPrefetchMinBlocks gates the lookahead prefetch on total modeled
// footprint: below it the warmed structures (directory table, footprint
// bitmaps, cache metadata) fit the host cache hierarchy, and the
// lookahead's extra probes only cost; above it the structures live in
// host DRAM and hiding their miss latency is worth the probes. The
// threshold corresponds to a few tens of MB of warmed state — around
// where a contemporary host LLC gives out.
const warmPrefetchMinBlocks = 2 << 20

// warmSetup builds the warming contexts on first use. Compacted over
// active cores in core-index order, so warmLoop's iteration matches
// ffLoop's core rotation exactly.
func (s *System) warmSetup() {
	if s.warm != nil {
		return
	}
	var fp uint64
	for _, m := range s.vms {
		fp += m.Gen.FootprintBlocks()
	}
	s.warmPF = fp >= warmPrefetchMinBlocks
	s.warm = make([]warmCore, 0, s.activeCores)
	for c := range s.cores {
		cs := &s.cores[c]
		if !cs.active {
			continue
		}
		run := cs.queue[cs.cur]
		m := s.vms[run.vmID]
		wc := warmCore{
			m:      m,
			st:     &s.ffStats[run.vmID],
			l0:     s.l0[c],
			l1:     s.l1[c],
			bank:   s.banks[s.groupOf(c)],
			c:      c,
			g:      s.groupOf(c),
			thread: run.thread,
			vtag:   uint8(run.vmID),
		}
		if s.shard != nil {
			if si := s.shard.slotOf[run.vmID][run.thread]; si >= 0 {
				wc.slot = &s.shard.slots[si]
			}
		} else if g, ok := m.Gen.(*workload.Generator); ok {
			wc.gen = g
		}
		s.warm = append(s.warm, wc)
	}
}

// warmForward streams one fast-forward's budgets through the warming
// walk. bud is indexed by core (ffBudgets' layout).
func (s *System) warmForward(bud []uint64) {
	s.warmSetup()
	wcs := s.warm
	var rounds uint64
	for i := range wcs {
		wc := &wcs[i]
		wc.bud = bud[wc.c]
		wc.acc = 0
		if wc.bud > rounds {
			rounds = wc.bud
		}
		if wc.gen != nil {
			// Re-sync the ring cursor: detailed windows consumed through
			// the generator's Next path since the last fast-forward.
			wc.ring, wc.pos = wc.gen.WarmRing(wc.thread)
		}
	}
	if s.shard != nil {
		warmLoop(s, rounds, warmShardSource{s.shard})
	} else {
		warmLoop(s, rounds, warmLiveSource{})
	}
	for i := range wcs {
		wc := &wcs[i]
		if wc.gen != nil {
			wc.gen.WarmSetPos(wc.thread, wc.pos)
		}
	}
}

// warmSource supplies the next reference for a warming context. The two
// implementations monomorphize warmLoop, mirroring refSource for the
// detailed loop.
type warmSource interface {
	next(s *System, wc *warmCore) workload.Access
}

// warmLiveSource drains the generator ring directly (cold path: the
// generator's own refill, so shared sampling cursors advance at exactly
// the points the Next path would advance them), falling back to the
// Source interface for non-generator sources.
type warmLiveSource struct{}

func (warmLiveSource) next(s *System, wc *warmCore) workload.Access {
	if wc.gen == nil {
		return wc.m.Gen.Next(wc.thread)
	}
	if wc.pos < len(wc.ring) {
		a := wc.ring[wc.pos]
		wc.pos++
		return a
	}
	wc.pos = 1
	return wc.gen.WarmRefill(wc.thread)
}

// warmShardSource keeps the sharded engine's prefill protocol live
// during warming — batches stay worker-computed and adoption order stays
// identical — with the slot pointer hoisted into the context.
type warmShardSource struct{ e *shardEngine }

func (ws warmShardSource) next(s *System, wc *warmCore) workload.Access {
	sl := wc.slot
	if sl == nil {
		return wc.m.Gen.Next(wc.thread)
	}
	if a, ok := sl.g.NextOr(wc.thread); ok {
		return a
	}
	return ws.e.refill(sl)
}

// warmLoop issues each context's budget spread evenly across the longest
// budget's rounds — the same Bresenham interleave as ffLoop, computed
// incrementally (one add and compare per context per round instead of
// two multiplies and two divides). Budgets never exceed rounds, so each
// context issues zero or one reference per round, and the accumulator
// identity acc = i*bud mod rounds reproduces ffLoop's
// (i+1)*bud/rounds - i*bud/rounds issue pattern exactly.
func warmLoop[S warmSource](s *System, rounds uint64, src S) {
	wcs := s.warm
	for i := uint64(0); i < rounds; i++ {
		for j := range wcs {
			wc := &wcs[j]
			wc.acc += wc.bud
			if wc.acc < rounds {
				continue
			}
			wc.acc -= rounds
			a := src.next(s, wc)
			// Lookahead prefetch: this context's next reference sits in
			// the ring one full rotation (~all other cores' references)
			// ahead of its use — far enough to hide a DRAM miss, near
			// enough to survive in the host cache; the out-of-order
			// window cannot bridge that gap itself because the
			// intervening tag-compare branches are unpredictable.
			// Rather than blindly touching every array, run the walk's
			// own hit cascade read-only: the probes pull exactly the set
			// metadata the demand access will scan, and each predicted
			// hit prunes the deeper (and more speculative) loads. A
			// predicted LLC miss even starts the eviction victim's
			// directory walk — the one load the demand path cannot
			// overlap with anything because the victim is only known
			// mid-fill. Predictions can go stale within the rotation;
			// that only wastes the prefetched line. (Ring empty,
			// non-ring source, or host-cache-resident footprint —
			// warmPF off: skip.)
			if s.warmPF && wc.pos < len(wc.ring) {
				nb := wc.ring[wc.pos].Block
				na := wc.m.AddrOf(nb)
				sink := wc.m.PrefetchTouch(nb)
				if _, hit0 := wc.l0.Probe(na); !hit0 {
					if _, hit1 := wc.l1.Probe(na); !hit1 {
						sink += s.dir.PrefetchProbe(na)
						if _, hitB := wc.bank.Probe(na); !hitB {
							sink += s.dirCache.PrefetchSet(s.dir.Home(na), na)
							if vt, ok := wc.bank.PeekVictimTag(na, wc.vtag); ok {
								sink += s.dir.PrefetchProbe(vt)
							}
						}
					}
				}
				s.pfSink += sink
			}
			wc.m.Touch(a.Block)
			addr := wc.m.AddrOf(a.Block)
			// L0 hits dominate every Table II workload; handle them in
			// the loop body so the common reference is one cache probe.
			if w0, ok := wc.l0.Lookup(addr); ok {
				if a.Write {
					warmWriteHitL0(s, wc, addr, w0)
				}
				continue
			}
			warmMissL0(s, wc, addr, a.Write)
		}
	}
}

// warmWriteHitL0 is writeHitL0TM's functional plane: a store that hit in
// L0, with the L1 state deciding silent store, silent E->M upgrade, or a
// coherence upgrade through the home node.
func warmWriteHitL0(s *System, wc *warmCore, addr sim.Addr, w0 cache.Way) {
	l0, l1 := wc.l0, wc.l1
	w1, ok := l1.Probe(addr)
	if !ok {
		panic(fmt.Sprintf("core: L0/L1 inclusion violated at %#x", addr))
	}
	switch {
	case l1.State(w1) == cache.Modified:
		l0.SetState(w0, cache.Modified)
	case l1.State(w1) == cache.Exclusive:
		// Silent E->M upgrade; record dirty ownership.
		l1.SetState(w1, cache.Modified)
		e := s.dir.Get(addr)
		e.L1Owner = int8(wc.c)
		e.L2Owner = int8(wc.g)
		if bw, ok := wc.bank.Probe(addr); ok {
			wc.bank.SetState(bw, cache.Modified)
		}
		l0.SetState(w0, cache.Modified)
	default:
		// Shared: coherence upgrade through the home node.
		wc.st.Upgrades++
		e := warmInvalidateOthers(s, wc, addr)
		e.L1Owner = int8(wc.c)
		e.L2Owner = int8(wc.g)
		l1.SetState(w1, cache.Modified)
		if bw, ok := wc.bank.Probe(addr); ok {
			wc.bank.SetState(bw, cache.Modified)
		}
		l0.SetState(w0, cache.Modified)
	}
}

// warmMissL0 continues a reference past an L0 miss: L1 hit handling
// (including the write-upgrade paths) or the full fetch.
func warmMissL0(s *System, wc *warmCore, addr sim.Addr, write bool) {
	l1 := wc.l1
	if w1, ok := l1.Lookup(addr); ok {
		switch {
		case !write:
			s.fillL0(wc.c, addr, l1.State(w1), wc.vtag)
		case l1.State(w1) == cache.Modified:
			s.fillL0(wc.c, addr, cache.Modified, wc.vtag)
		case l1.State(w1) == cache.Exclusive:
			// Silent E->M upgrade; record dirty ownership.
			l1.SetState(w1, cache.Modified)
			e := s.dir.Get(addr)
			e.L1Owner = int8(wc.c)
			e.L2Owner = int8(wc.g)
			if bw, ok := wc.bank.Probe(addr); ok {
				wc.bank.SetState(bw, cache.Modified)
			}
			s.fillL0(wc.c, addr, cache.Modified, wc.vtag)
		default:
			// Shared: coherence upgrade through the home node.
			wc.st.Upgrades++
			e := warmInvalidateOthers(s, wc, addr)
			e.L1Owner = int8(wc.c)
			e.L2Owner = int8(wc.g)
			l1.SetState(w1, cache.Modified)
			if bw, ok := wc.bank.Probe(addr); ok {
				wc.bank.SetState(bw, cache.Modified)
			}
			s.fillL0(wc.c, addr, cache.Modified, wc.vtag)
		}
		return
	}
	wc.st.PrivMisses++
	warmFetch(s, wc, addr, write)
}

// warmFetch is fetchTM's functional plane: probe the group bank, then
// the directory, touch the supplier's state, install in the bank and
// fill the private hierarchy. The bank lookup and its miss-fill fuse
// into one set scan (WarmLookup chooses the victim the later
// WarmInsertAt uses) — sound because nothing between them touches this
// bank: the dircache and remote banks are distinct cache instances, and
// a bank-group miss plus the group-inclusion invariant puts any L1 owner
// (and hence downgradeOwner's bank) outside this group.
func warmFetch(s *System, wc *warmCore, addr sim.Addr, write bool) {
	st := wc.st
	g := wc.g
	bank := wc.bank

	bw, bHit, victimWay := bank.WarmLookup(addr, wc.vtag)
	e := s.dir.Get(addr)

	if bHit {
		if !e.HasL2(g) {
			panic(fmt.Sprintf("core: bank %d holds %#x but directory disagrees", g, addr))
		}
		if o := int(e.L1Owner); o >= 0 && o != wc.c {
			// A sibling's L1 holds the line dirty; owner supplies and
			// downgrades. The owner's L1 access latency is added outside
			// the timing model in fetchTM, so even the ffTiming walk
			// charges it to the scratch MissLatSum; mirror that for
			// bit-identical scratch counters.
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
			st.MissLatSum += DefaultL1Latency
		}
	} else {
		// LLC miss for this VM.
		st.LLCMisses++
		home := s.dir.Home(addr)
		s.dirCache.WarmAccess(home, addr)

		switch {
		case e.L1Owner >= 0:
			// Dirty in a remote core's private cache. As on the bank-hit
			// owner path, the L1 access latency lands in scratch
			// MissLatSum even under ffTiming.
			o := int(e.L1Owner)
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
			st.MissLatSum += DefaultL1Latency
		case e.L2Owner >= 0:
			// Dirty in a remote bank: supplier keeps the line Owned.
			b := int(e.L2Owner)
			sw, ok := s.banks[b].Probe(addr)
			if !ok {
				panic(fmt.Sprintf("core: directory owner bank %d lost %#x", b, addr))
			}
			if s.banks[b].State(sw) == cache.Modified {
				s.banks[b].SetState(sw, cache.Owned)
			}
			st.C2CDirty++
		case e.L2Count() > 0:
			st.C2CClean++
		default:
			st.MemReads++
		}

		// Install in the local bank at the way WarmLookup chose.
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted := bank.WarmInsertAt(victimWay, addr, bankState, wc.vtag)
		bw = victimWay
		if evicted {
			// The victim's release may backward-shift addr's own slot;
			// only then is a re-fetch of e needed.
			warmEvictBankLine(s, g, victim)
			e = s.dir.Get(addr)
		}
		e.AddL2(g)
	}

	// Exclusivity for writes: invalidate every other copy.
	if write && (e.L2Count() > 1 || e.L1Sharers != 0) {
		e = warmInvalidateOthers(s, wc, addr)
	}

	// Fill the private hierarchy, demoting stale Exclusive copies first.
	s.demoteExclusives(wc.c, addr, e)
	var pState cache.State
	switch {
	case write:
		pState = cache.Modified
		e.L1Owner = int8(wc.c)
		e.L2Owner = int8(g)
		bank.SetState(bw, cache.Modified)
	case e.L1Sharers == 0 && e.L2Count() == 1 && !e.Dirty():
		pState = cache.Exclusive
	default:
		pState = cache.Shared
	}
	// Record the new private sharer before filling: fillL1 can evict a
	// victim whose directory Release reshapes the flat table, after which
	// e must not be dereferenced.
	e.AddL1(wc.c)
	s.fillL1(wc.c, addr, pState, wc.vtag)
	s.fillL0(wc.c, addr, pState, wc.vtag)
}

// warmInvalidateOthers is invalidateOthersTM's functional plane: the
// home-node dircache touch, then dropping every private and bank copy
// other than the requester's own and clearing ownership. Returns the
// entry (nothing here reshapes the table).
func warmInvalidateOthers(s *System, wc *warmCore, addr sim.Addr) *coherence.Entry {
	home := s.dir.Home(addr)
	s.dirCache.WarmAccess(home, addr)
	st := wc.st
	e := s.dir.Get(addr)
	// Private copies at other cores (ascending over the sharer mask).
	for m := e.L1Sharers &^ (1 << uint(wc.c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		s.dropPrivate(o, addr, e)
		st.Invalidations++
	}
	// Bank copies in other groups (a dirty victim's writeback is a
	// timing-model no-op during warming).
	for m := e.L2Sharers &^ (1 << uint(wc.g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		s.banks[b].Invalidate(addr)
		e.DropL2(b)
		st.Invalidations++
	}
	e.L1Owner = -1
	e.L2Owner = -1
	return e
}

// warmEvictBankLine is evictBankLineTM's functional plane: on an LLC
// bank eviction, back-invalidate the group's private copies (inclusion)
// and update the directory; the dirty writeback is a timing no-op.
func warmEvictBankLine(s *System, g int, victim cache.Line) {
	addr := victim.Tag
	si, ok := s.dir.ProbeSlot(addr)
	if !ok {
		return
	}
	e := s.dir.EntryAt(si)
	for o := g * s.cfg.GroupSize; o < (g+1)*s.cfg.GroupSize; o++ {
		if !e.HasL1(o) {
			continue
		}
		s.dropPrivate(o, addr, e)
		s.backInvals++
	}
	e.DropL2(g)
	s.dir.ReleaseSlot(si)
}
