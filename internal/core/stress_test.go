package core

// Randomized protocol stress: hammer the hierarchy with random accesses
// from all cores over a small address pool (maximizing conflict and
// coherence churn), then cross-check every piece of cached state against
// every other: inclusion, directory masks vs actual residency, ownership
// vs dirty states.

import (
	"testing"

	"consim/internal/cache"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// checkGlobalConsistency validates all cross-component invariants.
func checkGlobalConsistency(t *testing.T, s *System) {
	t.Helper()

	// 1. Directory invariants (owner-in-mask).
	if err := s.dir.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// 2. L0 subset of L1; L1 subset of the group's bank (inclusion).
	for c := 0; c < s.cfg.Cores; c++ {
		g := s.groupOf(c)
		s.l0[c].ForEach(func(l *cache.Line) {
			if _, ok := s.l1[c].Probe(l.Tag); !ok {
				t.Fatalf("core %d: L0 line %#x not in L1", c, l.Tag)
			}
		})
		s.l1[c].ForEach(func(l *cache.Line) {
			if _, ok := s.banks[g].Probe(l.Tag); !ok {
				t.Fatalf("core %d: L1 line %#x not in bank %d", c, l.Tag, g)
			}
		})
	}

	// 3. Directory L1 mask == actual L1 residency, exactly.
	for c := 0; c < s.cfg.Cores; c++ {
		s.l1[c].ForEach(func(l *cache.Line) {
			e, ok := s.dir.Probe(l.Tag)
			if !ok || !e.HasL1(c) {
				t.Fatalf("core %d holds %#x but directory does not know", c, l.Tag)
			}
			// Modified lines must be the recorded owner.
			if l.State == cache.Modified && e.L1Owner != int8(c) {
				t.Fatalf("core %d holds %#x Modified but owner is %d", c, l.Tag, e.L1Owner)
			}
		})
	}

	// 4. Directory L2 mask == actual bank residency, both directions.
	for g := range s.banks {
		s.banks[g].ForEach(func(l *cache.Line) {
			e, ok := s.dir.Probe(l.Tag)
			if !ok || !e.HasL2(g) {
				t.Fatalf("bank %d holds %#x but directory does not know", g, l.Tag)
			}
			if l.State.Dirty() && e.L1Owner < 0 && e.L2Owner != int8(g) {
				t.Fatalf("bank %d holds %#x dirty (%v) but L2 owner is %d", g, l.Tag, l.State, e.L2Owner)
			}
		})
	}

	// 5. Every directory claim is backed by a real copy.
	for c := 0; c < s.cfg.Cores; c++ {
		g := s.groupOf(c)
		_ = g
	}
	// (Directory entries are only released when empty; verify claims via
	// a block-level sweep over tracked lines.)
	checked := 0
	for g := range s.banks {
		s.banks[g].ForEach(func(l *cache.Line) { checked++ })
	}
	if checked == 0 {
		t.Fatal("stress run left no cached state to verify")
	}
}

func TestStressRandomTrafficConsistency(t *testing.T) {
	for _, gs := range []int{1, 2, 4, 8, 16} {
		gs := gs
		cfg := DefaultConfig(
			workload.Specs()[workload.TPCH],
			workload.Specs()[workload.SPECjbb],
			workload.Specs()[workload.TPCW],
			workload.Specs()[workload.SPECweb],
		)
		cfg.GroupSize = gs
		cfg.Policy = sched.RoundRobin
		cfg.Scale = 64
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRNG(uint64(gs) * 7919)
		// A tiny pool of hot lines per VM plus same-set aliases drives
		// constant eviction, upgrade and transfer churn.
		const pool = 600
		for i := 0; i < 120_000; i++ {
			c := r.Intn(cfg.Cores)
			vmID := sys.currentVM(c)
			block := r.Uint64n(pool)
			if r.Bool(0.1) {
				// Alias into a far region to force set conflicts.
				block += uint64(sys.banks[0].Lines())
			}
			addr := sys.vms[vmID].AddrOf(block)
			sys.access(c, vmID, addr, r.Bool(0.3))
			sys.now += sim.Cycle(r.Intn(3))
		}
		checkGlobalConsistency(t, sys)
	}
}

func TestStressSingleLineAllCores(t *testing.T) {
	// Worst-case coherence ping-pong: every core reads and writes one
	// line of one VM... but VMs own disjoint regions, so the sharpest
	// legal contention is all threads of one VM on one line.
	cfg := DefaultConfig(workload.Specs()[workload.TPCH])
	cfg.GroupSize = 4
	cfg.Scale = 64
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores := sys.Assignment()[0]
	a := sys.vms[0].AddrOf(3)
	r := sim.NewRNG(123)
	for i := 0; i < 30_000; i++ {
		c := cores[r.Intn(len(cores))]
		sys.access(c, 0, a, r.Bool(0.5))
		sys.now += 1
	}
	checkGlobalConsistency(t, sys)
	// Exactly one dirty owner (or none) must remain.
	e, ok := sys.dir.Probe(a)
	if !ok {
		t.Fatal("line lost")
	}
	owners := 0
	for _, c := range cores {
		if w, ok := sys.l1[c].Probe(a); ok && sys.l1[c].State(w) == cache.Modified {
			owners++
			if e.L1Owner != int8(c) {
				t.Errorf("modified copy at core %d but owner is %d", c, e.L1Owner)
			}
		}
	}
	if owners > 1 {
		t.Fatalf("%d simultaneous Modified copies", owners)
	}
}

func TestStressAdversarialSetConflicts(t *testing.T) {
	// All accesses land in a single cache set at every level,
	// guaranteeing continuous eviction and back-invalidation.
	cfg := DefaultConfig(workload.Specs()[workload.SPECjbb])
	cfg.GroupSize = 4
	cfg.Scale = 64
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores := sys.Assignment()[0]
	bankSets := uint64(sys.banks[0].Lines() / 16)
	r := sim.NewRNG(321)
	for i := 0; i < 40_000; i++ {
		c := cores[r.Intn(len(cores))]
		// Same set index in the bank, varied tags.
		block := r.Uint64n(64) * bankSets
		if block >= sys.vms[0].Gen.FootprintBlocks() {
			block %= sys.vms[0].Gen.FootprintBlocks()
		}
		sys.access(c, 0, sys.vms[0].AddrOf(block), r.Bool(0.25))
		sys.now += sim.Cycle(r.Intn(2))
	}
	checkGlobalConsistency(t, sys)
}
