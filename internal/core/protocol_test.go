package core

// Directed protocol tests: drive crafted access sequences through the
// coherence walk and check the resulting transfer classification, state
// transitions and directory bookkeeping. These pin down the semantics the
// statistical experiments rely on.

import (
	"testing"

	"consim/internal/cache"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// protoSystem builds an idle 16-core system (no Run; accesses are issued
// directly) with the given LLC group size.
func protoSystem(t *testing.T, groupSize int) *System {
	t.Helper()
	cfg := DefaultConfig(workload.Specs()[workload.TPCH])
	cfg.GroupSize = groupSize
	cfg.Policy = sched.Affinity
	cfg.Scale = 64
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// addr returns a test address inside VM 0's region.
func taddr(s *System, block uint64) sim.Addr {
	return s.vms[0].AddrOf(block)
}

// stateOf probes c for a and returns the resident line's state.
func stateOf(c *cache.Cache, a sim.Addr) (cache.State, bool) {
	w, ok := c.Probe(a)
	if !ok {
		return cache.Invalid, false
	}
	return c.State(w), true
}

func TestProtocolColdMissGoesToMemory(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 10)
	st := &s.vms[0].Stats

	lat := s.access(0, 0, a, false)
	if st.MemReads != 1 || st.C2C() != 0 {
		t.Fatalf("cold read: mem=%d c2c=%d", st.MemReads, st.C2C())
	}
	if lat < DefaultMemLatency {
		t.Errorf("cold miss latency %d below memory latency", lat)
	}
	// Sole copy: private state must be Exclusive.
	if st, ok := stateOf(s.l1[0], a); !ok || st != cache.Exclusive {
		t.Errorf("sole copy not Exclusive: %v (resident=%v)", st, ok)
	}
}

func TestProtocolSecondReadHitsL0(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 11)
	s.access(0, 0, a, false)
	lat := s.access(0, 0, a, false)
	if lat != DefaultL0Latency {
		t.Errorf("repeat read latency %d, want %d", lat, DefaultL0Latency)
	}
}

func TestProtocolCleanC2CAcrossBanks(t *testing.T) {
	s := protoSystem(t, 1) // private LLCs: cores are their own groups
	a := taddr(s, 12)
	st := &s.vms[0].Stats

	s.access(0, 0, a, false) // core 0 fetches from memory
	s.access(1, 0, a, false) // core 1 must get a clean transfer from bank 0
	if st.C2CClean != 1 || st.C2CDirty != 0 {
		t.Fatalf("clean c2c not recorded: %+v", st)
	}
	if st.MemReads != 1 {
		t.Errorf("second read went to memory: %d reads", st.MemReads)
	}
	// Supplier's private Exclusive copy must have been demoted.
	if st, ok := stateOf(s.l1[0], a); !ok || st != cache.Shared {
		t.Errorf("supplier L1 state = %v (resident=%v), want Shared", st, ok)
	}
	if st, ok := stateOf(s.l1[1], a); !ok || st != cache.Shared {
		t.Errorf("requester L1 state = %v (resident=%v), want Shared", st, ok)
	}
}

func TestProtocolDirtyC2CAcrossBanks(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 13)
	st := &s.vms[0].Stats

	s.access(0, 0, a, true)  // core 0 writes (Modified)
	s.access(1, 0, a, false) // core 1 reads: dirty transfer
	if st.C2CDirty != 1 {
		t.Fatalf("dirty c2c not recorded: %+v", st)
	}
	// Owner downgraded to Shared; its bank holds the dirty data.
	if st, ok := stateOf(s.l1[0], a); !ok || st != cache.Shared {
		t.Errorf("previous owner L1 = %v (resident=%v), want Shared", st, ok)
	}
	e, ok := s.dir.Probe(a)
	if !ok {
		t.Fatal("directory lost the line")
	}
	if e.L1Owner != -1 || e.L2Owner != 0 {
		t.Errorf("ownership after downgrade: L1=%d L2=%d", e.L1Owner, e.L2Owner)
	}
}

func TestProtocolDirtyC2CWithinGroup(t *testing.T) {
	s := protoSystem(t, 4) // cores 0-3 share bank 0
	a := taddr(s, 14)
	st := &s.vms[0].Stats

	s.access(0, 0, a, true)  // core 0 dirties the line
	s.access(1, 0, a, false) // sibling read: in-group dirty supply
	if st.C2CDirty != 1 {
		t.Fatalf("in-group dirty transfer not recorded: %+v", st)
	}
	if st.LLCMisses != 1 { // only the original write missed the bank
		t.Errorf("LLC misses = %d, want 1", st.LLCMisses)
	}
}

func TestProtocolWriteInvalidatesSharers(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 15)
	st := &s.vms[0].Stats

	s.access(0, 0, a, false) // E at core 0
	s.access(1, 0, a, false) // S at cores 0,1
	s.access(2, 0, a, false) // S at cores 0,1,2
	st.Invalidations = 0
	s.access(3, 0, a, true) // write must kill the three other copies
	if st.Invalidations == 0 {
		t.Fatal("write invalidated nothing")
	}
	for c := 0; c < 3; c++ {
		if _, ok := s.l1[c].Probe(a); ok {
			t.Errorf("core %d still holds the line after a remote write", c)
		}
		if _, ok := s.banks[c].Probe(a); ok {
			t.Errorf("bank %d still holds the line after a remote write", c)
		}
	}
	if st, ok := stateOf(s.l1[3], a); !ok || st != cache.Modified {
		t.Errorf("writer's state = %v (resident=%v), want Modified", st, ok)
	}
	e, _ := s.dir.Probe(a)
	if e.L1Count() != 1 || e.L2Count() != 1 {
		t.Errorf("directory sharers after write: L1=%d L2=%d", e.L1Count(), e.L2Count())
	}
}

func TestProtocolUpgradeOnSharedWrite(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 16)
	st := &s.vms[0].Stats

	s.access(0, 0, a, false)
	s.access(1, 0, a, false) // both Shared
	misses := st.PrivMisses
	s.access(0, 0, a, true) // upgrade, not a miss
	if st.PrivMisses != misses {
		t.Error("upgrade counted as a miss")
	}
	if st.Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", st.Upgrades)
	}
	if _, ok := s.l1[1].Probe(a); ok {
		t.Error("stale copy survived the upgrade")
	}
	if st, _ := stateOf(s.l1[0], a); st != cache.Modified {
		t.Errorf("upgraded line state = %v", st)
	}
}

func TestProtocolSilentEToMUpgrade(t *testing.T) {
	s := protoSystem(t, 1)
	a := taddr(s, 17)
	st := &s.vms[0].Stats

	s.access(0, 0, a, false) // Exclusive
	lat := s.access(0, 0, a, true)
	if lat != DefaultL0Latency {
		t.Errorf("E->M upgrade cost %d cycles, want silent %d", lat, DefaultL0Latency)
	}
	if st.Upgrades != 0 {
		t.Error("silent upgrade counted as a directory upgrade")
	}
	e, _ := s.dir.Probe(a)
	if e.L1Owner != 0 {
		t.Errorf("L1 owner = %d after E->M", e.L1Owner)
	}
}

func TestProtocolBankEvictionBackInvalidatesL1(t *testing.T) {
	s := protoSystem(t, 1)
	st := &s.vms[0].Stats
	_ = st

	// Fill one bank set far past its associativity with same-set lines;
	// earlier lines must be back-invalidated out of L0/L1 when evicted.
	bank := s.banks[0]
	setStride := uint64(bank.Lines() / 16) // lines per set * sets... derive from geometry
	_ = setStride
	// Use addresses that map to one bank set: stride = sets * 64.
	sets := bank.Lines() / 16 // 16-way
	first := taddr(s, 20)
	var addrs []sim.Addr
	for i := 0; i <= 16; i++ {
		addrs = append(addrs, first+sim.Addr(i*sets*sim.LineBytes))
	}
	for _, a := range addrs {
		s.access(0, 0, a, false)
	}
	// The first line must have been evicted from the bank and therefore
	// from the private hierarchy too (inclusion).
	if _, ok := bank.Probe(first); ok {
		t.Skip("victim selection kept the first line; LRU refreshed unexpectedly")
	}
	if _, ok := s.l1[0].Probe(first); ok {
		t.Error("L1 kept a line its bank evicted (inclusion violated)")
	}
	if _, ok := s.l0[0].Probe(first); ok {
		t.Error("L0 kept a line its bank evicted (inclusion violated)")
	}
	if err := s.dir.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestProtocolDirtyBankEvictionWritesBack(t *testing.T) {
	s := protoSystem(t, 1)
	bank := s.banks[0]
	sets := bank.Lines() / 16
	first := taddr(s, 40)
	s.access(0, 0, first, true) // dirty the first line
	wbBefore := s.mem.Writebacks
	for i := 1; i <= 17; i++ {
		s.access(0, 0, first+sim.Addr(i*sets*sim.LineBytes), false)
	}
	if _, ok := bank.Probe(first); ok {
		t.Skip("dirty line not evicted under this LRU sequence")
	}
	if s.mem.Writebacks == wbBefore {
		t.Error("dirty bank eviction produced no writeback")
	}
}

func TestProtocolL1EvictionFoldsDirtyIntoBank(t *testing.T) {
	s := protoSystem(t, 4)
	l1 := s.l1[0]
	l1Sets := l1.Lines() / 4 // 4-way
	first := taddr(s, 60)
	s.access(0, 0, first, true) // M in L1
	// Evict it from L1 with same-set fills (bank is much larger, so the
	// lines stay bank-resident).
	for i := 1; i <= 5; i++ {
		s.access(0, 0, first+sim.Addr(i*l1Sets*sim.LineBytes), false)
	}
	if _, ok := l1.Probe(first); ok {
		t.Skip("L1 kept the dirty line under this sequence")
	}
	bst, ok := stateOf(s.banks[0], first)
	if !ok {
		t.Fatal("bank lost the line")
	}
	if bst != cache.Modified {
		t.Errorf("bank state after dirty L1 eviction = %v, want Modified", bst)
	}
	e, _ := s.dir.Probe(first)
	if e.L1Owner != -1 || e.L2Owner != 0 {
		t.Errorf("ownership after fold: L1=%d L2=%d", e.L1Owner, e.L2Owner)
	}
}

func TestProtocolRemoteDirtyBankSupplies(t *testing.T) {
	s := protoSystem(t, 4) // groups {0-3}, {4-7}, ...
	a := taddr(s, 80)
	st := &s.vms[0].Stats

	s.access(0, 0, a, true) // group 0 dirty
	// Force the dirty data out of core 0's L1 into bank 0 so the
	// supplier is the bank, not the L1.
	l1Sets := s.l1[0].Lines() / 4
	for i := 1; i <= 5; i++ {
		s.access(0, 0, a+sim.Addr(i*l1Sets*sim.LineBytes), false)
	}
	if _, ok := s.l1[0].Probe(a); ok {
		t.Skip("dirty line still in L1")
	}
	st.C2CDirty = 0
	s.access(4, 0, a, false) // other group reads: dirty bank-to-bank transfer
	if st.C2CDirty != 1 {
		t.Fatalf("remote dirty bank supply not recorded: %+v", st)
	}
	// Supplier bank keeps an Owned copy.
	if st, ok := stateOf(s.banks[0], a); !ok || st != cache.Owned {
		t.Errorf("supplier bank state = %v (resident=%v), want Owned", st, ok)
	}
}

func TestProtocolVMTagOnLines(t *testing.T) {
	s := protoSystem(t, 4)
	a := taddr(s, 100)
	s.access(2, 0, a, false)
	if w, ok := s.banks[0].Probe(a); !ok || s.banks[0].WayVM(w) != 0 {
		t.Errorf("bank line resident=%v", ok)
	}
}
