package core

import (
	"fmt"
	"time"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/memctrl"
	"consim/internal/mesh"
	"consim/internal/obs"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/vm"
	"consim/internal/workload"
)

// runnable is one schedulable VM thread.
type runnable struct {
	vmID   int
	thread int
}

// coreState is one in-order core: the thread(s) bound to it and its
// reference progress. In-order cores block on every memory access, so a
// core is fully described by the time its next reference may issue. With
// over-commitment a core holds several runnables and rotates between
// them every timeslice.
type coreState struct {
	queue    []runnable
	cur      int
	sliceEnd sim.Cycle
	active   bool
	refs     uint64
	rng      *sim.RNG
}

// System is one configured simulation: the paper's 16-core CMP with the
// chosen LLC organization and scheduling policy, loaded to capacity with
// the configured VMs.
type System struct {
	cfg  Config
	geom mesh.Geometry

	net      *mesh.Model
	mem      *memctrl.Mem
	dir      *coherence.Directory
	dirCache *coherence.DirCache

	l0    []*cache.Cache
	l1    []*cache.Cache
	banks []*cache.Cache // one per LLC group

	bankBusy []sim.Cycle // per mesh node (bank slice occupancy)
	dirBusy  []sim.Cycle // per mesh node (directory occupancy)

	vms        []*vm.VM
	cores      []coreState
	assignment [][]int
	thinkOf    []uint64           // per-VM 2*mean+1 think-time draw range
	regions    []workload.Regions // per-VM footprint classifier (hot-loop cache)

	// Switches counts hypervisor timeslice rotations (over-commit mode).
	Switches uint64
	// Migrations counts threads moved by dynamic rebalancing.
	Migrations uint64

	nextRebalance sim.Cycle
	rebalanceSeed uint64
	pending       []bool // cores with an in-flight event
	globalRefs    uint64
	activeCores   int

	now sim.Cycle
	q   *sim.EventQueue

	backInvals uint64

	// simSeconds accumulates host time spent inside runUntil only, so
	// Result.WallSeconds reflects simulation work and is not skewed by
	// hook/trace/manifest publishing or snapshot accounting.
	simSeconds float64

	// Reusable scratch for rebalance and installPartitions; both fire
	// every RebalanceCycles in the dynamic-scheduling study, and the
	// per-call map/slice churn showed up in its profile.
	scratchOldQueues [][]runnable
	scratchThreads   []int
	scratchPresent   []bool
	scratchQuota     []int

	// Observability: hooks publish live metrics on a cadence (and emit
	// phase trace spans); lastPub re-bases counter deltas so sums over
	// shards stay monotone. All publish work is allocation-free.
	hooks   *obs.RunHooks
	lastPub pubTotals

	// Per-window time-series recording (hooks.TS set): rec buffers one
	// row per live publish into preallocated columns; the tsPrev*
	// scratch re-bases per-VM and per-domain deltas between rows, and
	// tsPhase tracks the phase tag the enclosing phase() span set.
	// All recording work is allocation-free (alloc_test.go guards it).
	rec           *obs.Recorder
	tsStart       time.Time
	tsPhase       obs.TSPhase
	tsPrevCycle   sim.Cycle
	tsPrevRefs    []uint64
	tsPrevMiss    []uint64
	tsPrevDomCyc  []uint64
	tsPrevDomBusy []float64
	tsPrevReplay  float64
	tsRefsPerTx   []float64

	// phaseProf accumulates the run's wall-time decomposition; engine-
	// specific terms are folded in from the engines at run end.
	phaseProf obs.PhaseProfile

	// shard is the intra-run parallel engine (cfg.Shards > 1); nil runs
	// the sequential loop. See shard.go for why the workers carry only
	// functional work and results stay bit-identical.
	shard *shardEngine

	// pdes is the split-transaction parallel engine (cfg.Pdes > 1); nil
	// runs the sequential loop. See pdes.go for the window protocol and
	// why results are equivalence-gated rather than bit-identical.
	pdes *pdesEngine

	// sample accumulates the interval-sampling engine's provenance
	// (cfg.Sample enabled); ffStats is the per-VM scratch counter sink
	// fast-forwarded references write into so the measurement counters in
	// vm.Stats only ever see detailed-window work. Allocated lazily on
	// first fast-forward — detailed runs pay nothing. See sample.go.
	sample  SampleStats
	ffStats []vm.Stats

	// ffRate holds each core's reference count from the last detailed
	// sampling window; fastForward apportions the skipped stream in
	// proportion to it (CPI-proportional interleaving, see ffBudgets).
	// Nil until the first detailed window completes — uniform until then.
	ffRate   []uint64
	ffBudget []uint64 // reusable apportionment scratch

	// warm holds the fast-forward warming contexts (warm.go), built once
	// per run: sampling validation fixes each active core's runnable, so
	// the per-core invariants they hoist stay valid across fast-forwards.
	// ffOracle routes fast-forward through the retained generic ffTiming
	// walk instead — the differential tests' bit-identity oracle.
	warm     []warmCore
	warmPF   bool // lookahead prefetch enabled (footprint exceeds host cache)
	ffOracle bool
	// pfSink keeps the warm walk's prefetch reads live (warm.go issues
	// plain loads of sets/buckets it is about to scan so their DRAM
	// misses overlap; summing the bits read here stops the compiler from
	// discarding the loads). Never read.
	pfSink uint64
}

// pubTotals snapshots the per-VM counter sums at the last live publish.
type pubTotals struct {
	refs, privMisses, llcMisses       uint64
	c2cClean, c2cDirty                uint64
	memReads, invalidations, upgrades uint64
}

// livePublishMask throttles live metric publishes to one per 8192
// issued references — cheap enough to leave on, fresh enough for a
// progress display or expvar poller.
const livePublishMask = 8192 - 1

// NewSystem builds and schedules a system from cfg. Construction errors
// (invalid config, unschedulable placement) are returned, not panicked:
// configs arrive from CLI flags and experiment sweeps.
func NewSystem(cfg Config) (*System, error) {
	netCfg := mesh.DefaultNetConfig(cfg.Cores)
	if cfg.Mem.Controllers == 0 {
		// Controllers attach at the mesh corners, generalizing the
		// paper's 4x4 layout to the scaling-study machine sizes.
		g := netCfg.Geometry
		cfg.Mem = memctrl.Config{
			Controllers: 4,
			Latency:     DefaultMemLatency,
			Occupancy:   20,
			Nodes: []int{
				g.Node(0, 0), g.Node(g.Width-1, 0),
				g.Node(0, g.Height-1), g.Node(g.Width-1, g.Height-1),
			},
		}
	}
	if cfg.DirCacheEntries == 0 {
		cfg.DirCacheEntries = 32768
	}
	if cfg.PipeStages == 0 {
		cfg.PipeStages = DefaultPipeStages
	}
	cfg.Sample = cfg.Sample.withDefaults(cfg.MeasureRefs)
	if cfg.Pdes > 1 && cfg.PdesWindow == 0 {
		cfg.PdesWindow = DefaultPdesWindow
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:      cfg,
		geom:     netCfg.Geometry,
		net:      mesh.NewModel(netCfg.Geometry, cfg.PipeStages),
		mem:      memctrl.New(cfg.Mem),
		dir:      coherence.NewDirectory(cfg.Cores),
		dirCache: coherence.NewDirCache(cfg.Cores, coherence.DirCacheConfig{Entries: cfg.DirCacheEntries, Assoc: 8}),
		bankBusy: make([]sim.Cycle, cfg.Cores),
		dirBusy:  make([]sim.Cycle, cfg.Cores),
		q:        sim.NewEventQueue(cfg.Cores),
		hooks:    cfg.Obs,
	}

	for i := 0; i < cfg.Cores; i++ {
		s.l0 = append(s.l0, cache.New(cache.Config{SizeBytes: cfg.l0Bytes(), Assoc: 2, Latency: DefaultL0Latency}))
		s.l1 = append(s.l1, cache.New(cache.Config{SizeBytes: cfg.l1Bytes(), Assoc: 4, Latency: DefaultL1Latency}))
	}
	for g := 0; g < cfg.Groups(); g++ {
		s.banks = append(s.banks, cache.New(cache.Config{SizeBytes: cfg.llcGroupBytes(), Assoc: 16, Latency: DefaultLLCLatency}))
	}

	// Lay the VMs out in disjoint physical regions and place threads.
	rootRNG := sim.NewRNG(cfg.Seed)
	var base sim.Addr
	vmThreads := make([]int, len(cfg.Workloads))
	for i, spec := range cfg.Workloads {
		scaled := spec.Scaled(cfg.Scale)
		var src workload.Source
		if len(cfg.Sources) > 0 && cfg.Sources[i] != nil {
			src = cfg.Sources[i]
		} else {
			src = workload.NewGenerator(scaled, cfg.ThreadsOf(i), rootRNG.Uint64()+uint64(i))
		}
		m := vm.New(i, src, base)
		base = m.RegionEnd(1 << 20)
		s.vms = append(s.vms, m)
		s.regions = append(s.regions, m.Gen.Spec().Regions(cfg.ThreadsOf(i)))
		vmThreads[i] = cfg.ThreadsOf(i)
	}
	asg, err := sched.AssignWithCapacity(cfg.Policy, cfg.Cores, cfg.GroupSize, cfg.CoreCapacity(), vmThreads, cfg.Seed^0xa5a5)
	if err != nil {
		return nil, err
	}
	s.assignment = asg
	s.thinkOf = make([]uint64, len(cfg.Workloads))
	for v := range cfg.Workloads {
		s.thinkOf[v] = uint64(2*cfg.Workloads[v].ThinkCycles) + 1
	}
	capacity := cfg.CoreCapacity()
	s.cores = make([]coreState, cfg.Cores)
	s.pending = make([]bool, cfg.Cores)
	for c := range s.cores {
		s.cores[c].rng = sim.NewRNG(cfg.Seed ^ uint64(c)<<8 ^ 0x77)
	}
	for v := range asg {
		for t, c := range asg[v] {
			if len(s.cores[c].queue) >= capacity {
				return nil, fmt.Errorf("core: placement overfilled core %d", c)
			}
			s.cores[c].queue = append(s.cores[c].queue, runnable{vmID: v, thread: t})
			s.cores[c].active = true
		}
	}
	for c := range s.cores {
		if s.cores[c].active {
			s.activeCores++
		}
	}
	if cfg.QoSPartition {
		s.installPartitions()
	}
	if cfg.RebalanceCycles > 0 {
		s.nextRebalance = cfg.RebalanceCycles
		s.rebalanceSeed = cfg.Seed ^ 0xd15c
	}
	if cfg.Shards > 1 {
		s.shard = newShardEngine(s)
	}
	if cfg.Pdes > 1 {
		s.pdes = newPdesEngine(s)
	}
	return s, nil
}

// rebalance recomputes the placement with a rotated seed and migrates
// threads to their new cores. Cache contents stay where they were, so a
// migrated thread pays natural re-warming misses (§VII's dynamic
// scheduling study).
func (s *System) rebalance() {
	s.rebalanceSeed = s.rebalanceSeed*0x9e3779b97f4a7c15 + 1
	if s.scratchThreads == nil {
		s.scratchThreads = make([]int, len(s.vms))
	}
	vmThreads := s.scratchThreads
	for v := range s.vms {
		vmThreads[v] = s.cfg.ThreadsOf(v)
	}
	asg, err := sched.AssignWithCapacity(s.cfg.Policy, s.cfg.Cores, s.cfg.GroupSize,
		s.cfg.CoreCapacity(), vmThreads, s.rebalanceSeed)
	if err != nil {
		return // placement unchanged; cannot happen with a validated config
	}
	// Snapshot the outgoing queues into reusable scratch; queues are at
	// most CoreCapacity long, so membership checks below are linear scans
	// rather than the per-call map[runnable]bool this replaced.
	if s.scratchOldQueues == nil {
		s.scratchOldQueues = make([][]runnable, s.cfg.Cores)
	}
	for c := range s.cores {
		s.scratchOldQueues[c] = append(s.scratchOldQueues[c][:0], s.cores[c].queue...)
		s.cores[c].queue = s.cores[c].queue[:0]
		s.cores[c].cur = 0
		s.cores[c].sliceEnd = s.now + s.cfg.TimesliceCycles
	}
	for v := range asg {
		for t, c := range asg[v] {
			run := runnable{vmID: v, thread: t}
			s.cores[c].queue = append(s.cores[c].queue, run)
			if !containsRunnable(s.scratchOldQueues[c], run) {
				s.Migrations++
			}
		}
	}
	s.assignment = asg
	// Re-seed events for cores the rebalance just populated.
	for c := range s.cores {
		s.cores[c].active = len(s.cores[c].queue) > 0
		if s.cores[c].active && !s.pending[c] {
			s.q.Push(s.now+1, c)
			s.pending[c] = true
		}
	}
	if s.cfg.QoSPartition {
		s.installPartitions()
	}
}

// containsRunnable reports whether queue holds run.
func containsRunnable(queue []runnable, run runnable) bool {
	for _, r := range queue {
		if r == run {
			return true
		}
	}
	return false
}

// shareOf returns VM v's relative QoS share (1 when unweighted).
func (s *System) shareOf(v int) int {
	if len(s.cfg.QoSShares) > 0 {
		return s.cfg.QoSShares[v]
	}
	return 1
}

// installPartitions way-partitions each LLC bank among the VMs whose
// threads are scheduled on the bank's core group, proportionally to
// their QoS shares.
func (s *System) installPartitions() {
	// present and quota are reused across calls (SetPartition copies);
	// this replaced a fresh map[int]bool and []int per bank per call.
	if s.scratchPresent == nil {
		s.scratchPresent = make([]bool, len(s.vms))
		s.scratchQuota = make([]int, len(s.vms))
	}
	present, quota := s.scratchPresent, s.scratchQuota
	for g, bank := range s.banks {
		nPresent := 0
		for v := range present {
			present[v] = false
		}
		for c := g * s.cfg.GroupSize; c < (g+1)*s.cfg.GroupSize; c++ {
			for _, run := range s.cores[c].queue {
				if !present[run.vmID] {
					present[run.vmID] = true
					nPresent++
				}
			}
		}
		if nPresent < 2 {
			continue // a single tenant needs no isolation
		}
		assoc := bank.Config().Assoc
		totalShares := 0
		for v, p := range present {
			if p {
				totalShares += s.shareOf(v)
			}
		}
		for v := range quota {
			quota[v] = assoc // absent VMs never insert here
		}
		for v, p := range present {
			if !p {
				continue
			}
			q := assoc * s.shareOf(v) / totalShares
			if q < 1 {
				q = 1
			}
			quota[v] = q
		}
		bank.SetPartition(quota)
	}
}

// currentVM returns the VM whose thread is running on core c right now.
func (s *System) currentVM(c int) int {
	cs := &s.cores[c]
	return cs.queue[cs.cur].vmID
}

// Assignment returns the placement chosen by the policy:
// assignment[vm][thread] = core.
func (s *System) Assignment() [][]int { return s.assignment }

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// VMs returns the virtual machines.
func (s *System) VMs() []*vm.VM { return s.vms }

// groupOf returns the LLC group of core c.
func (s *System) groupOf(c int) int { return c / s.cfg.GroupSize }

// bankNode returns the mesh node holding the LLC slice of group g that
// caches addr: the group's capacity is interleaved across its cores'
// nodes, so private caches (group size 1) sit at their own core and
// larger groups spread across their span.
func (s *System) bankNode(g int, addr sim.Addr) int {
	n := s.cfg.GroupSize
	return g*n + int(sim.BlockID(addr)%uint64(n))
}

// Run executes warm-up then measurement and returns the results.
func (s *System) Run() (Result, error) {
	if len(s.vms) == 0 {
		return Result{}, fmt.Errorf("core: empty system")
	}
	h := s.hooks
	lane := 0
	if h != nil {
		lane = h.RunStart(s.cfg.Label())
		defer h.RunEnd(lane)
	}
	if s.shard != nil {
		if h != nil {
			s.shard.attachTracer(h.Tr)
			h.SetShards(s.shard.stats.Shards, s.shard.stats.Workers)
		}
		s.shard.start(s)
		defer s.shard.stop()
	}
	if s.pdes != nil {
		if h != nil {
			s.pdes.attachTracer(h.Tr)
			h.SetPdes(s.pdes.stats.Workers, s.pdes.stats.Domains)
		}
		s.pdes.start()
		defer s.pdes.stop()
	} else {
		// Seed the event queue with every active core. (The pdes engine
		// seeds its per-domain calendars instead.)
		for c := range s.cores {
			if s.cores[c].active {
				s.q.Push(0, c)
				s.pending[c] = true
			}
		}
	}

	s.setupTS()

	// Warm-up phase.
	endPhase := s.phase(lane, "warmup")
	s.runUntil(s.cfg.WarmupRefs)
	if h != nil {
		// Flush the warmup tail, then re-base the deltas: ResetStats is
		// about to zero every counter the publish cadence diffs against.
		s.publishLive()
		s.lastPub = pubTotals{}
	}
	endPhase()
	s.phaseProf.WarmupSeconds = s.simSeconds
	measureStart := s.now
	for _, m := range s.vms {
		m.ResetStats()
	}
	for _, c := range s.l0 {
		c.ResetStats()
	}
	for _, c := range s.l1 {
		c.ResetStats()
	}
	for _, b := range s.banks {
		b.ResetStats()
	}
	s.net.ResetStats()
	s.mem.ResetStats()
	if s.rec != nil {
		// Re-base the time-series deltas against the zeroed counters.
		for v := range s.tsPrevRefs {
			s.tsPrevRefs[v], s.tsPrevMiss[v] = 0, 0
		}
	}

	// Measurement phase, with an optional mid-run snapshot. The sampled
	// mode replaces the single detailed stretch with windows and
	// fast-forward; its snapshot is always end-of-measurement (intra-
	// window positions are rejected by validation).
	measSimStart := s.simSeconds
	endPhase = s.phase(lane, "measure")
	var snap Snapshot
	if s.cfg.Sample.Enabled() {
		s.runSampled(lane)
		endSnap := s.phase(lane, "snapshot")
		snap = s.takeSnapshot()
		endSnap()
	} else {
		snapTaken := false
		if s.cfg.SnapshotRefs > 0 && s.cfg.SnapshotRefs < s.cfg.MeasureRefs {
			s.runUntil(s.cfg.WarmupRefs + s.cfg.SnapshotRefs)
			endSnap := s.phase(lane, "snapshot")
			snap = s.takeSnapshot()
			endSnap()
			snapTaken = true
		}
		s.runUntil(s.cfg.WarmupRefs + s.cfg.MeasureRefs)
		if !snapTaken {
			endSnap := s.phase(lane, "snapshot")
			snap = s.takeSnapshot()
			endSnap()
		}
	}
	endPhase()
	s.phaseProf.MeasureSeconds = s.simSeconds - measSimStart
	window := s.now - measureStart
	s.foldPhaseProfile()
	if h != nil {
		s.publishLive()
		h.SetSharing(snap.ResidentLines, snap.ReplicatedLines)
		for v := range s.vms {
			lines := 0
			for g := range snap.Occupancy {
				lines += snap.Occupancy[g][v]
			}
			h.SetOccupancy(v, lines)
		}
		h.SetPhaseProfile(&s.phaseProf)
	}

	res := Result{
		WallSeconds:     s.simSeconds,
		Config:          s.cfg,
		Cycles:          window,
		Shard:           s.shardStats(),
		Pdes:            s.pdesStats(),
		Sample:          s.sample,
		Phase:           s.phaseProf,
		Snapshot:        snap,
		NetAvgWait:      s.net.AvgWait(),
		NetAvgHops:      s.net.AvgHops(),
		MemAvgWait:      s.mem.AvgWait(),
		DirCacheHitRate: s.dirCache.HitRate(),
		Switches:        s.Switches,
		Migrations:      s.Migrations,
	}
	for i, m := range s.vms {
		spec := m.Gen.Spec()
		tx := float64(m.Stats.Refs) / float64(spec.RefsPerTx)
		cpt := 0.0
		if tx > 0 {
			cpt = float64(window) / tx
		}
		res.VMs = append(res.VMs, VMResult{
			VM: i, Class: m.Class(), Name: m.Name(),
			Stats:         m.Stats,
			Transactions:  tx,
			CyclesPerTx:   cpt,
			TouchedBlocks: m.TouchedBlocks(),
		})
	}
	if s.rec != nil {
		if err := s.rec.Flush(); err != nil {
			return res, fmt.Errorf("core: time-series flush: %w", err)
		}
		res.TimeseriesRun = s.rec.Run()
		res.TimeseriesRows = s.rec.Rows()
	}
	if err := s.dir.CheckInvariants(); err != nil {
		return res, fmt.Errorf("core: coherence invariant violated: %w", err)
	}
	return res, nil
}

// foldPhaseProfile folds the engines' phase timers into the run's
// profile at measurement end.
func (s *System) foldPhaseProfile() {
	p := &s.phaseProf
	if e := s.pdes; e != nil {
		p.PdesWindowSeconds = e.stats.WindowSeconds
		p.PdesReplaySeconds = e.stats.ApplySeconds
		p.PdesBarrierSeconds = e.stats.BarrierSeconds
		p.PdesStallSeconds = e.stats.StallSeconds
		p.PdesReplayParallelSeconds = e.stats.ReplayParallelSeconds
		p.PdesReplayMergeSeconds = e.stats.ReplayMergeSeconds
		p.PdesPipelineOverlapSec = e.stats.PipelineOverlapSeconds
		for i, d := range e.domains {
			p.Domains = append(p.Domains, obs.DomainPhase{
				Domain:      i,
				Cores:       len(d.cores),
				Cycles:      uint64(d.now),
				Ops:         d.opsTotal,
				BusySeconds: d.busySeconds,
			})
		}
		p.PdesApplyOpsByGroup = append(p.PdesApplyOpsByGroup, e.applyByGroup...)
	}
	if e := s.shard; e != nil {
		p.LaneBusySeconds = make([]float64, len(e.laneNanos))
		for w := range e.laneNanos {
			p.LaneBusySeconds[w] = float64(e.laneNanos[w].Load()) / 1e9
		}
	}
}

// runUntil advances the system until every active core has issued at
// least target references. With dynamic rebalancing enabled, threads
// migrate between cores, so progress is tracked globally instead: the
// loop runs until the machine has issued target references per
// originally-active core in aggregate.
func (s *System) runUntil(target uint64) {
	start := time.Now()
	s.runLoop(target)
	s.simSeconds += time.Since(start).Seconds()
}

// refSource abstracts where the event loop gets its two per-event
// functional inputs: the next workload reference and the think-time
// draw. liveSource computes them inline (the sequential engine);
// shardSource (shard.go) serves them from worker-prepared batches. The
// type parameter on runLoopSrc monomorphizes both, so the sequential
// loop compiles to exactly the code it was before the split.
type refSource interface {
	next(s *System, run runnable) workload.Access
	think(s *System, c, vmID int) uint64
}

// liveSource computes references and think times inline.
type liveSource struct{}

func (liveSource) next(s *System, run runnable) workload.Access {
	return s.vms[run.vmID].Gen.Next(run.thread)
}

func (liveSource) think(s *System, c, vmID int) uint64 {
	return s.cores[c].rng.Uint64n(s.thinkOf[vmID])
}

// runLoop is runUntil's event loop, separated so the wall-clock
// accounting wraps exactly the simulation work.
func (s *System) runLoop(target uint64) {
	if s.pdes != nil {
		s.pdes.runUntil(target)
		return
	}
	if s.shard != nil {
		runLoopSrc(s, target, shardSource{s.shard})
		return
	}
	runLoopSrc(s, target, liveSource{})
}

// runLoopSrc is the engine-agnostic event loop; src supplies the
// functional plane, everything timing-visible happens here in pop order.
func runLoopSrc[S refSource](s *System, target uint64, src S) {
	dynamic := s.cfg.RebalanceCycles > 0
	remaining := 0
	for c := range s.cores {
		if s.cores[c].active && s.cores[c].refs < target {
			remaining++
		}
	}
	globalTarget := target * uint64(s.activeCores)
	for s.q.Len() > 0 {
		if dynamic {
			if s.globalRefs >= globalTarget {
				break
			}
		} else if remaining == 0 {
			break
		}
		t, c := s.q.Pop()
		s.pending[c] = false
		s.now = t
		if dynamic && s.now >= s.nextRebalance {
			s.rebalance()
			s.nextRebalance = s.now + s.cfg.RebalanceCycles
		}
		if len(s.cores[c].queue) == 0 {
			continue // idled by a rebalance; its in-flight event is stale
		}
		cs := &s.cores[c]
		if cs.cur >= len(cs.queue) {
			cs.cur = 0
		}
		run := cs.queue[cs.cur]
		m := s.vms[run.vmID]

		acc := src.next(s, run)
		m.Touch(acc.Block)
		addr := m.AddrOf(acc.Block)
		missesBefore := m.Stats.LLCMisses
		privBefore := m.Stats.PrivMisses
		lat := s.access(c, run.vmID, addr, acc.Write)
		m.Stats.Refs++
		s.globalRefs++
		if m.Stats.LLCMisses != missesBefore {
			m.Stats.RegionMisses[s.regions[run.vmID].Of(acc.Block)]++
		}
		if s.hooks != nil {
			if m.Stats.PrivMisses != privBefore {
				s.hooks.ObserveMissLat(uint64(lat))
			}
			if s.globalRefs&livePublishMask == 0 {
				s.publishLive()
			}
		}

		cs.refs++
		if cs.refs == target {
			remaining--
		}
		next := s.now + lat + sim.Cycle(src.think(s, c, run.vmID))
		// Over-commit: rotate the runnable at timeslice expiry, paying
		// the hypervisor switch cost.
		if len(cs.queue) > 1 && next >= cs.sliceEnd {
			cs.cur = (cs.cur + 1) % len(cs.queue)
			next += s.switchCost()
			cs.sliceEnd = next + s.cfg.TimesliceCycles
			s.Switches++
		}
		s.q.Push(next, c)
		s.pending[c] = true
	}
}

// phase opens a named trace span on the run's lane and tags subsequent
// time-series rows with the phase; the returned closer ends both. A
// trace no-op without hooks. The unobserved path must return the
// static closer: a capturing closure here costs one heap allocation
// per phase, which the bench allocs_per_ref gate counts.
func (s *System) phase(lane int, name string) func() {
	prev := s.tsPhase
	s.tsPhase = obs.TSPhaseOf(name)
	if s.hooks == nil {
		if s.rec == nil {
			return noopPhaseEnd
		}
		return func() { s.tsPhase = prev }
	}
	end := s.hooks.Phase(lane, name)
	return func() {
		end()
		s.tsPhase = prev
	}
}

// noopPhaseEnd is the shared closer for unobserved phases; without a
// recorder nothing reads tsPhase, so there is no state to restore.
var noopPhaseEnd = func() {}

// setupTS attaches a per-run time-series recorder when the hooks carry
// a sidecar writer, sizing the per-VM and per-domain columns and
// allocating the delta-rebasing scratch once up front.
func (s *System) setupTS() {
	h := s.hooks
	if h == nil || h.TS == nil {
		return
	}
	nDom := 0
	if s.pdes != nil {
		nDom = len(s.pdes.domains)
	}
	s.rec = h.TS.NewRecorder(s.cfg.Label(), len(s.vms), nDom, 0)
	s.tsStart = time.Now()
	s.tsPrevRefs = make([]uint64, len(s.vms))
	s.tsPrevMiss = make([]uint64, len(s.vms))
	s.tsRefsPerTx = make([]float64, len(s.vms))
	for v, m := range s.vms {
		s.tsRefsPerTx[v] = float64(m.Gen.Spec().RefsPerTx)
	}
	if nDom > 0 {
		s.tsPrevDomCyc = make([]uint64, nDom)
		s.tsPrevDomBusy = make([]float64, nDom)
	}
}

// recordTS commits one time-series row from the current live counters:
// per-VM reference/miss/cycles-per-transaction deltas over the window
// since the previous row, the live memory queue depth, the sampling CI
// (when sampled) and the pdes replay and per-domain deltas (when
// parallel). Pure column writes — allocation-free.
func (s *System) recordTS() {
	r := s.rec
	relCI := -1.0
	if s.cfg.Sample.Enabled() && s.sample.Windows > 0 {
		relCI = s.sample.AchievedRelCI
	}
	replay := 0.0
	if e := s.pdes; e != nil {
		replay = e.stats.ApplySeconds - s.tsPrevReplay
		s.tsPrevReplay = e.stats.ApplySeconds
	}
	r.Begin(s.tsPhase, uint64(s.now), time.Since(s.tsStart).Seconds(),
		s.mem.QueueDepth(s.now), relCI, replay)
	span := float64(s.now - s.tsPrevCycle)
	for v, m := range s.vms {
		dRefs := m.Stats.Refs - s.tsPrevRefs[v]
		dMiss := m.Stats.LLCMisses - s.tsPrevMiss[v]
		s.tsPrevRefs[v] = m.Stats.Refs
		s.tsPrevMiss[v] = m.Stats.LLCMisses
		miss, cpt := 0.0, 0.0
		if dRefs > 0 {
			miss = float64(dMiss) / float64(dRefs)
			cpt = span * s.tsRefsPerTx[v] / float64(dRefs)
		}
		r.VM(v, dRefs, miss, cpt)
	}
	if e := s.pdes; e != nil {
		for i, d := range e.domains {
			cyc := uint64(d.now)
			r.Domain(i, cyc-s.tsPrevDomCyc[i], d.busySeconds-s.tsPrevDomBusy[i])
			s.tsPrevDomCyc[i] = cyc
			s.tsPrevDomBusy[i] = d.busySeconds
		}
	}
	r.Commit()
	s.tsPrevCycle = s.now
}

// publishLive folds the counters the hot loop accumulates in plain
// fields into the run's metric shard: per-VM counter deltas since the
// last publish, plus point-in-time gauges for each cache level, the
// directory, the memory controllers and the event queue. Called on the
// livePublishMask cadence and at phase boundaries; every write lands in
// a preallocated atomic slot, so the call is allocation-free.
func (s *System) publishLive() {
	h := s.hooks
	var t pubTotals
	for _, m := range s.vms {
		st := &m.Stats
		t.refs += st.Refs
		t.privMisses += st.PrivMisses
		t.llcMisses += st.LLCMisses
		t.c2cClean += st.C2CClean
		t.c2cDirty += st.C2CDirty
		t.memReads += st.MemReads
		t.invalidations += st.Invalidations
		t.upgrades += st.Upgrades
	}
	last := &s.lastPub
	h.AddCore(
		t.refs-last.refs,
		t.privMisses-last.privMisses,
		t.llcMisses-last.llcMisses,
		t.c2cClean-last.c2cClean,
		t.c2cDirty-last.c2cDirty,
		t.memReads-last.memReads,
		t.invalidations-last.invalidations,
		t.upgrades-last.upgrades,
	)
	s.lastPub = t

	var acc, miss, evict uint64
	for _, c := range s.l0 {
		a, _, mi, ev := c.Counters()
		acc, miss, evict = acc+a, miss+mi, evict+ev
	}
	h.SetLevel(0, acc, miss, evict)
	acc, miss, evict = 0, 0, 0
	for _, c := range s.l1 {
		a, _, mi, ev := c.Counters()
		acc, miss, evict = acc+a, miss+mi, evict+ev
	}
	h.SetLevel(1, acc, miss, evict)
	acc, miss, evict = 0, 0, 0
	for _, b := range s.banks {
		a, _, mi, ev := b.Counters()
		acc, miss, evict = acc+a, miss+mi, evict+ev
	}
	h.SetLevel(2, acc, miss, evict)

	h.SetDirectory(uint64(s.dir.Len()), s.dirCache.Hits, s.dirCache.Misses)
	h.SetMemory(s.mem.Reads, s.mem.Writebacks, uint64(s.mem.WaitSum), s.mem.QueueDepth(s.now))
	h.SetEventQueue(s.q.Len())
	if e := s.shard; e != nil {
		h.SetShardProgress(e.stats.Prefills, e.stats.SyncFills, e.stats.ThinkBatches, e.stats.Stalls)
	}
	if e := s.pdes; e != nil {
		h.SetPdesProgress(e.stats.Windows, e.stats.Ops, e.stats.Stalls)
	}
	if s.rec != nil {
		s.recordTS()
	}
}

// shardStats returns the sharded engine's run accounting (zero value
// for the sequential engine).
func (s *System) shardStats() ShardStats {
	if s.shard == nil {
		return ShardStats{}
	}
	return s.shard.stats
}

// pdesStats returns the parallel engine's run accounting (zero value
// for the sequential engine).
func (s *System) pdesStats() PdesStats {
	if s.pdes == nil {
		return PdesStats{}
	}
	return s.pdes.stats
}

// switchCost returns the configured context-switch penalty.
func (s *System) switchCost() sim.Cycle {
	if s.cfg.SwitchCycles > 0 {
		return s.cfg.SwitchCycles
	}
	return 500
}

// takeSnapshot captures the Figure 12/13 state.
func (s *System) takeSnapshot() Snapshot {
	resident, replicated := s.dir.ReplicationSnapshot()
	occ := make([][]int, len(s.banks))
	for g, b := range s.banks {
		occ[g] = b.OccupancyByVM(len(s.vms) - 1)
	}
	return Snapshot{
		At:              s.now,
		ResidentLines:   resident,
		ReplicatedLines: replicated,
		Occupancy:       occ,
		GroupLines:      s.banks[0].Lines(),
	}
}
