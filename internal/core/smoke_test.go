package core

import (
	"testing"

	"consim/internal/workload"
)

// TestSmokeIsolatedRun drives one scaled-down isolated workload through
// the full system and sanity-checks the result shape.
func TestSmokeIsolatedRun(t *testing.T) {
	specs := workload.Specs()
	cfg := DefaultConfig(specs[workload.TPCH])
	cfg.Scale = 16
	cfg.GroupSize = 1 // private LLC, the Table II configuration
	cfg.WarmupRefs = 50_000
	cfg.MeasureRefs = 150_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VMs) != 1 {
		t.Fatalf("want 1 VM result, got %d", len(res.VMs))
	}
	v := res.VMs[0]
	t.Logf("refs=%d privMiss=%d llcMiss=%d c2c=%.3f (clean=%d dirty=%d) missLat=%.1f cpt=%.0f touched=%d cycles=%d",
		v.Stats.Refs, v.Stats.PrivMisses, v.Stats.LLCMisses,
		v.Stats.C2CFraction(), v.Stats.C2CClean, v.Stats.C2CDirty,
		v.AvgMissLatency(), v.CyclesPerTx, v.TouchedBlocks, res.Cycles)
	if v.Stats.Refs == 0 || v.Stats.PrivMisses == 0 {
		t.Fatalf("no activity recorded: %+v", v.Stats)
	}
	if v.AvgMissLatency() <= float64(DefaultLLCLatency) {
		t.Errorf("implausible miss latency %.1f", v.AvgMissLatency())
	}
	if res.Cycles == 0 {
		t.Error("empty measurement window")
	}
}
