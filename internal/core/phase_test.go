package core

import (
	"math"
	"path/filepath"
	"testing"

	"consim/internal/obs"
	"consim/internal/sched"
	"consim/internal/workload"
)

// runWithTS runs cfg with a live time-series recorder attached and
// returns the result plus the decoded sidecar rows.
func runWithTS(t *testing.T, cfg Config) (Result, []obs.TSRow) {
	t.Helper()
	o := obs.NewObserver(nil, nil, nil)
	tsw, err := obs.OpenTimeSeries(filepath.Join(t.TempDir(), "ts.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	o.TS = tsw
	cfg.Obs = o.Hooks()
	res := mustRun(t, cfg)
	if err := tsw.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := obs.ReadTimeSeries(tsw.Path())
	if err != nil {
		t.Fatal(err)
	}
	return res, rows
}

// TestPhaseProfileSequential checks the engine-agnostic warmup/measure
// split is recorded for a plain detailed run.
func TestPhaseProfileSequential(t *testing.T) {
	res := mustRun(t, fastCfg(4, sched.Affinity, workload.TPCH))
	p := res.Phase
	if p.Zero() {
		t.Fatal("phase profile empty for a sequential run")
	}
	if p.Engine() != "" {
		t.Fatalf("engine = %q, want sequential", p.Engine())
	}
	if p.WarmupSeconds <= 0 || p.MeasureSeconds <= 0 {
		t.Fatalf("warmup/measure split = %+v", p)
	}
	tracked := p.TrackedSeconds()
	if tracked > res.WallSeconds*1.0001 {
		t.Fatalf("tracked %.4fs exceeds wall %.4fs", tracked, res.WallSeconds)
	}
	if tracked < res.WallSeconds*0.95 {
		t.Fatalf("tracked %.4fs covers <95%% of wall %.4fs", tracked, res.WallSeconds)
	}
}

// TestPdesPhaseProfileCoverage is the acceptance check for the pdes
// decomposition: in-window + replay + barrier must account for the
// run's measured wall time (the report's untracked residual is loop
// bookkeeping only), the per-domain breakdown must cover every domain,
// and the -timeseries sidecar must carry the same story per window.
func TestPdesPhaseProfileCoverage(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.Pdes = 4
	res, rows := runWithTS(t, cfg)

	p := res.Phase
	if p.Engine() != "pdes" {
		t.Fatalf("engine = %q, want pdes", p.Engine())
	}
	if p.PdesWindowSeconds <= 0 || p.PdesReplaySeconds <= 0 {
		t.Fatalf("pdes terms missing: %+v", p)
	}
	if p.PdesReplaySeconds != res.Pdes.ApplySeconds {
		t.Fatalf("replay %.6fs != engine apply %.6fs", p.PdesReplaySeconds, res.Pdes.ApplySeconds)
	}
	tracked := p.TrackedSeconds()
	if dev := math.Abs(tracked-res.WallSeconds) / res.WallSeconds; dev > 0.02 {
		t.Fatalf("decomposition off by %.1f%%: window %.4f + replay %.4f + barrier %.4f = %.4f vs wall %.4f",
			100*dev, p.PdesWindowSeconds, p.PdesReplaySeconds, p.PdesBarrierSeconds, tracked, res.WallSeconds)
	}
	t.Logf("coverage %.2f%% of %.3fs wall (window %.3f, replay %.3f, barrier %.3f, stall %.3f)",
		100*tracked/res.WallSeconds, res.WallSeconds,
		p.PdesWindowSeconds, p.PdesReplaySeconds, p.PdesBarrierSeconds, p.PdesStallSeconds)

	if len(p.Domains) != res.Pdes.Domains {
		t.Fatalf("%d domain entries, engine formed %d", len(p.Domains), res.Pdes.Domains)
	}
	var ops uint64
	for _, d := range p.Domains {
		if d.Cores <= 0 || d.Cycles == 0 {
			t.Fatalf("empty domain entry: %+v", d)
		}
		ops += d.Ops
	}
	if ops != res.Pdes.Ops {
		t.Fatalf("domain ops sum %d != engine ops %d", ops, res.Pdes.Ops)
	}
	if len(p.PdesApplyOpsByGroup) == 0 {
		t.Fatalf("no per-group apply breakdown")
	}
	var groupOps uint64
	for _, n := range p.PdesApplyOpsByGroup {
		groupOps += n
	}
	if groupOps != res.Pdes.Ops {
		t.Fatalf("per-group apply ops sum %d != engine ops %d", groupOps, res.Pdes.Ops)
	}
	if af := p.ApplyFraction(res.WallSeconds); af <= 0 || af >= 1 {
		t.Fatalf("apply fraction = %v", af)
	}

	// Sidecar: rows recorded under this run's id, domain columns sized
	// to the engine, per-window replay deltas summing to the total.
	if res.TimeseriesRun == 0 || res.TimeseriesRows == 0 {
		t.Fatalf("result missing sidecar reference: run=%d rows=%d", res.TimeseriesRun, res.TimeseriesRows)
	}
	mine := 0
	var replaySum float64
	for _, row := range rows {
		if row.Run != res.TimeseriesRun {
			continue
		}
		mine++
		replaySum += row.Replay
		if len(row.DomCycles) != res.Pdes.Domains || len(row.Refs) != len(res.VMs) {
			t.Fatalf("row shape = %+v", row)
		}
	}
	if mine != res.TimeseriesRows {
		t.Fatalf("sidecar holds %d rows for run %d, result says %d", mine, res.TimeseriesRun, res.TimeseriesRows)
	}
	if dev := math.Abs(replaySum-res.Pdes.ApplySeconds) / res.Pdes.ApplySeconds; dev > 0.02 {
		t.Fatalf("per-row replay sum %.4fs vs engine apply %.4fs (off %.1f%%)",
			replaySum, res.Pdes.ApplySeconds, 100*dev)
	}
}

// TestSamplePhaseProfile checks the sampled engine's detailed vs
// fast-forward split and the per-window CI trajectory in the sidecar.
func TestSamplePhaseProfile(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCH)
	cfg.MeasureRefs = 120_000
	cfg.Sample = SampleConfig{WindowRefs: 4_000, FFRatio: 2, CITarget: 0.5, MinWindows: 3}
	res, rows := runWithTS(t, cfg)

	p := res.Phase
	if p.Engine() != "sample" {
		t.Fatalf("engine = %q, want sample", p.Engine())
	}
	if p.SampleDetailedSeconds <= 0 || p.SampleFFSeconds <= 0 {
		t.Fatalf("sample terms missing: %+v", p)
	}
	sawCI := false
	for _, row := range rows {
		if row.Run == res.TimeseriesRun && row.RelCI > 0 {
			sawCI = true
		}
	}
	if !sawCI {
		t.Fatal("no CI trajectory in the sampled run's rows")
	}
}

// TestPhaseTelemetryPreservesGoldens pins the zero-perturbation
// guarantee: attaching the recorder changes no simulated result — the
// digest with -timeseries on is byte-identical to the plain run's.
func TestPhaseTelemetryPreservesGoldens(t *testing.T) {
	cfg := fastCfg(4, sched.RoundRobin, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.Pdes = 2
	plain := mustRun(t, cfg)
	recorded, _ := runWithTS(t, cfg)
	if got, want := pdesDigest(t, recorded), pdesDigest(t, plain); got != want {
		t.Fatalf("telemetry perturbed the simulation:\n got %s\nwant %s", got, want)
	}
}

// TestPdesShardedPhaseProfile extends the coverage contract to the
// bank-sharded, pipelined replay: the new parallel/merge/overlap terms
// must decompose the total replay time, the window term must have the
// overlapped merge time subtracted (so window + replay + barrier still
// accounts for the wall without double counting), and the serial-residue
// apply fraction must come in under the all-serial replay share.
func TestPdesShardedPhaseProfile(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.Pdes = 4
	cfg.PdesReplayWorkers = 4
	cfg.PdesPipeline = true
	res, _ := runWithTS(t, cfg)

	p := res.Phase
	if p.PdesReplayParallelSeconds <= 0 || p.PdesReplayMergeSeconds <= 0 {
		t.Fatalf("sharded replay terms missing: %+v", p)
	}
	if p.PdesPipelineOverlapSec <= 0 {
		t.Fatalf("pipeline overlap missing: %+v", p)
	}
	if p.PdesReplayParallelSeconds+p.PdesReplayMergeSeconds > p.PdesReplaySeconds {
		t.Fatalf("parallel %.4f + merge %.4f exceed total replay %.4f",
			p.PdesReplayParallelSeconds, p.PdesReplayMergeSeconds, p.PdesReplaySeconds)
	}
	if p.PdesPipelineOverlapSec > p.PdesReplayMergeSeconds*1.0001 {
		t.Fatalf("overlap %.4f exceeds merge %.4f", p.PdesPipelineOverlapSec, p.PdesReplayMergeSeconds)
	}
	tracked := p.TrackedSeconds()
	if dev := math.Abs(tracked-res.WallSeconds) / res.WallSeconds; dev > 0.02 {
		t.Fatalf("sharded decomposition off by %.1f%%: tracked %.4f vs wall %.4f", 100*dev, tracked, res.WallSeconds)
	}
	serialShare := p.ApplyFraction(res.WallSeconds)
	totalShare := p.PdesReplaySeconds / res.WallSeconds
	if serialShare <= 0 || serialShare >= totalShare {
		t.Fatalf("serial apply fraction %.4f not inside (0, total replay share %.4f)", serialShare, totalShare)
	}
	if prf := p.ParallelReplayFraction(); prf <= 0 || prf >= 1 {
		t.Fatalf("parallel replay fraction = %v", prf)
	}
	t.Logf("replay %.3fs = parallel %.3f + merge %.3f (+ serial residue), overlap %.3f; apply fraction %.3f vs all-serial %.3f",
		p.PdesReplaySeconds, p.PdesReplayParallelSeconds, p.PdesReplayMergeSeconds,
		p.PdesPipelineOverlapSec, serialShare, totalShare)
}
