package core

import (
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"

	"consim/internal/obs"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// sampledCfg is the standard small sampled configuration the tests run:
// the 4-VM consolidated machine at test scale with a window geometry
// small enough to exercise several window/fast-forward alternations.
func sampledCfg(shards int) Config {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.WarmupRefs = 10_000
	cfg.MeasureRefs = 100_000
	cfg.Shards = shards
	cfg.Sample = SampleConfig{WindowRefs: 2_000, FFRatio: 3, CITarget: 0.05, MinWindows: 3, MaxRefs: 12_000}
	return cfg
}

// resultDigest serializes everything simulation-visible about a result
// (excluding host-side provenance like wall time and shard activity).
func resultDigest(t *testing.T, res Result) string {
	t.Helper()
	d := struct {
		Cycles                                              sim.Cycle
		VMs                                                 []VMResult
		Sample                                              SampleStats
		NetAvgWait, NetAvgHops, MemAvgWait, DirCacheHitRate float64
		Switches                                            uint64
	}{res.Cycles, res.VMs, res.Sample, res.NetAvgWait, res.NetAvgHops,
		res.MemAvgWait, res.DirCacheHitRate, res.Switches}
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestSampledDeterministicAcrossShards pins the sampling engine's
// determinism contract: for a fixed (seed, window-config) pair the
// sampled result — window count, skip totals, achieved CI and every
// metric — is identical at every shard count, exactly like detailed
// runs. Fast-forward consumes references through the same refSource as
// the detailed loop and draws no think times, so the worker protocol
// stays aligned.
func TestSampledDeterministicAcrossShards(t *testing.T) {
	var want string
	for _, shards := range []int{1, 2, 4} {
		res := mustRun(t, sampledCfg(shards))
		if res.Sample.Windows < 3 || res.Sample.SkippedRefs == 0 {
			t.Fatalf("shards=%d: sampling did not engage: %+v", shards, res.Sample)
		}
		got := resultDigest(t, res)
		if want == "" {
			want = got
			t.Logf("shards=1 sample: %+v", res.Sample)
			continue
		}
		if got != want {
			t.Errorf("shards=%d sampled result diverged from shards=1", shards)
		}
	}
}

// TestSampledRunRepeatable pins run-to-run determinism: the same sampled
// configuration produces byte-identical results on every execution.
func TestSampledRunRepeatable(t *testing.T) {
	a := resultDigest(t, mustRun(t, sampledCfg(1)))
	b := resultDigest(t, mustRun(t, sampledCfg(1)))
	if a != b {
		t.Fatal("sampled run is not repeatable for a fixed seed and window config")
	}
}

// TestSampleConfigDefaults checks the knob defaulting and the zero
// value's pass-through (a disabled config must stay exactly zero so
// detailed runs are bit-identical to builds without the engine).
func TestSampleConfigDefaults(t *testing.T) {
	if got := (SampleConfig{}).withDefaults(1000); got != (SampleConfig{}) {
		t.Errorf("disabled config gained defaults: %+v", got)
	}
	got := SampleConfig{WindowRefs: 500}.withDefaults(10_000)
	want := SampleConfig{WindowRefs: 500, FFRatio: 4, CITarget: 0.05, MinWindows: 4, MaxRefs: 10_000}
	if got != want {
		t.Errorf("defaults = %+v, want %+v", got, want)
	}
	if got := (SampleConfig{WindowRefs: 500, MaxRefs: 99_999}).withDefaults(10_000); got.MaxRefs != 10_000 {
		t.Errorf("MaxRefs not clamped to measure budget: %d", got.MaxRefs)
	}
}

// TestSampleValidation checks that configurations the engine cannot run
// soundly are rejected up front.
func TestSampleValidation(t *testing.T) {
	base := sampledCfg(1)
	for name, mutate := range map[string]func(*Config){
		"rebalance": func(c *Config) { c.RebalanceCycles = 10_000 },
		"snapshot":  func(c *Config) { c.SnapshotRefs = 1_000 },
		"overcommit": func(c *Config) {
			specs := workload.Specs()
			for i := 0; i < 5; i++ {
				c.Workloads = append(c.Workloads, specs[workload.TPCH])
			}
		},
	} {
		cfg := base
		cfg.Workloads = append([]workload.Spec(nil), base.Workloads...)
		mutate(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("%s: sampled config accepted, want validation error", name)
		}
	}
}

// timingSnapshot captures every piece of state the fast-forward phase
// must not move: simulated time, the event queue, contention state
// (banks, directories, memory controllers, mesh), hypervisor activity,
// per-core reference counters and the per-VM measurement counters.
// Directory-cache hit/miss totals are deliberately absent — fast-forward
// keeps the directory caches functionally warm, so those whole-run
// cumulative counters advance by design (exactly as they do in warm-up).
type timingSnapshot struct {
	Now        sim.Cycle
	QLen       int
	BankBusy   []sim.Cycle
	DirBusy    []sim.Cycle
	MemReads   uint64
	MemWBs     uint64
	MemWait    sim.Cycle
	NetWait    float64
	NetHops    float64
	Switches   uint64
	GlobalRefs uint64
	CoreRefs   []uint64
	VMStats    []string
}

func snapshotTiming(t *testing.T, s *System) timingSnapshot {
	t.Helper()
	snap := timingSnapshot{
		Now:        s.now,
		QLen:       s.q.Len(),
		BankBusy:   append([]sim.Cycle(nil), s.bankBusy...),
		DirBusy:    append([]sim.Cycle(nil), s.dirBusy...),
		MemReads:   s.mem.Reads,
		MemWBs:     s.mem.Writebacks,
		MemWait:    s.mem.WaitSum,
		NetWait:    s.net.AvgWait(),
		NetHops:    s.net.AvgHops(),
		Switches:   s.Switches,
		GlobalRefs: s.globalRefs,
	}
	for c := range s.cores {
		snap.CoreRefs = append(snap.CoreRefs, s.cores[c].refs)
	}
	for _, m := range s.vms {
		buf, err := json.Marshal(m.Stats)
		if err != nil {
			t.Fatal(err)
		}
		snap.VMStats = append(snap.VMStats, string(buf))
	}
	return snap
}

// newWarmSystem builds a system, seeds the event queue the way Run()
// does, and executes the warm-up phase.
func newWarmSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range sys.cores {
		if sys.cores[c].active {
			sys.q.Push(0, c)
			sys.pending[c] = true
		}
	}
	if sys.shard != nil {
		sys.shard.start(sys)
		t.Cleanup(sys.shard.stop)
	}
	sys.runUntil(cfg.WarmupRefs)
	return sys
}

// TestFastForwardNoTimingLeak drives fast-forward directly between two
// timing snapshots and requires byte-for-byte equality: functional
// warming may touch caches and directories, but nothing visible to the
// timing model — simulated time, queued events, contention occupancy,
// memory-controller and mesh counters, scheduler state, per-core
// reference budgets, measurement counters — may move.
func TestFastForwardNoTimingLeak(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := sampledCfg(shards)
		sys := newWarmSystem(t, cfg)

		before := snapshotTiming(t, sys)
		sys.fastForward(10_000)
		after := snapshotTiming(t, sys)
		after.Now = before.Now // compared explicitly below

		if sys.now != before.Now {
			t.Errorf("shards=%d: fast-forward advanced simulated time %d -> %d", shards, before.Now, sys.now)
		}
		bb, _ := json.Marshal(before)
		ab, _ := json.Marshal(after)
		if string(bb) != string(ab) {
			t.Errorf("shards=%d: fast-forward leaked into timing state:\nbefore %s\nafter  %s", shards, bb, ab)
		}
		if sys.sample.SkippedRefs != 10_000 {
			t.Errorf("shards=%d: SkippedRefs = %d, want 10000", shards, sys.sample.SkippedRefs)
		}
	}
}

// TestSampledSteadyStateAllocBudget holds both sampled phases to the
// same steady-state allocation budget as the detailed engine: once warm,
// a window + fast-forward round trip must not allocate per reference.
func TestSampledSteadyStateAllocBudget(t *testing.T) {
	cfg := sampledCfg(1)
	cfg.Obs = obs.NewObserver(nil, nil, nil).Hooks()
	sys := newWarmSystem(t, cfg)

	// One untimed round trip lets lazily-grown structures (directory
	// tables, event-queue capacity) reach their working size.
	sys.fastForward(6_000)
	sys.runUntil(cfg.WarmupRefs + 2_000)

	const ffRefs, winRefs = 20_000, 4_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.fastForward(ffRefs)
	sys.runUntil(cfg.WarmupRefs + 2_000 + winRefs)
	runtime.ReadMemStats(&after)

	measuredRefs := uint64((ffRefs + winRefs) * len(sys.cores))
	allocs := after.Mallocs - before.Mallocs
	perRef := float64(allocs) / float64(measuredRefs)
	t.Logf("sampled steady state: %d allocs over %d refs (%.6f allocs/ref, %d bytes)",
		allocs, measuredRefs, perRef, after.TotalAlloc-before.TotalAlloc)
	if perRef > 0.001 {
		t.Fatalf("sampled path allocates: %.6f allocs/ref (budget 0.001)", perRef)
	}
}

// TestWarmingAllocBudgetWithTelemetry holds the specialized warming
// walk to the steady-state budget with the full observability stack
// attached — live metrics shard AND per-window time-series recorder —
// since those are exactly what a production `-sample -timeseries` run
// carries. The recorder's hot path writes preallocated columns only, so
// fast-forward must stay allocation-free per reference even while every
// window commits a telemetry row.
func TestWarmingAllocBudgetWithTelemetry(t *testing.T) {
	ts, err := obs.OpenTimeSeries(filepath.Join(t.TempDir(), "ts.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ob := obs.NewObserver(nil, nil, nil)
	ob.TS = ts

	cfg := sampledCfg(1)
	cfg.Obs = ob.Hooks()
	sys := newWarmSystem(t, cfg)

	// One untimed round trip grows lazy structures (directory tables,
	// the warm walk's per-core contexts, recorder columns) to working
	// size.
	sys.fastForward(6_000)
	sys.runUntil(cfg.WarmupRefs + 2_000)

	const ffRefs, winRefs = 40_000, 4_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.fastForward(ffRefs)
	sys.runUntil(cfg.WarmupRefs + 2_000 + winRefs)
	runtime.ReadMemStats(&after)

	measuredRefs := uint64((ffRefs + winRefs) * len(sys.cores))
	allocs := after.Mallocs - before.Mallocs
	perRef := float64(allocs) / float64(measuredRefs)
	t.Logf("warming with telemetry: %d allocs over %d refs (%.6f allocs/ref, %d bytes)",
		allocs, measuredRefs, perRef, after.TotalAlloc-before.TotalAlloc)
	if perRef > 0.001 {
		t.Fatalf("warming path allocates with telemetry attached: %.6f allocs/ref (budget 0.001)", perRef)
	}
}

// FuzzFastForwardBoundary fuzzes the window/fast-forward boundary: for
// arbitrary window geometries the engine must terminate with a coherent
// stop reason, never leak fast-forwarded references into measurement
// counters, and remain deterministic (two runs of the same fuzzed
// geometry agree byte for byte).
func FuzzFastForwardBoundary(f *testing.F) {
	f.Add(uint16(2000), uint8(3), uint16(8000))
	f.Add(uint16(1), uint8(1), uint16(1))
	f.Add(uint16(5000), uint8(0), uint16(60000))
	f.Add(uint16(100), uint8(9), uint16(300))
	f.Fuzz(func(t *testing.T, window uint16, ratio uint8, maxRefs uint16) {
		if window == 0 {
			t.Skip()
		}
		cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
		cfg.WarmupRefs = 3_000
		cfg.MeasureRefs = 30_000
		cfg.Sample = SampleConfig{
			WindowRefs: uint64(window),
			// Bound the ratio so one fuzz iteration stays sub-second; the
			// boundary logic is identical at every ratio.
			FFRatio:    int(ratio%10) + 1,
			CITarget:   0.02, // strict: most fuzz runs stop on budget
			MinWindows: 3,
			MaxRefs:    uint64(maxRefs),
		}
		var sys *System
		run := func() Result {
			var err error
			sys, err = NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res := run()
		sa := res.Sample
		if sa.Windows < 1 {
			t.Fatalf("no windows ran: %+v", sa)
		}
		if sa.StopReason != StopConverged && sa.StopReason != StopBudget {
			t.Fatalf("bad stop reason: %+v", sa)
		}
		if sa.DetailedRefs != uint64(sa.Windows)*cfg.Sample.WindowRefs {
			t.Fatalf("detailed refs %d != windows %d x window %d", sa.DetailedRefs, sa.Windows, cfg.Sample.WindowRefs)
		}
		// Per-core measurement counters must cover exactly warm-up plus the
		// detailed windows — fast-forwarded references never count.
		effMax := cfg.Sample.withDefaults(cfg.MeasureRefs).MaxRefs
		if sa.StopReason == StopBudget && sa.DetailedRefs < effMax {
			t.Fatalf("budget stop below budget: %+v (max %d)", sa, effMax)
		}
		// Every active core must have issued at least warm-up plus the
		// detailed windows through the timing loop — fast-forwarded
		// references never advance the per-core budget counters, so any
		// shortfall means a window leaked into the functional plane.
		for c := range sys.cores {
			if !sys.cores[c].active {
				continue
			}
			if want := cfg.WarmupRefs + sa.DetailedRefs; sys.cores[c].refs < want {
				t.Fatalf("core %d issued %d detailed refs, want >= %d (%+v)",
					c, sys.cores[c].refs, want, sa)
			}
		}
		digest1 := resultDigestF(t, res)
		digest2 := resultDigestF(t, run())
		if digest1 != digest2 {
			t.Fatal("fuzzed sampled run is not deterministic")
		}
	})
}

// resultDigestF is resultDigest for fuzz targets (testing.TB).
func resultDigestF(t testing.TB, res Result) string {
	t.Helper()
	buf, err := json.Marshal(struct {
		Cycles sim.Cycle
		VMs    []VMResult
		Sample SampleStats
	}{res.Cycles, res.VMs, res.Sample})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}
