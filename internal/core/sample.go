// Interval-sampled simulation.
//
// Detailed simulation of the full measurement budget is the figure
// suite's dominant cost, yet the per-VM metrics it reports are means
// over a (mostly stationary) reference stream: a fraction of the stream
// measured in detail estimates them to within a quantifiable confidence
// interval. The sampled mode (cfg.Sample) therefore alternates:
//
//   - detailed windows: the unmodified event loop — every reference pays
//     mesh, bank, directory and memory-controller contention, advances
//     simulated time and accumulates measurement counters;
//   - functional fast-forward: references stream through the same access
//     walk under ffTiming (access.go), so caches, the directory and the
//     directory caches keep evolving — but no contention state, no
//     event-queue cycles and no measurement counters move, and simulated
//     time stands still.
//
// After each window the engine folds that window's per-VM miss rate and
// cycles-per-transaction into incremental Welford accumulators
// (internal/stats) and stops early once every metric's relative 95% CI
// half-width is below cfg.Sample.CITarget — the live convergence
// detection of Pac-Sim (PAPERS.md), driving the same counters the obs
// registry publishes. Because fast-forward consumes references from the
// same refSource abstraction as the detailed loop and draws no think
// times in either engine, sampled runs are deterministic for a fixed
// (seed, window-config) pair at every -shards count.
//
// Result.Cycles remains the sum of detailed window spans (fast-forward
// takes zero simulated time), so every downstream metric formula —
// cycles-per-transaction, miss rates over detailed refs, latency means —
// is unchanged; only the estimator's variance is new, and SampleStats
// records exactly how much was skipped and how converged the estimate
// was.
package core

import (
	"fmt"
	"time"

	"consim/internal/stats"
	"consim/internal/vm"
)

// SampleConfig enables and parameterizes interval sampling. The zero
// value (WindowRefs == 0) disables it: runs are detailed end to end and
// bit-identical to a build without the sampling engine.
type SampleConfig struct {
	// WindowRefs is the detailed-window length in per-core references;
	// non-zero enables sampling.
	WindowRefs uint64 `json:"window_refs,omitempty"`
	// FFRatio is the functional fast-forward length between windows, as
	// a multiple of WindowRefs (default 4: 20% of the stream detailed).
	FFRatio int `json:"ff_ratio,omitempty"`
	// CITarget is the convergence goal: the run stops once every per-VM
	// metric's relative 95% CI half-width is at or below it (default
	// 0.05).
	CITarget float64 `json:"ci_target,omitempty"`
	// MinWindows is the smallest window count convergence may stop at
	// (default 4; floor 2 — a single window has no variance estimate).
	MinWindows int `json:"min_windows,omitempty"`
	// MaxRefs bounds detailed measurement references per core; reaching
	// it stops the run whether or not the CIs converged (default
	// MeasureRefs).
	MaxRefs uint64 `json:"max_refs,omitempty"`
}

// Enabled reports whether sampling is on.
func (sc SampleConfig) Enabled() bool { return sc.WindowRefs > 0 }

// withDefaults fills unset knobs (NewSystem applies this before the
// config is stored, so results and manifests record effective values).
func (sc SampleConfig) withDefaults(measureRefs uint64) SampleConfig {
	if !sc.Enabled() {
		return SampleConfig{}
	}
	if sc.FFRatio <= 0 {
		sc.FFRatio = 4
	}
	if sc.CITarget <= 0 {
		sc.CITarget = 0.05
	}
	if sc.MinWindows < 2 {
		sc.MinWindows = 4
	}
	if sc.MaxRefs == 0 || sc.MaxRefs > measureRefs {
		sc.MaxRefs = measureRefs
	}
	return sc
}

// Sampling stop reasons.
const (
	StopConverged = "converged"
	StopBudget    = "budget"
)

// SampleStats reports what the sampling engine did during a run; all
// fields are zero for a detailed (unsampled) run.
type SampleStats struct {
	// Windows is the number of detailed windows simulated.
	Windows int `json:"windows,omitempty"`
	// DetailedRefs and SkippedRefs count per-core references measured in
	// detail and fast-forwarded between windows, in the same units as
	// Config.MeasureRefs (multiply by active cores for machine totals).
	DetailedRefs uint64 `json:"detailed_refs,omitempty"`
	SkippedRefs  uint64 `json:"skipped_refs,omitempty"`
	// AchievedRelCI is the worst (largest) per-VM relative 95% CI
	// half-width over both tracked metrics at stop.
	AchievedRelCI float64 `json:"achieved_rel_ci,omitempty"`
	// StopReason is StopConverged or StopBudget.
	StopReason string `json:"stop_reason,omitempty"`
}

// validateSample rejects configurations the sampling engine cannot run
// soundly: fast-forward holds simulated time still, so features keyed to
// cycle counts (timeslice rotation, dynamic rebalancing) or to an
// intra-window snapshot position would silently measure something else.
func (c Config) validateSample() error {
	if !c.Sample.Enabled() {
		return nil
	}
	if c.RebalanceCycles > 0 {
		return fmt.Errorf("core: sampling is incompatible with dynamic rebalancing (RebalanceCycles)")
	}
	if c.TotalThreads() > c.Cores {
		return fmt.Errorf("core: sampling is incompatible with over-committed scheduling")
	}
	if c.SnapshotRefs > 0 {
		return fmt.Errorf("core: sampling is incompatible with a mid-run snapshot (SnapshotRefs)")
	}
	if c.Sample.FFRatio < 0 {
		return fmt.Errorf("core: negative fast-forward ratio %d", c.Sample.FFRatio)
	}
	if c.Sample.CITarget < 0 {
		return fmt.Errorf("core: negative CI target %g", c.Sample.CITarget)
	}
	return nil
}

// runSampled is the sampled measurement phase: detailed windows with
// functional fast-forward between them, stopping on CI convergence or
// the detailed-reference budget. The caller has already run warm-up and
// reset measurement counters.
func (s *System) runSampled(lane int) {
	sc := s.cfg.Sample
	nVM := len(s.vms)
	// Per-VM, per-metric incremental accumulators and last-window counter
	// bases. One allocation set per run, nothing per reference.
	missW := make([]stats.Welford, nVM)
	cptW := make([]stats.Welford, nVM)
	prevRefs := make([]uint64, nVM)
	prevLLC := make([]uint64, nVM)
	refsPerTx := make([]float64, nVM)
	for v, m := range s.vms {
		refsPerTx[v] = float64(m.Gen.Spec().RefsPerTx)
	}

	prevCoreRefs := make([]uint64, len(s.cores))
	target := s.cfg.WarmupRefs
	for {
		windowStart := s.now
		target += sc.WindowRefs
		simBefore := s.simSeconds
		endW := s.phase(lane, "window")
		s.runUntil(target)
		endW()
		s.phaseProf.SampleDetailedSeconds += s.simSeconds - simBefore
		s.sample.Windows++
		s.sample.DetailedRefs += sc.WindowRefs
		span := float64(s.now - windowStart)

		// Record each core's detailed-window reference rate so the next
		// fast-forward preserves the VMs' relative progress (the shared
		// window span makes refs-per-window proportional to refs-per-cycle).
		if s.ffRate == nil {
			s.ffRate = make([]uint64, len(s.cores))
		}
		for c := range s.cores {
			s.ffRate[c] = s.cores[c].refs - prevCoreRefs[c]
			prevCoreRefs[c] = s.cores[c].refs
		}

		// Fold this window's per-VM metrics into the accumulators.
		for v, m := range s.vms {
			dRefs := m.Stats.Refs - prevRefs[v]
			dLLC := m.Stats.LLCMisses - prevLLC[v]
			prevRefs[v] = m.Stats.Refs
			prevLLC[v] = m.Stats.LLCMisses
			if dRefs == 0 {
				continue // VM idle this window (no scheduled threads)
			}
			missW[v].Add(float64(dLLC) / float64(dRefs))
			cptW[v].Add(span * refsPerTx[v] / float64(dRefs))
		}

		// Convergence: every tracked metric's relative CI at or below
		// target once enough windows accumulated.
		worst := 0.0
		for v := range s.vms {
			if ci := missW[v].RelCI95(); ci > worst {
				worst = ci
			}
			if ci := cptW[v].RelCI95(); ci > worst {
				worst = ci
			}
		}
		s.sample.AchievedRelCI = worst
		if s.hooks != nil {
			s.publishLive()
			s.hooks.SetSampleProgress(uint64(s.sample.Windows), s.sample.DetailedRefs,
				s.sample.SkippedRefs, worst)
		}
		if s.sample.Windows >= sc.MinWindows && worst <= sc.CITarget {
			s.sample.StopReason = StopConverged
			return
		}
		if s.sample.DetailedRefs >= sc.MaxRefs {
			s.sample.StopReason = StopBudget
			return
		}

		endFF := s.phase(lane, "fastforward")
		s.fastForward(sc.WindowRefs * uint64(sc.FFRatio))
		endFF()
	}
}

// fastForward streams perCore references per active core through the
// functional plane: the same refSource supplies them (keeping the
// sharded engine's prefill protocol live and bit-identical), the access
// walk runs under ffTiming, and nothing timing-visible moves — no event
// queue, no simulated time, no think-time draws, no measurement
// counters. References rotate round-robin across cores; with sampling
// validated against over-commitment each core carries exactly one
// runnable, so the rotation covers every thread exactly like the
// detailed loop's reference budget does.
func (s *System) fastForward(perCore uint64) {
	start := time.Now()
	if s.ffStats == nil {
		s.ffStats = make([]vm.Stats, len(s.vms))
	}
	bud := s.ffBudgets(perCore)
	if s.ffOracle {
		// The pre-specialization walk, kept compiled as the warm walk's
		// bit-identity oracle (warm_test.go) and benchmark baseline.
		if s.shard != nil {
			ffLoop(s, bud, shardSource{s.shard})
		} else {
			ffLoop(s, bud, liveSource{})
		}
	} else {
		s.warmForward(bud)
	}
	s.sample.SkippedRefs += perCore
	elapsed := time.Since(start).Seconds()
	s.simSeconds += elapsed
	s.phaseProf.SampleFFSeconds += elapsed
}

// ffBudgets apportions the fast-forward budget (perCore references per
// active core) across the active cores in proportion to each core's
// reference count in the last detailed window. A uniform rotation biases
// the skipped stream toward slow-CPI VMs — they receive the same share
// fast-forwarded that they conspicuously failed to issue in detail — so
// their footprint is over-warmed and fast VMs' under-warmed at window
// entry. Proportional budgets preserve the VMs' relative progress
// through the skipped stream. Uniform before the first detailed window
// completes. Largest-remainder rounding keeps the total exact, with core
// index breaking remainder ties deterministically.
func (s *System) ffBudgets(perCore uint64) []uint64 {
	if s.ffBudget == nil {
		s.ffBudget = make([]uint64, len(s.cores))
	}
	bud := s.ffBudget
	var nActive int
	var sum uint64
	for c := range s.cores {
		bud[c] = 0
		if s.cores[c].active {
			nActive++
			if s.ffRate != nil {
				sum += s.ffRate[c]
			}
		}
	}
	if sum == 0 {
		for c := range s.cores {
			if s.cores[c].active {
				bud[c] = perCore
			}
		}
		return bud
	}
	total := perCore * uint64(nActive)
	assigned := uint64(0)
	for c := range s.cores {
		if s.cores[c].active {
			bud[c] = total * s.ffRate[c] / sum
			assigned += bud[c]
		}
	}
	var picked uint64 // the floor deficit is < nActive, so one bump per core suffices
	for assigned < total {
		best, bestRem := -1, uint64(0)
		for c := range s.cores {
			if !s.cores[c].active || picked&(1<<uint(c)) != 0 {
				continue
			}
			if rem := total * s.ffRate[c] % sum; best < 0 || rem > bestRem {
				best, bestRem = c, rem
			}
		}
		picked |= 1 << uint(best)
		bud[best]++
		assigned++
	}
	return bud
}

// ffLoop is fastForward's monomorphized engine-agnostic loop: a
// Bresenham interleave issues each core's budget spread evenly across
// the longest budget's rounds, so cores advance through the skipped
// stream at their proportional rates instead of in per-core bursts.
// Uniform budgets degenerate to exactly one reference per core per
// round — the rotation the detailed loop's reference budget implies.
func ffLoop[S refSource](s *System, bud []uint64, src S) {
	var rounds uint64
	for c := range s.cores {
		if s.cores[c].active && bud[c] > rounds {
			rounds = bud[c]
		}
	}
	for i := uint64(0); i < rounds; i++ {
		for c := range s.cores {
			cs := &s.cores[c]
			if !cs.active {
				continue
			}
			for k := (i+1)*bud[c]/rounds - i*bud[c]/rounds; k > 0; k-- {
				run := cs.queue[cs.cur]
				m := s.vms[run.vmID]
				acc := src.next(s, run)
				m.Touch(acc.Block)
				accessTM(s, ffTiming{}, c, run.vmID, m.AddrOf(acc.Block), acc.Write)
			}
		}
	}
}
