package core

import (
	"path/filepath"
	"runtime"
	"testing"

	"consim/internal/obs"
	"consim/internal/workload"
)

// allocTestHooks builds run hooks with every steady-state-visible sink
// live: metric shards and a -timeseries recorder writing to a temp
// sidecar.
func allocTestHooks(t *testing.T) *obs.RunHooks {
	t.Helper()
	o := obs.NewObserver(nil, nil, nil)
	tsw, err := obs.OpenTimeSeries(filepath.Join(t.TempDir(), "ts.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tsw.Close() })
	o.TS = tsw
	return o.Hooks()
}

// TestSteadyStateAllocBudget is the allocation regression guard for the
// per-reference access path: once the machine is warm (caches and
// directory populated, event queue at its working size), simulating more
// references must be allocation-free — the flat directory stores entries
// by value, and everything else on the path reuses preallocated state.
// The budget tolerates a handful of stragglers (a late directory-table
// growth, runtime bookkeeping) but fails loudly if a per-reference
// allocation sneaks back in.
//
// The run executes with live metrics AND a -timeseries recorder
// attached: the observability layer's publish cadence (shard slot
// writes, histogram observes, time-series column writes) is part of
// the guarded path and must stay allocation-free too.
func TestSteadyStateAllocBudget(t *testing.T) {
	specs := workload.Specs()
	cfg := DefaultConfig(specs[workload.TPCW], specs[workload.SPECjbb],
		specs[workload.TPCH], specs[workload.SPECweb])
	cfg.Scale = 16
	cfg.GroupSize = 4
	cfg.WarmupRefs = 40_000
	cfg.MeasureRefs = 40_000
	cfg.Obs = allocTestHooks(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.setupTS()

	// Mirror Run()'s setup, then measure a second chunk after the first
	// has warmed every structure.
	for c := range sys.cores {
		if sys.cores[c].active {
			sys.q.Push(0, c)
			sys.pending[c] = true
		}
	}
	sys.runUntil(cfg.WarmupRefs)

	const measuredRefs = 40_000 * 16 // per-core target x cores
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.runUntil(cfg.WarmupRefs + cfg.MeasureRefs)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perRef := float64(allocs) / float64(measuredRefs)
	t.Logf("steady state: %d allocs over %d refs (%.6f allocs/ref, %d bytes)",
		allocs, measuredRefs, perRef, after.TotalAlloc-before.TotalAlloc)
	if perRef > 0.001 {
		t.Fatalf("access path allocates: %.6f allocs/ref (budget 0.001)", perRef)
	}
}

// TestShardedSteadyStateAllocBudget holds the sharded engine to the same
// steady-state budget: adopt/repost of prefilled reference batches and
// think batches recycles fixed buffers, the task rings are preallocated,
// and the spine's stall wait is a yield loop — nothing on either side of
// the pipeline may allocate per reference.
func TestShardedSteadyStateAllocBudget(t *testing.T) {
	specs := workload.Specs()
	cfg := DefaultConfig(specs[workload.TPCW], specs[workload.SPECjbb],
		specs[workload.TPCH], specs[workload.SPECweb])
	cfg.Scale = 16
	cfg.GroupSize = 4
	cfg.WarmupRefs = 40_000
	cfg.MeasureRefs = 40_000
	cfg.Shards = 4
	cfg.Obs = allocTestHooks(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.setupTS()

	for c := range sys.cores {
		if sys.cores[c].active {
			sys.q.Push(0, c)
			sys.pending[c] = true
		}
	}
	sys.shard.start(sys)
	defer sys.shard.stop()
	sys.runUntil(cfg.WarmupRefs)

	const measuredRefs = 40_000 * 16
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.runUntil(cfg.WarmupRefs + cfg.MeasureRefs)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perRef := float64(allocs) / float64(measuredRefs)
	t.Logf("sharded steady state: %d allocs over %d refs (%.6f allocs/ref, %d bytes), stats %+v",
		allocs, measuredRefs, perRef, after.TotalAlloc-before.TotalAlloc, sys.shard.stats)
	if perRef > 0.001 {
		t.Fatalf("sharded path allocates: %.6f allocs/ref (budget 0.001)", perRef)
	}
}

// TestPdesShardedAllocBudget holds the pdes engine with bank-sharded
// replay (and pipelining) to the same steady-state budget: the merged
// op log, per-stream rank lists, deferred-effect logs and merge cursors
// are all preallocated and recycled across windows, and the deferred
// writeback merge keeps its cursor array on the stack — replaying in
// parallel must not buy back the allocations the serial replay avoided.
func TestPdesShardedAllocBudget(t *testing.T) {
	specs := workload.Specs()
	cfg := DefaultConfig(specs[workload.TPCW], specs[workload.SPECjbb],
		specs[workload.TPCH], specs[workload.SPECweb])
	cfg.Scale = 16
	cfg.GroupSize = 4
	cfg.WarmupRefs = 40_000
	cfg.MeasureRefs = 40_000
	cfg.Pdes = 4
	cfg.PdesReplayWorkers = 4
	cfg.PdesPipeline = true
	cfg.Obs = allocTestHooks(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.setupTS()

	// Mirror Run()'s pdes setup: the engine seeds its own per-domain
	// calendars; only start/stop the worker pool around the run.
	sys.pdes.start()
	defer sys.pdes.stop()
	sys.runUntil(cfg.WarmupRefs)

	const measuredRefs = 40_000 * 16
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.runUntil(cfg.WarmupRefs + cfg.MeasureRefs)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perRef := float64(allocs) / float64(measuredRefs)
	t.Logf("pdes sharded steady state: %d allocs over %d refs (%.6f allocs/ref, %d bytes), stats %+v",
		allocs, measuredRefs, perRef, after.TotalAlloc-before.TotalAlloc, sys.pdes.stats)
	if perRef > 0.001 {
		t.Fatalf("sharded replay path allocates: %.6f allocs/ref (budget 0.001)", perRef)
	}
}
