package core

import (
	"testing"

	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// TestShardedReplayBitIdentical is the sharded replay's core contract:
// at any replay worker count the full golden digest is byte-identical
// to the serial replay at the same (seed, Pdes, window). Sharding is a
// pure execution-strategy change — the deferred merges reconstruct the
// serial order exactly — so this is equality, not a tolerance bound.
func TestShardedReplayBitIdentical(t *testing.T) {
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"affinity", fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)},
		{"spanning", fastCfg(16, sched.RoundRobin, workload.TPCW, workload.SPECjbb)},
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := c.cfg
			serial.Pdes = 4
			want := pdesDigest(t, mustRun(t, serial))
			for _, rw := range []int{2, 4, 8} {
				sharded := serial
				sharded.PdesReplayWorkers = rw
				if got := pdesDigest(t, mustRun(t, sharded)); got != want {
					t.Errorf("replay-workers=%d diverged from serial replay:\n%s\nvs\n%s", rw, got, want)
				}
			}
		})
	}
}

// TestPdesPipelineDeterministic checks the pipelined mode's contract:
// it is NOT bit-identical to the unpipelined engine (the one-window
// replica staleness is a modeled accuracy trade), but it must be
// byte-identical across repeated runs at the same (seed, workers,
// window) and stay within the sequential-oracle equivalence bound.
func TestPdesPipelineDeterministic(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.Pdes = 4
	cfg.PdesReplayWorkers = 4
	cfg.PdesPipeline = true
	want := pdesDigest(t, mustRun(t, cfg))
	for i := 0; i < 2; i++ {
		if got := pdesDigest(t, mustRun(t, cfg)); got != want {
			t.Fatalf("pipelined run %d diverged from first run", i+2)
		}
	}
	if worst := comparePdes(t, cfg, 4); worst > 0.12 {
		t.Errorf("pipelined worst rel err %.4f > 0.12 vs sequential oracle", worst)
	}
}

// TestPdesReplayValidation rejects replay/pipeline knob combinations
// the engine cannot honor.
func TestPdesReplayValidation(t *testing.T) {
	base := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)

	bad := []func(*Config){
		func(c *Config) { c.Pdes = 4; c.PdesReplayWorkers = -1 },
		func(c *Config) { c.PdesReplayWorkers = 2 },                     // replay workers without the parallel engine
		func(c *Config) { c.Pdes = 1; c.PdesReplayWorkers = 2 },         // Pdes=1 runs the sequential reference
		func(c *Config) { c.PdesPipeline = true },                       // pipeline without the parallel engine
		func(c *Config) { c.Pdes = 4; c.PdesPipeline = true },           // pipeline needs sharded replay
		func(c *Config) { c.Pdes = 4; c.PdesReplayWorkers = 1; c.PdesPipeline = true },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("bad replay config %d accepted", i)
		}
	}

	good := base
	good.Pdes = 4
	good.PdesReplayWorkers = 4
	good.PdesPipeline = true
	if _, err := NewSystem(good); err != nil {
		t.Errorf("valid sharded+pipelined config rejected: %v", err)
	}
}

// TestPdesReplayStatsShape checks the new provenance fields: a sharded
// run reports its replay worker count and parallel/merge phase seconds,
// and a pipelined run flags itself.
func TestPdesReplayStatsShape(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)
	cfg.Pdes = 4
	cfg.PdesReplayWorkers = 4
	res := mustRun(t, cfg)
	if res.Pdes.ReplayWorkers != 4 {
		t.Errorf("ReplayWorkers = %d, want 4", res.Pdes.ReplayWorkers)
	}
	if res.Pdes.Pipelined {
		t.Error("unpipelined run reports Pipelined")
	}
	if res.Pdes.ReplayParallelSeconds <= 0 || res.Pdes.ReplayMergeSeconds <= 0 {
		t.Errorf("replay phase seconds = %.6f/%.6f, want both > 0",
			res.Pdes.ReplayParallelSeconds, res.Pdes.ReplayMergeSeconds)
	}
	if res.Pdes.ReplayParallelSeconds+res.Pdes.ReplayMergeSeconds > res.Pdes.ApplySeconds {
		t.Errorf("parallel+merge %.6f exceeds total apply %.6f",
			res.Pdes.ReplayParallelSeconds+res.Pdes.ReplayMergeSeconds, res.Pdes.ApplySeconds)
	}

	pipe := cfg
	pipe.PdesPipeline = true
	pres := mustRun(t, pipe)
	if !pres.Pdes.Pipelined {
		t.Error("pipelined run does not report Pipelined")
	}
	if pres.Pdes.PipelineOverlapSeconds <= 0 {
		t.Errorf("PipelineOverlapSeconds = %.6f, want > 0", pres.Pdes.PipelineOverlapSeconds)
	}

	serial := cfg
	serial.PdesReplayWorkers = 0
	sres := mustRun(t, serial)
	if sres.Pdes.ReplayWorkers != 0 || sres.Pdes.ReplayParallelSeconds != 0 {
		t.Errorf("serial-replay run reports sharded stats: %+v", sres.Pdes)
	}
}

// FuzzShardedReplayOrdering is the adversarial oracle for the sharded
// path: across arbitrary seeds, worker counts and window widths, the
// sharded replay must stay byte-identical to the serial replay, and the
// pipelined variant must be internally deterministic and within the
// loose fuzz equivalence bound of the sequential reference.
func FuzzShardedReplayOrdering(f *testing.F) {
	f.Add(uint64(1), 4, 2, uint32(8192))
	f.Add(uint64(7), 2, 8, uint32(1024))
	f.Add(uint64(42), 8, 4, uint32(65536))
	f.Add(uint64(1234), 3, 16, uint32(4096))
	f.Fuzz(func(t *testing.T, seed uint64, workers, replayWorkers int, window uint32) {
		if workers < 2 || workers > 16 || replayWorkers < 2 || replayWorkers > 16 {
			t.Skip()
		}
		if window < 64 || window > 1<<20 {
			t.Skip()
		}
		cfg := fastCfg(4, sched.RoundRobin, workload.TPCW, workload.SPECjbb)
		cfg.Seed = seed
		cfg.WarmupRefs = 5_000
		cfg.MeasureRefs = 20_000
		cfg.PdesWindow = sim.Cycle(window)
		cfg.Pdes = workers

		want := pdesDigest(t, mustRun(t, cfg))
		sharded := cfg
		sharded.PdesReplayWorkers = replayWorkers
		if got := pdesDigest(t, mustRun(t, sharded)); got != want {
			t.Fatalf("sharded replay diverged at seed=%d workers=%d rw=%d window=%d",
				seed, workers, replayWorkers, window)
		}

		pipe := sharded
		pipe.PdesPipeline = true
		first := pdesDigest(t, mustRun(t, pipe))
		if second := pdesDigest(t, mustRun(t, pipe)); second != first {
			t.Fatalf("pipelined nondeterministic at seed=%d workers=%d rw=%d window=%d",
				seed, workers, replayWorkers, window)
		}
		if worst := comparePdes(t, pipe, workers); worst > 0.35 {
			t.Fatalf("pipelined seed=%d workers=%d rw=%d window=%d worst rel err %.4f",
				seed, workers, replayWorkers, window, worst)
		}
	})
}
