package core

// Tests for the §VII over-commitment extension: more threads than cores,
// time-sliced by the hypervisor.

import (
	"testing"

	"consim/internal/sched"
	"consim/internal/workload"
)

func overcommitCfg(t *testing.T, nVMs int) Config {
	t.Helper()
	all := workload.Specs()
	var specs []workload.Spec
	for i := 0; i < nVMs; i++ {
		specs = append(specs, all[workload.Class(i%int(workload.NumClasses))])
	}
	cfg := DefaultConfig(specs...)
	cfg.GroupSize = 4
	cfg.Scale = 64
	cfg.WarmupRefs = 10_000
	cfg.MeasureRefs = 20_000
	cfg.TimesliceCycles = 5_000
	return cfg
}

func TestOvercommitRejectedWithoutTimeslice(t *testing.T) {
	cfg := overcommitCfg(t, 6) // 24 threads on 16 cores
	cfg.TimesliceCycles = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("over-commit without timeslice accepted")
	}
}

func TestOvercommitRunsAllVMs(t *testing.T) {
	cfg := overcommitCfg(t, 6) // 24 threads, capacity 2 per core
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CoreCapacity() != 2 {
		t.Fatalf("capacity = %d, want 2", cfg.CoreCapacity())
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.VMs {
		if v.Stats.Refs == 0 {
			t.Errorf("vm %d made no progress under over-commitment", v.VM)
		}
	}
	if sys.Switches == 0 {
		t.Error("no timeslice rotations recorded")
	}
	checkGlobalConsistency(t, sys)
}

func TestOvercommitSlowsSharers(t *testing.T) {
	// Six VMs on a 16-core chip must each run slower than four VMs
	// (fewer cycles available per thread plus switch overheads).
	run := func(nVMs int) float64 {
		cfg := overcommitCfg(t, nVMs)
		res := mustRun(t, cfg)
		// Mean cycles-per-transaction normalized per workload class is
		// overkill here; total refs per cycle is the clean capacity
		// measure.
		var refs uint64
		for _, v := range res.VMs {
			refs += v.Stats.Refs
		}
		return float64(refs) / float64(res.Cycles)
	}
	throughput4 := run(4)
	throughput6 := run(6)
	// Per-VM progress rate must drop when over-committed.
	if throughput6/6 >= throughput4/4 {
		t.Errorf("per-VM throughput did not drop: 4 VMs %.4f, 6 VMs %.4f",
			throughput4/4, throughput6/6)
	}
}

func TestOvercommitQueueShapes(t *testing.T) {
	cfg := overcommitCfg(t, 8) // 32 threads, capacity 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range sys.cores {
		if n := len(sys.cores[c].queue); n != 2 {
			t.Errorf("core %d holds %d runnables, want 2", c, n)
		}
	}
}

func TestOvercommitSlotLimit(t *testing.T) {
	all := workload.Specs()
	var specs []workload.Spec
	for i := 0; i < 40; i++ {
		specs = append(specs, all[workload.TPCH])
	}
	cfg := DefaultConfig(specs...)
	cfg.TimesliceCycles = 1000
	cfg.ThreadsPerVM = 4 // 160 threads on 16 cores: 10x > 8x limit
	if cfg.Validate() == nil {
		t.Fatal("10x over-commitment accepted beyond the slot limit")
	}
}

func TestSchedCapacityPlacement(t *testing.T) {
	asg, err := sched.AssignWithCapacity(sched.Affinity, 16, 4, 2, []int{4, 4, 4, 4, 4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, threads := range asg {
		for _, c := range threads {
			counts[c]++
			if counts[c] > 2 {
				t.Fatalf("core %d assigned %d threads, capacity 2", c, counts[c])
			}
		}
	}
	if _, err := sched.AssignWithCapacity(sched.Affinity, 16, 4, 0, []int{4}, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}
