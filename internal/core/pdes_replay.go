// Bank-group-sharded barrier replay for the -pdes engine.
//
// The serial applyOps (pdes.go) is the engine's Amdahl term: ~a third
// of -pdes wall time on the bench host. Its op stream is shardable
// because the shared tier is already partitioned by LLC bank group —
// but only conditionally: an op whose requester group hosts a VM that
// spans groups can touch another group's banks, private caches and
// directory entries through the coherence walk. newPdesEngine therefore
// classifies each group statically (groupLocal): a group is replay-
// local iff every VM with threads on its cores is wholly confined to
// it. VM address regions are disjoint by construction, so a local
// group's ops reference only blocks whose every sharer (core, bank,
// directory entry, per-VM Stats) lives inside that group — streams of
// distinct local groups, and the residual sync stream, touch pairwise
// disjoint state and can apply concurrently.
//
// Three kinds of state stay order-sensitive across groups and are
// deferred instead: memory-controller writebacks (queue busy-chaining),
// directory-cache visits (set LRU), and directory entry releases (the
// flat table's backward-shift delete moves slots, which would tear
// concurrent probes). Each stream logs these with the op's global merge
// rank; a serial deferred merge replays them in rank order — exactly
// the serial sequence. Releases need no rank at all: a deferred release
// re-checks OnChip, so an entry re-populated by a later op survives and
// an entry left empty is removed, matching the serial end state (a
// fully-dropped entry is field-identical to a fresh one, so mid-stream
// "zombies" read exactly like the fresh entries serial Get would have
// created).
//
// During the parallel pass the table is structurally frozen — the merge
// pre-pass Get()s every fetch/upgrade target up front (Get may rehash;
// the pass itself uses read-only ProbeSlot walks) and releases are
// deferred — so slot indices stay valid for the whole pass and
// concurrent probe walks only read slot keys no one writes.
//
// The result is bit-identical to the serial replay at every replay
// worker count and on every host: partitioning is static, per-stream
// application preserves per-address program order, and the deferred
// merges are rank-ordered. Only the Directory's lookup counter and slot
// layout can differ — neither is result-visible.
package core

import (
	"math/bits"
	"time"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/memctrl"
	"consim/internal/sim"
	"consim/internal/vm"
)

// fxDirCache is one deferred directory-cache visit: replayed in global
// rank order so set LRU and hit/miss counters match the serial replay.
type fxDirCache struct {
	rank uint32
	home int32
	addr sim.Addr
}

// replayFx accumulates one stream's order-sensitive cross-group
// effects. All slices are reused across windows (0-alloc steady state).
type replayFx struct {
	dc         []fxDirCache
	wb         []memctrl.DeferredWriteback
	rel        []sim.Addr
	backInvals uint64
}

func (f *replayFx) reset() {
	f.dc = f.dc[:0]
	f.wb = f.wb[:0]
	f.rel = f.rel[:0]
	f.backInvals = 0
}

// applyOpsSharded is the sharded analogue of applyOps: serial k-way
// merge + stream classification + directory pre-pass, then the parallel
// per-group pass, then (unless deferred for pipelining) the serial
// cross-group merge.
func (e *pdesEngine) applyOpsSharded(deferMerge bool) {
	e.mergeAndClassify()
	t0 := time.Now()
	e.runParallelReplay()
	e.stats.ReplayParallelSeconds += time.Since(t0).Seconds()
	if deferMerge {
		return // the next window's phase A overlaps applyDeferredPhase
	}
	t1 := time.Now()
	e.applyDeferredPhase()
	e.stats.ReplayMergeSeconds += time.Since(t1).Seconds()
}

// mergeAndClassify k-way-merges the per-domain op logs into e.merged in
// the serial replay's total order (ascending time, ties by domain
// index), routes each op's rank to its group's stream (or the sync
// stream), and Get()s every fetch/upgrade target so the parallel pass
// runs over a structurally frozen table. The unconditional upgrade Get
// creates no entry the serial replay wouldn't: an upgrade's line
// reached its L1 through a fetch — either earlier in this very log
// (whose Get here runs first) or in a previous window (whose replay
// left a live entry that cannot have been released while the private
// copy survived).
func (e *pdesEngine) mergeAndClassify() {
	s := e.s
	idx := e.opIdx
	for i := range idx {
		idx[i] = 0
	}
	e.merged = e.merged[:0]
	for i := range e.streams {
		e.streams[i] = e.streams[i][:0]
	}
	for {
		best := -1
		var bt sim.Cycle
		for i, d := range e.domains {
			if idx[i] >= len(d.ops) {
				continue
			}
			if t := d.ops[idx[i]].t; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			break
		}
		op := e.domains[best].ops[idx[best]]
		idx[best]++
		g := s.groupOf(int(op.core))
		e.applyByGroup[g]++
		st := e.streamOf[g]
		if st < 0 {
			st = int32(e.nlocal)
		}
		e.streams[st] = append(e.streams[st], int32(len(e.merged)))
		e.merged = append(e.merged, op)
		if op.kind != opEvictL1 {
			s.dir.Get(op.addr) // presence only; the pointer may move until the pre-pass ends
		}
	}
	for _, d := range e.domains {
		d.ops = d.ops[:0]
	}
}

// runParallelReplay posts the replay task to the window workers and
// applies the spine's own share. Reuses the window handshake — no extra
// goroutines, and at GOMAXPROCS=1 the spine simply applies every
// stream itself (same algorithm, same bits).
func (e *pdesEngine) runParallelReplay() {
	e.post(taskReplay)
	e.runReplayStreams(0)
	e.awaitWorkers()
}

// runReplayStreams applies executor r's share: local streams i with
// i%R == r (R = min(replayWorkers, execs)), plus the serial sync stream
// on the spine. Executors at or past R complete immediately.
func (e *pdesEngine) runReplayStreams(r int) {
	R := e.replayWorkers
	if R > e.execs {
		R = e.execs
	}
	if r >= R {
		return
	}
	for i := r; i < e.nlocal; i += R {
		e.applyStream(i)
	}
	if r == 0 {
		e.applyStream(e.nlocal)
	}
}

// applyStream applies one stream's ops in rank (= serial) order.
func (e *pdesEngine) applyStream(i int) {
	x := shardCtx{s: e.s, fx: &e.fx[i]}
	for _, rank := range e.streams[i] {
		op := &e.merged[rank]
		x.rank = uint32(rank)
		switch op.kind {
		case opFetch:
			x.applyFetch(op)
		case opUpgrade:
			x.applyUpgrade(op)
		default:
			x.applyEvictL1(op)
		}
	}
}

// applyDeferredPhase serially merges the streams' order-sensitive
// effects in global rank order, then settles the run counters the
// parallel pass could not touch. Under pipelining this is the one piece
// of replay that overlaps the next window's phase A — it writes only
// the directory cache, the memory controllers, the directory table
// structure and run-level counters, none of which a parked phase A
// reads.
func (e *pdesEngine) applyDeferredPhase() {
	s := e.s
	e.mergeDirCacheVisits()
	for i := range e.fx {
		e.wbLogs[i] = e.fx[i].wb
	}
	s.mem.ApplyMerged(e.wbLogs)
	for i := range e.fx {
		for _, addr := range e.fx[i].rel {
			// Release re-checks OnChip, so entries later ops re-populated
			// survive; order across streams is immaterial (stream address
			// sets are disjoint).
			s.dir.Release(addr)
		}
		s.backInvals += e.fx[i].backInvals
		e.fx[i].reset()
	}
	if s.hooks != nil {
		for i := range e.merged {
			if op := &e.merged[i]; op.kind == opFetch {
				s.hooks.ObserveMissLat(uint64(op.lat))
			}
		}
	}
	e.stats.Ops += uint64(len(e.merged))
}

// mergeDirCacheVisits replays the deferred directory-cache accesses in
// rank order. Ranks are unique across streams (an op lives in exactly
// one stream); equal ranks — several visits from one op — sit in one
// stream where cursor order preserves them.
func (e *pdesEngine) mergeDirCacheVisits() {
	s := e.s
	idx := e.mIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var br uint32
		for i := range e.fx {
			dc := e.fx[i].dc
			if idx[i] >= len(dc) {
				continue
			}
			if r := dc[idx[i]].rank; best < 0 || r < br {
				best, br = i, r
			}
		}
		if best < 0 {
			return
		}
		v := &e.fx[best].dc[idx[best]]
		idx[best]++
		s.dirCache.Access(int(v.home), v.addr)
	}
}

// shardCtx is one stream's application context: the live system, the
// stream's deferred-effect log, and the rank of the op being applied.
// Its apply methods mirror applyFetch/applyUpgrade/applyEvictL1 and the
// shared eviction/invalidation walks exactly, with three substitutions:
// read-only ProbeSlot walks instead of Get (the pre-pass guaranteed
// presence and froze the table), deferral of the order-sensitive
// cross-group effects into fx, and op.t passed where the serial path
// read s.now (the serial replay pins s.now = op.t before each
// dispatch).
type shardCtx struct {
	s    *System
	fx   *replayFx
	rank uint32
}

func (x *shardCtx) dirVisit(addr sim.Addr) {
	x.fx.dc = append(x.fx.dc, fxDirCache{rank: x.rank, home: int32(x.s.dir.Home(addr)), addr: addr})
}

func (x *shardCtx) writeback(at sim.Cycle, addr sim.Addr) {
	x.fx.wb = append(x.fx.wb, memctrl.DeferredWriteback{Rank: x.rank, At: at, Addr: addr})
}

// applyFetch mirrors (*System).applyFetch. See pdes.go for the protocol
// commentary; only the sharding substitutions are annotated here.
func (x *shardCtx) applyFetch(op *pdesOp) {
	s := x.s
	c := int(op.core)
	vmID := int(op.vm)
	g := s.groupOf(c)
	addr := op.addr
	vtag := uint8(vmID)
	st := &s.vms[vmID].Stats
	bank := s.banks[g]

	bw, bHit := bank.Lookup(addr)
	si, ok := s.dir.ProbeSlot(addr)
	if !ok {
		// Unreachable: the merge pre-pass Get()s every fetch target and
		// nothing reshapes the table until the deferred merge. Bail
		// rather than corrupt slot 0; the bit-identity oracle would
		// surface the divergence.
		return
	}
	e := s.dir.EntryAt(si)
	if bHit {
		e.AddL2(g)
		if o := int(e.L1Owner); o >= 0 && o != c {
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		}
	} else {
		st.LLCMisses++
		st.RegionMisses[op.region]++
		x.dirVisit(addr)
		switch o := int(e.L1Owner); {
		case o >= 0 && o != c:
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		case e.L2Owner >= 0 && int(e.L2Owner) != g:
			b := int(e.L2Owner)
			if sw, okb := s.banks[b].Probe(addr); okb {
				if s.banks[b].State(sw) == cache.Modified {
					s.banks[b].SetState(sw, cache.Owned)
				}
				st.C2CDirty++
			} else {
				e.L2Owner = -1
				st.MemReads++
			}
		case e.OtherL2(g) >= 0:
			st.C2CClean++
		default:
			st.MemReads++
		}
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted, nw := bank.Insert(addr, bankState, vtag)
		bw = nw
		if evicted {
			// The serial path re-Gets addr here because the victim's
			// ReleaseSlot can shift the table; with releases deferred the
			// table cannot move, so e stays valid.
			x.evictBankLine(op.t, g, victim)
		}
		e.AddL2(g)
	}

	if op.write && (e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0) {
		e = x.invalidateOthers(op.t, c, addr, st)
	}
	s.demoteExclusives(c, addr, e)
	e.AddL1(c)
	if op.write {
		e.L1Owner = int8(c)
		e.L2Owner = int8(g)
		bank.SetState(bw, cache.Modified)
	} else if m := e.L1Sharers &^ (1 << uint(c)); m != 0 || e.Dirty() || e.L2Count() > 1 {
		if w, okw := s.l1[c].Probe(addr); okw && s.l1[c].State(w) == cache.Exclusive {
			s.l1[c].SetState(w, cache.Shared)
		}
		if w, okw := s.l0[c].Probe(addr); okw && s.l0[c].State(w) == cache.Exclusive {
			s.l0[c].SetState(w, cache.Shared)
		}
	}
}

// applyUpgrade mirrors (*System).applyUpgrade.
func (x *shardCtx) applyUpgrade(op *pdesOp) {
	s := x.s
	c := int(op.core)
	addr := op.addr
	w1, ok := s.l1[c].Probe(addr)
	if !ok {
		return
	}
	st := &s.vms[int(op.vm)].Stats
	si, oks := s.dir.ProbeSlot(addr)
	if !oks {
		return // unreachable; see applyFetch
	}
	e := s.dir.EntryAt(si)
	if e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0 {
		e = x.invalidateOthers(op.t, c, addr, st)
	}
	e.AddL1(c)
	e.L1Owner = int8(c)
	g := s.groupOf(c)
	if bw, okb := s.banks[g].Probe(addr); okb {
		s.banks[g].SetState(bw, cache.Modified)
		e.L2Owner = int8(g)
	}
	s.l1[c].SetState(w1, cache.Modified)
	if w0, ok0 := s.l0[c].Probe(addr); ok0 {
		s.l0[c].SetState(w0, cache.Modified)
	}
}

// applyEvictL1 mirrors (*System).applyEvictL1.
func (x *shardCtx) applyEvictL1(op *pdesOp) {
	st := cache.Shared
	if op.write {
		st = cache.Modified
	}
	x.evictPrivateVictim(int(op.core), cache.Line{Tag: op.addr, State: st})
}

// invalidateOthers mirrors invalidateOthersTM under applyTiming (all
// routing free, memPenalty zero), so only the functional side remains.
// For a local stream the other-bank loop is provably empty — a confined
// VM's line has bank copies only in its own group.
func (x *shardCtx) invalidateOthers(at sim.Cycle, c int, addr sim.Addr, st *vm.Stats) *coherence.Entry {
	s := x.s
	x.dirVisit(addr)
	g := s.groupOf(c)
	si, ok := s.dir.ProbeSlot(addr)
	if !ok {
		return nil // unreachable: callers hold addr's entry
	}
	e := s.dir.EntryAt(si)
	for m := e.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		s.dropPrivate(o, addr, e)
		st.Invalidations++
	}
	for m := e.L2Sharers &^ (1 << uint(g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		if bl, okb := s.banks[b].Invalidate(addr); okb && bl.State.Dirty() {
			x.writeback(at, addr)
		}
		e.DropL2(b)
		st.Invalidations++
	}
	e.L1Owner = -1
	e.L2Owner = -1
	return e
}

// evictPrivateVictim mirrors (*System).evictPrivateVictim with the
// release deferred.
func (x *shardCtx) evictPrivateVictim(c int, victim cache.Line) {
	s := x.s
	g := s.groupOf(c)
	si, ok := s.dir.ProbeSlot(victim.Tag)
	if !ok {
		return
	}
	e := s.dir.EntryAt(si)
	if victim.State == cache.Modified {
		if bw, okb := s.banks[g].Probe(victim.Tag); okb {
			s.banks[g].SetState(bw, cache.Modified)
			e.L2Owner = int8(g)
		}
		if e.L1Owner == int8(c) {
			e.L1Owner = -1
		}
	}
	e.DropL1(c)
	if !e.OnChip() {
		x.fx.rel = append(x.fx.rel, victim.Tag)
	}
}

// evictBankLine mirrors evictBankLineTM under applyTiming, with at
// standing in for the s.now the serial path reads (the serial replay
// sets s.now = op.t before each dispatch) and the release deferred.
func (x *shardCtx) evictBankLine(at sim.Cycle, g int, victim cache.Line) {
	s := x.s
	addr := victim.Tag
	dirty := victim.State.Dirty()
	si, ok := s.dir.ProbeSlot(addr)
	if ok {
		e := s.dir.EntryAt(si)
		for o := g * s.cfg.GroupSize; o < (g+1)*s.cfg.GroupSize; o++ {
			if !e.HasL1(o) {
				continue
			}
			if e.L1Owner == int8(o) {
				dirty = true
			}
			s.dropPrivate(o, addr, e)
			x.fx.backInvals++
		}
		e.DropL2(g)
		if !e.OnChip() {
			x.fx.rel = append(x.fx.rel, addr)
		}
	}
	if dirty {
		x.writeback(at, addr)
	}
}
