// Package core composes every substrate — caches, directory coherence,
// mesh interconnect, memory controllers, workload generators, the VM
// layer and the hypervisor scheduler — into the consolidated-server CMP
// simulator that the paper's evaluation runs on. This is the paper's
// primary contribution: a methodology for running multiple multi-threaded
// commercial workloads, isolated in VMs, on one chip and measuring how
// they interfere through the shared memory system.
package core

import (
	"fmt"
	"strings"

	"consim/internal/coherence"
	"consim/internal/memctrl"
	"consim/internal/obs"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// Table III machine parameters at full scale.
const (
	DefaultCores      = 16
	DefaultL0Bytes    = 8 << 10  // 8 KB, 1 cycle
	DefaultL1Bytes    = 64 << 10 // 64 KB, 2 cycles
	DefaultLLCBytes   = 16 << 20 // 16 MB aggregate, 6 cycles
	DefaultL0Latency  = sim.Cycle(1)
	DefaultL1Latency  = sim.Cycle(2)
	DefaultLLCLatency = sim.Cycle(6)
	DefaultMemLatency = sim.Cycle(150)
	DefaultPipeStages = 3
)

// Message sizes on the interconnect, in flits (16-byte links: a 64-byte
// line is four body flits plus a head).
const (
	CtrlFlits = 1
	DataFlits = 5
)

// Occupancies for contention modeling.
const (
	bankOccupancy = sim.Cycle(2)
	dirOccupancy  = sim.Cycle(2)
	dirLatency    = sim.Cycle(2)
)

// Config describes one simulation run.
type Config struct {
	// Cores is the machine size (paper: 16).
	Cores int
	// GroupSize is the number of cores sharing one LLC bank group: 1 =
	// private, 2/4/8 = shared-N-way, Cores = fully shared.
	GroupSize int
	// Policy is the hypervisor thread-placement policy.
	Policy sched.Policy
	// Workloads lists the consolidated VMs; each runs ThreadsPerVM
	// threads. One entry = an isolation run.
	Workloads []workload.Spec
	// ThreadsPerVM is the thread count per workload (paper: 4).
	ThreadsPerVM int
	// VMThreads optionally overrides ThreadsPerVM per VM (one entry per
	// workload), for the §VII study of consolidating workloads with
	// different thread counts.
	VMThreads []int
	// TimesliceCycles enables the §VII over-committed mode: when the
	// scheduled thread count exceeds the core count, threads time-share
	// cores and the hypervisor rotates the running thread every
	// TimesliceCycles. Zero (the paper's configuration) forbids
	// over-commitment.
	TimesliceCycles sim.Cycle
	// SwitchCycles is the hypervisor context-switch cost charged at each
	// timeslice rotation (default 500 when over-committed).
	SwitchCycles sim.Cycle
	// RebalanceCycles enables the §VII dynamic-scheduling study: every
	// RebalanceCycles the hypervisor recomputes the thread placement
	// (with a rotated seed, so Random placements churn) and migrates
	// threads; migrated threads re-warm their new cores' private caches
	// naturally. Zero (the paper's configuration) keeps bindings static.
	RebalanceCycles sim.Cycle

	// Scale divides all cache capacities and workload footprints by the
	// same factor, preserving the capacity ratios that drive behaviour.
	// 1 = paper scale.
	Scale int

	// Seed makes runs reproducible.
	Seed uint64

	// WarmupRefs and MeasureRefs are per-core reference budgets for the
	// warm-up and measurement phases.
	WarmupRefs  uint64
	MeasureRefs uint64
	// SnapshotRefs, if non-zero, takes the replication/occupancy
	// snapshot once each core has issued this many measured references
	// (the paper snapshots at 500M instructions). Zero snapshots at the
	// end of measurement.
	SnapshotRefs uint64

	// Memory system; zero value gets DefaultConfig with the paper's 150
	// cycles.
	Mem memctrl.Config

	// DirCacheEntries sizes each home node's directory cache (entries).
	DirCacheEntries int

	// PipeStages overrides the mesh router pipeline depth (default
	// Table III's 3-stage speculative pipeline). Used by ablations.
	PipeStages int

	// Sources optionally replaces each VM's statistical generator with a
	// recorded reference stream (one entry per workload; nil entries
	// fall back to the generator). This is the checkpoint-replay path:
	// the same captured transactions run in every simulation.
	Sources []workload.Source

	// QoSPartition way-partitions every shared LLC bank among the VMs
	// scheduled on its group — the performance-isolation mechanism the
	// paper's conclusion calls for (and its §VI related work proposes).
	// It has no effect on banks hosting a single VM.
	QoSPartition bool
	// QoSShares weights the partition (one relative share per VM;
	// empty = equal shares). A prioritized VM receives a proportionally
	// larger way quota, CQoS-style.
	QoSShares []int

	// LLCBytes optionally overrides the aggregate LLC capacity before
	// scaling (default Table III 16MB).
	LLCBytes int

	// Shards selects intra-run parallelism: 1 (or 0, the default) runs
	// the sequential engine; N > 1 adds N-1 worker goroutines that
	// pre-compute workload reference batches and think-time draws for
	// the timing spine. Results are bit-identical at every shard count —
	// the workers only move functional work off the critical path; all
	// timing-visible state advances on the spine in event order. Must be
	// one of sim.ValidShardCounts and divide Cores.
	Shards int

	// Sample enables interval-sampled simulation: detailed measurement
	// windows with functional fast-forward between them and early stop on
	// per-VM CI convergence (see sample.go). The zero value runs the full
	// detailed measurement, bit-identical to builds without the engine.
	// Incompatible with dynamic rebalancing, over-commitment and mid-run
	// snapshots.
	Sample SampleConfig

	// Pdes selects the split-transaction parallel discrete-event engine
	// (pdes.go): 0 or 1 (the default) runs the sequential engine,
	// bit-identical to builds without it; N > 1 partitions the active
	// cores into up to N worker domains that advance independently inside
	// bounded time windows, replaying cross-domain coherence at each
	// window barrier. Unlike -shards this legitimately changes the
	// simulated stream — results are statistical estimates gated by the
	// equivalence harness (harness.CompareParallelRun), deterministic per
	// (seed, Pdes, PdesWindow). Incompatible with Shards > 1, sampling,
	// dynamic rebalancing, mid-run snapshots and trace sources.
	Pdes int

	// PdesWindow overrides the parallel engine's window width in cycles
	// (default DefaultPdesWindow). Wider windows amortize barrier cost —
	// more speedup — at the price of staler cross-domain coherence inside
	// a window; the equivalence bound gates either way.
	PdesWindow sim.Cycle

	// PdesReplayWorkers shards the barrier replay by LLC bank group:
	// 0 or 1 (the default) replays the merged op log serially; N > 1
	// partitions it into per-group streams applied by up to N replay
	// executors, with order-sensitive cross-group state (memory-
	// controller queues, directory-cache sets, deferred entry releases)
	// merged deterministically afterwards. The sharded replay is
	// bit-identical to the serial one at any worker count — it is a host
	// optimization, not an accuracy knob — and spawns no goroutines
	// beyond the window workers (zero at GOMAXPROCS=1). Requires
	// Pdes > 1.
	PdesReplayWorkers int

	// PdesPipeline overlaps window k's deferred replay merge with window
	// k+1's in-window phase: domains open the next window over the
	// previous frozen tier and resync replicas one window late, with the
	// bounded staleness modeled by a second warm overlay generation.
	// Unlike PdesReplayWorkers this IS an accuracy knob — results stay
	// deterministic per (seed, Pdes, PdesReplayWorkers, PdesWindow) but
	// differ from the unpipelined stream and are gated by the same
	// equivalence harness. Requires PdesReplayWorkers >= 2.
	PdesPipeline bool

	// Obs attaches the observability hooks (metric shard, tracer lane,
	// progress) the run publishes through; nil runs unobserved. The
	// hot-path publish cadence keeps the steady-state loop
	// allocation-free either way.
	Obs *obs.RunHooks `json:"-"`
}

// DefaultConfig returns the paper's machine around the given workloads.
func DefaultConfig(specs ...workload.Spec) Config {
	return Config{
		Cores:           DefaultCores,
		GroupSize:       4,
		Policy:          sched.Affinity,
		Workloads:       specs,
		ThreadsPerVM:    4,
		Scale:           1,
		Seed:            1,
		WarmupRefs:      400_000,
		MeasureRefs:     1_200_000,
		Mem:             memctrl.DefaultConfig(),
		DirCacheEntries: 32768,
		LLCBytes:        DefaultLLCBytes,
	}
}

// ThreadsOf returns VM v's thread count under this configuration.
func (c Config) ThreadsOf(v int) int {
	if len(c.VMThreads) > 0 {
		return c.VMThreads[v]
	}
	return c.ThreadsPerVM
}

// TotalThreads returns the machine's total scheduled thread count.
func (c Config) TotalThreads() int {
	n := 0
	for v := range c.Workloads {
		n += c.ThreadsOf(v)
	}
	return n
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > coherence.MaxNodes {
		return fmt.Errorf("core: core count %d out of 1..%d", c.Cores, coherence.MaxNodes)
	}
	if c.GroupSize <= 0 || c.Cores%c.GroupSize != 0 {
		return fmt.Errorf("core: group size %d does not divide %d cores", c.GroupSize, c.Cores)
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("core: no workloads configured")
	}
	if len(c.VMThreads) > 0 && len(c.VMThreads) != len(c.Workloads) {
		return fmt.Errorf("core: %d thread-count overrides for %d VMs", len(c.VMThreads), len(c.Workloads))
	}
	if len(c.Sources) > 0 && len(c.Sources) != len(c.Workloads) {
		return fmt.Errorf("core: %d trace sources for %d VMs", len(c.Sources), len(c.Workloads))
	}
	if len(c.QoSShares) > 0 {
		if len(c.QoSShares) != len(c.Workloads) {
			return fmt.Errorf("core: %d QoS shares for %d VMs", len(c.QoSShares), len(c.Workloads))
		}
		for v, sh := range c.QoSShares {
			if sh <= 0 {
				return fmt.Errorf("core: non-positive QoS share for VM %d", v)
			}
		}
	}
	for v := range c.Workloads {
		if c.ThreadsOf(v) <= 0 {
			return fmt.Errorf("core: non-positive threads for VM %d", v)
		}
	}
	if c.TotalThreads() > c.Cores {
		if c.TimesliceCycles == 0 {
			return fmt.Errorf("core: %d threads exceed %d cores (set TimesliceCycles to over-commit)", c.TotalThreads(), c.Cores)
		}
		if c.TotalThreads() > 8*c.Cores {
			return fmt.Errorf("core: over-commitment %d threads on %d cores exceeds the 8x slot limit", c.TotalThreads(), c.Cores)
		}
	}
	if c.Scale <= 0 {
		return fmt.Errorf("core: non-positive scale %d", c.Scale)
	}
	if c.Shards > 1 {
		if err := sim.ValidateShards(c.Shards, c.Cores); err != nil {
			return err
		}
	} else if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if c.MeasureRefs == 0 {
		return fmt.Errorf("core: zero measurement budget")
	}
	if err := c.validateSample(); err != nil {
		return err
	}
	if err := c.validatePdes(); err != nil {
		return err
	}
	for _, w := range c.Workloads {
		if err := w.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// scaledBytes divides a capacity by Scale with a floor of one line per
// way group so tiny test scales stay valid power-of-two geometries.
func (c Config) scaledBytes(full int) int {
	b := full / c.Scale
	// Round down to a power-of-two line count to keep set counts valid.
	lines := b / sim.LineBytes
	if lines < 16 {
		lines = 16
	}
	p := 1
	for p*2 <= lines {
		p *= 2
	}
	return p * sim.LineBytes
}

// l0Bytes, l1Bytes and llcGroupBytes return the scaled capacities.
func (c Config) l0Bytes() int { return c.scaledBytes(DefaultL0Bytes) }
func (c Config) l1Bytes() int { return c.scaledBytes(DefaultL1Bytes) }

// llcGroupBytes returns each group's LLC capacity: the aggregate divided
// evenly across groups (1MB per core at paper scale, Table III).
func (c Config) llcGroupBytes() int {
	total := c.LLCBytes
	if total == 0 {
		total = DefaultLLCBytes
	}
	perCore := total / c.Cores
	return c.scaledBytes(perCore * c.GroupSize)
}

// CoreCapacity returns how many threads each core may hold.
func (c Config) CoreCapacity() int {
	cap := (c.TotalThreads() + c.Cores - 1) / c.Cores
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Groups returns the number of LLC bank groups.
func (c Config) Groups() int { return c.Cores / c.GroupSize }

// Label names the configuration for traces, manifests and progress
// lines: workloads, LLC organization, policy, scale and seed.
func (c Config) Label() string {
	names := make([]string, len(c.Workloads))
	for i, w := range c.Workloads {
		names[i] = w.Name
	}
	label := fmt.Sprintf("%s %s/%s", strings.Join(names, "+"), c.SharingName(), c.Policy)
	if c.Scale > 1 {
		label += fmt.Sprintf(" 1/%d", c.Scale)
	}
	if c.Seed != 1 {
		label += fmt.Sprintf(" seed=%d", c.Seed)
	}
	return label
}

// SharingName returns the paper's label for the cache organization.
func (c Config) SharingName() string {
	switch {
	case c.GroupSize == 1:
		return "private"
	case c.GroupSize == c.Cores:
		return "shared"
	default:
		return fmt.Sprintf("shared-%d-way", c.GroupSize)
	}
}
