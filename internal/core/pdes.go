// Split-transaction parallel discrete-event engine.
//
// The sequential event loop executes every memory reference atomically
// at event-pop time, so the conservative lookahead between any two
// cores is zero and -shards (shard.go) can only offload the functional
// plane. -pdes=N takes the other path the roadmap left open: it remodels
// each reference as a split transaction — an *issue* event that walks
// the requester's private hierarchy and an in-flight *completion* event
// scheduled one estimated miss latency later — and partitions the
// active cores into N domains, each advancing its own calendar
// independently through bounded time windows.
//
// Inside a window a domain touches only state it owns or state that is
// frozen for everyone:
//
//   - private L0/L1 caches of its cores (hits execute fully in-window);
//   - replicas of the contention trackers (mesh load, bank/directory
//     occupancy, memory-controller queues), re-based from the live
//     models at every barrier;
//   - the shared tier (LLC banks, directory, directory caches) strictly
//     read-only, through Probe/Peek.
//
// Misses, upgrades and private evictions are classified against that
// frozen shared tier, charged an in-window latency *estimate* from the
// replicas, and logged as operations. At each window barrier the spine
// replays the merged, time-ordered operation log against the live
// shared tier (banks, directory, memory controllers), so every
// functional transition still happens exactly once, in one total order,
// under the same coherence walk the sequential engine uses.
//
// The window is therefore not a correctness bound but an accuracy knob:
// cross-domain coherence actions land up to one window late, which
// perturbs the interleaving the way relaxed-synchronization simulators
// (Graphite, Sniper, Pac-Sim — see PAPERS.md) accept and bound by
// measurement. Accordingly -pdes results are gated the way sampling is:
// harness.CompareParallelRun / CompareParallelFigures quantify the
// per-VM deviation from the sequential engine, and runs are
// deterministic for a fixed (seed, Pdes, PdesWindow) — domains, their
// event orders, the op-log merge and the barrier cadence are all
// reproducible, with no wall-clock input to any simulated value.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/memctrl"
	"consim/internal/mesh"
	"consim/internal/obs"
	"consim/internal/sim"
	"consim/internal/vm"
	"consim/internal/workload"
)

// DefaultPdesWindow is the default width, in cycles, of one parallel
// window. Windows far wider than the ~14-cycle true lookahead trade
// cross-domain timeliness for barrier amortization; the bench sweep
// (cmd/bench -pdessweep) records where the accuracy bound starts to
// move.
const DefaultPdesWindow = sim.Cycle(16384)

// Event payload encoding: local core index << 1 | kind.
const (
	evIssue    = 0
	evComplete = 1
)

// Operation kinds in the per-domain replay log.
const (
	opFetch   = uint8(0)
	opUpgrade = uint8(1)
	opEvictL1 = uint8(2)
)

// pdesOp is one logged shared-tier transition, replayed on the spine at
// the window barrier.
type pdesOp struct {
	t    sim.Cycle
	addr sim.Addr
	lat  uint32 // in-window latency estimate (opFetch; feeds ObserveMissLat)
	kind uint8
	core uint8
	vm   uint8
	region uint8 // footprint region of the missing block (opFetch)
	write  bool
}

// pdesPending is one core's in-flight miss: the fill the completion
// event installs.
type pdesPending struct {
	addr sim.Addr
	vmID int32
	st   cache.State
}

// PdesStats reports what the parallel engine did during a run; all
// fields are zero for the sequential engine.
type PdesStats struct {
	// Workers is the configured -pdes count, Domains the worker domains
	// actually formed (bounded by the active-core count).
	Workers int `json:"workers,omitempty"`
	Domains int `json:"domains,omitempty"`
	// Window is the effective window width in cycles.
	Window sim.Cycle `json:"window,omitempty"`
	// Windows counts barrier-to-barrier rounds, Ops the shared-tier
	// operations replayed at barriers.
	Windows uint64 `json:"windows,omitempty"`
	Ops     uint64 `json:"ops,omitempty"`
	// Stalls counts barriers where the spine waited on a worker domain,
	// and StallSeconds the wall time it spent waiting — the engine's
	// load-imbalance gauge.
	Stalls       uint64  `json:"stalls,omitempty"`
	StallSeconds float64 `json:"stall_seconds,omitempty"`
	// ApplySeconds is wall time spent in the serial barrier replay — the
	// Amdahl term that bounds scaling.
	ApplySeconds float64 `json:"apply_seconds,omitempty"`
	// WindowSeconds is spine wall time inside windows (posting work,
	// running its own domain stripe, waiting for workers — StallSeconds
	// is the waiting subset); BarrierSeconds is the barrier's replica
	// fold/resync and publish time outside the op replay. Together with
	// ApplySeconds they decompose runUntil's wall time (the per-run
	// PhaseProfile renders the decomposition).
	WindowSeconds  float64 `json:"window_seconds,omitempty"`
	BarrierSeconds float64 `json:"barrier_seconds,omitempty"`
}

// validatePdes rejects configurations the parallel engine cannot run
// soundly. Features that mutate shared state off the logged-op paths
// (dynamic rebalancing), depend on a single global time line mid-run
// (intra-run snapshots), or already own the run's engine choice
// (sharding, sampling, trace sources) are refused rather than silently
// degraded.
func (c Config) validatePdes() error {
	if c.Pdes < 0 {
		return fmt.Errorf("core: negative pdes worker count %d", c.Pdes)
	}
	if c.Pdes <= 1 {
		return nil
	}
	if c.Pdes > c.Cores {
		return fmt.Errorf("core: %d pdes workers exceed %d cores", c.Pdes, c.Cores)
	}
	if c.Shards > 1 {
		return fmt.Errorf("core: pdes and shards are mutually exclusive engines")
	}
	if c.Sample.Enabled() {
		return fmt.Errorf("core: pdes and interval sampling are mutually exclusive engines")
	}
	if c.RebalanceCycles > 0 {
		return fmt.Errorf("core: pdes does not support dynamic rebalancing")
	}
	if c.SnapshotRefs > 0 {
		return fmt.Errorf("core: pdes does not support mid-run snapshots")
	}
	if len(c.Sources) > 0 {
		return fmt.Errorf("core: pdes requires statistical generators, not trace sources")
	}
	return nil
}

// pdesDomain is one worker's partition of the machine: a set of active
// cores, their calendar, and private replicas of every contention
// tracker the in-window estimator charges.
type pdesDomain struct {
	id    int
	cores []int // physical core indices owned by this domain

	q       *sim.EventQueue
	now     sim.Cycle // time of the last event processed
	horizon sim.Cycle // exclusive upper bound of the current window

	// Contention-tracker replicas, re-based from the live models at
	// every barrier. netBase snapshots the state net was synced from so
	// the barrier can fold only this window's load delta.
	net, netBase *mesh.Model
	mem          *memctrl.Mem
	bankBusy     []sim.Cycle
	dirBusy      []sim.Cycle

	// prev* re-base the replica's cumulative counters so barrier folds
	// add exactly one window's traffic to the live totals.
	prevTransfers uint64
	prevHops      uint64
	prevNetWait   sim.Cycle
	prevMemReads  uint64
	prevMemWait   sim.Cycle

	// warm is the domain's in-window overlay of the frozen shared tier:
	// once a fetch or upgrade is estimated for a block, later estimates
	// in the same window see its effect (bank residency, directory
	// sharers, dir-cache warmth) instead of re-paying the cold path the
	// sequential engine pays only once. Cleared at every barrier, after
	// which the replayed live tier carries the state.
	warm map[sim.Addr]coherence.Entry

	stats    []vm.Stats  // in-window per-VM scratch (Refs/PrivMisses/Upgrades/MissLatSum)
	touch    [][]uint64  // per-VM footprint shadow bitmaps, folded via MergeTouched
	pend     []pdesPending
	ops      []pdesOp
	switches uint64

	// Phase accounting: wall time draining this domain's calendar and
	// lifetime op-log length. Written by whichever executor runs the
	// domain, read by the spine only after the window's completion
	// handshake (wdone) — the same ordering that protects ops.
	busySeconds float64
	opsTotal    uint64
}

// pdesEngine owns the worker domains of one System.
type pdesEngine struct {
	s     *System
	stats PdesStats

	window  sim.Cycle
	domains []*pdesDomain

	// Execution decouples from partition: the domain count (result-
	// visible; it fixes the core partition and the merge order) comes
	// from cfg.Pdes, while the executor count adapts to the host. Worker
	// goroutine w runs domains w+1, w+1+execs, ...; the spine runs
	// domains 0, execs, 2*execs, ... inline. On a single-CPU host execs
	// is 1 and no goroutines are spawned — same results, no spin-waste.
	execs int
	rings []*sim.TaskRing // one SPSC ring per worker (executors 1..execs-1)
	wseq  []uint32        // per-worker window sequence (spine-owned)
	wdone []atomic.Uint32 // per-worker completion, stored by the worker
	wg    sync.WaitGroup

	opIdx []int // reusable merge cursors for the barrier replay
	// applyByGroup counts replayed ops per LLC bank group over the run —
	// the per-bank breakdown of the serial replay term (which banks the
	// Amdahl bottleneck actually touches).
	applyByGroup []uint64

	tr    *obs.Tracer
	lanes []int
}

// newPdesEngine builds the engine for s (cfg.Pdes > 1 validated).
// Worker goroutines start in start(), not here.
func newPdesEngine(s *System) *pdesEngine {
	cfg := &s.cfg
	e := &pdesEngine{s: s, window: cfg.PdesWindow}
	if e.window <= 0 {
		e.window = DefaultPdesWindow
	}

	// Partition the ACTIVE cores round-robin across up to Pdes domains.
	// Workloads that light up few cores (the isolation sweeps) would
	// leave VM- or group-contiguous partitions empty; round-robin keeps
	// every domain loaded whenever there are at least Pdes active cores.
	var active []int
	for c := range s.cores {
		if s.cores[c].active {
			active = append(active, c)
		}
	}
	nd := cfg.Pdes
	if nd > len(active) {
		nd = len(active)
	}
	e.stats.Workers = cfg.Pdes
	e.stats.Domains = nd
	e.stats.Window = e.window
	for d := 0; d < nd; d++ {
		e.domains = append(e.domains, &pdesDomain{id: d})
	}
	for i, c := range active {
		d := e.domains[i%nd]
		d.cores = append(d.cores, c)
	}
	for _, d := range e.domains {
		d.q = sim.NewEventQueue(len(d.cores))
		d.net = mesh.NewModel(s.geom, cfg.PipeStages)
		d.netBase = mesh.NewModel(s.geom, cfg.PipeStages)
		d.mem = memctrl.New(cfg.Mem)
		d.bankBusy = make([]sim.Cycle, len(s.bankBusy))
		d.dirBusy = make([]sim.Cycle, len(s.dirBusy))
		d.warm = make(map[sim.Addr]coherence.Entry, 1<<10)
		d.stats = make([]vm.Stats, len(s.vms))
		d.pend = make([]pdesPending, len(d.cores))
		d.touch = make([][]uint64, len(s.vms))
		for v, m := range s.vms {
			d.touch[v] = make([]uint64, m.TouchWords())
		}
	}

	// Detach the workload generators' shared cursors: threads of one VM
	// can land in different domains, and the per-thread replicas keep
	// concurrent ring refills race-free while preserving each cursor's
	// collective pacing (see workload.DetachCursors).
	for _, m := range s.vms {
		if g, ok := m.Gen.(*workload.Generator); ok {
			g.DetachCursors()
		}
	}

	e.execs = runtime.GOMAXPROCS(0)
	if e.execs > len(e.domains) {
		e.execs = len(e.domains)
	}
	if e.execs < 1 {
		e.execs = 1
	}
	e.rings = make([]*sim.TaskRing, e.execs-1)
	for w := range e.rings {
		e.rings[w] = sim.NewTaskRing(4)
	}
	e.wseq = make([]uint32, e.execs-1)
	e.wdone = make([]atomic.Uint32, e.execs-1)
	e.opIdx = make([]int, len(e.domains))
	e.applyByGroup = make([]uint64, len(s.banks))
	return e
}

// attachTracer acquires one trace lane per worker domain. Idempotent; a
// nil tracer leaves tracing off.
func (e *pdesEngine) attachTracer(tr *obs.Tracer) {
	if tr == nil || e.tr != nil {
		return
	}
	e.tr = tr
	e.lanes = make([]int, len(e.rings))
	for w := range e.lanes {
		e.lanes[w] = tr.AcquireLane()
	}
}

// start seeds every domain calendar with its cores' first issue events,
// syncs the replicas to the live contention state, and launches the
// worker goroutines.
func (e *pdesEngine) start() {
	s := e.s
	for _, d := range e.domains {
		for li := range d.cores {
			d.q.Push(0, li<<1|evIssue)
		}
		copy(d.bankBusy, s.bankBusy)
		copy(d.dirBusy, s.dirBusy)
		d.mem.SyncBusy(s.mem)
		d.net.SyncLoad(s.net)
		d.netBase.SyncLoad(s.net)
		d.rebase()
	}
	for w := range e.rings {
		e.wg.Add(1)
		go e.workerLoop(w)
	}
}

// stop drains and joins the workers and releases their trace lanes.
func (e *pdesEngine) stop() {
	for _, r := range e.rings {
		r.Close()
	}
	e.wg.Wait()
	if e.tr != nil {
		for _, lane := range e.lanes {
			e.tr.ReleaseLane(lane)
		}
		e.tr = nil
	}
}

// workerLoop runs executor w+1's domain stripe: park on the ring, drain
// one window per posted sequence number, publish completion through the
// worker's done slot.
func (e *pdesEngine) workerLoop(w int) {
	defer e.wg.Done()
	tr, lane := e.tr, 0
	if tr != nil {
		lane = e.lanes[w]
	}
	ring := e.rings[w]
	for {
		seq, ok := ring.Pop()
		if !ok {
			return
		}
		if tr != nil {
			tr.Begin(lane, "window")
		}
		for i := w + 1; i < len(e.domains); i += e.execs {
			d := e.domains[i]
			t0 := time.Now()
			d.run(e.s)
			d.busySeconds += time.Since(t0).Seconds()
		}
		if tr != nil {
			tr.End(lane)
		}
		e.wdone[w].Store(seq)
	}
}

// runUntil advances the machine window by window until every active
// core has issued at least target references. The check runs at
// barriers only, so runs overshoot by at most one window's issue rate —
// deterministically, since the window schedule is deterministic.
func (e *pdesEngine) runUntil(target uint64) {
	s := e.s
	for !e.reached(target) {
		winStart := time.Now()
		h := e.nextHorizon()
		for _, d := range e.domains {
			d.horizon = h
		}
		for w := range e.rings {
			e.wseq[w]++
			e.rings[w].Push(e.wseq[w])
		}
		for i := 0; i < len(e.domains); i += e.execs {
			d := e.domains[i]
			t0 := time.Now()
			d.run(s)
			d.busySeconds += time.Since(t0).Seconds()
		}
		e.awaitWorkers()
		e.stats.WindowSeconds += time.Since(winStart).Seconds()
		e.barrier()
	}
	// Fold the cumulative footprint shadows so TouchedBlocks is exact at
	// phase ends. MergeTouched is idempotent, so folding the same shadow
	// again after the next phase is safe.
	for v, m := range s.vms {
		for _, d := range e.domains {
			m.MergeTouched(d.touch[v])
		}
	}
}

// reached reports whether every active core has issued target refs.
func (e *pdesEngine) reached(target uint64) bool {
	for _, d := range e.domains {
		for _, c := range d.cores {
			if e.s.cores[c].refs < target {
				return false
			}
		}
	}
	return true
}

// nextHorizon returns the exclusive bound of the next window: one
// window width past the earliest pending event anywhere. Every pending
// event is at or past the previous horizon, so horizons strictly
// advance.
func (e *pdesEngine) nextHorizon() sim.Cycle {
	first := true
	var min sim.Cycle
	for _, d := range e.domains {
		if d.q.Len() == 0 {
			continue
		}
		t, _ := d.q.Peek()
		if first || t < min {
			min, first = t, false
		}
	}
	return min + e.window
}

// awaitWorkers spins the spine until every worker has drained its
// stripe of the posted window, yielding so the owing workers can run.
func (e *pdesEngine) awaitWorkers() {
	for w := range e.rings {
		if e.wdone[w].Load() == e.wseq[w] {
			continue
		}
		e.stats.Stalls++
		start := time.Now()
		for e.wdone[w].Load() != e.wseq[w] {
			runtime.Gosched()
		}
		e.stats.StallSeconds += time.Since(start).Seconds()
	}
}

// run drains one domain's calendar up to (exclusive) its horizon.
func (d *pdesDomain) run(s *System) {
	h := d.horizon
	for d.q.Len() > 0 {
		t, payload := d.q.Peek()
		if t >= h {
			break
		}
		d.q.Pop()
		d.now = t
		li := payload >> 1
		if payload&1 == evIssue {
			d.issue(s, t, li)
		} else {
			d.complete(s, t, li)
		}
	}
}

// issue executes one core's next reference: draw it, walk the private
// hierarchy, and either finish immediately (hit) or schedule the
// completion one estimated miss latency out.
func (d *pdesDomain) issue(s *System, t sim.Cycle, li int) {
	c := d.cores[li]
	cs := &s.cores[c]
	if cs.cur >= len(cs.queue) {
		cs.cur = 0
	}
	run := cs.queue[cs.cur]
	m := s.vms[run.vmID]

	acc := m.Gen.Next(run.thread)
	blk := acc.Block
	d.touch[run.vmID][blk/64] |= 1 << (blk % 64)
	addr := m.AddrOf(blk)
	st := &d.stats[run.vmID]
	st.Refs++
	cs.refs++

	lat, fillSt, miss := d.walk(s, t, c, run.vmID, addr, acc.Write)
	if miss {
		st.PrivMisses++
		st.MissLatSum += lat
		d.ops = append(d.ops, pdesOp{
			t: t, addr: addr, lat: uint32(lat),
			kind: opFetch, core: uint8(c), vm: uint8(run.vmID),
			region: uint8(s.regions[run.vmID].Of(blk)), write: acc.Write,
		})
		d.pend[li] = pdesPending{addr: addr, vmID: int32(run.vmID), st: fillSt}
		d.q.Push(t+lat, li<<1|evComplete)
		return
	}
	d.finish(s, t+lat, li, c, run.vmID)
}

// complete installs an in-flight miss's fill into the issuing core's
// private hierarchy and schedules the next issue.
func (d *pdesDomain) complete(s *System, t sim.Cycle, li int) {
	c := d.cores[li]
	p := &d.pend[li]
	vtag := uint8(p.vmID)
	l1 := s.l1[c]
	if w1, ok := l1.Probe(p.addr); ok {
		// Already resident (a racing window re-filled it); only ever
		// raise the state.
		if p.st == cache.Modified {
			l1.SetState(w1, cache.Modified)
		}
	} else {
		victim, evicted, _ := l1.Insert(p.addr, p.st, vtag)
		if evicted {
			d.ops = append(d.ops, pdesOp{
				t: t, addr: victim.Tag, kind: opEvictL1,
				core: uint8(c), vm: vtag, write: victim.State == cache.Modified,
			})
			s.l0[c].Invalidate(victim.Tag)
		}
	}
	s.fillL0(c, p.addr, p.st, vtag)
	d.finish(s, t, li, c, int(p.vmID))
}

// finish draws the think time, applies over-commit rotation, and
// schedules the core's next issue. Mirrors the sequential loop's tail;
// the RNG stream is consumed one draw per reference in the same order,
// so a fixed partition replays fixed streams.
func (d *pdesDomain) finish(s *System, at sim.Cycle, li, c, vmID int) {
	cs := &s.cores[c]
	next := at + sim.Cycle(cs.rng.Uint64n(s.thinkOf[vmID]))
	if len(cs.queue) > 1 && next >= cs.sliceEnd {
		cs.cur = (cs.cur + 1) % len(cs.queue)
		next += s.switchCost()
		cs.sliceEnd = next + s.cfg.TimesliceCycles
		d.switches++
	}
	d.q.Push(next, li<<1|evIssue)
}

// walk is the in-window private-hierarchy walk: the parallel engine's
// analogue of accessTM. Hits (the overwhelming majority) execute
// completely; misses and coherence upgrades are classified against the
// frozen shared tier, charged a replica-estimated latency, and logged
// for barrier replay. It returns (latency, fill state, missed).
func (d *pdesDomain) walk(s *System, t sim.Cycle, c, vmID int, addr sim.Addr, write bool) (sim.Cycle, cache.State, bool) {
	l0 := s.l0[c]
	if w0, ok := l0.Lookup(addr); ok {
		if !write {
			return DefaultL0Latency, 0, false
		}
		l1 := s.l1[c]
		if w1, ok1 := l1.Probe(addr); ok1 {
			switch l1.State(w1) {
			case cache.Modified:
				l0.SetState(w0, cache.Modified)
				return DefaultL0Latency, 0, false
			case cache.Exclusive:
				// Silent E->M upgrade; ownership recorded at the barrier.
				l1.SetState(w1, cache.Modified)
				l0.SetState(w0, cache.Modified)
				d.logUpgrade(t, c, vmID, addr)
				return DefaultL0Latency, 0, false
			default:
				lat := d.estimateUpgrade(s, t, c, addr)
				d.stats[vmID].Upgrades++
				l1.SetState(w1, cache.Modified)
				l0.SetState(w0, cache.Modified)
				d.logUpgrade(t, c, vmID, addr)
				return lat, 0, false
			}
		}
		// Cross-window L0/L1 divergence (the sequential engine asserts
		// inclusion here); drop the orphan and take the miss path.
		l0.Invalidate(addr)
	}

	l1 := s.l1[c]
	vtag := uint8(vmID)
	if w1, ok := l1.Lookup(addr); ok {
		switch {
		case !write:
			s.fillL0(c, addr, l1.State(w1), vtag)
			return DefaultL1Latency, 0, false
		case l1.State(w1) == cache.Modified:
			s.fillL0(c, addr, cache.Modified, vtag)
			return DefaultL1Latency, 0, false
		case l1.State(w1) == cache.Exclusive:
			l1.SetState(w1, cache.Modified)
			s.fillL0(c, addr, cache.Modified, vtag)
			d.logUpgrade(t, c, vmID, addr)
			return DefaultL1Latency, 0, false
		default:
			lat := d.estimateUpgrade(s, t, c, addr)
			d.stats[vmID].Upgrades++
			l1.SetState(w1, cache.Modified)
			s.fillL0(c, addr, cache.Modified, vtag)
			d.logUpgrade(t, c, vmID, addr)
			return lat, 0, false
		}
	}

	lat, fillSt := d.estimateFetch(s, t, c, addr, write)
	return lat, fillSt, true
}

// logUpgrade appends a store-exclusivity operation for barrier replay.
func (d *pdesDomain) logUpgrade(t sim.Cycle, c, vmID int, addr sim.Addr) {
	d.ops = append(d.ops, pdesOp{
		t: t, addr: addr, kind: opUpgrade,
		core: uint8(c), vm: uint8(vmID), write: true,
	})
}

// Replica-charging timing helpers: same arithmetic as the System's
// bankAccess/dirVisit/route, against this domain's private trackers.

func (d *pdesDomain) route(at sim.Cycle, from, to, flits int) sim.Cycle {
	if from == to {
		return at
	}
	return d.net.Latency(at, from, to, flits)
}

func (d *pdesDomain) bankAccess(at sim.Cycle, node int) sim.Cycle {
	start := sim.Max(at, d.bankBusy[node])
	d.bankBusy[node] = start + bankOccupancy
	return start + DefaultLLCLatency
}

func (d *pdesDomain) dirVisit(at sim.Cycle, home int) sim.Cycle {
	start := sim.Max(at, d.dirBusy[home])
	d.dirBusy[home] = start + dirOccupancy
	return start + dirLatency
}

// probeEntry snapshots the frozen directory entry for addr (a zero
// no-sharer entry when absent).
func (d *pdesDomain) probeEntry(s *System, addr sim.Addr) coherence.Entry {
	if pe, ok := s.dir.Probe(addr); ok {
		return *pe
	}
	return coherence.NewEntry()
}

// warmView returns the estimator's view of addr's shared-tier state: the
// in-window overlay when this domain already touched the block this
// window (so repeats see a warmed tier, as they would sequentially), the
// frozen live tier otherwise. The returned bools are (bank g holds the
// line, the view came from the overlay — overlay blocks are dir-cache
// warm by construction).
func (d *pdesDomain) warmView(s *System, addr sim.Addr, g int) (coherence.Entry, bool, bool) {
	if w, ok := d.warm[addr]; ok {
		return w, w.HasL2(g), true
	}
	ent := d.probeEntry(s, addr)
	_, bHit := s.banks[g].Probe(addr)
	return ent, bHit, false
}

// estimateFetch mirrors fetchTM's timing against the frozen shared tier
// and the domain's contention replicas, and derives the private fill
// state the completion event will install. Returns (latency, fill
// state).
func (d *pdesDomain) estimateFetch(s *System, now sim.Cycle, c int, addr sim.Addr, write bool) (sim.Cycle, cache.State) {
	g := s.groupOf(c)
	bnode := s.bankNode(g, addr)
	t := d.bankAccess(now, bnode)

	ent, bHit, warmed := d.warmView(s, addr, g)

	if bHit {
		if o := int(ent.L1Owner); o >= 0 && o != c {
			at := d.route(t, bnode, o, CtrlFlits) + DefaultL1Latency
			t = d.route(at, o, c, DataFlits)
		}
	} else {
		home := s.dir.Home(addr)
		dirHit := warmed || s.dirCache.Peek(home, addr)
		dirT := d.route(t, bnode, home, CtrlFlits)
		dirT = d.dirVisit(dirT, home)
		onChipDirT := dirT
		if !dirHit {
			onChipDirT += s.cfg.Mem.Latency
		}
		switch {
		case ent.L1Owner >= 0 && int(ent.L1Owner) != c:
			o := int(ent.L1Owner)
			at := d.route(onChipDirT, home, o, CtrlFlits) + DefaultL1Latency
			t = d.route(at, o, c, DataFlits)
		case ent.L2Owner >= 0 && int(ent.L2Owner) != g:
			sn := s.bankNode(int(ent.L2Owner), addr)
			at := d.route(onChipDirT, home, sn, CtrlFlits)
			at = d.bankAccess(at, sn)
			t = d.route(at, sn, c, DataFlits)
		case ent.OtherL2(g) >= 0:
			sn := s.bankNode(ent.OtherL2(g), addr)
			at := d.route(onChipDirT, home, sn, CtrlFlits)
			at = d.bankAccess(at, sn)
			t = d.route(at, sn, c, DataFlits)
		default:
			mn := s.mem.Node(addr)
			at := d.route(dirT, home, mn, CtrlFlits)
			at = d.mem.Read(at, addr)
			t = d.route(at, mn, c, DataFlits)
		}
	}

	if write {
		l2 := ent.L2Sharers | 1<<uint(g)
		if bits.OnesCount64(l2) > 1 || ent.L1Sharers&^(1<<uint(c)) != 0 {
			t = d.estimateInvalidate(s, t, c, addr, &ent)
		}
	}

	var fillSt cache.State
	switch {
	case write:
		fillSt = cache.Modified
	case ent.L1Sharers&^(1<<uint(c)) == 0 && ent.L2Sharers&^(1<<uint(g)) == 0 && !ent.Dirty():
		fillSt = cache.Exclusive
	default:
		fillSt = cache.Shared
	}

	// Fold the fetch's effect into the overlay so later in-window
	// estimates see a warmed tier.
	if write {
		ent = coherence.Entry{L1Sharers: 1 << uint(c), L2Sharers: 1 << uint(g), L1Owner: int8(c), L2Owner: int8(g)}
	} else {
		ent.AddL1(c)
		ent.AddL2(g)
		if fillSt == cache.Exclusive {
			ent.L1Owner, ent.L2Owner = int8(c), int8(g)
		}
	}
	d.warm[addr] = ent
	return t - now, fillSt
}

// estimateUpgrade mirrors the store-upgrade latency (home visit plus
// slowest invalidation ack) against the frozen directory entry.
func (d *pdesDomain) estimateUpgrade(s *System, now sim.Cycle, c int, addr sim.Addr) sim.Cycle {
	g := s.groupOf(c)
	ent, _, _ := d.warmView(s, addr, g)
	t := d.estimateInvalidate(s, now, c, addr, &ent) - now
	d.warm[addr] = coherence.Entry{L1Sharers: 1 << uint(c), L2Sharers: 1 << uint(g), L1Owner: int8(c), L2Owner: int8(g)}
	return t
}

// estimateInvalidate mirrors invalidateOthersTM's timing: route to the
// home, visit the directory, fan invalidations out to every frozen
// sharer, and return the slowest ack's absolute arrival time.
func (d *pdesDomain) estimateInvalidate(s *System, at sim.Cycle, c int, addr sim.Addr, ent *coherence.Entry) sim.Cycle {
	home := s.dir.Home(addr)
	t := d.route(at, c, home, CtrlFlits)
	_, warmed := d.warm[addr]
	dirHit := warmed || s.dirCache.Peek(home, addr)
	t = d.dirVisit(t, home)
	if !dirHit {
		t += s.cfg.Mem.Latency
	}
	g := s.groupOf(c)
	ackT := t
	for m := ent.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		a := d.route(t, home, o, CtrlFlits)
		a = d.route(a, o, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
	}
	for m := ent.L2Sharers &^ (1 << uint(g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		node := s.bankNode(b, addr)
		a := d.route(t, home, node, CtrlFlits)
		a = d.route(a, node, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
	}
	if ackT == t {
		ackT = d.route(t, home, c, CtrlFlits)
	}
	return ackT
}

// applyTiming is the barrier-replay timing model: the latency side is
// free (the in-window estimators already charged the contention
// replicas), but functional side effects that only exist on the shared
// tier — directory-cache warming, dirty writebacks reaching the memory
// controllers — still happen, and counters land in the real per-VM
// stats.
type applyTiming struct{}

func (applyTiming) route(s *System, at sim.Cycle, from, to, flits int) sim.Cycle { return at }

func (applyTiming) bankAccess(s *System, at sim.Cycle, node int) sim.Cycle { return at }

func (applyTiming) dirVisit(s *System, at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	return at, s.dirCache.Access(home, addr)
}

func (applyTiming) memRead(s *System, at sim.Cycle, addr sim.Addr) sim.Cycle { return at }

func (applyTiming) writeback(s *System, at sim.Cycle, addr sim.Addr) {
	s.mem.Writeback(at, addr)
}

func (applyTiming) memPenalty(s *System) sim.Cycle { return 0 }

func (applyTiming) stats(s *System, vmID int) *vm.Stats { return &s.vms[vmID].Stats }

// applyOps replays every domain's operation log against the live shared
// tier in one deterministic total order: ascending time, ties broken by
// domain index. Per-domain logs are already time-sorted (events pop in
// order), so this is a zero-allocation k-way merge.
func (e *pdesEngine) applyOps() {
	s := e.s
	idx := e.opIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bt sim.Cycle
		for i, d := range e.domains {
			if idx[i] >= len(d.ops) {
				continue
			}
			if t := d.ops[idx[i]].t; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			break
		}
		op := &e.domains[best].ops[idx[best]]
		idx[best]++
		e.applyByGroup[s.groupOf(int(op.core))]++
		s.now = op.t
		switch op.kind {
		case opFetch:
			s.applyFetch(op)
			if s.hooks != nil {
				s.hooks.ObserveMissLat(uint64(op.lat))
			}
		case opUpgrade:
			s.applyUpgrade(op)
		default:
			s.applyEvictL1(op)
		}
		e.stats.Ops++
	}
	for _, d := range e.domains {
		d.ops = d.ops[:0]
	}
}

// applyFetch replays one private miss's shared-tier transitions: bank
// lookup/insert, directory update, supplier classification (which is
// where the C2C/memory counters are decided — against live state, not
// the frozen view the estimate used). The issuing core's private fill
// happened in-window at the completion event, so no private caches are
// touched except to repair a stale Exclusive guess.
func (s *System) applyFetch(op *pdesOp) {
	c := int(op.core)
	vmID := int(op.vm)
	g := s.groupOf(c)
	addr := op.addr
	vtag := uint8(vmID)
	st := &s.vms[vmID].Stats
	bank := s.banks[g]

	bw, bHit := bank.Lookup(addr)
	e := s.dir.Get(addr)
	if bHit {
		e.AddL2(g) // repair: a racing window's view may have diverged
		if o := int(e.L1Owner); o >= 0 && o != c {
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		}
	} else {
		st.LLCMisses++
		st.RegionMisses[op.region]++
		home := s.dir.Home(addr)
		s.dirCache.Access(home, addr)
		switch o := int(e.L1Owner); {
		case o >= 0 && o != c:
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		case e.L2Owner >= 0 && int(e.L2Owner) != g:
			b := int(e.L2Owner)
			if sw, ok := s.banks[b].Probe(addr); ok {
				if s.banks[b].State(sw) == cache.Modified {
					s.banks[b].SetState(sw, cache.Owned)
				}
				st.C2CDirty++
			} else {
				e.L2Owner = -1
				st.MemReads++
			}
		case e.OtherL2(g) >= 0:
			st.C2CClean++
		default:
			st.MemReads++
		}
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted, nw := bank.Insert(addr, bankState, vtag)
		bw = nw
		if evicted {
			evictBankLineTM(s, applyTiming{}, g, victim)
			e = s.dir.Get(addr)
		}
		e.AddL2(g)
	}

	if op.write && (e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0) {
		_, e = invalidateOthersTM(s, applyTiming{}, op.t, c, addr, st)
	}
	s.demoteExclusives(c, addr, e)
	e.AddL1(c)
	if op.write {
		e.L1Owner = int8(c)
		e.L2Owner = int8(g)
		bank.SetState(bw, cache.Modified)
	} else if m := e.L1Sharers &^ (1 << uint(c)); m != 0 || e.Dirty() || e.L2Count() > 1 {
		// The in-window fill may have guessed Exclusive from a view that
		// a racing domain has since invalidated; demote our own copies
		// so silent E->M upgrades stay coherent.
		if w, ok := s.l1[c].Probe(addr); ok && s.l1[c].State(w) == cache.Exclusive {
			s.l1[c].SetState(w, cache.Shared)
		}
		if w, ok := s.l0[c].Probe(addr); ok && s.l0[c].State(w) == cache.Exclusive {
			s.l0[c].SetState(w, cache.Shared)
		}
	}
}

// applyUpgrade replays a store upgrade (silent E->M or Shared->M): the
// issuing core took ownership in-window; here the directory, the other
// sharers and the group bank catch up. A remote write that applied
// earlier in the merge may have invalidated the line from under the
// upgrade — then the core's copy is gone and the op is stale.
func (s *System) applyUpgrade(op *pdesOp) {
	c := int(op.core)
	addr := op.addr
	w1, ok := s.l1[c].Probe(addr)
	if !ok {
		return
	}
	st := &s.vms[int(op.vm)].Stats
	e := s.dir.Get(addr)
	if e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0 {
		_, e = invalidateOthersTM(s, applyTiming{}, op.t, c, addr, st)
	}
	e.AddL1(c)
	e.L1Owner = int8(c)
	g := s.groupOf(c)
	if bw, okb := s.banks[g].Probe(addr); okb {
		s.banks[g].SetState(bw, cache.Modified)
		e.L2Owner = int8(g)
	}
	s.l1[c].SetState(w1, cache.Modified)
	if w0, ok0 := s.l0[c].Probe(addr); ok0 {
		s.l0[c].SetState(w0, cache.Modified)
	}
}

// applyEvictL1 replays an in-window L1 eviction: dirty victims fold
// into the group bank and the directory drops the private sharer —
// exactly the sequential evictPrivateVictim, driven from the log.
func (s *System) applyEvictL1(op *pdesOp) {
	st := cache.Shared
	if op.write {
		st = cache.Modified
	}
	s.evictPrivateVictim(int(op.core), cache.Line{Tag: op.addr, State: st})
}

// barrier folds every domain's window into the live machine: contention
// replicas (busy-until by max, mesh load by delta, counters by delta),
// per-VM scratch stats, then the serial op replay, then replica resync
// for the next window.
func (e *pdesEngine) barrier() {
	s := e.s
	barStart := time.Now()
	var maxT sim.Cycle
	for _, d := range e.domains {
		d.opsTotal += uint64(len(d.ops))
		for i, b := range d.bankBusy {
			if b > s.bankBusy[i] {
				s.bankBusy[i] = b
			}
		}
		for i, b := range d.dirBusy {
			if b > s.dirBusy[i] {
				s.dirBusy[i] = b
			}
		}
		s.mem.FoldBusyMax(d.mem)
		s.net.FoldLoadDelta(d.net, d.netBase)
		s.net.Transfers += d.net.Transfers - d.prevTransfers
		s.net.HopsSum += d.net.HopsSum - d.prevHops
		s.net.WaitCycles += d.net.WaitCycles - d.prevNetWait
		s.mem.Reads += d.mem.Reads - d.prevMemReads
		s.mem.WaitSum += d.mem.WaitSum - d.prevMemWait
		for v := range d.stats {
			sv := &s.vms[v].Stats
			dv := &d.stats[v]
			sv.Refs += dv.Refs
			sv.PrivMisses += dv.PrivMisses
			sv.Upgrades += dv.Upgrades
			sv.MissLatSum += dv.MissLatSum
			*dv = vm.Stats{}
		}
		s.Switches += d.switches
		d.switches = 0
		if d.now > maxT {
			maxT = d.now
		}
	}

	applyStart := time.Now()
	e.applyOps()
	applySec := time.Since(applyStart).Seconds()
	e.stats.ApplySeconds += applySec
	e.stats.Windows++

	if maxT > s.now {
		s.now = maxT
	}
	var refs uint64
	for c := range s.cores {
		refs += s.cores[c].refs
	}
	s.globalRefs = refs

	// Resync the replicas from the folded live state for the next
	// window; the replayed live tier now carries the overlay's effects.
	for _, d := range e.domains {
		copy(d.bankBusy, s.bankBusy)
		copy(d.dirBusy, s.dirBusy)
		d.mem.SyncBusy(s.mem)
		d.net.SyncLoad(s.net)
		d.netBase.SyncLoad(s.net)
		d.rebase()
		clear(d.warm)
	}

	if s.hooks != nil {
		s.publishLive()
	}
	e.stats.BarrierSeconds += time.Since(barStart).Seconds() - applySec
}

// rebase records the replica counters' current values so the next
// barrier folds only the coming window's deltas.
func (d *pdesDomain) rebase() {
	d.prevTransfers = d.net.Transfers
	d.prevHops = d.net.HopsSum
	d.prevNetWait = d.net.WaitCycles
	d.prevMemReads = d.mem.Reads
	d.prevMemWait = d.mem.WaitSum
}
