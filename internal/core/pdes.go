// Split-transaction parallel discrete-event engine.
//
// The sequential event loop executes every memory reference atomically
// at event-pop time, so the conservative lookahead between any two
// cores is zero and -shards (shard.go) can only offload the functional
// plane. -pdes=N takes the other path the roadmap left open: it remodels
// each reference as a split transaction — an *issue* event that walks
// the requester's private hierarchy and an in-flight *completion* event
// scheduled one estimated miss latency later — and partitions the
// active cores into N domains, each advancing its own calendar
// independently through bounded time windows.
//
// Inside a window a domain touches only state it owns or state that is
// frozen for everyone:
//
//   - private L0/L1 caches of its cores (hits execute fully in-window);
//   - replicas of the contention trackers (mesh load, bank/directory
//     occupancy, memory-controller queues), re-based from the live
//     models at every barrier;
//   - the shared tier (LLC banks, directory, directory caches) strictly
//     read-only, through Probe/Peek.
//
// Misses, upgrades and private evictions are classified against that
// frozen shared tier, charged an in-window latency *estimate* from the
// replicas, and logged as operations. At each window barrier the spine
// replays the merged, time-ordered operation log against the live
// shared tier (banks, directory, memory controllers), so every
// functional transition still happens exactly once, in one total order,
// under the same coherence walk the sequential engine uses.
//
// The window is therefore not a correctness bound but an accuracy knob:
// cross-domain coherence actions land up to one window late, which
// perturbs the interleaving the way relaxed-synchronization simulators
// (Graphite, Sniper, Pac-Sim — see PAPERS.md) accept and bound by
// measurement. Accordingly -pdes results are gated the way sampling is:
// harness.CompareParallelRun / CompareParallelFigures quantify the
// per-VM deviation from the sequential engine, and runs are
// deterministic for a fixed (seed, Pdes, PdesWindow) — domains, their
// event orders, the op-log merge and the barrier cadence are all
// reproducible, with no wall-clock input to any simulated value.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"consim/internal/cache"
	"consim/internal/coherence"
	"consim/internal/memctrl"
	"consim/internal/mesh"
	"consim/internal/obs"
	"consim/internal/sim"
	"consim/internal/vm"
	"consim/internal/workload"
)

// DefaultPdesWindow is the default width, in cycles, of one parallel
// window. Windows far wider than the ~14-cycle true lookahead trade
// cross-domain timeliness for barrier amortization; the bench sweep
// (cmd/bench -pdessweep) records where the accuracy bound starts to
// move.
const DefaultPdesWindow = sim.Cycle(16384)

// Event payload encoding: local core index << 1 | kind.
const (
	evIssue    = 0
	evComplete = 1
)

// Operation kinds in the per-domain replay log.
const (
	opFetch   = uint8(0)
	opUpgrade = uint8(1)
	opEvictL1 = uint8(2)
)

// Worker-task kinds posted through the SPSC rings. e.task is written by
// the spine before any ring push of the task's sequence number; the
// ring's release/acquire pair publishes it to the workers.
const (
	taskWindow  = uint8(0) // unpipelined: drain one full window
	taskWindowA = uint8(1) // pipelined: drain until the first uncovered issue
	taskWindowB = uint8(2) // pipelined: resume the parked issue, drain to horizon
	taskReplay  = uint8(3) // apply this executor's share of the replay streams
)

// pdesOp is one logged shared-tier transition, replayed on the spine at
// the window barrier.
type pdesOp struct {
	t    sim.Cycle
	addr sim.Addr
	lat  uint32 // in-window latency estimate (opFetch; feeds ObserveMissLat)
	kind uint8
	core uint8
	vm   uint8
	region uint8 // footprint region of the missing block (opFetch)
	write  bool
}

// pdesPending is one core's in-flight miss: the fill the completion
// event installs.
type pdesPending struct {
	addr sim.Addr
	vmID int32
	st   cache.State
}

// PdesStats reports what the parallel engine did during a run; all
// fields are zero for the sequential engine.
type PdesStats struct {
	// Workers is the configured -pdes count, Domains the worker domains
	// actually formed (bounded by the active-core count).
	Workers int `json:"workers,omitempty"`
	Domains int `json:"domains,omitempty"`
	// Window is the effective window width in cycles.
	Window sim.Cycle `json:"window,omitempty"`
	// Windows counts barrier-to-barrier rounds, Ops the shared-tier
	// operations replayed at barriers.
	Windows uint64 `json:"windows,omitempty"`
	Ops     uint64 `json:"ops,omitempty"`
	// Stalls counts barriers where the spine waited on a worker domain,
	// and StallSeconds the wall time it spent waiting — the engine's
	// load-imbalance gauge.
	Stalls       uint64  `json:"stalls,omitempty"`
	StallSeconds float64 `json:"stall_seconds,omitempty"`
	// ApplySeconds is wall time spent in the barrier replay — serial
	// merge, sharded per-group application and deferred cross-group
	// merge together. With ReplayWorkers <= 1 the whole term is the
	// serial Amdahl term that bounds scaling; with sharding,
	// ReplayParallelSeconds is the subset spent in the per-group
	// parallel pass and ReplayMergeSeconds the subset in the
	// deterministic cross-group merge, so the *serial residue* is
	// ApplySeconds - ReplayParallelSeconds.
	ApplySeconds float64 `json:"apply_seconds,omitempty"`
	// ReplayWorkers is the configured replay shard count (0/1 = serial
	// replay); Pipelined reports whether window/replay pipelining ran.
	ReplayWorkers int  `json:"replay_workers,omitempty"`
	Pipelined     bool `json:"pipelined,omitempty"`
	// ReplayParallelSeconds is replay wall time spent applying per-group
	// op streams (parallelizable across replay executors);
	// ReplayMergeSeconds is the serial deferred merge of cross-group
	// state (memory-controller writebacks, directory-cache visits,
	// entry releases). Both are subsets of ApplySeconds.
	ReplayParallelSeconds float64 `json:"replay_parallel_seconds,omitempty"`
	ReplayMergeSeconds    float64 `json:"replay_merge_seconds,omitempty"`
	// PipelineOverlapSeconds is deferred-merge wall time that ran
	// overlapped with the next window's in-window phase — replay work
	// moved off the critical path (the overlap is realizable only with
	// idle host cores; on a 1-CPU host it records opportunity, not
	// savings).
	PipelineOverlapSeconds float64 `json:"pipeline_overlap_seconds,omitempty"`
	// WindowSeconds is spine wall time inside windows (posting work,
	// running its own domain stripe, waiting for workers — StallSeconds
	// is the waiting subset); BarrierSeconds is the barrier's replica
	// fold/resync and publish time outside the op replay. Together with
	// ApplySeconds they decompose runUntil's wall time (the per-run
	// PhaseProfile renders the decomposition).
	WindowSeconds  float64 `json:"window_seconds,omitempty"`
	BarrierSeconds float64 `json:"barrier_seconds,omitempty"`
}

// validatePdes rejects configurations the parallel engine cannot run
// soundly. Features that mutate shared state off the logged-op paths
// (dynamic rebalancing), depend on a single global time line mid-run
// (intra-run snapshots), or already own the run's engine choice
// (sharding, sampling, trace sources) are refused rather than silently
// degraded.
func (c Config) validatePdes() error {
	if c.Pdes < 0 {
		return fmt.Errorf("core: negative pdes worker count %d", c.Pdes)
	}
	if c.PdesReplayWorkers < 0 {
		return fmt.Errorf("core: negative pdes replay worker count %d", c.PdesReplayWorkers)
	}
	if c.Pdes <= 1 {
		if c.PdesReplayWorkers > 1 {
			return fmt.Errorf("core: pdes replay workers require the parallel engine (Pdes > 1)")
		}
		if c.PdesPipeline {
			return fmt.Errorf("core: pdes pipelining requires the parallel engine (Pdes > 1)")
		}
		return nil
	}
	if c.PdesPipeline && c.PdesReplayWorkers < 2 {
		return fmt.Errorf("core: pdes pipelining requires PdesReplayWorkers >= 2")
	}
	if c.Pdes > c.Cores {
		return fmt.Errorf("core: %d pdes workers exceed %d cores", c.Pdes, c.Cores)
	}
	if c.Shards > 1 {
		return fmt.Errorf("core: pdes and shards are mutually exclusive engines")
	}
	if c.Sample.Enabled() {
		return fmt.Errorf("core: pdes and interval sampling are mutually exclusive engines")
	}
	if c.RebalanceCycles > 0 {
		return fmt.Errorf("core: pdes does not support dynamic rebalancing")
	}
	if c.SnapshotRefs > 0 {
		return fmt.Errorf("core: pdes does not support mid-run snapshots")
	}
	if len(c.Sources) > 0 {
		return fmt.Errorf("core: pdes requires statistical generators, not trace sources")
	}
	return nil
}

// pdesDomain is one worker's partition of the machine: a set of active
// cores, their calendar, and private replicas of every contention
// tracker the in-window estimator charges.
type pdesDomain struct {
	id    int
	cores []int // physical core indices owned by this domain

	q       *sim.EventQueue
	now     sim.Cycle // time of the last event processed
	horizon sim.Cycle // exclusive upper bound of the current window

	// Contention-tracker replicas, re-based from the live models at
	// every barrier. netBase snapshots the state net was synced from so
	// the barrier can fold only this window's load delta.
	net, netBase *mesh.Model
	mem          *memctrl.Mem
	bankBusy     []sim.Cycle
	dirBusy      []sim.Cycle

	// prev* re-base the replica's cumulative counters so barrier folds
	// add exactly one window's traffic to the live totals.
	prevTransfers uint64
	prevHops      uint64
	prevNetWait   sim.Cycle
	prevMemReads  uint64
	prevMemWait   sim.Cycle

	// warm is the domain's in-window overlay of the frozen shared tier:
	// once a fetch or upgrade is estimated for a block, later estimates
	// in the same window see its effect (bank residency, directory
	// sharers, dir-cache warmth) instead of re-paying the cold path the
	// sequential engine pays only once. Cleared at every barrier, after
	// which the replayed live tier carries the state.
	warm map[sim.Addr]coherence.Entry
	// warmPrev is the previous window's overlay generation, kept live
	// only under PdesPipeline: during the overlapped phase A the live
	// tier still lacks window k-1's replay, so estimates consult
	// warm, then warmPrev, then the (one-window-stale) live tier —
	// exactly the bounded staleness the pipeline trades for overlap.
	// Nil (and cost-free) when pipelining is off.
	warmPrev map[sim.Addr]coherence.Entry

	// Pipelined phase-A park state: the first issue whose estimate would
	// have to read the live shared tier (not covered by a private-cache
	// hit or an overlay entry) is stashed here — its reference already
	// drawn, its stats already counted — and resumed as the first action
	// of phase B, after the spine's deferred merge has caught the live
	// tier up. Remaining calendar events are at or past parkT, and the
	// stashed event popped before any same-time FIFO peer, so
	// resume-then-drain replays the exact serial pop order.
	parked    bool
	parkT     sim.Cycle
	parkLi    int32
	parkVM    int32
	parkBlk   uint64
	parkAddr  sim.Addr
	parkWrite bool

	stats    []vm.Stats  // in-window per-VM scratch (Refs/PrivMisses/Upgrades/MissLatSum)
	touch    [][]uint64  // per-VM footprint shadow bitmaps, folded via MergeTouched
	pend     []pdesPending
	ops      []pdesOp
	switches uint64

	// Phase accounting: wall time draining this domain's calendar and
	// lifetime op-log length. Written by whichever executor runs the
	// domain, read by the spine only after the window's completion
	// handshake (wdone) — the same ordering that protects ops.
	busySeconds float64
	opsTotal    uint64
}

// pdesEngine owns the worker domains of one System.
type pdesEngine struct {
	s     *System
	stats PdesStats

	window  sim.Cycle
	domains []*pdesDomain

	// Execution decouples from partition: the domain count (result-
	// visible; it fixes the core partition and the merge order) comes
	// from cfg.Pdes, while the executor count adapts to the host. Worker
	// goroutine w runs domains w+1, w+1+execs, ...; the spine runs
	// domains 0, execs, 2*execs, ... inline. On a single-CPU host execs
	// is 1 and no goroutines are spawned — same results, no spin-waste.
	execs int
	rings []*sim.TaskRing // one SPSC ring per worker (executors 1..execs-1)
	wseq  []uint32        // per-worker window sequence (spine-owned)
	wdone []atomic.Uint32 // per-worker completion, stored by the worker
	wg    sync.WaitGroup

	opIdx []int // reusable merge cursors for the barrier replay
	// applyByGroup counts replayed ops per LLC bank group over the run —
	// the per-bank breakdown of the serial replay term (which banks the
	// Amdahl bottleneck actually touches).
	applyByGroup []uint64

	// Sharded-replay state (replayWorkers > 1; see pdes_replay.go).
	// task is the kind the next ring posts carry — spine-written before
	// the pushes, published by the ring's release/acquire pair.
	task          uint8
	replayWorkers int
	pipeline      bool
	havePrev      bool // pipelined: window k's deferred merge still pending
	// groupLocal marks bank groups whose entire workload population is
	// confined to them (every VM with a thread on the group's cores has
	// ALL threads there): their ops touch provably group-disjoint state
	// and replay in parallel. streamOf maps a group to its local stream
	// index (-1 routes to the serial sync stream, index nlocal).
	groupLocal []bool
	streamOf   []int32
	nlocal     int
	merged     []pdesOp      // reusable merged op log (ascending t, ties by domain)
	streams    [][]int32     // per-stream rank lists into merged
	fx         []replayFx    // per-stream deferred cross-group effects
	wbLogs     [][]memctrl.DeferredWriteback // per-stream views for mem.ApplyMerged
	mIdx       []int         // reusable per-stream cursors for the deferred merges

	tr    *obs.Tracer
	lanes []int
}

// newPdesEngine builds the engine for s (cfg.Pdes > 1 validated).
// Worker goroutines start in start(), not here.
func newPdesEngine(s *System) *pdesEngine {
	cfg := &s.cfg
	e := &pdesEngine{s: s, window: cfg.PdesWindow}
	if e.window <= 0 {
		e.window = DefaultPdesWindow
	}

	// Partition the ACTIVE cores round-robin across up to Pdes domains.
	// Workloads that light up few cores (the isolation sweeps) would
	// leave VM- or group-contiguous partitions empty; round-robin keeps
	// every domain loaded whenever there are at least Pdes active cores.
	var active []int
	for c := range s.cores {
		if s.cores[c].active {
			active = append(active, c)
		}
	}
	nd := cfg.Pdes
	if nd > len(active) {
		nd = len(active)
	}
	e.stats.Workers = cfg.Pdes
	e.stats.Domains = nd
	e.stats.Window = e.window
	for d := 0; d < nd; d++ {
		e.domains = append(e.domains, &pdesDomain{id: d})
	}
	for i, c := range active {
		d := e.domains[i%nd]
		d.cores = append(d.cores, c)
	}
	for _, d := range e.domains {
		d.q = sim.NewEventQueue(len(d.cores))
		d.net = mesh.NewModel(s.geom, cfg.PipeStages)
		d.netBase = mesh.NewModel(s.geom, cfg.PipeStages)
		d.mem = memctrl.New(cfg.Mem)
		d.bankBusy = make([]sim.Cycle, len(s.bankBusy))
		d.dirBusy = make([]sim.Cycle, len(s.dirBusy))
		d.warm = make(map[sim.Addr]coherence.Entry, 1<<10)
		d.stats = make([]vm.Stats, len(s.vms))
		d.pend = make([]pdesPending, len(d.cores))
		d.touch = make([][]uint64, len(s.vms))
		for v, m := range s.vms {
			d.touch[v] = make([]uint64, m.TouchWords())
		}
	}

	// Detach the workload generators' shared cursors: threads of one VM
	// can land in different domains, and the per-thread replicas keep
	// concurrent ring refills race-free while preserving each cursor's
	// collective pacing (see workload.DetachCursors).
	for _, m := range s.vms {
		if g, ok := m.Gen.(*workload.Generator); ok {
			g.DetachCursors()
		}
	}

	e.execs = runtime.GOMAXPROCS(0)
	if e.execs > len(e.domains) {
		e.execs = len(e.domains)
	}
	if e.execs < 1 {
		e.execs = 1
	}
	e.rings = make([]*sim.TaskRing, e.execs-1)
	for w := range e.rings {
		e.rings[w] = sim.NewTaskRing(4)
	}
	e.wseq = make([]uint32, e.execs-1)
	e.wdone = make([]atomic.Uint32, e.execs-1)
	e.opIdx = make([]int, len(e.domains))
	e.applyByGroup = make([]uint64, len(s.banks))

	e.replayWorkers = cfg.PdesReplayWorkers
	e.pipeline = cfg.PdesPipeline
	e.stats.ReplayWorkers = e.replayWorkers
	e.stats.Pipelined = e.pipeline
	if e.replayWorkers > 1 {
		// Static group-confinement analysis: group g's op stream is
		// replay-local iff every VM with a thread on g's cores keeps ALL
		// its threads on g. VM address regions are disjoint by
		// construction (vm layout in NewSystem), so a local group's ops
		// can only reference blocks of VMs confined to it — their bank
		// lines, directory entries, private caches and Stats are touched
		// by no other stream. Any group hosting a spanning VM routes its
		// ops to the serial sync stream instead.
		groups := len(s.banks)
		e.groupLocal = make([]bool, groups)
		for g := range e.groupLocal {
			e.groupLocal[g] = true
		}
		for v := range s.assignment {
			vg := -1
			for _, c := range s.assignment[v] {
				g := s.groupOf(c)
				if vg < 0 {
					vg = g
				} else if g != vg {
					// Spanning VM: every group it touches goes sync.
					for _, c2 := range s.assignment[v] {
						e.groupLocal[s.groupOf(c2)] = false
					}
					break
				}
			}
		}
		e.streamOf = make([]int32, groups)
		for g := range e.streamOf {
			if e.groupLocal[g] {
				e.streamOf[g] = int32(e.nlocal)
				e.nlocal++
			} else {
				e.streamOf[g] = -1
			}
		}
		nstreams := e.nlocal + 1
		e.streams = make([][]int32, nstreams)
		e.fx = make([]replayFx, nstreams)
		e.wbLogs = make([][]memctrl.DeferredWriteback, nstreams)
		e.mIdx = make([]int, nstreams)
		if e.pipeline {
			for _, d := range e.domains {
				d.warmPrev = make(map[sim.Addr]coherence.Entry, 1<<10)
			}
		}
	}
	return e
}

// attachTracer acquires one trace lane per worker domain. Idempotent; a
// nil tracer leaves tracing off.
func (e *pdesEngine) attachTracer(tr *obs.Tracer) {
	if tr == nil || e.tr != nil {
		return
	}
	e.tr = tr
	e.lanes = make([]int, len(e.rings))
	for w := range e.lanes {
		e.lanes[w] = tr.AcquireLane()
	}
}

// start seeds every domain calendar with its cores' first issue events,
// syncs the replicas to the live contention state, and launches the
// worker goroutines.
func (e *pdesEngine) start() {
	s := e.s
	for _, d := range e.domains {
		for li := range d.cores {
			d.q.Push(0, li<<1|evIssue)
		}
		copy(d.bankBusy, s.bankBusy)
		copy(d.dirBusy, s.dirBusy)
		d.mem.SyncBusy(s.mem)
		d.net.SyncLoad(s.net)
		d.netBase.SyncLoad(s.net)
		d.rebase()
	}
	for w := range e.rings {
		e.wg.Add(1)
		go e.workerLoop(w)
	}
}

// stop drains and joins the workers and releases their trace lanes.
func (e *pdesEngine) stop() {
	for _, r := range e.rings {
		r.Close()
	}
	e.wg.Wait()
	if e.tr != nil {
		for _, lane := range e.lanes {
			e.tr.ReleaseLane(lane)
		}
		e.tr = nil
	}
}

// workerLoop runs executor w+1's domain stripe: park on the ring, drain
// one window per posted sequence number, publish completion through the
// worker's done slot.
func (e *pdesEngine) workerLoop(w int) {
	defer e.wg.Done()
	tr, lane := e.tr, 0
	if tr != nil {
		lane = e.lanes[w]
	}
	ring := e.rings[w]
	for {
		seq, ok := ring.Pop()
		if !ok {
			return
		}
		if task := e.task; task == taskReplay {
			if tr != nil {
				tr.Begin(lane, "replay")
			}
			e.runReplayStreams(w + 1)
			if tr != nil {
				tr.End(lane)
			}
		} else {
			if tr != nil {
				tr.Begin(lane, "window")
			}
			park := task == taskWindowA
			for i := w + 1; i < len(e.domains); i += e.execs {
				d := e.domains[i]
				t0 := time.Now()
				d.run(e.s, park)
				d.busySeconds += time.Since(t0).Seconds()
			}
			if tr != nil {
				tr.End(lane)
			}
		}
		e.wdone[w].Store(seq)
	}
}

// runUntil advances the machine window by window until every active
// core has issued at least target references. The check runs at
// barriers only, so runs overshoot by at most one window's issue rate —
// deterministically, since the window schedule is deterministic.
func (e *pdesEngine) runUntil(target uint64) {
	if e.pipeline {
		e.runWindowsPipelined(target)
	} else {
		e.runWindows(target)
	}
	// Fold the cumulative footprint shadows so TouchedBlocks is exact at
	// phase ends. MergeTouched is idempotent, so folding the same shadow
	// again after the next phase is safe.
	for v, m := range e.s.vms {
		for _, d := range e.domains {
			m.MergeTouched(d.touch[v])
		}
	}
}

// post publishes one task round to every worker ring. e.task is written
// before the pushes; the ring's release/acquire pair makes it visible to
// the workers along with the sequence number.
func (e *pdesEngine) post(task uint8) {
	e.task = task
	for w := range e.rings {
		e.wseq[w]++
		e.rings[w].Push(e.wseq[w])
	}
}

// runSpineStripe drains the spine's own domain stripe for the current
// phase.
func (e *pdesEngine) runSpineStripe(park bool) {
	for i := 0; i < len(e.domains); i += e.execs {
		d := e.domains[i]
		t0 := time.Now()
		d.run(e.s, park)
		d.busySeconds += time.Since(t0).Seconds()
	}
}

// runWindows is the unpipelined window loop: one full in-window phase,
// then the barrier (with serial or sharded replay).
func (e *pdesEngine) runWindows(target uint64) {
	for !e.reached(target) {
		winStart := time.Now()
		h := e.nextHorizon()
		for _, d := range e.domains {
			d.horizon = h
		}
		e.post(taskWindow)
		e.runSpineStripe(false)
		e.awaitWorkers()
		e.stats.WindowSeconds += time.Since(winStart).Seconds()
		e.barrier()
	}
}

// runWindowsPipelined overlaps window k's deferred replay merge with
// window k+1's phase A. Each window splits in two: phase A drains every
// domain until its first issue that would read the live shared tier
// (covered() gates exactly those reads) while the spine retires the
// previous window's deferred merge — the only replay work allowed to
// overlap, since it touches no state phase A reads. Phase B then
// resumes the parked issues over the fully merged tier and drains to
// the horizon. Every domain runs the same A/B split regardless of which
// executor hosts it, so simulated results are independent of
// GOMAXPROCS; what the host parallelism changes is only whether the
// overlap is realized as wall-clock savings.
func (e *pdesEngine) runWindowsPipelined(target uint64) {
	for !e.reached(target) {
		winStart := time.Now()
		h := e.nextHorizon()
		for _, d := range e.domains {
			d.horizon = h
		}
		e.post(taskWindowA)
		var overlapSec float64
		if e.havePrev {
			t0 := time.Now()
			e.applyDeferredPhase()
			overlapSec = time.Since(t0).Seconds()
			e.stats.ApplySeconds += overlapSec
			e.stats.ReplayMergeSeconds += overlapSec
			e.stats.PipelineOverlapSeconds += overlapSec
			e.havePrev = false
		}
		e.runSpineStripe(true)
		e.awaitWorkers()
		e.post(taskWindowB)
		e.runSpineStripe(false)
		e.awaitWorkers()
		e.stats.WindowSeconds += time.Since(winStart).Seconds() - overlapSec
		e.barrierPipelined()
	}
	// Drain the last window's deferred merge before control returns to
	// the phase boundary (result assembly and stats resets read the
	// merged state). Not overlap — nothing runs concurrently here.
	if e.havePrev {
		t0 := time.Now()
		e.applyDeferredPhase()
		sec := time.Since(t0).Seconds()
		e.stats.ApplySeconds += sec
		e.stats.ReplayMergeSeconds += sec
		e.havePrev = false
	}
}

// reached reports whether every active core has issued target refs.
func (e *pdesEngine) reached(target uint64) bool {
	for _, d := range e.domains {
		for _, c := range d.cores {
			if e.s.cores[c].refs < target {
				return false
			}
		}
	}
	return true
}

// nextHorizon returns the exclusive bound of the next window: one
// window width past the earliest pending event anywhere. Every pending
// event is at or past the previous horizon, so horizons strictly
// advance.
func (e *pdesEngine) nextHorizon() sim.Cycle {
	first := true
	var min sim.Cycle
	for _, d := range e.domains {
		if d.q.Len() == 0 {
			continue
		}
		t, _ := d.q.Peek()
		if first || t < min {
			min, first = t, false
		}
	}
	return min + e.window
}

// awaitWorkers spins the spine until every worker has drained its
// stripe of the posted window, yielding so the owing workers can run.
func (e *pdesEngine) awaitWorkers() {
	for w := range e.rings {
		if e.wdone[w].Load() == e.wseq[w] {
			continue
		}
		e.stats.Stalls++
		start := time.Now()
		for e.wdone[w].Load() != e.wseq[w] {
			runtime.Gosched()
		}
		e.stats.StallSeconds += time.Since(start).Seconds()
	}
}

// run drains one domain's calendar up to (exclusive) its horizon. In
// park mode (pipelined phase A) it stops at the first issue whose
// estimate would read the live shared tier; a non-park call resumes the
// parked issue first. The stashed event popped before any same-time
// FIFO peer and every remaining event is at or past its time, so
// resume-then-drain replays the exact single-phase pop order.
func (d *pdesDomain) run(s *System, park bool) {
	if d.parked {
		d.parked = false
		d.now = d.parkT
		d.issueWith(s, d.parkT, int(d.parkLi), int(d.parkVM), d.parkBlk, d.parkAddr, d.parkWrite)
	}
	h := d.horizon
	for d.q.Len() > 0 {
		t, payload := d.q.Peek()
		if t >= h {
			break
		}
		d.q.Pop()
		d.now = t
		li := payload >> 1
		if payload&1 == evIssue {
			if !d.issue(s, t, li, park) {
				return
			}
		} else {
			d.complete(s, t, li)
		}
	}
}

// covered reports whether an issue for addr executes entirely against
// state a pipelined phase A may touch: this domain's warm overlays and
// its own cores' private caches. It must return true exactly when
// walk() avoids every live shared-tier read (directory Probe, dir-cache
// Peek, bank Probe) — those are safe only after the spine's deferred
// merge has finished.
func (d *pdesDomain) covered(s *System, c int, addr sim.Addr, write bool) bool {
	if _, ok := d.warm[addr]; ok {
		return true // overlay hit: every estimate path short-circuits live reads
	}
	if _, ok := d.warmPrev[addr]; ok {
		return true
	}
	if _, ok := s.l0[c].Probe(addr); ok && !write {
		return true // L0 read hit, no L1 consulted
	}
	if w1, ok := s.l1[c].Probe(addr); ok {
		if !write {
			return true
		}
		// A write over M/E upgrades silently; Shared needs a live
		// directory estimate.
		st := s.l1[c].State(w1)
		return st == cache.Modified || st == cache.Exclusive
	}
	return false
}

// issue executes one core's next reference: draw it, then walk the
// private hierarchy — or, in park mode, stash the drawn reference when
// its walk would read the live shared tier (returning false to stop the
// phase). The draw side (RNG, footprint, ref counts) always happens
// here, exactly once per reference.
func (d *pdesDomain) issue(s *System, t sim.Cycle, li int, park bool) bool {
	c := d.cores[li]
	cs := &s.cores[c]
	if cs.cur >= len(cs.queue) {
		cs.cur = 0
	}
	run := cs.queue[cs.cur]
	m := s.vms[run.vmID]

	acc := m.Gen.Next(run.thread)
	blk := acc.Block
	d.touch[run.vmID][blk/64] |= 1 << (blk % 64)
	addr := m.AddrOf(blk)
	d.stats[run.vmID].Refs++
	cs.refs++

	if park && !d.covered(s, c, addr, acc.Write) {
		d.parked = true
		d.parkT = t
		d.parkLi = int32(li)
		d.parkVM = int32(run.vmID)
		d.parkBlk = blk
		d.parkAddr = addr
		d.parkWrite = acc.Write
		return false
	}
	d.issueWith(s, t, li, run.vmID, blk, addr, acc.Write)
	return true
}

// issueWith is the post-draw half of issue: walk the private hierarchy,
// then either finish immediately (hit) or schedule the completion one
// estimated miss latency out.
func (d *pdesDomain) issueWith(s *System, t sim.Cycle, li, vmID int, blk uint64, addr sim.Addr, write bool) {
	c := d.cores[li]
	st := &d.stats[vmID]
	lat, fillSt, miss := d.walk(s, t, c, vmID, addr, write)
	if miss {
		st.PrivMisses++
		st.MissLatSum += lat
		d.ops = append(d.ops, pdesOp{
			t: t, addr: addr, lat: uint32(lat),
			kind: opFetch, core: uint8(c), vm: uint8(vmID),
			region: uint8(s.regions[vmID].Of(blk)), write: write,
		})
		d.pend[li] = pdesPending{addr: addr, vmID: int32(vmID), st: fillSt}
		d.q.Push(t+lat, li<<1|evComplete)
		return
	}
	d.finish(s, t+lat, li, c, vmID)
}

// complete installs an in-flight miss's fill into the issuing core's
// private hierarchy and schedules the next issue.
func (d *pdesDomain) complete(s *System, t sim.Cycle, li int) {
	c := d.cores[li]
	p := &d.pend[li]
	vtag := uint8(p.vmID)
	l1 := s.l1[c]
	if w1, ok := l1.Probe(p.addr); ok {
		// Already resident (a racing window re-filled it); only ever
		// raise the state.
		if p.st == cache.Modified {
			l1.SetState(w1, cache.Modified)
		}
	} else {
		victim, evicted, _ := l1.Insert(p.addr, p.st, vtag)
		if evicted {
			d.ops = append(d.ops, pdesOp{
				t: t, addr: victim.Tag, kind: opEvictL1,
				core: uint8(c), vm: vtag, write: victim.State == cache.Modified,
			})
			s.l0[c].Invalidate(victim.Tag)
		}
	}
	s.fillL0(c, p.addr, p.st, vtag)
	d.finish(s, t, li, c, int(p.vmID))
}

// finish draws the think time, applies over-commit rotation, and
// schedules the core's next issue. Mirrors the sequential loop's tail;
// the RNG stream is consumed one draw per reference in the same order,
// so a fixed partition replays fixed streams.
func (d *pdesDomain) finish(s *System, at sim.Cycle, li, c, vmID int) {
	cs := &s.cores[c]
	next := at + sim.Cycle(cs.rng.Uint64n(s.thinkOf[vmID]))
	if len(cs.queue) > 1 && next >= cs.sliceEnd {
		cs.cur = (cs.cur + 1) % len(cs.queue)
		next += s.switchCost()
		cs.sliceEnd = next + s.cfg.TimesliceCycles
		d.switches++
	}
	d.q.Push(next, li<<1|evIssue)
}

// walk is the in-window private-hierarchy walk: the parallel engine's
// analogue of accessTM. Hits (the overwhelming majority) execute
// completely; misses and coherence upgrades are classified against the
// frozen shared tier, charged a replica-estimated latency, and logged
// for barrier replay. It returns (latency, fill state, missed).
func (d *pdesDomain) walk(s *System, t sim.Cycle, c, vmID int, addr sim.Addr, write bool) (sim.Cycle, cache.State, bool) {
	l0 := s.l0[c]
	if w0, ok := l0.Lookup(addr); ok {
		if !write {
			return DefaultL0Latency, 0, false
		}
		l1 := s.l1[c]
		if w1, ok1 := l1.Probe(addr); ok1 {
			switch l1.State(w1) {
			case cache.Modified:
				l0.SetState(w0, cache.Modified)
				return DefaultL0Latency, 0, false
			case cache.Exclusive:
				// Silent E->M upgrade; ownership recorded at the barrier.
				l1.SetState(w1, cache.Modified)
				l0.SetState(w0, cache.Modified)
				d.logUpgrade(t, c, vmID, addr)
				return DefaultL0Latency, 0, false
			default:
				lat := d.estimateUpgrade(s, t, c, addr)
				d.stats[vmID].Upgrades++
				l1.SetState(w1, cache.Modified)
				l0.SetState(w0, cache.Modified)
				d.logUpgrade(t, c, vmID, addr)
				return lat, 0, false
			}
		}
		// Cross-window L0/L1 divergence (the sequential engine asserts
		// inclusion here); drop the orphan and take the miss path.
		l0.Invalidate(addr)
	}

	l1 := s.l1[c]
	vtag := uint8(vmID)
	if w1, ok := l1.Lookup(addr); ok {
		switch {
		case !write:
			s.fillL0(c, addr, l1.State(w1), vtag)
			return DefaultL1Latency, 0, false
		case l1.State(w1) == cache.Modified:
			s.fillL0(c, addr, cache.Modified, vtag)
			return DefaultL1Latency, 0, false
		case l1.State(w1) == cache.Exclusive:
			l1.SetState(w1, cache.Modified)
			s.fillL0(c, addr, cache.Modified, vtag)
			d.logUpgrade(t, c, vmID, addr)
			return DefaultL1Latency, 0, false
		default:
			lat := d.estimateUpgrade(s, t, c, addr)
			d.stats[vmID].Upgrades++
			l1.SetState(w1, cache.Modified)
			s.fillL0(c, addr, cache.Modified, vtag)
			d.logUpgrade(t, c, vmID, addr)
			return lat, 0, false
		}
	}

	lat, fillSt := d.estimateFetch(s, t, c, addr, write)
	return lat, fillSt, true
}

// logUpgrade appends a store-exclusivity operation for barrier replay.
func (d *pdesDomain) logUpgrade(t sim.Cycle, c, vmID int, addr sim.Addr) {
	d.ops = append(d.ops, pdesOp{
		t: t, addr: addr, kind: opUpgrade,
		core: uint8(c), vm: uint8(vmID), write: true,
	})
}

// Replica-charging timing helpers: same arithmetic as the System's
// bankAccess/dirVisit/route, against this domain's private trackers.

func (d *pdesDomain) route(at sim.Cycle, from, to, flits int) sim.Cycle {
	if from == to {
		return at
	}
	return d.net.Latency(at, from, to, flits)
}

func (d *pdesDomain) bankAccess(at sim.Cycle, node int) sim.Cycle {
	start := sim.Max(at, d.bankBusy[node])
	d.bankBusy[node] = start + bankOccupancy
	return start + DefaultLLCLatency
}

func (d *pdesDomain) dirVisit(at sim.Cycle, home int) sim.Cycle {
	start := sim.Max(at, d.dirBusy[home])
	d.dirBusy[home] = start + dirOccupancy
	return start + dirLatency
}

// probeEntry snapshots the frozen directory entry for addr (a zero
// no-sharer entry when absent).
func (d *pdesDomain) probeEntry(s *System, addr sim.Addr) coherence.Entry {
	if pe, ok := s.dir.Probe(addr); ok {
		return *pe
	}
	return coherence.NewEntry()
}

// warmView returns the estimator's view of addr's shared-tier state: the
// in-window overlay when this domain already touched the block this
// window (so repeats see a warmed tier, as they would sequentially), the
// frozen live tier otherwise. The returned bools are (bank g holds the
// line, the view came from the overlay — overlay blocks are dir-cache
// warm by construction).
func (d *pdesDomain) warmView(s *System, addr sim.Addr, g int) (coherence.Entry, bool, bool) {
	if w, ok := d.warm[addr]; ok {
		return w, w.HasL2(g), true
	}
	// Pipelined runs keep the previous window's overlay generation live:
	// the shared tier lags one window behind, so last window's view is
	// fresher than the live one for blocks it covers. warmPrev is nil
	// (and this lookup free) when pipelining is off.
	if w, ok := d.warmPrev[addr]; ok {
		return w, w.HasL2(g), true
	}
	ent := d.probeEntry(s, addr)
	_, bHit := s.banks[g].Probe(addr)
	return ent, bHit, false
}

// estimateFetch mirrors fetchTM's timing against the frozen shared tier
// and the domain's contention replicas, and derives the private fill
// state the completion event will install. Returns (latency, fill
// state).
func (d *pdesDomain) estimateFetch(s *System, now sim.Cycle, c int, addr sim.Addr, write bool) (sim.Cycle, cache.State) {
	g := s.groupOf(c)
	bnode := s.bankNode(g, addr)
	t := d.bankAccess(now, bnode)

	ent, bHit, warmed := d.warmView(s, addr, g)

	if bHit {
		if o := int(ent.L1Owner); o >= 0 && o != c {
			at := d.route(t, bnode, o, CtrlFlits) + DefaultL1Latency
			t = d.route(at, o, c, DataFlits)
		}
	} else {
		home := s.dir.Home(addr)
		dirHit := warmed || s.dirCache.Peek(home, addr)
		dirT := d.route(t, bnode, home, CtrlFlits)
		dirT = d.dirVisit(dirT, home)
		onChipDirT := dirT
		if !dirHit {
			onChipDirT += s.cfg.Mem.Latency
		}
		switch {
		case ent.L1Owner >= 0 && int(ent.L1Owner) != c:
			o := int(ent.L1Owner)
			at := d.route(onChipDirT, home, o, CtrlFlits) + DefaultL1Latency
			t = d.route(at, o, c, DataFlits)
		case ent.L2Owner >= 0 && int(ent.L2Owner) != g:
			sn := s.bankNode(int(ent.L2Owner), addr)
			at := d.route(onChipDirT, home, sn, CtrlFlits)
			at = d.bankAccess(at, sn)
			t = d.route(at, sn, c, DataFlits)
		case ent.OtherL2(g) >= 0:
			sn := s.bankNode(ent.OtherL2(g), addr)
			at := d.route(onChipDirT, home, sn, CtrlFlits)
			at = d.bankAccess(at, sn)
			t = d.route(at, sn, c, DataFlits)
		default:
			mn := s.mem.Node(addr)
			at := d.route(dirT, home, mn, CtrlFlits)
			at = d.mem.Read(at, addr)
			t = d.route(at, mn, c, DataFlits)
		}
	}

	if write {
		l2 := ent.L2Sharers | 1<<uint(g)
		if bits.OnesCount64(l2) > 1 || ent.L1Sharers&^(1<<uint(c)) != 0 {
			t = d.estimateInvalidate(s, t, c, addr, &ent)
		}
	}

	var fillSt cache.State
	switch {
	case write:
		fillSt = cache.Modified
	case ent.L1Sharers&^(1<<uint(c)) == 0 && ent.L2Sharers&^(1<<uint(g)) == 0 && !ent.Dirty():
		fillSt = cache.Exclusive
	default:
		fillSt = cache.Shared
	}

	// Fold the fetch's effect into the overlay so later in-window
	// estimates see a warmed tier.
	if write {
		ent = coherence.Entry{L1Sharers: 1 << uint(c), L2Sharers: 1 << uint(g), L1Owner: int8(c), L2Owner: int8(g)}
	} else {
		ent.AddL1(c)
		ent.AddL2(g)
		if fillSt == cache.Exclusive {
			ent.L1Owner, ent.L2Owner = int8(c), int8(g)
		}
	}
	d.warm[addr] = ent
	return t - now, fillSt
}

// estimateUpgrade mirrors the store-upgrade latency (home visit plus
// slowest invalidation ack) against the frozen directory entry.
func (d *pdesDomain) estimateUpgrade(s *System, now sim.Cycle, c int, addr sim.Addr) sim.Cycle {
	g := s.groupOf(c)
	ent, _, _ := d.warmView(s, addr, g)
	t := d.estimateInvalidate(s, now, c, addr, &ent) - now
	d.warm[addr] = coherence.Entry{L1Sharers: 1 << uint(c), L2Sharers: 1 << uint(g), L1Owner: int8(c), L2Owner: int8(g)}
	return t
}

// estimateInvalidate mirrors invalidateOthersTM's timing: route to the
// home, visit the directory, fan invalidations out to every frozen
// sharer, and return the slowest ack's absolute arrival time.
func (d *pdesDomain) estimateInvalidate(s *System, at sim.Cycle, c int, addr sim.Addr, ent *coherence.Entry) sim.Cycle {
	home := s.dir.Home(addr)
	t := d.route(at, c, home, CtrlFlits)
	_, warmed := d.warm[addr]
	if !warmed {
		_, warmed = d.warmPrev[addr]
	}
	dirHit := warmed || s.dirCache.Peek(home, addr)
	t = d.dirVisit(t, home)
	if !dirHit {
		t += s.cfg.Mem.Latency
	}
	g := s.groupOf(c)
	ackT := t
	for m := ent.L1Sharers &^ (1 << uint(c)); m != 0; m &= m - 1 {
		o := bits.TrailingZeros64(m)
		a := d.route(t, home, o, CtrlFlits)
		a = d.route(a, o, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
	}
	for m := ent.L2Sharers &^ (1 << uint(g)); m != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		node := s.bankNode(b, addr)
		a := d.route(t, home, node, CtrlFlits)
		a = d.route(a, node, c, CtrlFlits)
		ackT = sim.Max(ackT, a)
	}
	if ackT == t {
		ackT = d.route(t, home, c, CtrlFlits)
	}
	return ackT
}

// applyTiming is the barrier-replay timing model: the latency side is
// free (the in-window estimators already charged the contention
// replicas), but functional side effects that only exist on the shared
// tier — directory-cache warming, dirty writebacks reaching the memory
// controllers — still happen, and counters land in the real per-VM
// stats.
type applyTiming struct{}

func (applyTiming) route(s *System, at sim.Cycle, from, to, flits int) sim.Cycle { return at }

func (applyTiming) bankAccess(s *System, at sim.Cycle, node int) sim.Cycle { return at }

func (applyTiming) dirVisit(s *System, at sim.Cycle, home int, addr sim.Addr) (sim.Cycle, bool) {
	return at, s.dirCache.Access(home, addr)
}

func (applyTiming) memRead(s *System, at sim.Cycle, addr sim.Addr) sim.Cycle { return at }

func (applyTiming) writeback(s *System, at sim.Cycle, addr sim.Addr) {
	s.mem.Writeback(at, addr)
}

func (applyTiming) memPenalty(s *System) sim.Cycle { return 0 }

func (applyTiming) stats(s *System, vmID int) *vm.Stats { return &s.vms[vmID].Stats }

// applyOps replays every domain's operation log against the live shared
// tier in one deterministic total order: ascending time, ties broken by
// domain index. Per-domain logs are already time-sorted (events pop in
// order), so this is a zero-allocation k-way merge.
func (e *pdesEngine) applyOps() {
	s := e.s
	idx := e.opIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bt sim.Cycle
		for i, d := range e.domains {
			if idx[i] >= len(d.ops) {
				continue
			}
			if t := d.ops[idx[i]].t; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			break
		}
		op := &e.domains[best].ops[idx[best]]
		idx[best]++
		e.applyByGroup[s.groupOf(int(op.core))]++
		s.now = op.t
		switch op.kind {
		case opFetch:
			s.applyFetch(op)
			if s.hooks != nil {
				s.hooks.ObserveMissLat(uint64(op.lat))
			}
		case opUpgrade:
			s.applyUpgrade(op)
		default:
			s.applyEvictL1(op)
		}
		e.stats.Ops++
	}
	for _, d := range e.domains {
		d.ops = d.ops[:0]
	}
}

// applyFetch replays one private miss's shared-tier transitions: bank
// lookup/insert, directory update, supplier classification (which is
// where the C2C/memory counters are decided — against live state, not
// the frozen view the estimate used). The issuing core's private fill
// happened in-window at the completion event, so no private caches are
// touched except to repair a stale Exclusive guess.
func (s *System) applyFetch(op *pdesOp) {
	c := int(op.core)
	vmID := int(op.vm)
	g := s.groupOf(c)
	addr := op.addr
	vtag := uint8(vmID)
	st := &s.vms[vmID].Stats
	bank := s.banks[g]

	bw, bHit := bank.Lookup(addr)
	e := s.dir.Get(addr)
	if bHit {
		e.AddL2(g) // repair: a racing window's view may have diverged
		if o := int(e.L1Owner); o >= 0 && o != c {
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		}
	} else {
		st.LLCMisses++
		st.RegionMisses[op.region]++
		home := s.dir.Home(addr)
		s.dirCache.Access(home, addr)
		switch o := int(e.L1Owner); {
		case o >= 0 && o != c:
			s.downgradeOwner(o, addr, e)
			st.C2CDirty++
		case e.L2Owner >= 0 && int(e.L2Owner) != g:
			b := int(e.L2Owner)
			if sw, ok := s.banks[b].Probe(addr); ok {
				if s.banks[b].State(sw) == cache.Modified {
					s.banks[b].SetState(sw, cache.Owned)
				}
				st.C2CDirty++
			} else {
				e.L2Owner = -1
				st.MemReads++
			}
		case e.OtherL2(g) >= 0:
			st.C2CClean++
		default:
			st.MemReads++
		}
		bankState := cache.Shared
		if !e.OnChip() {
			bankState = cache.Exclusive
		}
		victim, evicted, nw := bank.Insert(addr, bankState, vtag)
		bw = nw
		if evicted {
			evictBankLineTM(s, applyTiming{}, g, victim)
			e = s.dir.Get(addr)
		}
		e.AddL2(g)
	}

	if op.write && (e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0) {
		_, e = invalidateOthersTM(s, applyTiming{}, op.t, c, addr, st)
	}
	s.demoteExclusives(c, addr, e)
	e.AddL1(c)
	if op.write {
		e.L1Owner = int8(c)
		e.L2Owner = int8(g)
		bank.SetState(bw, cache.Modified)
	} else if m := e.L1Sharers &^ (1 << uint(c)); m != 0 || e.Dirty() || e.L2Count() > 1 {
		// The in-window fill may have guessed Exclusive from a view that
		// a racing domain has since invalidated; demote our own copies
		// so silent E->M upgrades stay coherent.
		if w, ok := s.l1[c].Probe(addr); ok && s.l1[c].State(w) == cache.Exclusive {
			s.l1[c].SetState(w, cache.Shared)
		}
		if w, ok := s.l0[c].Probe(addr); ok && s.l0[c].State(w) == cache.Exclusive {
			s.l0[c].SetState(w, cache.Shared)
		}
	}
}

// applyUpgrade replays a store upgrade (silent E->M or Shared->M): the
// issuing core took ownership in-window; here the directory, the other
// sharers and the group bank catch up. A remote write that applied
// earlier in the merge may have invalidated the line from under the
// upgrade — then the core's copy is gone and the op is stale.
func (s *System) applyUpgrade(op *pdesOp) {
	c := int(op.core)
	addr := op.addr
	w1, ok := s.l1[c].Probe(addr)
	if !ok {
		return
	}
	st := &s.vms[int(op.vm)].Stats
	e := s.dir.Get(addr)
	if e.L2Count() > 1 || e.L1Sharers&^(1<<uint(c)) != 0 {
		_, e = invalidateOthersTM(s, applyTiming{}, op.t, c, addr, st)
	}
	e.AddL1(c)
	e.L1Owner = int8(c)
	g := s.groupOf(c)
	if bw, okb := s.banks[g].Probe(addr); okb {
		s.banks[g].SetState(bw, cache.Modified)
		e.L2Owner = int8(g)
	}
	s.l1[c].SetState(w1, cache.Modified)
	if w0, ok0 := s.l0[c].Probe(addr); ok0 {
		s.l0[c].SetState(w0, cache.Modified)
	}
}

// applyEvictL1 replays an in-window L1 eviction: dirty victims fold
// into the group bank and the directory drops the private sharer —
// exactly the sequential evictPrivateVictim, driven from the log.
func (s *System) applyEvictL1(op *pdesOp) {
	st := cache.Shared
	if op.write {
		st = cache.Modified
	}
	s.evictPrivateVictim(int(op.core), cache.Line{Tag: op.addr, State: st})
}

// foldWindow folds every domain's window into the live machine:
// contention replicas (busy-until by max, mesh load by delta, counters
// by delta) and per-VM scratch stats. Returns the latest domain clock.
func (e *pdesEngine) foldWindow() sim.Cycle {
	s := e.s
	var maxT sim.Cycle
	for _, d := range e.domains {
		d.opsTotal += uint64(len(d.ops))
		for i, b := range d.bankBusy {
			if b > s.bankBusy[i] {
				s.bankBusy[i] = b
			}
		}
		for i, b := range d.dirBusy {
			if b > s.dirBusy[i] {
				s.dirBusy[i] = b
			}
		}
		s.mem.FoldBusyMax(d.mem)
		s.net.FoldLoadDelta(d.net, d.netBase)
		s.net.Transfers += d.net.Transfers - d.prevTransfers
		s.net.HopsSum += d.net.HopsSum - d.prevHops
		s.net.WaitCycles += d.net.WaitCycles - d.prevNetWait
		s.mem.Reads += d.mem.Reads - d.prevMemReads
		s.mem.WaitSum += d.mem.WaitSum - d.prevMemWait
		for v := range d.stats {
			sv := &s.vms[v].Stats
			dv := &d.stats[v]
			sv.Refs += dv.Refs
			sv.PrivMisses += dv.PrivMisses
			sv.Upgrades += dv.Upgrades
			sv.MissLatSum += dv.MissLatSum
			*dv = vm.Stats{}
		}
		s.Switches += d.switches
		d.switches = 0
		if d.now > maxT {
			maxT = d.now
		}
	}
	return maxT
}

// advanceClock commits the folded window's clock and global ref count.
// maxT is at or past every logged op time, so skipping the serial
// replay's per-op s.now stepping (as the sharded replay does) leaves an
// identical final clock.
func (e *pdesEngine) advanceClock(maxT sim.Cycle) {
	s := e.s
	if maxT > s.now {
		s.now = maxT
	}
	var refs uint64
	for c := range s.cores {
		refs += s.cores[c].refs
	}
	s.globalRefs = refs
}

// resyncReplicas re-bases every domain's contention replicas from the
// folded live state for the next window. Unpipelined, the warm overlay
// simply clears (the replayed live tier now carries its effects);
// pipelined, the generations swap — last window's overlay stays
// consultable while the live tier still lacks its deferred merge.
func (e *pdesEngine) resyncReplicas(swapOverlay bool) {
	s := e.s
	for _, d := range e.domains {
		copy(d.bankBusy, s.bankBusy)
		copy(d.dirBusy, s.dirBusy)
		d.mem.SyncBusy(s.mem)
		d.net.SyncLoad(s.net)
		d.netBase.SyncLoad(s.net)
		d.rebase()
		if swapOverlay {
			d.warm, d.warmPrev = d.warmPrev, d.warm
		}
		clear(d.warm)
	}
}

// barrier folds every domain's window into the live machine, replays
// the merged op log (serially, or group-sharded when replay workers are
// configured), then resyncs the replicas for the next window.
func (e *pdesEngine) barrier() {
	s := e.s
	barStart := time.Now()
	maxT := e.foldWindow()

	applyStart := time.Now()
	if e.replayWorkers > 1 {
		e.applyOpsSharded(false)
	} else {
		e.applyOps()
	}
	applySec := time.Since(applyStart).Seconds()
	e.stats.ApplySeconds += applySec
	e.stats.Windows++

	e.advanceClock(maxT)
	e.resyncReplicas(false)

	if s.hooks != nil {
		s.publishLive()
	}
	e.stats.BarrierSeconds += time.Since(barStart).Seconds() - applySec
}

// barrierPipelined is the pipelined barrier: the sharded merge and
// per-group parallel pass run here (workers quiescent between the
// phase-B join and the next phase-A post), but the serial deferred
// merge is left pending for the next window's phase A to overlap.
// publishLive stays here too — it reads worker-mutated state (private
// cache counters, domain clocks) and so must not run during a window.
// Its published totals lag the deferred effects by one window; the
// drained final merge squares the books before results are read.
func (e *pdesEngine) barrierPipelined() {
	s := e.s
	barStart := time.Now()
	maxT := e.foldWindow()

	applyStart := time.Now()
	e.applyOpsSharded(true)
	applySec := time.Since(applyStart).Seconds()
	e.stats.ApplySeconds += applySec
	e.stats.Windows++

	e.advanceClock(maxT)
	e.resyncReplicas(true)
	e.havePrev = true

	if s.hooks != nil {
		s.publishLive()
	}
	e.stats.BarrierSeconds += time.Since(barStart).Seconds() - applySec
}

// rebase records the replica counters' current values so the next
// barrier folds only the coming window's deltas.
func (d *pdesDomain) rebase() {
	d.prevTransfers = d.net.Transfers
	d.prevHops = d.net.HopsSum
	d.prevNetWait = d.net.WaitCycles
	d.prevMemReads = d.mem.Reads
	d.prevMemWait = d.mem.WaitSum
}
