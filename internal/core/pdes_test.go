package core

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// pdesDigest is the comparison projection for parallel-vs-parallel
// determinism checks: the full golden digest (counters, latencies,
// snapshot) must be byte-identical across repeated runs at the same
// (seed, Pdes, PdesWindow).
func pdesDigest(t *testing.T, res Result) string {
	t.Helper()
	d := digestOf(res)
	buf, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// pdesRelErr returns |got-want|/|want| with the zero-baseline convention
// used by the harness equivalence gate.
func pdesRelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / math.Abs(want)
}

// comparePdes runs cfg sequentially and at the given worker count and
// returns the worst per-VM relative error over LLC miss rate and
// cycles-per-transaction — the same two metrics the harness equivalence
// gate bounds.
func comparePdes(t *testing.T, cfg Config, workers int) float64 {
	t.Helper()
	seq := cfg
	seq.Pdes = 1
	seq.PdesReplayWorkers = 0
	seq.PdesPipeline = false
	want := mustRun(t, seq)

	par := cfg
	par.Pdes = workers
	got := mustRun(t, par)

	if len(got.VMs) != len(want.VMs) {
		t.Fatalf("VM count mismatch: %d vs %d", len(got.VMs), len(want.VMs))
	}
	worst := 0.0
	for i := range want.VMs {
		if want.VMs[i].Stats.Refs == 0 {
			continue
		}
		if e := pdesRelErr(got.VMs[i].MissRate(), want.VMs[i].MissRate()); e > worst {
			worst = e
		}
		if e := pdesRelErr(got.VMs[i].CyclesPerTx, want.VMs[i].CyclesPerTx); e > worst {
			worst = e
		}
	}
	return worst
}

// TestPdesValidation rejects configurations the engine cannot run
// soundly and accepts the ones it can.
func TestPdesValidation(t *testing.T) {
	base := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)

	bad := []func(*Config){
		func(c *Config) { c.Pdes = -1 },
		func(c *Config) { c.Pdes = c.Cores + 1 },
		func(c *Config) { c.Pdes = 4; c.Shards = 4 },
		func(c *Config) { c.Pdes = 4; c.Sample.WindowRefs = 1000 },
		func(c *Config) { c.Pdes = 4; c.RebalanceCycles = 100_000 },
		func(c *Config) { c.Pdes = 4; c.SnapshotRefs = 1000 },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}

	good := base
	good.Pdes = 4
	if _, err := NewSystem(good); err != nil {
		t.Errorf("valid pdes config rejected: %v", err)
	}
	// Over-commitment is legal: timeslice rotation is domain-local.
	over := base
	over.Pdes = 4
	over.ThreadsPerVM = 8
	over.TimesliceCycles = 5_000
	if _, err := NewSystem(over); err != nil {
		t.Errorf("over-committed pdes config rejected: %v", err)
	}
}

// TestPdesDeterministic verifies the engine's reproducibility contract:
// at a fixed (seed, Pdes, PdesWindow) every run produces a byte-
// identical digest, and the domain partition is independent of host
// scheduling.
func TestPdesDeterministic(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.Pdes = 4
	want := pdesDigest(t, mustRun(t, cfg))
	for i := 0; i < 2; i++ {
		if got := pdesDigest(t, mustRun(t, cfg)); got != want {
			t.Fatalf("run %d diverged from first run:\n%s\nvs\n%s", i+2, got, want)
		}
	}
}

// TestPdesEquivalence bounds the parallel engine's deviation from the
// sequential oracle on the gated metrics across engine-relevant
// configurations: isolation (few active cores), consolidation (all 16),
// private and shared LLC organizations, and over-commitment.
func TestPdesEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the full suite")
	}
	const bound = 0.12
	cases := []struct {
		name string
		cfg  Config
	}{
		{"isolated-tpch", fastCfg(4, sched.Affinity, workload.TPCH)},
		{"consolidated-private", fastCfg(1, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)},
		{"consolidated-shared", fastCfg(16, sched.RoundRobin, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)},
		{"homogeneous-jbb", fastCfg(4, sched.Affinity, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb)},
	}
	over := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	over.ThreadsPerVM = 8
	over.TimesliceCycles = 5_000
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"overcommit", over})

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, workers := range []int{2, 4, 8} {
				if worst := comparePdes(t, c.cfg, workers); worst > bound {
					t.Errorf("workers=%d worst rel err %.4f > %.2f", workers, worst, bound)
				}
			}
		})
	}
}

// FuzzPdesOrdering fuzzes the cross-domain event ordering: arbitrary
// seeds, worker counts and window widths must stay within the
// equivalence bound of the sequential oracle AND be internally
// deterministic (two runs at the same inputs byte-identical). This is
// the adversarial check on the window protocol: a race or an
// order-dependent merge shows up as either divergence between repeats
// or a blown bound.
func FuzzPdesOrdering(f *testing.F) {
	f.Add(uint64(1), 4, uint32(8192))
	f.Add(uint64(7), 2, uint32(1024))
	f.Add(uint64(42), 8, uint32(65536))
	f.Fuzz(func(t *testing.T, seed uint64, workers int, window uint32) {
		if workers < 2 || workers > 16 {
			t.Skip()
		}
		if window < 64 || window > 1<<20 {
			t.Skip()
		}
		cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)
		cfg.Seed = seed
		cfg.WarmupRefs = 5_000
		cfg.MeasureRefs = 20_000
		cfg.PdesWindow = sim.Cycle(window)
		cfg.Pdes = workers

		first := pdesDigest(t, mustRun(t, cfg))
		if second := pdesDigest(t, mustRun(t, cfg)); second != first {
			t.Fatalf("nondeterministic at seed=%d workers=%d window=%d", seed, workers, window)
		}
		// Tiny runs are noisy; the fuzz bound is looser than the
		// measurement-scale equivalence gate but still catches protocol
		// breakage (which produces order-of-magnitude divergence).
		if worst := comparePdes(t, cfg, workers); worst > 0.35 {
			t.Fatalf("seed=%d workers=%d window=%d worst rel err %.4f", seed, workers, window, worst)
		}
	})
}

// TestPdesStatsShape checks the provenance plumbing: a parallel run
// reports its worker/domain/window accounting and a sequential run
// reports none.
func TestPdesStatsShape(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)
	cfg.Pdes = 4
	res := mustRun(t, cfg)
	if res.Pdes.Workers != 4 {
		t.Errorf("Workers = %d, want 4", res.Pdes.Workers)
	}
	if res.Pdes.Domains < 2 || res.Pdes.Domains > 4 {
		t.Errorf("Domains = %d, want 2..4", res.Pdes.Domains)
	}
	if res.Pdes.Window != DefaultPdesWindow {
		t.Errorf("Window = %d, want default %d", res.Pdes.Window, DefaultPdesWindow)
	}
	if res.Pdes.Windows == 0 || res.Pdes.Ops == 0 {
		t.Errorf("Windows/Ops = %d/%d, want both > 0", res.Pdes.Windows, res.Pdes.Ops)
	}

	seq := cfg
	seq.Pdes = 0
	if sres := mustRun(t, seq); sres.Pdes != (PdesStats{}) {
		t.Errorf("sequential run reports pdes stats: %+v", sres.Pdes)
	}
}

// TestPdesTouchedBlocks verifies the per-domain footprint shadows fold
// into exact per-VM touched-block counts (within the deviation the
// engine's stream perturbation allows).
func TestPdesTouchedBlocks(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb)
	par := cfg
	par.Pdes = 4
	seq := cfg
	seq.Pdes = 1
	pres, sres := mustRun(t, par), mustRun(t, seq)
	for i := range sres.VMs {
		if pres.VMs[i].TouchedBlocks == 0 {
			t.Errorf("vm%d: zero touched blocks under pdes", i)
		}
		if e := pdesRelErr(float64(pres.VMs[i].TouchedBlocks), float64(sres.VMs[i].TouchedBlocks)); e > 0.10 {
			t.Errorf("vm%d: touched blocks %d vs sequential %d (rel err %.3f)",
				i, pres.VMs[i].TouchedBlocks, sres.VMs[i].TouchedBlocks, e)
		}
	}
}

var _ = fmt.Sprintf // keep fmt while the test set evolves
