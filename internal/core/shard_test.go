package core

import (
	"encoding/json"
	"testing"

	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// shardDigest is the comparison projection for sequential-vs-sharded
// differential runs: the golden digest plus the snapshot timing fields
// the golden projection folds in separately.
func shardDigest(t *testing.T, res Result) string {
	t.Helper()
	d := digestOf(res)
	buf, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestShardedBitIdentical is the engine's acceptance test: randomized
// configurations — every LLC organization, both policies, phased and
// unphased workloads, snapshots mid-run — must produce byte-identical
// digests at every legal shard count.
func TestShardedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the full suite")
	}
	type tc struct {
		name string
		cfg  Config
	}
	var cases []tc

	r := sim.NewRNG(0xc0ffee)
	groupSizes := []int{1, 4, 16}
	policies := []sched.Policy{sched.RoundRobin, sched.Affinity}
	classes := [][]workload.Class{
		{workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb},
		{workload.SPECjbb, workload.SPECjbb, workload.SPECjbb, workload.SPECjbb},
		{workload.TPCH, workload.SPECweb},
	}
	for i := 0; i < 4; i++ {
		cfg := fastCfg(groupSizes[r.Intn(len(groupSizes))], policies[r.Intn(2)], classes[r.Intn(len(classes))]...)
		cfg.Seed = r.Uint64()
		cfg.WarmupRefs = 10_000 + r.Uint64n(20_000)
		cfg.MeasureRefs = 30_000 + r.Uint64n(30_000)
		if r.Bool(0.5) {
			cfg.SnapshotRefs = cfg.MeasureRefs / 2
		}
		if r.Bool(0.3) {
			cfg.QoSPartition = true
		}
		cases = append(cases, tc{name: "rand" + string(rune('A'+i)), cfg: cfg})
	}

	// Directed cases for the gated paths: over-commitment (think
	// batching disabled per core) and dynamic rebalancing (disabled
	// everywhere, prefill still active).
	over := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	over.ThreadsPerVM = 8
	over.TimesliceCycles = 5_000
	over.WarmupRefs, over.MeasureRefs = 10_000, 20_000
	cases = append(cases, tc{name: "overcommit", cfg: over})

	reb := fastCfg(4, sched.RoundRobin, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	reb.RebalanceCycles = 200_000
	reb.WarmupRefs, reb.MeasureRefs = 10_000, 20_000
	cases = append(cases, tc{name: "rebalance", cfg: reb})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq := c.cfg
			seq.Shards = 1
			want := shardDigest(t, mustRun(t, seq))
			for _, shards := range []int{2, 4, 8, 16} {
				sh := c.cfg
				sh.Shards = shards
				got := shardDigest(t, mustRun(t, sh))
				if got != want {
					t.Fatalf("shards=%d diverged from sequential:\n%s\nvs sequential:\n%s", shards, got, want)
				}
			}
		})
	}
}

// TestShardedStatsAccounted checks that the sharded engine actually ran
// its pipelines on a plain steady-state config: batches adopted from
// workers, and the sequential path reporting a zero value.
func TestShardedStatsAccounted(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW, workload.SPECjbb, workload.TPCH, workload.SPECweb)
	cfg.WarmupRefs, cfg.MeasureRefs = 30_000, 60_000
	cfg.Shards = 4

	res := mustRun(t, cfg)
	st := res.Shard
	if st.Shards != 4 || st.Workers != 3 {
		t.Fatalf("Shard = %+v, want Shards=4 Workers=3", st)
	}
	if st.Prefills == 0 {
		t.Error("no prefilled reference batches were adopted")
	}
	if st.SyncFills == 0 {
		t.Error("no inline fills recorded (warm-up should use the spine)")
	}
	if st.ThinkBatches == 0 {
		t.Error("no think batches were adopted")
	}

	cfg.Shards = 1
	if st := mustRun(t, cfg).Shard; st != (ShardStats{}) {
		t.Errorf("sequential run reported shard stats: %+v", st)
	}
}

// TestShardsRejected checks config validation of the shard universe.
func TestShardsRejected(t *testing.T) {
	cfg := fastCfg(4, sched.Affinity, workload.TPCW)
	for _, bad := range []int{-1, 3, 5, 32} {
		cfg.Shards = bad
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("Shards=%d accepted, want error", bad)
		}
	}
	cfg.Shards = 2
	cfg.Cores = 15
	cfg.GroupSize = 5
	if _, err := NewSystem(cfg); err == nil {
		t.Error("Shards=2 with 15 cores accepted, want error")
	}
}
