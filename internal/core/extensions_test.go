package core

// Tests for the §VII future-work extensions: larger machines (scaling
// studies) and per-VM thread counts.

import (
	"bytes"
	"testing"

	"consim/internal/sched"
	"consim/internal/trace"
	"consim/internal/workload"
)

func TestLargerMachine32Cores(t *testing.T) {
	all := workload.Specs()
	specs := []workload.Spec{}
	for i := 0; i < 8; i++ {
		specs = append(specs, all[workload.Class(i%int(workload.NumClasses))])
	}
	cfg := DefaultConfig(specs...)
	cfg.Cores = 32
	cfg.GroupSize = 4
	cfg.LLCBytes = 32 << 20
	cfg.Scale = 32
	cfg.WarmupRefs = 20_000
	cfg.MeasureRefs = 40_000
	res := mustRun(t, cfg)
	if len(res.VMs) != 8 {
		t.Fatalf("got %d VMs", len(res.VMs))
	}
	for _, v := range res.VMs {
		if v.Stats.Refs == 0 {
			t.Errorf("vm %d idle", v.VM)
		}
	}
	if len(res.Snapshot.Occupancy) != 8 {
		t.Errorf("expected 8 bank groups, got %d", len(res.Snapshot.Occupancy))
	}
}

func TestLargerMachine64Cores(t *testing.T) {
	all := workload.Specs()
	specs := []workload.Spec{}
	for i := 0; i < 16; i++ {
		specs = append(specs, all[workload.TPCH])
	}
	cfg := DefaultConfig(specs...)
	cfg.Cores = 64
	cfg.GroupSize = 8
	cfg.LLCBytes = 64 << 20
	cfg.Scale = 64
	cfg.WarmupRefs = 10_000
	cfg.MeasureRefs = 20_000
	res := mustRun(t, cfg)
	if len(res.VMs) != 16 {
		t.Fatalf("got %d VMs", len(res.VMs))
	}
}

func TestCoresBeyondMaskLimitRejected(t *testing.T) {
	cfg := DefaultConfig(workload.Specs()[workload.TPCH])
	cfg.Cores = 128
	cfg.GroupSize = 4
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("128-core machine accepted beyond the 64-node mask limit")
	}
}

func TestPerVMThreadCounts(t *testing.T) {
	all := workload.Specs()
	cfg := DefaultConfig(all[workload.SPECjbb], all[workload.TPCH])
	cfg.VMThreads = []int{8, 4}
	cfg.GroupSize = 4
	cfg.Scale = 32
	cfg.WarmupRefs = 20_000
	cfg.MeasureRefs = 40_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	asg := sys.Assignment()
	if len(asg[0]) != 8 || len(asg[1]) != 4 {
		t.Fatalf("thread counts = %d/%d, want 8/4", len(asg[0]), len(asg[1]))
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every scheduled core ran to the measurement target, so the twelve
	// threads issued at least 12x the per-core budget between them (fast
	// cores run past their target until the slowest finishes — the
	// paper's "restarted to keep the system at capacity").
	total := res.VMs[0].Stats.Refs + res.VMs[1].Stats.Refs
	if total < 12*cfg.MeasureRefs {
		t.Errorf("total measured refs %d below 12x budget %d", total, 12*cfg.MeasureRefs)
	}
	perThread0 := float64(res.VMs[0].Stats.Refs) / 8
	perThread1 := float64(res.VMs[1].Stats.Refs) / 4
	if perThread0 <= 0 || perThread1 <= 0 {
		t.Error("a VM made no progress")
	}
}

func TestPerVMThreadValidation(t *testing.T) {
	all := workload.Specs()
	cfg := DefaultConfig(all[workload.TPCH], all[workload.TPCH])
	cfg.VMThreads = []int{4} // wrong length
	if cfg.Validate() == nil {
		t.Error("mismatched VMThreads length accepted")
	}
	cfg.VMThreads = []int{4, 0}
	if cfg.Validate() == nil {
		t.Error("zero thread count accepted")
	}
	cfg.VMThreads = []int{12, 8} // 20 > 16
	if cfg.Validate() == nil {
		t.Error("over-committed VMThreads accepted")
	}
}

func TestMixedThreadCountsWithPolicies(t *testing.T) {
	all := workload.Specs()
	for _, p := range sched.All() {
		cfg := DefaultConfig(all[workload.TPCW], all[workload.TPCH], all[workload.SPECjbb])
		cfg.VMThreads = []int{6, 4, 2}
		cfg.Policy = p
		cfg.Scale = 64
		cfg.WarmupRefs = 5_000
		cfg.MeasureRefs = 10_000
		res := mustRun(t, cfg)
		for i, want := range []float64{6, 4, 2} {
			_ = want
			if res.VMs[i].Stats.Refs == 0 {
				t.Errorf("policy %v: vm %d idle", p, i)
			}
		}
	}
}

func TestTraceReplayEquivalence(t *testing.T) {
	// A simulation driven by a recorded trace must exactly match one
	// driven by the live generator that produced the trace.
	spec := workload.Specs()[workload.TPCH].Scaled(64)
	const refsPerThread = 40_000

	var rebuf bytes.Buffer
	if _, err := trace.Capture(&rebuf, workload.NewGenerator(spec, 4, 42), 4, refsPerThread); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(rebuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	mk := func(src workload.Source) Result {
		cfg := DefaultConfig(spec)
		cfg.Scale = 1 // spec pre-scaled
		cfg.GroupSize = 4
		cfg.WarmupRefs = 8_000
		cfg.MeasureRefs = 16_000
		cfg.Sources = []workload.Source{src}
		return mustRun(t, cfg)
	}
	live := mk(workload.NewGenerator(spec, 4, 42))
	replay := mk(rd)

	// Replaying the same trace twice is bit-exact: this is the paper's
	// checkpoint property ("the same set of transactions are run in
	// each simulation").
	rd2, err := trace.NewReader(bytes.NewReader(append([]byte(nil), rebuf.Bytes()...)))
	if err != nil {
		t.Fatal(err)
	}
	replay2 := mk(rd2)
	if replay.Cycles != replay2.Cycles || replay.VMs[0].Stats != replay2.VMs[0].Stats {
		t.Fatalf("two replays of one trace differ:\n%+v\n%+v", replay.VMs[0].Stats, replay2.VMs[0].Stats)
	}

	// Live generation interleaves threads by simulated timing, while the
	// capture froze a round-robin interleaving of the *shared* cursors
	// (scan, cold sweep) — the workload-level non-determinism §V cites
	// Alameldeen-Wood for. The two runs agree closely but not exactly.
	ratio := float64(live.Cycles) / float64(replay.Cycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("live/replay cycles diverge: %d vs %d", live.Cycles, replay.Cycles)
	}
}

func TestTraceSourceLengthMismatchRejected(t *testing.T) {
	spec := workload.Specs()[workload.TPCH]
	cfg := DefaultConfig(spec, spec)
	cfg.Sources = make([]workload.Source, 1)
	if cfg.Validate() == nil {
		t.Error("mismatched Sources length accepted")
	}
}

func TestRegionMissBreakdown(t *testing.T) {
	res := mustRun(t, fastCfg(1, sched.Affinity, workload.TPCH))
	st := res.VMs[0].Stats
	var sum uint64
	for _, n := range st.RegionMisses {
		sum += n
	}
	if sum != st.LLCMisses {
		t.Fatalf("region misses %d do not sum to LLC misses %d", sum, st.LLCMisses)
	}
	// TPC-H's private sweeps and shared tails must both miss; the
	// migratory region is where its dirty transfers originate.
	if st.RegionMisses[workload.RegionPrivate] == 0 ||
		st.RegionMisses[workload.RegionMigratory] == 0 {
		t.Errorf("region breakdown degenerate: %v", st.RegionMisses)
	}
}
