package core

import (
	"fmt"

	"consim/internal/obs"
	"consim/internal/sim"
	"consim/internal/vm"
	"consim/internal/workload"
)

// VMResult is one virtual machine's measured behaviour over the
// measurement window.
type VMResult struct {
	VM    int
	Class workload.Class
	Name  string

	Stats vm.Stats

	// Transactions completed in the measurement window (fractional; a
	// window rarely ends exactly on a transaction boundary).
	Transactions float64
	// CyclesPerTx is the paper's per-VM performance metric: window
	// cycles divided by transactions completed in the window.
	CyclesPerTx float64
	// TouchedBlocks is the distinct 64-byte blocks referenced across the
	// whole run (Table II footprint).
	TouchedBlocks uint64
}

// MissRate returns the per-VM LLC miss rate.
func (r VMResult) MissRate() float64 { return r.Stats.MissRate() }

// AvgMissLatency returns the per-VM average private-miss latency.
func (r VMResult) AvgMissLatency() float64 { return r.Stats.AvgMissLatency() }

// Snapshot is the Figure 12/13 state capture.
type Snapshot struct {
	// At is the cycle the snapshot was taken.
	At sim.Cycle
	// ResidentLines / ReplicatedLines count distinct lines in >=1 and
	// >=2 LLC banks.
	ResidentLines   int
	ReplicatedLines int
	// Occupancy[group][vmID] is the number of LLC lines in that bank
	// group inserted by that VM.
	Occupancy [][]int
	// GroupLines is each group's total line capacity.
	GroupLines int
}

// ReplicationFraction returns replicated/resident lines (Figure 12).
func (s Snapshot) ReplicationFraction() float64 {
	if s.ResidentLines == 0 {
		return 0
	}
	return float64(s.ReplicatedLines) / float64(s.ResidentLines)
}

// OccupancyShare returns VM v's fraction of bank group g's resident
// lines (Figure 13).
func (s Snapshot) OccupancyShare(g, v int) float64 {
	tot := 0
	for _, n := range s.Occupancy[g] {
		tot += n
	}
	if tot == 0 {
		return 0
	}
	return float64(s.Occupancy[g][v]) / float64(tot)
}

// Result is a complete run's output.
type Result struct {
	Config Config

	// Cycles is the length of the measurement window.
	Cycles sim.Cycle
	VMs    []VMResult

	Snapshot Snapshot

	// System-level contention indicators.
	NetAvgWait      float64 // mean link-queue cycles per mesh transfer
	NetAvgHops      float64
	MemAvgWait      float64 // mean controller-queue cycles per demand read
	DirCacheHitRate float64

	// Hypervisor activity over the whole run (warm-up included):
	// timeslice rotations and threads moved by dynamic rebalancing.
	Switches   uint64
	Migrations uint64

	// Replication metadata, filled by the experiment harness when a
	// configuration is run with multiple perturbed seeds (Alameldeen-
	// Wood statistical simulation): Replicates is the merged run count
	// and CptCV the per-VM coefficient of variation of
	// cycles-per-transaction across replicates.
	Replicates int
	CptCV      []float64

	// WallSeconds is host wall-clock time spent simulating (summed over
	// replicates when merged); provenance for run manifests, not a
	// simulated quantity.
	WallSeconds float64

	// Shard reports the intra-run parallel engine's activity; zero for
	// the sequential engine. Host-side provenance like WallSeconds — the
	// shard count never changes simulated results.
	Shard ShardStats

	// Sample reports the interval-sampling engine's activity; zero for a
	// detailed run. Unlike Shard this IS simulation-visible provenance:
	// sampled metrics are estimates whose achieved CI it records.
	Sample SampleStats

	// Pdes reports the split-transaction parallel engine's activity;
	// zero for the sequential engine. Like Sample it is simulation-
	// visible provenance: -pdes results are equivalence-gated estimates
	// of the sequential run, deterministic per (seed, Pdes, PdesWindow).
	Pdes PdesStats

	// Phase decomposes WallSeconds by engine phase (warmup/measure
	// split always; pdes window/replay/barrier, sample detailed/ff and
	// shard lane-occupancy terms when those engines ran). Host-side
	// provenance like WallSeconds.
	Phase obs.PhaseProfile

	// TimeseriesRun / TimeseriesRows identify this run's rows in the
	// -timeseries sidecar (zero when recording was off).
	TimeseriesRun  int
	TimeseriesRows int
}

// ManifestFor stamps a run manifest from a finished result: what was
// simulated (label, workloads, organization, scale, seed, budgets) and
// what it cost (simulated refs and cycles, host wall time). The caller
// fills process-wide fields (CPU time, tool version, git revision) via
// ManifestWriter.Write.
func ManifestFor(cfg Config, res Result, parallel int) obs.Manifest {
	names := make([]string, len(cfg.Workloads))
	for i, w := range cfg.Workloads {
		names[i] = w.Name
	}
	var refs uint64
	for _, v := range res.VMs {
		refs += v.Stats.Refs
	}
	reps := res.Replicates
	if reps == 0 {
		reps = 1
	}
	var phase *obs.PhaseProfile
	if !res.Phase.Zero() {
		p := res.Phase
		phase = &p
	}
	return obs.Manifest{
		Phase:          phase,
		TimeseriesRun:  res.TimeseriesRun,
		TimeseriesRows: res.TimeseriesRows,

		Label:        cfg.Label(),
		Workloads:    names,
		GroupSize:    cfg.GroupSize,
		Policy:       cfg.Policy.String(),
		Scale:        cfg.Scale,
		Seed:         cfg.Seed,
		WarmupRefs:   cfg.WarmupRefs,
		MeasureRefs:  cfg.MeasureRefs,
		SnapshotRefs: cfg.SnapshotRefs,
		Replicates:   reps,
		Refs:         refs,
		Cycles:       uint64(res.Cycles),
		WallSeconds:  res.WallSeconds,
		Parallel:     parallel,

		Shards:            res.Shard.Shards,
		ShardPrefills:     res.Shard.Prefills,
		ShardSyncFills:    res.Shard.SyncFills,
		ShardThinkBatches: res.Shard.ThinkBatches,
		ShardStalls:       res.Shard.Stalls,
		ShardStallSeconds: res.Shard.StallSeconds,

		SampleWindows:      res.Sample.Windows,
		SampleWindowRefs:   cfg.Sample.WindowRefs,
		SampleDetailedRefs: res.Sample.DetailedRefs,
		SampleSkippedRefs:  res.Sample.SkippedRefs,
		SampleRelCI:        res.Sample.AchievedRelCI,
		SampleStopReason:   res.Sample.StopReason,

		PdesWorkers:      res.Pdes.Workers,
		PdesDomains:      res.Pdes.Domains,
		PdesWindowCycles: uint64(res.Pdes.Window),
		PdesWindows:      res.Pdes.Windows,
		PdesOps:          res.Pdes.Ops,
		PdesStalls:        res.Pdes.Stalls,
		PdesStallSeconds:  res.Pdes.StallSeconds,
		PdesApplySeconds:  res.Pdes.ApplySeconds,
		PdesReplayWorkers: res.Pdes.ReplayWorkers,
		PdesPipelined:     res.Pdes.Pipelined,
	}
}

// FFCostRatio returns the sampled run's fast-forward cost: host wall
// time per fast-forwarded reference over host wall time per detailed
// reference (from the phase profile's detailed/ff split). The ratio is
// the sampling engine's Amdahl term — at a given window geometry the
// end-to-end speedup is bounded by detailed + ratio*skipped — and the
// bench gate tracks it like a throughput regression. Zero for detailed
// runs and for sampled runs that never fast-forwarded.
func (r Result) FFCostRatio() float64 {
	s := r.Sample
	if s.DetailedRefs == 0 || s.SkippedRefs == 0 ||
		r.Phase.SampleDetailedSeconds <= 0 || r.Phase.SampleFFSeconds <= 0 {
		return 0
	}
	detPerRef := r.Phase.SampleDetailedSeconds / float64(s.DetailedRefs)
	ffPerRef := r.Phase.SampleFFSeconds / float64(s.SkippedRefs)
	return ffPerRef / detPerRef
}

// ByClass returns the results of all VMs running the given workload, in
// VM order.
func (r Result) ByClass(c workload.Class) []VMResult {
	var out []VMResult
	for _, v := range r.VMs {
		if v.Class == c {
			out = append(out, v)
		}
	}
	return out
}

// String summarizes the run for logs.
func (r Result) String() string {
	s := fmt.Sprintf("%s/%s: %d cycles", r.Config.SharingName(), r.Config.Policy, r.Cycles)
	for _, v := range r.VMs {
		s += fmt.Sprintf("\n  vm%d %-8s cpt=%.0f missRate=%.4f missLat=%.1f c2c=%.2f",
			v.VM, v.Name, v.CyclesPerTx, v.MissRate(), v.AvgMissLatency(), v.Stats.C2CFraction())
	}
	return s
}
