package consim_test

// One benchmark per artifact of the paper's evaluation section (Table II
// and Figures 2-13), each regenerating the artifact end-to-end at reduced
// scale. `go test -bench=Fig -benchmem` exercises every experiment; the
// full-scale numbers recorded in EXPERIMENTS.md come from cmd/tables.
//
// Scale 16 divides footprints and cache capacities together, preserving
// the capacity ratios that drive the behaviour; the reference budgets are
// proportionally reduced.

import (
	"testing"

	"consim"
)

// benchRunner returns a fresh runner per iteration so memoization never
// turns later iterations into cache lookups.
func benchRunner() *consim.Runner {
	return consim.NewRunner(consim.RunnerOptions{
		Scale:       16,
		WarmupRefs:  40_000,
		MeasureRefs: 80_000,
		Seed:        1,
	})
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := benchRunner().RunFigure(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTableII regenerates the workload-statistics table (isolated
// private-LLC runs of all four workloads).
func BenchmarkTableII(b *testing.B) { benchFigure(b, "T2") }

// BenchmarkFig2 regenerates isolated performance across LLC
// organizations and policies.
func BenchmarkFig2(b *testing.B) { benchFigure(b, "F2") }

// BenchmarkFig3 regenerates isolated miss rates.
func BenchmarkFig3(b *testing.B) { benchFigure(b, "F3") }

// BenchmarkFig4 regenerates isolated miss latencies across three
// organizations and all four policies.
func BenchmarkFig4(b *testing.B) { benchFigure(b, "F4") }

// BenchmarkFig5 regenerates homogeneous-mix performance per policy.
func BenchmarkFig5(b *testing.B) { benchFigure(b, "F5") }

// BenchmarkFig6 regenerates homogeneous-mix miss latencies.
func BenchmarkFig6(b *testing.B) { benchFigure(b, "F6") }

// BenchmarkFig7 regenerates homogeneous-mix miss rates.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "F7") }

// BenchmarkFig8 regenerates heterogeneous-mix performance (Mixes 1-9).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "F8") }

// BenchmarkFig9 regenerates heterogeneous-mix miss rates.
func BenchmarkFig9(b *testing.B) { benchFigure(b, "F9") }

// BenchmarkFig10 regenerates heterogeneous-mix miss latencies.
func BenchmarkFig10(b *testing.B) { benchFigure(b, "F10") }

// BenchmarkFig11 regenerates the sharing-degree sweep.
func BenchmarkFig11(b *testing.B) { benchFigure(b, "F11") }

// BenchmarkFig12 regenerates the LLC replication snapshot study.
func BenchmarkFig12(b *testing.B) { benchFigure(b, "F12") }

// BenchmarkFig13 regenerates the per-workload occupancy snapshots.
func BenchmarkFig13(b *testing.B) { benchFigure(b, "F13") }

// BenchmarkSimulatorThroughput measures raw simulation speed: references
// simulated per second through the full hierarchy on a consolidated
// machine (the figure sweeps' inner loop).
func BenchmarkSimulatorThroughput(b *testing.B) {
	specs := consim.WorkloadSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := consim.DefaultConfig(
			specs[consim.TPCW], specs[consim.SPECjbb],
			specs[consim.TPCH], specs[consim.SPECweb],
		)
		cfg.Scale = 16
		cfg.GroupSize = 4
		cfg.WarmupRefs = 10_000
		cfg.MeasureRefs = 50_000
		res, err := consim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var refs uint64
		for _, v := range res.VMs {
			refs += v.Stats.Refs
		}
		b.ReportMetric(float64(refs), "refs/op")
	}
}
