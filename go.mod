module consim

go 1.22
