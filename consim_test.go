package consim_test

import (
	"testing"

	"consim"
)

// TestPublicAPIQuickstart exercises the facade exactly as README's
// quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	specs := consim.WorkloadSpecs()
	cfg := consim.DefaultConfig(specs[consim.TPCH])
	cfg.GroupSize = 4
	cfg.Policy = consim.Affinity
	cfg.Scale = 32
	cfg.WarmupRefs = 20_000
	cfg.MeasureRefs = 40_000

	res, err := consim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VMs) != 1 || res.VMs[0].Stats.Refs == 0 {
		t.Fatalf("degenerate result: %+v", res.VMs)
	}
}

func TestPublicAPIMixes(t *testing.T) {
	if len(consim.HeterogeneousMixes()) != 9 || len(consim.HomogeneousMixes()) != 4 {
		t.Error("Table IV mix counts wrong")
	}
	mix, err := consim.MixByID("7")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name() != "SPECjbb(3)+TPC-W(1)" {
		t.Errorf("Mix 7 = %s", mix.Name())
	}
}

func TestPublicAPILookups(t *testing.T) {
	if _, err := consim.WorkloadByName("TPC-W"); err != nil {
		t.Error(err)
	}
	if _, err := consim.PolicyByName("aff-rr"); err != nil {
		t.Error(err)
	}
	if len(consim.AllPolicies()) != 4 {
		t.Error("policy count wrong")
	}
	if len(consim.FigureIDs()) != 13 {
		t.Error("artifact count wrong")
	}
}

func TestPublicAPIRunnerFigure(t *testing.T) {
	r := consim.NewRunner(consim.RunnerOptions{
		Scale:       64,
		WarmupRefs:  10_000,
		MeasureRefs: 20_000,
	})
	tb, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("Table II rows = %d", len(tb.Rows))
	}
	if tb.Text() == "" || tb.Markdown() == "" || tb.CSV() == "" {
		t.Error("formatting empty")
	}
}

func TestSystemAssignmentExposed(t *testing.T) {
	specs := consim.WorkloadSpecs()
	cfg := consim.DefaultConfig(specs[consim.TPCW], specs[consim.SPECjbb])
	cfg.Scale = 64
	sys, err := consim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Assignment()) != 2 {
		t.Error("assignment shape wrong")
	}
}

func TestPublicAPIPhases(t *testing.T) {
	phases := consim.TwoPhase(1000)
	if len(phases) != 2 {
		t.Fatalf("TwoPhase returned %d phases", len(phases))
	}
	spec := consim.WorkloadSpecs()[consim.TPCH].WithPhases(phases...)
	if len(spec.Phases) != 2 {
		t.Error("WithPhases did not attach phases")
	}
	if len(consim.AblationIDs()) != 6 {
		t.Error("ablation IDs wrong")
	}
}
