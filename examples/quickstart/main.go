// Quickstart: simulate one server-consolidation scenario and print the
// per-VM metrics the paper's evaluation is built on.
//
// Two TPC-W bookstores and two SPECjbb middleware servers are
// consolidated onto the 16-core machine with shared-4-way last-level
// caches under affinity scheduling, then compared against SPECjbb running
// alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"consim"
)

func main() {
	specs := consim.WorkloadSpecs()

	// A consolidated configuration: four VMs fill the machine.
	cfg := consim.DefaultConfig(
		specs[consim.TPCW], specs[consim.TPCW],
		specs[consim.SPECjbb], specs[consim.SPECjbb],
	)
	cfg.GroupSize = 4            // four cores share each LLC bank
	cfg.Policy = consim.Affinity // pack each VM's threads together
	cfg.Scale = 8                // 1/8 scale keeps this demo fast
	cfg.WarmupRefs = 150_000
	cfg.MeasureRefs = 300_000

	res, err := consim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("consolidated: %s LLC, %s scheduling\n", cfg.SharingName(), cfg.Policy)
	fmt.Printf("%-4s %-8s %10s %10s %9s %7s\n", "vm", "workload", "cyc/tx", "missRate", "missLat", "c2c")
	for _, v := range res.VMs {
		fmt.Printf("%-4d %-8s %10.0f %10.4f %9.1f %7.3f\n",
			v.VM, v.Name, v.CyclesPerTx, v.MissRate(), v.AvgMissLatency(), v.Stats.C2CFraction())
	}

	// The same SPECjbb isolated with the whole chip, for comparison.
	iso := consim.DefaultConfig(specs[consim.SPECjbb])
	iso.GroupSize = 16 // one fully shared 16MB cache
	iso.Scale = cfg.Scale
	iso.WarmupRefs = cfg.WarmupRefs
	iso.MeasureRefs = cfg.MeasureRefs
	isoRes, err := consim.Run(iso)
	if err != nil {
		log.Fatal(err)
	}

	base := isoRes.VMs[0]
	mixed := res.VMs[2] // first SPECjbb instance in the mix
	fmt.Printf("\nSPECjbb isolated:     %10.0f cycles/tx, miss rate %.4f\n", base.CyclesPerTx, base.MissRate())
	fmt.Printf("SPECjbb consolidated: %10.0f cycles/tx, miss rate %.4f\n", mixed.CyclesPerTx, mixed.MissRate())
	fmt.Printf("slowdown from sharing the chip with TPC-W: %.2fx\n", mixed.CyclesPerTx/base.CyclesPerTx)
}
