// Scheduling-study: a hypervisor administrator's view of §III-D — which
// thread-placement policy should a consolidated box use?
//
// For a chosen Table IV mix, this example runs all four policies
// (round-robin, affinity, the hybrid, random), reports each workload's
// slowdown relative to isolation, and recommends the policy with the
// best worst-case slowdown (a fairness-aware choice, per §VIII).
//
//	go run ./examples/scheduling-study          # Mix 8 by default
//	go run ./examples/scheduling-study -mix A
package main

import (
	"flag"
	"fmt"
	"log"

	"consim"
)

func main() {
	mixID := flag.String("mix", "8", "Table IV mix to study (1-9, A-D)")
	scale := flag.Int("scale", 8, "simulation scale divisor")
	flag.Parse()

	mix, err := consim.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy study for %s (%s), shared-4-way LLC\n\n", mix.ID, mix.Name())

	r := consim.NewRunner(consim.RunnerOptions{
		Scale:       *scale,
		WarmupRefs:  150_000,
		MeasureRefs: 300_000,
	})

	type outcome struct {
		policy consim.Policy
		worst  float64
		mean   float64
	}
	var outcomes []outcome

	fmt.Printf("%-10s", "policy")
	for i, c := range mix.Classes {
		fmt.Printf(" %9s", fmt.Sprintf("vm%d:%s", i, c))
	}
	fmt.Printf(" %9s\n", "worst")

	for _, p := range consim.AllPolicies() {
		res, err := r.RunMix(mix, 4, p)
		if err != nil {
			log.Fatal(err)
		}
		worst, sum := 0.0, 0.0
		fmt.Printf("%-10s", p)
		for _, v := range res.VMs {
			base, err := r.IsolationBaseline(v.Class)
			if err != nil {
				log.Fatal(err)
			}
			slow := v.CyclesPerTx / base.CyclesPerTx
			fmt.Printf(" %9.3f", slow)
			sum += slow
			if slow > worst {
				worst = slow
			}
		}
		fmt.Printf(" %9.3f\n", worst)
		outcomes = append(outcomes, outcome{p, worst, sum / float64(len(res.VMs))})
	}

	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.worst < best.worst {
			best = o
		}
	}
	fmt.Printf("\nrecommendation: bind threads with %q scheduling ", best.policy)
	fmt.Printf("(worst-case slowdown %.2fx, mean %.2fx)\n", best.worst, best.mean)
	fmt.Println("\nslowdowns are cycles-per-transaction relative to the same workload")
	fmt.Println("isolated on 4 cores with the full 16MB LLC (the paper's baseline).")
}
