// Scaling-study: the paper's §VII future-work question — do the 16-core
// trends hold at higher degrees of consolidation?
//
// The same heterogeneous blend (alternating SPECjbb and TPC-H VMs) is
// consolidated onto 16-, 32- and 64-core machines (4, 8 and 16 VMs,
// machine always at capacity, shared-4-way LLC scaled with the core
// count), and each workload's slowdown relative to its 16-core isolation
// baseline is reported.
//
//	go run ./examples/scaling-study
package main

import (
	"fmt"
	"log"

	"consim"
)

func main() {
	specs := consim.WorkloadSpecs()

	// 16-core isolation baselines (the paper's §V reference).
	baseline := map[consim.WorkloadClass]float64{}
	for _, class := range []consim.WorkloadClass{consim.SPECjbb, consim.TPCH} {
		cfg := consim.DefaultConfig(specs[class])
		cfg.GroupSize = 16
		cfg.Scale = 16
		cfg.WarmupRefs = 80_000
		cfg.MeasureRefs = 160_000
		res, err := consim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		baseline[class] = res.VMs[0].CyclesPerTx
	}

	fmt.Println("consolidation scaling: alternating SPECjbb/TPC-H VMs, shared-4-way, affinity")
	fmt.Printf("%8s %6s %14s %14s %12s %12s\n",
		"cores", "VMs", "jbb slowdown", "tpch slowdown", "jbb missRt", "tpch missRt")

	for _, cores := range []int{16, 32, 64} {
		nVMs := cores / 4
		var loads []consim.WorkloadSpec
		for i := 0; i < nVMs; i++ {
			if i%2 == 0 {
				loads = append(loads, specs[consim.SPECjbb])
			} else {
				loads = append(loads, specs[consim.TPCH])
			}
		}
		cfg := consim.DefaultConfig(loads...)
		cfg.Cores = cores
		cfg.GroupSize = 4
		// Keep per-core LLC constant (1MB/core at paper scale) as the
		// chip grows, matching how real products scale cache with cores.
		cfg.LLCBytes = cores << 20
		cfg.Scale = 16
		cfg.WarmupRefs = 80_000
		cfg.MeasureRefs = 160_000

		res, err := consim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var jbbSlow, hSlow, jbbMiss, hMiss float64
		var nj, nh int
		for _, v := range res.VMs {
			switch v.Class {
			case consim.SPECjbb:
				jbbSlow += v.CyclesPerTx / baseline[consim.SPECjbb]
				jbbMiss += v.MissRate()
				nj++
			case consim.TPCH:
				hSlow += v.CyclesPerTx / baseline[consim.TPCH]
				hMiss += v.MissRate()
				nh++
			}
		}
		fmt.Printf("%8d %6d %14.2f %14.2f %12.4f %12.4f\n",
			cores, nVMs,
			jbbSlow/float64(nj), hSlow/float64(nh),
			jbbMiss/float64(nj), hMiss/float64(nh))
	}
	fmt.Println("\nslowdowns are relative to the workload isolated on the 16-core chip;")
	fmt.Println("directory, mesh and memory-controller pressure grow with the machine.")
}
