// Capacity-planner: the paper's §V-D question as a what-if tool — given a
// consolidation mix, how should the chip's 16MB of last-level cache be
// carved up (private, shared-2/4/8-way, fully shared)?
//
// The planner sweeps the organizations under affinity scheduling, prints
// each workload's slowdown and miss latency per organization, flags
// fairness problems from the occupancy snapshot (a VM squeezed below half
// its fair share), and recommends the organization with the best
// worst-case slowdown.
//
//	go run ./examples/capacity-planner                # Mix 5 by default
//	go run ./examples/capacity-planner -mix 9
package main

import (
	"flag"
	"fmt"
	"log"

	"consim"
)

func main() {
	mixID := flag.String("mix", "5", "Table IV mix to plan for (1-9, A-D)")
	scale := flag.Int("scale", 8, "simulation scale divisor")
	flag.Parse()

	mix, err := consim.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LLC organization study for %s (%s), affinity scheduling\n\n", mix.ID, mix.Name())

	r := consim.NewRunner(consim.RunnerOptions{
		Scale:       *scale,
		WarmupRefs:  150_000,
		MeasureRefs: 300_000,
	})

	groupSizes := []int{1, 2, 4, 8, 16}
	names := map[int]string{1: "private", 2: "shared-2", 4: "shared-4", 8: "shared-8", 16: "shared-16"}

	bestGS, bestWorst := 0, 0.0
	for _, gs := range groupSizes {
		res, err := r.RunMix(mix, gs, consim.Affinity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", names[gs])
		worst := 0.0
		for _, v := range res.VMs {
			base, err := r.IsolationBaseline(v.Class)
			if err != nil {
				log.Fatal(err)
			}
			slow := v.CyclesPerTx / base.CyclesPerTx
			if slow > worst {
				worst = slow
			}
			fmt.Printf("  vm%d %-8s slowdown %6.2fx  missLat %7.1f cy  missRate %.4f\n",
				v.VM, v.Name, slow, v.AvgMissLatency(), v.MissRate())
		}
		// Fairness check from the occupancy snapshot: with G groups and
		// 4 VMs, a VM's fair share of the total LLC is 1/4.
		snap := res.Snapshot
		total := make([]float64, len(res.VMs))
		for g := range snap.Occupancy {
			for v := range res.VMs {
				total[v] += snap.OccupancyShare(g, v) / float64(len(snap.Occupancy))
			}
		}
		for v, share := range total {
			if share < 0.125 { // below half the fair 25%
				fmt.Printf("  fairness: vm%d %s holds only %.1f%% of the LLC (fair share 25%%)\n",
					v, res.VMs[v].Name, 100*share)
			}
		}
		if bestGS == 0 || worst < bestWorst {
			bestGS, bestWorst = gs, worst
		}
		fmt.Println()
	}
	fmt.Printf("recommendation: %s LLC (worst-case slowdown %.2fx)\n", names[bestGS], bestWorst)
}
