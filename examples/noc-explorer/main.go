// NoC-explorer: drive the flit-level mesh (Table III's interconnect —
// 4x4 packet-switched, virtual channels, DOR, 3-stage speculative
// routers) with uniform-random traffic and print its load-latency curve,
// alongside the analytic model's unloaded prediction.
//
// This is the substrate validation promised in DESIGN.md made visible:
// at low load the flit-level mean matches the analytic model; past
// saturation, queueing dominates.
//
//	go run ./examples/noc-explorer
//	go run ./examples/noc-explorer -flits 5 -cycles 20000
//	go run ./examples/noc-explorer -routing o1turn
package main

import (
	"flag"
	"fmt"

	"consim/internal/mesh"
	"consim/internal/sim"
)

func main() {
	flits := flag.Int("flits", 5, "packet size in flits (5 = one 64B line)")
	cycles := flag.Int("cycles", 10000, "measurement window per load point")
	routing := flag.String("routing", "dor", "routing algorithm: dor, o1turn")
	flag.Parse()

	cfg := mesh.DefaultNetConfig(16)
	if *routing == "o1turn" {
		cfg.Routing = mesh.O1TURN
	}
	model := mesh.NewModel(cfg.Geometry, cfg.PipeStages)

	// Mean unloaded latency over all pairs, from the analytic model.
	var sum sim.Cycle
	n := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			sum += model.Unloaded(s, d, *flits)
			n++
		}
	}
	fmt.Printf("4x4 mesh, %d VCs, depth %d, %d-stage routers, %d-flit packets, %s routing\n",
		cfg.VCs, cfg.BufDepth, cfg.PipeStages, *flits, cfg.Routing)
	fmt.Printf("analytic unloaded mean latency: %.1f cycles\n\n", float64(sum)/float64(n))

	fmt.Printf("%12s %12s %12s %12s\n", "inject rate", "offered", "delivered", "avg latency")
	for _, rate := range []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.12} {
		net := mesh.NewNetwork(cfg)
		r := sim.NewRNG(42)
		injected := 0
		for c := 0; c < *cycles; c++ {
			for node := 0; node < 16; node++ {
				if r.Bool(rate) {
					dst := r.Intn(16)
					net.Inject(node, dst, *flits)
					injected++
				}
			}
			net.Tick()
		}
		net.Drain(sim.Cycle(*cycles * 10))
		fmt.Printf("%12.3f %12d %12d %12.1f\n",
			rate, injected, int(net.DeliveredPkts), net.AvgLatency())
	}
	fmt.Println("\ninject rate = packets per node per cycle; latency grows toward")
	fmt.Println("saturation as offered load approaches the mesh's bisection limit.")
}
