// Performance-isolation: the paper's closing argument made executable —
// "our results, showing that the behavior of one virtual machine may
// affect the other, suggest that perhaps a guarantee of apparent workload
// isolation ... should feasibly extend from functional isolation into
// performance isolation."
//
// One SPECjbb VM shares every LLC bank with three TPC-W bookstores under
// round-robin placement (the worst case the paper identifies in Mixes
// 7-9). The study compares three LLC policies:
//
//   - free-for-all LRU (the paper's "status quo" and its fairness worry),
//   - an equal way-partition (fair split),
//   - a prioritized partition giving SPECjbb a 5x share (CQoS-style).
//
// It also reports the counterintuitive equal-split result this model
// surfaces: LRU already favors reuse-heavy tenants, so a "fair" split can
// take capacity *away* from the tenant it means to protect.
//
//	go run ./examples/performance-isolation
package main

import (
	"fmt"
	"log"

	"consim"
)

func main() {
	specs := consim.WorkloadSpecs()

	run := func(partition bool, shares []int) consim.Result {
		cfg := consim.DefaultConfig(
			specs[consim.SPECjbb],
			specs[consim.TPCW], specs[consim.TPCW], specs[consim.TPCW],
		)
		cfg.GroupSize = 4
		cfg.Policy = consim.RoundRobin // every bank hosts all four VMs
		cfg.Scale = 8
		cfg.WarmupRefs = 150_000
		cfg.MeasureRefs = 300_000
		cfg.QoSPartition = partition
		cfg.QoSShares = shares
		res, err := consim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	report := func(label string, res consim.Result) {
		jbb := res.VMs[0]
		var tpcwRate float64
		for _, v := range res.VMs[1:] {
			tpcwRate += v.MissRate()
		}
		tpcwRate /= 3
		occ := 0.0
		for g := range res.Snapshot.Occupancy {
			occ += res.Snapshot.OccupancyShare(g, 0)
		}
		occ /= float64(len(res.Snapshot.Occupancy))
		fmt.Printf("%-22s jbb: missRate=%.4f missLat=%6.1f occ=%4.1f%%   tpcw missRate=%.4f\n",
			label, jbb.MissRate(), jbb.AvgMissLatency(), 100*occ, tpcwRate)
	}

	fmt.Println("performance isolation: SPECjbb vs 3x TPC-W, round robin, shared-4-way")
	report("free-for-all LRU", run(false, nil))
	report("equal partition", run(true, nil))
	report("jbb 5x priority", run(true, []int{5, 1, 1, 1}))

	fmt.Println(`
The prioritized partition is the performance-isolation guarantee the
paper's conclusion asks for: SPECjbb's misses drop and its occupancy is
protected regardless of the co-scheduled bookstores. Note the equal
split: plain LRU already favors a reuse-heavy tenant, so "fair" way
counts can reduce its capacity below what it wins naturally.`)
}
