// Phase-alignment: the paper's §VII proposal made concrete — "by doing
// some phase analysis and aligning different combinations of phases from
// different workloads ... one can study the interactions in more depth.
// Such an analysis would give an indication of the range of
// interference."
//
// Two phased TPC-W bookstore VMs (alternating scan-heavy and
// update-heavy phases) share one 8MB shared-8-way bank, next to two
// SPECjbb VMs in the other. The second
// TPC-W VM's phase cycle is shifted by 0, ¼, and ½ of a period; the
// spread of each workload's slowdown across alignments is the paper's
// "range of interference".
//
//	go run ./examples/phase-alignment
package main

import (
	"fmt"
	"log"

	"consim"
)

func main() {
	specs := consim.WorkloadSpecs()
	const phaseRefs = 60_000 // per-thread phase length at this scale

	run := func(offset uint64) (tpchSlow, jbbSlow float64) {
		phased := specs[consim.TPCW].Scaled(8).WithPhases(consim.TwoPhase(phaseRefs / 8)...)
		shifted := phased
		shifted.PhaseOffset = offset / 8

		jbb := specs[consim.SPECjbb].Scaled(8)
		cfg := consim.DefaultConfig(phased, shifted, jbb, jbb)
		cfg.Scale = 1 // specs pre-scaled above so phases scale once
		cfg.GroupSize = 8
		cfg.Policy = consim.Affinity
		cfg.WarmupRefs = 150_000
		cfg.MeasureRefs = 300_000

		res, err := consim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Baseline: the phased TPC-H isolated with the whole chip.
		iso := consim.DefaultConfig(phased)
		iso.Scale = 1
		iso.GroupSize = 16
		iso.WarmupRefs = cfg.WarmupRefs
		iso.MeasureRefs = cfg.MeasureRefs
		isoRes, err := consim.Run(iso)
		if err != nil {
			log.Fatal(err)
		}
		isoJbb := consim.DefaultConfig(jbb)
		isoJbb.Scale = 1
		isoJbb.GroupSize = 16
		isoJbb.WarmupRefs = cfg.WarmupRefs
		isoJbb.MeasureRefs = cfg.MeasureRefs
		isoJbbRes, err := consim.Run(isoJbb)
		if err != nil {
			log.Fatal(err)
		}

		tpchSlow = (res.VMs[0].CyclesPerTx + res.VMs[1].CyclesPerTx) / 2 / isoRes.VMs[0].CyclesPerTx
		jbbSlow = (res.VMs[2].CyclesPerTx + res.VMs[3].CyclesPerTx) / 2 / isoJbbRes.VMs[0].CyclesPerTx
		return
	}

	fmt.Println("phase-alignment study: 2x phased TPC-W + 2x SPECjbb, shared-8-way, affinity")
	fmt.Printf("%-12s %14s %14s\n", "alignment", "tpcw slowdown", "jbb slowdown")
	var lo, hi float64
	for i, off := range []uint64{0, phaseRefs / 2, phaseRefs} {
		labels := []string{"in-phase", "quarter", "anti-phase"}
		tp, jb := run(off)
		fmt.Printf("%-12s %14.3f %14.3f\n", labels[i], tp, jb)
		if i == 0 || tp < lo {
			lo = tp
		}
		if i == 0 || tp > hi {
			hi = tp
		}
	}
	fmt.Printf("\nrange of interference for TPC-W across alignments: %.3f - %.3f (spread %.1f%%)\n",
		lo, hi, 100*(hi-lo)/lo)
	fmt.Println(`
Note the small spread: phases progress with each thread's *references*,
so a VM's cache-hostile phase stretches in wall-clock time (it runs
slower) and the two VMs' relative phase drifts over the run. Initial
alignment therefore washes out in steady state — one answer to the
paper's open question about the range of interference, and a reason
start-time alignment ("workload start times deserve further
exploration", §VIII) matters less over long consolidated runs.`)
}
