// Command calibrate runs each workload model in isolation on the private
// LLC configuration (Table II's reference setup) and prints measured vs
// paper statistics, for tuning the workload parameters in
// internal/workload/spec.go. All runs execute through one bounded pool
// (-parallel, default GOMAXPROCS); output order is fixed regardless.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"consim"
	"consim/internal/core"
	"consim/internal/obs"
	"consim/internal/workload"
)

func main() {
	scale := flag.Int("scale", 1, "divide footprints and cache capacities")
	warm := flag.Uint64("warm", 600_000, "warm-up references per core")
	meas := flag.Uint64("meas", 1_000_000, "measured references per core")
	only := flag.String("only", "", "run a single workload by name")
	gradient := flag.Bool("gradient", false, "also print the capacity gradient (miss rate and runtime at shared/shared-4/private)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), consim.ParallelFlagUsage)
	shards := flag.Int("shards", 1, consim.ShardsFlagUsage)
	var sflags consim.SampleFlags
	sflags.Register(flag.CommandLine)
	var pflags consim.PdesFlags
	pflags.Register(flag.CommandLine)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, err := ocli.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ostop() //nolint:errcheck // diagnostics-only sinks

	if err := consim.ValidateShards(*shards); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pflags.CheckExclusive(*shards, sflags.Config()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	gradientSizes := []int{16, 4, 1}

	// Build the whole job list first (one private-LLC run per workload,
	// plus the gradient runs when requested), execute it through the
	// bounded pool, then print rows in the fixed workload order.
	var specs []workload.Spec
	var cfgs []core.Config
	mkCfg := func(spec workload.Spec, gs int) core.Config {
		cfg := core.DefaultConfig(spec)
		cfg.GroupSize = gs
		cfg.Scale = *scale
		cfg.WarmupRefs = *warm
		cfg.MeasureRefs = *meas
		cfg.Shards = *shards
		cfg.Sample = sflags.Config()
		pflags.Apply(&cfg) //nolint:errcheck // pair consistency checked above
		return cfg
	}
	for _, spec := range workload.Specs() {
		if *only != "" && spec.Name != *only {
			continue
		}
		specs = append(specs, spec)
		cfgs = append(cfgs, mkCfg(spec, 1))
		if *gradient {
			for _, gs := range gradientSizes {
				cfgs = append(cfgs, mkCfg(spec, gs))
			}
		}
	}
	for i := range cfgs {
		cfgs[i].Obs = o.Hooks()
	}
	results, err := consim.RunConfigs(cfgs, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if o != nil && o.Man != nil {
		for i := range cfgs {
			if err := o.Man.Write(core.ManifestFor(cfgs[i], results[i], *parallel)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	perSpec := 1
	if *gradient {
		perSpec += len(gradientSizes)
	}
	fmt.Printf("%-9s %7s %7s %7s | %7s %7s %7s | %9s %9s | %8s %8s\n",
		"workload", "c2c", "clean", "dirty", "tgt", "tgtCl", "tgtDy", "blocksK", "tgtBlkK", "missRate", "missLat")
	for i, spec := range specs {
		tgt := workload.TableII()[spec.Class]
		res := results[i*perSpec]
		v := res.VMs[0]
		st := v.Stats
		fmt.Printf("%-9s %7.3f %7.3f %7.3f | %7.2f %7.2f %7.2f | %9d %9d | %8.4f %8.1f\n",
			spec.Name,
			st.C2COfLLCMisses(), 1-st.C2CDirtyShare(), st.C2CDirtyShare(),
			tgt.C2CAll, tgt.C2CClean, tgt.C2CDirty,
			v.TouchedBlocks/1000, tgt.BlocksK,
			v.MissRate(), v.AvgMissLatency())

		if *gradient {
			base := 0.0
			for j, gs := range gradientSizes {
				gv := results[i*perSpec+1+j].VMs[0]
				if gs == 16 {
					base = gv.CyclesPerTx
				}
				fmt.Printf("          gs=%-2d missRate=%.4f missLat=%6.1f relPerf=%.3f\n",
					gs, gv.MissRate(), gv.AvgMissLatency(), gv.CyclesPerTx/base)
			}
		}
	}
}
