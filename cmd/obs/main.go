// Command obs analyses recorded runs and watches live ones — the
// reading side of the observability sidecars the simulator CLIs write
// (-manifest, -timeseries, -debug-addr) and of cmd/bench's history:
//
//	obs report results/MANIFEST.jsonl            phase/Amdahl report of the
//	                                             last run (+ time series)
//	obs report -label shared/affinity ...        ... of the last matching run
//	obs diff results/MANIFEST.jsonl              last two runs in one file
//	obs diff old.jsonl new.jsonl                 last run of each file
//	obs diff -threshold 0.10 BENCH_consim.json   bench history entries
//	obs top -addr 127.0.0.1:6060                 poll a live -debug-addr
//
// diff exits 1 when any metric regresses beyond its threshold, so it
// slots into CI next to cmd/bench's gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"consim/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = report(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "top":
		err = top(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: obs {report|diff|top} [flags] [paths]")
	os.Exit(2)
}

// report renders the phase decomposition of one manifest record, plus
// the per-VM summary of its -timeseries rows when the sidecar resolves.
func report(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	label := fs.String("label", "", "report the newest record with this label (default: newest record)")
	index := fs.Int("index", -1, "record to report, counting back from the end (-1 = newest)")
	tsPath := fs.String("ts", "", "time-series sidecar (default: the path recorded in the manifest)")
	all := fs.Bool("all", false, "report every record in the file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report: want one manifest path, got %d args", fs.NArg())
	}
	ms, err := obs.ReadManifests(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		return fmt.Errorf("%s: no manifest records", fs.Arg(0))
	}
	var picked []obs.Manifest
	switch {
	case *all:
		picked = ms
	case *label != "":
		for i := len(ms) - 1; i >= 0; i-- {
			if ms[i].Label == *label {
				picked = ms[i : i+1]
				break
			}
		}
		if picked == nil {
			return fmt.Errorf("%s: no record labelled %q", fs.Arg(0), *label)
		}
	default:
		i := len(ms) + *index
		if i < 0 || i >= len(ms) {
			return fmt.Errorf("%s: index %d out of range (%d records)", fs.Arg(0), *index, len(ms))
		}
		picked = ms[i : i+1]
	}
	for i, m := range picked {
		if i > 0 {
			fmt.Println()
		}
		var rows []obs.TSRow
		if path := seriesPath(*tsPath, m); path != "" {
			rows, err = obs.ReadTimeSeries(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs: time series %s: %v (summary skipped)\n", path, err)
			}
		}
		obs.WritePhaseReport(os.Stdout, m, rows)
	}
	return nil
}

// seriesPath resolves which sidecar to read for m: the -ts override, or
// the path the run recorded.
func seriesPath(override string, m obs.Manifest) string {
	if override != "" {
		return override
	}
	return m.Timeseries
}

// diff compares two runs — the last two records of one file, or the
// last record of each of two files — and exits non-zero on regressions.
func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	thresh := fs.Float64("threshold", 0.05, "fractional throughput-regression threshold")
	fs.Parse(args)
	var base, cur obs.RunSummary
	switch fs.NArg() {
	case 1:
		runs, kind, err := obs.ReadRunSummaries(fs.Arg(0))
		if err != nil {
			return err
		}
		if len(runs) < 2 {
			return fmt.Errorf("%s: need two records to diff, have %d (%s)", fs.Arg(0), len(runs), kind)
		}
		base, cur = runs[len(runs)-2], runs[len(runs)-1]
	case 2:
		b, _, err := obs.ReadRunSummaries(fs.Arg(0))
		if err != nil {
			return err
		}
		c, _, err := obs.ReadRunSummaries(fs.Arg(1))
		if err != nil {
			return err
		}
		if len(b) == 0 || len(c) == 0 {
			return fmt.Errorf("diff: empty run file")
		}
		base, cur = b[len(b)-1], c[len(c)-1]
	default:
		return fmt.Errorf("diff: want one or two paths, got %d args", fs.NArg())
	}
	if n := obs.DiffSummaries(os.Stdout, base, cur, *thresh); n > 0 {
		return fmt.Errorf("%d regression(s) beyond thresholds", n)
	}
	return nil
}

// top polls a live -debug-addr endpoint and renders the consim metric
// registry with per-interval deltas.
func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "debug endpoint (host:port of a -debug-addr run)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	polls := fs.Int("n", 0, "stop after this many polls (0 = until the endpoint goes away)")
	fs.Parse(args)
	var prev map[string]float64
	for i := 0; *polls == 0 || i < *polls; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := obs.FetchDebugVars(*addr)
		if err != nil {
			if i == 0 {
				return err
			}
			// The watched run finished and closed its listener; that is
			// the normal way an open-ended watch ends.
			fmt.Fprintf(os.Stderr, "obs: %s stopped answering (%v)\n", *addr, err)
			return nil
		}
		fmt.Printf("-- %s %s (poll %d)\n", *addr, time.Now().Format("15:04:05"), i+1)
		obs.WriteVarsTable(os.Stdout, cur, prev)
		prev = cur
	}
	return nil
}
