// Command consim runs one consolidation simulation from flags and prints
// per-VM metrics. -group accepts a comma-separated list of group sizes;
// with more than one, the sweep's simulations run concurrently (bounded
// by -parallel) and the reports print in list order. -shards parallelizes
// each simulation internally with bit-identical results — use it for a
// single long run, and -parallel when sweeping many. -pdes runs one
// simulation's active cores in parallel domains with windowed
// cross-domain coherence: faster on multi-core hosts, but metrics
// become equivalence-gated estimates (deterministic per seed).
//
// Examples:
//
//	consim -mix 5 -group 4 -policy affinity
//	consim -workloads TPC-H -group 1 -scale 4
//	consim -workloads TPC-W,TPC-W,SPECjbb,SPECjbb -policy rr
//	consim -mix 8 -group 1,4,16 -parallel 3
//	consim -mix 5 -shards 4
//	consim -mix 5 -pdes 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"consim"
	"consim/internal/core"
	"consim/internal/obs"
	"consim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consim:", err)
		os.Exit(1)
	}
}

// printPlacement draws the paper's Figure 1 view: the mesh grid with
// each core labeled by the VM running on it, and LLC group boundaries
// marked by the grouping of columns.
func printPlacement(cfg consim.Config, asg [][]int) {
	w := 1
	for w*w < cfg.Cores {
		w++
	}
	owner := make([]int, cfg.Cores)
	for c := range owner {
		owner[c] = -1
	}
	for v, cores := range asg {
		for _, c := range cores {
			owner[c] = v
		}
	}
	fmt.Printf("\nplacement (rows = mesh; cores grouped %d per LLC):\n", cfg.GroupSize)
	for c := 0; c < cfg.Cores; c++ {
		if c%w == 0 {
			fmt.Print("  ")
		}
		if owner[c] < 0 {
			fmt.Print(" .. ")
		} else {
			fmt.Printf(" v%-2d", owner[c])
		}
		if c%cfg.GroupSize == cfg.GroupSize-1 {
			fmt.Print("|")
		}
		if c%w == w-1 {
			fmt.Println()
		}
	}
}

// printHeader announces one configuration's machine and placement.
func printHeader(cfg consim.Config, specs []consim.WorkloadSpec, asg [][]int) {
	fmt.Printf("machine: %d cores, %s LLC, %s scheduling, scale 1/%d\n",
		cfg.Cores, cfg.SharingName(), cfg.Policy, cfg.Scale)
	for v, cores := range asg {
		fmt.Printf("  vm%d %-8s threads on cores %v\n", v, specs[v].Name, cores)
	}
	printPlacement(cfg, asg)
}

// printResult renders one run's per-VM metrics and system indicators.
func printResult(res consim.Result, regions, snapshot bool) {
	fmt.Printf("\nmeasurement window: %d cycles\n", res.Cycles)
	if sa := res.Sample; sa.Windows > 0 {
		fmt.Printf("sampled: %d windows, %d refs/core detailed, %d fast-forwarded (%s; rel 95%% CI %.3f) — metrics are estimates\n",
			sa.Windows, sa.DetailedRefs, sa.SkippedRefs, sa.StopReason, sa.AchievedRelCI)
	}
	if ps := res.Pdes; ps.Workers > 1 {
		replay := ""
		if ps.ReplayWorkers > 1 {
			replay = fmt.Sprintf(", sharded replay x%d", ps.ReplayWorkers)
			if ps.Pipelined {
				replay += " pipelined"
			}
		}
		fmt.Printf("parallel: %d domains (of %d workers), %d windows of %d cycles, %d replayed ops%s — metrics are estimates\n",
			ps.Domains, ps.Workers, ps.Windows, ps.Window, ps.Ops, replay)
	}
	fmt.Printf("%-4s %-8s %12s %10s %10s %8s %8s %8s %8s\n",
		"vm", "workload", "refs", "cyc/tx", "missRate", "missLat", "c2c", "c2cDirty", "memReads")
	for _, v := range res.VMs {
		fmt.Printf("%-4d %-8s %12d %10.0f %10.4f %8.1f %8.3f %8.3f %8d\n",
			v.VM, v.Name, v.Stats.Refs, v.CyclesPerTx, v.MissRate(),
			v.AvgMissLatency(), v.Stats.C2CFraction(), v.Stats.C2CDirtyShare(), v.Stats.MemReads)
	}
	if regions {
		fmt.Printf("\nLLC misses by footprint region:\n")
		for _, v := range res.VMs {
			fmt.Printf("  vm%d %-8s", v.VM, v.Name)
			total := v.Stats.LLCMisses
			for r, n := range v.Stats.RegionMisses {
				frac := 0.0
				if total > 0 {
					frac = float64(n) / float64(total)
				}
				fmt.Printf(" %s=%.2f", workload.RegionName(workload.Region(r)), frac)
			}
			fmt.Println()
		}
	}

	fmt.Printf("\ninterconnect: %.2f mean hops, %.2f mean link-wait cycles\n", res.NetAvgHops, res.NetAvgWait)
	fmt.Printf("memory: %.2f mean controller-queue cycles; directory cache hit rate %.3f\n",
		res.MemAvgWait, res.DirCacheHitRate)

	if snapshot {
		s := res.Snapshot
		fmt.Printf("\nsnapshot @%d: %d resident lines, %.1f%% replicated\n",
			s.At, s.ResidentLines, 100*s.ReplicationFraction())
		for g := range s.Occupancy {
			fmt.Printf("  bank %d:", g)
			for v := range res.VMs {
				fmt.Printf(" vm%d=%5.1f%%", v, 100*s.OccupancyShare(g, v))
			}
			fmt.Println()
		}
	}
}

// parseGroups parses the -group flag's comma-separated size list.
func parseGroups(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -group entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run() (err error) {
	var (
		mixID     = flag.String("mix", "", "Table IV mix to run (1-9, A-D); overrides -workloads")
		workloads = flag.String("workloads", "TPC-H", "comma-separated workload names (one VM each)")
		group     = flag.String("group", "4", "cores per LLC group (1=private, 2/4/8, 16=fully shared); a comma-separated list sweeps")
		policy    = flag.String("policy", "affinity", "scheduling policy: rr, affinity, aff-rr, random")
		scale     = flag.Int("scale", 1, "divide cache capacities and footprints (1 = paper scale)")
		seed      = flag.Uint64("seed", 1, "random seed")
		warm      = flag.Uint64("warm", 600_000, "warm-up references per core")
		meas      = flag.Uint64("meas", 1_000_000, "measured references per core")
		snapshot  = flag.Bool("snapshot", false, "print the replication/occupancy snapshot")
		asJSON    = flag.Bool("json", false, "emit the full result as JSON (an array when sweeping groups)")
		regions   = flag.Bool("regions", false, "break each VM's LLC misses down by footprint region")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), consim.ParallelFlagUsage)
		shards    = flag.Int("shards", 1, consim.ShardsFlagUsage)
	)
	var sflags consim.SampleFlags
	sflags.Register(flag.CommandLine)
	var pflags consim.PdesFlags
	pflags.Register(flag.CommandLine)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, oerr := ocli.Start(os.Stderr)
	if oerr != nil {
		return oerr
	}
	defer func() {
		if cerr := ostop(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var specs []consim.WorkloadSpec
	if *mixID != "" {
		mix, err := consim.MixByID(*mixID)
		if err != nil {
			return err
		}
		all := consim.WorkloadSpecs()
		for _, c := range mix.Classes {
			specs = append(specs, all[c])
		}
		fmt.Printf("running %s (%s)\n", mix.ID, mix.Name())
	} else {
		for _, name := range strings.Split(*workloads, ",") {
			spec, err := consim.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			specs = append(specs, spec)
		}
	}
	pol, err := consim.PolicyByName(*policy)
	if err != nil {
		return err
	}
	groups, err := parseGroups(*group)
	if err != nil {
		return err
	}
	if err := consim.ValidateShards(*shards); err != nil {
		return err
	}

	cfgs := make([]consim.Config, len(groups))
	for i, gs := range groups {
		cfg := consim.DefaultConfig(specs...)
		cfg.GroupSize = gs
		cfg.Policy = pol
		cfg.Scale = *scale
		cfg.Seed = *seed
		cfg.WarmupRefs = *warm
		cfg.MeasureRefs = *meas
		cfg.Shards = *shards
		cfg.Sample = sflags.Config()
		if err := pflags.Apply(&cfg); err != nil {
			return err
		}
		cfgs[i] = cfg
	}

	if len(groups) == 1 {
		// Single configuration: report the machine before the (possibly
		// long) run starts.
		cfgs[0].Obs = o.Hooks()
		sys, err := consim.NewSystem(cfgs[0])
		if err != nil {
			return err
		}
		printHeader(cfgs[0], specs, sys.Assignment())
		res, err := sys.Run()
		if err != nil {
			return err
		}
		if o != nil && o.Man != nil {
			if err := o.Man.Write(core.ManifestFor(cfgs[0], res, 1)); err != nil {
				return err
			}
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		}
		printResult(res, *regions, *snapshot)
		return nil
	}

	// Group sweep: simulate every size concurrently, print in order.
	for i := range cfgs {
		cfgs[i].Obs = o.Hooks()
	}
	results, err := consim.RunConfigs(cfgs, *parallel)
	if err != nil {
		return err
	}
	if o != nil && o.Man != nil {
		for i := range cfgs {
			if err := o.Man.Write(core.ManifestFor(cfgs[i], results[i], *parallel)); err != nil {
				return err
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	for i, res := range results {
		if i > 0 {
			fmt.Printf("\n%s\n\n", strings.Repeat("=", 72))
		}
		sys, err := consim.NewSystem(cfgs[i])
		if err != nil {
			return err
		}
		printHeader(cfgs[i], specs, sys.Assignment())
		printResult(res, *regions, *snapshot)
	}
	return nil
}
