// Command bench measures simulator throughput and allocation behaviour
// and appends the numbers to a JSON report history (BENCH_consim.json by
// default), the artifact tracked for performance regressions.
//
// Three sections are measured:
//
//   - throughput: repeated runs of the BenchmarkSimulatorThroughput
//     configuration (the 4-VM consolidated machine at 1/16 scale),
//     reporting references simulated per second, bytes allocated per
//     reference, and heap allocations per reference via
//     runtime.ReadMemStats deltas around each run.
//
//   - shard scaling: the same configuration at each -shardsweep shard
//     count, reporting wall time, speedup over the sequential engine and
//     the spine's stall fraction, and checking the runs stay
//     bit-identical along the way.
//
//   - figures: wall time per requested figure artifact through a
//     Runner, exercising the deduplicated parallel sweep path.
//
// The report file holds a history: each invocation appends one
// timestamped record (newest last) instead of overwriting, so the
// committed file documents how throughput moved over time. A legacy
// single-object file is absorbed as the first history entry. -baseline
// gates against the newest committed record of either schema.
//
// Examples:
//
//	bench                         # default throughput + T2,F2,F12 figures
//	bench -iters 5 -out bench.json
//	bench -figures ""             # throughput only
//	bench -figures "" -baseline BENCH_consim.json  # regression gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"consim"
	"consim/internal/obs"
)

// Report is one benchmark record; the report file is a JSON array of
// them, newest last.
type Report struct {
	// Time stamps when the record was taken (RFC 3339, UTC).
	Time string `json:"time,omitempty"`
	// Host settings the numbers were taken under.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Throughput configuration and per-iteration results.
	Scale        int     `json:"scale"`
	WarmupRefs   uint64  `json:"warmup_refs"`
	MeasureRefs  uint64  `json:"measure_refs"`
	Iters        int     `json:"iters"`
	RefsPerRun   uint64  `json:"refs_per_run"`
	WallSeconds  float64 `json:"wall_seconds"`   // best iteration
	RefsPerSec   float64 `json:"refs_per_sec"`   // best iteration
	BytesPerRef  float64 `json:"bytes_per_ref"`  // mean over iterations
	AllocsPerRef float64 `json:"allocs_per_ref"` // mean over iterations

	// ShardScaling measures the intra-run parallel engine (-shardsweep):
	// the throughput configuration at each shard count, with speedup
	// relative to the sweep's sequential point. Runs are checked
	// bit-identical across shard counts before the numbers are recorded.
	ShardScaling []ShardPoint `json:"shard_scaling,omitempty"`

	// SampleSweep records the interval-sampling accuracy/speedup section
	// (-samplesweep): each figure built fully detailed and sampled, with
	// per-figure wall times and worst cell deviations against the
	// declared CI-derived error bound.
	SampleSweep *SampleSweepReport `json:"sample_sweep,omitempty"`

	// PdesSweep records the split-transaction parallel engine's scaling
	// section (-pdessweep): the throughput configuration at each worker
	// count, with speedup over the sweep's sequential reference and
	// per-point accuracy against it. Points are recorded only when every
	// per-VM deviation stays inside the equivalence bound.
	PdesSweep *PdesSweepReport `json:"pdes_sweep,omitempty"`

	// Figure suite wall times (seconds), at the benchmark scale.
	FigureParallel int                `json:"figure_parallel,omitempty"`
	FigureSeconds  map[string]float64 `json:"figure_seconds,omitempty"`
	// SweepWallSeconds is the whole figure suite's wall time and
	// PeakRSSBytes the largest runtime.MemStats.Sys observed across the
	// run — the memory the sweep actually held from the OS.
	SweepWallSeconds float64 `json:"sweep_wall_seconds,omitempty"`
	PeakRSSBytes     uint64  `json:"peak_rss_bytes"`
}

// ShardPoint is one shard count's measurement in the scaling sweep
// (best wall time over the same iteration count as the throughput
// section). StallFraction is the spine's wall time spent waiting on
// worker batches — the sharded engine's barrier-stall analogue.
type ShardPoint struct {
	Shards        int     `json:"shards"`
	WallSeconds   float64 `json:"wall_seconds"`
	RefsPerSec    float64 `json:"refs_per_sec"`
	Speedup       float64 `json:"speedup"`
	StallFraction float64 `json:"stall_fraction"`
	Prefills      uint64  `json:"prefills,omitempty"`
	SyncFills     uint64  `json:"sync_fills,omitempty"`
	ThinkBatches  uint64  `json:"think_batches,omitempty"`
	Stalls        uint64  `json:"stalls,omitempty"`
}

// SampleSweepReport is the -samplesweep section: the sampling
// configuration used, the declared error bound (2 x the worse of the CI
// target and the worst achieved CI), per-figure comparisons, and the
// aggregate speedup and worst deviation.
type SampleSweepReport struct {
	WarmupRefs  uint64  `json:"warmup_refs"`
	MeasureRefs uint64  `json:"measure_refs"`
	WindowRefs  uint64  `json:"window_refs"`
	FFRatio     int     `json:"ff_ratio"`
	CITarget    float64 `json:"ci_target"`
	MinWindows  int     `json:"min_windows"`
	MaxRefs     uint64  `json:"max_refs"`

	Bound   float64                   `json:"bound"`
	Figures []consim.FigureComparison `json:"figures"`

	Speedup   float64 `json:"speedup"`     // total detailed wall / total sampled wall
	MaxRelErr float64 `json:"max_rel_err"` // worst cell deviation over all figures
	Pass      bool    `json:"pass"`        // MaxRelErr <= Bound

	// FFCostRatio is the sweep-wide fast-forward cost: wall seconds per
	// skipped reference as a fraction of wall seconds per detailed
	// reference, aggregated over every sampled run in the sweep (the
	// number ROADMAP item 2 tracks; lower is better, 1.0 means skipping a
	// reference costs as much as simulating it). 0 when no run recorded a
	// phase split.
	FFCostRatio float64 `json:"ff_cost_ratio,omitempty"`
}

// PdesSweepReport is the -pdessweep section: the window width used, the
// equivalence bound the points were gated on, one point per swept
// worker count, and whether every point passed. Speedups are honest
// wall-clock ratios under the recorded gomaxprocs — on a single-CPU
// host they sit below 1 (the engine's coordination overhead), and the
// curve is the artifact that documents that.
type PdesSweepReport struct {
	WindowCycles uint64      `json:"window_cycles"`
	Bound        float64     `json:"bound"`
	Points       []PdesPoint `json:"points"`
	Pass         bool        `json:"pass"`
	// GOMAXPROCS/NumCPU pin the host parallelism the sweep ran under, so
	// 1-CPU curves (speedup < 1 by design) and multi-core curves stay
	// distinguishable when histories are diffed. Until now only run
	// manifests carried this.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
}

// PdesPoint is one worker count's measurement (best wall time over the
// iteration count). MaxRelErr is the worst per-VM deviation from the
// sweep's sequential reference on LLC miss rate and cycles per
// transaction; StallFraction is spine wall time spent waiting on worker
// domains at barriers and ApplyFraction the *serial* share of the
// barrier replay — total replay minus the bank-sharded parallel pass —
// the engine's Amdahl terms. ReplayParallelFraction is the share of
// replay time the sharded pass moved off the serial term.
type PdesPoint struct {
	Workers       int     `json:"workers"`
	Domains       int     `json:"domains,omitempty"`
	ReplayWorkers int     `json:"replay_workers,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	RefsPerSec    float64 `json:"refs_per_sec"`
	Speedup       float64 `json:"speedup"`
	StallFraction float64 `json:"stall_fraction,omitempty"`
	ApplyFraction float64 `json:"apply_fraction,omitempty"`
	// ReplayParallelFraction is ReplayParallelSeconds/ApplySeconds: the
	// share of barrier-replay wall time the bank-sharded pass runs in
	// parallel (0 on serial-replay points).
	ReplayParallelFraction float64 `json:"replay_parallel_fraction,omitempty"`
	Windows                uint64  `json:"windows,omitempty"`
	Ops                    uint64  `json:"ops,omitempty"`
	MaxRelErr              float64 `json:"max_rel_err"`
}

// peakSys returns the high-water mark of memory obtained from the OS.
func peakSys(prev uint64) uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > prev {
		return ms.Sys
	}
	return prev
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func benchCfg(scale int, warm, meas uint64, shards int) consim.Config {
	specs := consim.WorkloadSpecs()
	cfg := consim.DefaultConfig(
		specs[consim.TPCW], specs[consim.SPECjbb],
		specs[consim.TPCH], specs[consim.SPECweb],
	)
	cfg.Scale = scale
	cfg.GroupSize = 4
	cfg.WarmupRefs = warm
	cfg.MeasureRefs = meas
	cfg.Shards = shards
	return cfg
}

func run() (err error) {
	var (
		scale    = flag.Int("scale", 16, "throughput run scale divisor")
		warm     = flag.Uint64("warm", 10_000, "warm-up references per core")
		meas     = flag.Uint64("meas", 50_000, "measured references per core")
		iters    = flag.Int("iters", 3, "throughput iterations (best wall time wins)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), consim.ParallelFlagUsage)
		shards   = flag.Int("shards", 1, consim.ShardsFlagUsage)
		sweep    = flag.String("shardsweep", "", "comma-separated shard counts for the scaling section, e.g. 1,2,4,8 (empty = skip)")
		ssweep   = flag.String("samplesweep", "", "comma-separated figure IDs for the sampling accuracy/speedup section, e.g. F3,F4 (empty = skip)")
		sswarm   = flag.Uint64("samplesweep-warm", 60_000, "samplesweep warm-up references per core")
		ssmeas   = flag.Uint64("samplesweep-meas", 1_000_000, "samplesweep detailed measurement references per core")
		sswindow = flag.Uint64("samplesweep-window", 5_000, "samplesweep detailed-window length")
		ssmax    = flag.Uint64("samplesweep-maxrefs", 40_000, "samplesweep per-core detailed-reference budget")
		psweep   = flag.String("pdessweep", "", "comma-separated pdes worker counts for the parallel-engine scaling section, e.g. 1,2,4,8 (empty = skip)")
		pswindow = flag.Uint64("pdessweep-window", 0, "pdessweep window width in cycles (0 = engine default)")
		figures  = flag.String("figures", "T2,F2,F12", "comma-separated figure IDs to time (empty = skip)")
		out      = flag.String("out", "BENCH_consim.json", "report history path; each run appends a record (- = print this run to stdout)")
		baseline = flag.String("baseline", "", "committed report to gate against (newest record); exit non-zero on >10% refs_per_sec regression or any allocs_per_ref growth")
	)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, oerr := ocli.Start(os.Stderr)
	if oerr != nil {
		return oerr
	}
	defer func() {
		if cerr := ostop(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o != nil {
		o.Parallel = *parallel
	}
	if err := consim.ValidateShards(*shards); err != nil {
		return err
	}

	// Resolve the baseline before any writing: gating against the file
	// this run appends to must compare with the last committed record,
	// not the one being taken now.
	var base *Report
	var basePdes *PdesSweepReport
	var baseFFCost float64
	if *baseline != "" {
		hist, err := readReports(*baseline)
		if err != nil {
			return err
		}
		if len(hist) == 0 {
			return fmt.Errorf("%s: empty report history", *baseline)
		}
		base = &hist[len(hist)-1]
		// The pdes sweep is optional per record; gate its apply fractions
		// against the newest record that took one.
		for i := len(hist) - 1; i >= 0; i-- {
			if hist[i].PdesSweep != nil && len(hist[i].PdesSweep.Points) > 0 {
				basePdes = hist[i].PdesSweep
				break
			}
		}
		// Likewise the sample sweep's ff cost ratio: gate against the
		// newest record that measured one.
		for i := len(hist) - 1; i >= 0; i-- {
			if ss := hist[i].SampleSweep; ss != nil && ss.FFCostRatio > 0 {
				baseFFCost = ss.FFCostRatio
				break
			}
		}
	}

	rep := Report{
		Time:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       *scale,
		WarmupRefs:  *warm,
		MeasureRefs: *meas,
		Iters:       *iters,
	}

	// Throughput: same configuration as BenchmarkSimulatorThroughput.
	// One untimed run warms the process, then each timed iteration is
	// bracketed by ReadMemStats so bytes/allocs cover exactly the runs.
	if _, err := consim.Run(benchCfg(*scale, *warm, *meas, *shards)); err != nil {
		return err
	}
	var bytesSum, allocsSum float64
	for i := 0; i < *iters; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := consim.Run(benchCfg(*scale, *warm, *meas, *shards))
		wall := time.Since(start).Seconds()
		if err != nil {
			return err
		}
		runtime.ReadMemStats(&after)

		var refs uint64
		for _, v := range res.VMs {
			refs += v.Stats.Refs
		}
		rep.RefsPerRun = refs
		bytesSum += float64(after.TotalAlloc - before.TotalAlloc)
		allocsSum += float64(after.Mallocs - before.Mallocs)
		if rps := float64(refs) / wall; rps > rep.RefsPerSec {
			rep.RefsPerSec = rps
			rep.WallSeconds = wall
		}
		fmt.Fprintf(os.Stderr, "[throughput %d/%d: %.0f refs/sec]\n",
			i+1, *iters, float64(refs)/wall)
	}
	perRef := float64(rep.RefsPerRun) * float64(*iters)
	rep.BytesPerRef = bytesSum / perRef
	rep.AllocsPerRef = allocsSum / perRef
	rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)

	if s := strings.TrimSpace(*sweep); s != "" {
		if rep.ShardScaling, err = shardScaling(s, *scale, *warm, *meas, *iters); err != nil {
			return err
		}
		rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)
	}

	if s := strings.TrimSpace(*psweep); s != "" {
		if rep.PdesSweep, err = pdesSweep(s, *scale, *warm, *meas, *iters, *pswindow); err != nil {
			return err
		}
		rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)
	}

	if ids := strings.TrimSpace(*ssweep); ids != "" {
		if rep.SampleSweep, err = sampleSweep(ids, *scale, *sswarm, *ssmeas, *sswindow, *ssmax, *parallel); err != nil {
			return err
		}
		rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)
	}

	// Figure suite timings through the single-flight parallel runner.
	if ids := strings.TrimSpace(*figures); ids != "" {
		rep.FigureParallel = *parallel
		rep.FigureSeconds = make(map[string]float64)
		r := consim.NewRunner(consim.RunnerOptions{
			Scale: *scale, WarmupRefs: *warm, MeasureRefs: *meas,
			Parallel: *parallel, Shards: *shards, Obs: o,
		})
		sweepStart := time.Now()
		for _, id := range strings.Split(ids, ",") {
			id = strings.TrimSpace(id)
			start := time.Now()
			if _, err := r.RunFigure(id); err != nil {
				return err
			}
			rep.FigureSeconds[id] = time.Since(start).Seconds()
			rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)
			fmt.Fprintf(os.Stderr, "[figure %s: %.2fs]\n", id, rep.FigureSeconds[id])
		}
		rep.SweepWallSeconds = time.Since(sweepStart).Seconds()
	}

	if *out == "-" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if _, err = os.Stdout.Write(append(buf, '\n')); err != nil {
			return err
		}
	} else {
		n, err := appendReport(*out, rep)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[appended to %s (%d records): %.0f refs/sec, %.4f allocs/ref]\n",
			*out, n, rep.RefsPerSec, rep.AllocsPerRef)
	}
	if base != nil {
		return gate(rep, *base, basePdes, baseFFCost, *baseline)
	}
	return nil
}

// shardScaling runs the throughput configuration once per requested
// shard count (best of iters wall times each) and cross-checks that
// every run produced identical simulated results — the engine's core
// contract. Speedup is relative to the sweep's shards=1 point, or its
// first point when 1 is not swept.
func shardScaling(list string, scale int, warm, meas uint64, iters int) ([]ShardPoint, error) {
	var points []ShardPoint
	var refCycles uint64
	var refVMs string
	baseWall := 0.0
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -shardsweep entry %q", part)
		}
		if err := consim.ValidateShards(n); err != nil {
			return nil, err
		}
		var best consim.Result
		bestWall := 0.0
		for i := 0; i < iters; i++ {
			start := time.Now()
			res, err := consim.Run(benchCfg(scale, warm, meas, n))
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, err
			}
			if bestWall == 0 || wall < bestWall {
				bestWall, best = wall, res
			}
		}
		vms, err := json.Marshal(best.VMs)
		if err != nil {
			return nil, err
		}
		if refVMs == "" {
			refCycles, refVMs = uint64(best.Cycles), string(vms)
		} else if uint64(best.Cycles) != refCycles || string(vms) != refVMs {
			return nil, fmt.Errorf("shards=%d diverged from the sweep's first point: results must be bit-identical", n)
		}
		var refs uint64
		for _, v := range best.VMs {
			refs += v.Stats.Refs
		}
		if baseWall == 0 {
			baseWall = bestWall
		}
		p := ShardPoint{
			Shards:        n,
			WallSeconds:   bestWall,
			RefsPerSec:    float64(refs) / bestWall,
			Speedup:       baseWall / bestWall,
			StallFraction: best.Shard.StallSeconds / bestWall,
			Prefills:      best.Shard.Prefills,
			SyncFills:     best.Shard.SyncFills,
			ThinkBatches:  best.Shard.ThinkBatches,
			Stalls:        best.Shard.Stalls,
		}
		points = append(points, p)
		fmt.Fprintf(os.Stderr, "[shards %d: %.3fs, %.2fx, stall %.1f%%]\n",
			n, p.WallSeconds, p.Speedup, 100*p.StallFraction)
	}
	return points, nil
}

// pdesSweep runs the throughput configuration sequentially once as the
// reference, then once per requested worker count under the
// split-transaction parallel engine (best of iters wall times each).
// Every parallel point's per-VM LLC miss rate and cycles per
// transaction are checked against the sequential reference; a deviation
// beyond the equivalence bound is an error — the engine's accuracy
// contract is deterministic for a fixed (seed, workers, window) triple,
// so a violation is a real defect, not noise. Speedups are relative to
// the sequential reference under the report's recorded gomaxprocs.
func pdesSweep(list string, scale int, warm, meas uint64, iters int, window uint64) (*PdesSweepReport, error) {
	rep := &PdesSweepReport{
		Bound:      consim.DefaultPdesBound,
		Pass:       true,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	runBest := func(workers int) (consim.Result, float64, error) {
		cfg := benchCfg(scale, warm, meas, 1)
		if workers > 1 {
			cfg.Pdes = workers
			cfg.PdesWindow = consim.Cycle(window)
			// Shard the barrier replay at the same width: sharding is
			// bit-identical to the serial replay, so the sweep measures
			// the engine the knobs would actually run, and apply_fraction
			// records the post-sharding serial residue. Pipelining stays
			// off here — the sweep's MaxRelErr contract is the engine
			// bound, not the pipeline's staleness trade.
			cfg.PdesReplayWorkers = workers
		}
		var best consim.Result
		bestWall := 0.0
		for i := 0; i < iters; i++ {
			start := time.Now()
			res, err := consim.Run(cfg)
			wall := time.Since(start).Seconds()
			if err != nil {
				return best, 0, err
			}
			if bestWall == 0 || wall < bestWall {
				bestWall, best = wall, res
			}
		}
		return best, bestWall, nil
	}

	ref, baseWall, err := runBest(1)
	if err != nil {
		return nil, err
	}
	point := func(workers int, res consim.Result, wall float64) PdesPoint {
		var refs uint64
		for _, v := range res.VMs {
			refs += v.Stats.Refs
		}
		p := PdesPoint{
			Workers:       workers,
			Domains:       res.Pdes.Domains,
			ReplayWorkers: res.Pdes.ReplayWorkers,
			WallSeconds:   wall,
			RefsPerSec:    float64(refs) / wall,
			Speedup:       baseWall / wall,
			Windows:       res.Pdes.Windows,
			Ops:           res.Pdes.Ops,
		}
		if wall > 0 {
			p.StallFraction = res.Pdes.StallSeconds / wall
			serial := res.Pdes.ApplySeconds - res.Pdes.ReplayParallelSeconds
			if serial < 0 {
				serial = 0
			}
			p.ApplyFraction = serial / wall
		}
		if res.Pdes.ApplySeconds > 0 {
			p.ReplayParallelFraction = res.Pdes.ReplayParallelSeconds / res.Pdes.ApplySeconds
		}
		for v := range res.VMs {
			if ref.VMs[v].Stats.Refs == 0 {
				continue
			}
			miss := relErr(res.VMs[v].MissRate(), ref.VMs[v].MissRate())
			cpt := relErr(res.VMs[v].CyclesPerTx, ref.VMs[v].CyclesPerTx)
			if miss > p.MaxRelErr {
				p.MaxRelErr = miss
			}
			if cpt > p.MaxRelErr {
				p.MaxRelErr = cpt
			}
		}
		return p
	}

	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -pdessweep entry %q", part)
		}
		res, wall := ref, baseWall
		if n > 1 {
			if res, wall, err = runBest(n); err != nil {
				return nil, err
			}
		}
		p := point(n, res, wall)
		if rep.WindowCycles == 0 && res.Pdes.Window > 0 {
			rep.WindowCycles = uint64(res.Pdes.Window)
		}
		rep.Points = append(rep.Points, p)
		fmt.Fprintf(os.Stderr, "[pdes %d: %.3fs, %.2fx, stall %.1f%%, apply %.1f%%, err %.1f%%]\n",
			n, p.WallSeconds, p.Speedup, 100*p.StallFraction, 100*p.ApplyFraction, 100*p.MaxRelErr)
		if p.MaxRelErr > rep.Bound {
			rep.Pass = false
			return rep, fmt.Errorf("pdessweep: workers=%d deviation %.3f exceeds equivalence bound %.3f", n, p.MaxRelErr, rep.Bound)
		}
	}
	return rep, nil
}

// relErr returns |got-want|/|want|; an exact match of a zero reference
// is 0, any deviation from zero is 1.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	if want < 0 {
		want = -want
	}
	return d / want
}

// sampleSweep builds each listed figure twice — fully detailed and
// interval-sampled — and reports per-figure speedup and worst cell
// deviation against the declared error bound. An out-of-bound deviation
// is an error: the sampling engine's accuracy contract is deterministic
// for a fixed seed and configuration, so a violation here is a real
// defect, not noise.
func sampleSweep(list string, scale int, warm, meas, window, maxRefs uint64, parallel int) (*SampleSweepReport, error) {
	sc := consim.SampleConfig{
		WindowRefs: window,
		FFRatio:    4,
		CITarget:   0.05,
		MinWindows: 4,
		MaxRefs:    maxRefs,
	}
	rep := &SampleSweepReport{
		WarmupRefs:  warm,
		MeasureRefs: meas,
		WindowRefs:  sc.WindowRefs,
		FFRatio:     sc.FFRatio,
		CITarget:    sc.CITarget,
		MinWindows:  sc.MinWindows,
		MaxRefs:     sc.MaxRefs,
	}
	var ids []string
	for _, part := range strings.Split(list, ",") {
		ids = append(ids, strings.TrimSpace(part))
	}
	opt := consim.RunnerOptions{
		Scale: scale, WarmupRefs: warm, MeasureRefs: meas, Parallel: parallel,
	}
	figs, bound, err := consim.CompareSampledFigures(opt, sc, ids)
	if err != nil {
		return nil, err
	}
	rep.Figures = figs
	rep.Bound = bound
	var fullSec, sampSec float64
	var ff consim.FFCost
	for _, f := range figs {
		fullSec += f.FullSeconds
		sampSec += f.SampledSeconds
		if f.MaxRelErr > rep.MaxRelErr {
			rep.MaxRelErr = f.MaxRelErr
		}
		if f.FFCost != nil {
			ff.DetailedSeconds += f.FFCost.DetailedSeconds
			ff.FFSeconds += f.FFCost.FFSeconds
			ff.DetailedRefs += f.FFCost.DetailedRefs
			ff.SkippedRefs += f.FFCost.SkippedRefs
		}
		fmt.Fprintf(os.Stderr, "[samplesweep %s: %.2fs -> %.2fs (%.1fx), worst cell %s err %.1f%%, ff cost %.2fx]\n",
			f.ID, f.FullSeconds, f.SampledSeconds, f.Speedup(), f.WorstCell, 100*f.MaxRelErr, f.FFCostRatio)
	}
	if sampSec > 0 {
		rep.Speedup = fullSec / sampSec
	}
	rep.FFCostRatio = ff.Ratio()
	rep.Pass = rep.MaxRelErr <= rep.Bound
	fmt.Fprintf(os.Stderr, "[samplesweep total: %.1fx speedup, max err %.1f%% vs bound %.1f%%, ff cost %.2fx]\n",
		rep.Speedup, 100*rep.MaxRelErr, 100*rep.Bound, rep.FFCostRatio)
	if !rep.Pass {
		return rep, fmt.Errorf("samplesweep: max cell error %.3f exceeds declared bound %.3f", rep.MaxRelErr, rep.Bound)
	}
	return rep, nil
}

// readReports loads a report history, absorbing the legacy single-object
// schema as a one-record history.
func readReports(path string) ([]Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var hist []Report
	if err := json.Unmarshal(buf, &hist); err == nil {
		return hist, nil
	}
	var one Report
	if err := json.Unmarshal(buf, &one); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return []Report{one}, nil
}

// appendReport adds rep to the history at path (creating it, or
// converting a legacy single-object file) and returns the new record
// count.
func appendReport(path string, rep Report) (int, error) {
	hist, err := readReports(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	hist = append(hist, rep)
	buf, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(hist), nil
}

// gate compares a fresh report against the committed baseline (the
// newest record in the -baseline history, resolved before this run
// appended anything) and returns an error (non-zero exit) on a
// throughput regression beyond 10% — outside normal machine noise — on
// any growth at all in allocations per reference, which are
// deterministic and must only ever go down, or (when both this run and
// the history carry a pdes sweep) on any worker count whose serial
// replay share grew more than obs.ApplyFractionGate points, or (when
// both carry a sample sweep) on the fast-forward cost ratio growing
// more than obs.FFCostGateFrac relative.
func gate(rep, base Report, basePdes *PdesSweepReport, baseFFCost float64, path string) error {
	if base.RefsPerSec > 0 && rep.RefsPerSec < base.RefsPerSec*0.9 {
		return fmt.Errorf("refs_per_sec regressed more than 10%%: %.0f vs baseline %.0f (%s)",
			rep.RefsPerSec, base.RefsPerSec, path)
	}
	if rep.AllocsPerRef > base.AllocsPerRef {
		return fmt.Errorf("allocs_per_ref grew: %.6g vs baseline %.6g (%s)",
			rep.AllocsPerRef, base.AllocsPerRef, path)
	}
	if rep.PdesSweep != nil && basePdes != nil {
		if err := obs.GatePdesApply(applyByWorkers(basePdes.Points), applyByWorkers(rep.PdesSweep.Points)); err != nil {
			return fmt.Errorf("%w (%s)", err, path)
		}
	}
	if rep.SampleSweep != nil {
		if err := obs.GateFFCost(baseFFCost, rep.SampleSweep.FFCostRatio); err != nil {
			return fmt.Errorf("%w (%s)", err, path)
		}
	}
	fmt.Fprintf(os.Stderr, "[baseline ok: %.0f refs/sec vs %.0f, %.4g allocs/ref vs %.4g]\n",
		rep.RefsPerSec, base.RefsPerSec, rep.AllocsPerRef, base.AllocsPerRef)
	return nil
}

// applyByWorkers projects a sweep's points to the worker -> apply
// fraction map the obs gate consumes.
func applyByWorkers(pts []PdesPoint) map[int]float64 {
	m := make(map[int]float64, len(pts))
	for _, p := range pts {
		if p.ApplyFraction > 0 {
			m[p.Workers] = p.ApplyFraction
		}
	}
	return m
}
