// Command bench measures simulator throughput and allocation behaviour
// and writes the numbers to a JSON report (BENCH_consim.json by
// default), the artifact tracked for performance regressions.
//
// Two sections are measured:
//
//   - throughput: repeated runs of the BenchmarkSimulatorThroughput
//     configuration (the 4-VM consolidated machine at 1/16 scale),
//     reporting references simulated per second, bytes allocated per
//     reference, and heap allocations per reference via
//     runtime.ReadMemStats deltas around each run.
//
//   - figures: wall time per requested figure artifact through a
//     Runner, exercising the deduplicated parallel sweep path.
//
// Examples:
//
//	bench                         # default throughput + T2,F2,F12 figures
//	bench -iters 5 -out bench.json
//	bench -figures ""             # throughput only
//	bench -figures "" -baseline BENCH_consim.json  # regression gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"consim"
	"consim/internal/obs"
)

// Report is the schema of BENCH_consim.json.
type Report struct {
	// Host settings the numbers were taken under.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Throughput configuration and per-iteration results.
	Scale        int     `json:"scale"`
	WarmupRefs   uint64  `json:"warmup_refs"`
	MeasureRefs  uint64  `json:"measure_refs"`
	Iters        int     `json:"iters"`
	RefsPerRun   uint64  `json:"refs_per_run"`
	WallSeconds  float64 `json:"wall_seconds"`   // best iteration
	RefsPerSec   float64 `json:"refs_per_sec"`   // best iteration
	BytesPerRef  float64 `json:"bytes_per_ref"`  // mean over iterations
	AllocsPerRef float64 `json:"allocs_per_ref"` // mean over iterations

	// Figure suite wall times (seconds), at the benchmark scale.
	FigureParallel int                `json:"figure_parallel,omitempty"`
	FigureSeconds  map[string]float64 `json:"figure_seconds,omitempty"`
	// SweepWallSeconds is the whole figure suite's wall time and
	// PeakRSSBytes the largest runtime.MemStats.Sys observed across the
	// run — the memory the sweep actually held from the OS.
	SweepWallSeconds float64 `json:"sweep_wall_seconds,omitempty"`
	PeakRSSBytes     uint64  `json:"peak_rss_bytes"`
}

// peakSys returns the high-water mark of memory obtained from the OS.
func peakSys(prev uint64) uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > prev {
		return ms.Sys
	}
	return prev
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func benchCfg(scale int, warm, meas uint64) consim.Config {
	specs := consim.WorkloadSpecs()
	cfg := consim.DefaultConfig(
		specs[consim.TPCW], specs[consim.SPECjbb],
		specs[consim.TPCH], specs[consim.SPECweb],
	)
	cfg.Scale = scale
	cfg.GroupSize = 4
	cfg.WarmupRefs = warm
	cfg.MeasureRefs = meas
	return cfg
}

func run() (err error) {
	var (
		scale    = flag.Int("scale", 16, "throughput run scale divisor")
		warm     = flag.Uint64("warm", 10_000, "warm-up references per core")
		meas     = flag.Uint64("meas", 50_000, "measured references per core")
		iters    = flag.Int("iters", 3, "throughput iterations (best wall time wins)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulations in flight for the figure suite")
		figures  = flag.String("figures", "T2,F2,F12", "comma-separated figure IDs to time (empty = skip)")
		out      = flag.String("out", "BENCH_consim.json", "report path (- = stdout)")
		baseline = flag.String("baseline", "", "committed report to gate against; exit non-zero on >10% refs_per_sec regression or any allocs_per_ref growth")
	)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, oerr := ocli.Start(os.Stderr)
	if oerr != nil {
		return oerr
	}
	defer func() {
		if cerr := ostop(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o != nil {
		o.Parallel = *parallel
	}

	rep := Report{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       *scale,
		WarmupRefs:  *warm,
		MeasureRefs: *meas,
		Iters:       *iters,
	}

	// Throughput: same configuration as BenchmarkSimulatorThroughput.
	// One untimed run warms the process, then each timed iteration is
	// bracketed by ReadMemStats so bytes/allocs cover exactly the runs.
	if _, err := consim.Run(benchCfg(*scale, *warm, *meas)); err != nil {
		return err
	}
	var bytesSum, allocsSum float64
	for i := 0; i < *iters; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := consim.Run(benchCfg(*scale, *warm, *meas))
		wall := time.Since(start).Seconds()
		if err != nil {
			return err
		}
		runtime.ReadMemStats(&after)

		var refs uint64
		for _, v := range res.VMs {
			refs += v.Stats.Refs
		}
		rep.RefsPerRun = refs
		bytesSum += float64(after.TotalAlloc - before.TotalAlloc)
		allocsSum += float64(after.Mallocs - before.Mallocs)
		if rps := float64(refs) / wall; rps > rep.RefsPerSec {
			rep.RefsPerSec = rps
			rep.WallSeconds = wall
		}
		fmt.Fprintf(os.Stderr, "[throughput %d/%d: %.0f refs/sec]\n",
			i+1, *iters, float64(refs)/wall)
	}
	perRef := float64(rep.RefsPerRun) * float64(*iters)
	rep.BytesPerRef = bytesSum / perRef
	rep.AllocsPerRef = allocsSum / perRef
	rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)

	// Figure suite timings through the single-flight parallel runner.
	if ids := strings.TrimSpace(*figures); ids != "" {
		rep.FigureParallel = *parallel
		rep.FigureSeconds = make(map[string]float64)
		r := consim.NewRunner(consim.RunnerOptions{
			Scale: *scale, WarmupRefs: *warm, MeasureRefs: *meas,
			Parallel: *parallel, Obs: o,
		})
		sweepStart := time.Now()
		for _, id := range strings.Split(ids, ",") {
			id = strings.TrimSpace(id)
			start := time.Now()
			if _, err := r.RunFigure(id); err != nil {
				return err
			}
			rep.FigureSeconds[id] = time.Since(start).Seconds()
			rep.PeakRSSBytes = peakSys(rep.PeakRSSBytes)
			fmt.Fprintf(os.Stderr, "[figure %s: %.2fs]\n", id, rep.FigureSeconds[id])
		}
		rep.SweepWallSeconds = time.Since(sweepStart).Seconds()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(buf); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[wrote %s: %.0f refs/sec, %.4f allocs/ref]\n",
			*out, rep.RefsPerSec, rep.AllocsPerRef)
	}
	if *baseline != "" {
		return gate(rep, *baseline)
	}
	return nil
}

// gate compares a fresh report against the committed baseline and
// returns an error (non-zero exit) on a throughput regression beyond
// 10% — outside normal machine noise — or on any growth at all in
// allocations per reference, which are deterministic and must only
// ever go down.
func gate(rep Report, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.RefsPerSec > 0 && rep.RefsPerSec < base.RefsPerSec*0.9 {
		return fmt.Errorf("refs_per_sec regressed more than 10%%: %.0f vs baseline %.0f (%s)",
			rep.RefsPerSec, base.RefsPerSec, path)
	}
	if rep.AllocsPerRef > base.AllocsPerRef {
		return fmt.Errorf("allocs_per_ref grew: %.6g vs baseline %.6g (%s)",
			rep.AllocsPerRef, base.AllocsPerRef, path)
	}
	fmt.Fprintf(os.Stderr, "[baseline ok: %.0f refs/sec vs %.0f, %.4g allocs/ref vs %.4g]\n",
		rep.RefsPerSec, base.RefsPerSec, rep.AllocsPerRef, base.AllocsPerRef)
	return nil
}
