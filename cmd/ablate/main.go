// Command ablate runs the design-choice ablation studies (directory
// cache size, memory controller count, router pipeline depth, over-commit
// timeslice) and prints their tables.
//
//	ablate                 # all studies at 1/4 scale
//	ablate -exp A1 -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"consim"
	"consim/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated ablation IDs (default: all of A1..A6)")
		scale    = flag.Int("scale", 4, "divide cache capacities and footprints")
		warm     = flag.Uint64("warm", 300_000, "warm-up references per core")
		meas     = flag.Uint64("meas", 500_000, "measured references per core")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), consim.ParallelFlagUsage)
		shards   = flag.Int("shards", 1, consim.ShardsFlagUsage)
	)
	var sflags consim.SampleFlags
	sflags.Register(flag.CommandLine)
	var pflags consim.PdesFlags
	pflags.Register(flag.CommandLine)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, err := ocli.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	if o != nil {
		o.Parallel = *parallel
	}

	ids := consim.AblationIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	if err := consim.ValidateShards(*shards); err != nil {
		ostop() //nolint:errcheck // the primary error wins
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	if err := pflags.CheckExclusive(*shards, sflags.Config()); err != nil {
		ostop() //nolint:errcheck // the primary error wins
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	r := consim.NewRunner(consim.RunnerOptions{
		Scale: *scale, WarmupRefs: *warm, MeasureRefs: *meas, Seed: *seed,
		Parallel: *parallel, Shards: *shards, Sample: sflags.Config(),
		Pdes: pflags.Workers(), PdesWindow: pflags.Window(), Obs: o,
	})
	for _, id := range ids {
		start := time.Now()
		t, err := r.RunAblation(strings.TrimSpace(id))
		if err != nil {
			ostop() //nolint:errcheck // the primary error wins
			fmt.Fprintln(os.Stderr, "ablate:", err)
			os.Exit(1)
		}
		fmt.Println(t.Text())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if err := ostop(); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}
