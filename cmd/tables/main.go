// Command tables regenerates every table and figure of the paper's
// evaluation section (Table II and Figures 2-13) and prints them as text
// or markdown. This is the harness behind EXPERIMENTS.md.
//
//	tables                      # everything, full scale (~30-40 min)
//	tables -scale 4 -parallel 8 # reduced scale, parallel (~minutes)
//	tables -exp F8,F9           # selected artifacts
//	tables -format md           # markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"consim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "", "comma-separated artifact IDs (default: all of T2,F2..F13)")
		scale    = flag.Int("scale", 1, "divide cache capacities and footprints")
		seed     = flag.Uint64("seed", 1, "random seed")
		warm     = flag.Uint64("warm", 600_000, "warm-up references per core")
		meas     = flag.Uint64("meas", 1_000_000, "measured references per core")
		parallel = flag.Int("parallel", runtime.NumCPU(), "simulations to run concurrently")
		format   = flag.String("format", "text", "output format: text, md, csv, bars")
	)
	flag.Parse()

	ids := consim.FigureIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}

	r := consim.NewRunner(consim.RunnerOptions{
		Scale:       *scale,
		Seed:        *seed,
		WarmupRefs:  *warm,
		MeasureRefs: *meas,
		Parallel:    *parallel,
	})

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		t, err := r.RunFigure(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch *format {
		case "md":
			fmt.Println(t.Markdown())
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		case "bars":
			fmt.Println(t.Bars(50))
		default:
			fmt.Println(t.Text())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
