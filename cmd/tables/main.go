// Command tables regenerates every table and figure of the paper's
// evaluation section (Table II and Figures 2-13) and prints them as text
// or markdown. This is the harness behind EXPERIMENTS.md.
//
// All requested artifacts are scheduled through one deduplicated work
// queue with up to -parallel (default GOMAXPROCS) simulations in flight;
// parallelism never changes the tables, only the wall time.
//
//	tables                      # everything, full scale
//	tables -scale 4             # reduced scale (~minutes)
//	tables -exp F8,F9           # selected artifacts
//	tables -parallel 1          # serial execution
//	tables -format md           # markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"consim"
	"consim/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		exp      = flag.String("exp", "", "comma-separated artifact IDs (default: all of T2,F2..F13)")
		scale    = flag.Int("scale", 1, "divide cache capacities and footprints")
		seed     = flag.Uint64("seed", 1, "random seed")
		warm     = flag.Uint64("warm", 600_000, "warm-up references per core")
		meas     = flag.Uint64("meas", 1_000_000, "measured references per core")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), consim.ParallelFlagUsage)
		shards   = flag.Int("shards", 1, consim.ShardsFlagUsage)
		format   = flag.String("format", "text", "output format: text, md, csv, bars")
	)
	var sflags consim.SampleFlags
	sflags.Register(flag.CommandLine)
	var pflags consim.PdesFlags
	pflags.Register(flag.CommandLine)
	var ocli obs.CLI
	ocli.Register(flag.CommandLine)
	flag.Parse()

	o, ostop, oerr := ocli.Start(os.Stderr)
	if oerr != nil {
		return oerr
	}
	defer func() {
		if cerr := ostop(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o != nil {
		o.Parallel = *parallel
	}

	ids := consim.FigureIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	if err := consim.ValidateShards(*shards); err != nil {
		return err
	}
	if err := pflags.CheckExclusive(*shards, sflags.Config()); err != nil {
		return err
	}
	r := consim.NewRunner(consim.RunnerOptions{
		Scale:       *scale,
		Seed:        *seed,
		WarmupRefs:  *warm,
		MeasureRefs: *meas,
		Parallel:    *parallel,
		Shards:      *shards,
		Sample:      sflags.Config(),
		Pdes:        pflags.Workers(),
		PdesWindow:  pflags.Window(),
		Obs:         o,
	})

	// The whole batch goes through one deduplicated work queue: shared
	// isolation baselines simulate once, and up to -parallel simulations
	// run at a time across all requested figures.
	start := time.Now()
	tables, err := r.RunFigures(ids...)
	if err != nil {
		return err
	}
	for _, t := range tables {
		switch *format {
		case "md":
			fmt.Println(t.Markdown())
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		case "bars":
			fmt.Println(t.Bars(50))
		default:
			fmt.Println(t.Text())
		}
	}
	fmt.Fprintf(os.Stderr, "[%d artifacts from %d simulations in %v]\n",
		len(tables), r.Sims(), time.Since(start).Round(time.Millisecond))
	return nil
}
