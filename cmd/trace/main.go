// Command trace records and replays workload reference traces — the
// checkpoint workflow: capture a workload's transactions once, then run
// the same transactions through any machine configuration.
//
//	trace record -workload TPC-H -out tpch.trc -refs 200000 -scale 8
//	trace info tpch.trc
//	trace replay tpch.trc -group 4 -policy affinity
package main

import (
	"flag"
	"fmt"
	"os"

	"consim"
	"consim/internal/core"
	"consim/internal/obs"
	"consim/internal/trace"
	"consim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace {record|info|replay} [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "TPC-H", "workload to capture")
	out := fs.String("out", "workload.trc", "output file")
	refs := fs.Uint64("refs", 200_000, "references per thread")
	threads := fs.Int("threads", 4, "threads")
	scale := fs.Int("scale", 8, "footprint scale divisor")
	seed := fs.Uint64("seed", 42, "generator seed")
	fs.Parse(args)

	spec, err := workload.ByName(*name)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(spec.Scaled(*scale), *threads, *seed)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := trace.Capture(f, gen, *threads, *refs)
	if err != nil {
		return err
	}
	fmt.Printf("captured %d records (%d threads x %d refs) of %s at scale 1/%d to %s\n",
		h.Records, *threads, *refs, spec.Name, *scale, *out)
	return f.Close()
}

func openTrace(path string) (*trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.NewReader(f)
}

func info(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("info: missing trace file")
	}
	rd, err := openTrace(args[0])
	if err != nil {
		return err
	}
	h := rd.Header()
	fmt.Printf("workload:  %s\nthreads:   %d\nrecords:   %d\nfootprint: %d blocks (%.1f MB)\ntx size:   %d refs\n",
		h.Spec.Name, h.Threads, h.Records, h.Footprint, float64(h.Footprint*64)/(1<<20), h.Spec.RefsPerTx)
	// Quick mix census over one pass.
	writes := uint64(0)
	for t := 0; t < h.Threads; t++ {
		n := h.Records / uint64(h.Threads)
		for i := uint64(0); i < n; i++ {
			if rd.Next(t).Write {
				writes++
			}
		}
	}
	fmt.Printf("writes:    %.1f%%\n", 100*float64(writes)/float64(h.Records))
	return nil
}

func replay(args []string) (err error) {
	if len(args) < 1 {
		return fmt.Errorf("replay: missing trace file")
	}
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	group := fs.Int("group", 4, "cores per LLC group")
	policy := fs.String("policy", "affinity", "scheduling policy")
	warm := fs.Uint64("warm", 50_000, "warm-up references per core")
	meas := fs.Uint64("meas", 100_000, "measured references per core")
	shards := fs.Int("shards", 1, consim.ShardsFlagUsage)
	var sflags consim.SampleFlags
	sflags.Register(fs)
	var pflags consim.PdesFlags
	pflags.Register(fs)
	var ocli obs.CLI
	ocli.Register(fs)
	fs.Parse(args[1:])

	o, ostop, oerr := ocli.Start(os.Stderr)
	if oerr != nil {
		return oerr
	}
	defer func() {
		if cerr := ostop(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if err := consim.ValidateShards(*shards); err != nil {
		return err
	}
	if err := pflags.CheckExclusive(*shards, sflags.Config()); err != nil {
		return err
	}
	rd, err := openTrace(args[0])
	if err != nil {
		return err
	}
	pol, err := consim.PolicyByName(*policy)
	if err != nil {
		return err
	}
	cfg := consim.DefaultConfig(rd.Spec())
	cfg.GroupSize = *group
	cfg.Policy = pol
	cfg.ThreadsPerVM = rd.Header().Threads
	cfg.WarmupRefs = *warm
	cfg.MeasureRefs = *meas
	cfg.Shards = *shards
	cfg.Sample = sflags.Config()
	// Replay always uses a trace source, which the parallel engine cannot
	// run; Apply + Validate produce the descriptive refusal.
	if err := pflags.Apply(&cfg); err != nil {
		return err
	}
	cfg.Sources = []workload.Source{rd}
	cfg.Obs = o.Hooks()

	res, err := consim.Run(cfg)
	if err != nil {
		return err
	}
	if o != nil && o.Man != nil {
		if err := o.Man.Write(core.ManifestFor(cfg, res, 1)); err != nil {
			return err
		}
	}
	v := res.VMs[0]
	fmt.Printf("replayed %s on %s/%s: cyc/tx=%.0f missRate=%.4f missLat=%.1f c2c=%.3f (loops t0=%d)\n",
		v.Name, cfg.SharingName(), cfg.Policy,
		v.CyclesPerTx, v.MissRate(), v.AvgMissLatency(), v.Stats.C2CFraction(), rd.Loops(0))
	if sa := res.Sample; sa.Windows > 0 {
		fmt.Printf("sampled: %d windows, %d refs/core detailed, %d fast-forwarded (%s; rel 95%% CI %.3f)\n",
			sa.Windows, sa.DetailedRefs, sa.SkippedRefs, sa.StopReason, sa.AchievedRelCI)
	}
	return nil
}
