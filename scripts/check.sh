#!/bin/sh
# Tier-1 gate: vet, build, race-enabled tests, and the allocation-budget
# guards. Run from the repo root before sending a change.
#
#   scripts/check.sh           # short mode (~10 minutes on one core)
#   FULL=1 scripts/check.sh    # full test suite (tens of minutes)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
if [ "${FULL:-}" = "1" ]; then
	go test -race ./...
else
	go test -race -short ./...
fi

echo "== allocation budgets =="
# Steady-state simulation loop must not allocate (perf regression guard).
# TestSteadyStateAllocBudget runs with live metrics AND a -timeseries
# recorder attached, so the observability publish cadence is inside the
# guarded path; the sharded variant holds the engine's worker lanes to
# the same budget.
go test -run 'TestSteadyStateAllocBudget' ./internal/core
go test -run 'TestShardedSteadyStateAllocBudget' ./internal/core
go test -run 'TestPdesShardedAllocBudget' ./internal/core
go test -run 'TestDirectorySteadyStateAllocs' ./internal/coherence

echo "== sharded engine smoke =="
# The golden fixtures must reproduce bit-for-bit under -shards (the
# parallel engine's central determinism claim).
go test -run 'TestGoldenResults' ./internal/core -shards 2

echo "== sampled engine smoke =="
# Interval sampling must engage (the provenance line appears), stay
# deterministic across shard counts, and leave detailed runs untouched
# (golden fixtures above already pin the -sample-off path bit-for-bit).
go test -run 'TestSampledDeterministicAcrossShards|TestFastForwardNoTimingLeak' ./internal/core
go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 20000 \
	-sample 1000 -sample-ci 0.2 | grep -q "sampled:" \
	|| { echo "check.sh: sampled run produced no provenance line" >&2; exit 1; }

echo "== warm-walk smoke =="
# The specialized warming walk must stay bit-identical to the retained
# generic oracle (cache tags/LRU, directory, dircache, RNG cursor), and
# an observed -sample -timeseries run must surface the fast-forward
# phase split and cost ratio in its obs report.
go test -short -run 'TestWarmWalkDifferential|TestWarmEntryPointsMatchGeneric' ./internal/core
warm_dir=$(mktemp -d /tmp/consim_warm.XXXXXX)
go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 20000 \
	-sample 1000 -sample-ci 0.2 \
	-timeseries "$warm_dir/ts.jsonl" -manifest "$warm_dir/m.jsonl" >/dev/null
warm_report=$(go run ./cmd/obs report "$warm_dir/m.jsonl")
echo "$warm_report" | grep -q "fast-forward" \
	|| { echo "check.sh: obs report missing the fast-forward phase: $warm_report" >&2; exit 1; }
echo "$warm_report" | grep -q "ff cost ratio" \
	|| { echo "check.sh: obs report missing the ff cost ratio: $warm_report" >&2; exit 1; }
rm -rf "$warm_dir"

echo "== parallel (pdes) engine smoke =="
# The split-transaction parallel engine must stay within the equivalence
# bound of the sequential engine (single seed here; CI's nightly matrix
# covers more), stay deterministic per seed, and leave -pdes-off runs
# untouched (golden fixtures above pin the sequential path bit-for-bit).
go test -short -run 'TestPdesValidation|TestPdesDeterministic|TestPdesEquivalence' ./internal/core
go test -short -run 'TestParallelEquivalence|TestRunnerPdesOption' ./internal/harness
go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 20000 \
	-pdes 4 | grep -q "parallel:" \
	|| { echo "check.sh: pdes run produced no provenance line" >&2; exit 1; }

echo "== sharded replay smoke =="
# The bank-sharded barrier replay must stay bit-identical to the serial
# replay, the pipelined variant deterministic, the merged memctrl order
# exact, and the CLI knobs must engage (the provenance line says so).
go test -short -run 'TestShardedReplayBitIdentical|TestPdesPipelineDeterministic|TestPdesReplayValidation' ./internal/core
go test -run 'TestShardedReplayMemctrlMerge' ./internal/memctrl
go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 20000 \
	-pdes 4 -pdes-replay-workers 4 -pdes-pipeline | grep -q "sharded replay x4 pipelined" \
	|| { echo "check.sh: sharded replay produced no provenance line" >&2; exit 1; }

echo "== phase profiler smoke =="
# A -pdes -timeseries run must record per-window telemetry rows and a
# phase profile whose obs report prints the in-window/replay
# decomposition; obs diff of two identical runs must exit clean (the
# wide threshold tolerates wall-clock noise — the wiring is under test,
# not the machine).
obs_dir=$(mktemp -d /tmp/consim_obs.XXXXXX)
for i in 1 2; do
	go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 20000 \
		-pdes 4 -timeseries "$obs_dir/ts.jsonl" -manifest "$obs_dir/m.jsonl" >/dev/null
done
test -s "$obs_dir/ts.jsonl" || { echo "check.sh: empty time-series sidecar" >&2; exit 1; }
obs_report=$(go run ./cmd/obs report "$obs_dir/m.jsonl")
echo "$obs_report" | grep -q "replay" \
	|| { echo "check.sh: obs report missing the replay term: $obs_report" >&2; exit 1; }
echo "$obs_report" | grep -q "in-window" \
	|| { echo "check.sh: obs report missing the in-window term: $obs_report" >&2; exit 1; }
echo "$obs_report" | grep -q "time series" \
	|| { echo "check.sh: obs report missing the time-series summary: $obs_report" >&2; exit 1; }
go run ./cmd/obs diff -threshold 0.5 "$obs_dir/m.jsonl" >/dev/null \
	|| { echo "check.sh: obs diff flagged two identical runs" >&2; exit 1; }
rm -rf "$obs_dir"

echo "== bench regression gate =="
# Throughput-only bench run compared against the committed baseline:
# fails on a >10% refs/sec regression or any allocs/ref growth.
go run ./cmd/bench -figures "" -iters 2 -out - -baseline BENCH_consim.json >/dev/null

echo "== observability smoke =="
# A tiny observed run must produce a non-empty Chrome trace and a
# manifest line alongside a clean exit.
obs_trace=$(mktemp /tmp/consim_trace.XXXXXX.json)
obs_manifest=$(mktemp /tmp/consim_manifest.XXXXXX.jsonl)
go run ./cmd/consim -workloads TPC-H -scale 16 -warm 2000 -meas 4000 \
	-progress -tracefile "$obs_trace" -manifest "$obs_manifest" >/dev/null
test -s "$obs_trace" || { echo "check.sh: empty trace file" >&2; exit 1; }
test -s "$obs_manifest" || { echo "check.sh: empty manifest" >&2; exit 1; }
rm -f "$obs_trace" "$obs_manifest"

echo "check.sh: OK"
