#!/bin/sh
# Tier-1 gate: vet, build, race-enabled tests, and the allocation-budget
# guards. Run from the repo root before sending a change.
#
#   scripts/check.sh           # short mode (~10 minutes on one core)
#   FULL=1 scripts/check.sh    # full test suite (tens of minutes)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
if [ "${FULL:-}" = "1" ]; then
	go test -race ./...
else
	go test -race -short ./...
fi

echo "== allocation budgets =="
# Steady-state simulation loop must not allocate (perf regression guard).
go test -run 'TestSteadyStateAllocBudget' ./internal/core
go test -run 'TestDirectorySteadyStateAllocs' ./internal/coherence

echo "check.sh: OK"
