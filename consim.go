// Package consim is a simulator for studying server-consolidation
// workloads on multi-core designs, reproducing "An Evaluation of Server
// Consolidation Workloads for Multi-Core Designs" (Enright Jerger,
// Vantrease, Lipasti — IISWC 2007).
//
// It models a 16-core CMP (Table III of the paper): per-core L0/L1
// caches, a 16MB last-level cache divided into private, shared-N-way or
// fully-shared bank groups, an SGI-Origin-style directory protocol with
// per-node directory caches, a 2-D mesh interconnect, and queued memory
// controllers. Four statistical workload models stand in for the paper's
// commercial workloads (TPC-W, SPECjbb, TPC-H, SPECweb), calibrated to
// its Table II sharing statistics. A hypervisor layer places each
// 4-thread virtual machine's threads on cores under round-robin,
// affinity, hybrid or random policies.
//
// Quick start:
//
//	cfg := consim.DefaultConfig(consim.WorkloadSpecs()[consim.TPCH])
//	cfg.GroupSize = 4 // shared-4-way LLC
//	res, err := consim.Run(cfg)
//
// The harness sub-API (Mixes, NewRunner, figure runners) regenerates
// every table and figure of the paper's evaluation; see cmd/tables.
package consim

import (
	"flag"
	"fmt"
	"runtime"
	"sync"

	"consim/internal/core"
	"consim/internal/harness"
	"consim/internal/sched"
	"consim/internal/sim"
	"consim/internal/workload"
)

// Core simulator types.
type (
	// Cycle is a simulated-time cycle count (Config.PdesWindow,
	// Result.Cycles).
	Cycle = sim.Cycle
	// Config describes one simulation run; see DefaultConfig.
	Config = core.Config
	// System is a configured simulation instance.
	System = core.System
	// Result is a completed run's metrics.
	Result = core.Result
	// VMResult is one virtual machine's measurements.
	VMResult = core.VMResult
	// Snapshot captures LLC replication and occupancy state.
	Snapshot = core.Snapshot
	// ShardStats reports the intra-run parallel engine's activity
	// (Result.Shard); all-zero for sequential runs.
	ShardStats = core.ShardStats
	// SampleConfig enables interval-sampled simulation (Config.Sample):
	// detailed windows, functional fast-forward, CI-convergence early
	// stop. The zero value keeps runs fully detailed and bit-identical.
	SampleConfig = core.SampleConfig
	// SampleStats reports a sampled run's coverage and achieved
	// confidence interval (Result.Sample); all-zero for detailed runs.
	SampleStats = core.SampleStats
	// PdesStats reports the split-transaction parallel engine's activity
	// (Result.Pdes); all-zero for sequential runs.
	PdesStats = core.PdesStats
)

// Canonical CLI help strings for the speed knobs, shared by every
// command so the flags read identically across the toolset. -parallel
// spreads independent simulations across CPUs and -shards splits one
// simulation across worker lanes; neither ever changes results. -sample
// and -pdes trade exactness for speed: -sample estimates metrics from
// detailed windows separated by functional fast-forward (achieved
// confidence interval recorded in manifests), -pdes runs active cores
// in parallel domains with windowed cross-domain coherence (deviations
// gated by the equivalence harness, deterministic per seed).
const (
	ParallelFlagUsage   = "independent simulations to keep in flight at once (across-run parallelism; never changes results)"
	ShardsFlagUsage     = "worker lanes inside each simulation: 1 = sequential engine, or 2/4/8/16 evenly dividing the core count; results are bit-identical at any value"
	SampleFlagUsage     = "detailed-window length in per-core references; >0 enables interval-sampled simulation (approximate: metrics become CI-bounded estimates)"
	PdesFlagUsage       = "split-transaction parallel engine domains inside each simulation: 0/1 = sequential engine, N>1 partitions active cores into N windowed domains (approximate: deviations gated by the equivalence harness)"
	PdesWindowFlagUsage = "parallel engine window width in cycles (default 16384); wider windows amortize barriers at the price of staler cross-domain coherence"
	// The sharded-replay pair rides on -pdes: replay sharding alone is a
	// pure execution-strategy change (bit-identical results), pipelining
	// trades one window of replica staleness for overlap and is gated
	// like -pdes itself.
	PdesReplayWorkersFlagUsage = "parallel workers for the barrier replay (requires -pdes > 1): 0/1 = serial replay, N>1 shards the op log by LLC bank group; results are bit-identical at any value"
	PdesPipelineFlagUsage      = "overlap each window's cross-group replay merge with the next window (requires -pdes-replay-workers >= 2); approximate: replicas resync one window late, gated by the equivalence harness"
)

// ValidateShards checks a -shards value against the default 16-core
// machine, returning a descriptive error for CLI use. Config.Validate
// performs the same check against the configured core count.
func ValidateShards(shards int) error {
	return sim.ValidateShards(shards, core.DefaultCores)
}

// SampleFlags registers the interval-sampling flag set on a CLI and
// assembles the resulting SampleConfig, so every command exposes the
// same five knobs with identical help text.
type SampleFlags struct {
	window     uint64
	ratio      int
	ciTarget   float64
	minWindows int
	maxRefs    uint64
}

// Register installs -sample and its companion knobs on fs.
func (sf *SampleFlags) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&sf.window, "sample", 0, SampleFlagUsage)
	fs.IntVar(&sf.ratio, "sample-ratio", 0, "fast-forward length between windows as a multiple of -sample (default 4)")
	fs.Float64Var(&sf.ciTarget, "sample-ci", 0, "stop once every per-VM metric's relative 95% CI half-width reaches this (default 0.05)")
	fs.IntVar(&sf.minWindows, "sample-min-windows", 0, "fewest windows convergence may stop at (default 4)")
	fs.Uint64Var(&sf.maxRefs, "sample-max-refs", 0, "per-core detailed-reference budget; stop when reached even unconverged (default: the measurement budget)")
}

// Config returns the assembled SampleConfig (zero value when -sample
// was not set; unset companions fall to the engine defaults).
func (sf *SampleFlags) Config() SampleConfig {
	if sf.window == 0 {
		return SampleConfig{}
	}
	return SampleConfig{
		WindowRefs: sf.window,
		FFRatio:    sf.ratio,
		CITarget:   sf.ciTarget,
		MinWindows: sf.minWindows,
		MaxRefs:    sf.maxRefs,
	}
}

// PdesFlags registers the split-transaction parallel engine's flag pair
// on a CLI, so every command exposes the same two knobs with identical
// help text.
type PdesFlags struct {
	workers       int
	window        uint64
	replayWorkers int
	pipeline      bool
}

// Register installs -pdes, -pdes-window, -pdes-replay-workers and
// -pdes-pipeline on fs.
func (pf *PdesFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&pf.workers, "pdes", 0, PdesFlagUsage)
	fs.Uint64Var(&pf.window, "pdes-window", 0, PdesWindowFlagUsage)
	fs.IntVar(&pf.replayWorkers, "pdes-replay-workers", 0, PdesReplayWorkersFlagUsage)
	fs.BoolVar(&pf.pipeline, "pdes-pipeline", false, PdesPipelineFlagUsage)
}

// Workers returns the -pdes value (0 when unset).
func (pf *PdesFlags) Workers() int { return pf.workers }

// Window returns the -pdes-window value as a cycle count.
func (pf *PdesFlags) Window() sim.Cycle { return sim.Cycle(pf.window) }

// ReplayWorkers returns the -pdes-replay-workers value (0 when unset).
func (pf *PdesFlags) ReplayWorkers() int { return pf.replayWorkers }

// Pipeline reports whether -pdes-pipeline was set.
func (pf *PdesFlags) Pipeline() bool { return pf.pipeline }

// Apply writes the flag set into cfg, returning an error when the
// combination is inconsistent (companion knobs without -pdes, or
// -pdes-pipeline without replay sharding).
func (pf *PdesFlags) Apply(cfg *Config) error {
	if pf.workers <= 1 {
		switch {
		case pf.window != 0:
			return fmt.Errorf("-pdes-window requires -pdes > 1")
		case pf.replayWorkers > 1:
			return fmt.Errorf("-pdes-replay-workers requires -pdes > 1")
		case pf.pipeline:
			return fmt.Errorf("-pdes-pipeline requires -pdes > 1")
		}
		return nil
	}
	if pf.pipeline && pf.replayWorkers < 2 {
		return fmt.Errorf("-pdes-pipeline requires -pdes-replay-workers >= 2")
	}
	cfg.Pdes = pf.workers
	cfg.PdesWindow = sim.Cycle(pf.window)
	cfg.PdesReplayWorkers = pf.replayWorkers
	cfg.PdesPipeline = pf.pipeline
	return nil
}

// CheckExclusive rejects flag combinations that select two intra-run
// engines at once. Every CLI calls it right after flag parsing so the
// user sees one clear message instead of a per-config validation error
// (or, under the runner's quiet compatibility filter, a silently
// sequential run).
func (pf *PdesFlags) CheckExclusive(shards int, sc SampleConfig) error {
	if pf.workers <= 1 {
		if pf.window != 0 {
			return fmt.Errorf("-pdes-window requires -pdes > 1")
		}
		return nil
	}
	if shards > 1 {
		return fmt.Errorf("-pdes and -shards are mutually exclusive engines")
	}
	if sc.Enabled() {
		return fmt.Errorf("-pdes and -sample are mutually exclusive engines")
	}
	return nil
}

// Workload modeling types.
type (
	// WorkloadClass identifies one of the paper's four workloads.
	WorkloadClass = workload.Class
	// WorkloadSpec parameterizes a workload model.
	WorkloadSpec = workload.Spec
	// Phase modulates a workload's reference mix for a stretch of
	// execution (§VII phase analysis).
	Phase = workload.Phase
)

// TwoPhase builds the classic scan/update phase alternation for
// phase-alignment studies; each phase lasts refs references per thread.
func TwoPhase(refs uint64) []Phase { return workload.TwoPhase(refs) }

// Scheduling types.
type (
	// Policy is a hypervisor thread-placement policy.
	Policy = sched.Policy
)

// Experiment harness types.
type (
	// Mix is a Table IV workload combination.
	Mix = harness.Mix
	// Runner executes and memoizes experiment simulations.
	Runner = harness.Runner
	// RunnerOptions scale an experiment suite.
	RunnerOptions = harness.Options
	// FigureTable is a rendered figure/table result.
	FigureTable = harness.Table
	// FigureComparison is one figure built detailed and sampled, with
	// wall times and the worst per-cell deviation.
	FigureComparison = harness.FigureComparison
	// FFCost aggregates a sampled run set's phase cost split (detailed
	// windows vs functional fast-forward); Ratio is the fast-forward cost
	// per skipped reference relative to a detailed reference.
	FFCost = harness.FFCost
	// RunComparison is one configuration run detailed and sampled, with
	// per-VM metric deviations against the CI-derived bound.
	RunComparison = harness.RunComparison
)

// The four commercial workloads.
const (
	TPCW    = workload.TPCW
	SPECjbb = workload.SPECjbb
	TPCH    = workload.TPCH
	SPECweb = workload.SPECweb
)

// The four scheduling policies of §III-D.
const (
	RoundRobin = sched.RoundRobin
	Affinity   = sched.Affinity
	RRAffinity = sched.RRAffinity
	Random     = sched.Random
)

// DefaultConfig returns the paper's 16-core machine configured to run the
// given workloads (one VM of four threads each).
func DefaultConfig(specs ...WorkloadSpec) Config {
	return core.DefaultConfig(specs...)
}

// NewSystem builds a simulation from cfg.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Run builds and executes a simulation in one call.
func Run(cfg Config) (Result, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return sys.Run()
}

// RunConfigs builds and executes independent simulations with up to
// parallel in flight at once (parallel <= 0 means runtime.GOMAXPROCS)
// and returns their results in input order. Each simulation is
// single-threaded and deterministic given its seed, so parallelism
// affects wall time only, never results. On error, the lowest-index
// failure is returned.
func RunConfigs(cfgs []Config, parallel int) ([]Result, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	wg.Add(len(cfgs))
	for i := range cfgs {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// WorkloadSpecs returns the calibrated models of the paper's four
// workloads, indexed by WorkloadClass.
func WorkloadSpecs() [workload.NumClasses]WorkloadSpec { return workload.Specs() }

// WorkloadByName resolves a workload by its paper name ("TPC-W",
// "SPECjbb", "TPC-H", "SPECweb").
func WorkloadByName(name string) (WorkloadSpec, error) { return workload.ByName(name) }

// PolicyByName resolves a policy by name ("rr", "affinity", "aff-rr",
// "random").
func PolicyByName(name string) (Policy, error) { return sched.ByName(name) }

// AllPolicies returns the four policies in the paper's order.
func AllPolicies() []Policy { return sched.All() }

// HeterogeneousMixes returns Table IV's Mixes 1-9.
func HeterogeneousMixes() []Mix { return harness.HeterogeneousMixes() }

// HomogeneousMixes returns Table IV's Mixes A-D.
func HomogeneousMixes() []Mix { return harness.HomogeneousMixes() }

// MixByID resolves a Table IV mix by label ("1".."9", "A".."D").
func MixByID(id string) (Mix, error) { return harness.MixByID(id) }

// NewRunner returns an experiment runner that memoizes simulations
// across figure regenerations. Memoization is single-flight and all
// execution shares one worker pool of RunnerOptions.Parallel slots
// (0 defaults to runtime.GOMAXPROCS); Runner.RunFigures schedules a
// whole figure suite through that one deduplicated queue.
func NewRunner(opt RunnerOptions) *Runner { return harness.NewRunner(opt) }

// DefaultRunnerOptions returns the full-scale experiment settings used
// for EXPERIMENTS.md.
func DefaultRunnerOptions() RunnerOptions { return harness.DefaultOptions() }

// FigureIDs lists the reproducible artifacts (T2, F2..F13).
func FigureIDs() []string { return harness.FigureIDs() }

// AblationIDs lists the design-choice ablation studies (A1..A6).
func AblationIDs() []string { return harness.AblationIDs() }

// CompareSampledRun executes cfg fully detailed and again interval-
// sampled under sc, reporting per-VM metric deviations against the
// sampled run's CI-derived error bound.
func CompareSampledRun(cfg Config, sc SampleConfig) (RunComparison, error) {
	return harness.CompareSampledRun(cfg, sc)
}

// CompareSampledFigures builds the given figures twice — one detailed
// runner, one sampled — and returns per-figure comparisons plus the
// declared error bound (2 x the worse of the CI target and the worst
// achieved CI across the sampled runs).
func CompareSampledFigures(opt RunnerOptions, sc SampleConfig, ids []string) ([]FigureComparison, float64, error) {
	return harness.CompareSampledFigures(opt, sc, ids)
}

// DefaultPdesBound is the fixed error budget split-transaction parallel
// runs are judged against (harness.DefaultPdesBound).
const DefaultPdesBound = harness.DefaultPdesBound

// CompareParallelRun executes cfg sequentially and again under the
// split-transaction parallel engine (workers domains, window cycles; 0
// selects the default window), reporting per-VM metric deviations
// against bound (<= 0 selects DefaultPdesBound).
func CompareParallelRun(cfg Config, workers int, window sim.Cycle, bound float64) (RunComparison, error) {
	return harness.CompareParallelRun(cfg, workers, window, bound)
}

// CompareParallelFigures builds the given figures twice — one
// sequential runner, one under the parallel engine — and returns
// per-figure comparisons plus the bound cells were judged against.
func CompareParallelFigures(opt RunnerOptions, workers int, window sim.Cycle, bound float64, ids []string) ([]FigureComparison, float64, error) {
	return harness.CompareParallelFigures(opt, workers, window, bound, ids)
}

// CompareShardedParallelRun executes cfg under the parallel engine with
// the serial barrier replay and again with the replay sharded across
// replayWorkers bank-group streams (optionally pipelined), reporting
// per-VM metric deviations against bound (<= 0 selects
// DefaultPdesBound). Without pipelining the deviation must be exactly
// zero — replay sharding never changes results.
func CompareShardedParallelRun(cfg Config, workers, replayWorkers int, pipeline bool, window sim.Cycle, bound float64) (RunComparison, error) {
	return harness.CompareShardedParallelRun(cfg, workers, replayWorkers, pipeline, window, bound)
}
